// Package iqsim is a cycle-level simulator reproducing "A Scalable
// Instruction Queue Design Using Dependence Chains" (Raasch, Binkert &
// Reinhardt, ISCA 2002).
//
// It models the paper's full machine — an 8-wide out-of-order processor
// with the Table 1 pipeline, branch predictors and event-driven memory
// hierarchy — around five pluggable instruction-queue designs:
//
//   - the ideal single-cycle monolithic queue,
//   - the paper's segmented queue scheduled by dependence chains
//     (with pushdown, bypass, hit/miss and left/right predictors, finite
//     chain wires, deadlock recovery, SMT support and dynamic segment
//     gating),
//   - the prescheduling baseline of Michaud & Seznec,
//   - the distance scheme of Canal & González, and
//   - the dependence-based FIFOs of Palacharla, Jouppi & Smith.
//
// Quick start:
//
//	cfg := iqsim.Segmented(512, 128, true, true)
//	res, err := iqsim.Run(cfg, "swim", 1, 100_000, 300_000)
//	fmt.Println(res.IPC)
//
// The examples/ directory contains runnable walkthroughs, cmd/iqbench
// regenerates every table and figure of the paper, and EXPERIMENTS.md
// records paper-versus-measured results.
package iqsim

import (
	"repro/internal/core"
	"repro/internal/presched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config is a full processor configuration (Table 1 defaults plus the
// selected queue design). Construct one with Ideal, Segmented or
// Prescheduled, then adjust fields as needed.
type Config = sim.Config

// Result reports a completed simulation: IPC, cycle and instruction
// counts, and the full statistics set (scheduler, memory, branch and
// pipeline counters).
type Result = sim.Result

// SegmentedOptions is the segmented queue's parameter block
// (Config.Segmented): segment geometry, chain-wire budget, predictor and
// enhancement switches.
type SegmentedOptions = core.Config

// PreschedOptions is the prescheduling queue's parameter block
// (Config.Presched).
type PreschedOptions = presched.Config

// Ideal returns the Table 1 machine with an ideal single-cycle monolithic
// instruction queue of the given capacity.
func Ideal(iqSize int) Config { return sim.DefaultConfig(sim.QueueIdeal, iqSize) }

// Segmented returns the Table 1 machine with the paper's segmented,
// dependence-chain-scheduled IQ: 32-entry segments, the given total
// capacity and chain-wire budget (0 = unlimited), and optionally the load
// hit/miss predictor (§4.4) and left/right operand predictor (§4.3).
// Pushdown (§4.1), dispatch bypass (§4.2) and deadlock recovery (§4.5)
// are enabled; disable or tune them through Config.Segmented.
func Segmented(iqSize, maxChains int, useHMP, useLRP bool) Config {
	return sim.SegmentedConfig(iqSize, maxChains, useHMP, useLRP)
}

// Prescheduled returns the Table 1 machine with the Michaud & Seznec
// prescheduling queue: a 32-entry issue buffer plus 12-wide scheduling
// rows totalling the given slot count.
func Prescheduled(totalSlots int) Config { return sim.PrescheduledConfig(totalSlots) }

// FIFOBased returns the Table 1 machine with the dependence-based FIFO
// queue of Palacharla, Jouppi & Smith (the paper's related work):
// depth-8 FIFOs totalling the given slot count, with wakeup/select over
// the FIFO heads only.
func FIFOBased(totalSlots int) Config { return sim.FIFOConfig(totalSlots) }

// Distance returns the Table 1 machine with Canal & González's distance
// scheme (the paper's related work): a 32-entry wait buffer holding
// unpredictable-latency instructions *before* a 12-wide scheduling array,
// issuing directly from the oldest row.
func Distance(totalSlots int) Config { return sim.DistanceConfig(totalSlots) }

// Run simulates n instructions of the named workload (one of Workloads)
// on the configured machine, after functionally fast-forwarding warm
// instructions to install cache lines and train the branch structures.
// Runs are deterministic in (cfg, workload, seed, n, warm).
func Run(cfg Config, workload string, seed uint64, n, warm int64) (*Result, error) {
	return sim.RunWorkloadWarm(cfg, workload, seed, n, warm)
}

// SMTResult reports a simultaneous-multithreading run: aggregate
// throughput plus per-context retirement counts.
type SMTResult = sim.SMTResult

// RunSMT simulates the §7 future-work machine: the configured queue,
// function units and memory hierarchy shared by one hardware context per
// named workload (round-robin fetch and dispatch). n is the total
// committed-instruction budget across contexts; each context is
// fast-forwarded warm instructions first. Context i uses seed+i.
func RunSMT(cfg Config, workloads []string, seed uint64, n, warm int64) (*SMTResult, error) {
	return sim.RunSMT(cfg, workloads, seed, n, warm)
}

// Workloads returns the eight SPEC CPU2000-like workload names of the
// paper's evaluation, sorted: ammp, applu, equake, gcc, mgrid, swim,
// twolf, vortex.
func Workloads() []string { return trace.Names() }

// Workload builds the named workload's instruction stream directly, for
// callers that drive sim.Processor (or their own tooling) by hand.
func Workload(name string, seed uint64) (trace.Stream, error) {
	return trace.New(name, seed)
}

// WorkloadBuilder constructs custom workloads: a loop nest of basic
// blocks with per-instance address and branch-outcome callbacks (see
// trace.Builder and examples/customworkload). RunStream simulates one.
type WorkloadBuilder = trace.Builder

// NewWorkloadBuilder starts a custom workload named name whose static
// instructions get PCs from pcBase upward.
func NewWorkloadBuilder(name string, pcBase uint64) *WorkloadBuilder {
	return trace.NewBuilder(name, pcBase)
}

// RunStream simulates n instructions of an arbitrary stream (for
// example, one built with NewWorkloadBuilder) on the configured machine,
// fast-forwarding warm instructions first.
func RunStream(cfg Config, s trace.Stream, n, warm int64) (*Result, error) {
	p, err := sim.New(cfg, s)
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		p.Warm(s, warm)
	}
	return p.Run(n)
}
