// Misstolerance: the paper's central argument (§1, §3) is that
// quasi-static dependence-based schedulers cannot tolerate unpredictable
// latencies — a load that misses leaves its dependents camping in the
// small issue buffer — while the segmented queue's chains simply stop
// advancing until the load completes. This example measures both designs
// on the two memory-bound workloads (swim: streaming misses; equake:
// unpredictable indirect misses) at equal-or-larger prescheduling
// capacity, plus mgrid (cache-resident) where prescheduling's weakness is
// its rigidity rather than miss tolerance.
//
//	go run ./examples/misstolerance
package main

import (
	"fmt"
	"log"

	iqsim "repro"
)

func main() {
	const (
		seed = 1
		n    = 40_000
		warm = 300_000
	)
	for _, workload := range []string{"swim", "equake", "mgrid"} {
		seg := iqsim.Segmented(512, 128, true, true)
		pre := iqsim.Prescheduled(704) // MORE total slots than the segmented queue

		segRes, err := iqsim.Run(seg, workload, seed, n, warm)
		if err != nil {
			log.Fatal(err)
		}
		preRes, err := iqsim.Run(pre, workload, seed, n, warm)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", workload)
		fmt.Printf("  segmented 512 (128 chains, HMP+LRP)  IPC %.3f\n", segRes.IPC)
		fmt.Printf("  prescheduled 704                     IPC %.3f\n", preRes.IPC)
		fmt.Printf("  segmented advantage                  %.2fx\n", segRes.IPC/preRes.IPC)
		fmt.Printf("  presched unready campers in buffer   %.1f avg (of 32)\n",
			preRes.Stats.MustGet("presched_buf_unready_avg"))
		fmt.Printf("  presched recycled instructions       %.0f\n",
			preRes.Stats.MustGet("presched_recycled"))
		fmt.Printf("  segmented chain suspends ride out    %.0f L1 misses\n\n",
			segRes.Stats.MustGet("l1d_accesses")*segRes.Stats.MustGet("l1d_miss_rate"))
	}
	fmt.Println("The segmented queue holds dependent chains in upper segments while")
	fmt.Println("misses resolve; the prescheduling array delivers them to the issue")
	fmt.Println("buffer on the predicted (hit) schedule, where they camp and recycle.")
}
