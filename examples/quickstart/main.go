// Quickstart: simulate the paper's headline configuration — a 512-entry
// segmented instruction queue with 128 chain wires and both predictors —
// on the swim-like memory-bound workload, and compare it with an ideal
// monolithic queue of the same size and a conventional 32-entry queue.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	iqsim "repro"
)

func main() {
	const (
		workload = "swim"
		seed     = 1
		n        = 50_000  // measured instructions
		warm     = 300_000 // functional fast-forward
	)

	configs := []struct {
		name string
		cfg  iqsim.Config
	}{
		{"conventional 32-entry", iqsim.Ideal(32)},
		{"ideal 512-entry", iqsim.Ideal(512)},
		{"segmented 512-entry, 128 chains, HMP+LRP", iqsim.Segmented(512, 128, true, true)},
	}

	fmt.Printf("workload %s: %d instructions after %d warm-up\n\n", workload, n, warm)
	var base, ideal float64
	for _, c := range configs {
		res, err := iqsim.Run(c.cfg, workload, seed, n, warm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s IPC %.3f  (%d cycles)\n", c.name, res.IPC, res.Cycles)
		switch c.name {
		case "conventional 32-entry":
			base = res.IPC
		case "ideal 512-entry":
			ideal = res.IPC
		default:
			fmt.Printf("\n  vs 32-entry conventional: %+.0f%%   (paper: large gains for FP)\n",
				100*(res.IPC/base-1))
			fmt.Printf("  of 512-entry ideal:       %.0f%%    (paper: 55-98%%)\n",
				100*res.IPC/ideal)
			fmt.Printf("  chains in use (avg/peak): %.0f / %.0f\n",
				res.Stats.MustGet("chains_avg"), res.Stats.MustGet("chains_peak"))
			fmt.Printf("  promotions: %.0f   pushdowns: %.0f   deadlock recoveries: %.0f\n",
				res.Stats.MustGet("iq_promotions"), res.Stats.MustGet("iq_pushdowns"),
				res.Stats.MustGet("deadlock_recoveries"))
		}
	}
}
