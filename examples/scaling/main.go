// Scaling: a miniature of the paper's Figure 3 for one workload — IPC as
// the instruction queue grows from 32 to 512 entries, for the ideal
// monolithic queue and the segmented queue with 128 and 64 chain wires.
// The segmented queue's cycle time would stay constant (32-entry
// segments) while the ideal queue's would grow quadratically, which is
// the entire point of the design.
//
//	go run ./examples/scaling [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	iqsim "repro"
)

func main() {
	workload := "equake"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	const (
		seed = 1
		n    = 30_000
		warm = 300_000
	)
	sizes := []int{32, 64, 128, 256, 512}

	fmt.Printf("workload %s: IPC vs instruction-queue size\n\n", workload)
	fmt.Printf("%-10s", "size")
	for _, s := range sizes {
		fmt.Printf("%8d", s)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 10+8*len(sizes)))

	rows := []struct {
		name string
		mk   func(size int) iqsim.Config
	}{
		{"ideal", func(s int) iqsim.Config { return iqsim.Ideal(s) }},
		{"seg-128ch", func(s int) iqsim.Config { return iqsim.Segmented(s, 128, true, true) }},
		{"seg-64ch", func(s int) iqsim.Config { return iqsim.Segmented(s, 64, true, true) }},
	}
	for _, row := range rows {
		fmt.Printf("%-10s", row.name)
		for _, size := range sizes {
			res, err := iqsim.Run(row.mk(size), workload, seed, n, warm)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.3f", res.IPC)
		}
		fmt.Println()
	}
	fmt.Println("\nAt 32 entries the segmented queue degenerates to a single segment")
	fmt.Println("(§6.3); its gains at larger sizes come at constant segment-limited")
	fmt.Println("cycle time, unlike the ideal queue.")
}
