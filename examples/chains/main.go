// Chains: a step-by-step walkthrough of Figure 1 of the paper. The nine-
// instruction example sequence is dispatched into a three-segment queue;
// the program prints each instruction's delay value (matching Figure
// 1(a)) and then steps the queue, showing promotions, issue, self-timing,
// and the final issue schedule respecting the two dependence chains.
//
//	go run ./examples/chains
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/uop"
)

func main() {
	// Figure 1(a): ADD latency 1, MUL latency 2 (modelled with the
	// 2-cycle FpAdd class). Operands marked * are available.
	none := isa.RegNone
	add := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d} }
	mul := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.FpAdd, Src1: s1, Src2: s2, Dest: d} }
	prog := []isa.Inst{
		add(none, none, 1), // i0: add *,*  -> r1
		mul(none, none, 2), // i1: mul *,*  -> r2
		add(2, none, 4),    // i2: add r2,* -> r4
		mul(4, none, 6),    // i3: mul r4,* -> r6
		mul(6, none, 8),    // i4: mul r6,* -> r8
		add(1, none, 3),    // i5: add r1,* -> r3
		add(3, none, 5),    // i6: add r3,* -> r5
		add(5, none, 7),    // i7: add r5,* -> r7
		add(6, 7, 9),       // i8: add r6,r7 -> r9
	}

	cfg := core.Config{
		Segments: 3, SegSize: 16, IssueWidth: 8,
		Pushdown: true, Bypass: true, DeadlockRecovery: true,
		PredictedLoadLatency: 4,
	}
	q := core.MustNew(cfg)

	// A tiny renamer: producer edges by architectural register.
	last := map[int]*uop.UOp{}
	var uops []*uop.UOp
	for i, in := range prog {
		u := uop.New(int64(i), in)
		for j, src := range []int{in.Src1, in.Src2} {
			if src != isa.RegNone {
				if p, ok := last[src]; ok {
					u.Prod[j] = p
				}
			}
		}
		if in.HasDest() {
			last[in.Dest] = u
		}
		uops = append(uops, u)
	}

	fmt.Println("Figure 1(a): dispatch-time delay values")
	fmt.Println("  inst                      delay (paper)")
	paper := []int{0, 0, 2, 3, 5, 1, 2, 3, 5}
	for i, u := range uops {
		if !q.Dispatch(0, u) {
			panic("dispatch stalled")
		}
		op := "add"
		if u.Inst.Class == isa.FpAdd {
			op = "mul"
		}
		fmt.Printf("  i%d: %s %s,%s -> %s%-6s  %d     (%d)\n", i, op,
			isa.RegName(u.Inst.Src1), isa.RegName(u.Inst.Src2), isa.RegName(u.Inst.Dest),
			"", q.DelayOf(u), paper[i])
	}

	fmt.Println("\nStepping the queue (issue width 8, thresholds 2/4/6):")
	issued := map[*uop.UOp]int64{}
	for cycle := int64(1); len(issued) < len(uops) && cycle < 30; cycle++ {
		q.BeginCycle(cycle)
		got := q.Issue(cycle, 8, func(*uop.UOp) bool { return true })
		for _, u := range got {
			issued[u] = cycle
			u.Complete = cycle + int64(u.Latency())
			q.Writeback(u.Complete, u)
		}
		q.EndCycle(cycle, true)
		fmt.Printf("  cycle %2d: issued %v   segments", cycle, names(got, uops))
		for k := 0; k < cfg.Segments; k++ {
			fmt.Printf("  s%d=%d", k, q.SegmentLen(k))
		}
		fmt.Println()
	}

	fmt.Println("\nIssue schedule:")
	for i, u := range uops {
		fmt.Printf("  i%d issued at cycle %d\n", i, issued[u])
	}
	fmt.Println("\nNote i5 issues back-to-back after i0 (single-cycle chain), while")
	fmt.Println("i2..i4 wait on the longer mul chain — the two chains of Figure 1(b).")
}

func names(got []*uop.UOp, all []*uop.UOp) []string {
	var out []string
	for _, g := range got {
		for i, u := range all {
			if u == g {
				out = append(out, fmt.Sprintf("i%d", i))
			}
		}
	}
	if out == nil {
		out = []string{}
	}
	return out
}
