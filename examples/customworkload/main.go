// Customworkload: define your own workload with the public builder API
// and measure how each instruction-queue design schedules it. The kernel
// here is a classic histogram loop — an indexed gather/scatter whose
// update address depends on a loaded value, so every iteration creates a
// two-operand indirection (chain-hungry, like equake).
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	iqsim "repro"
	"repro/internal/isa"
	"repro/internal/trace"
)

func buildHistogram(seed uint64) trace.Stream {
	const (
		keysBase = 0x1000_0000
		keysSize = 1 << 20 // 1 MB key stream
		binsBase = 0x2000_0000
		binsSize = 8 << 20 // 8 MB of bins: indirect misses to memory
	)
	keys := trace.StreamAddr(keysBase, keysSize, 8)
	bins := trace.RandAddr(seed, binsBase, binsSize, 8)
	binsW := trace.RandAddr(seed, binsBase, binsSize, 8) // same sequence: read-modify-write

	r1, r2, r3, r4 := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3), isa.IntReg(4)
	b := iqsim.NewWorkloadBuilder("histogram", 0x50_0000)
	b.Block("top")
	b.Op(isa.IntAlu, r1, r1, isa.IntReg(30))       // i++
	b.Load(r2, r1, 8, keys)                        // key = keys[i]        (streams)
	b.LoadIndexed(r3, isa.IntReg(30), r2, 8, bins) // count = bins[key] (indirect)
	b.Op(isa.IntAlu, r4, r3, isa.IntReg(30))       // count+1
	b.Store(r4, r2, 8, binsW)                      // bins[key] = count+1
	b.Branch(isa.IntReg(10), "top", trace.LoopTaken(256))
	s, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	const (
		n    = 30_000
		warm = 200_000
	)
	configs := []struct {
		name string
		cfg  iqsim.Config
	}{
		{"ideal 256", iqsim.Ideal(256)},
		{"segmented 256 (128ch, comb)", iqsim.Segmented(256, 128, true, true)},
		{"prescheduled 320", iqsim.Prescheduled(320)},
		{"fifos 256", iqsim.FIFOBased(256)},
		{"distance 320", iqsim.Distance(320)},
	}
	fmt.Println("custom histogram kernel (indirect read-modify-write):")
	for _, c := range configs {
		res, err := iqsim.RunStream(c.cfg, buildHistogram(7), n, warm)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if v, ok := res.Stats.Get("chains_avg"); ok {
			extra = fmt.Sprintf("  (chains avg %.0f)", v)
		}
		fmt.Printf("  %-28s IPC %.3f%s\n", c.name, res.IPC, extra)
	}
	fmt.Println("\nEach iteration's bin update is an indirection: the segmented queue")
	fmt.Println("chains it behind the key load and keeps segment 0 for ready work.")
}
