// SMT: the paper's §7 future work — "the dynamic inter-chain scheduling
// of our segmented IQ should allow chains from independent threads to
// exploit thread-level parallelism effectively." This example co-schedules
// a latency-bound pointer chaser (twolf) with a cache-resident FP kernel
// (mgrid) on one segmented queue and compares aggregate throughput with
// each workload running alone.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	iqsim "repro"
)

func main() {
	const (
		n    = 40_000
		warm = 300_000
	)
	cfg := iqsim.Segmented(512, 128, true, true)

	pair := []string{"twolf", "gcc"}
	single := map[string]float64{}
	for i, w := range pair {
		res, err := iqsim.Run(cfg, w, uint64(1+i), n, warm)
		if err != nil {
			log.Fatal(err)
		}
		single[w] = res.IPC
		fmt.Printf("%-18s alone: IPC %.3f\n", w, res.IPC)
	}

	smt, err := iqsim.RunSMT(cfg, pair, 1, 2*n, warm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s SMT:   IPC %.3f  (per thread: %s %d, %s %d)\n",
		pair[0]+"+"+pair[1], smt.IPC, pair[0], smt.PerThread[0], pair[1], smt.PerThread[1])

	sum := single[pair[0]] + single[pair[1]]
	fmt.Printf("\nthroughput vs best single thread: %.2fx\n", smt.IPC/max(single[pair[0]], single[pair[1]]))
	fmt.Printf("throughput vs sum of singles:     %.0f%%\n", 100*smt.IPC/sum)
	fmt.Printf("chains in use (avg):              %.0f\n", smt.Stats.MustGet("chains_avg"))
	fmt.Println("\nBoth workloads stall constantly (pointer chase, mispredicts); their chains")
	fmt.Println("interleave in the shared queue, so one thread's stalls hide behind the")
	fmt.Println("other's work — the inter-chain dynamic scheduling §7 anticipates.")
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
