package iqtest

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/uop"
)

// CloneFuzz checks a queue's Clone against live state: it drives the
// queue through a random DAG, deep-clones it mid-round — with entries
// resident, chains allocated and instructions still to dispatch — and
// then runs original and clone to completion in lockstep. The two must
// issue identical instruction sequences every cycle and report identical
// occupancy, and neither may perturb the other (the clone works on
// remapped uops, so any shared mutable state shows up as divergence).
func CloneFuzz(t *testing.T, mk func() iq.Queue, o Options) {
	t.Helper()
	for round := 0; round < o.Rounds; round++ {
		cloneRound(t, mk(), o, uint64(round)*104729+11)
		if t.Failed() {
			return
		}
	}
}

type clonePending struct {
	u  *uop.UOp
	at int64
}

// cloneDriver is one independent machine instance: a queue plus the
// surrounding state the fuzz harness stands in for (completion events and
// the dispatch cursor).
type cloneDriver struct {
	q        iq.Queue
	prog     []*uop.UOp
	inFlight []clonePending
	next     int
	issued   int
}

// step runs one protocol cycle. Latency decisions come from miss, indexed
// by program position, so the original and the clone see identical
// timings. It returns the Seqs issued this cycle.
func (d *cloneDriver) step(cycle int64, o Options, miss []bool) []int64 {
	kept := d.inFlight[:0]
	for _, pf := range d.inFlight {
		if pf.at <= cycle {
			pf.u.Complete = pf.at
			if pf.u.IsLoad() {
				d.q.NotifyLoadComplete(cycle, pf.u)
			}
			d.q.Writeback(cycle, pf.u)
			continue
		}
		kept = append(kept, pf)
	}
	d.inFlight = kept

	d.q.BeginCycle(cycle)
	var seqs []int64
	got := d.q.Issue(cycle, o.IssueWidth, func(*uop.UOp) bool { return true })
	for _, u := range got {
		d.issued++
		seqs = append(seqs, u.Seq)
		switch {
		case u.IsLoad():
			u.EADone = cycle + 1
			lat := int64(5)
			if miss[u.Seq] {
				lat = o.LoadMissLatency
				d.q.NotifyLoadMiss(cycle+1, u)
				u.MemKind = uop.MemMiss
			} else {
				u.MemKind = uop.MemHit
			}
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + lat})
		case u.IsStore():
			u.EADone = cycle + 1
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + 1})
		default:
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + int64(u.Latency())})
		}
	}
	for w := 0; w < o.DispatchWidth && d.next < len(d.prog); w++ {
		if !d.q.Dispatch(cycle, d.prog[d.next]) {
			break
		}
		d.next++
	}
	d.q.EndCycle(cycle, len(d.inFlight) > 0)
	return seqs
}

func cloneRound(t *testing.T, q iq.Queue, o Options, seed uint64) {
	t.Helper()
	r := &rng{s: seed}
	prog := buildProg(r, o.Instructions)
	miss := make([]bool, len(prog))
	for i := range miss {
		miss[i] = r.intn(3) == 0
	}
	cloneAt := int64(5 + r.intn(30))

	d := &cloneDriver{q: q, prog: prog}
	var d2 *cloneDriver

	for cycle := int64(1); ; cycle++ {
		if cycle > o.MaxCycles {
			t.Fatalf("seed %d: liveness violated: %d/%d issued after %d cycles (queue %s)",
				seed, d.issued, len(prog), cycle, d.q.Name())
		}
		if d2 == nil && cycle == cloneAt {
			m := uop.NewCloneMap()
			q2 := q.Clone(m)
			if q2.Len() != q.Len() {
				t.Fatalf("seed %d: clone len %d, original len %d", seed, q2.Len(), q.Len())
			}
			prog2 := make([]*uop.UOp, len(prog))
			for i, u := range prog {
				prog2[i] = m.Get(u)
			}
			inF2 := make([]clonePending, len(d.inFlight))
			for i, pf := range d.inFlight {
				inF2[i] = clonePending{u: m.Get(pf.u), at: pf.at}
			}
			d2 = &cloneDriver{q: q2, prog: prog2, inFlight: inF2, next: d.next, issued: d.issued}
		}
		seqs := d.step(cycle, o, miss)
		if d2 != nil {
			seqs2 := d2.step(cycle, o, miss)
			if len(seqs) != len(seqs2) {
				t.Fatalf("seed %d: cycle %d: original issued %v, clone issued %v", seed, cycle, seqs, seqs2)
			}
			for i := range seqs {
				if seqs[i] != seqs2[i] {
					t.Fatalf("seed %d: cycle %d: original issued %v, clone issued %v", seed, cycle, seqs, seqs2)
				}
			}
			if d.q.Len() != d2.q.Len() {
				t.Fatalf("seed %d: cycle %d: original len %d, clone len %d", seed, cycle, d.q.Len(), d2.q.Len())
			}
		}
		if d.issued == len(prog) && (d2 == nil || d2.issued == len(prog)) {
			if d2 == nil {
				t.Fatalf("seed %d: round drained at cycle %d before the clone point %d", seed, cycle, cloneAt)
			}
			return
		}
	}
}
