package iqtest

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/uop"
)

// CloneFuzz checks a queue's Clone against live state: it drives the
// queue through a random DAG, deep-clones it mid-round — with entries
// resident, chains allocated and instructions still to dispatch — and
// then runs original and clone to completion in lockstep. The two must
// issue identical instruction sequences every cycle and report identical
// occupancy, and neither may perturb the other (the clone works on
// remapped uops, so any shared mutable state shows up as divergence).
// A few cycles later the clone is itself cloned and the three machines
// run in lockstep: state that survives one Clone by luck (a shallowly
// shared readiness bitmap, say, that the original happens not to touch
// again) still has to survive being copied out of the copy.
func CloneFuzz(t *testing.T, mk func() iq.Queue, o Options) {
	t.Helper()
	second := 0
	for round := 0; round < o.Rounds; round++ {
		if cloneRound(t, mk(), o, uint64(round)*104729+11) {
			second++
		}
		if t.Failed() {
			return
		}
	}
	if second == 0 {
		t.Error("no round lived long enough to clone the clone")
	}
}

type clonePending struct {
	u  *uop.UOp
	at int64
}

// cloneDriver is one independent machine instance: a queue plus the
// surrounding state the fuzz harness stands in for (completion events and
// the dispatch cursor).
type cloneDriver struct {
	q        iq.Queue
	prog     []*uop.UOp
	inFlight []clonePending
	next     int
	issued   int
}

// step runs one protocol cycle. Latency decisions come from miss, indexed
// by program position, so the original and the clone see identical
// timings. It returns the Seqs issued this cycle.
func (d *cloneDriver) step(cycle int64, o Options, miss []bool) []int64 {
	kept := d.inFlight[:0]
	for _, pf := range d.inFlight {
		if pf.at <= cycle {
			pf.u.Complete = pf.at
			if pf.u.IsLoad() {
				d.q.NotifyLoadComplete(cycle, pf.u)
			}
			d.q.Writeback(cycle, pf.u)
			continue
		}
		kept = append(kept, pf)
	}
	d.inFlight = kept

	d.q.BeginCycle(cycle)
	var seqs []int64
	got := d.q.Issue(cycle, o.IssueWidth, func(*uop.UOp) bool { return true })
	for _, u := range got {
		d.issued++
		seqs = append(seqs, u.Seq)
		switch {
		case u.IsLoad():
			u.EADone = cycle + 1
			lat := int64(5)
			if miss[u.Seq] {
				lat = o.LoadMissLatency
				d.q.NotifyLoadMiss(cycle+1, u)
				u.MemKind = uop.MemMiss
			} else {
				u.MemKind = uop.MemHit
			}
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + lat})
		case u.IsStore():
			u.EADone = cycle + 1
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + 1})
		default:
			d.inFlight = append(d.inFlight, clonePending{u: u, at: cycle + int64(u.Latency())})
		}
	}
	for w := 0; w < o.DispatchWidth && d.next < len(d.prog); w++ {
		if !d.q.Dispatch(cycle, d.prog[d.next]) {
			break
		}
		d.next++
	}
	d.q.EndCycle(cycle, len(d.inFlight) > 0)
	return seqs
}

// cloneOf duplicates a driver through a fresh CloneMap, remapping the
// program, the in-flight completions and the queue together.
func cloneOf(t *testing.T, d *cloneDriver, seed uint64) *cloneDriver {
	t.Helper()
	m := uop.NewCloneMap()
	q2 := d.q.Clone(m)
	if q2.Len() != d.q.Len() {
		t.Fatalf("seed %d: clone len %d, original len %d", seed, q2.Len(), d.q.Len())
	}
	prog2 := make([]*uop.UOp, len(d.prog))
	for i, u := range d.prog {
		prog2[i] = m.Get(u)
	}
	inF2 := make([]clonePending, len(d.inFlight))
	for i, pf := range d.inFlight {
		inF2[i] = clonePending{u: m.Get(pf.u), at: pf.at}
	}
	return &cloneDriver{q: q2, prog: prog2, inFlight: inF2, next: d.next, issued: d.issued}
}

// cloneRound reports whether the round lived long enough to reach the
// second (clone-of-clone) fork point.
func cloneRound(t *testing.T, q iq.Queue, o Options, seed uint64) bool {
	t.Helper()
	r := &rng{s: seed}
	prog := buildProg(r, o.Instructions)
	miss := make([]bool, len(prog))
	for i := range miss {
		miss[i] = r.intn(3) == 0
	}
	cloneAt := int64(5 + r.intn(30))
	clone2At := cloneAt + int64(1+r.intn(8))

	d := &cloneDriver{q: q, prog: prog}
	var d2, d3 *cloneDriver

	for cycle := int64(1); ; cycle++ {
		if cycle > o.MaxCycles {
			t.Fatalf("seed %d: liveness violated: %d/%d issued after %d cycles (queue %s)",
				seed, d.issued, len(prog), cycle, d.q.Name())
		}
		if d2 == nil && cycle == cloneAt {
			d2 = cloneOf(t, d, seed)
		}
		if d3 == nil && d2 != nil && cycle == clone2At {
			d3 = cloneOf(t, d2, seed)
		}
		seqs := d.step(cycle, o, miss)
		for name, dc := range map[string]*cloneDriver{"clone": d2, "clone-of-clone": d3} {
			if dc == nil {
				continue
			}
			seqs2 := dc.step(cycle, o, miss)
			mismatch := len(seqs) != len(seqs2)
			for i := 0; !mismatch && i < len(seqs); i++ {
				mismatch = seqs[i] != seqs2[i]
			}
			if mismatch {
				t.Fatalf("seed %d: cycle %d: original issued %v, %s issued %v", seed, cycle, seqs, name, seqs2)
			}
			if d.q.Len() != dc.q.Len() {
				t.Fatalf("seed %d: cycle %d: original len %d, %s len %d", seed, cycle, d.q.Len(), name, dc.q.Len())
			}
		}
		if d.issued == len(prog) &&
			(d2 == nil || d2.issued == len(prog)) && (d3 == nil || d3.issued == len(prog)) {
			if d2 == nil {
				t.Fatalf("seed %d: round drained at cycle %d before the clone point %d", seed, cycle, cloneAt)
			}
			return d3 != nil
		}
	}
}
