// Package iqtest provides a conformance and fuzz harness for iq.Queue
// implementations: it drives a queue through the simulator's per-cycle
// protocol with randomly generated dependence DAGs and checks the
// invariants every scheduler must uphold —
//
//   - conservation: every accepted instruction is in the queue or issued,
//     exactly once;
//   - correctness: nothing issues before its operands' completion times
//     (the address operand only, for stores);
//   - liveness: once all producers complete, everything drains within a
//     bounded number of cycles (deadlock recovery included).
//
// Each queue package runs it against its own implementation.
package iqtest

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/uop"
)

// rng is a local SplitMix64 (testing determinism, no package deps).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Options scales the fuzz run.
type Options struct {
	// Instructions per round.
	Instructions int
	// Rounds with different random DAGs.
	Rounds int
	// LoadMissLatency is the simulated miss turnaround.
	LoadMissLatency int64
	// MaxCycles bounds one round (liveness check).
	MaxCycles int64
	// IssueWidth and DispatchWidth of the simulated machine.
	IssueWidth, DispatchWidth int
}

// DefaultOptions returns a moderate fuzz configuration.
func DefaultOptions() Options {
	return Options{
		Instructions:    400,
		Rounds:          12,
		LoadMissLatency: 60,
		MaxCycles:       200_000,
		IssueWidth:      8,
		DispatchWidth:   8,
	}
}

// Fuzz drives queues built by mk through random DAGs.
func Fuzz(t *testing.T, mk func() iq.Queue, o Options) {
	t.Helper()
	for round := 0; round < o.Rounds; round++ {
		fuzzRound(t, mk(), o, uint64(round)*7919+1)
		if t.Failed() {
			return
		}
	}
}

// buildProg generates a random renamed program: a DAG over architectural
// registers with most-recent-writer producer edges.
func buildProg(r *rng, n int) []*uop.UOp {
	prog := make([]*uop.UOp, n)
	for i := range prog {
		var in isa.Inst
		in.PC = 0x1000 + uint64(4*i)
		in.Src1, in.Src2, in.Dest = isa.RegNone, isa.RegNone, isa.RegNone
		switch r.intn(10) {
		case 0, 1, 2: // load
			in.Class = isa.Load
			in.Src1 = 1 + r.intn(20)
			in.Dest = 1 + r.intn(20)
			in.Size = 8
			in.Addr = uint64(0x10000 + r.intn(1<<16))
		case 3: // store
			in.Class = isa.Store
			in.Src1 = 1 + r.intn(20)
			in.Src2 = 1 + r.intn(20)
			in.Size = 8
			in.Addr = uint64(0x10000 + r.intn(1<<16))
		case 4: // branch
			in.Class = isa.Branch
			in.Src1 = 1 + r.intn(20)
		default: // ALU with 1-2 sources
			in.Class = isa.IntAlu
			in.Src1 = 1 + r.intn(20)
			if r.intn(2) == 0 {
				in.Src2 = 1 + r.intn(20)
			}
			in.Dest = 1 + r.intn(20)
		}
		prog[i] = uop.New(int64(i), in)
	}
	last := map[int]*uop.UOp{}
	for _, u := range prog {
		for j := 0; j < 2; j++ {
			src := u.Src(j)
			if src == isa.RegNone || src == isa.RegZero {
				continue
			}
			if p, ok := last[src]; ok {
				u.Prod[j] = p
			}
		}
		if u.Inst.HasDest() {
			last[u.Inst.Dest] = u
		}
	}
	return prog
}

func fuzzRound(t *testing.T, q iq.Queue, o Options, seed uint64) {
	t.Helper()
	r := &rng{s: seed}
	prog := buildProg(r, o.Instructions)

	type pending struct {
		u  *uop.UOp
		at int64 // completion time to apply
	}
	var inFlight []pending
	issuedSet := make(map[*uop.UOp]bool)
	next := 0
	issuedCount := 0
	dispatched := 0

	for cycle := int64(1); ; cycle++ {
		if cycle > o.MaxCycles {
			t.Fatalf("seed %d: liveness violated: %d/%d issued after %d cycles (queue %s len %d)",
				seed, issuedCount, len(prog), cycle, q.Name(), q.Len())
		}
		// Apply completions due this cycle.
		kept := inFlight[:0]
		for _, pf := range inFlight {
			if pf.at <= cycle {
				pf.u.Complete = pf.at
				if pf.u.IsLoad() {
					q.NotifyLoadComplete(cycle, pf.u)
				}
				q.Writeback(cycle, pf.u)
				continue
			}
			kept = append(kept, pf)
		}
		inFlight = kept

		q.BeginCycle(cycle)

		got := q.Issue(cycle, o.IssueWidth, func(*uop.UOp) bool { return true })
		for _, u := range got {
			if issuedSet[u] {
				t.Fatalf("seed %d: %v issued twice", seed, u)
			}
			issuedSet[u] = true
			issuedCount++
			if !u.IssueReady(cycle) {
				t.Fatalf("seed %d: %v issued before ready at cycle %d", seed, u, cycle)
			}
			switch {
			case u.IsLoad():
				u.EADone = cycle + 1
				lat := int64(5)
				if r.intn(3) == 0 { // a miss
					lat = o.LoadMissLatency
					q.NotifyLoadMiss(cycle+1, u)
					u.MemKind = uop.MemMiss
				} else {
					u.MemKind = uop.MemHit
				}
				inFlight = append(inFlight, pending{u: u, at: cycle + lat})
			case u.IsStore():
				u.EADone = cycle + 1
				inFlight = append(inFlight, pending{u: u, at: cycle + 1})
			default:
				inFlight = append(inFlight, pending{u: u, at: cycle + int64(u.Latency())})
			}
		}

		// In-order dispatch with stall-and-retry.
		for w := 0; w < o.DispatchWidth && next < len(prog); w++ {
			if !q.Dispatch(cycle, prog[next]) {
				break
			}
			dispatched++
			next++
		}

		// Conservation.
		if q.Len() != dispatched-issuedCount {
			t.Fatalf("seed %d: conservation violated: len %d, dispatched %d, issued %d",
				seed, q.Len(), dispatched, issuedCount)
		}

		machineActive := len(inFlight) > 0
		q.EndCycle(cycle, machineActive)

		if issuedCount == len(prog) {
			if q.Len() != 0 {
				t.Fatalf("seed %d: queue reports %d entries after full drain", seed, q.Len())
			}
			return
		}
	}
}
