package iq

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

func sbAlu(seq int64) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
}

func sbStore(seq int64) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.Store, Src1: 1, Src2: 2, Dest: isa.RegNone})
}

func TestScoreboardImmediatelyReady(t *testing.T) {
	var s Scoreboard
	s.Grow(4)
	if !s.Track(0, sbAlu(0), 3) {
		t.Fatal("operand-free instruction should be ready at track time")
	}
	if s.Pending() {
		t.Error("nothing should be parked or scheduled")
	}
}

func TestScoreboardParkAndWake(t *testing.T) {
	var s Scoreboard
	s.Grow(4)
	p := sbAlu(0)
	c := sbAlu(1)
	c.Prod[0] = p
	if s.Track(1, c, 0) {
		t.Fatal("consumer of an unresolved producer must not be ready")
	}
	if got := s.Due(5); len(got) != 0 {
		t.Fatalf("nothing scheduled, Due = %v", got)
	}
	p.Complete = 4
	// Wake at cycle 2: completion is in the future, so the handle moves
	// to the wheel and surfaces from Due exactly at cycle 4.
	if got := s.Wake(p, 2); len(got) != 0 {
		t.Fatalf("wake before completion returned %v", got)
	}
	if got := s.Due(3); len(got) != 0 {
		t.Fatalf("Due(3) = %v, want empty", got)
	}
	if got := s.Due(4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Due(4) = %v, want [1]", got)
	}
	if s.Pending() {
		t.Error("scoreboard should be drained")
	}
}

func TestScoreboardWakeSameCycle(t *testing.T) {
	var s Scoreboard
	s.Grow(2)
	p := sbAlu(0)
	c := sbAlu(1)
	c.Prod[1] = p
	s.Track(0, c, 0)
	p.Complete = 7
	if got := s.Wake(p, 7); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Wake at the completion cycle = %v, want [0]", got)
	}
}

func TestScoreboardReparksOnSecondProducer(t *testing.T) {
	var s Scoreboard
	s.Grow(2)
	p0, p1 := sbAlu(0), sbAlu(1)
	c := sbAlu(2)
	c.Prod[0] = p0
	c.Prod[1] = p1
	s.Track(0, c, 0)
	p0.Complete = 2
	if got := s.Wake(p0, 2); len(got) != 0 {
		t.Fatalf("still blocked on p1, Wake = %v", got)
	}
	p1.Complete = 9
	if got := s.Wake(p1, 9); len(got) != 1 {
		t.Fatalf("Wake after last producer = %v", got)
	}
}

func TestScoreboardStoreDataDoesNotGate(t *testing.T) {
	var s Scoreboard
	s.Grow(2)
	data, addr := sbAlu(0), sbAlu(1)
	st := sbStore(2)
	st.Prod[0] = data // pending data must not gate issue
	st.Prod[1] = addr
	addr.Complete = 0
	if !s.Track(0, st, 1) {
		t.Fatal("store with resolved address should be issue-ready")
	}
}

func TestScoreboardUntrackCancelsWheelAndChain(t *testing.T) {
	var s Scoreboard
	s.Grow(4)
	p := sbAlu(0)
	parked, wheeled := sbAlu(1), sbAlu(2)
	parked.Prod[0] = p
	wheeled.Prod[0] = p
	s.Track(1, parked, 0)
	p.Complete = 6
	s.Track(2, wheeled, 0) // known future completion: goes to the wheel
	s.Untrack(1)
	s.Untrack(2)
	if got := s.Wake(p, 6); len(got) != 0 {
		t.Fatalf("untracked handle woke: %v", got)
	}
	if got := s.Due(6); len(got) != 0 {
		t.Fatalf("untracked handle surfaced from wheel: %v", got)
	}
	// Reusing handle 2 must not inherit the stale wheel entry.
	q := sbAlu(3)
	if !s.Track(2, q, 10) {
		t.Fatal("reused handle should be ready")
	}
}

func TestScoreboardManyWaitersOneProducer(t *testing.T) {
	var s Scoreboard
	s.Grow(8)
	p := sbAlu(0)
	for h := int32(0); h < 8; h++ {
		c := sbAlu(int64(h) + 1)
		c.Prod[0] = p
		s.Track(h, c, 0)
	}
	s.Untrack(3) // drop one from the middle of the chain
	p.Complete = 1
	got := s.Wake(p, 1)
	if len(got) != 7 {
		t.Fatalf("woke %d handles, want 7: %v", len(got), got)
	}
	seen := map[int32]bool{}
	for _, h := range got {
		if h == 3 {
			t.Fatal("untracked handle woke")
		}
		seen[h] = true
	}
	if len(seen) != 7 {
		t.Fatalf("duplicate handles in %v", got)
	}
}

func TestScoreboardClone(t *testing.T) {
	var s Scoreboard
	s.Grow(4)
	p := sbAlu(0)
	parked := sbAlu(1)
	parked.Prod[0] = p
	s.Track(0, parked, 0)
	fut := sbAlu(2)
	done := sbAlu(3)
	done.Complete = 9
	fut.Prod[0] = done
	s.Track(1, fut, 0)

	m := uop.NewCloneMap()
	cs := s.Clone(m)

	// Waking the original producer must not affect the clone…
	p.Complete = 2
	if got := s.Wake(p, 2); len(got) != 1 {
		t.Fatalf("original Wake = %v", got)
	}
	// …whose chain still holds the cloned consumer, keyed by the cloned
	// producer pointer.
	if got := cs.Wake(p, 2); len(got) != 0 {
		t.Fatalf("clone woke on the original pointer: %v", got)
	}
	cp := m.Get(p)
	cp.Complete = 2
	if got := cs.Wake(cp, 2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("clone Wake on cloned producer = %v", got)
	}
	if got := cs.Due(9); len(got) != 1 || got[0] != 1 {
		t.Fatalf("clone Due = %v", got)
	}
}
