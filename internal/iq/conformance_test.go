package iq_test

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/iq/iqtest"
)

func TestConformanceFuzz(t *testing.T) {
	for name, size := range map[string]int{"large": 256, "tiny": 4} {
		size := size
		t.Run(name, func(t *testing.T) {
			iqtest.Fuzz(t, func() iq.Queue { return iq.NewConventional(size) }, iqtest.DefaultOptions())
		})
	}
}

func TestCloneFuzz(t *testing.T) {
	iqtest.CloneFuzz(t, func() iq.Queue { return iq.NewConventional(256) }, iqtest.DefaultOptions())
}
