package iq

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

func alu(seq int64, src1, src2, dest int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: src1, Src2: src2, Dest: dest})
}

func always(*uop.UOp) bool { return true }

func TestConventionalBasics(t *testing.T) {
	q := NewConventional(4)
	if q.Name() != "ideal" || q.Capacity() != 4 || q.Len() != 0 {
		t.Fatal("ctor state wrong")
	}
	if q.ExtraDispatchStages() != 0 {
		t.Error("conventional IQ has no extra dispatch stage")
	}
}

func TestConventionalCapacityStall(t *testing.T) {
	q := NewConventional(2)
	for i := int64(0); i < 2; i++ {
		if !q.Dispatch(0, alu(i, isa.RegNone, isa.RegNone, 1)) {
			t.Fatalf("dispatch %d rejected", i)
		}
	}
	if q.Dispatch(0, alu(2, isa.RegNone, isa.RegNone, 1)) {
		t.Fatal("dispatch into full queue accepted")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_full_stalls") != 1 {
		t.Error("full stall not counted")
	}
}

func TestConventionalIssueOldestReadyFirst(t *testing.T) {
	q := NewConventional(8)
	// u0 ready; u1 depends on u0; u2 ready.
	u0 := alu(0, isa.RegNone, isa.RegNone, 1)
	u1 := alu(1, 1, isa.RegNone, 2)
	u1.Prod[0] = u0
	u2 := alu(2, isa.RegNone, isa.RegNone, 3)
	for _, u := range []*uop.UOp{u0, u1, u2} {
		q.Dispatch(0, u)
	}
	q.BeginCycle(1)
	got := q.Issue(1, 8, always)
	if len(got) != 2 || got[0] != u0 || got[1] != u2 {
		t.Fatalf("issued %v", got)
	}
	if u0.IssueCycle != 1 {
		t.Error("issue cycle not stamped")
	}
	// u0 completes at 2 (1-cycle ALU): model the pipeline doing so.
	u0.Complete = 2
	q.BeginCycle(2)
	got = q.Issue(2, 8, always)
	if len(got) != 1 || got[0] != u1 {
		t.Fatalf("dependent issue = %v", got)
	}
	if q.Len() != 0 {
		t.Error("queue should be empty")
	}
}

func TestConventionalNoSameCycleIssue(t *testing.T) {
	q := NewConventional(8)
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	q.Dispatch(5, u)
	if got := q.Issue(5, 8, always); len(got) != 0 {
		t.Fatal("instruction issued in its dispatch cycle")
	}
	if got := q.Issue(6, 8, always); len(got) != 1 {
		t.Fatal("instruction should issue the next cycle")
	}
}

func TestConventionalIssueWidthLimit(t *testing.T) {
	q := NewConventional(16)
	for i := int64(0); i < 10; i++ {
		q.Dispatch(0, alu(i, isa.RegNone, isa.RegNone, 1))
	}
	got := q.Issue(1, 4, always)
	if len(got) != 4 {
		t.Fatalf("issued %d, want width limit 4", len(got))
	}
	for i, u := range got {
		if u.Seq != int64(i) {
			t.Fatalf("issue order not oldest-first: %v", got)
		}
	}
	if q.Len() != 6 {
		t.Errorf("remaining = %d", q.Len())
	}
}

func TestConventionalFunctionUnitRejection(t *testing.T) {
	q := NewConventional(8)
	u0 := uop.New(0, isa.Inst{Class: isa.IntDiv, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
	u1 := alu(1, isa.RegNone, isa.RegNone, 2)
	q.Dispatch(0, u0)
	q.Dispatch(0, u1)
	// Divider busy: reject divs, accept ALU.
	got := q.Issue(1, 8, func(u *uop.UOp) bool { return u.Inst.Class != isa.IntDiv })
	if len(got) != 1 || got[0] != u1 {
		t.Fatalf("issued %v, want only the ALU op", got)
	}
	if q.Len() != 1 {
		t.Error("rejected op should remain queued")
	}
}

func TestConventionalStats(t *testing.T) {
	q := NewConventional(8)
	u0 := alu(0, isa.RegNone, isa.RegNone, 1)
	u1 := alu(1, 1, isa.RegNone, 2)
	u1.Prod[0] = u0
	q.Dispatch(0, u0)
	q.Dispatch(0, u1)
	q.BeginCycle(1) // occupancy 2, ready 1
	q.Issue(1, 8, always)
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_dispatched") != 2 || s.MustGet("iq_issued") != 1 {
		t.Errorf("counts wrong: %s", s)
	}
	if s.MustGet("iq_occupancy_avg") != 2 {
		t.Errorf("occupancy = %v", s.MustGet("iq_occupancy_avg"))
	}
	if s.MustGet("iq_ready_avg") != 1 {
		t.Errorf("ready = %v", s.MustGet("iq_ready_avg"))
	}
}

func TestConventionalNotificationsAreNoops(t *testing.T) {
	q := NewConventional(4)
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	// Must not panic or change state.
	q.NotifyLoadMiss(0, u)
	q.NotifyLoadComplete(0, u)
	q.Writeback(0, u)
	q.EndCycle(0, false)
	if q.Len() != 0 {
		t.Error("no-ops changed state")
	}
}
