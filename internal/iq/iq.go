// Package iq defines the instruction-queue abstraction shared by every
// scheduler design in the repository, and implements the conventional
// monolithic queue — the paper's "ideal, single-cycle" baseline, whose
// wakeup and select logic searches every entry each cycle regardless of
// size. The modelled hardware rescans everything; the software model
// reproduces the same cycle-level behaviour with event-driven readiness
// bitmaps (see DESIGN.md and the Scoreboard type).
package iq

import (
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/stats"
	"repro/internal/uop"
)

// Queue is an instruction scheduler: the structure between dispatch and
// the function units. The simulator drives one Queue per core through the
// following per-cycle protocol, in order:
//
//	BeginCycle → Issue → (LSQ / memory notifications) → Dispatch* → EndCycle
//
// Implementations must tolerate any number of Dispatch calls per cycle
// (the simulator enforces dispatch width) and must not issue an
// instruction in the cycle it was dispatched or promoted into the issue
// stage.
type Queue interface {
	// Name identifies the design for reports.
	Name() string
	// Capacity is the total number of instruction slots.
	Capacity() int
	// Len is the number of occupied slots.
	Len() int
	// ExtraDispatchStages is the number of additional dispatch pipeline
	// cycles this design costs over a conventional IQ (the paper charges
	// the segmented and prescheduling designs one extra cycle).
	ExtraDispatchStages() int

	// BeginCycle performs the design's internal per-cycle work that
	// precedes issue: delay-value maintenance, promotion between
	// segments, array shifting, and so on.
	BeginCycle(cycle int64)

	// Issue selects up to max ready instructions, oldest first, removes
	// them from the queue and returns them. tryIssue is consulted for
	// each candidate; it returns false if no function unit can accept the
	// instruction this cycle, and reserves the unit when it returns true,
	// so the Queue must then issue that instruction. The returned slice
	// may be backed by storage owned by the queue: it is valid only until
	// the next Issue call, and callers must not retain it.
	Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp

	// Dispatch inserts a renamed instruction. It returns false — with no
	// state modified — if the design must stall dispatch (no slot, or no
	// free chain wire). The simulator retries the same instruction next
	// cycle; dispatch is in order.
	Dispatch(cycle int64, u *uop.UOp) bool

	// NotifyLoadMiss tells the scheduler that an issued load has been
	// discovered not to hit the L1 (chain suspension in the segmented
	// design).
	NotifyLoadMiss(cycle int64, u *uop.UOp)
	// NotifyLoadComplete tells the scheduler that a load's data has
	// returned (chain resumption, consumer wakeup).
	NotifyLoadComplete(cycle int64, u *uop.UOp)
	// Writeback tells the scheduler that u's result has been written to
	// the register file (chain deallocation point). Implementations rely
	// on this call — delivered no later than the first cycle the result
	// is architecturally visible — to wake parked consumers.
	Writeback(cycle int64, u *uop.UOp)

	// EndCycle closes the cycle. machineActive reports whether anything
	// outside the queue made progress (instructions executing, memory
	// traffic, commits); the segmented design uses its absence for
	// deadlock detection.
	EndCycle(cycle int64, machineActive bool)

	// CollectStats adds design-specific statistics to s.
	CollectStats(s *stats.Set)

	// Quiescent reports whether the queue is provably frozen at the end
	// of the given cycle: no resident instruction is (or can become)
	// issue-ready, and no internal per-cycle work — promotion, wire
	// delivery, delay countdowns, recovery — can change any state before
	// the next external event (a memory completion or a dispatch) arrives.
	// The engine combines this with its own idle checks to skip cycles;
	// implementations must answer conservatively (false when unsure),
	// since a wrong true silently changes simulated behaviour.
	Quiescent(cycle int64) bool

	// SkipCycles replays, for the elided cycles [from, to), exactly the
	// observable side effects BeginCycle would have had on a frozen queue
	// — per-cycle statistics samples (honouring the sampling knob) and
	// any state churn that is not a pure function of the cycle number
	// (e.g. wire-pipeline slice rotation) — so that a skipping run stays
	// bit-identical, stats included, to a run that ticked every cycle.
	// Only called after Quiescent(from-1) returned true with no
	// intervening event.
	SkipCycles(from, to int64)

	// Clone returns a deep copy of the queue sharing no mutable state
	// with the receiver. Held instructions are remapped through m, so a
	// cloned machine's layers agree on the cloned uop identities; any
	// queue-private per-instruction state (uop.UOp.IQ) is re-attached to
	// the clones by the implementation.
	Clone(m *uop.CloneMap) Queue

	// Demands returns the monotone high-watermark curves of the design's
	// bounded resources, recorded since construction (see demand.go). The
	// returned slices are owned by the queue; callers must not retain
	// them across further stepping.
	Demands() []DemandCurve

	// CloneBounded clones the queue with its design-specific sweep bound
	// (queue capacity for the conventional design, chain-wire count for
	// the segmented design) tightened to bound, refitting internal
	// structures so the clone is exactly the machine a cold run under
	// that bound would have built — valid only while the watermark has
	// never exceeded bound, which implementations must verify. ok=false
	// means the refit cannot be proven safe (watermark already crossed,
	// or the design does not support refitting) and the caller must fall
	// back to a cold fork.
	CloneBounded(m *uop.CloneMap, bound int) (Queue, bool)
}

// Conventional is a monolithic instruction queue with full-queue wakeup
// and select each cycle. With unconstrained size it is the paper's "ideal"
// IQ; at 32 entries it is the conventional baseline the segmented design
// is compared against.
//
// Instructions live in a packed array kept sorted by sequence number, so
// position doubles as age order; a position-indexed ready bitmap is
// maintained event-driven by a Scoreboard. Wakeup then costs nothing for
// entries whose operands did not change, and select takes set bits in
// position order — the first set bit is the oldest ready instruction, no
// sorting needed. The selection each cycle is identical to the full
// rescan the modelled hardware performs.
type Conventional struct {
	name       string
	capacity   int
	statsEvery int64 // sample per-cycle stats every n cycles (<=1: every)
	now        int64 // last BeginCycle; clocks wakeup deliveries

	// slots is packed and seq-sorted; ids maps a position to the
	// instruction's stable scoreboard handle, posOf is the inverse (valid
	// while resident), and freeH recycles handles of departed entries.
	slots []*uop.UOp
	ids   []int32
	posOf []int32
	freeH []int32

	readyW []uint64 // position-indexed: issue-ready
	storeW []uint64 // position-indexed: stores (Ready-stat correction)
	sb     Scoreboard

	// unresolved holds issued producers whose completion time was still
	// unknown when they left the queue: the execution core stamps
	// u.Complete right after Issue returns, so the next BeginCycle wakes
	// their consumers with the exact completion cycle. (The Writeback
	// call delivers the same information; whichever arrives first wins.)
	unresolved []*uop.UOp

	outScratch []*uop.UOp // backs Issue's result; reused every cycle
	rmScratch  []int32    // removed positions, ascending; reused every cycle

	issued     stats.Counter
	dispatched stats.Counter
	fullStalls stats.Counter
	occupancy  stats.Mean
	readyInIQ  stats.Mean

	dem Watermark // occupancy high-watermark, for prefix sharing
}

// NewConventional builds a conventional/ideal IQ with the given capacity.
func NewConventional(capacity int) *Conventional {
	return &Conventional{name: "ideal", capacity: capacity}
}

// SetStatsSampling makes BeginCycle's readiness statistics run only every
// n cycles (<=1: every cycle). Scheduling is unaffected; only the
// resolution of the occupancy/readiness averages changes.
func (q *Conventional) SetStatsSampling(n int) { q.statsEvery = int64(n) }

// Name implements Queue.
func (q *Conventional) Name() string { return q.name }

// Capacity implements Queue.
func (q *Conventional) Capacity() int { return q.capacity }

// Len implements Queue.
func (q *Conventional) Len() int { return len(q.slots) }

// ExtraDispatchStages implements Queue: a conventional IQ costs nothing
// extra.
func (q *Conventional) ExtraDispatchStages() int { return 0 }

// wake delivers p's now-known completion time to parked consumers.
func (q *Conventional) wake(cycle int64, p *uop.UOp) {
	for _, h := range q.sb.Wake(p, cycle) {
		bitvec.Set(q.readyW, int(q.posOf[h]))
	}
}

// resolve re-checks issued producers whose completion time was unknown.
func (q *Conventional) resolve(cycle int64) {
	kept := q.unresolved[:0]
	for _, u := range q.unresolved {
		if u.Complete == uop.NotYet {
			kept = append(kept, u)
			continue
		}
		q.wake(cycle, u)
	}
	for i := len(kept); i < len(q.unresolved); i++ {
		q.unresolved[i] = nil
	}
	q.unresolved = kept
}

// BeginCycle implements Queue: deliver scheduled wakeups, then sample the
// occupancy/readiness statistics the modelled hardware would observe.
func (q *Conventional) BeginCycle(cycle int64) {
	q.now = cycle
	if len(q.unresolved) > 0 {
		q.resolve(cycle)
	}
	for _, h := range q.sb.Due(cycle) {
		bitvec.Set(q.readyW, int(q.posOf[h]))
	}
	if q.statsEvery > 1 && cycle%q.statsEvery != 0 {
		return
	}
	q.sampleStats(cycle)
}

// sampleStats records the per-cycle occupancy/readiness observations, the
// modelled hardware's view at the given cycle.
func (q *Conventional) sampleStats(cycle int64) {
	q.occupancy.Observe(float64(len(q.slots)))
	ready := bitvec.Count(q.readyW)
	// The ready bitmap tracks issue readiness, under which a store waits
	// only for its address; the conventional-wakeup statistic counts full
	// operand readiness, so discount ready stores with pending data.
	for k := range q.readyW {
		w := q.readyW[k] & q.storeW[k]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			if !q.slots[k<<6+b].OperandReady(0, cycle) {
				ready--
			}
		}
	}
	q.readyInIQ.Observe(float64(ready))
}

// Quiescent implements Queue: nothing resident is issue-ready and no
// resolved producer is pending delivery. Waiters parked on unresolved
// producers and wheel entries for future completions are both fine — the
// completions they wait for arrive via memory/writeback events, which the
// engine bounds the skip window by.
func (q *Conventional) Quiescent(cycle int64) bool {
	for _, w := range q.readyW {
		if w != 0 {
			return false
		}
	}
	for _, u := range q.unresolved {
		if u.Complete != uop.NotYet {
			return false
		}
	}
	return true
}

// SkipCycles implements Queue: on a frozen conventional queue BeginCycle
// only samples statistics, so replay just the sampling.
func (q *Conventional) SkipCycles(from, to int64) {
	if q.statsEvery > 1 {
		for x := from; x < to; x++ {
			if x%q.statsEvery == 0 {
				q.sampleStats(x)
			}
		}
		return
	}
	for x := from; x < to; x++ {
		q.sampleStats(x)
	}
}

// Issue implements Queue: single-cycle wakeup and select over the whole
// structure, oldest ready instructions first. The returned slice is owned
// by the queue and valid until the next call.
func (q *Conventional) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	if cycle != q.now {
		// Unit-test drivers may skip BeginCycle; deliver wakeups here.
		q.now = cycle
		if len(q.unresolved) > 0 {
			q.resolve(cycle)
		}
		for _, h := range q.sb.Due(cycle) {
			bitvec.Set(q.readyW, int(q.posOf[h]))
		}
	}
	out := q.outScratch[:0]
	removed := q.rmScratch[:0]
	// Positions are age order, so taking set bits low-to-high visits the
	// ready instructions oldest first.
scan:
	for k, w := range q.readyW {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			pos := k<<6 + b
			u := q.slots[pos]
			if u.DispatchCycle < cycle && tryIssue(u) {
				u.IssueCycle = cycle
				out = append(out, u)
				removed = append(removed, int32(pos))
				if u.Inst.HasDest() {
					q.unresolved = append(q.unresolved, u)
				}
				if len(out) >= max {
					break scan
				}
			}
		}
	}
	if len(removed) > 0 {
		q.removeBatch(removed)
	}
	q.outScratch = out
	q.rmScratch = removed
	q.issued.Add(uint64(len(out)))
	return out
}

// removeBatch frees the instructions at the given ascending positions,
// recompacting the seq-sorted array and both bitmaps.
func (q *Conventional) removeBatch(removed []int32) {
	n, m := len(q.slots), len(removed)
	for _, p := range removed {
		h := q.ids[p]
		q.sb.Untrack(h)
		q.freeH = append(q.freeH, h)
	}
	if int(removed[m-1]) == m-1 {
		// The removed set is the contiguous front of the queue — the
		// common case, since the oldest ready instructions issue together.
		copy(q.slots, q.slots[m:])
		copy(q.ids, q.ids[m:])
		for p := 0; p < n-m; p++ {
			q.posOf[q.ids[p]] = int32(p)
		}
		for i := 0; i < m; i++ {
			bitvec.Remove(q.readyW, 0)
			bitvec.Remove(q.storeW, 0)
		}
		for i := n - m; i < n; i++ {
			q.slots[i] = nil
		}
		q.slots = q.slots[:n-m]
		q.ids = q.ids[:n-m]
		return
	}
	w, ri := int(removed[0]), 0
	for r := w; r < n; r++ {
		if ri < m && removed[ri] == int32(r) {
			ri++
			continue
		}
		h := q.ids[r]
		q.slots[w] = q.slots[r]
		q.ids[w] = h
		q.posOf[h] = int32(w)
		bitvec.Assign(q.readyW, w, bitvec.Test(q.readyW, r))
		bitvec.Assign(q.storeW, w, bitvec.Test(q.storeW, r))
		w++
	}
	for i := w; i < n; i++ {
		q.slots[i] = nil
		bitvec.Clear(q.readyW, i)
		bitvec.Clear(q.storeW, i)
	}
	q.slots = q.slots[:w]
	q.ids = q.ids[:w]
}

// Dispatch implements Queue.
func (q *Conventional) Dispatch(cycle int64, u *uop.UOp) bool {
	if len(q.slots) >= q.capacity {
		q.fullStalls.Inc()
		return false
	}
	var h int32
	if n := len(q.freeH); n > 0 {
		h = q.freeH[n-1]
		q.freeH = q.freeH[:n-1]
	} else {
		h = int32(len(q.posOf))
		q.posOf = append(q.posOf, 0)
		q.sb.Grow(len(q.posOf))
	}
	// Dispatch is in program order, so the insert position is almost
	// always the tail; the binary search covers replay-style drivers that
	// re-dispatch older sequence numbers.
	pos := len(q.slots)
	if pos > 0 && q.slots[pos-1].Seq > u.Seq {
		lo, hi := 0, pos
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if q.slots[mid].Seq < u.Seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pos = lo
	}
	u.DispatchCycle = cycle
	q.slots = append(q.slots, nil)
	copy(q.slots[pos+1:], q.slots[pos:])
	q.slots[pos] = u
	q.ids = append(q.ids, 0)
	copy(q.ids[pos+1:], q.ids[pos:])
	q.ids[pos] = h
	for p := pos; p < len(q.ids); p++ {
		q.posOf[q.ids[p]] = int32(p)
	}
	for len(q.readyW) < bitvec.Words(len(q.slots)) {
		q.readyW = append(q.readyW, 0)
		q.storeW = append(q.storeW, 0)
	}
	bitvec.Insert(q.storeW, pos, u.IsStore())
	bitvec.Insert(q.readyW, pos, q.sb.Track(h, u, cycle))
	q.dispatched.Inc()
	q.dem.Observe(cycle, int64(len(q.slots)))
	return true
}

// NotifyLoadMiss implements Queue (no-op: readiness is delivered when the
// data returns).
func (q *Conventional) NotifyLoadMiss(cycle int64, u *uop.UOp) {}

// NotifyLoadComplete implements Queue: the load's completion cycle is now
// known, so wake its parked consumers. The wake is clocked by the queue's
// own cycle, not the caller's stamp: some drivers announce a writeback
// scheduled for a future cycle, and readiness must not arrive early.
func (q *Conventional) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
}

// Writeback implements Queue: wake consumers parked on u (see
// NotifyLoadComplete for the clocking).
func (q *Conventional) Writeback(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
}

// EndCycle implements Queue (no-op: a conventional IQ cannot deadlock).
func (q *Conventional) EndCycle(cycle int64, machineActive bool) {}

// Clone implements Queue.
func (q *Conventional) Clone(m *uop.CloneMap) Queue {
	n := new(Conventional)
	*n = *q
	n.outScratch = nil
	n.rmScratch = nil
	n.slots = make([]*uop.UOp, len(q.slots))
	for i, u := range q.slots {
		n.slots[i] = m.Get(u)
	}
	n.ids = append([]int32(nil), q.ids...)
	n.posOf = append([]int32(nil), q.posOf...)
	n.freeH = append([]int32(nil), q.freeH...)
	n.readyW = append([]uint64(nil), q.readyW...)
	n.storeW = append([]uint64(nil), q.storeW...)
	n.sb = q.sb.Clone(m)
	n.unresolved = make([]*uop.UOp, len(q.unresolved))
	for i, u := range q.unresolved {
		n.unresolved[i] = m.Get(u)
	}
	n.dem.Steps = q.dem.CloneSteps()
	return n
}

// Demands implements Queue: the occupancy high-watermark, which is the
// dimension a queue-size sweep tightens.
func (q *Conventional) Demands() []DemandCurve {
	return []DemandCurve{{Dim: "iq", Steps: q.dem.Steps}}
}

// CloneBounded implements Queue: the conventional design's sweep bound is
// its capacity. Handles and the scoreboard grow only with peak occupancy,
// never with capacity, so as long as the watermark has not crossed the
// tighter bound the clone is bit-for-bit the machine a cold run at that
// capacity would have built.
func (q *Conventional) CloneBounded(m *uop.CloneMap, bound int) (Queue, bool) {
	if bound <= 0 || q.dem.Curve().Peak() > int64(bound) {
		return nil, false
	}
	n := q.Clone(m).(*Conventional)
	n.capacity = bound
	return n, true
}

// CollectStats implements Queue.
func (q *Conventional) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.dispatched.Value()))
	s.Put("iq_issued", float64(q.issued.Value()))
	s.Put("iq_full_stalls", float64(q.fullStalls.Value()))
	s.Put("iq_occupancy_avg", q.occupancy.Value())
	s.Put("iq_ready_avg", q.readyInIQ.Value())
}

var _ Queue = (*Conventional)(nil)
