// Package iq defines the instruction-queue abstraction shared by every
// scheduler design in the repository, and implements the conventional
// monolithic queue — the paper's "ideal, single-cycle" baseline, whose
// wakeup and select logic searches every entry each cycle regardless of
// size.
package iq

import (
	"repro/internal/stats"
	"repro/internal/uop"
)

// Queue is an instruction scheduler: the structure between dispatch and
// the function units. The simulator drives one Queue per core through the
// following per-cycle protocol, in order:
//
//	BeginCycle → Issue → (LSQ / memory notifications) → Dispatch* → EndCycle
//
// Implementations must tolerate any number of Dispatch calls per cycle
// (the simulator enforces dispatch width) and must not issue an
// instruction in the cycle it was dispatched or promoted into the issue
// stage.
type Queue interface {
	// Name identifies the design for reports.
	Name() string
	// Capacity is the total number of instruction slots.
	Capacity() int
	// Len is the number of occupied slots.
	Len() int
	// ExtraDispatchStages is the number of additional dispatch pipeline
	// cycles this design costs over a conventional IQ (the paper charges
	// the segmented and prescheduling designs one extra cycle).
	ExtraDispatchStages() int

	// BeginCycle performs the design's internal per-cycle work that
	// precedes issue: delay-value maintenance, promotion between
	// segments, array shifting, and so on.
	BeginCycle(cycle int64)

	// Issue selects up to max ready instructions, oldest first, removes
	// them from the queue and returns them. tryIssue is consulted for
	// each candidate; it returns false if no function unit can accept the
	// instruction this cycle, and reserves the unit when it returns true,
	// so the Queue must then issue that instruction. The returned slice
	// may be backed by storage owned by the queue: it is valid only until
	// the next Issue call, and callers must not retain it.
	Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp

	// Dispatch inserts a renamed instruction. It returns false — with no
	// state modified — if the design must stall dispatch (no slot, or no
	// free chain wire). The simulator retries the same instruction next
	// cycle; dispatch is in order.
	Dispatch(cycle int64, u *uop.UOp) bool

	// NotifyLoadMiss tells the scheduler that an issued load has been
	// discovered not to hit the L1 (chain suspension in the segmented
	// design).
	NotifyLoadMiss(cycle int64, u *uop.UOp)
	// NotifyLoadComplete tells the scheduler that a load's data has
	// returned (chain resumption).
	NotifyLoadComplete(cycle int64, u *uop.UOp)
	// Writeback tells the scheduler that u's result has been written to
	// the register file (chain deallocation point).
	Writeback(cycle int64, u *uop.UOp)

	// EndCycle closes the cycle. machineActive reports whether anything
	// outside the queue made progress (instructions executing, memory
	// traffic, commits); the segmented design uses its absence for
	// deadlock detection.
	EndCycle(cycle int64, machineActive bool)

	// CollectStats adds design-specific statistics to s.
	CollectStats(s *stats.Set)

	// Clone returns a deep copy of the queue sharing no mutable state
	// with the receiver. Held instructions are remapped through m, so a
	// cloned machine's layers agree on the cloned uop identities; any
	// queue-private per-instruction state (uop.UOp.IQ) is re-attached to
	// the clones by the implementation.
	Clone(m *uop.CloneMap) Queue
}

// Conventional is a monolithic instruction queue with full-queue wakeup
// and select each cycle. With unconstrained size it is the paper's "ideal"
// IQ; at 32 entries it is the conventional baseline the segmented design
// is compared against.
type Conventional struct {
	name       string
	capacity   int
	entries    []*uop.UOp // in program order (dispatch order)
	outScratch []*uop.UOp // backs Issue's result; reused every cycle
	statsEvery int64      // sample per-cycle stats every n cycles (<=1: every)

	issued     stats.Counter
	dispatched stats.Counter
	fullStalls stats.Counter
	occupancy  stats.Mean
	readyInIQ  stats.Mean
}

// NewConventional builds a conventional/ideal IQ with the given capacity.
func NewConventional(capacity int) *Conventional {
	return &Conventional{name: "ideal", capacity: capacity}
}

// SetStatsSampling makes BeginCycle's full-queue readiness scan run only
// every n cycles (<=1: every cycle). Scheduling is unaffected; only the
// resolution of the occupancy/readiness averages changes.
func (q *Conventional) SetStatsSampling(n int) { q.statsEvery = int64(n) }

// Name implements Queue.
func (q *Conventional) Name() string { return q.name }

// Capacity implements Queue.
func (q *Conventional) Capacity() int { return q.capacity }

// Len implements Queue.
func (q *Conventional) Len() int { return len(q.entries) }

// ExtraDispatchStages implements Queue: a conventional IQ costs nothing
// extra.
func (q *Conventional) ExtraDispatchStages() int { return 0 }

// BeginCycle implements Queue.
func (q *Conventional) BeginCycle(cycle int64) {
	if q.statsEvery > 1 && cycle%q.statsEvery != 0 {
		return
	}
	q.occupancy.Observe(float64(len(q.entries)))
	ready := 0
	for _, u := range q.entries {
		if u.Ready(cycle) {
			ready++
		}
	}
	q.readyInIQ.Observe(float64(ready))
}

// Issue implements Queue: single-cycle wakeup and select over the whole
// structure, oldest ready instructions first. The returned slice is owned
// by the queue and valid until the next call.
func (q *Conventional) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	out := q.outScratch[:0]
	kept := q.entries[:0]
	for _, u := range q.entries {
		if len(out) < max && u.DispatchCycle < cycle && u.IssueReady(cycle) && tryIssue(u) {
			u.IssueCycle = cycle
			out = append(out, u)
			continue
		}
		kept = append(kept, u)
	}
	// Zero the tail so released uops can be collected.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.outScratch = out
	q.issued.Add(uint64(len(out)))
	return out
}

// Dispatch implements Queue.
func (q *Conventional) Dispatch(cycle int64, u *uop.UOp) bool {
	if len(q.entries) >= q.capacity {
		q.fullStalls.Inc()
		return false
	}
	u.DispatchCycle = cycle
	q.entries = append(q.entries, u)
	q.dispatched.Inc()
	return true
}

// NotifyLoadMiss implements Queue (no-op: readiness is observed directly).
func (q *Conventional) NotifyLoadMiss(cycle int64, u *uop.UOp) {}

// NotifyLoadComplete implements Queue (no-op).
func (q *Conventional) NotifyLoadComplete(cycle int64, u *uop.UOp) {}

// Writeback implements Queue (no-op).
func (q *Conventional) Writeback(cycle int64, u *uop.UOp) {}

// EndCycle implements Queue (no-op: a conventional IQ cannot deadlock).
func (q *Conventional) EndCycle(cycle int64, machineActive bool) {}

// Clone implements Queue.
func (q *Conventional) Clone(m *uop.CloneMap) Queue {
	n := new(Conventional)
	*n = *q
	n.outScratch = nil
	if len(q.entries) > 0 {
		n.entries = make([]*uop.UOp, len(q.entries))
		for i, u := range q.entries {
			n.entries[i] = m.Get(u)
		}
	} else {
		n.entries = nil
	}
	return n
}

// CollectStats implements Queue.
func (q *Conventional) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.dispatched.Value()))
	s.Put("iq_issued", float64(q.issued.Value()))
	s.Put("iq_full_stalls", float64(q.fullStalls.Value()))
	s.Put("iq_occupancy_avg", q.occupancy.Value())
	s.Put("iq_ready_avg", q.readyInIQ.Value())
}

var _ Queue = (*Conventional)(nil)
