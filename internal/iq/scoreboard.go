package iq

import (
	"repro/internal/uop"
)

// IssueGate returns the producer that gates operand j of u at issue, or
// nil when the operand does not gate issue. It mirrors uop.IssueReady: a
// store's data operand (j == 0) drains through the LSQ and never holds
// the instruction in the queue.
func IssueGate(u *uop.UOp, j int) *uop.UOp {
	if j == 0 && u.IsStore() {
		return nil
	}
	return u.Prod[j]
}

// none marks an empty handle link.
const none int32 = -1

// waiterTable indexes parked consumers by the producer they are waiting
// on: a map from producer to the head of an intrusive doubly-linked chain
// of handles. Handles are small caller-owned integers (queue slots,
// buffer tickets, entry ids). The table allocates nothing in steady state
// beyond the map's own high-water bucket storage.
type waiterTable struct {
	heads map[*uop.UOp]int32
	// Per-handle chain state, indexed by handle.
	watching   []*uop.UOp // producer the handle is parked on (nil: not parked)
	next, prev []int32
}

// grow sizes the per-handle arrays for handles [0, n).
func (w *waiterTable) grow(n int) {
	if w.heads == nil {
		w.heads = make(map[*uop.UOp]int32)
	}
	for len(w.watching) < n {
		w.watching = append(w.watching, nil)
		w.next = append(w.next, none)
		w.prev = append(w.prev, none)
	}
}

// park links handle h onto p's waiter chain. h must not be parked.
func (w *waiterTable) park(h int32, p *uop.UOp) {
	head, ok := w.heads[p]
	w.watching[h] = p
	w.prev[h] = none
	if ok {
		w.next[h] = head
		w.prev[head] = h
	} else {
		w.next[h] = none
	}
	w.heads[p] = h
}

// unpark removes h from its chain; a no-op if h is not parked.
func (w *waiterTable) unpark(h int32) {
	p := w.watching[h]
	if p == nil {
		return
	}
	w.watching[h] = nil
	nx, pv := w.next[h], w.prev[h]
	if pv != none {
		w.next[pv] = nx
	} else if nx != none {
		w.heads[p] = nx
	} else {
		delete(w.heads, p)
	}
	if nx != none {
		w.prev[nx] = pv
	}
	w.next[h], w.prev[h] = none, none
}

// wakeAll unparks every handle waiting on p and appends them to buf.
func (w *waiterTable) wakeAll(p *uop.UOp, buf []int32) []int32 {
	head, ok := w.heads[p]
	if !ok {
		return buf
	}
	delete(w.heads, p)
	for h := head; h != none; {
		nx := w.next[h]
		w.watching[h] = nil
		w.next[h], w.prev[h] = none, none
		buf = append(buf, h)
		h = nx
	}
	return buf
}

// clone deep-copies the table, remapping producers through m.
func (w *waiterTable) clone(m *uop.CloneMap) waiterTable {
	n := waiterTable{
		heads: make(map[*uop.UOp]int32, len(w.heads)),
		next:  append([]int32(nil), w.next...),
		prev:  append([]int32(nil), w.prev...),
	}
	for p, h := range w.heads {
		n.heads[m.Get(p)] = h
	}
	n.watching = make([]*uop.UOp, len(w.watching))
	for i, p := range w.watching {
		n.watching[i] = m.Get(p)
	}
	return n
}

// Waiters exposes the producer→waiter chains on their own, for
// structures whose wakeup condition is not issue readiness. The distance
// scheme's wait buffer, for example, releases an instruction as soon as
// every operand's ready time is merely *known* — possibly still in the
// future — so the Scoreboard's ready/wheel classification does not apply.
// The caller owns re-evaluation: WakeAll just hands back the parked
// handles.
type Waiters struct {
	wt waiterTable
}

// Grow sizes the table for handles [0, n).
func (w *Waiters) Grow(n int) { w.wt.grow(n) }

// Park links handle h onto p's waiter chain. h must not be parked.
func (w *Waiters) Park(h int32, p *uop.UOp) { w.wt.park(h, p) }

// Unpark removes h from its chain; a no-op if h is not parked.
func (w *Waiters) Unpark(h int32) { w.wt.unpark(h) }

// WakeAll unparks every handle waiting on p and appends them to buf.
func (w *Waiters) WakeAll(p *uop.UOp, buf []int32) []int32 { return w.wt.wakeAll(p, buf) }

// Pending reports whether any handle is parked (test hook).
func (w *Waiters) Pending() bool { return len(w.wt.heads) > 0 }

// Clone deep-copies the table with producers remapped through m.
func (w *Waiters) Clone(m *uop.CloneMap) Waiters { return Waiters{wt: w.wt.clone(m)} }

// wheelItem is a scheduled readiness delivery: handle h becomes ready at
// cycle at, unless its generation moved on (the handle was untracked).
type wheelItem struct {
	at  int64
	h   int32
	gen uint32
}

// Scoreboard tracks when queue-resident instructions become ready to
// issue, replacing per-cycle readiness rescans with event-driven wakeup.
//
// The contract with the queue protocol: producers resolve their
// completion time either before the consumer is tracked (engine-issued
// ALU ops carry Complete from their issue cycle) or at a Writeback /
// NotifyLoadComplete call, which both the simulator and the test
// harnesses deliver before BeginCycle of the completion cycle. Track
// therefore parks a consumer on its first unresolved producer and
// re-evaluates on Wake; completion times already known but in the future
// go to a timing wheel drained by Due. Readiness delivered this way is
// cycle-identical to rescanning IssueReady every cycle.
//
// Handles are caller-owned small integers; a handle must be Untracked
// before it is reused. All returned slices are scratch owned by the
// scoreboard, valid until the next call.
type Scoreboard struct {
	wt    waiterTable
	held  []*uop.UOp // per handle: the tracked instruction
	gen   []uint32   // per handle: bumped on Untrack; stales wheel items
	wheel []wheelItem
	out   []int32
}

// Grow sizes the scoreboard for handles [0, n).
func (s *Scoreboard) Grow(n int) {
	s.wt.grow(n)
	for len(s.held) < n {
		s.held = append(s.held, nil)
		s.gen = append(s.gen, 0)
	}
}

// evaluate classifies u's issue readiness: parked on a producer whose
// completion is unresolved, scheduled for a future cycle, or ready now.
func (s *Scoreboard) evaluate(h int32, u *uop.UOp, now int64) (ready bool) {
	readyAt := now
	for j := 0; j < 2; j++ {
		p := IssueGate(u, j)
		if p == nil {
			continue
		}
		if p.Complete == uop.NotYet {
			s.wt.park(h, p)
			return false
		}
		if p.Complete > readyAt {
			readyAt = p.Complete
		}
	}
	if readyAt > now {
		s.wheelPush(wheelItem{at: readyAt, h: h, gen: s.gen[h]})
		return false
	}
	return true
}

// Track begins tracking handle h holding instruction u, and reports
// whether u is ready to issue already. If not, readiness will be
// delivered later by Wake or Due.
func (s *Scoreboard) Track(h int32, u *uop.UOp, now int64) bool {
	s.held[h] = u
	return s.evaluate(h, u, now)
}

// Untrack stops tracking h (the instruction issued or left the
// structure). Safe on parked, scheduled or ready handles.
func (s *Scoreboard) Untrack(h int32) {
	s.wt.unpark(h)
	s.held[h] = nil
	s.gen[h]++
}

// Wake tells the scoreboard that p's completion time resolved (its result
// was, or is scheduled to be, written back). It returns the handles that
// became ready this cycle; waiters with a later known completion move to
// the wheel, and waiters still blocked on another producer re-park.
func (s *Scoreboard) Wake(p *uop.UOp, now int64) []int32 {
	woken := s.out[:0]
	woken = s.wt.wakeAll(p, woken)
	ready := woken[:0]
	for _, h := range woken {
		if s.evaluate(h, s.held[h], now) {
			ready = append(ready, h)
		}
	}
	s.out = ready
	return ready
}

// Due returns the handles whose scheduled readiness cycle has arrived.
func (s *Scoreboard) Due(now int64) []int32 {
	ready := s.out[:0]
	for len(s.wheel) > 0 && s.wheel[0].at <= now {
		it := s.wheelPop()
		if it.gen == s.gen[it.h] {
			ready = append(ready, it.h)
		}
	}
	s.out = ready
	return ready
}

// Pending reports whether any handle is parked or scheduled (test hook).
func (s *Scoreboard) Pending() bool { return len(s.wt.heads) > 0 || len(s.wheel) > 0 }

// wheelPush and wheelPop maintain the min-heap by at without
// container/heap's interface boxing.
func (s *Scoreboard) wheelPush(it wheelItem) {
	s.wheel = append(s.wheel, it)
	i := len(s.wheel) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.wheel[parent].at <= s.wheel[i].at {
			break
		}
		s.wheel[parent], s.wheel[i] = s.wheel[i], s.wheel[parent]
		i = parent
	}
}

func (s *Scoreboard) wheelPop() wheelItem {
	top := s.wheel[0]
	last := len(s.wheel) - 1
	s.wheel[0] = s.wheel[last]
	s.wheel = s.wheel[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && s.wheel[l].at < s.wheel[small].at {
			small = l
		}
		if r < last && s.wheel[r].at < s.wheel[small].at {
			small = r
		}
		if small == i {
			break
		}
		s.wheel[i], s.wheel[small] = s.wheel[small], s.wheel[i]
		i = small
	}
	return top
}

// Clone deep-copies the scoreboard with instructions remapped through m.
// Scratch storage is not carried over.
func (s *Scoreboard) Clone(m *uop.CloneMap) Scoreboard {
	n := Scoreboard{
		wt:    s.wt.clone(m),
		gen:   append([]uint32(nil), s.gen...),
		wheel: append([]wheelItem(nil), s.wheel...),
	}
	n.held = make([]*uop.UOp, len(s.held))
	for i, u := range s.held {
		n.held[i] = m.Get(u)
	}
	return n
}
