package iq

// Demand telemetry underpins divergence-aware prefix sharing. While the
// most permissive configuration of a sweep family runs, each queue (and
// the engine, for ROB/LSQ) records the high-watermark of every bounded
// resource as a monotone step curve. A sibling configuration that tightens
// one bound behaves identically until the first cycle the watermark
// crosses its bound — its divergence cycle — so the sibling can fork from
// a snapshot taken at or before that cycle and simulate only the suffix.

// DemandStep records the first cycle a resource's high-watermark reached
// High. Steps are strictly increasing in both fields.
type DemandStep struct {
	Cycle int64
	High  int64
}

// DemandCurve is the monotone high-watermark history of one resource
// dimension, e.g. "iq", "chains", "rob", "lsq".
type DemandCurve struct {
	Dim   string
	Steps []DemandStep
}

// FirstAbove returns the first cycle at which the watermark exceeded
// bound, or -1 if it never did. A fork taken at a cycle <= the returned
// value is safe for a sibling with that bound: the crossing happens
// mid-cycle, so the start-of-cycle state is still shared.
func (c DemandCurve) FirstAbove(bound int64) int64 {
	lo, hi := 0, len(c.Steps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Steps[mid].High <= bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.Steps) {
		return -1
	}
	return c.Steps[lo].Cycle
}

// Peak returns the final high-watermark (0 for an empty curve).
func (c DemandCurve) Peak() int64 {
	if len(c.Steps) == 0 {
		return 0
	}
	return c.Steps[len(c.Steps)-1].High
}

// Watermark accumulates a DemandCurve. Observe is cheap enough for
// per-dispatch call sites: one comparison, and an append only when the
// watermark rises.
type Watermark struct {
	Dim   string
	Steps []DemandStep
}

// Observe records v at cycle if it exceeds the current watermark.
func (w *Watermark) Observe(cycle, v int64) {
	if n := len(w.Steps); n == 0 || v > w.Steps[n-1].High {
		w.Steps = append(w.Steps, DemandStep{Cycle: cycle, High: v})
	}
}

// Curve returns the accumulated curve.
func (w *Watermark) Curve() DemandCurve { return DemandCurve{Dim: w.Dim, Steps: w.Steps} }

// CloneSteps returns an independent copy of the step history, for queue
// Clone implementations (the backing array must not be shared, or the
// original's next append could race the clone's).
func (w *Watermark) CloneSteps() []DemandStep { return append([]DemandStep(nil), w.Steps...) }
