// Package isa defines the abstract instruction set used by the simulator:
// operation classes, execution latencies (Table 1 of the paper), and the
// architectural register file layout.
//
// The simulator is trace driven, so the ISA is deliberately minimal: an
// instruction is an operation class plus up to two source registers, an
// optional destination register, and (for memory and control operations)
// an effective address or branch target. Functional semantics (values) are
// not modelled; data dependences, latencies and memory addresses are.
package isa

import "fmt"

// Class identifies the kind of operation an instruction performs. The class
// determines which function-unit pool executes it and its base latency.
type Class uint8

// Operation classes. Memory operations are split at dispatch, as in the
// paper: the effective-address calculation is an ordinary integer op routed
// to the IQ, and the access itself lives in the LSQ.
const (
	IntAlu Class = iota // integer add/sub/logic/shift/compare
	IntMul              // integer multiply
	IntDiv              // integer divide (unpipelined)
	FpAdd               // FP add/subtract
	FpMul               // FP multiply
	FpDiv               // FP divide (unpipelined)
	FpSqrt              // FP square root (unpipelined)
	Load                // memory load (EA calc in IQ + access in LSQ)
	Store               // memory store (EA calc in IQ + access in LSQ)
	Branch              // conditional or unconditional control transfer
	NumClasses
)

var classNames = [NumClasses]string{
	"IntAlu", "IntMul", "IntDiv", "FpAdd", "FpMul", "FpDiv", "FpSqrt",
	"Load", "Store", "Branch",
}

// String returns the mnemonic name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is a defined operation class.
func (c Class) Valid() bool { return c < NumClasses }

// Latency returns the execution latency in cycles of the class, per Table 1
// of the paper. For Load and Store this is the latency of the
// effective-address calculation (one integer-ALU cycle); the memory access
// latency is determined by the cache hierarchy.
func (c Class) Latency() int {
	return latencies[c]
}

var latencies = [NumClasses]int{
	IntAlu: 1,
	IntMul: 3,
	IntDiv: 20,
	FpAdd:  2,
	FpMul:  4,
	FpDiv:  12,
	FpSqrt: 24,
	Load:   1, // EA calculation
	Store:  1, // EA calculation
	Branch: 1,
}

// Pipelined reports whether the function units for this class accept a new
// operation every cycle. Per Table 1, all operations are fully pipelined
// except divide and square root.
func (c Class) Pipelined() bool {
	switch c {
	case IntDiv, FpDiv, FpSqrt:
		return false
	}
	return true
}

// IsMem reports whether the class is a memory operation.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on the floating-point side.
func (c Class) IsFP() bool {
	switch c {
	case FpAdd, FpMul, FpDiv, FpSqrt:
		return true
	}
	return false
}

// Architectural register file layout. Register 0..NumIntRegs-1 are integer
// registers; NumIntRegs..NumRegs-1 are floating point. RegNone marks an
// absent operand.
const (
	NumIntRegs = 32
	NumFpRegs  = 32
	NumRegs    = NumIntRegs + NumFpRegs

	// RegZero is the hardwired integer zero register; reads from it are
	// always ready and writes to it are discarded, as on Alpha (r31).
	RegZero = 31

	// RegNone marks a missing source or destination operand.
	RegNone = -1
)

// IntReg returns the architectural index of integer register n.
func IntReg(n int) int {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", n))
	}
	return n
}

// FpReg returns the architectural index of floating-point register n.
func FpReg(n int) int {
	if n < 0 || n >= NumFpRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", n))
	}
	return NumIntRegs + n
}

// RegName returns a human-readable name ("r7", "f12") for an architectural
// register index, or "-" for RegNone.
func RegName(r int) string {
	switch {
	case r == RegNone:
		return "-"
	case r >= 0 && r < NumIntRegs:
		return fmt.Sprintf("r%d", r)
	case r >= NumIntRegs && r < NumRegs:
		return fmt.Sprintf("f%d", r-NumIntRegs)
	}
	return fmt.Sprintf("reg(%d)", r)
}

// Inst is one dynamic instruction record in a trace. It is the static
// information the pipeline front end receives; all scheduling state lives in
// the pipeline's dynamic wrapper.
type Inst struct {
	PC    uint64 // instruction address
	Class Class

	Src1 int // architectural source register or RegNone
	Src2 int // architectural source register or RegNone
	Dest int // architectural destination register or RegNone

	// Addr is the effective address for Load/Store classes.
	Addr uint64
	// Size is the access size in bytes for Load/Store classes.
	Size uint8

	// Taken and Target describe the actual outcome for Branch classes.
	Taken  bool
	Target uint64
}

// HasDest reports whether the instruction produces a register value that
// later instructions can consume. Writes to the zero register produce
// nothing.
func (in *Inst) HasDest() bool {
	return in.Dest != RegNone && in.Dest != RegZero
}

// Validate checks structural well-formedness of the record: class in range,
// register indices in range, memory ops carry an address and size, branches
// carry a target when taken. It returns a descriptive error for the first
// violation found.
func (in *Inst) Validate() error {
	if !in.Class.Valid() {
		return fmt.Errorf("isa: invalid class %d at pc %#x", in.Class, in.PC)
	}
	for _, r := range [...]int{in.Src1, in.Src2, in.Dest} {
		if r != RegNone && (r < 0 || r >= NumRegs) {
			return fmt.Errorf("isa: register %d out of range at pc %#x", r, in.PC)
		}
	}
	if in.Class.IsMem() {
		if in.Size == 0 {
			return fmt.Errorf("isa: memory op with zero size at pc %#x", in.PC)
		}
		if in.Class == Load && in.Dest == RegNone {
			return fmt.Errorf("isa: load without destination at pc %#x", in.PC)
		}
	}
	if in.Class == Branch && in.Taken && in.Target == 0 {
		return fmt.Errorf("isa: taken branch without target at pc %#x", in.PC)
	}
	if in.Class == Store && in.Dest != RegNone {
		return fmt.Errorf("isa: store with destination at pc %#x", in.PC)
	}
	return nil
}

// String renders the instruction in a compact assembly-like form.
func (in *Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x: %s %s,%s -> %s @%#x",
			in.PC, in.Class, RegName(in.Src1), RegName(in.Src2), RegName(in.Dest), in.Addr)
	case in.Class == Branch:
		dir := "nt"
		if in.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: %s %s,%s [%s -> %#x]",
			in.PC, in.Class, RegName(in.Src1), RegName(in.Src2), dir, in.Target)
	default:
		return fmt.Sprintf("%#x: %s %s,%s -> %s",
			in.PC, in.Class, RegName(in.Src1), RegName(in.Src2), RegName(in.Dest))
	}
}
