package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassLatenciesMatchTable1(t *testing.T) {
	// Table 1: integer: mul 3, div 20, all others 1;
	// FP: add/sub 2, mul 4, div 12, sqrt 24.
	want := map[Class]int{
		IntAlu: 1, IntMul: 3, IntDiv: 20,
		FpAdd: 2, FpMul: 4, FpDiv: 12, FpSqrt: 24,
		Load: 1, Store: 1, Branch: 1,
	}
	for c, lat := range want {
		if got := c.Latency(); got != lat {
			t.Errorf("%s latency = %d, want %d", c, got, lat)
		}
	}
}

func TestClassPipelined(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c != IntDiv && c != FpDiv && c != FpSqrt
		if got := c.Pipelined(); got != want {
			t.Errorf("%s pipelined = %v, want %v", c, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if IntAlu.String() != "IntAlu" {
		t.Errorf("IntAlu.String() = %q", IntAlu.String())
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range class string %q should mention the value", got)
	}
	if Class(200).Valid() {
		t.Error("Class(200).Valid() = true")
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntAlu.IsMem() || Branch.IsMem() {
		t.Error("IsMem classification wrong")
	}
	for _, c := range []Class{FpAdd, FpMul, FpDiv, FpSqrt} {
		if !c.IsFP() {
			t.Errorf("%s should be FP", c)
		}
	}
	for _, c := range []Class{IntAlu, IntMul, IntDiv, Load, Store, Branch} {
		if c.IsFP() {
			t.Errorf("%s should not be FP", c)
		}
	}
}

func TestRegisterHelpers(t *testing.T) {
	if IntReg(0) != 0 || IntReg(31) != 31 {
		t.Error("IntReg mapping wrong")
	}
	if FpReg(0) != 32 || FpReg(31) != 63 {
		t.Error("FpReg mapping wrong")
	}
	if RegName(3) != "r3" {
		t.Errorf("RegName(3) = %q", RegName(3))
	}
	if RegName(FpReg(5)) != "f5" {
		t.Errorf("RegName(f5) = %q", RegName(FpReg(5)))
	}
	if RegName(RegNone) != "-" {
		t.Errorf("RegName(RegNone) = %q", RegName(RegNone))
	}
	if RegName(99) == "" {
		t.Error("RegName out of range should still render")
	}
}

func TestRegisterHelpersPanic(t *testing.T) {
	for _, f := range []func(){
		func() { IntReg(-1) },
		func() { IntReg(32) },
		func() { FpReg(-1) },
		func() { FpReg(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestInstHasDest(t *testing.T) {
	in := Inst{Class: IntAlu, Dest: 4}
	if !in.HasDest() {
		t.Error("dest r4 should count")
	}
	in.Dest = RegZero
	if in.HasDest() {
		t.Error("writes to r31 produce nothing")
	}
	in.Dest = RegNone
	if in.HasDest() {
		t.Error("RegNone is not a dest")
	}
}

func TestInstValidate(t *testing.T) {
	good := Inst{PC: 0x1000, Class: IntAlu, Src1: 1, Src2: 2, Dest: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}

	cases := []struct {
		name string
		in   Inst
	}{
		{"bad class", Inst{Class: NumClasses, Src1: RegNone, Src2: RegNone, Dest: RegNone}},
		{"reg out of range", Inst{Class: IntAlu, Src1: 64, Src2: RegNone, Dest: RegNone}},
		{"neg reg", Inst{Class: IntAlu, Src1: -7, Src2: RegNone, Dest: RegNone}},
		{"mem zero size", Inst{Class: Load, Src1: 1, Src2: RegNone, Dest: 2}},
		{"load no dest", Inst{Class: Load, Src1: 1, Src2: RegNone, Dest: RegNone, Size: 8}},
		{"taken branch no target", Inst{Class: Branch, Src1: 1, Src2: RegNone, Dest: RegNone, Taken: true}},
		{"store with dest", Inst{Class: Store, Src1: 1, Src2: 2, Dest: 3, Size: 8}},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestInstString(t *testing.T) {
	ld := Inst{PC: 0x40, Class: Load, Src1: 1, Src2: RegNone, Dest: 2, Addr: 0x1000, Size: 8}
	if s := ld.String(); !strings.Contains(s, "Load") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string %q", s)
	}
	br := Inst{PC: 0x44, Class: Branch, Src1: 1, Src2: RegNone, Dest: RegNone, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "t ->") {
		t.Errorf("branch string %q", s)
	}
	alu := Inst{PC: 0x48, Class: IntAlu, Src1: 1, Src2: 2, Dest: 3}
	if s := alu.String(); !strings.Contains(s, "r3") {
		t.Errorf("alu string %q", s)
	}
}

// Property: RegName is total and unique over the architectural register file.
func TestRegNameUniqueProperty(t *testing.T) {
	seen := make(map[string]int)
	for r := 0; r < NumRegs; r++ {
		n := RegName(r)
		if prev, dup := seen[n]; dup {
			t.Fatalf("RegName collision: %d and %d both %q", prev, r, n)
		}
		seen[n] = r
	}
}

// Property: every class's latency is positive and bounded, and only
// unpipelined classes have latency > 4 except IntDiv-like long ops.
func TestLatencyPositiveProperty(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw % uint8(NumClasses))
		lat := c.Latency()
		return lat >= 1 && lat <= 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
