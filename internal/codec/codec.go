// Package codec is the little-endian binary layer under the checkpoint
// file format: a Writer and Reader with sticky errors, so each subsystem
// (mem, bpred, trace, stats, sim) encodes its own state as a flat field
// sequence and checks one error at the section boundary instead of after
// every field. Readers bound every length they decode, so a truncated or
// corrupt file fails with an error instead of an enormous allocation.
package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// MaxLen bounds any single length-prefixed field (strings, byte blobs,
// slices). Checkpoint sections are table-sized — a few megabytes at most —
// so anything larger is corruption, not data.
const MaxLen = 1 << 28

// Writer encodes fixed-width little-endian values to an io.Writer. The
// first write error sticks; later writes are no-ops.
type Writer struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a 32-bit value.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a 64-bit value.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as a signed 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(floatBits(v)) }

// Raw writes p with no length prefix (fixed-size fields like magic
// numbers, where both sides know the width).
func (w *Writer) Raw(p []byte) { w.write(p) }

// Bytes writes a length-prefixed byte blob.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Reader decodes values written by Writer. The first error sticks and
// every subsequent read returns the zero value.
type Reader struct {
	r   io.Reader
	buf [8]byte
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail records an error (e.g. a validation failure found mid-decode) so
// the section boundary check reports it.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a 32-bit value.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a 64-bit value.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return floatFrom(r.U64()) }

// Len reads a length prefix and validates it against MaxLen (and the
// caller's own bound, if tighter, via max >= 0).
func (r *Reader) Len(max int) int {
	n := r.U64()
	limit := uint64(MaxLen)
	if max >= 0 && uint64(max) < limit {
		limit = uint64(max)
	}
	if n > limit {
		r.Fail("codec: length %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// Raw reads exactly n bytes written by Writer.Raw.
func (r *Reader) Raw(n int) []byte {
	p := make([]byte, n)
	if !r.read(p) {
		return nil
	}
	return p
}

// Bytes reads a length-prefixed blob of at most max bytes (max < 0: the
// package-wide MaxLen).
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	if !r.read(p) {
		return nil
	}
	return p
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string { return string(r.Bytes(max)) }
