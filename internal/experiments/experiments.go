// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Figure 2 (512-entry segmented IQ configurations
// relative to the ideal IQ), Table 2 (chain usage with unlimited chains),
// Figure 3 (performance across IQ sizes, including the prescheduling
// baseline), and the in-text measurements (HMP accuracy and coverage,
// two-chain instruction frequency, deadlock incidence, segment-0
// occupancy). See EXPERIMENTS.md for paper-versus-measured results.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bpred"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales the experiments. The paper simulates 100 M instruction
// samples after a 20 G fast-forward; the defaults here are laptop-sized
// but flag-adjustable (cmd/iqbench -n / -warm).
type Options struct {
	// Instructions measured per run.
	Instructions int64
	// Warmup instructions functionally fast-forwarded before measuring.
	Warmup int64
	// Seed selects the deterministic workload instance.
	Seed uint64
	// Benchmarks restricts the workload set (nil = all eight).
	Benchmarks []string
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// CheckpointDir, when set, backs the warm-checkpoint cache with a
	// directory (sim.DirStore): a warmup found on disk is loaded
	// instead of re-simulated, and a warmup built here is saved for the
	// next process. Empty keeps checkpoints in-memory only.
	CheckpointDir string
	// CheckpointURL, when set, backs the warm-checkpoint cache with a
	// remote HTTP store (`iqbench -ckpt-serve`; sim.HTTPStore), so
	// shards on different hosts share warmups without a shared
	// filesystem. Takes precedence over CheckpointDir. The store is
	// strictly an accelerator: an unreachable or failing server
	// degrades to local warmups (counted in CkptStats.Fallbacks) and
	// never fails the batch.
	CheckpointURL string
	// CkptStats, when non-nil, counts checkpoint-store activity.
	CkptStats *CkptStats
	// NoSkip steps every machine cycle instead of skipping provably idle
	// spans. Skipping is bit-identical by construction, so results (and
	// shard files, which deliberately omit this knob) are byte-identical
	// either way; the flag exists for cross-checking and debugging.
	NoSkip bool
	// NoPrefixShare runs every sweep-family member cold from its warm
	// checkpoint instead of forking siblings from the reference member's
	// detailed prefix (sim.RunFamily). Sharing is bit-identical by
	// construction — a sibling forks only at a point its demand curves
	// prove undiverged — so, like NoSkip, the knob changes wall-clock
	// only, is applied at fork time, and never splits checkpoint keys or
	// shard headers.
	NoPrefixShare bool
	// PrefixStats, when non-nil, counts prefix-sharing outcomes across
	// the batch's sweep families.
	PrefixStats *sim.PrefixStats
}

// CkptStats counts checkpoint-store activity across a batch: hits,
// misses, put failures, remote retries, fallbacks, bytes moved.
type CkptStats = sim.StoreStats

// storeClient resolves the configured checkpoint store, or nil when
// the batch keeps checkpoints in memory only.
func (o Options) storeClient() *sim.StoreClient {
	var st sim.CheckpointStore
	switch {
	case o.CheckpointURL != "":
		h := sim.NewHTTPStore(o.CheckpointURL)
		h.Stats = o.CkptStats
		st = h
	case o.CheckpointDir != "":
		st = &sim.DirStore{Dir: o.CheckpointDir}
	default:
		return nil
	}
	return &sim.StoreClient{Store: st, Stats: o.CkptStats}
}

// DefaultOptions returns the harness defaults.
func DefaultOptions() Options {
	return Options{Instructions: 40_000, Warmup: 300_000, Seed: 1}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return trace.Names()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// validateBenchmarks rejects unknown workload names up front, before any
// simulation (or warmup) is spent on a doomed batch. An entry may be a
// single workload or a "+"-joined context set (the SMT grid); every
// element must name a known benchmark.
func (o Options) validateBenchmarks() error {
	for _, w := range o.Benchmarks {
		for _, e := range strings.Split(w, "+") {
			if _, ok := trace.Benchmarks[e]; !ok {
				return fmt.Errorf("experiments: unknown benchmark %q (have %s)",
					e, strings.Join(trace.Names(), ", "))
			}
		}
	}
	return nil
}

// job is one simulation in a batch. wl names the ordered context set the
// machine runs: a single workload, or several joined with "+" for an SMT
// grid point (one hardware context per element).
type job struct {
	key string
	cfg sim.Config
	wl  string
}

// contexts converts a "+"-joined context set into the sim layer's
// ordered specs: context i runs element i seeded with Seed+i (the same
// convention as sim.RunSMT) and warms Warmup instructions.
func (o Options) contexts(wl string) []sim.ContextSpec {
	parts := strings.Split(wl, "+")
	specs := make([]sim.ContextSpec, len(parts))
	for i, p := range parts {
		specs[i] = sim.ContextSpec{Workload: p, Seed: o.Seed + uint64(i), Warm: o.Warmup}
	}
	return specs
}

// ckKey identifies the warmed state a job can fork from: the ordered
// context set plus everything the warmup touches — memory and
// branch-structure geometry. Grid points that only vary the queue
// design, queue size, widths or ROB/LSQ capacities share one checkpoint.
type ckKey struct {
	wl   string
	mem  mem.HierarchyConfig
	bp   bpred.Config
	btbE int
	btbW int
}

// ckCache lazily builds one checkpoint per ckKey. The first job to need a
// key pays the warmup (inside its worker slot, so distinct workloads warm
// in parallel); every later job forks the finished checkpoint. Entries
// are refcounted: retain registers every job's claim up front, and the
// last fork for a key evicts its checkpoint, so a long batch holds at
// most the warmed machines still feeding unforked grid points instead of
// every workload's template until the batch ends.
type ckCache struct {
	o Options
	// st is the cross-process checkpoint store, nil for in-memory-only
	// batches. One client per batch, so store-failure warnings print
	// once and a degraded remote store fails fast for the whole sweep.
	st *sim.StoreClient
	mu sync.Mutex
	m  map[ckKey]*ckEntry
}

type ckEntry struct {
	once sync.Once
	ck   *sim.Checkpoint
	err  error
	// refs counts grid points that have yet to fork this checkpoint;
	// guarded by the cache mutex.
	refs int
}

func (c *ckCache) key(j job) ckKey {
	return ckKey{wl: j.wl, mem: j.cfg.Memory, bp: j.cfg.BranchPredictor,
		btbE: j.cfg.BTBEntries, btbW: j.cfg.BTBWays}
}

// retain registers each job's claim on its checkpoint before the batch
// starts, so forked can tell when a checkpoint has served its last grid
// point. Jobs skipped by the batch's stop flag never drop their claim;
// that only delays eviction on a batch that is already aborting.
func (c *ckCache) retain(jobs []job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range jobs {
		k := c.key(j)
		e := c.m[k]
		if e == nil {
			e = new(ckEntry)
			c.m[k] = e
		}
		e.refs++
	}
}

func (c *ckCache) get(j job) (*sim.Checkpoint, error) {
	key := c.key(j)
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = new(ckEntry)
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		specs := c.o.contexts(j.wl)
		if c.st == nil {
			e.ck, e.err = sim.NewCheckpoint(j.cfg, specs...)
			return
		}
		// Hit/miss/fallback accounting lives in the StoreClient; store
		// failures never surface here — LoadOrNew degrades to a local
		// warmup instead, so a broken store cannot kill the batch.
		e.ck, _, e.err = c.st.LoadOrNew(j.cfg, specs...)
	})
	return e.ck, e.err
}

// forked drops j's claim on its checkpoint. The last claim evicts the
// entry and releases the checkpoint, which also unpins its stream cursor
// so the fork source can trim the memoised suffix behind the machines
// still running (trace.ForkCursor.Release).
func (c *ckCache) forked(j job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.m[c.key(j)]
	if e == nil {
		return
	}
	e.refs--
	if e.refs == 0 {
		if e.ck != nil {
			e.ck.Release()
		}
		delete(c.m, c.key(j))
	}
}

// run is the batch runner: fork j's checkpoint (warming it if j is first
// to the key), drop the claim, and simulate.
func (c *ckCache) run(j job, instructions int64) (*sim.Result, error) {
	ck, err := c.get(j)
	if err != nil {
		c.forked(j)
		return nil, err
	}
	// Applied at fork time rather than in the grid's configs so the
	// knob never splits checkpoint keys or shard headers.
	j.cfg.NoSkip = c.o.NoSkip
	p, err := ck.Fork(j.cfg)
	c.forked(j)
	if err != nil {
		return nil, err
	}
	return p.Run(instructions)
}

// family is a set of grid points that are sweep siblings over one warm
// checkpoint: same context set and geometry, varying only the swept
// resource bounds. sim.RunFamily simulates them together, forking each
// sibling from the reference member's detailed prefix at its divergence
// cycle instead of re-simulating it.
type family struct {
	jobs []job
}

type famKey struct {
	ck  ckKey
	fam sim.Config
}

// families groups a batch's jobs into sweep families, preserving job
// order within each family and family order of first appearance.
func (c *ckCache) families(jobs []job) []family {
	idx := make(map[famKey]int)
	var fams []family
	for _, j := range jobs {
		k := famKey{ck: c.key(j), fam: sim.FamilyKey(j.cfg)}
		i, ok := idx[k]
		if !ok {
			i = len(fams)
			idx[k] = i
			fams = append(fams, family{})
		}
		fams[i].jobs = append(fams[i].jobs, j)
	}
	return fams
}

// runFamily simulates one family over its shared checkpoint and returns
// results in member order. Claims for every member are dropped when the
// family finishes — cold-fallback members may fork the checkpoint at any
// point during the run, so it must stay live throughout.
func (c *ckCache) runFamily(f family, instructions int64) ([]*sim.Result, error) {
	defer func() {
		for _, j := range f.jobs {
			c.forked(j)
		}
	}()
	ck, err := c.get(f.jobs[0])
	if err != nil {
		return nil, err
	}
	cfgs := make([]sim.Config, len(f.jobs))
	for i, j := range f.jobs {
		cfg := j.cfg
		// Fork-time knob, like NoSkip in run: uniform across the family,
		// never in grid configs, checkpoint keys or shard headers.
		cfg.NoSkip = c.o.NoSkip
		cfgs[i] = cfg
	}
	return sim.RunFamily(ck, cfgs, instructions, !c.o.NoPrefixShare, c.o.PrefixStats)
}

// runAll executes jobs concurrently and returns results keyed by job key.
// Any simulation error aborts the batch. Two layers of reuse stack up:
// the warmup fast-forward runs once per workload (per memory/branch
// geometry) and each grid point forks the warmed checkpoint instead of
// re-warming; and within a sweep family the detailed measured prefix is
// also shared — siblings fork from the reference run at their divergence
// cycle (sim.RunFamily). Both layers are bit-identical to cold runs (see
// sim's checkpoint and prefix tests).
func (o Options) runAll(jobs []job) (map[string]*sim.Result, error) {
	if err := o.validateBenchmarks(); err != nil {
		return nil, err
	}
	cks := &ckCache{o: o, st: o.storeClient(), m: make(map[ckKey]*ckEntry)}
	cks.retain(jobs)
	return o.runFamiliesWith(cks.families(jobs), func(f family) ([]*sim.Result, error) {
		return cks.runFamily(f, o.Instructions)
	})
}

// runAllWith is runAll with the per-job simulation injected, so the
// batch machinery is testable without running real simulations. Each job
// runs as its own single-member family.
func (o Options) runAllWith(jobs []job, run func(job) (*sim.Result, error)) (map[string]*sim.Result, error) {
	fams := make([]family, len(jobs))
	for i, j := range jobs {
		fams[i] = family{jobs: []job{j}}
	}
	return o.runFamiliesWith(fams, func(f family) ([]*sim.Result, error) {
		r, err := run(f.jobs[0])
		if err != nil {
			return nil, err
		}
		return []*sim.Result{r}, nil
	})
}

// runFamiliesWith executes families concurrently — one worker slot per
// family, members sequential within it so the reference's ladder rungs
// exist before its siblings fork — and returns results keyed by job key.
// A failed family flips an atomic stop flag: families that have not
// started yet observe it before invoking run and are skipped, rather
// than burning simulations while the batch is already doomed. The first
// error (in completion order) is returned.
func (o Options) runFamiliesWith(fams []family, run func(family) ([]*sim.Result, error)) (map[string]*sim.Result, error) {
	results := make(map[string]*sim.Result)
	var (
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
	)
	sem := make(chan struct{}, o.parallel())
	var wg sync.WaitGroup
	for _, f := range fams {
		wg.Add(1)
		go func(f family) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if stop.Load() {
				return
			}
			rs, err := run(f)
			if err == nil && len(rs) != len(f.jobs) {
				err = fmt.Errorf("family returned %d results for %d members", len(rs), len(f.jobs))
			}
			if err != nil {
				stop.Store(true)
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", f.jobs[0].key, err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			for i, j := range f.jobs {
				results[j.key] = rs[i]
			}
			mu.Unlock()
		}(f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// requireResults checks that res covers a grid completely, so the From
// assemblers fail with a named missing key instead of a nil dereference
// when fed an incomplete (e.g. mis-merged) result set.
func requireResults(res map[string]*sim.Result, jobs []job) error {
	for _, j := range jobs {
		if res[j.key] == nil {
			return fmt.Errorf("experiments: missing result for %s", j.key)
		}
	}
	return nil
}

// variant describes one segmented-IQ predictor configuration of Figure 2.
type variant struct {
	name string
	hmp  bool
	lrp  bool
}

var fig2Variants = []variant{
	{"base", false, false},
	{"hmp", true, false},
	{"lrp", false, true},
	{"comb", true, true},
}

// fig2ChainCounts are the chain-wire budgets of Figure 2 (0 = unlimited).
var fig2ChainCounts = []int{0, 128, 64}

func chainLabel(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d chains", n)
}

// Fig2Result holds Figure 2's data: per benchmark, per chain budget, per
// variant, performance relative to the ideal 512-entry IQ.
type Fig2Result struct {
	Benchmarks []string
	// Relative[bench][chainLabel][variant] = segmented IPC / ideal IPC.
	Relative map[string]map[string]map[string]float64
	// IdealIPC[bench] is the ideal 512-entry queue's IPC.
	IdealIPC map[string]float64
}

// fig2Jobs enumerates Figure 2's grid.
func fig2Jobs(o Options) []job {
	var jobs []job
	for _, wl := range o.benchmarks() {
		jobs = append(jobs, job{key: "ideal/" + wl, cfg: sim.DefaultConfig(sim.QueueIdeal, 512), wl: wl})
		for _, chains := range fig2ChainCounts {
			for _, v := range fig2Variants {
				key := fmt.Sprintf("%s/%s/%s", chainLabel(chains), v.name, wl)
				jobs = append(jobs, job{key: key, cfg: sim.SegmentedConfig(512, chains, v.hmp, v.lrp), wl: wl})
			}
		}
	}
	return jobs
}

// Fig2 reproduces Figure 2: a 512-entry segmented IQ (sixteen 32-entry
// segments) in twelve configurations, relative to an ideal single-cycle
// 512-entry IQ.
func Fig2(o Options) (*Fig2Result, error) {
	res, err := o.runAll(fig2Jobs(o))
	if err != nil {
		return nil, err
	}
	return Fig2From(o, res)
}

// Fig2From assembles Figure 2 from already-computed results (a local
// batch or a merged sharded sweep).
func Fig2From(o Options, res map[string]*sim.Result) (*Fig2Result, error) {
	benches := o.benchmarks()
	if err := requireResults(res, fig2Jobs(o)); err != nil {
		return nil, err
	}
	out := &Fig2Result{
		Benchmarks: benches,
		Relative:   make(map[string]map[string]map[string]float64),
		IdealIPC:   make(map[string]float64),
	}
	for _, wl := range benches {
		ideal := res["ideal/"+wl].IPC
		out.IdealIPC[wl] = ideal
		out.Relative[wl] = make(map[string]map[string]float64)
		for _, chains := range fig2ChainCounts {
			cl := chainLabel(chains)
			out.Relative[wl][cl] = make(map[string]float64)
			for _, v := range fig2Variants {
				key := fmt.Sprintf("%s/%s/%s", cl, v.name, wl)
				out.Relative[wl][cl][v.name] = res[key].IPC / ideal
			}
		}
	}
	return out, nil
}

// Table renders the figure as the text table cmd/iqbench prints.
func (f *Fig2Result) Table() *stats.Table {
	t := stats.NewTable("config", append(f.Benchmarks, "average")...)
	for _, chains := range fig2ChainCounts {
		cl := chainLabel(chains)
		for _, v := range fig2Variants {
			cells := make(map[string]string, len(f.Benchmarks)+1)
			var vals []float64
			for _, wl := range f.Benchmarks {
				rel := f.Relative[wl][cl][v.name]
				cells[wl] = fmt.Sprintf("%.1f%%", 100*rel)
				vals = append(vals, rel)
			}
			cells["average"] = fmt.Sprintf("%.1f%%", 100*stats.ArithMean(vals))
			t.AddRow(cl+"/"+v.name, cells)
		}
	}
	return t
}

// Table2Result holds Table 2: average and peak chain usage for the
// 512-entry segmented IQ with unlimited chains.
type Table2Result struct {
	Benchmarks []string
	Average    map[string]map[string]float64 // [variant][bench]
	Peak       map[string]map[string]float64
}

// table2Jobs enumerates Table 2's grid.
func table2Jobs(o Options) []job {
	var jobs []job
	for _, wl := range o.benchmarks() {
		for _, v := range fig2Variants {
			jobs = append(jobs, job{key: v.name + "/" + wl, cfg: sim.SegmentedConfig(512, 0, v.hmp, v.lrp), wl: wl})
		}
	}
	return jobs
}

// Table2 reproduces Table 2: chain usage under the four predictor
// configurations with unlimited chain wires.
func Table2(o Options) (*Table2Result, error) {
	res, err := o.runAll(table2Jobs(o))
	if err != nil {
		return nil, err
	}
	return Table2From(o, res)
}

// Table2From assembles Table 2 from already-computed results.
func Table2From(o Options, res map[string]*sim.Result) (*Table2Result, error) {
	benches := o.benchmarks()
	if err := requireResults(res, table2Jobs(o)); err != nil {
		return nil, err
	}
	out := &Table2Result{
		Benchmarks: benches,
		Average:    make(map[string]map[string]float64),
		Peak:       make(map[string]map[string]float64),
	}
	for _, v := range fig2Variants {
		out.Average[v.name] = make(map[string]float64)
		out.Peak[v.name] = make(map[string]float64)
		for _, wl := range benches {
			r := res[v.name+"/"+wl]
			out.Average[v.name][wl] = r.Stats.MustGet("chains_avg")
			out.Peak[v.name][wl] = r.Stats.MustGet("chains_peak")
		}
	}
	return out, nil
}

// Table renders Table 2 in the paper's layout (benchmark rows; average
// and peak columns per configuration).
func (t2 *Table2Result) Table() *stats.Table {
	var cols []string
	for _, v := range fig2Variants {
		cols = append(cols, v.name+"-avg", v.name+"-peak")
	}
	t := stats.NewTable("benchmark", cols...)
	for _, wl := range t2.Benchmarks {
		cells := make(map[string]string)
		for _, v := range fig2Variants {
			cells[v.name+"-avg"] = fmt.Sprintf("%.1f", t2.Average[v.name][wl])
			cells[v.name+"-peak"] = fmt.Sprintf("%.0f", t2.Peak[v.name][wl])
		}
		t.AddRow(wl, cells)
	}
	avgCells := make(map[string]string)
	for _, v := range fig2Variants {
		var avgs, peaks []float64
		for _, wl := range t2.Benchmarks {
			avgs = append(avgs, t2.Average[v.name][wl])
			peaks = append(peaks, t2.Peak[v.name][wl])
		}
		avgCells[v.name+"-avg"] = fmt.Sprintf("%.1f", stats.ArithMean(avgs))
		avgCells[v.name+"-peak"] = fmt.Sprintf("%.0f", stats.ArithMean(peaks))
	}
	t.AddRow("average", avgCells)
	return t
}

// Fig3Sizes are the IQ sizes of Figure 3.
var Fig3Sizes = []int{32, 64, 128, 256, 512}

// Fig3PreschedSlots are the prescheduling-array capacities of Figure 3
// (32-entry issue buffer + 8/24/56/120 lines of 12).
var Fig3PreschedSlots = []int{128, 320, 704, 1472}

// Fig3Result holds Figure 3: IPC for each benchmark across queue sizes
// for the ideal queue, the combined segmented queue with 128 and 64
// chains, and the prescheduling baseline.
type Fig3Result struct {
	Benchmarks []string
	// IPC[series][bench][i] follows Fig3Sizes (or Fig3PreschedSlots for
	// the "prescheduled" series).
	IPC map[string]map[string][]float64
}

// Fig3Series are the curve names, in plot order.
var Fig3Series = []string{"ideal", "comb-128chains", "comb-64chains", "prescheduled"}

// fig3Jobs enumerates Figure 3's grid.
func fig3Jobs(o Options) []job {
	var jobs []job
	for _, wl := range o.benchmarks() {
		for _, size := range Fig3Sizes {
			jobs = append(jobs,
				job{key: fmt.Sprintf("ideal/%d/%s", size, wl), cfg: sim.DefaultConfig(sim.QueueIdeal, size), wl: wl},
				job{key: fmt.Sprintf("comb-128chains/%d/%s", size, wl), cfg: sim.SegmentedConfig(size, 128, true, true), wl: wl},
				job{key: fmt.Sprintf("comb-64chains/%d/%s", size, wl), cfg: sim.SegmentedConfig(size, 64, true, true), wl: wl},
			)
		}
		for _, slots := range Fig3PreschedSlots {
			jobs = append(jobs, job{key: fmt.Sprintf("prescheduled/%d/%s", slots, wl), cfg: sim.PrescheduledConfig(slots), wl: wl})
		}
	}
	return jobs
}

// Fig3 reproduces Figure 3 across all benchmarks and queue sizes.
func Fig3(o Options) (*Fig3Result, error) {
	res, err := o.runAll(fig3Jobs(o))
	if err != nil {
		return nil, err
	}
	return Fig3From(o, res)
}

// Fig3From assembles Figure 3 from already-computed results.
func Fig3From(o Options, res map[string]*sim.Result) (*Fig3Result, error) {
	benches := o.benchmarks()
	if err := requireResults(res, fig3Jobs(o)); err != nil {
		return nil, err
	}
	out := &Fig3Result{Benchmarks: benches, IPC: make(map[string]map[string][]float64)}
	for _, series := range Fig3Series {
		out.IPC[series] = make(map[string][]float64)
		sizes := Fig3Sizes
		if series == "prescheduled" {
			sizes = Fig3PreschedSlots
		}
		for _, wl := range benches {
			for _, size := range sizes {
				out.IPC[series][wl] = append(out.IPC[series][wl],
					res[fmt.Sprintf("%s/%d/%s", series, size, wl)].IPC)
			}
		}
	}
	return out, nil
}

// Tables renders one table per benchmark, rows = series, columns = sizes.
func (f *Fig3Result) Tables() map[string]*stats.Table {
	out := make(map[string]*stats.Table, len(f.Benchmarks))
	for _, wl := range f.Benchmarks {
		var cols []string
		for _, s := range Fig3Sizes {
			cols = append(cols, fmt.Sprintf("%d", s))
		}
		t := stats.NewTable(wl, cols...)
		for _, series := range Fig3Series {
			cells := make(map[string]string)
			if series == "prescheduled" {
				// The prescheduling points have their own sizes; align
				// them under the nearest ideal-size columns for display.
				for i, slots := range Fig3PreschedSlots {
					col := fmt.Sprintf("%d", Fig3Sizes[i+1])
					cells[col] = fmt.Sprintf("%.2f(%d)", f.IPC[series][wl][i], slots)
				}
			} else {
				for i := range Fig3Sizes {
					cells[cols[i]] = fmt.Sprintf("%.2f", f.IPC[series][wl][i])
				}
			}
			t.AddRow(series, cells)
		}
		out[wl] = t
	}
	return out
}
