package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The §7 power discussion: "Copying an instruction from segment to
// segment consumes more dynamic power than keeping the instruction in a
// single storage location between dispatch and issue; whether the
// performance benefit of the segmented IQ justifies this power
// consumption will depend on the detailed design."
//
// This experiment quantifies that trade with a first-order event-energy
// proxy. Costs are in arbitrary units per event, chosen by circuit
// intuition (a CAM search across an entry costs about what an SRAM entry
// move costs; a one-hot wire assertion across one segment is far
// cheaper):
//
//	wakeup search     1 per searched-entry-cycle (CAM tag comparison)
//	entry write/move  4 per dispatch and per inter-segment copy
//	chain wire        0.25 per assertion per segment traversed
//	issue read        2 per issued instruction
//
// The monolithic queue searches its whole occupancy every cycle; the
// segmented queue searches only segment 0 but pays for promotion copies
// and chain wires. The proxy is deliberately simple — the point is the
// *structure* of the comparison, not watts.

// EnergyWeights are the per-event costs of the proxy model.
type EnergyWeights struct {
	WakeupPerEntryCycle float64
	EntryWrite          float64
	WirePerSegment      float64
	IssueRead           float64
}

// DefaultEnergyWeights returns the documented defaults.
func DefaultEnergyWeights() EnergyWeights {
	return EnergyWeights{WakeupPerEntryCycle: 1, EntryWrite: 4, WirePerSegment: 0.25, IssueRead: 2}
}

// PowerResult compares the energy proxy of the ideal and segmented
// queues at equal capacity.
type PowerResult struct {
	Benchmarks []string
	Weights    EnergyWeights
	// EnergyPerInst[design][bench]: proxy units per committed instruction.
	EnergyPerInst map[string]map[string]float64
	// IPC[design][bench] for the performance side of the trade.
	IPC map[string]map[string]float64
}

// Power runs the §7 energy-proxy comparison at the given queue size.
func Power(o Options, size int, w EnergyWeights) (*PowerResult, error) {
	benches := o.benchmarks()
	cfgs := map[string]sim.Config{
		"ideal":     sim.DefaultConfig(sim.QueueIdeal, size),
		"segmented": sim.SegmentedConfig(size, 128, true, true),
	}
	var jobs []job
	for _, wl := range benches {
		for name, cfg := range cfgs {
			jobs = append(jobs, job{key: name + "/" + wl, cfg: cfg, wl: wl})
		}
	}
	res, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	segs := size / 32

	out := &PowerResult{
		Benchmarks:    benches,
		Weights:       w,
		EnergyPerInst: map[string]map[string]float64{"ideal": {}, "segmented": {}},
		IPC:           map[string]map[string]float64{"ideal": {}, "segmented": {}},
	}
	for _, wl := range benches {
		ideal := res["ideal/"+wl]
		seg := res["segmented/"+wl]
		out.IPC["ideal"][wl] = ideal.IPC
		out.IPC["segmented"][wl] = seg.IPC

		// Monolithic: whole-occupancy CAM search every cycle, one write at
		// dispatch, one read at issue.
		iCycles := ideal.Stats.MustGet("cycles")
		iOcc := ideal.Stats.MustGet("iq_occupancy_avg")
		iDisp := ideal.Stats.MustGet("iq_dispatched")
		iIss := ideal.Stats.MustGet("iq_issued")
		iEnergy := w.WakeupPerEntryCycle*iOcc*iCycles + w.EntryWrite*iDisp + w.IssueRead*iIss
		out.EnergyPerInst["ideal"][wl] = iEnergy / float64(ideal.Instructions)

		// Segmented: segment-0 CAM search only, writes at dispatch and per
		// promotion/pushdown copy, chain wires pipelined across segments
		// (approximate each assertion as traversing half the queue).
		sCycles := seg.Stats.MustGet("cycles")
		sSeg0 := seg.Stats.MustGet("seg0_occupancy_avg")
		sDisp := seg.Stats.MustGet("iq_dispatched")
		sIss := seg.Stats.MustGet("iq_issued")
		sMoves := seg.Stats.MustGet("iq_promotions") + seg.Stats.MustGet("iq_pushdowns")
		sWires := seg.Stats.MustGet("chain_wire_assertions")
		sEnergy := w.WakeupPerEntryCycle*sSeg0*sCycles +
			w.EntryWrite*(sDisp+sMoves) +
			w.WirePerSegment*sWires*float64(segs)/2 +
			w.IssueRead*sIss
		out.EnergyPerInst["segmented"][wl] = sEnergy / float64(seg.Instructions)
	}
	return out, nil
}

// Table renders the comparison: energy proxy per instruction and the
// accompanying IPC, per design.
func (p *PowerResult) Table() *stats.Table {
	t := stats.NewTable("metric", p.Benchmarks...)
	rows := []struct {
		label  string
		values func(wl string) string
	}{
		{"ideal E/inst", func(wl string) string { return fmt.Sprintf("%.0f", p.EnergyPerInst["ideal"][wl]) }},
		{"seg E/inst", func(wl string) string { return fmt.Sprintf("%.0f", p.EnergyPerInst["segmented"][wl]) }},
		{"seg/ideal E", func(wl string) string {
			return fmt.Sprintf("%.2fx", p.EnergyPerInst["segmented"][wl]/p.EnergyPerInst["ideal"][wl])
		}},
		{"seg/ideal IPC", func(wl string) string {
			return fmt.Sprintf("%.2f", p.IPC["segmented"][wl]/p.IPC["ideal"][wl])
		}},
	}
	for _, r := range rows {
		cells := make(map[string]string)
		for _, wl := range p.Benchmarks {
			cells[wl] = r.values(wl)
		}
		t.AddRow(r.label, cells)
	}
	return t
}
