package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/bpred"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Pre-screened mega-grid sweeps. A mega-grid enumerates far more
// configurations than anyone wants to simulate (the "mega" preset is
// ~100k points); the analytic model (internal/model) scores every point
// in microseconds, the predicted IPC-versus-entries Pareto frontier plus
// a seeded random audit sample are simulated through the usual
// checkpoint/prefix-sharing machinery, and the audit sample's rank
// correlation and MAPE quantify how much the screening can be trusted —
// on every sweep, not just in the calibration tests (DESIGN.md §12).

// profileInsts is the instruction budget trace.Characterize analyses per
// workload when scoring a pre-screened sweep — the same budget the
// model's calibration tests profile with, so a sweep's estimates match
// the calibrated regime.
const profileInsts = 50_000

// profileCache builds one trace.Profile per workload and reuses it for
// every grid point. Characterize drains a fresh trace stream, so the
// profile cannot be rebuilt from a stream already feeding a simulation —
// each cache miss opens its own source — and caching saves both that
// stream and the dependence-window analysis on re-scores.
type profileCache struct {
	seed uint64
	mu   sync.Mutex
	m    map[string]*profileEntry
}

type profileEntry struct {
	once sync.Once
	p    trace.Profile
	err  error
}

func newProfileCache(seed uint64) *profileCache {
	return &profileCache{seed: seed, m: make(map[string]*profileEntry)}
}

func (c *profileCache) get(wl string) (trace.Profile, error) {
	c.mu.Lock()
	e := c.m[wl]
	if e == nil {
		e = new(profileEntry)
		c.m[wl] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		s, err := trace.New(wl, c.seed)
		if err != nil {
			e.err = err
			return
		}
		e.p = trace.Characterize(s, profileInsts)
	})
	return e.p, e.err
}

// PrescreenGrids lists the mega-grid presets by name: "mega" is the
// ~100k-point full grid, "ci" a sub-thousand-point-per-workload grid the
// CI prescreen job simulates end to end in minutes.
var PrescreenGrids = []string{"mega", "ci"}

// prescreenPoint is one enumerated grid point before any scoring.
type prescreenPoint struct {
	key string
	cfg sim.Config
}

// prescreenGrid enumerates a preset. Keys are deterministic and carry
// every swept dimension; the enumeration order is fixed, so the seeded
// audit sample is reproducible across processes.
func prescreenGrid(name string) ([]prescreenPoint, error) {
	type bpv struct {
		label string
		cfg   bpred.Config
	}
	large := bpred.DefaultConfig()
	small := large
	small.GlobalHistBits, small.LocalHistBits, small.LocalEntries, small.ChoiceHistBits = 8, 8, 256, 8
	tiny := large
	tiny.GlobalHistBits, tiny.LocalHistBits, tiny.LocalEntries, tiny.ChoiceHistBits = 5, 5, 64, 5

	var (
		iqSizes []int
		robfs   []float64
		lsqfs   []float64
		bps     []bpv
		widths  []int
		chains  func(iq int) []int
	)
	switch name {
	case "mega":
		for s := 32; s <= 512; s += 32 {
			iqSizes = append(iqSizes, s)
		}
		robfs = []float64{1, 1.5, 2, 3}
		lsqfs = []float64{0.5, 1, 2}
		bps = []bpv{{"bpL", large}, {"bpS", small}, {"bpT", tiny}}
		widths = []int{8, 4}
		chains = func(iq int) []int {
			lim := iq
			if lim > 256 {
				lim = 256
			}
			var out []int
			for c := 0; c <= lim; c += 32 {
				out = append(out, c)
			}
			return out
		}
	case "ci":
		iqSizes = []int{32, 64, 128, 256}
		robfs = []float64{1, 2, 3}
		lsqfs = []float64{0.5, 1}
		bps = []bpv{{"bpL", large}, {"bpS", small}}
		widths = []int{8}
		chains = func(iq int) []int { return []int{0, iq / 4, iq / 2} }
	default:
		return nil, fmt.Errorf("experiments: unknown prescreen grid %q (have %s)",
			name, strings.Join(PrescreenGrids, ", "))
	}

	base := func(design string, iq int) sim.Config {
		switch design {
		case "ideal":
			return sim.DefaultConfig(sim.QueueIdeal, iq)
		case "prescheduled":
			return sim.PrescheduledConfig(iq)
		case "fifos":
			return sim.FIFOConfig(iq)
		default: // distance
			return sim.DistanceConfig(iq)
		}
	}

	var pts []prescreenPoint
	add := func(design string, iq int, cfg sim.Config, chPart string) {
		for _, rf := range robfs {
			for _, lf := range lsqfs {
				for _, w := range widths {
					for _, bp := range bps {
						c := cfg
						c.ROBSize = int(rf * float64(iq))
						c.LSQSize = int(lf * float64(iq))
						c.FetchWidth, c.DispatchWidth, c.IssueWidth, c.CommitWidth = w, w, w, w
						c.BranchPredictor = bp.cfg
						key := fmt.Sprintf("%s/%d%s/rob%d/lsq%d/w%d/%s",
							design, iq, chPart, c.ROBSize, c.LSQSize, w, bp.label)
						pts = append(pts, prescreenPoint{key: key, cfg: c})
					}
				}
			}
		}
	}
	for _, iq := range iqSizes {
		for _, d := range []string{"ideal", "prescheduled", "fifos", "distance"} {
			add(d, iq, base(d, iq), "")
		}
		for _, ch := range chains(iq) {
			add("segmented", iq, sim.SegmentedConfig(iq, ch, true, true), fmt.Sprintf("/ch%d", ch))
		}
	}
	return pts, nil
}

// PrescreenOptions scales a pre-screened sweep. Zero values take the
// defaults below.
type PrescreenOptions struct {
	// Grid names the preset ("mega" or "ci").
	Grid string
	// Audit is the number of seeded-random grid points simulated per
	// workload regardless of the frontier prediction, to measure the
	// estimator's error where it was not trusted.
	Audit int
	// Slack is the frontier's relative safety margin: points predicted
	// within Slack of their entries-group's best are simulated too.
	Slack float64
}

// DefaultPrescreenOptions returns the standard screening parameters.
func DefaultPrescreenOptions() PrescreenOptions {
	return PrescreenOptions{Grid: "mega", Audit: 24, Slack: 0.05}
}

func (po PrescreenOptions) withDefaults() PrescreenOptions {
	d := DefaultPrescreenOptions()
	if po.Grid == "" {
		po.Grid = d.Grid
	}
	if po.Audit == 0 {
		po.Audit = d.Audit
	}
	if po.Slack == 0 {
		po.Slack = d.Slack
	}
	return po
}

// PrescreenPoint is one simulated grid point of a pre-screened sweep.
type PrescreenPoint struct {
	Key      string
	Entries  int
	Est      float64
	Sim      float64
	Frontier bool
	Audit    bool
}

// PrescreenWorkload is one workload's screening outcome.
type PrescreenWorkload struct {
	Workload string
	// Screened counts grid points scored analytically; Frontier and
	// Audit the selection sets (which may overlap); Simulated their
	// union — the points actually run.
	Screened  int
	Frontier  int
	Audit     int
	Simulated int
	// Spearman and MAPE compare estimate against simulation on the audit
	// sample — the estimator's report card on points it did not pick.
	Spearman float64
	MAPE     float64
	// BestKey/BestIPC is the simulated best IPC-per-entry point (the
	// frontier's objective) among the simulated set.
	BestKey string
	BestIPC float64
	// Points lists every simulated point, sorted by entries then key.
	Points []PrescreenPoint
}

// PrescreenResult is a full pre-screened sweep: per-workload outcomes
// plus the pooled audit-error metrics the screening contract is checked
// against. Pooling matters: a workload whose grid is genuinely flat
// (twolf: every design within 1%) has no rank signal of its own, but its
// audit points still participate in the cross-workload correlation.
type PrescreenResult struct {
	Grid      string
	Screened  int
	Simulated int
	Spearman  float64
	MAPE      float64
	Workloads []PrescreenWorkload
}

// auditSeed derives the per-workload audit-sample seed: stable across
// processes, distinct across workloads and base seeds.
func auditSeed(seed uint64, wl string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "prescreen-audit/%d/%s", seed, wl)
	return h.Sum64()
}

// Prescreen runs a pre-screened sweep: score the whole grid
// analytically per workload, simulate only the predicted frontier plus
// the audit sample (one batch, so warm checkpoints and prefix sharing
// apply across the selection), and report both the sweep results and
// the estimator's audit error. The returned ShardFile records the
// simulated points in the standard shard layout — byte-identical with
// and without prefix sharing, and free of screening counters, exactly
// like the experiment shards (see the shard-file comment in shard.go).
func Prescreen(o Options, po PrescreenOptions) (*PrescreenResult, *ShardFile, error) {
	if err := o.validateBenchmarks(); err != nil {
		return nil, nil, err
	}
	for _, wl := range o.benchmarks() {
		if strings.Contains(wl, "+") {
			return nil, nil, fmt.Errorf("experiments: prescreen profiles single workloads, not SMT sets (%q)", wl)
		}
	}
	po = po.withDefaults()
	if po.Audit < 2 {
		return nil, nil, fmt.Errorf("experiments: prescreen audit sample %d too small to rank (need >= 2)", po.Audit)
	}
	pts, err := prescreenGrid(po.Grid)
	if err != nil {
		return nil, nil, err
	}

	profiles := newProfileCache(o.Seed)
	type selection struct {
		wl       string
		est      []float64
		frontier map[int]bool
		audit    map[int]bool
		selected []int
	}
	var (
		sels []selection
		jobs []job
	)
	for _, wl := range o.benchmarks() {
		prof, err := profiles.get(wl)
		if err != nil {
			return nil, nil, err
		}
		est := make([]float64, len(pts))
		mpts := make([]model.Point, len(pts))
		for i, p := range pts {
			e := model.For(prof, p.cfg)
			est[i] = e.IPC
			mpts[i] = model.Point{Key: p.key, Entries: e.Entries, IPC: e.IPC}
		}
		sel := selection{wl: wl, est: est,
			frontier: make(map[int]bool), audit: make(map[int]bool)}
		for _, i := range model.Frontier(mpts, po.Slack) {
			sel.frontier[i] = true
		}
		for _, i := range model.Sample(auditSeed(o.Seed, wl), len(pts), po.Audit) {
			sel.audit[i] = true
		}
		for i := range pts {
			if sel.frontier[i] || sel.audit[i] {
				sel.selected = append(sel.selected, i)
			}
		}
		for _, i := range sel.selected {
			jobs = append(jobs, job{key: pts[i].key + "/" + wl, cfg: pts[i].cfg, wl: wl})
		}
		sels = append(sels, sel)
	}

	res, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}

	out := &PrescreenResult{Grid: po.Grid}
	var pooledEst, pooledSim []float64
	for _, sel := range sels {
		pw := PrescreenWorkload{
			Workload: sel.wl,
			Screened: len(pts),
			Frontier: len(sel.frontier),
			Audit:    len(sel.audit),
		}
		var auditEst, auditSim []float64
		bestPerEntry := -1.0
		for _, i := range sel.selected {
			r := res[pts[i].key+"/"+sel.wl]
			if r == nil {
				return nil, nil, fmt.Errorf("experiments: missing prescreen result for %s/%s", pts[i].key, sel.wl)
			}
			p := PrescreenPoint{
				Key:      pts[i].key,
				Entries:  model.Entries(pts[i].cfg),
				Est:      sel.est[i],
				Sim:      r.IPC,
				Frontier: sel.frontier[i],
				Audit:    sel.audit[i],
			}
			pw.Points = append(pw.Points, p)
			if sel.audit[i] {
				auditEst = append(auditEst, p.Est)
				auditSim = append(auditSim, p.Sim)
			}
			if v := p.Sim / float64(p.Entries); v > bestPerEntry {
				bestPerEntry, pw.BestKey, pw.BestIPC = v, p.Key, p.Sim
			}
		}
		sort.Slice(pw.Points, func(a, b int) bool {
			if pw.Points[a].Entries != pw.Points[b].Entries {
				return pw.Points[a].Entries < pw.Points[b].Entries
			}
			return pw.Points[a].Key < pw.Points[b].Key
		})
		pw.Simulated = len(pw.Points)
		pw.Spearman = model.Spearman(auditEst, auditSim)
		pw.MAPE = model.MAPE(auditEst, auditSim)
		pooledEst = append(pooledEst, auditEst...)
		pooledSim = append(pooledSim, auditSim...)
		out.Screened += pw.Screened
		out.Simulated += pw.Simulated
		out.Workloads = append(out.Workloads, pw)
	}
	out.Spearman = model.Spearman(pooledEst, pooledSim)
	out.MAPE = model.MAPE(pooledEst, pooledSim)

	sf := &ShardFile{
		Schema:       ShardSchema,
		Experiment:   "prescreen-" + po.Grid,
		Shard:        0,
		NumShards:    1,
		TotalJobs:    len(jobs),
		Instructions: o.Instructions,
		Warmup:       o.Warmup,
		Seed:         o.Seed,
		Contexts:     1,
		Benchmarks:   o.Benchmarks,
		Results:      make(map[string]*RecordedResult, len(jobs)),
	}
	for key, r := range res {
		sf.Results[key] = &RecordedResult{
			Workload:     r.Workload,
			QueueName:    r.QueueName,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC,
			Stats:        r.Stats.Values(),
		}
	}
	return out, sf, nil
}

// Summary is the one-line screening report iqbench prints in brackets.
func (r *PrescreenResult) Summary() string {
	frac := 0.0
	if r.Screened > 0 {
		frac = 100 * float64(r.Simulated) / float64(r.Screened)
	}
	return fmt.Sprintf("prescreen: %d/%d simulated (%.1f%%), audit rho %.3f, mape %.0f%%",
		r.Simulated, r.Screened, frac, r.Spearman, 100*r.MAPE)
}

// Table renders the per-workload screening outcomes.
func (r *PrescreenResult) Table() *stats.Table {
	t := stats.NewTable("workload", "screened", "frontier", "audit", "simulated", "sim%", "audit-rho", "audit-mape", "best (sim IPC/entry)")
	for _, w := range r.Workloads {
		t.AddRow(w.Workload, map[string]string{
			"screened":             fmt.Sprintf("%d", w.Screened),
			"frontier":             fmt.Sprintf("%d", w.Frontier),
			"audit":                fmt.Sprintf("%d", w.Audit),
			"simulated":            fmt.Sprintf("%d", w.Simulated),
			"sim%":                 fmt.Sprintf("%.1f%%", 100*float64(w.Simulated)/float64(w.Screened)),
			"audit-rho":            fmt.Sprintf("%.3f", w.Spearman),
			"audit-mape":           fmt.Sprintf("%.0f%%", 100*w.MAPE),
			"best (sim IPC/entry)": fmt.Sprintf("%s @ %.3f", w.BestKey, w.BestIPC),
		})
	}
	total := map[string]string{
		"screened":  fmt.Sprintf("%d", r.Screened),
		"simulated": fmt.Sprintf("%d", r.Simulated),
		"audit-rho": fmt.Sprintf("%.3f", r.Spearman),
	}
	if r.Screened > 0 {
		total["sim%"] = fmt.Sprintf("%.1f%%", 100*float64(r.Simulated)/float64(r.Screened))
		total["audit-mape"] = fmt.Sprintf("%.0f%%", 100*r.MAPE)
	}
	t.AddRow("pooled", total)
	return t
}
