package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// InTextResult holds the paper's in-text measurements for one benchmark.
type InTextResult struct {
	// §4.4/§6.1: hit/miss predictor quality (HMP-only configuration).
	HMPAccuracy float64
	HMPCoverage float64
	HitRate     float64
	// §4.3: fraction of dispatched instructions with two outstanding
	// operands produced in different chains (base configuration).
	TwoChainFraction float64
	// §4.4: fraction of chains headed by loads in the base design (the
	// paper reports an average of 65%).
	LoadHeadShare float64
	// §4.5: fraction of cycles spent in detected deadlock, and recoveries
	// (combined-predictor configuration with 128 chains, where LRP
	// mispredictions make deadlock possible).
	DeadlockCycleFraction float64
	Recoveries            float64
	// §6.1: average ready instructions in segment 0 and in the whole
	// queue (base, unlimited chains).
	ReadySeg0  float64
	ReadyTotal float64
	// Segment-0 share of all ready instructions.
	ReadySeg0Share float64
}

// inTextJobs enumerates the in-text measurements' grid.
func inTextJobs(o Options) []job {
	var jobs []job
	for _, wl := range o.benchmarks() {
		jobs = append(jobs,
			job{key: "base/" + wl, cfg: sim.SegmentedConfig(512, 0, false, false), wl: wl},
			job{key: "hmp/" + wl, cfg: sim.SegmentedConfig(512, 0, true, false), wl: wl},
			job{key: "comb128/" + wl, cfg: sim.SegmentedConfig(512, 128, true, true), wl: wl},
		)
	}
	return jobs
}

// InText reproduces the in-text measurements of §4.3, §4.4, §4.5 and §6.1
// for every benchmark.
func InText(o Options) (map[string]*InTextResult, error) {
	res, err := o.runAll(inTextJobs(o))
	if err != nil {
		return nil, err
	}
	return InTextFrom(o, res)
}

// InTextFrom assembles the in-text measurements from already-computed
// results.
func InTextFrom(o Options, res map[string]*sim.Result) (map[string]*InTextResult, error) {
	benches := o.benchmarks()
	if err := requireResults(res, inTextJobs(o)); err != nil {
		return nil, err
	}
	out := make(map[string]*InTextResult, len(benches))
	for _, wl := range benches {
		base := res["base/"+wl].Stats
		hmp := res["hmp/"+wl].Stats
		comb := res["comb128/"+wl]

		r := &InTextResult{}
		r.HMPAccuracy = hmp.MustGet("hmp_hit_pred_accuracy")
		r.HMPCoverage = hmp.MustGet("hmp_hit_coverage")
		r.HitRate = hmp.MustGet("hmp_actual_hit_rate")
		if disp := base.MustGet("iq_dispatched"); disp > 0 {
			r.TwoChainFraction = base.MustGet("two_outstanding_diff_chains") / disp
		}
		if heads := base.MustGet("chain_heads"); heads > 0 {
			r.LoadHeadShare = base.MustGet("chain_heads_load") / heads
		}
		if cyc := comb.Stats.MustGet("cycles"); cyc > 0 {
			r.DeadlockCycleFraction = comb.Stats.MustGet("deadlock_cycles") / cyc
		}
		r.Recoveries = comb.Stats.MustGet("deadlock_recoveries")
		r.ReadySeg0 = base.MustGet("iq_ready_seg0_avg")
		r.ReadyTotal = base.MustGet("iq_ready_total_avg")
		if r.ReadyTotal > 0 {
			r.ReadySeg0Share = r.ReadySeg0 / r.ReadyTotal
		}
		out[wl] = r
	}
	return out, nil
}

// InTextTable renders the in-text measurements.
func InTextTable(rs map[string]*InTextResult) *stats.Table {
	t := stats.NewTable("benchmark",
		"hmp-acc", "hmp-cov", "hit-rate", "two-chain", "load-heads", "deadlock", "ready-seg0", "seg0-share")
	for _, wl := range stats.SortedNames(rs) {
		r := rs[wl]
		t.AddRow(wl, map[string]string{
			"hmp-acc":    fmt.Sprintf("%.1f%%", 100*r.HMPAccuracy),
			"hmp-cov":    fmt.Sprintf("%.1f%%", 100*r.HMPCoverage),
			"hit-rate":   fmt.Sprintf("%.1f%%", 100*r.HitRate),
			"two-chain":  fmt.Sprintf("%.1f%%", 100*r.TwoChainFraction),
			"load-heads": fmt.Sprintf("%.1f%%", 100*r.LoadHeadShare),
			"deadlock":   fmt.Sprintf("%.3f%%", 100*r.DeadlockCycleFraction),
			"ready-seg0": fmt.Sprintf("%.1f", r.ReadySeg0),
			"seg0-share": fmt.Sprintf("%.1f%%", 100*r.ReadySeg0Share),
		})
	}
	return t
}

// AblationResult compares the full segmented design against single-feature
// ablations (DESIGN.md §5): pushdown off, bypass off, instant chain wires,
// and two-cycle-increment thresholds versus the design defaults.
type AblationResult struct {
	Benchmarks []string
	// IPC[config][bench].
	IPC map[string]map[string]float64
}

// AblationConfigs lists the ablation configurations, in report order.
var AblationConfigs = []string{"full", "no-pushdown", "no-bypass", "instant-wires"}

// ablationConfig builds one named ablation configuration.
func ablationConfig(name string) sim.Config {
	cfg := sim.SegmentedConfig(512, 128, true, true)
	switch name {
	case "no-pushdown":
		cfg.Segmented.Pushdown = false
	case "no-bypass":
		cfg.Segmented.Bypass = false
	case "instant-wires":
		cfg.Segmented.InstantWires = true
	}
	return cfg
}

// ablationJobs enumerates the ablation grid in report order.
func ablationJobs(o Options) []job {
	var jobs []job
	for _, wl := range o.benchmarks() {
		for _, name := range AblationConfigs {
			jobs = append(jobs, job{key: name + "/" + wl, cfg: ablationConfig(name), wl: wl})
		}
	}
	return jobs
}

// Ablations measures the contribution of each design enhancement at the
// 512-entry, 128-chain combined configuration.
func Ablations(o Options) (*AblationResult, error) {
	res, err := o.runAll(ablationJobs(o))
	if err != nil {
		return nil, err
	}
	return AblationsFrom(o, res)
}

// AblationsFrom assembles the ablation comparison from already-computed
// results.
func AblationsFrom(o Options, res map[string]*sim.Result) (*AblationResult, error) {
	benches := o.benchmarks()
	if err := requireResults(res, ablationJobs(o)); err != nil {
		return nil, err
	}
	out := &AblationResult{Benchmarks: benches, IPC: make(map[string]map[string]float64)}
	for _, name := range AblationConfigs {
		out.IPC[name] = make(map[string]float64)
		for _, wl := range benches {
			out.IPC[name][wl] = res[name+"/"+wl].IPC
		}
	}
	return out, nil
}

// Table renders the ablation IPCs.
func (a *AblationResult) Table() *stats.Table {
	t := stats.NewTable("config", a.Benchmarks...)
	for _, name := range AblationConfigs {
		cells := make(map[string]string)
		for _, wl := range a.Benchmarks {
			cells[wl] = fmt.Sprintf("%.3f", a.IPC[name][wl])
		}
		t.AddRow(name, cells)
	}
	return t
}
