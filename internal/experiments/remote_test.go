package experiments

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// Remote checkpoint-store sweeps. Two contracts under test:
//
//  1. Robustness — a sweep backed by an unreachable, dying, or
//     otherwise broken store must complete with simulated counts
//     byte-identical to a store-less run (store failures degrade to
//     local warmups; they never abort a batch).
//  2. Sharing — shards pointed at one live server reuse each other's
//     uploaded warmups, and the merged result set is identical to the
//     single-process run.

// TestRemoteShardedSweepSharesWarmups: shard 0 warms and uploads;
// shard 1, run afterwards against the same server, hits every key; the
// merge equals the single-process, store-less run bit for bit.
func TestRemoteShardedSweepSharesWarmups(t *testing.T) {
	srv := httptest.NewServer(sim.NewStoreHandler(t.TempDir()))
	defer srv.Close()

	full, err := RunShard(shardTestOptions(), "table2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	o0 := shardTestOptions()
	o0.CheckpointURL = srv.URL
	o0.CkptStats = &CkptStats{}
	s0, err := RunShard(o0, "table2", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The round-robin partition gives shard 0 every gcc point and shard
	// 1 every swim point, so each shard warms (and uploads) exactly one
	// workload.
	if h, m := o0.CkptStats.Hits.Load(), o0.CkptStats.Misses.Load(); h != 0 || m != 1 {
		t.Fatalf("shard 0 against an empty store: hits=%d misses=%d, want 0/1", h, m)
	}
	if o0.CkptStats.BytesWritten.Load() == 0 {
		t.Fatal("shard 0 uploaded nothing")
	}

	o1 := shardTestOptions()
	o1.CheckpointURL = srv.URL
	o1.CkptStats = &CkptStats{}
	s1, err := RunShard(o1, "table2", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o1.CkptStats.Hits.Load(), o1.CkptStats.Misses.Load(); h != 0 || m != 1 {
		t.Fatalf("shard 1 against an empty swim key: hits=%d misses=%d, want 0/1", h, m)
	}
	if f := o1.CkptStats.Fallbacks.Load() + o0.CkptStats.Fallbacks.Load(); f != 0 {
		t.Fatalf("healthy server produced %d fallbacks", f)
	}

	// A re-run of shard 0 in a "new process" (fresh Options and stats)
	// must find shard 0's earlier upload on the server: a remote hit,
	// nothing warmed locally, same bytes in as went out.
	o2 := shardTestOptions()
	o2.CheckpointURL = srv.URL
	o2.CkptStats = &CkptStats{}
	s0again, err := RunShard(o2, "table2", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o2.CkptStats.Hits.Load(), o2.CkptStats.Misses.Load(); h != 1 || m != 0 {
		t.Fatalf("shard 0 rerun: hits=%d misses=%d, want 1/0 (remote reuse)", h, m)
	}
	if got, want := o2.CkptStats.BytesRead.Load(), o0.CkptStats.BytesWritten.Load(); got != want {
		t.Fatalf("rerun read %d bytes, shard 0 wrote %d", got, want)
	}
	if !reflect.DeepEqual(s0again.Results, s0.Results) {
		t.Fatal("shard rerun from the remote checkpoint differs from the run that built it")
	}

	merged, err := MergeShards([]*ShardFile{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	// The merged file must equal the store-less single-process run —
	// including the absence of per-shard CkptStats, which MergeShards
	// drops as run-local metadata.
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("remote-store sharded sweep differs from the single-process run")
	}
	if s0.CkptStats == nil || s1.CkptStats == nil {
		t.Fatal("shard files did not record their store counters")
	}
}

// TestSweepSurvivesStoreDeathMidRun: the server serves a couple of
// requests and then starts hanging up mid-connection (as a killed
// process would). The sweep must complete, report the failures in
// CkptStats, and produce results identical to a store-less run.
func TestSweepSurvivesStoreDeathMidRun(t *testing.T) {
	plain, err := Table2(shardTestOptions())
	if err != nil {
		t.Fatal(err)
	}

	inner := sim.NewStoreHandler(t.TempDir())
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 2 {
			panic(http.ErrAbortHandler) // sever the connection: the "server died"
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	o := shardTestOptions()
	o.CheckpointURL = srv.URL
	o.CkptStats = &CkptStats{}
	got, err := Table2(o)
	if err != nil {
		t.Fatalf("sweep failed when the store died mid-run: %v", err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatal("results differ from the store-less run after store death")
	}
	if pf, fb := o.CkptStats.PutFailures.Load(), o.CkptStats.Fallbacks.Load(); pf+fb == 0 {
		t.Fatalf("dead store left no trace in the stats: %s", o.CkptStats)
	}
}

// TestSweepSurvivesUnreachableStore: a wrong -ckpt-url (nothing has
// ever listened there) must not change any simulated number, only add
// fallbacks to the stats.
func TestSweepSurvivesUnreachableStore(t *testing.T) {
	plain, err := Table2(shardTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := shardTestOptions()
	o.CheckpointURL = "http://127.0.0.1:1" // reserved port: connection refused
	o.CkptStats = &CkptStats{}
	got, err := Table2(o)
	if err != nil {
		t.Fatalf("sweep failed against an unreachable store: %v", err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatal("results differ from the store-less run")
	}
	if fb := o.CkptStats.Fallbacks.Load(); fb != 2 {
		t.Fatalf("Fallbacks = %d, want 2 (one per workload)", fb)
	}
	if h, m := o.CkptStats.Hits.Load(), o.CkptStats.Misses.Load(); h != 0 || m != 0 {
		t.Fatalf("unreachable store recorded hits=%d misses=%d", h, m)
	}
}

// TestSweepSurvivesUnwritableDirStore: the original PR 5 bug — a
// read-only/unwritable -ckpt-dir aborted a sweep whose checkpoints
// were already built. Now it must complete, counting put failures.
func TestSweepSurvivesUnwritableDirStore(t *testing.T) {
	plain, err := Table2(shardTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := shardTestOptions()
	// A directory path running through a regular file is unwritable on
	// every platform, even for root (unlike a chmod-protected dir).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o666); err != nil {
		t.Fatal(err)
	}
	o.CheckpointDir = blocker + "/store"
	o.CkptStats = &CkptStats{}
	got, err := Table2(o)
	if err != nil {
		t.Fatalf("sweep failed on an unwritable store dir: %v", err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatal("results differ from the store-less run")
	}
	if pf := o.CkptStats.PutFailures.Load(); pf != 2 {
		t.Fatalf("PutFailures = %d, want 2 (one per workload)", pf)
	}
}
