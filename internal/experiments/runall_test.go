package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func testJobs(n int) []job {
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = job{key: string(rune('a' + i)), wl: "swim"}
	}
	return jobs
}

// TestRunAllWithStopsAfterFailure: with serial execution, a failing job
// must prevent every not-yet-started job from running at all — the stop
// flag is checked before the runner is invoked.
func TestRunAllWithStopsAfterFailure(t *testing.T) {
	o := Options{Parallel: 1}
	var invocations atomic.Int64
	boom := errors.New("boom")
	res, err := o.runAllWith(testJobs(6), func(j job) (*sim.Result, error) {
		invocations.Add(1)
		return nil, boom
	})
	if res != nil {
		t.Errorf("expected nil results after failure, got %d entries", len(res))
	}
	if !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom error, got %v", err)
	}
	if got := invocations.Load(); got != 1 {
		t.Errorf("runner invoked %d times after first failure, want exactly 1", got)
	}
}

// TestRunAllWithErrorNamesJob: the returned error identifies which job
// failed.
func TestRunAllWithErrorNamesJob(t *testing.T) {
	o := Options{Parallel: 1}
	boom := errors.New("no forward progress")
	_, err := o.runAllWith(testJobs(1), func(j job) (*sim.Result, error) {
		return nil, boom
	})
	if err == nil || !strings.Contains(err.Error(), "a:") {
		t.Fatalf("error should name the failing job key, got %v", err)
	}
}

// TestRunAllValidatesBenchmarks: an unknown workload name fails fast with
// a clear error, before any simulation or warmup runs.
func TestRunAllValidatesBenchmarks(t *testing.T) {
	o := DefaultOptions()
	o.Benchmarks = []string{"swim", "nope"}
	_, err := o.runAll([]job{{key: "x", cfg: sim.DefaultConfig(sim.QueueIdeal, 64), wl: "swim"}})
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("expected error naming the unknown benchmark, got %v", err)
	}
	if !strings.Contains(err.Error(), "swim") {
		t.Errorf("error should list the valid names, got %v", err)
	}
}

// TestRunAllForkMatchesColdPath: the checkpoint-fork scheduler must
// reproduce the cold warm-every-run path bit for bit — same cycles, same
// stats — including when several grid points share one checkpoint.
func TestRunAllForkMatchesColdPath(t *testing.T) {
	o := Options{Instructions: 3000, Warmup: 20_000, Seed: 1, Parallel: 4}
	jobs := []job{
		{key: "swim/ideal", cfg: sim.DefaultConfig(sim.QueueIdeal, 128), wl: "swim"},
		{key: "swim/seg", cfg: sim.SegmentedConfig(128, 64, true, true), wl: "swim"},
		{key: "swim/seg32", cfg: sim.SegmentedConfig(32, 64, true, true), wl: "swim"},
		{key: "gcc/ideal", cfg: sim.DefaultConfig(sim.QueueIdeal, 128), wl: "gcc"},
	}
	res, err := o.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		cold, err := sim.RunWorkloadWarm(j.cfg, j.wl, o.Seed, o.Instructions, o.Warmup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[j.key], cold) {
			t.Errorf("%s: forked sweep result differs from cold run", j.key)
		}
	}
}

// TestCheckpointCacheEvictsAfterLastFork: a checkpoint is held exactly as
// long as grid points still need to fork it — the last fork for a key
// releases the warmed template, so a long batch does not keep every
// workload's machine alive until the end.
func TestCheckpointCacheEvictsAfterLastFork(t *testing.T) {
	o := Options{Instructions: 300, Warmup: 4000, Seed: 1, Parallel: 1}
	jobs := []job{
		{key: "swim/64", cfg: sim.DefaultConfig(sim.QueueIdeal, 64), wl: "swim"},
		{key: "swim/128", cfg: sim.DefaultConfig(sim.QueueIdeal, 128), wl: "swim"},
		{key: "gcc/64", cfg: sim.DefaultConfig(sim.QueueIdeal, 64), wl: "gcc"},
	}
	cks := &ckCache{o: o, m: make(map[ckKey]*ckEntry)}
	cks.retain(jobs)

	entries := func() int {
		cks.mu.Lock()
		defer cks.mu.Unlock()
		return len(cks.m)
	}
	if got := entries(); got != 2 {
		t.Fatalf("retain registered %d keys, want 2 (both swim jobs share one checkpoint)", got)
	}
	if _, err := cks.run(jobs[0], o.Instructions); err != nil {
		t.Fatal(err)
	}
	if got := entries(); got != 2 {
		t.Fatalf("swim checkpoint evicted with a grid point still unforked (entries=%d)", got)
	}
	if _, err := cks.run(jobs[1], o.Instructions); err != nil {
		t.Fatal(err)
	}
	if got := entries(); got != 1 {
		t.Fatalf("swim checkpoint not evicted after its last fork (entries=%d)", got)
	}
	if _, err := cks.run(jobs[2], o.Instructions); err != nil {
		t.Fatal(err)
	}
	if got := entries(); got != 0 {
		t.Fatalf("cache still holds %d checkpoints after the batch", got)
	}
}

// TestRunAllWithSuccess: every job runs once and every result is keyed.
func TestRunAllWithSuccess(t *testing.T) {
	o := Options{Parallel: 3}
	var invocations atomic.Int64
	jobs := testJobs(8)
	res, err := o.runAllWith(jobs, func(j job) (*sim.Result, error) {
		invocations.Add(1)
		return &sim.Result{Workload: j.wl}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := invocations.Load(); got != int64(len(jobs)) {
		t.Errorf("runner invoked %d times, want %d", got, len(jobs))
	}
	for _, j := range jobs {
		if res[j.key] == nil {
			t.Errorf("missing result for job %q", j.key)
		}
	}
}
