package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func testJobs(n int) []job {
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = job{key: string(rune('a' + i)), wl: "swim"}
	}
	return jobs
}

// TestRunAllWithStopsAfterFailure: with serial execution, a failing job
// must prevent every not-yet-started job from running at all — the stop
// flag is checked before the runner is invoked.
func TestRunAllWithStopsAfterFailure(t *testing.T) {
	o := Options{Parallel: 1}
	var invocations atomic.Int64
	boom := errors.New("boom")
	res, err := o.runAllWith(testJobs(6), func(j job) (*sim.Result, error) {
		invocations.Add(1)
		return nil, boom
	})
	if res != nil {
		t.Errorf("expected nil results after failure, got %d entries", len(res))
	}
	if !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom error, got %v", err)
	}
	if got := invocations.Load(); got != 1 {
		t.Errorf("runner invoked %d times after first failure, want exactly 1", got)
	}
}

// TestRunAllWithErrorNamesJob: the returned error identifies which job
// failed.
func TestRunAllWithErrorNamesJob(t *testing.T) {
	o := Options{Parallel: 1}
	boom := errors.New("no forward progress")
	_, err := o.runAllWith(testJobs(1), func(j job) (*sim.Result, error) {
		return nil, boom
	})
	if err == nil || !strings.Contains(err.Error(), "a:") {
		t.Fatalf("error should name the failing job key, got %v", err)
	}
}

// TestRunAllWithSuccess: every job runs once and every result is keyed.
func TestRunAllWithSuccess(t *testing.T) {
	o := Options{Parallel: 3}
	var invocations atomic.Int64
	jobs := testJobs(8)
	res, err := o.runAllWith(jobs, func(j job) (*sim.Result, error) {
		invocations.Add(1)
		return &sim.Result{Workload: j.wl}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := invocations.Load(); got != int64(len(jobs)) {
		t.Errorf("runner invoked %d times, want %d", got, len(jobs))
	}
	for _, j := range jobs {
		if res[j.key] == nil {
			t.Errorf("missing result for job %q", j.key)
		}
	}
}
