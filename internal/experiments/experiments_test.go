package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// tinyOptions keeps the harness tests fast while still exercising every
// configuration each experiment launches.
func tinyOptions(benches ...string) Options {
	o := DefaultOptions()
	o.Instructions = 1500
	o.Warmup = 20_000
	o.Benchmarks = benches
	return o
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Instructions <= 0 || o.Warmup <= 0 || o.Seed == 0 {
		t.Fatalf("defaults implausible: %+v", o)
	}
	if got := o.benchmarks(); len(got) != 8 {
		t.Fatalf("default benchmark set = %v", got)
	}
	if o.parallel() < 1 {
		t.Fatal("parallelism must be positive")
	}
	o.Parallel = 3
	if o.parallel() != 3 {
		t.Fatal("explicit parallelism ignored")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(tinyOptions("vortex"))
	if err != nil {
		t.Fatal(err)
	}
	if r.IdealIPC["vortex"] <= 0 {
		t.Fatal("ideal IPC missing")
	}
	for _, cl := range []string{"unlimited", "128 chains", "64 chains"} {
		for _, v := range []string{"base", "hmp", "lrp", "comb"} {
			rel := r.Relative["vortex"][cl][v]
			if rel <= 0 || rel > 1.3 {
				t.Errorf("%s/%s relative = %v", cl, v, rel)
			}
		}
	}
	tab := r.Table().String()
	if !strings.Contains(tab, "unlimited/base") || !strings.Contains(tab, "average") {
		t.Errorf("table rendering:\n%s", tab)
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(tinyOptions("equake", "vortex"))
	if err != nil {
		t.Fatal(err)
	}
	// equake (indirect loads everywhere) must demand far more chains than
	// vortex, and every predictor must reduce the base configuration's
	// usage — the paper's Table 2 structure.
	if r.Average["base"]["equake"] <= r.Average["base"]["vortex"] {
		t.Errorf("equake chains %.1f should exceed vortex %.1f",
			r.Average["base"]["equake"], r.Average["base"]["vortex"])
	}
	if r.Average["comb"]["equake"] > r.Average["base"]["equake"] {
		t.Error("combined predictors should not increase chain usage")
	}
	for _, v := range []string{"base", "hmp", "lrp", "comb"} {
		for _, wl := range r.Benchmarks {
			if r.Peak[v][wl] < r.Average[v][wl] {
				t.Errorf("%s/%s peak %.1f below average %.1f", v, wl, r.Peak[v][wl], r.Average[v][wl])
			}
		}
	}
	if !strings.Contains(r.Table().String(), "base-avg") {
		t.Error("table rendering")
	}
}

func TestFig3Shape(t *testing.T) {
	o := tinyOptions("gcc")
	r, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range Fig3Series {
		pts := r.IPC[series]["gcc"]
		want := len(Fig3Sizes)
		if series == "prescheduled" {
			want = len(Fig3PreschedSlots)
		}
		if len(pts) != want {
			t.Fatalf("%s has %d points, want %d", series, len(pts), want)
		}
		for _, v := range pts {
			if v <= 0 {
				t.Fatalf("%s has non-positive IPC %v", series, pts)
			}
		}
	}
	tabs := r.Tables()
	if !strings.Contains(tabs["gcc"].String(), "comb-128chains") {
		t.Error("table rendering")
	}
}

func TestInTextShape(t *testing.T) {
	r, err := InText(tinyOptions("mgrid"))
	if err != nil {
		t.Fatal(err)
	}
	m := r["mgrid"]
	if m.HitRate <= 0 || m.HitRate > 1 {
		t.Errorf("hit rate %v", m.HitRate)
	}
	if m.HMPAccuracy < 0 || m.HMPAccuracy > 1 || m.HMPCoverage < 0 || m.HMPCoverage > 1 {
		t.Errorf("hmp stats %v/%v", m.HMPAccuracy, m.HMPCoverage)
	}
	if m.TwoChainFraction < 0 || m.TwoChainFraction > 1 {
		t.Errorf("two-chain fraction %v", m.TwoChainFraction)
	}
	if m.ReadySeg0 < 0 || m.ReadySeg0Share < 0 || m.ReadySeg0Share > 1 {
		t.Errorf("seg0 stats %v/%v", m.ReadySeg0, m.ReadySeg0Share)
	}
	if !strings.Contains(InTextTable(r).String(), "hmp-acc") {
		t.Error("table rendering")
	}
}

func TestAblationsShape(t *testing.T) {
	r, err := Ablations(tinyOptions("vortex"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AblationConfigs {
		if r.IPC[name]["vortex"] <= 0 {
			t.Errorf("%s missing", name)
		}
	}
	if !strings.Contains(r.Table().String(), "no-pushdown") {
		t.Error("table rendering")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	o := tinyOptions("vortex")
	_, err := o.runAll([]job{{key: "bad", cfg: sim.Config{}, wl: "vortex"}})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("invalid config should fail the batch with its key, got %v", err)
	}
	// An unknown workload also surfaces.
	if _, err := o.runAll([]job{{key: "w", cfg: sim.DefaultConfig(sim.QueueIdeal, 32), wl: "nope"}}); err == nil {
		t.Fatal("unknown workload should fail the batch")
	}
}

func TestRelatedWorkShape(t *testing.T) {
	r, err := RelatedWork(tinyOptions("vortex"), 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RelatedDesigns {
		if r.IPC[d]["vortex"] <= 0 {
			t.Errorf("%s missing", d)
		}
	}
	if !strings.Contains(r.Table().String(), "design@128") {
		t.Error("table rendering")
	}
}

func TestPowerShape(t *testing.T) {
	r, err := Power(tinyOptions("vortex"), 128, DefaultEnergyWeights())
	if err != nil {
		t.Fatal(err)
	}
	ideal := r.EnergyPerInst["ideal"]["vortex"]
	seg := r.EnergyPerInst["segmented"]["vortex"]
	if ideal <= 0 || seg <= 0 {
		t.Fatalf("energies: ideal %v seg %v", ideal, seg)
	}
	// At equal capacity the monolithic queue's whole-occupancy CAM search
	// dominates the proxy; the segmented queue must be cheaper.
	if seg >= ideal {
		t.Errorf("segmented proxy %v should undercut monolithic %v", seg, ideal)
	}
	if !strings.Contains(r.Table().String(), "seg/ideal E") {
		t.Error("table rendering")
	}
}
