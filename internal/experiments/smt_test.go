package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func smtTestOptions() Options {
	return Options{Instructions: 1500, Warmup: 8000, Seed: 1, Benchmarks: []string{"swim+gcc"}}
}

// TestSMTShape: the SMT matrix covers every design × context count ×
// base set, with a per-context committed split that accounts for every
// retired instruction.
func TestSMTShape(t *testing.T) {
	o := smtTestOptions()
	r, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Sets, []string{"swim+gcc"}) {
		t.Fatalf("sets = %v", r.Sets)
	}
	for _, d := range r.Designs {
		for _, nctx := range r.Contexts {
			ipc := r.IPC[d][nctx]["swim+gcc"]
			if ipc <= 0 {
				t.Errorf("%s/%dctx: IPC %v", d, nctx, ipc)
			}
			per := r.Committed[d][nctx]["swim+gcc"]
			if len(per) != nctx {
				t.Fatalf("%s/%dctx: %d per-context counts", d, nctx, len(per))
			}
			var sum int64
			for _, c := range per {
				sum += c
			}
			if sum < o.Instructions {
				t.Errorf("%s/%dctx: contexts committed %d total, budget %d", d, nctx, sum, o.Instructions)
			}
		}
	}
	if r.Table() == nil {
		t.Fatal("nil table")
	}
}

// TestSMTShardedSweepMatchesSingleProcess: the sharding contract holds
// for the multi-context grid — two shards merged are byte-identical to
// one process, and the shard header carries the context count so SMT
// shards can never merge with single-threaded ones.
func TestSMTShardedSweepMatchesSingleProcess(t *testing.T) {
	o := smtTestOptions()
	full, err := RunShard(o, "smt", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Contexts != 4 {
		t.Fatalf("grid context count = %d, want 4", full.Contexts)
	}
	s0, err := RunShard(o, "smt", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunShard(o, "smt", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeShards([]*ShardFile{s1, s0})
	if err != nil {
		t.Fatal(err)
	}
	mj, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, fj) {
		t.Fatal("merged SMT JSON is not byte-identical to the single-process JSON")
	}

	direct, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}
	fromShards, err := SMTFrom(merged.Options(), merged.SimResults())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromShards, direct) {
		t.Fatal("SMT matrix assembled from shards differs from direct run")
	}

	// A doctored context count must refuse to merge.
	bad := *s0
	bad.Contexts = 1
	if _, err := MergeShards([]*ShardFile{&bad, s1}); err == nil {
		t.Fatal("context-count mismatch merged silently")
	}
}

// TestSMTCheckpointDirSkipsWarmup: the SMT grid shares one checkpoint
// per (context set, geometry) through a store: the cold batch misses
// once per context set, the warm batch hits every time, results
// identical throughout.
func TestSMTCheckpointDirSkipsWarmup(t *testing.T) {
	o := smtTestOptions()
	plain, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}

	o.CheckpointDir = t.TempDir()
	o.CkptStats = &CkptStats{}
	cold, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o.CkptStats.Hits.Load(), o.CkptStats.Misses.Load(); h != 0 || m != 2 {
		t.Fatalf("cold batch: hits=%d misses=%d, want 0/2 (one per context set)", h, m)
	}

	o.CkptStats = &CkptStats{}
	warm, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o.CkptStats.Hits.Load(), o.CkptStats.Misses.Load(); h != 2 || m != 0 {
		t.Fatalf("warm batch: hits=%d misses=%d, want 2/0", h, m)
	}

	if !reflect.DeepEqual(cold, plain) {
		t.Fatal("store-backed cold batch differs from in-memory batch")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("store-hit batch differs from the batch that built the store")
	}
}
