package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// RelatedResult compares the three dependence-based designs discussed in
// the paper's §2 at equal capacity: Palacharla et al.'s FIFOs, Michaud &
// Seznec's prescheduling array, and the segmented chain queue, with the
// ideal queue as the upper bound.
type RelatedResult struct {
	Benchmarks []string
	Size       int
	// IPC[design][bench].
	IPC map[string]map[string]float64
}

// RelatedDesigns lists the compared designs in report order.
var RelatedDesigns = []string{"ideal", "fifos", "distance", "prescheduled", "segmented"}

// RelatedWork runs the §2 comparison at the given total queue capacity.
// Michaud & Seznec report prescheduling outperforming the FIFOs; the
// paper reports the segmented queue outperforming prescheduling; the
// three-way comparison closes the loop.
func RelatedWork(o Options, size int) (*RelatedResult, error) {
	benches := o.benchmarks()
	cfgs := map[string]sim.Config{
		"ideal":        sim.DefaultConfig(sim.QueueIdeal, size),
		"fifos":        sim.FIFOConfig(size),
		"distance":     sim.DistanceConfig(size),
		"prescheduled": sim.PrescheduledConfig(size),
		"segmented":    sim.SegmentedConfig(size, 128, true, true),
	}
	var jobs []job
	for _, wl := range benches {
		for name, cfg := range cfgs {
			jobs = append(jobs, job{key: name + "/" + wl, cfg: cfg, wl: wl})
		}
	}
	res, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	out := &RelatedResult{Benchmarks: benches, Size: size, IPC: make(map[string]map[string]float64)}
	for name := range cfgs {
		out.IPC[name] = make(map[string]float64)
		for _, wl := range benches {
			out.IPC[name][wl] = res[name+"/"+wl].IPC
		}
	}
	return out, nil
}

// Table renders the comparison.
func (r *RelatedResult) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("design@%d", r.Size), r.Benchmarks...)
	for _, name := range RelatedDesigns {
		cells := make(map[string]string)
		for _, wl := range r.Benchmarks {
			cells[wl] = fmt.Sprintf("%.3f", r.IPC[name][wl])
		}
		t.AddRow(name, cells)
	}
	return t
}
