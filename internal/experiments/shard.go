package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Cross-process sweep sharding. A grid is an ordered job list (sorted by
// key, so every process derives the identical order); shard i of n runs
// the jobs at positions i, i+n, i+2n, … and records its results in a
// ShardFile. Merging the n files reproduces, bit for bit, the result set
// a single process would have produced — simulations are deterministic
// and jobs are independent — so a sweep can be spread across machines
// with no loss of reproducibility. Combined with a shared CheckpointDir,
// the shards also skip re-warming workloads another shard (or an earlier
// sweep) has already warmed.

// ShardSchema versions the shard-file JSON layout. Version 2 added the
// Contexts header field (SMT grids); version-1 files are rejected by
// MergeShards rather than merged with a silently missing field.
const ShardSchema = 2

// Experiments lists the shardable experiment grids by name.
var Experiments = []string{"fig2", "table2", "fig3", "intext", "ablations", "smt"}

// experimentJobs returns the named experiment's full grid, sorted by key.
func experimentJobs(experiment string, o Options) ([]job, error) {
	var jobs []job
	switch experiment {
	case "fig2":
		jobs = fig2Jobs(o)
	case "table2":
		jobs = table2Jobs(o)
	case "fig3":
		jobs = fig3Jobs(o)
	case "intext":
		jobs = inTextJobs(o)
	case "ablations":
		jobs = ablationJobs(o)
	case "smt":
		jobs = smtJobs(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			experiment, strings.Join(Experiments, ", "))
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].key < jobs[k].key })
	return jobs, nil
}

// gridContexts returns the grid's maximum hardware-context count: 1 for
// the single-threaded experiments, the largest "+"-joined set for the
// SMT matrix. Recorded in the shard header so shards of grids with
// different context shapes can never be merged.
func gridContexts(jobs []job) int {
	m := 1
	for _, j := range jobs {
		if n := strings.Count(j.wl, "+") + 1; n > m {
			m = n
		}
	}
	return m
}

// RecordedResult is one grid point's result in shard-file form:
// sim.Result with the statistics flattened to a plain map.
type RecordedResult struct {
	Workload     string
	QueueName    string
	Instructions int64
	Cycles       int64
	IPC          float64
	Stats        map[string]float64
}

// ShardFile is the JSON document one sweep shard writes. The header
// fields pin everything the result set depends on; Merge refuses files
// whose headers disagree, so results from different grids or scales can
// never be silently combined.
type ShardFile struct {
	Schema     int
	Experiment string
	// Shard / NumShards locate this file in the partition. A merged file
	// (and a single-process run) is shard 0 of 1.
	Shard     int
	NumShards int
	// TotalJobs is the whole grid's size, for merge completeness checks.
	TotalJobs    int
	Instructions int64
	Warmup       int64
	Seed         uint64
	// Contexts is the grid's maximum hardware-context count (1 for the
	// single-threaded experiments).
	Contexts   int
	Benchmarks []string `json:",omitempty"`
	// Results maps job key -> result for this shard's grid positions.
	Results map[string]*RecordedResult
	// CkptStats records this shard's checkpoint-store counters (hits,
	// misses, fallbacks, ...) when a store was in use. Informational:
	// it is excluded from the merge header checks and dropped by
	// MergeShards, so merged files stay byte-identical to store-less
	// single-process runs.
	CkptStats map[string]int64 `json:",omitempty"`
}

// Prefix-sharing counters are deliberately NOT recorded in shard files:
// a sweep's sharing outcomes depend on how the grid was partitioned
// (shards can split a family), so embedding them would make otherwise
// bit-identical shard sets differ. Shard runs report sharing on the
// process's summary line instead (iqbench's [prefix: ...]), and the CI
// prefix-share job relies on shard files staying byte-identical with
// and without -no-prefix-share. Pre-screening counters (points
// screened, frontier size, audit error) stay out for the same reason:
// a pre-screened sweep's shard file records only the simulated points,
// exactly as a cold sweep of the same selection would, and the
// screening outcome goes to the summary line (iqbench's
// [prescreen: ...]) and the perf baseline's prescreen_* fields.

// RunShard simulates shard `shard` of `numShards` of the named
// experiment's grid under o. Shard 0 of 1 is exactly the full grid.
func RunShard(o Options, experiment string, shard, numShards int) (*ShardFile, error) {
	if numShards < 1 || shard < 0 || shard >= numShards {
		return nil, fmt.Errorf("experiments: shard %d/%d out of range", shard, numShards)
	}
	jobs, err := experimentJobs(experiment, o)
	if err != nil {
		return nil, err
	}
	var mine []job
	for i := shard; i < len(jobs); i += numShards {
		mine = append(mine, jobs[i])
	}
	res, err := o.runAll(mine)
	if err != nil {
		return nil, err
	}
	sf := &ShardFile{
		Schema:       ShardSchema,
		Experiment:   experiment,
		Shard:        shard,
		NumShards:    numShards,
		TotalJobs:    len(jobs),
		Instructions: o.Instructions,
		Warmup:       o.Warmup,
		Seed:         o.Seed,
		Contexts:     gridContexts(jobs),
		Benchmarks:   o.Benchmarks,
		Results:      make(map[string]*RecordedResult, len(mine)),
	}
	if o.CkptStats != nil {
		sf.CkptStats = o.CkptStats.Values()
	}
	for key, r := range res {
		sf.Results[key] = &RecordedResult{
			Workload:     r.Workload,
			QueueName:    r.QueueName,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC,
			Stats:        r.Stats.Values(),
		}
	}
	return sf, nil
}

// header returns the fields every shard of one sweep must agree on.
func (sf *ShardFile) header() string {
	return fmt.Sprintf("%s n=%d warm=%d seed=%d ctx=%d shards=%d jobs=%d benches=%v",
		sf.Experiment, sf.Instructions, sf.Warmup, sf.Seed, sf.Contexts, sf.NumShards, sf.TotalJobs, sf.Benchmarks)
}

// Options reconstructs the run options a shard file was produced under
// (scale and workload-set fields only).
func (sf *ShardFile) Options() Options {
	return Options{
		Instructions: sf.Instructions,
		Warmup:       sf.Warmup,
		Seed:         sf.Seed,
		Benchmarks:   sf.Benchmarks,
	}
}

// SimResults rebuilds the sim.Result map the From assemblers consume.
func (sf *ShardFile) SimResults() map[string]*sim.Result {
	out := make(map[string]*sim.Result, len(sf.Results))
	for key, r := range sf.Results {
		out[key] = &sim.Result{
			Workload:     r.Workload,
			QueueName:    r.QueueName,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC,
			Stats:        stats.SetFromValues(r.Stats),
		}
	}
	return out
}

// MergeShards recombines one complete set of shard files into the file a
// single-process run would have written (shard 0 of 1): same experiment,
// same scale, every shard present exactly once, every grid point covered
// exactly once.
func MergeShards(files []*ShardFile) (*ShardFile, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("experiments: merge of zero shard files")
	}
	first := files[0]
	if first.Schema != ShardSchema {
		return nil, fmt.Errorf("experiments: shard schema %d, this build reads %d", first.Schema, ShardSchema)
	}
	if len(files) != first.NumShards {
		return nil, fmt.Errorf("experiments: %d shard files for a %d-shard sweep", len(files), first.NumShards)
	}
	seen := make(map[int]bool, len(files))
	merged := &ShardFile{
		Schema:       ShardSchema,
		Experiment:   first.Experiment,
		Shard:        0,
		NumShards:    1,
		TotalJobs:    first.TotalJobs,
		Instructions: first.Instructions,
		Warmup:       first.Warmup,
		Seed:         first.Seed,
		Contexts:     first.Contexts,
		Benchmarks:   first.Benchmarks,
		Results:      make(map[string]*RecordedResult, first.TotalJobs),
	}
	for _, sf := range files {
		if sf.Schema != ShardSchema {
			return nil, fmt.Errorf("experiments: shard schema %d, this build reads %d", sf.Schema, ShardSchema)
		}
		if sf.Shard < 0 || sf.Shard >= sf.NumShards {
			return nil, fmt.Errorf("experiments: shard index %d out of range for a %d-shard sweep", sf.Shard, sf.NumShards)
		}
		if sf.header() != first.header() {
			return nil, fmt.Errorf("experiments: shard %d header mismatch:\n  %s\n  %s", sf.Shard, sf.header(), first.header())
		}
		if seen[sf.Shard] {
			return nil, fmt.Errorf("experiments: shard %d supplied twice", sf.Shard)
		}
		seen[sf.Shard] = true
		for key, r := range sf.Results {
			if merged.Results[key] != nil {
				return nil, fmt.Errorf("experiments: grid point %s in more than one shard", key)
			}
			merged.Results[key] = r
		}
	}
	if len(merged.Results) != merged.TotalJobs {
		return nil, fmt.Errorf("experiments: merged %d results, grid has %d", len(merged.Results), merged.TotalJobs)
	}
	return merged, nil
}
