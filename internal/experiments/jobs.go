package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Grid-plan and job-subset entry points for the sweep coordinator
// (internal/coord): the coordinator enumerates an experiment's grid
// once, hands out job keys under leases, and workers simulate exactly
// the named subset, returning a fragment ShardFile the coordinator
// accumulates into the file a single-process RunShard(0,1) run would
// have written.

// JobSpec describes one grid point for scheduling purposes: its stable
// key and the "+"-joined context set it simulates (the workload string
// is what a cost model prices).
type JobSpec struct {
	// Key is the grid point's unique key, stable across processes.
	Key string
	// Workload is the ordered context set, elements joined with "+".
	Workload string
}

// GridPlan enumerates the named experiment's grid under o and returns
// the empty shard-file skeleton a single-process RunShard(0,1) run
// would produce — every header field set, Results empty — plus the
// job list in key order. The skeleton is what a coordinator validates
// incoming fragments against and accumulates completed results into;
// once full, its serialized form is byte-identical to the
// single-process run's.
func GridPlan(o Options, experiment string) (*ShardFile, []JobSpec, error) {
	if err := o.validateBenchmarks(); err != nil {
		return nil, nil, err
	}
	jobs, err := experimentJobs(experiment, o)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = JobSpec{Key: j.key, Workload: j.wl}
	}
	sf := &ShardFile{
		Schema:       ShardSchema,
		Experiment:   experiment,
		Shard:        0,
		NumShards:    1,
		TotalJobs:    len(jobs),
		Instructions: o.Instructions,
		Warmup:       o.Warmup,
		Seed:         o.Seed,
		Contexts:     gridContexts(jobs),
		Benchmarks:   o.Benchmarks,
		Results:      make(map[string]*RecordedResult, len(jobs)),
	}
	return sf, specs, nil
}

// RunJobs simulates exactly the named grid points of the experiment
// and returns them as a fragment: a ShardFile with the single-process
// header (shard 0 of 1, TotalJobs the whole grid) whose Results hold
// only the requested keys. Fragments from disjoint key sets accumulate
// into the full single-process file. Unknown keys are rejected before
// any simulation is spent.
func RunJobs(o Options, experiment string, keys []string) (*ShardFile, error) {
	sf, _, err := GridPlan(o, experiment)
	if err != nil {
		return nil, err
	}
	jobs, err := experimentJobs(experiment, o)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]job, len(jobs))
	for _, j := range jobs {
		byKey[j.key] = j
	}
	mine := make([]job, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		j, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("experiments: job %q is not in %s's grid", k, experiment)
		}
		if seen[k] {
			return nil, fmt.Errorf("experiments: job %q requested twice", k)
		}
		seen[k] = true
		mine = append(mine, j)
	}
	res, err := o.runAll(mine)
	if err != nil {
		return nil, err
	}
	if o.CkptStats != nil {
		sf.CkptStats = o.CkptStats.Values()
	}
	for key, r := range res {
		sf.Results[key] = &RecordedResult{
			Workload:     r.Workload,
			QueueName:    r.QueueName,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC,
			Stats:        r.Stats.Values(),
		}
	}
	return sf, nil
}

// Header returns the canonical header string every shard or fragment
// of one sweep must agree on (experiment, scale, seed, context shape,
// partition, grid size, workload set). Exported for the coordinator's
// fragment validation; MergeShards uses the same string internally.
func (sf *ShardFile) Header() string { return sf.header() }

// MarshalPretty serialises a shard file exactly as `iqbench -shard`
// and `-merge` write it: indented JSON plus a trailing newline. The
// encoding is deterministic (Go sorts map keys), so identical result
// sets produce identical bytes — the property the coordinator's
// cmp-vs-single-process contract rests on.
func (sf *ShardFile) MarshalPretty() ([]byte, error) {
	b, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ContextCount returns the number of hardware contexts a "+"-joined
// workload string names.
func ContextCount(workload string) int {
	return strings.Count(workload, "+") + 1
}
