package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The SMT scenario matrix: co-scheduled workload sets contending for one
// shared instruction queue — the evaluation the paper's §7 sketches but
// never ran. Each grid point is a multi-context machine (checkpointed
// per context set, forked per queue design) running a pinned pair of
// workload characteristics at 2 and 4 hardware contexts.

// SMTPairs are the default co-scheduled context sets, chosen to maximise
// contention along different axes: a cache-streaming FP workload against
// an integer pointer-chaser, and a high-ILP stencil against a branchy
// high-mispredict workload.
var SMTPairs = []string{"swim+twolf", "mgrid+gcc"}

// SMTContextCounts are the hardware-context counts of the grid. A
// four-context point co-schedules the pair twice (a+b+a+b), with
// distinct per-context seeds.
var SMTContextCounts = []int{2, 4}

// SMTDesigns are the queue designs of the grid, one pinned machine per
// design (shared Table 1 geometry, so all designs fork from one
// checkpoint per context set).
var SMTDesigns = []string{"ideal", "segmented", "prescheduled", "fifos", "distance"}

func smtDesignConfig(name string) sim.Config {
	switch name {
	case "ideal":
		return sim.DefaultConfig(sim.QueueIdeal, 256)
	case "segmented":
		return sim.SegmentedConfig(256, 64, true, true)
	case "prescheduled":
		return sim.PrescheduledConfig(320)
	case "fifos":
		return sim.FIFOConfig(256)
	case "distance":
		return sim.DistanceConfig(320)
	}
	panic("experiments: unknown SMT design " + name)
}

// smtSets returns the base context sets of the grid: the -benchmarks
// entries when given (each a workload or "+"-joined set), the pinned
// pairs otherwise.
func (o Options) smtSets() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return SMTPairs
}

// smtSet builds the n-context set from a base set by cycling its
// elements: swim+twolf at 4 contexts is swim+twolf+swim+twolf.
func smtSet(base string, n int) string {
	parts := strings.Split(base, "+")
	out := make([]string, n)
	for i := range out {
		out[i] = parts[i%len(parts)]
	}
	return strings.Join(out, "+")
}

// smtJobs enumerates the SMT grid: base sets × context counts × designs.
func smtJobs(o Options) []job {
	var jobs []job
	for _, base := range o.smtSets() {
		for _, nctx := range SMTContextCounts {
			wl := smtSet(base, nctx)
			for _, d := range SMTDesigns {
				jobs = append(jobs, job{
					key: fmt.Sprintf("%s/%dctx/%s", d, nctx, base),
					cfg: smtDesignConfig(d),
					wl:  wl,
				})
			}
		}
	}
	return jobs
}

// SMTResult holds the SMT matrix: per design, per context count, per
// base set, aggregate IPC and the per-context committed-instruction
// split (fairness: a design that starves one context shows it here).
type SMTResult struct {
	Sets     []string
	Contexts []int
	Designs  []string
	// IPC[design][nctx][set] is the machine's aggregate IPC.
	IPC map[string]map[int]map[string]float64
	// Committed[design][nctx][set][i] is context i's retired instructions.
	Committed map[string]map[int]map[string][]int64
}

// SMT runs the SMT scenario matrix.
func SMT(o Options) (*SMTResult, error) {
	res, err := o.runAll(smtJobs(o))
	if err != nil {
		return nil, err
	}
	return SMTFrom(o, res)
}

// SMTFrom assembles the SMT matrix from already-computed results (a
// local batch or a merged sharded sweep).
func SMTFrom(o Options, res map[string]*sim.Result) (*SMTResult, error) {
	if err := requireResults(res, smtJobs(o)); err != nil {
		return nil, err
	}
	out := &SMTResult{
		Sets:      o.smtSets(),
		Contexts:  SMTContextCounts,
		Designs:   SMTDesigns,
		IPC:       make(map[string]map[int]map[string]float64),
		Committed: make(map[string]map[int]map[string][]int64),
	}
	for _, d := range SMTDesigns {
		out.IPC[d] = make(map[int]map[string]float64)
		out.Committed[d] = make(map[int]map[string][]int64)
		for _, nctx := range SMTContextCounts {
			out.IPC[d][nctx] = make(map[string]float64)
			out.Committed[d][nctx] = make(map[string][]int64)
			for _, base := range out.Sets {
				r := res[fmt.Sprintf("%s/%dctx/%s", d, nctx, base)]
				out.IPC[d][nctx][base] = r.IPC
				per := make([]int64, nctx)
				for i := range per {
					per[i] = int64(r.Stats.MustGet(fmt.Sprintf("thread%d_committed", i)))
				}
				out.Committed[d][nctx][base] = per
			}
		}
	}
	return out, nil
}

// Table renders the matrix: one row per design × context count, one
// column per base set showing aggregate IPC and the per-context split.
func (r *SMTResult) Table() *stats.Table {
	t := stats.NewTable("design", r.Sets...)
	for _, d := range r.Designs {
		for _, nctx := range r.Contexts {
			cells := make(map[string]string, len(r.Sets))
			for _, base := range r.Sets {
				var parts []string
				for _, c := range r.Committed[d][nctx][base] {
					parts = append(parts, fmt.Sprintf("%d", c))
				}
				cells[base] = fmt.Sprintf("%.3f (%s)", r.IPC[d][nctx][base], strings.Join(parts, "/"))
			}
			t.AddRow(fmt.Sprintf("%s/%dctx", d, nctx), cells)
		}
	}
	return t
}
