package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestFamilies: grid jobs group into the expected sweep families — the
// ideal sizes collapse into one family, segmented chain budgets into one
// family per geometry/variant, and geometry-baked designs stay apart.
func TestFamilies(t *testing.T) {
	o := Options{Instructions: 1, Warmup: 1, Seed: 1, Benchmarks: []string{"swim"}}
	cks := &ckCache{o: o, m: make(map[ckKey]*ckEntry)}

	fig3 := cks.families(fig3Jobs(o))
	// 19 jobs: ideal x5 sizes (one family), comb-128+comb-64 per size
	// (five families of two), presched x4 slots (four singletons).
	sizes := map[int]int{}
	for _, f := range fig3 {
		sizes[len(f.jobs)]++
	}
	if sizes[5] != 1 || sizes[2] != 5 || sizes[1] != 4 || len(fig3) != 10 {
		t.Errorf("fig3 family sizes = %v (families=%d)", sizes, len(fig3))
	}

	fig2 := cks.families(fig2Jobs(o))
	// 13 jobs: the ideal-512 singleton plus one family of three chain
	// budgets per predictor variant.
	sizes = map[int]int{}
	for _, f := range fig2 {
		sizes[len(f.jobs)]++
	}
	if sizes[1] != 1 || sizes[3] != 4 || len(fig2) != 5 {
		t.Errorf("fig2 family sizes = %v (families=%d)", sizes, len(fig2))
	}

	// Different workloads never share a family even with equal configs.
	mixed := cks.families([]job{
		{key: "a", cfg: sim.DefaultConfig(sim.QueueIdeal, 64), wl: "swim"},
		{key: "b", cfg: sim.DefaultConfig(sim.QueueIdeal, 64), wl: "twolf"},
	})
	if len(mixed) != 2 {
		t.Errorf("cross-workload jobs grouped into %d families, want 2", len(mixed))
	}
}

// TestPrefixShareBitIdentical: a real grid run with prefix sharing on
// must produce exactly the results of the same grid with
// -no-prefix-share, for every job key.
func TestPrefixShareBitIdentical(t *testing.T) {
	o := Options{Instructions: 12_000, Warmup: 40_000, Seed: 1, Benchmarks: []string{"swim"}}
	o.PrefixStats = &sim.PrefixStats{}
	jobs := fig2Jobs(o)

	shared, err := o.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.NoPrefixShare = true
	o2.PrefixStats = nil
	cold, err := o2.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !reflect.DeepEqual(shared[j.key], cold[j.key]) {
			t.Errorf("%s: shared result differs from cold\nshared: %+v\ncold:   %+v",
				j.key, shared[j.key].Stats, cold[j.key].Stats)
		}
	}
	ps := o.PrefixStats
	if ps.Families.Load() != 4 {
		t.Errorf("expected 4 ladder-carrying families, got %d", ps.Families.Load())
	}
	if got := ps.Shared.Load() + ps.Fallbacks.Load(); got != 8 {
		t.Errorf("sibling outcomes %d, want 8 (two per variant family)", got)
	}
	t.Logf("prefix: %s", ps.String())
}
