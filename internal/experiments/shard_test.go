package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func shardTestOptions() Options {
	return Options{Instructions: 2000, Warmup: 10_000, Seed: 1, Benchmarks: []string{"swim", "gcc"}}
}

// TestShardedSweepMatchesSingleProcess is the sharding contract: running
// a grid as two shards and merging must reproduce the single-process
// result set bit for bit — including the serialized JSON, so shards can
// be compared with cmp(1) in CI.
func TestShardedSweepMatchesSingleProcess(t *testing.T) {
	o := shardTestOptions()
	full, err := RunShard(o, "table2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := RunShard(o, "table2", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunShard(o, "table2", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0.Results)+len(s1.Results) != len(full.Results) {
		t.Fatalf("shards hold %d+%d results, full run %d", len(s0.Results), len(s1.Results), len(full.Results))
	}
	// Merge order must not matter.
	merged, err := MergeShards([]*ShardFile{s1, s0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("merged shard set differs from single-process run")
	}
	mj, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, fj) {
		t.Fatal("merged JSON is not byte-identical to the single-process JSON")
	}

	// The assembled table must also match one computed the ordinary way.
	direct, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	fromShards, err := Table2From(merged.Options(), merged.SimResults())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromShards, direct) {
		t.Fatal("Table2 assembled from shards differs from direct Table2")
	}
}

// TestShardPartitionCoversEveryExperiment: for every named grid, the
// shard partition is a disjoint cover, independent of shard count.
func TestShardPartitionCoversEveryExperiment(t *testing.T) {
	o := Options{Instructions: 1, Warmup: 1, Seed: 1, Benchmarks: []string{"swim"}}
	for _, exp := range Experiments {
		jobs, err := experimentJobs(exp, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 3, 7} {
			seen := make(map[string]int)
			for shard := 0; shard < n; shard++ {
				for i := shard; i < len(jobs); i += n {
					seen[jobs[i].key]++
				}
			}
			if len(seen) != len(jobs) {
				t.Fatalf("%s/%d shards: %d keys covered, grid has %d", exp, n, len(seen), len(jobs))
			}
			for key, c := range seen {
				if c != 1 {
					t.Fatalf("%s/%d shards: key %s assigned %d times", exp, n, key, c)
				}
			}
		}
	}
	if _, err := experimentJobs("nope", o); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestMergeShardsRejectsBadSets: incomplete, duplicated or mismatched
// shard sets must fail loudly rather than merge into a wrong result.
// Table-driven over every header and partition invariant MergeShards
// enforces; each case corrupts a fresh copy of a valid two-shard set.
func TestMergeShardsRejectsBadSets(t *testing.T) {
	o := shardTestOptions()
	s0, err := RunShard(o, "table2", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunShard(o, "table2", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	oo := o
	oo.Instructions++
	x1, err := RunShard(oo, "table2", 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// clone deep-copies a shard file so a case can corrupt it freely.
	clone := func(sf *ShardFile) *ShardFile {
		c := *sf
		c.Results = make(map[string]*RecordedResult, len(sf.Results))
		for k, r := range sf.Results {
			rr := *r
			c.Results[k] = &rr
		}
		return &c
	}
	anyKey := func(sf *ShardFile) string {
		for k := range sf.Results {
			return k
		}
		t.Fatal("shard holds no results")
		return ""
	}

	cases := []struct {
		name  string
		files func() []*ShardFile
		want  string // substring the error must contain
	}{
		{"empty set", func() []*ShardFile { return nil }, "zero shard files"},
		{"incomplete set", func() []*ShardFile { return []*ShardFile{s0} }, "1 shard files"},
		{"duplicate shard index", func() []*ShardFile { return []*ShardFile{s0, s0} }, "supplied twice"},
		{"mixed scale", func() []*ShardFile { return []*ShardFile{s0, x1} }, "header mismatch"},
		{"wrong schema", func() []*ShardFile {
			b := clone(s0)
			b.Schema = ShardSchema + 1
			return []*ShardFile{b, s1}
		}, "schema"},
		{"mismatched experiment", func() []*ShardFile {
			b := clone(s1)
			b.Experiment = "fig2"
			return []*ShardFile{s0, b}
		}, "header mismatch"},
		{"mismatched contexts", func() []*ShardFile {
			b := clone(s1)
			b.Contexts = 4 // an SMT shard can never merge with a single-threaded one
			return []*ShardFile{s0, b}
		}, "header mismatch"},
		{"mismatched seed", func() []*ShardFile {
			b := clone(s1)
			b.Seed++
			return []*ShardFile{s0, b}
		}, "header mismatch"},
		{"mismatched benchmarks", func() []*ShardFile {
			b := clone(s1)
			b.Benchmarks = []string{"swim"}
			return []*ShardFile{s0, b}
		}, "header mismatch"},
		{"shard index beyond NumShards", func() []*ShardFile {
			b := clone(s1)
			b.Shard = 5 // claims shard 5 of a 2-shard sweep
			return []*ShardFile{s0, b}
		}, "out of range"},
		{"negative shard index", func() []*ShardFile {
			b := clone(s1)
			b.Shard = -1
			return []*ShardFile{s0, b}
		}, "out of range"},
		{"overlapping grid point", func() []*ShardFile {
			b := clone(s1)
			k := anyKey(s0)
			b.Results[k] = s0.Results[k] // the same point in both shards
			return []*ShardFile{s0, b}
		}, "more than one shard"},
		{"missing grid point", func() []*ShardFile {
			b := clone(s1)
			delete(b.Results, anyKey(b))
			return []*ShardFile{s0, b}
		}, "grid has"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := MergeShards(c.files())
			if err == nil {
				t.Fatalf("%s accepted", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestCheckpointDirSkipsWarmup: with a checkpoint directory, the first
// batch pays every warmup and saves it; a second batch over the same
// options loads every checkpoint (all hits) and produces identical
// results.
func TestCheckpointDirSkipsWarmup(t *testing.T) {
	o := shardTestOptions()
	plain, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}

	o.CheckpointDir = t.TempDir()
	o.CkptStats = &CkptStats{}
	cold, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o.CkptStats.Hits.Load(), o.CkptStats.Misses.Load(); h != 0 || m != 2 {
		t.Fatalf("cold batch: hits=%d misses=%d, want 0/2 (one per workload)", h, m)
	}

	o.CkptStats = &CkptStats{}
	warm, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := o.CkptStats.Hits.Load(), o.CkptStats.Misses.Load(); h != 2 || m != 0 {
		t.Fatalf("warm batch: hits=%d misses=%d, want 2/0", h, m)
	}

	if !reflect.DeepEqual(cold, plain) {
		t.Fatal("store-backed cold batch differs from in-memory batch")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("store-hit batch differs from the batch that built the store")
	}
}
