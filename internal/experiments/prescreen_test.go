package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// TestPrescreenGridMega pins the mega preset's contract: at least 10^5
// points across the eight workloads, unique keys, and every
// configuration valid.
func TestPrescreenGridMega(t *testing.T) {
	pts, err := prescreenGrid("mega")
	if err != nil {
		t.Fatal(err)
	}
	total := len(pts) * len(trace.Names())
	if total < 100_000 {
		t.Errorf("mega grid spans %d points over %d workloads, want >= 100000", total, len(trace.Names()))
	}
	seen := make(map[string]bool, len(pts))
	for _, p := range pts {
		if seen[p.key] {
			t.Fatalf("duplicate grid key %s", p.key)
		}
		seen[p.key] = true
		if err := p.cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", p.key, err)
		}
	}

	if _, err := prescreenGrid("nope"); err == nil {
		t.Error("unknown grid name accepted")
	}
}

// TestPrescreenSelectionBudget is the screening contract's cheap half:
// on the mega grid, the predicted frontier plus the default audit
// sample must select at most 5% of the points for simulation, for every
// workload. (The expensive half — estimator accuracy on what was
// selected — is pinned by internal/model's validation tests and
// measured on every sweep via the audit sample.)
func TestPrescreenSelectionBudget(t *testing.T) {
	pts, err := prescreenGrid("mega")
	if err != nil {
		t.Fatal(err)
	}
	po := DefaultPrescreenOptions()
	profiles := newProfileCache(1)
	for _, wl := range trace.Names() {
		prof, err := profiles.get(wl)
		if err != nil {
			t.Fatal(err)
		}
		mpts := make([]model.Point, len(pts))
		for i, p := range pts {
			e := model.For(prof, p.cfg)
			mpts[i] = model.Point{Key: p.key, Entries: e.Entries, IPC: e.IPC}
		}
		front := model.Frontier(mpts, po.Slack)
		selected := make(map[int]bool, len(front)+po.Audit)
		for _, i := range front {
			selected[i] = true
		}
		for _, i := range model.Sample(auditSeed(1, wl), len(pts), po.Audit) {
			selected[i] = true
		}
		frac := float64(len(selected)) / float64(len(pts))
		t.Logf("%s: frontier %d + audit %d -> %d/%d simulated (%.2f%%)",
			wl, len(front), po.Audit, len(selected), len(pts), 100*frac)
		if frac > 0.05 {
			t.Errorf("%s: screening selects %.2f%% of the mega grid, contract is <= 5%%", wl, 100*frac)
		}
	}
}

// TestProfileCacheIdentity pins the cache contract: a cached profile is
// identical to a freshly characterized one — the cache must change
// nothing but the cost. (Characterize drains its stream, so the cache
// opens a fresh source per workload; this test is the proof that reuse
// and rebuild agree.)
func TestProfileCacheIdentity(t *testing.T) {
	c := newProfileCache(1)
	first, err := c.get("swim")
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.get("swim")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached profile differs from first retrieval")
	}
	s, err := trace.New("swim", 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := trace.Characterize(s, profileInsts)
	if !reflect.DeepEqual(first, fresh) {
		t.Error("cached profile differs from a fresh Characterize")
	}

	if _, err := c.get("no-such-workload"); err == nil {
		t.Error("unknown workload got a profile")
	}
}

// TestPrescreenEndToEnd runs a real (tiny) pre-screened sweep on the ci
// grid and checks the bookkeeping: counts add up, every simulated point
// carries a simulated IPC, the audit metrics are populated, and the
// shard file records exactly the simulated set.
func TestPrescreenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the ci-grid selection")
	}
	o := Options{Instructions: 2000, Warmup: 10_000, Seed: 1, Benchmarks: []string{"gcc"}}
	r, sf, err := Prescreen(o, PrescreenOptions{Grid: "ci", Audit: 8})
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := prescreenGrid("ci")
	if len(r.Workloads) != 1 || r.Workloads[0].Workload != "gcc" {
		t.Fatalf("workloads = %+v", r.Workloads)
	}
	w := r.Workloads[0]
	if w.Screened != len(pts) || r.Screened != len(pts) {
		t.Errorf("screened %d/%d, grid has %d", w.Screened, r.Screened, len(pts))
	}
	if w.Simulated != len(w.Points) || w.Simulated == 0 {
		t.Errorf("simulated %d, points %d", w.Simulated, len(w.Points))
	}
	if w.Simulated >= w.Screened/2 {
		t.Errorf("screening simulated %d of %d — not much of a screen", w.Simulated, w.Screened)
	}
	if w.Audit != 8 {
		t.Errorf("audit = %d, want 8", w.Audit)
	}
	nAudit, nFrontier := 0, 0
	for _, p := range w.Points {
		if p.Sim <= 0 || p.Est <= 0 {
			t.Errorf("%s: est %v sim %v", p.Key, p.Est, p.Sim)
		}
		if !p.Audit && !p.Frontier {
			t.Errorf("%s: simulated but neither frontier nor audit", p.Key)
		}
		if p.Audit {
			nAudit++
		}
		if p.Frontier {
			nFrontier++
		}
	}
	if nAudit != w.Audit || nFrontier != w.Frontier {
		t.Errorf("flag counts %d/%d, want %d/%d", nFrontier, nAudit, w.Frontier, w.Audit)
	}
	if w.BestKey == "" || w.BestIPC <= 0 {
		t.Errorf("best point missing: %q %v", w.BestKey, w.BestIPC)
	}
	if r.MAPE <= 0 {
		t.Errorf("pooled MAPE = %v", r.MAPE)
	}
	if !strings.Contains(r.Summary(), "prescreen:") {
		t.Errorf("summary %q", r.Summary())
	}
	if r.Table() == nil {
		t.Error("nil table")
	}

	if sf.Experiment != "prescreen-ci" || sf.TotalJobs != w.Simulated || len(sf.Results) != w.Simulated {
		t.Errorf("shard file %s: %d jobs, %d results, want %d",
			sf.Experiment, sf.TotalJobs, len(sf.Results), w.Simulated)
	}
	for _, p := range w.Points {
		rr := sf.Results[p.Key+"/gcc"]
		if rr == nil {
			t.Fatalf("shard file missing %s", p.Key)
		}
		if rr.IPC != p.Sim {
			t.Errorf("%s: shard IPC %v, result %v", p.Key, rr.IPC, p.Sim)
		}
	}
}

// TestPrescreenRejectsSMTSets pins that "+"-joined context sets are
// refused up front: screening profiles single workloads.
func TestPrescreenRejectsSMTSets(t *testing.T) {
	o := DefaultOptions()
	o.Benchmarks = []string{"swim+twolf"}
	if _, _, err := Prescreen(o, PrescreenOptions{Grid: "ci"}); err == nil {
		t.Error("SMT context set accepted")
	}
}
