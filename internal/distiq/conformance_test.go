package distiq_test

import (
	"testing"

	"repro/internal/distiq"
	"repro/internal/iq"
	"repro/internal/iq/iqtest"
)

func TestConformanceFuzz(t *testing.T) {
	for name, cfg := range map[string]distiq.Config{
		"default-320": distiq.DefaultConfig(320),
		"tiny":        {Lines: 4, LineWidth: 3, WaitBuffer: 4, PredictedLoadLatency: 4},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			iqtest.Fuzz(t, func() iq.Queue { return distiq.MustNew(cfg) }, iqtest.DefaultOptions())
		})
	}
}

func TestCloneFuzz(t *testing.T) {
	iqtest.CloneFuzz(t, func() iq.Queue { return distiq.MustNew(distiq.DefaultConfig(320)) }, iqtest.DefaultOptions())
}
