// Package distiq implements the "distance" instruction queue of Canal &
// González — the other quasi-static dependence-based design in the
// paper's related work (§2), dual to Michaud & Seznec's prescheduling.
//
// Where prescheduling places the fully associative buffer *after* the
// scheduling array (instructions drain into it and may camp there when a
// latency was mispredicted), the distance scheme places it *before*: an
// instruction whose ready time cannot be predicted at dispatch — one
// with an operand on an outstanding load — is held in a small wait
// buffer until the ready time becomes known, and only then inserted into
// the scheduling array. Instructions are thus guaranteed ready when they
// reach the array's oldest row, and issue directly from it.
//
// The structural cost is the dual of prescheduling's: dispatch stalls
// when the wait buffer fills behind a long miss, serializing everything
// behind unpredictable-latency instructions — again the inflexibility the
// segmented design's chains avoid.
package distiq

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

// Config describes a distance-scheme IQ.
type Config struct {
	// Lines is the number of scheduling-array rows.
	Lines int
	// LineWidth is the instruction slots per row.
	LineWidth int
	// WaitBuffer is the size of the fully associative buffer holding
	// instructions with unpredictable ready times.
	WaitBuffer int
	// PredictedLoadLatency is the assumed load-to-use latency.
	PredictedLoadLatency int
	// Threads replicates the availability table per hardware context.
	Threads int
	// StatsEvery samples the per-cycle wait-buffer occupancy statistic
	// every n cycles (0 or 1: every cycle). Scheduling is unaffected.
	StatsEvery int
}

// DefaultConfig mirrors the prescheduling geometry for a given total
// capacity: a 32-entry wait buffer plus 12-wide rows.
func DefaultConfig(totalSlots int) Config {
	lines := (totalSlots - 32) / 12
	if lines < 1 {
		lines = 1
	}
	return Config{Lines: lines, LineWidth: 12, WaitBuffer: 32, PredictedLoadLatency: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lines < 1 || c.LineWidth < 1 || c.WaitBuffer < 1 {
		return fmt.Errorf("distiq: non-positive geometry %+v", c)
	}
	if c.PredictedLoadLatency < 1 {
		return fmt.Errorf("distiq: predicted load latency %d < 1", c.PredictedLoadLatency)
	}
	return nil
}

type availEntry struct {
	valid    bool
	producer *uop.UOp
	at       int64
	// unknown marks a value whose arrival time is unpredictable (the
	// producer is, or depends on, an outstanding load).
	unknown bool
}

// DistIQ implements iq.Queue.
type DistIQ struct {
	cfg   Config
	lines [][]*uop.UOp
	head  int
	base  int64
	wait  []*uop.UOp // fully associative wait buffer (program order)
	total int

	outScratch []*uop.UOp // backs Issue's result; reused every cycle

	avail []availEntry

	// Event-driven wait-buffer release. Each wait entry holds a ticket
	// (its handle in the waiter chains and the recheck bitmap). An entry
	// is either parked on the producer of its first unpredictable operand
	// — nothing can make it releasable before that producer's completion
	// time resolves, since table rows only degrade (a younger dispatch can
	// overwrite a row, never restore one) — or flagged in recheckW for a
	// maxReady recomputation at the next BeginCycle. Entries whose ready
	// time is known but whose target rows are full keep their recheck bit
	// and retry every cycle, exactly like the old full rescan.
	waitH      []int32    // per wait entry: its ticket
	freeT      []int32    // ticket freelist (LIFO)
	recheckW   []uint64   // by ticket: re-evaluate at next BeginCycle
	wt         iq.Waiters // by ticket: parked on a producer
	unresolved []*uop.UOp // issued producers whose Complete is still pending
	wakeBuf    []int32    // scratch for WakeAll

	stDispatched stats.Counter
	stIssued     stats.Counter
	stStallFull  stats.Counter
	stWaited     stats.Counter
	stWaitOcc    stats.Mean

	dem iq.Watermark // occupancy high-watermark, for prefix sharing
}

// New builds a distance-scheme IQ.
func New(cfg Config) (*DistIQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	q := &DistIQ{
		cfg:      cfg,
		lines:    make([][]*uop.UOp, cfg.Lines),
		avail:    make([]availEntry, threads*isa.NumRegs),
		freeT:    make([]int32, cfg.WaitBuffer),
		recheckW: bitvec.New(cfg.WaitBuffer),
	}
	for i := range q.freeT {
		q.freeT[i] = int32(cfg.WaitBuffer - 1 - i)
	}
	q.wt.Grow(cfg.WaitBuffer)
	return q, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *DistIQ {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Name implements iq.Queue.
func (q *DistIQ) Name() string { return "distance" }

// Capacity implements iq.Queue.
func (q *DistIQ) Capacity() int { return q.cfg.WaitBuffer + q.cfg.Lines*q.cfg.LineWidth }

// Len implements iq.Queue.
func (q *DistIQ) Len() int { return q.total }

// ExtraDispatchStages implements iq.Queue: one extra cycle, like the
// other quasi-static designs (§5).
func (q *DistIQ) ExtraDispatchStages() int { return 1 }

func (q *DistIQ) availRow(thread, reg int) *availEntry {
	return &q.avail[thread*isa.NumRegs+reg]
}

// readiness classifies operand j of u at the given cycle: the predicted
// ready cycle, and whether it is (still) unpredictable.
func (q *DistIQ) readiness(u *uop.UOp, j int, cycle int64) (int64, bool) {
	src := u.Src(j)
	if src == isa.RegNone || src == isa.RegZero {
		return cycle, false
	}
	if p := u.Prod[j]; p != nil {
		if p.Complete != uop.NotYet {
			return p.Complete, false // resolved: exact
		}
	} else {
		return cycle, false
	}
	e := q.availRow(u.Thread, src)
	if e.valid && e.producer == u.Prod[j] {
		return e.at, e.unknown
	}
	// No table knowledge of an in-flight producer: unpredictable.
	return cycle, true
}

// wake flags every wait-buffer entry parked on p for re-evaluation at
// the next BeginCycle.
func (q *DistIQ) wake(p *uop.UOp) {
	q.wakeBuf = q.wt.WakeAll(p, q.wakeBuf[:0])
	for _, h := range q.wakeBuf {
		bitvec.Set(q.recheckW, int(h))
	}
}

// resolve drains issued producers whose completion times the pipeline has
// since stamped (the engine sets Complete right after Issue returns),
// waking their wait-buffer consumers.
func (q *DistIQ) resolve() {
	kept := q.unresolved[:0]
	for _, u := range q.unresolved {
		if u.Complete == uop.NotYet {
			kept = append(kept, u)
			continue
		}
		q.wake(u)
	}
	for i := len(kept); i < len(q.unresolved); i++ {
		q.unresolved[i] = nil
	}
	q.unresolved = kept
}

// parkOn parks ticket h on the producer of u's first unpredictable
// operand. maxReady returning unknown guarantees one exists (an operand
// is only unpredictable while its producer's completion is unresolved).
func (q *DistIQ) parkOn(h int32, u *uop.UOp, cycle int64) {
	for j := 0; j < 2; j++ {
		if u.IsStore() && j == 0 {
			continue
		}
		if _, uj := q.readiness(u, j, cycle); uj {
			q.wt.Park(h, u.Prod[j])
			return
		}
	}
	// Unreachable under the readiness invariants; keep the recheck bit so
	// the entry retries every cycle rather than stranding.
	bitvec.Set(q.recheckW, int(h))
}

// BeginCycle implements iq.Queue: release wait-buffer instructions whose
// ready times have become known, then drain the due row.
func (q *DistIQ) BeginCycle(cycle int64) {
	q.resolve()
	// Wait buffer → scheduling array, oldest first, as ready times
	// resolve. Entries parked in the waiter chains are provably still
	// unpredictable and skipped; flagged entries recompute.
	kept := q.wait[:0]
	keptH := q.waitH[:0]
	for i, u := range q.wait {
		h := q.waitH[i]
		if bitvec.Test(q.recheckW, int(h)) {
			r, unknown := q.maxReady(u, cycle)
			if !unknown && q.insertArray(u, r, cycle) {
				bitvec.Clear(q.recheckW, int(h))
				q.freeT = append(q.freeT, h)
				continue
			}
			if unknown {
				bitvec.Clear(q.recheckW, int(h))
				q.parkOn(h, u, cycle)
			}
			// Known but every row from the target onward is full: the bit
			// stays set and the insert retries next cycle.
		}
		kept = append(kept, u)
		keptH = append(keptH, h)
	}
	for i := len(kept); i < len(q.wait); i++ {
		q.wait[i] = nil
	}
	q.wait = kept
	q.waitH = keptH
	if every := int64(q.cfg.StatsEvery); every <= 1 || cycle%every == 0 {
		q.stWaitOcc.Observe(float64(len(q.wait)))
	}

	// Advance the array one row per cycle once due. Rows are issued from
	// directly; an undrained row (issue-width pressure) holds the array.
	if q.base <= cycle {
		if row := q.lines[q.head]; len(row) > 0 {
			ready := false
			for _, u := range row {
				if u.IssueReady(cycle) {
					ready = true
					break
				}
			}
			if !ready {
				// Every head-row instruction is a straggler (a latency
				// was optimistic, or row spill inverted producer and
				// consumer): reschedule them so the array can advance.
				q.relocateStragglers(cycle)
			}
		}
		if len(q.lines[q.head]) == 0 {
			q.lines[q.head] = nil
			q.head = (q.head + 1) % q.cfg.Lines
			q.base++
		}
	}
}

// Quiescent implements iq.Queue: every scheduling-array row is empty (no
// issue, no straggler relocation, no wait-buffer release target) and no
// wait-buffer entry is flagged for re-evaluation — every waiting
// instruction is parked on an unresolved producer, which resolves via
// events the engine bounds the skip window by. Issued producers whose
// completion is pending re-check keep the queue non-quiescent.
func (q *DistIQ) Quiescent(cycle int64) bool {
	for _, row := range q.lines {
		if len(row) > 0 {
			return false
		}
	}
	for _, w := range q.recheckW {
		if w != 0 {
			return false
		}
	}
	for _, u := range q.unresolved {
		if u.Complete != uop.NotYet {
			return false
		}
	}
	return true
}

// SkipCycles implements iq.Queue: replay BeginCycle's observable work on
// a frozen queue — the empty head row still retires (ring rotation, base
// advance) and the wait-buffer occupancy statistic still samples.
func (q *DistIQ) SkipCycles(from, to int64) {
	every := int64(q.cfg.StatsEvery)
	for x := from; x < to; x++ {
		if every <= 1 || x%every == 0 {
			q.stWaitOcc.Observe(float64(len(q.wait)))
		}
		if q.base <= x {
			q.lines[q.head] = nil
			q.head = (q.head + 1) % q.cfg.Lines
			q.base++
		}
	}
}

// relocateStragglers moves unready head-row instructions to later rows at
// their re-predicted ready offsets. When the array is completely full the
// straggler swaps places with the globally oldest array instruction —
// the one whose completion unblocks the machine — guaranteeing forward
// progress even under order inversion.
func (q *DistIQ) relocateStragglers(cycle int64) {
	row := q.lines[q.head]
	q.lines[q.head] = nil
	for _, u := range row {
		r, _ := q.maxReady(u, cycle)
		d := r - cycle
		if d < 1 {
			d = 1 // never back into the head row
		}
		idx := int(d)
		if idx >= q.cfg.Lines {
			idx = q.cfg.Lines - 1
		}
		placed := false
		for k := idx; k < q.cfg.Lines && !placed; k++ {
			slot := (q.head + k) % q.cfg.Lines
			if slot != q.head && len(q.lines[slot]) < q.cfg.LineWidth {
				q.lines[slot] = append(q.lines[slot], u)
				placed = true
			}
		}
		for k := idx - 1; k >= 1 && !placed; k-- {
			slot := (q.head + k) % q.cfg.Lines
			if len(q.lines[slot]) < q.cfg.LineWidth {
				q.lines[slot] = append(q.lines[slot], u)
				placed = true
			}
		}
		if !placed {
			// Swap with the globally oldest instruction outside the head
			// row.
			oldRow, oldIdx := -1, -1
			var oldest *uop.UOp
			for rr := 0; rr < q.cfg.Lines; rr++ {
				if rr == q.head {
					continue
				}
				for i, x := range q.lines[rr] {
					if oldest == nil || x.Seq < oldest.Seq {
						oldest, oldRow, oldIdx = x, rr, i
					}
				}
			}
			if oldest == nil || oldest.Seq > u.Seq {
				// u is itself the oldest (or alone): keep it in the head
				// row and wait for its operands.
				q.lines[q.head] = append(q.lines[q.head], u)
				continue
			}
			q.lines[oldRow] = append(q.lines[oldRow][:oldIdx], q.lines[oldRow][oldIdx+1:]...)
			q.lines[q.head] = append(q.lines[q.head], oldest)
			q.lines[oldRow] = append(q.lines[oldRow], u)
		}
	}
}

func (q *DistIQ) maxReady(u *uop.UOp, cycle int64) (int64, bool) {
	r := cycle
	unknown := false
	for j := 0; j < 2; j++ {
		if u.IsStore() && j == 0 {
			continue
		}
		rj, uj := q.readiness(u, j, cycle)
		if uj {
			unknown = true
		}
		if rj > r {
			r = rj
		}
	}
	return r, unknown
}

// insertArray places u into the row for predicted-ready cycle r,
// spilling to later rows; returns false when no row has space.
func (q *DistIQ) insertArray(u *uop.UOp, r, cycle int64) bool {
	d := r - cycle
	if d < 0 {
		d = 0
	}
	idx := int(d)
	if idx >= q.cfg.Lines {
		idx = q.cfg.Lines - 1
	}
	for k := idx; k < q.cfg.Lines; k++ {
		slot := (q.head + k) % q.cfg.Lines
		if len(q.lines[slot]) < q.cfg.LineWidth {
			q.lines[slot] = append(q.lines[slot], u)
			return true
		}
	}
	return false
}

// Issue implements iq.Queue: directly from the oldest due row (its
// instructions are ready by construction, up to resource conflicts and
// the conservatism of "unknown" classification). The returned slice is
// owned by the queue and valid until the next call.
func (q *DistIQ) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	if q.base > cycle {
		return nil
	}
	row := q.lines[q.head]
	out := q.outScratch[:0]
	kept := row[:0]
	for _, u := range row {
		if len(out) < max && u.DispatchCycle < cycle && u.IssueReady(cycle) && tryIssue(u) {
			u.IssueCycle = cycle
			out = append(out, u)
			if u.Inst.HasDest() {
				q.unresolved = append(q.unresolved, u)
			}
			continue
		}
		kept = append(kept, u)
	}
	for i := len(kept); i < len(row); i++ {
		row[i] = nil
	}
	q.lines[q.head] = kept
	q.total -= len(out)
	q.outScratch = out
	q.stIssued.Add(uint64(len(out)))
	return out
}

// Dispatch implements iq.Queue: predictable instructions go straight into
// the scheduling array; unpredictable ones wait in the buffer. Stalls
// when the needed structure is full.
func (q *DistIQ) Dispatch(cycle int64, u *uop.UOp) bool {
	r, unknown := q.maxReady(u, cycle)
	if unknown {
		if len(q.wait) >= q.cfg.WaitBuffer {
			q.stStallFull.Inc()
			return false
		}
		h := q.freeT[len(q.freeT)-1]
		q.freeT = q.freeT[:len(q.freeT)-1]
		q.wait = append(q.wait, u)
		q.waitH = append(q.waitH, h)
		q.parkOn(h, u, cycle)
		q.stWaited.Inc()
	} else if !q.insertArray(u, r, cycle) {
		q.stStallFull.Inc()
		return false
	}
	u.DispatchCycle = cycle
	q.total++
	q.stDispatched.Inc()
	q.dem.Observe(cycle, int64(q.total))

	if u.Inst.HasDest() {
		lat := int64(u.Latency())
		isLoad := u.IsLoad()
		if isLoad {
			lat = int64(q.cfg.PredictedLoadLatency)
		}
		d := r - cycle
		if d < 0 {
			d = 0
		}
		*q.availRow(u.Thread, u.Inst.Dest) = availEntry{
			valid:    true,
			producer: u,
			at:       cycle + d + 1 + lat,
			// A load's completion is unpredictable; so is anything
			// waiting in the buffer.
			unknown: isLoad || unknown,
		}
	}
	return true
}

// NotifyLoadMiss implements iq.Queue (no-op; unpredictability was already
// assumed at dispatch).
func (q *DistIQ) NotifyLoadMiss(cycle int64, u *uop.UOp) {}

// NotifyLoadComplete implements iq.Queue: the load's value now has an
// exact time; its table row resolves so waiters can be released.
func (q *DistIQ) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	if u == nil || !u.Inst.HasDest() {
		return
	}
	q.wake(u)
	e := q.availRow(u.Thread, u.Inst.Dest)
	if e.valid && e.producer == u {
		e.at = u.Complete
		e.unknown = false
	}
}

// Writeback implements iq.Queue: release the availability row and wake
// wait-buffer consumers of the now-resolved producer.
func (q *DistIQ) Writeback(cycle int64, u *uop.UOp) {
	if !u.Inst.HasDest() {
		return
	}
	q.wake(u)
	e := q.availRow(u.Thread, u.Inst.Dest)
	if e.valid && e.producer == u {
		e.valid = false
		e.producer = nil
	}
}

// EndCycle implements iq.Queue (no deadlock: the wait buffer drains as
// loads complete, and rows drain by readiness).
func (q *DistIQ) EndCycle(cycle int64, machineActive bool) {}

// CollectStats implements iq.Queue.
func (q *DistIQ) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.stDispatched.Value()))
	s.Put("iq_issued", float64(q.stIssued.Value()))
	s.Put("iq_stall_full", float64(q.stStallFull.Value()))
	s.Put("dist_waited", float64(q.stWaited.Value()))
	s.Put("dist_wait_occupancy_avg", q.stWaitOcc.Value())
}

var _ iq.Queue = (*DistIQ)(nil)
