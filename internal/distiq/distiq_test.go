package distiq

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

func alu(seq int64, s1, s2, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d})
}

func load(seq int64, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.Load, Src1: isa.RegNone, Src2: isa.RegNone,
		Dest: d, Size: 8})
}

func always(*uop.UOp) bool { return true }

func TestConfig(t *testing.T) {
	cfg := DefaultConfig(704)
	if cfg.Lines != 56 || cfg.LineWidth != 12 || cfg.WaitBuffer != 32 {
		t.Errorf("default geometry: %+v", cfg)
	}
	for _, bad := range []Config{
		{Lines: 0, LineWidth: 12, WaitBuffer: 32, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 0, WaitBuffer: 32, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 12, WaitBuffer: 0, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 12, WaitBuffer: 32, PredictedLoadLatency: 0},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
	q := MustNew(DefaultConfig(128))
	if q.Name() != "distance" || q.ExtraDispatchStages() != 1 {
		t.Error("identity")
	}
	if q.Capacity() != 32+8*12 {
		t.Errorf("capacity = %d", q.Capacity())
	}
}

func TestPredictableFlowsThroughArray(t *testing.T) {
	q := MustNew(Config{Lines: 8, LineWidth: 12, WaitBuffer: 4, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	if !q.Dispatch(0, u) {
		t.Fatal("dispatch failed")
	}
	if len(q.wait) != 0 {
		t.Fatal("ready instruction should not wait")
	}
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 1 || got[0] != u {
		t.Fatalf("issue = %v", got)
	}
	if q.Len() != 0 {
		t.Error("len")
	}
}

func TestLoadDependentWaits(t *testing.T) {
	// §2: "Instructions whose ready time cannot be accurately predicted
	// (e.g., due to dependence on an outstanding load) are held in this
	// buffer until their ready time is known."
	q := MustNew(Config{Lines: 8, LineWidth: 12, WaitBuffer: 4, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	con := alu(1, 1, isa.RegNone, 2)
	con.Prod[0] = ld
	q.Dispatch(0, con)
	if len(q.wait) != 1 || q.wait[0] != con {
		t.Fatalf("load dependent should wait: %v", q.wait)
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("dist_waited") != 1 {
		t.Error("wait stat")
	}

	// The load issues and completes: its table row resolves, and the
	// consumer moves into the array with an exact ready time.
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 1 || got[0] != ld {
		t.Fatalf("load issue = %v", got)
	}
	ld.Complete = 30
	q.NotifyLoadComplete(30, ld)
	q.BeginCycle(2)
	if len(q.wait) != 0 {
		t.Fatal("resolved dependent still waiting")
	}
	// It must not issue before cycle 30... drive the protocol.
	for c := int64(3); c < 30; c++ {
		q.BeginCycle(c)
		if got := q.Issue(c, 8, always); len(got) != 0 {
			t.Fatalf("issued at %d before the load's data (%v)", c, got)
		}
	}
	issued := false
	for c := int64(30); c <= 40 && !issued; c++ {
		q.BeginCycle(c)
		if got := q.Issue(c, 8, always); len(got) == 1 && got[0] == con {
			issued = true
		}
	}
	if !issued {
		t.Fatal("consumer never issued after resolution")
	}
}

func TestWaitBufferFullStallsDispatch(t *testing.T) {
	// The distance scheme's structural weakness: everything behind a
	// string of unpredictable instructions stalls at dispatch.
	q := MustNew(Config{Lines: 8, LineWidth: 12, WaitBuffer: 2, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	for i := int64(1); i <= 2; i++ {
		c := alu(i, 1, isa.RegNone, 2)
		c.Prod[0] = ld
		if !q.Dispatch(0, c) {
			t.Fatalf("wait slot %d rejected", i)
		}
	}
	blocked := alu(3, 1, isa.RegNone, 3)
	blocked.Prod[0] = ld
	if q.Dispatch(0, blocked) {
		t.Fatal("dispatch should stall on a full wait buffer")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_stall_full") != 1 {
		t.Error("stall stat")
	}
}

func TestTransitiveUnpredictability(t *testing.T) {
	// A consumer of a *waiting* instruction is itself unpredictable.
	q := MustNew(Config{Lines: 8, LineWidth: 12, WaitBuffer: 8, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	c1 := alu(1, 1, isa.RegNone, 2)
	c1.Prod[0] = ld
	q.Dispatch(0, c1)
	c2 := alu(2, 2, isa.RegNone, 3)
	c2.Prod[0] = c1
	q.Dispatch(0, c2)
	if len(q.wait) != 2 {
		t.Fatalf("transitive dependent should wait too: %d waiting", len(q.wait))
	}
}

func TestOrderInversionRecovered(t *testing.T) {
	// Force a producer into a later row than its consumer (spill) and
	// check the straggler relocation un-wedges the head row.
	q := MustNew(Config{Lines: 3, LineWidth: 1, WaitBuffer: 4, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	// Producer with a long predictable latency lands deep; its row is
	// width-1, so a second long instruction spills further.
	p := uop.New(0, isa.Inst{Class: isa.FpDiv, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.FpReg(1)})
	q.Dispatch(0, p)
	// Consumer: predicted ready far out but rows are tiny; placement is
	// approximate. Construct the inversion directly: dispatch a ready
	// instruction, then manually stuff the head row situation by driving
	// cycles — the important property is global: the queue never wedges.
	c := alu(1, isa.FpReg(1), isa.RegNone, 2)
	c.Prod[0] = p
	q.Dispatch(0, c)
	issued := 0
	for cycle := int64(1); cycle <= 80 && issued < 2; cycle++ {
		q.BeginCycle(cycle)
		for _, u := range q.Issue(cycle, 8, always) {
			issued++
			u.Complete = cycle + int64(u.Latency())
			q.Writeback(u.Complete, u)
		}
		q.EndCycle(cycle, true)
	}
	if issued != 2 {
		t.Fatalf("queue wedged: %d/2 issued", issued)
	}
}

func TestStoreDataDoesNotGate(t *testing.T) {
	q := MustNew(DefaultConfig(128))
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	st := uop.New(1, isa.Inst{Class: isa.Store, Src1: 1, Src2: isa.RegNone, Size: 8})
	st.Prod[0] = ld // data from an outstanding load
	q.Dispatch(0, st)
	if len(q.wait) != 0 {
		t.Fatal("store gated by its data operand")
	}
}

func TestNoopsAndStats(t *testing.T) {
	q := MustNew(DefaultConfig(128))
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	q.NotifyLoadMiss(0, u)
	q.EndCycle(0, false)
	// Writeback of the current producer releases the row.
	q.BeginCycle(0)
	q.Dispatch(0, u)
	if !q.avail[1].valid {
		t.Fatal("row not set")
	}
	q.Writeback(5, u)
	if q.avail[1].valid {
		t.Fatal("row not released")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	for _, k := range []string{"iq_dispatched", "iq_issued", "iq_stall_full", "dist_waited"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("missing stat %s", k)
		}
	}
}
