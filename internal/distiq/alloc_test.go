package distiq_test

import (
	"testing"

	"repro/internal/distiq"
	"repro/internal/isa"
	"repro/internal/uop"
)

// TestCycleLoopDoesNotAllocate pins the zero-allocation property of the
// distance-scheduled queue's steady-state cycle loop: once the scratch
// buffers have grown to their working size, BeginCycle + Issue + EndCycle
// over a loaded queue must allocate nothing. (Issue candidates are
// offered but refused, so the queue stays loaded and no refill uops —
// which do allocate — are needed.)
func TestCycleLoopDoesNotAllocate(t *testing.T) {
	q := distiq.MustNew(distiq.DefaultConfig(320))
	var seq int64
	for i := 0; i < 320; i++ {
		in := isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%20}
		if !q.Dispatch(0, uop.New(seq, in)) {
			break
		}
		seq++
	}
	refuse := func(*uop.UOp) bool { return false }
	cycle := int64(1)
	step := func() {
		q.BeginCycle(cycle)
		q.Issue(cycle, 8, refuse)
		q.EndCycle(cycle, true)
		cycle++
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Errorf("steady-state cycle loop allocates %.1f objects/cycle, want 0", avg)
	}
}
