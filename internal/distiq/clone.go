package distiq

import (
	"repro/internal/iq"
	"repro/internal/uop"
)

// Clone implements iq.Queue: a deep copy of the scheduling array, wait
// buffer and availability table with every held instruction remapped
// through m. Scratch storage is not carried over.
func (q *DistIQ) Clone(m *uop.CloneMap) iq.Queue {
	n := new(DistIQ)
	*n = *q
	n.outScratch = nil
	n.lines = make([][]*uop.UOp, len(q.lines))
	for r, row := range q.lines {
		if row == nil {
			continue
		}
		nr := make([]*uop.UOp, len(row))
		for i, u := range row {
			nr[i] = m.Get(u)
		}
		n.lines[r] = nr
	}
	n.wait = make([]*uop.UOp, len(q.wait))
	for i, u := range q.wait {
		n.wait[i] = m.Get(u)
	}
	n.waitH = append([]int32(nil), q.waitH...)
	n.freeT = append([]int32(nil), q.freeT...)
	n.recheckW = append([]uint64(nil), q.recheckW...)
	n.wt = q.wt.Clone(m)
	n.unresolved = make([]*uop.UOp, len(q.unresolved))
	for i, u := range q.unresolved {
		n.unresolved[i] = m.Get(u)
	}
	n.wakeBuf = nil
	n.avail = append([]availEntry(nil), q.avail...)
	for i := range n.avail {
		n.avail[i].producer = m.Get(n.avail[i].producer)
	}
	n.dem.Steps = q.dem.CloneSteps()
	return n
}

// Demands implements iq.Queue: an informational occupancy curve. The
// design keeps no bound-independent allocation discipline to refit, so
// the curve guides reporting only.
func (q *DistIQ) Demands() []iq.DemandCurve {
	return []iq.DemandCurve{{Dim: "iq", Steps: q.dem.Steps}}
}

// CloneBounded implements iq.Queue: refitting to a tighter bound is not
// supported — placement decisions depend on the structure geometry — so
// prefix sharing always falls back to a cold fork for this design.
func (q *DistIQ) CloneBounded(m *uop.CloneMap, bound int) (iq.Queue, bool) {
	return nil, false
}
