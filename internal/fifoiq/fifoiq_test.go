package fifoiq

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

func alu(seq int64, s1, s2, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d})
}

func always(*uop.UOp) bool { return true }

func TestConfig(t *testing.T) {
	if DefaultConfig(64).FIFOs != 8 || DefaultConfig(64).Depth != 8 {
		t.Error("default geometry")
	}
	if DefaultConfig(4).FIFOs != 1 {
		t.Error("degenerate clamp")
	}
	if _, err := New(Config{FIFOs: 0, Depth: 8}); err == nil {
		t.Error("zero FIFOs accepted")
	}
	if _, err := New(Config{FIFOs: 8, Depth: 0}); err == nil {
		t.Error("zero depth accepted")
	}
	q := MustNew(DefaultConfig(64))
	if q.Name() != "fifos" || q.Capacity() != 64 || q.ExtraDispatchStages() != 0 {
		t.Error("identity")
	}
}

func TestSteeringBehindProducer(t *testing.T) {
	q := MustNew(Config{FIFOs: 4, Depth: 4})
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	c := alu(1, 1, isa.RegNone, 2)
	c.Prod[0] = p
	if !q.Dispatch(0, p) || !q.Dispatch(0, c) {
		t.Fatal("dispatch failed")
	}
	// Both must be in the same FIFO, producer first.
	found := false
	for _, f := range q.fifos {
		if len(f) == 2 {
			if f[0] != p || f[1] != c {
				t.Fatal("order wrong")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("consumer not steered behind producer")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("fifo_steered") != 1 || s.MustGet("fifo_new") != 1 {
		t.Error("steering stats wrong")
	}
}

func TestIndependentInstructionsSpreadAcrossFIFOs(t *testing.T) {
	q := MustNew(Config{FIFOs: 3, Depth: 4})
	for i := int64(0); i < 3; i++ {
		if !q.Dispatch(0, alu(i, isa.RegNone, isa.RegNone, int(i)+1)) {
			t.Fatal("dispatch failed")
		}
	}
	for i, f := range q.fifos {
		if len(f) != 1 {
			t.Fatalf("fifo %d has %d entries", i, len(f))
		}
	}
	// A fourth independent instruction has no empty FIFO: stall.
	if q.Dispatch(0, alu(3, isa.RegNone, isa.RegNone, 9)) {
		t.Fatal("dispatch should stall with no empty FIFO")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_stall_full") != 1 {
		t.Error("stall not counted")
	}
}

func TestOccupiedSuccessorSlotForcesNewFIFO(t *testing.T) {
	// Two consumers of the same producer: only the first can sit behind
	// it; the second needs an empty FIFO (the paper's §2 description).
	q := MustNew(Config{FIFOs: 3, Depth: 4})
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	c1 := alu(1, 1, isa.RegNone, 2)
	c2 := alu(2, 1, isa.RegNone, 3)
	c1.Prod[0] = p
	c2.Prod[0] = p
	q.Dispatch(0, p)
	q.Dispatch(0, c1)
	q.Dispatch(0, c2)
	// c2 must be alone in its own FIFO (p's successor slot holds c1; c1
	// is now a tail but does not produce c2's operand).
	alone := 0
	for _, f := range q.fifos {
		if len(f) == 1 && f[0] == c2 {
			alone++
		}
	}
	if alone != 1 {
		t.Fatal("second consumer should claim an empty FIFO")
	}
}

func TestHeadsOnlyIssue(t *testing.T) {
	q := MustNew(Config{FIFOs: 2, Depth: 4})
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	c := alu(1, 1, isa.RegNone, 2)
	c.Prod[0] = p
	q.Dispatch(0, p)
	q.Dispatch(0, c)

	got := q.Issue(1, 8, always)
	if len(got) != 1 || got[0] != p {
		t.Fatalf("cycle 1 issue = %v", got)
	}
	// c is now a head but unready until p completes.
	if got := q.Issue(2, 8, always); len(got) != 0 {
		t.Fatal("unready head issued")
	}
	p.Complete = 2
	if got := q.Issue(3, 8, always); len(got) != 1 || got[0] != c {
		t.Fatal("ready head did not issue")
	}
	if q.Len() != 0 {
		t.Error("len")
	}
}

func TestArtificialFIFODependence(t *testing.T) {
	// The design's structural weakness (§2): an instruction behind an
	// unready head cannot issue even when its own operands are ready.
	q := MustNew(Config{FIFOs: 1, Depth: 4})
	ghost := alu(99, isa.RegNone, isa.RegNone, 5)
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	p.Prod[0] = ghost // never completes
	q.Dispatch(0, p)
	c := alu(1, 1, isa.RegNone, 2)
	c.Prod[0] = p
	q.Dispatch(0, c)
	// Pretend p's value arrived via another path... it cannot; instead
	// check c never issues while p blocks the head, even though we make
	// c's operand artificially ready.
	c.Prod[0] = nil
	for cycle := int64(1); cycle < 5; cycle++ {
		if got := q.Issue(cycle, 8, always); len(got) != 0 {
			t.Fatal("instruction issued past a blocked FIFO head")
		}
	}
}

func TestNoSameCycleIssue(t *testing.T) {
	q := MustNew(Config{FIFOs: 2, Depth: 2})
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	q.Dispatch(5, u)
	if got := q.Issue(5, 8, always); len(got) != 0 {
		t.Fatal("issued in dispatch cycle")
	}
	if got := q.Issue(6, 8, always); len(got) != 1 {
		t.Fatal("should issue next cycle")
	}
}

func TestIssueWidthAndOldestFirst(t *testing.T) {
	q := MustNew(Config{FIFOs: 6, Depth: 2})
	for i := int64(5); i >= 0; i-- {
		q.Dispatch(0, alu(i, isa.RegNone, isa.RegNone, 1))
	}
	got := q.Issue(1, 3, always)
	if len(got) != 3 {
		t.Fatalf("issued %d", len(got))
	}
	for i, u := range got {
		if u.Seq != int64(i) {
			t.Fatalf("not oldest-first: %v", got)
		}
	}
}

func TestDepthLimitForcesNewFIFO(t *testing.T) {
	q := MustNew(Config{FIFOs: 2, Depth: 2})
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	c1 := alu(1, 1, isa.RegNone, 1)
	c1.Prod[0] = p
	c2 := alu(2, 1, isa.RegNone, 1)
	c2.Prod[0] = c1
	q.Dispatch(0, p)
	q.Dispatch(0, c1) // fills FIFO 0 to depth 2
	q.Dispatch(0, c2) // tail c1 matches but FIFO full -> empty FIFO
	if len(q.fifos[1]) != 1 || q.fifos[1][0] != c2 {
		t.Fatal("depth-limited steering should spill to an empty FIFO")
	}
}

func TestStoreDataOperandDoesNotSteer(t *testing.T) {
	q := MustNew(Config{FIFOs: 3, Depth: 4})
	data := alu(0, isa.RegNone, isa.RegNone, 1)
	st := uop.New(1, isa.Inst{Class: isa.Store, Src1: 1, Src2: isa.RegNone, Size: 8})
	st.Prod[0] = data
	q.Dispatch(0, data)
	q.Dispatch(0, st)
	// The store must not be steered behind its data producer (only the
	// address gates the EA op), so it claims an empty FIFO.
	for _, f := range q.fifos {
		if len(f) == 2 {
			t.Fatal("store steered behind its data producer")
		}
	}
}

func TestNotificationsAreNoops(t *testing.T) {
	q := MustNew(DefaultConfig(32))
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	q.NotifyLoadMiss(0, u)
	q.NotifyLoadComplete(0, u)
	q.Writeback(0, u)
	q.EndCycle(0, false)
	q.BeginCycle(1)
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_dispatched") != 0 {
		t.Error("no-ops changed state")
	}
}
