// Package fifoiq implements the dependence-based FIFO instruction queue
// of Palacharla, Jouppi & Smith — the first dependence-based IQ design,
// which the paper's related-work section (§2) positions against the
// segmented queue, and which Michaud & Seznec report their prescheduling
// design outperforms.
//
// The queue is a set of FIFOs; only the FIFO heads are examined by
// wakeup/select, so scheduling latency scales with the number of FIFOs
// rather than the number of slots. Dispatch steers each instruction
// behind a producer of one of its operands when that producer is the tail
// of a FIFO and the slot behind it is free; otherwise — operands
// available, or the slot taken — the instruction needs an empty FIFO, and
// dispatch stalls when none exists. The structure embeds scheduling
// (head-order) dependences that are not data dependences, which is
// exactly the inflexibility the segmented design removes.
package fifoiq

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/iq"
	"repro/internal/stats"
	"repro/internal/uop"
)

// Config describes a FIFO-based IQ.
type Config struct {
	// FIFOs is the number of queues (wakeup/select examines this many
	// heads).
	FIFOs int
	// Depth is the capacity of each FIFO.
	Depth int
	// StatsEvery samples the per-cycle head-readiness statistic every n
	// cycles (0 or 1: every cycle). Scheduling is unaffected.
	StatsEvery int
}

// DefaultConfig follows Palacharla et al.'s proportions: depth-8 FIFOs
// covering the requested total capacity.
func DefaultConfig(totalSlots int) Config {
	f := totalSlots / 8
	if f < 1 {
		f = 1
	}
	return Config{FIFOs: f, Depth: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FIFOs < 1 || c.Depth < 1 {
		return fmt.Errorf("fifoiq: non-positive geometry %+v", c)
	}
	return nil
}

// cand is an issue candidate: a ready FIFO head and its queue index.
type cand struct {
	fifo int
	u    *uop.UOp
}

// FIFOIQ implements iq.Queue.
//
// Only the FIFO heads participate in wakeup, so the ready state is one
// bit per FIFO, maintained event-driven by an iq.Scoreboard (handle =
// FIFO index): a head is tracked when it becomes exposed and untracked
// when popped, and select walks the set bits instead of re-testing every
// head's operands each cycle.
type FIFOIQ struct {
	cfg   Config
	fifos [][]*uop.UOp
	total int
	now   int64 // current cycle; clocks wakeup deliveries

	readyW []uint64 // per-FIFO: head exposed and issue-ready
	sb     iq.Scoreboard

	// unresolved holds issued producers whose completion time was still
	// unknown when they left the queue; the next cycle re-checks them
	// (the execution core stamps Complete right after Issue returns).
	unresolved []*uop.UOp

	// Reused per-cycle scratch: candidate heads and Issue's result (the
	// returned slice is valid only until the next call).
	candScratch []cand
	outScratch  []*uop.UOp

	stDispatched stats.Counter
	stIssued     stats.Counter
	stStallFull  stats.Counter
	stSteered    stats.Counter // placed behind a producer
	stNewFIFO    stats.Counter // placed at the head of an empty FIFO
	stOccupancy  stats.Mean
	stReadyHeads stats.Mean

	dem iq.Watermark // occupancy high-watermark, for prefix sharing
}

// New builds a FIFO-based IQ.
func New(cfg Config) (*FIFOIQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &FIFOIQ{
		cfg:    cfg,
		fifos:  make([][]*uop.UOp, cfg.FIFOs),
		readyW: bitvec.New(cfg.FIFOs),
	}
	q.sb.Grow(cfg.FIFOs)
	return q, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *FIFOIQ {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Name implements iq.Queue.
func (q *FIFOIQ) Name() string { return "fifos" }

// Capacity implements iq.Queue.
func (q *FIFOIQ) Capacity() int { return q.cfg.FIFOs * q.cfg.Depth }

// Len implements iq.Queue.
func (q *FIFOIQ) Len() int { return q.total }

// ExtraDispatchStages implements iq.Queue: the steering logic is simple
// enough that Palacharla et al. charge no extra latency.
func (q *FIFOIQ) ExtraDispatchStages() int { return 0 }

// wake delivers p's now-known completion time to parked head consumers.
func (q *FIFOIQ) wake(cycle int64, p *uop.UOp) {
	for _, h := range q.sb.Wake(p, cycle) {
		bitvec.Set(q.readyW, int(h))
	}
}

// advance moves the queue's clock to cycle: re-check issued producers
// whose completion time was unknown and deliver scheduled wakeups.
func (q *FIFOIQ) advance(cycle int64) {
	q.now = cycle
	if len(q.unresolved) > 0 {
		kept := q.unresolved[:0]
		for _, u := range q.unresolved {
			if u.Complete == uop.NotYet {
				kept = append(kept, u)
				continue
			}
			q.wake(cycle, u)
		}
		for i := len(kept); i < len(q.unresolved); i++ {
			q.unresolved[i] = nil
		}
		q.unresolved = kept
	}
	for _, h := range q.sb.Due(cycle) {
		bitvec.Set(q.readyW, int(h))
	}
}

// BeginCycle implements iq.Queue: deliver scheduled wakeups (FIFOs have
// no internal motion) and sample the head-readiness statistic.
func (q *FIFOIQ) BeginCycle(cycle int64) {
	q.advance(cycle)
	if every := int64(q.cfg.StatsEvery); every > 1 && cycle%every != 0 {
		return
	}
	q.stOccupancy.Observe(float64(q.total))
	q.stReadyHeads.Observe(float64(bitvec.Count(q.readyW)))
}

// Quiescent implements iq.Queue: no exposed head is issue-ready and no
// resolved producer is pending re-check. Heads parked on unresolved
// producers or scheduled on the wheel wake via events the engine bounds
// the skip window by.
func (q *FIFOIQ) Quiescent(cycle int64) bool {
	for _, w := range q.readyW {
		if w != 0 {
			return false
		}
	}
	for _, u := range q.unresolved {
		if u.Complete != uop.NotYet {
			return false
		}
	}
	return true
}

// SkipCycles implements iq.Queue: a frozen FIFO queue's BeginCycle only
// samples statistics, so replay just the sampling.
func (q *FIFOIQ) SkipCycles(from, to int64) {
	every := int64(q.cfg.StatsEvery)
	for x := from; x < to; x++ {
		if every > 1 && x%every != 0 {
			continue
		}
		q.stOccupancy.Observe(float64(q.total))
		q.stReadyHeads.Observe(float64(bitvec.Count(q.readyW)))
	}
}

// sortCandsBySeq orders candidates by ascending sequence number with an
// in-place insertion sort (at most one candidate per FIFO; no closure
// allocation, unlike sort.Slice).
func sortCandsBySeq(cs []cand) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j].u.Seq > c.u.Seq {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// Issue implements iq.Queue: wakeup/select over the FIFO heads only,
// oldest ready head first. Popping a head exposes the next instruction
// for the following cycle. The returned slice is owned by the queue and
// valid until the next call.
func (q *FIFOIQ) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	if cycle != q.now {
		// Unit-test drivers may skip BeginCycle; deliver wakeups here.
		q.advance(cycle)
	}
	// Snapshot the ready heads first: popping a head below exposes the
	// next instruction, which must wait until the following cycle.
	cands := q.candScratch[:0]
	for k, w := range q.readyW {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			i := k<<6 + b
			u := q.fifos[i][0]
			if u.DispatchCycle < cycle {
				cands = append(cands, cand{fifo: i, u: u})
			}
		}
	}
	q.candScratch = cands[:0]
	sortCandsBySeq(cands)
	out := q.outScratch[:0]
	for _, c := range cands {
		if len(out) >= max {
			break
		}
		if !tryIssue(c.u) {
			continue
		}
		c.u.IssueCycle = cycle
		f := q.fifos[c.fifo]
		copy(f, f[1:])
		f[len(f)-1] = nil
		f = f[:len(f)-1]
		q.fifos[c.fifo] = f
		q.total--
		bitvec.Clear(q.readyW, c.fifo)
		q.sb.Untrack(int32(c.fifo))
		if len(f) > 0 {
			q.trackHead(c.fifo, f[0], cycle)
		}
		if c.u.Inst.HasDest() {
			q.unresolved = append(q.unresolved, c.u)
		}
		out = append(out, c.u)
	}
	q.outScratch = out
	q.stIssued.Add(uint64(len(out)))
	return out
}

// trackHead registers a newly exposed FIFO head with the scoreboard.
func (q *FIFOIQ) trackHead(fifo int, u *uop.UOp, cycle int64) {
	if q.sb.Track(int32(fifo), u, cycle) {
		bitvec.Set(q.readyW, fifo)
	}
}

// Dispatch implements iq.Queue: steer behind an operand producer at a
// FIFO tail, else claim an empty FIFO, else stall.
func (q *FIFOIQ) Dispatch(cycle int64, u *uop.UOp) bool {
	// Try to append directly behind a producer that is a FIFO tail.
	for j := 0; j < 2; j++ {
		if u.IsStore() && j == 0 {
			continue // the data operand does not gate the EA calculation
		}
		p := u.Prod[j]
		if p == nil || (p.Complete != uop.NotYet && p.Complete <= cycle) {
			continue
		}
		for i, f := range q.fifos {
			if len(f) > 0 && len(f) < q.cfg.Depth && f[len(f)-1] == p {
				q.fifos[i] = append(f, u)
				q.place(u, cycle)
				q.stSteered.Inc()
				return true
			}
		}
	}
	// Operands available, or the producer slot is taken: an empty FIFO.
	for i, f := range q.fifos {
		if len(f) == 0 {
			q.fifos[i] = append(f, u)
			q.place(u, cycle)
			q.trackHead(i, u, cycle)
			q.stNewFIFO.Inc()
			return true
		}
	}
	q.stStallFull.Inc()
	return false
}

func (q *FIFOIQ) place(u *uop.UOp, cycle int64) {
	u.DispatchCycle = cycle
	q.total++
	q.stDispatched.Inc()
	q.dem.Observe(cycle, int64(q.total))
}

// NotifyLoadMiss implements iq.Queue (no-op: FIFO order is fixed at
// dispatch).
func (q *FIFOIQ) NotifyLoadMiss(cycle int64, u *uop.UOp) {}

// NotifyLoadComplete implements iq.Queue: the load's completion cycle is
// now known, so wake heads parked on it. The wake is clocked by the
// queue's own cycle, not the caller's stamp, since some drivers announce
// writebacks scheduled for a future cycle.
func (q *FIFOIQ) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
}

// Writeback implements iq.Queue: wake heads parked on u (see
// NotifyLoadComplete for the clocking).
func (q *FIFOIQ) Writeback(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
}

// EndCycle implements iq.Queue: FIFO heads always drain once ready, so
// the structure cannot deadlock.
func (q *FIFOIQ) EndCycle(cycle int64, machineActive bool) {}

// CollectStats implements iq.Queue.
func (q *FIFOIQ) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.stDispatched.Value()))
	s.Put("iq_issued", float64(q.stIssued.Value()))
	s.Put("iq_stall_full", float64(q.stStallFull.Value()))
	s.Put("iq_occupancy_avg", q.stOccupancy.Value())
	s.Put("fifo_steered", float64(q.stSteered.Value()))
	s.Put("fifo_new", float64(q.stNewFIFO.Value()))
	s.Put("fifo_ready_heads_avg", q.stReadyHeads.Value())
}

var _ iq.Queue = (*FIFOIQ)(nil)
