package fifoiq_test

import (
	"testing"

	"repro/internal/fifoiq"
	"repro/internal/iq"
	"repro/internal/iq/iqtest"
)

func TestConformanceFuzz(t *testing.T) {
	for name, cfg := range map[string]fifoiq.Config{
		"default-128": fifoiq.DefaultConfig(128),
		"narrow":      {FIFOs: 3, Depth: 4},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			iqtest.Fuzz(t, func() iq.Queue { return fifoiq.MustNew(cfg) }, iqtest.DefaultOptions())
		})
	}
}

func TestCloneFuzz(t *testing.T) {
	iqtest.CloneFuzz(t, func() iq.Queue { return fifoiq.MustNew(fifoiq.DefaultConfig(128)) }, iqtest.DefaultOptions())
}
