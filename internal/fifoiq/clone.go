package fifoiq

import (
	"repro/internal/iq"
	"repro/internal/uop"
)

// Clone implements iq.Queue: a deep copy of every FIFO with held
// instructions remapped through m. Scratch storage is not carried over.
func (q *FIFOIQ) Clone(m *uop.CloneMap) iq.Queue {
	n := new(FIFOIQ)
	*n = *q
	n.candScratch = nil
	n.outScratch = nil
	n.fifos = make([][]*uop.UOp, len(q.fifos))
	for f, fifo := range q.fifos {
		if fifo == nil {
			continue
		}
		nf := make([]*uop.UOp, len(fifo))
		for i, u := range fifo {
			nf[i] = m.Get(u)
		}
		n.fifos[f] = nf
	}
	n.readyW = append([]uint64(nil), q.readyW...)
	n.sb = q.sb.Clone(m)
	n.unresolved = make([]*uop.UOp, len(q.unresolved))
	for i, u := range q.unresolved {
		n.unresolved[i] = m.Get(u)
	}
	n.dem.Steps = q.dem.CloneSteps()
	return n
}

// Demands implements iq.Queue: an informational occupancy curve. The
// design keeps no bound-independent allocation discipline to refit, so
// the curve guides reporting only.
func (q *FIFOIQ) Demands() []iq.DemandCurve {
	return []iq.DemandCurve{{Dim: "iq", Steps: q.dem.Steps}}
}

// CloneBounded implements iq.Queue: refitting to a tighter bound is not
// supported — placement decisions depend on the structure geometry — so
// prefix sharing always falls back to a cold fork for this design.
func (q *FIFOIQ) CloneBounded(m *uop.CloneMap, bound int) (iq.Queue, bool) {
	return nil, false
}
