package fifoiq

import (
	"repro/internal/iq"
	"repro/internal/uop"
)

// Clone implements iq.Queue: a deep copy of every FIFO with held
// instructions remapped through m. Scratch storage is not carried over.
func (q *FIFOIQ) Clone(m *uop.CloneMap) iq.Queue {
	n := new(FIFOIQ)
	*n = *q
	n.candScratch = nil
	n.outScratch = nil
	n.fifos = make([][]*uop.UOp, len(q.fifos))
	for f, fifo := range q.fifos {
		if fifo == nil {
			continue
		}
		nf := make([]*uop.UOp, len(fifo))
		for i, u := range fifo {
			nf[i] = m.Get(u)
		}
		n.fifos[f] = nf
	}
	n.readyW = append([]uint64(nil), q.readyW...)
	n.sb = q.sb.Clone(m)
	n.unresolved = make([]*uop.UOp, len(q.unresolved))
	for i, u := range q.unresolved {
		n.unresolved[i] = m.Get(u)
	}
	return n
}
