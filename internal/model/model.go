// Package model estimates a configuration's IPC analytically — in
// microseconds, not milliseconds — from a measured workload profile
// (trace.Characterize) and a machine configuration (sim.Config). It is
// the screening half of the pre-screening sweep mode: enumerate a
// mega-grid, score every point here, and spend simulation only on the
// predicted Pareto frontier plus an audit sample (internal/experiments).
//
// The model is an interval-style bound composition in the spirit of
// Carroll & Lin's queuing model for FU/issue-queue sizing (arXiv
// 1807.08586): an effective in-flight window set by the binding capacity
// resource, a dependence-chain critical-path bound through that window
// (extrapolated from the profile's two measured window sizes), per-class
// function-unit and memory service-rate bounds, and a branch-mispredict
// interval correction. It predicts *ranking* well and absolute IPC
// roughly; the audit sample quantifies both on every pre-screened sweep
// (DESIGN.md §12).
package model

import (
	"math"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Estimate is one scored grid point.
type Estimate struct {
	// IPC is the analytic estimate.
	IPC float64
	// Entries is the Pareto cost axis: total queue entries the
	// configuration spends (IQ + ROB + LSQ).
	Entries int
	// Window is the effective in-flight window the model settled on.
	Window float64
	// Bound names the binding constraint ("dep", "iq", "rob", "lsq",
	// "chains", "width", "fu:IntAlu", "mshr", "membw", ...) — telemetry
	// for calibration, not part of the screening contract.
	Bound string
}

// Entries returns the Pareto cost axis of a configuration: the total
// queue entries it spends across IQ, ROB and LSQ. This is the x axis the
// frontier is computed against — "best IPC per entry" rewards small
// machines that keep up with big ones.
func Entries(c sim.Config) int {
	return c.QueueSize + c.ROBSize + c.LSQSize
}

// Calibration constants. These are fitted once against the simulated
// reference grids (the validation test in this package re-checks the fit
// on every run); they are deliberately few and global — per-workload
// inputs all come from the profile.
const (
	// Per-design window efficiency: how much of its nominal capacity a
	// queue design turns into useful lookahead. The ideal single-cycle
	// queue defines 1.0; the scalable designs pay for banked wakeup,
	// in-order FIFOs or prescheduled slot fragmentation.
	effIdeal     = 1.00
	effSegmented = 0.85
	effPresched  = 0.55
	effFIFO      = 0.40
	effDistance  = 0.55

	// Per-design issue-quality multipliers on the combined throughput:
	// even at ample capacity the restricted designs issue slightly worse
	// schedules than the ideal single-cycle queue (banked wakeup,
	// in-order FIFOs, slot conflicts). Fitted to the simulated design
	// ordering at 512 entries.
	qualIdeal     = 1.00
	qualSegmented = 0.95
	qualPresched  = 0.88
	qualFIFO      = 0.97
	qualDistance  = 0.92

	// Waiting-fraction model: the share of in-flight instructions still
	// waiting in the IQ (as opposed to issued and draining through the
	// ROB) grows with the workload's serialism, measured as the window
	// critical path over the window size.
	waitBase  = 0.15
	waitSlope = 0.85

	// capMissSkew is the fraction of the footprint beyond a cache's
	// capacity that actually misses — reuse is skewed toward hot lines,
	// so a footprint 2x the cache does not miss 50% of the time.
	capMissSkew = 0.55

	// Chain-wire efficiency: a budget of m wires sustains fewer than
	// m/headFrac in-flight instructions because heads cluster and wires
	// are only reclaimed at chain completion.
	chainEff = 0.5

	// Per-design scheduling-quality ceilings: the prescheduled and
	// distance designs place instructions by *predicted* latency, so
	// latency-unpredictable instructions stall their in-order rows. The
	// ceiling is width*exp(-k*U) with U the unpredictable-latency
	// fraction. For the prescheduled design U counts only cache-missing
	// loads — fixed-latency FP ops preschedule exactly. The distance
	// design also degrades on FP-dense codes (its coarse distance buckets
	// under-resolve long-latency chains), so its U keeps the FP term.
	preschedLatK = 5.5
	distanceLatK = 4.4
	fpUnpredict  = 1.0

	// Prescheduled replay collapse: on FP workloads, when the LSQ is at
	// least as large as the queue on a full-width (8-wide) machine, the
	// simulated prescheduled design falls into a replay storm — enough
	// mis-slotted loads refill the queue faster than useful issue drains
	// it — and IPC pins near 0.2-0.3 regardless of capacity (applu 0.206,
	// mgrid 0.279, swim 0.320 at the collapse geometries; integer codes
	// like gcc never collapse). A smaller LSQ throttles dispatch before
	// the storm can form, which is why lsq<iq neighbours run near-ideal.
	fpCollapseMin       = 0.2
	preschedCollapseIPC = 0.27

	// brWindowFill: speculation past a mispredicted branch is thrown
	// away, so capacity beyond the mispredict interval buys little.
	// While one interval drains the front end is already refilling the
	// next, so roughly two intervals are in flight at once; the time
	// cost of the bubble itself is charged by the penalty term below,
	// not by this cap.
	brWindowFill = 2.0

	// hmpFloor is the residual chain-head rate of the hit/miss
	// predictor: even a perfect-history HMP mispredicts transitions, so
	// some hits still spawn chains.
	hmpFloor = 0.05

	// mispredictExtra is the redirect/re-rename cost a mispredict pays on
	// top of the front-end pipeline refill and the branch's resolution
	// time.
	mispredictExtra = 3.0

	// hybridAdvantage scales the profiling proxy's local-predictor miss
	// rate to the simulated hybrid's steady-state rate. Measured sim
	// rates after checkpoint warmup sit at 0.8-1.1x the proxy on the
	// branchy workloads (gcc 0.241 vs proxy 0.218, twolf 0.111 vs 0.143,
	// vortex 0.072 vs 0.084) and at ~0.5x on the near-perfectly-predicted
	// FP codes, where the absolute rate is noise anyway.
	hybridAdvantage = 0.9

	// resolveDepth scales the branch-resolution term of the mispredict
	// penalty: a mispredicted branch redirects only after its dependence
	// prefix — approximately the sub-window critical path — executes.
	// Measured stall-per-mispredict matches CritPathSub x stepCost within
	// ~15% on gcc (36.7 cycles) and twolf (403 cycles).
	resolveDepth = 1.0

	// softminP is the p-norm softmin sharpness combining the bounds: high
	// enough to track the binding bound, soft enough that near-binding
	// bounds still differentiate otherwise-tied configurations (exact
	// ties are rank-correlation poison).
	softminP = 16.0
)

// For scores one configuration against one workload profile.
func For(p trace.Profile, c sim.Config) Estimate {
	est := Estimate{Entries: Entries(c)}
	if p.Instructions == 0 {
		return est
	}
	memFrac := p.MemFraction()
	loadFrac := p.MixFrac[isa.Load]
	storeFrac := p.MixFrac[isa.Store]
	brFrac := p.MixFrac[isa.Branch]
	missL1, missL2 := MissRates(p, c)

	// Effective window: the tightest of the ROB, the design-adjusted IQ
	// reach, the LSQ (which must hold every in-flight memory op) and,
	// for the segmented design, the chain-wire budget.
	w := float64(c.ROBSize)
	est.Bound = "rob"
	if r := iqReach(p, c); r < w {
		w, est.Bound = r, "iq"
	}
	if memFrac > 0 {
		if r := float64(c.LSQSize) / memFrac; r < w {
			w, est.Bound = r, "lsq"
		}
	}
	if c.Queue == sim.QueueSegmented && c.Segmented.MaxChains > 0 {
		if r := chainReach(p, c, missL1); r < w {
			w, est.Bound = r, "chains"
		}
	}
	// Speculation past a mispredicted branch is discarded, so the useful
	// window cannot exceed the mispredict interval: branchy codes stop
	// rewarding capacity long before the ROB fills (this is why gcc's
	// simulated IPC is flat from 32 to 512 entries).
	mp := Mispredict(p, c)
	if brFrac*mp > 1e-9 {
		if r := brWindowFill / (brFrac * mp); r < w {
			w, est.Bound = r, "brwindow"
		}
	}
	if w < 4 {
		w = 4
	}
	est.Window = w

	// Bound 1: dependence chains. Draining a window-full of W
	// instructions takes depth(W) critical-path steps of stepCost cycles
	// each.
	bounds := []namedBound{{
		"dep", w / (depthAt(p, w) * stepCost(p, c, missL1, missL2)),
	}}

	// Bound 2: machine widths, including the fetch branch limit.
	width := math.Min(math.Min(float64(c.FetchWidth), float64(c.DispatchWidth)),
		math.Min(float64(c.IssueWidth), float64(c.CommitWidth)))
	bounds = append(bounds, namedBound{"width", width})
	if brFrac > 0 && c.MaxBranches > 0 {
		bounds = append(bounds, namedBound{"branches", float64(c.MaxBranches) / brFrac})
	}

	// Bound 3: per-class function-unit service rates. Unpipelined units
	// accept one op per latency; memory classes additionally contend for
	// cache ports.
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		f := p.MixFrac[cl]
		if f < 1e-9 {
			continue
		}
		thr := float64(c.FUPerClass)
		if !cl.Pipelined() {
			thr /= float64(cl.Latency())
		}
		bounds = append(bounds, namedBound{"fu:" + cl.String(), thr / f})
	}
	if loadFrac > 0 && c.CacheRdPorts > 0 {
		bounds = append(bounds, namedBound{"rdports", float64(c.CacheRdPorts) / loadFrac})
	}
	if storeFrac > 0 && c.CacheWrPorts > 0 {
		bounds = append(bounds, namedBound{"wrports", float64(c.CacheWrPorts) / storeFrac})
	}

	// Bound 3b: scheduling-quality ceiling. The prescheduled and
	// distance designs slot instructions by predicted latency;
	// unpredictable latencies (missing loads, FP chains) stall their
	// in-order structures regardless of capacity, which is why their
	// simulated curves plateau on memory-bound workloads.
	if k := designLatK(c.Queue); k > 0 {
		u := loadFrac * missL1
		if c.Queue == sim.QueueDistance {
			u += fpUnpredict * p.FpFraction()
		}
		bounds = append(bounds, namedBound{"sched", width * math.Exp(-k*u)})
	}
	if c.Queue == sim.QueuePrescheduled && p.FpFraction() >= fpCollapseMin &&
		c.LSQSize >= c.QueueSize && c.IssueWidth >= 8 {
		bounds = append(bounds, namedBound{"replay", preschedCollapseIPC})
	}

	// Bound 4: memory-level parallelism and DRAM bandwidth. DRAM traffic
	// is compulsory-dominated: with an L2 that holds the reuse working
	// set, the lines that reach memory in steady state are first touches
	// — measured sim fetches/inst track the profile's steady-state
	// first-touch rate within ~10% on every workload (writebacks
	// roughly trade places with the few reused lines that stay
	// resident).
	if lineRate := p.SteadyLineRate; lineRate > 1e-9 {
		// Little's law on the DRAM round trip: the window (in-flight
		// first-touch lines) and the MSHR file bound how many of those
		// long-latency fetches overlap.
		transfer := 0.0
		if c.Memory.MemBytesPerCycle > 0 {
			transfer = 64 / float64(c.Memory.MemBytesPerCycle)
		}
		memLat := float64(c.Memory.L2.HitLatency) + float64(c.Memory.MemLatency) + transfer
		mlp := math.Min(float64(c.Memory.L1D.MSHRs), w*lineRate)
		if mlp < 1 {
			mlp = 1
		}
		bounds = append(bounds, namedBound{"mshr", mlp / (lineRate * memLat)})
		if c.Memory.MemBytesPerCycle > 0 {
			bounds = append(bounds, namedBound{"membw",
				float64(c.Memory.MemBytesPerCycle) / (lineRate * 64)})
		}
	}

	base, binding := softmin(bounds)
	if binding != "" && binding != "dep" {
		// Capacity bounds stay as computed above; a throughput bound
		// overrides them as the reported binding constraint.
		est.Bound = binding
	}
	base *= designQual(c.Queue)

	// Mispredict interval correction: a mispredicted branch redirects
	// only after its dependence prefix — approximately the sub-window
	// critical path, at the workload's per-step cost — executes, and
	// then the front end refills. Measured stall-per-mispredict matches
	// this within ~15% on gcc (36.7 cycles) and twolf (403 cycles).
	penalty := float64(c.FetchToDecode+c.DecodeToDispatch) + mispredictExtra +
		resolveDepth*p.CritPathSub*stepCost(p, c, missL1, missL2)
	est.IPC = 1 / (1/base + brFrac*mp*penalty)
	return est
}

type namedBound struct {
	name string
	v    float64
}

// softmin combines bounds with a p-norm soft minimum: close to the true
// minimum, but every near-binding bound still contributes, so two
// configurations differing only in a non-binding resource do not tie
// exactly. Returns the combined value and the name of the smallest bound.
func softmin(bs []namedBound) (float64, string) {
	sum, minV, minName := 0.0, math.Inf(1), ""
	for _, b := range bs {
		if b.v <= 0 {
			continue
		}
		sum += math.Pow(b.v, -softminP)
		if b.v < minV {
			minV, minName = b.v, b.name
		}
	}
	if sum == 0 {
		return 0.01, minName
	}
	return math.Pow(sum, -1/softminP), minName
}

// designLatK returns the scheduling-quality sensitivity of a design to
// latency-unpredictable instructions (0 = latency-tolerant).
func designLatK(q sim.QueueKind) float64 {
	switch q {
	case sim.QueuePrescheduled:
		return preschedLatK
	case sim.QueueDistance:
		return distanceLatK
	}
	return 0
}

// iqReach is the lookahead an IQ of the configured design and size
// sustains: capacity over the waiting fraction (instructions blocked on
// dependences occupy IQ slots; issued ones have moved on to the ROB),
// derated by the design's window efficiency.
func iqReach(p trace.Profile, c sim.Config) float64 {
	serial := p.CritPathWin / trace.ChainWindow
	wait := waitBase + waitSlope*serial
	switch c.Queue {
	case sim.QueueSegmented:
		return effSegmented * float64(c.QueueSize) / wait
	case sim.QueuePrescheduled:
		return effPresched * float64(c.QueueSize) / wait
	case sim.QueueFIFO:
		// Head-of-line blocking in the in-order FIFOs caps reach at a
		// fixed fraction of capacity: a blocked head strands its whole
		// FIFO no matter how few entries are actually waiting, so the
		// waiting-fraction amplification does not apply.
		return effFIFO * float64(c.QueueSize)
	case sim.QueueDistance:
		return effDistance * float64(c.QueueSize) / wait
	}
	return effIdeal * float64(c.QueueSize) / wait
}

// designQual is the issue-quality multiplier of a design at ample
// capacity (see the qual* constants).
func designQual(q sim.QueueKind) float64 {
	switch q {
	case sim.QueueSegmented:
		return qualSegmented
	case sim.QueuePrescheduled:
		return qualPresched
	case sim.QueueFIFO:
		return qualFIFO
	case sim.QueueDistance:
		return qualDistance
	}
	return qualIdeal
}

// chainReach is the window a finite chain-wire budget sustains: one wire
// per chain head, heads spawned by latency-unpredictable instructions.
// The hit/miss predictor narrows "unpredictable" from every load to
// (predicted) missing loads, floored by its own mispredicts.
func chainReach(p trace.Profile, c sim.Config, missL1 float64) float64 {
	headFrac := p.MixFrac[isa.Load]
	if c.Segmented.UseHMP {
		headFrac *= math.Min(1, missL1+hmpFloor)
	}
	if headFrac < 1e-4 {
		headFrac = 1e-4
	}
	return chainEff * float64(c.Segmented.MaxChains) / headFrac
}

// depthAt extrapolates the window critical path to an arbitrary window
// size from the profile's two measured points (ChainSubWindow and
// ChainWindow): proportional below the first, linear through both above.
func depthAt(p trace.Profile, w float64) float64 {
	d64, d256 := p.CritPathSub, p.CritPathWin
	if d64 <= 0 {
		return 1
	}
	var d float64
	if w <= trace.ChainSubWindow {
		d = d64 * w / trace.ChainSubWindow
	} else {
		d = d64 + (d256-d64)*(w-trace.ChainSubWindow)/(trace.ChainWindow-trace.ChainSubWindow)
	}
	return math.Max(1, math.Min(d, w))
}

// stepCost is the mean latency of one critical-path step, weighted by
// the profile's critical-path class mix. Loads on the critical path pay
// the EA calculation plus the average memory access time; everything
// else pays its FU latency.
func stepCost(p trace.Profile, c sim.Config, missL1, missL2 float64) float64 {
	amat := float64(c.Memory.L1D.HitLatency) +
		missL1*(float64(c.Memory.L2.HitLatency)+missL2*float64(c.Memory.MemLatency))
	cost := 0.0
	for cl := isa.Class(0); cl < isa.NumClasses; cl++ {
		f := p.CritClassFrac[cl]
		if f == 0 {
			continue
		}
		lat := float64(cl.Latency())
		if cl == isa.Load {
			lat += amat
		}
		cost += f * lat
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

// MissRates estimates the workload's L1-data and L2 load miss rates from
// the profile's footprint and streaming proxies: a compulsory/streaming
// term (lines never seen before always miss) plus a capacity term (the
// share of the footprint a cache cannot hold, skewed because reuse
// concentrates on hot lines). Exported for the validation tests and
// DESIGN.md's worked example.
func MissRates(p trace.Profile, c sim.Config) (l1, l2 float64) {
	foot := float64(p.UniqueLines) * 64
	new := p.NewLinesPerLoad
	// First-touch lines always miss; the reusing remainder misses on the
	// share of the footprint the cache cannot hold (skewed — reuse
	// concentrates on hot lines).
	l1 = math.Min(1, new+(1-new)*capMissSkew*excessFrac(foot, float64(c.Memory.L1D.Size)))
	l2raw := math.Min(1, new+(1-new)*capMissSkew*excessFrac(foot, float64(c.Memory.L2.Size)))
	if l1 > 0 {
		// L2's rate is conditional on missing L1: compulsory misses go
		// all the way down, capacity misses mostly stop at a fitting L2.
		l2 = math.Min(1, l2raw/l1)
	}
	return l1, l2
}

func excessFrac(foot, capacity float64) float64 {
	if foot <= capacity || foot == 0 {
		return 0
	}
	return (foot - capacity) / foot
}

// Mispredict estimates the configured predictor's steady-state
// mispredict rate: the profiling proxy's measured local-predictor miss
// (Profile.BranchLocalMiss) scaled to the simulated hybrid. Predictor
// table capacity only matters through aliasing — these traces touch a
// handful of static branches (Profile.BranchSites is 1-15), so every
// grid variant's tables hold the working set and measured sim rates
// are identical across them; tables smaller than the working set
// would alias and the rate climbs with the square root of the
// overcommit. Capped at coin-flipping.
func Mispredict(p trace.Profile, c sim.Config) float64 {
	mp := hybridAdvantage * p.BranchLocalMiss
	sites := float64(p.BranchSites)
	if entries := float64(c.BranchPredictor.LocalEntries); sites > 0 && entries > 0 && entries < sites {
		mp *= math.Sqrt(sites / entries)
	}
	return math.Min(0.5, mp)
}
