package model

import (
	"math"
	"sort"
)

// Point is one scored grid point for frontier selection: the Pareto cost
// axis (total queue entries) and the estimated IPC. Key carries the
// caller's grid-point identity through sorting.
type Point struct {
	Key     string
	Entries int
	IPC     float64
}

// frontierMinGain is the minimum relative IPC improvement an
// entries-group must predict over every cheaper group to join the
// frontier. Without it the saturated tail of a sweep — where every
// larger machine is predicted within slack of the plateau — would all
// survive screening, defeating its purpose: once the predicted curve
// flattens, spending more entries for <0.1% predicted gain is never
// frontier material.
const frontierMinGain = 1e-3

// Frontier selects the predicted Pareto frontier of IPC versus entries,
// widened by a relative slack: an entries-group joins the frontier when
// its best point is predicted more than frontierMinGain better than
// everything cheaper, and within a joining group every point within
// slack of the group's best survives. Slack is the screening safety
// margin — the estimator ranks well but not perfectly, so near-frontier
// points are simulated too rather than discarded on a hairline
// prediction. Returns indices into points, ascending; the selection is
// deterministic (ties broken by Key).
func Frontier(points []Point, slack float64) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.Entries != pb.Entries {
			return pa.Entries < pb.Entries
		}
		if pa.IPC != pb.IPC {
			return pa.IPC > pb.IPC
		}
		return pa.Key < pb.Key
	})
	var out []int
	best := math.Inf(-1)
	for g := 0; g < len(idx); {
		h := g
		groupBest := math.Inf(-1)
		for ; h < len(idx) && points[idx[h]].Entries == points[idx[g]].Entries; h++ {
			if v := points[idx[h]].IPC; v > groupBest {
				groupBest = v
			}
		}
		if groupBest > best*(1+frontierMinGain) {
			for ; g < h; g++ {
				if points[idx[g]].IPC >= (1-slack)*groupBest {
					out = append(out, idx[g])
				}
			}
		}
		g = h
		if groupBest > best {
			best = groupBest
		}
	}
	sort.Ints(out)
	return out
}

// Sample draws k distinct indices from [0, n) with a seeded SplitMix64
// generator — the audit set of a pre-screened sweep. Deterministic for a
// given (seed, n, k); returns ascending indices. k >= n returns all of
// them.
func Sample(seed uint64, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Partial Fisher-Yates over an index permutation.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := seed + 0x9e3779b97f4a7c15
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < k; i++ {
		j := i + int(next()%uint64(n-i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}

// Spearman returns the rank correlation of two equal-length series, with
// ties assigned average ranks (the tie-corrected form: Pearson on the
// rank vectors). Returns 0 when either series has no rank variance.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

// ranks assigns 1-based average ranks, ties sharing their mean rank.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for g := 0; g < len(idx); {
		h := g
		for h < len(idx) && v[idx[h]] == v[idx[g]] {
			h++
		}
		avg := float64(g+h+1) / 2 // mean of 1-based ranks g+1..h
		for ; g < h; g++ {
			r[idx[g]] = avg
		}
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// MAPE returns the mean absolute percentage error of est against ref,
// skipping reference zeros.
func MAPE(est, ref []float64) float64 {
	sum, n := 0.0, 0
	for i := range est {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(est[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
