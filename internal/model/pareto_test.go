package model

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestFrontier(t *testing.T) {
	pts := []Point{
		{Key: "a", Entries: 64, IPC: 1.0},
		{Key: "b", Entries: 128, IPC: 1.5},
		{Key: "c", Entries: 128, IPC: 1.46}, // within 5% of b: survives with it
		{Key: "d", Entries: 128, IPC: 1.0},  // dominated inside its group
		{Key: "e", Entries: 256, IPC: 1.4},  // worse than the cheaper b: dominated
		{Key: "f", Entries: 256, IPC: 2.0},
		{Key: "g", Entries: 512, IPC: 2.0},    // saturated: no predicted gain over f
		{Key: "h", Entries: 1024, IPC: 2.001}, // gain below frontierMinGain: still out
	}
	got := Frontier(pts, 0.05)
	want := []int{0, 1, 2, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Frontier = %v, want %v", got, want)
	}

	// Zero slack keeps only per-group maxima that beat every cheaper group.
	got = Frontier(pts, 0)
	want = []int{0, 1, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Frontier(slack=0) = %v, want %v", got, want)
	}

	if got := Frontier(nil, 0.05); len(got) != 0 {
		t.Errorf("Frontier(nil) = %v, want empty", got)
	}

	// A single point is always on the frontier.
	if got := Frontier([]Point{{Key: "x", Entries: 10, IPC: 0.5}}, 0); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Frontier(single) = %v", got)
	}
}

func TestFrontierTieDeterminism(t *testing.T) {
	// Identical Entries+IPC in different input orders select the same keys.
	a := []Point{{Key: "x", Entries: 8, IPC: 1}, {Key: "y", Entries: 8, IPC: 1}}
	b := []Point{{Key: "y", Entries: 8, IPC: 1}, {Key: "x", Entries: 8, IPC: 1}}
	fa, fb := Frontier(a, 0), Frontier(b, 0)
	keys := func(pts []Point, idx []int) []string {
		var out []string
		for _, i := range idx {
			out = append(out, pts[i].Key)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(keys(a, fa), keys(b, fb)) {
		t.Errorf("tie selection depends on input order: %v vs %v", keys(a, fa), keys(b, fb))
	}
}

func TestSample(t *testing.T) {
	s := Sample(42, 1000, 50)
	if len(s) != 50 {
		t.Fatalf("len = %d, want 50", len(s))
	}
	seen := map[int]bool{}
	for i, v := range s {
		if v < 0 || v >= 1000 {
			t.Errorf("index %d out of range", v)
		}
		if seen[v] {
			t.Errorf("duplicate index %d", v)
		}
		seen[v] = true
		if i > 0 && s[i-1] >= v {
			t.Errorf("not ascending at %d", i)
		}
	}
	// Deterministic per seed, different across seeds.
	if !reflect.DeepEqual(s, Sample(42, 1000, 50)) {
		t.Error("Sample not deterministic")
	}
	if reflect.DeepEqual(s, Sample(43, 1000, 50)) {
		t.Error("Sample identical across seeds")
	}
	// k >= n returns everything.
	all := Sample(7, 5, 9)
	if !reflect.DeepEqual(all, []int{0, 1, 2, 3, 4}) {
		t.Errorf("Sample(k>=n) = %v", all)
	}
}

func TestSpearman(t *testing.T) {
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone: %v, want 1", got)
	}
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed: %v, want -1", got)
	}
	// Ties get average ranks: a tied pair straddling the right order still
	// correlates strongly but below 1.
	got := Spearman([]float64{1, 2, 2, 4}, []float64{1, 2, 3, 4})
	if got <= 0.9 || got >= 1 {
		t.Errorf("tied: %v, want (0.9, 1)", got)
	}
	// Zero variance on either side yields 0, not NaN.
	if got := Spearman([]float64{5, 5, 5}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("flat est: %v, want 0", got)
	}
	if got := Spearman([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("length mismatch: %v, want 0", got)
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{1.1, 0.9}, []float64{1, 1})
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	// Reference zeros are skipped rather than dividing by zero.
	got = MAPE([]float64{1.2, 5}, []float64{1, 0})
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MAPE with zero ref = %v, want 0.2", got)
	}
	if got := MAPE(nil, nil); got != 0 {
		t.Errorf("MAPE(nil) = %v, want 0", got)
	}
}
