package model

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// referenceGrid is the validation grid: the shapes the BENCH/Fig3 sweeps
// actually explore — every queue design across sizes, chain budgets for
// the segmented design, and ROB variations — small enough to simulate
// fully in a test run.
func referenceGrid() []sim.Config {
	var grid []sim.Config
	for _, size := range []int{16, 32, 64, 128, 256, 512} {
		grid = append(grid, sim.DefaultConfig(sim.QueueIdeal, size))
	}
	// Starved machines: the mega-grid's low ROB/LSQ factors.
	tiny := sim.DefaultConfig(sim.QueueIdeal, 32)
	tiny.ROBSize, tiny.LSQSize = 32, 16
	grid = append(grid, tiny)
	tiny2 := sim.DefaultConfig(sim.QueueIdeal, 64)
	tiny2.ROBSize, tiny2.LSQSize = 64, 32
	grid = append(grid, tiny2)
	grid = append(grid, sim.SegmentedConfig(32, 8, true, true))
	grid = append(grid,
		sim.SegmentedConfig(512, 0, true, true),
		sim.SegmentedConfig(512, 128, true, true),
		sim.SegmentedConfig(512, 64, true, true),
		sim.SegmentedConfig(256, 64, true, true),
		sim.SegmentedConfig(128, 32, true, true),
		sim.SegmentedConfig(64, 16, true, true),
		sim.PrescheduledConfig(128),
		sim.PrescheduledConfig(320),
		sim.PrescheduledConfig(704),
		sim.FIFOConfig(64),
		sim.FIFOConfig(256),
		sim.DistanceConfig(128),
		sim.DistanceConfig(320),
	)
	robVar := sim.DefaultConfig(sim.QueueIdeal, 128)
	robVar.ROBSize = 128
	grid = append(grid, robVar)
	robVar2 := sim.DefaultConfig(sim.QueueIdeal, 128)
	robVar2.ROBSize = 256
	robVar2.LSQSize = 64
	grid = append(grid, robVar2)
	return grid
}

func gridKey(c sim.Config) string {
	ch := ""
	if c.Queue == sim.QueueSegmented {
		ch = fmt.Sprintf("/ch%d", c.Segmented.MaxChains)
	}
	return fmt.Sprintf("%s/%d%s/rob%d/lsq%d", c.Queue, c.QueueSize, ch, c.ROBSize, c.LSQSize)
}

const (
	validateN    = 3000
	validateWarm = 20000
)

// simulateGrid runs every grid point from one shared warm checkpoint and
// returns simulated IPCs in grid order.
func simulateGrid(t *testing.T, wl string, grid []sim.Config) []float64 {
	t.Helper()
	ck, err := sim.NewCheckpoint(sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.ContextSpec{Workload: wl, Seed: 1, Warm: validateWarm})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Release()
	out := make([]float64, len(grid))
	for i, cfg := range grid {
		p, err := ck.Fork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(validateN)
		if err != nil {
			t.Fatal(err)
		}
		p.Recycle()
		out[i] = r.IPC
	}
	return out
}

func profileFor(t *testing.T, wl string) trace.Profile {
	t.Helper()
	s, err := trace.New(wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Characterize(s, 50000)
}

// flatSpread is the relative simulated-IPC spread below which a grid is
// considered unrankable: when every configuration performs within 15% of
// every other, rank order is dominated by noise, mis-ranking costs at
// most that spread, and the per-workload Spearman gate is waived
// (DESIGN.md §12). The pooled cross-workload gate below always applies.
const flatSpread = 0.15

// TestEstimatorRanking is the calibration gate: on the fully simulated
// reference grid, the analytic estimates must rank configurations with
// Spearman >= 0.8 — per workload wherever the grid is rankable, and
// pooled across all workloads unconditionally. This is the same
// threshold the pre-screened sweeps' audit sample is held to
// (DESIGN.md §12).
func TestEstimatorRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the reference grid")
	}
	grid := referenceGrid()
	wls := []string{"gcc", "swim", "twolf", "ammp"}
	var mu sync.Mutex
	var allEst, allSim []float64
	t.Run("grid", func(t *testing.T) {
		for _, wl := range wls {
			wl := wl
			t.Run(wl, func(t *testing.T) {
				t.Parallel()
				prof := profileFor(t, wl)
				l1, l2 := MissRates(prof, grid[0])
				t.Logf("%s: foot %dKB missL1 %.2f missL2 %.2f mp %.3f brFrac %.2f loadFrac %.2f fpFrac %.2f crit %.0f/%.0f",
					wl, prof.UniqueLines*64/1024, l1, l2, Mispredict(prof, grid[0]),
					prof.BranchFraction(), prof.MixFrac[7], prof.FpFraction(),
					prof.CritPathSub, prof.CritPathWin)
				simIPC := simulateGrid(t, wl, grid)
				est := make([]float64, len(grid))
				lo, hi := math.Inf(1), 0.0
				for i, cfg := range grid {
					e := For(prof, cfg)
					est[i] = e.IPC
					lo, hi = math.Min(lo, simIPC[i]), math.Max(hi, simIPC[i])
					t.Logf("%-34s est %6.3f sim %6.3f  W=%5.0f bound=%s",
						gridKey(cfg), e.IPC, simIPC[i], e.Window, e.Bound)
				}
				mu.Lock()
				allEst = append(allEst, est...)
				allSim = append(allSim, simIPC...)
				mu.Unlock()
				rho := Spearman(est, simIPC)
				mape := MAPE(est, simIPC)
				spread := (hi - lo) / hi
				t.Logf("%s: spearman %.3f mape %.0f%% spread %.0f%%", wl, rho, 100*mape, 100*spread)
				if spread < flatSpread {
					t.Logf("%s: simulated grid is flat (spread %.0f%% < %.0f%%); per-workload rank gate waived",
						wl, 100*spread, 100*flatSpread)
					return
				}
				if rho < 0.8 {
					t.Errorf("%s: Spearman %.3f below the 0.8 screening contract", wl, rho)
				}
			})
		}
	})
	if len(allSim) != len(wls)*len(grid) {
		t.Fatalf("collected %d points, want %d", len(allSim), len(wls)*len(grid))
	}
	rho := Spearman(allEst, allSim)
	t.Logf("pooled: spearman %.3f mape %.0f%% over %d points", rho, 100*MAPE(allEst, allSim), len(allSim))
	if rho < 0.8 {
		t.Errorf("pooled Spearman %.3f below the 0.8 screening contract", rho)
	}
}

// TestFrontierContainsTrueBest pins the acceptance contract on the
// reference grid: the configuration with the best simulated IPC per
// entry must be inside the predicted frontier (with the default
// screening slack), for every workload — otherwise a pre-screened sweep
// could discard the very point a full sweep would have crowned.
func TestFrontierContainsTrueBest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the reference grid")
	}
	grid := referenceGrid()
	const slack = 0.05
	for _, wl := range []string{"gcc", "swim", "twolf", "ammp"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			prof := profileFor(t, wl)
			simIPC := simulateGrid(t, wl, grid)
			points := make([]Point, len(grid))
			bestIdx, bestVal := 0, 0.0
			for i, cfg := range grid {
				points[i] = Point{Key: gridKey(cfg), Entries: Entries(cfg), IPC: For(prof, cfg).IPC}
				if v := simIPC[i] / float64(Entries(cfg)); v > bestVal {
					bestIdx, bestVal = i, v
				}
			}
			front := Frontier(points, slack)
			i := sort.SearchInts(front, bestIdx)
			if i >= len(front) || front[i] != bestIdx {
				t.Errorf("%s: true best-IPC-per-entry point %s (sim %.2f IPC / %d entries) not in predicted frontier (%d of %d points)",
					wl, gridKey(grid[bestIdx]), simIPC[bestIdx], Entries(grid[bestIdx]), len(front), len(grid))
				for _, i := range front {
					t.Logf("frontier: %s", points[i].Key)
				}
			}
		})
	}
}
