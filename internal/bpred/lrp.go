package bpred

import "fmt"

// LeftRightPredictor is the critical-operand predictor of §4.3: a
// PC-indexed table of 2-bit saturating counters predicting which of an
// instruction's two source operands ("left" = first, "right" = second)
// will arrive later. The segmented IQ uses it to assign a two-outstanding-
// operand instruction to a single chain — the one expected to resolve
// last — halving per-entry chain-tracking logic and reducing chain
// allocations. A similar predictor appears in Stark et al.
type LeftRightPredictor struct {
	table []SatCounter

	lookups uint64
	correct uint64
}

// LRPDefaultEntries is the table size used when the paper's unspecified
// geometry is wanted.
const LRPDefaultEntries = 4096

// NewLRP builds a left/right predictor with the given table size.
func NewLRP(entries int) (*LeftRightPredictor, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: LRP entries %d must be a positive power of two", entries)
	}
	l := &LeftRightPredictor{table: make([]SatCounter, entries)}
	for i := range l.table {
		// Start weakly predicting "left": with no information the first
		// operand is as good a guess as any.
		l.table[i] = NewSatCounter(2, 2)
	}
	return l, nil
}

// MustNewLRP is NewLRP with the default geometry.
func MustNewLRP() *LeftRightPredictor {
	l, err := NewLRP(LRPDefaultEntries)
	if err != nil {
		panic(err)
	}
	return l
}

func (l *LeftRightPredictor) slot(pc uint64) *SatCounter {
	return &l.table[(pc>>2)&uint64(len(l.table)-1)]
}

// PredictLeftLater reports whether the left (first) source operand of the
// instruction at pc is predicted to become available later than the right.
func (l *LeftRightPredictor) PredictLeftLater(pc uint64) bool {
	return l.slot(pc).MSB()
}

// Update trains the predictor with the observed outcome: leftLater is true
// if the left operand actually arrived later.
func (l *LeftRightPredictor) Update(pc uint64, leftLater bool) {
	c := l.slot(pc)
	l.lookups++
	if c.MSB() == leftLater {
		l.correct++
	}
	if leftLater {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Accuracy returns the fraction of resolved predictions that were correct.
func (l *LeftRightPredictor) Accuracy() float64 {
	if l.lookups == 0 {
		return 0
	}
	return float64(l.correct) / float64(l.lookups)
}
