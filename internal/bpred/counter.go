// Package bpred implements the prediction structures used by the
// simulator: the hybrid local/global branch predictor and branch target
// buffer of Table 1, and the two chain-reduction predictors of the paper —
// the load hit/miss predictor (HMP, §4.4) and the left/right critical
// operand predictor (LRP, §4.3).
package bpred

import "fmt"

// SatCounter is an n-bit saturating counter, the building block of every
// predictor in this package.
type SatCounter struct {
	v   uint32
	max uint32
}

// NewSatCounter returns a counter of the given bit width initialised to v.
func NewSatCounter(bits int, v uint32) SatCounter {
	if bits < 1 || bits > 31 {
		panic(fmt.Sprintf("bpred: counter width %d out of range", bits))
	}
	c := SatCounter{max: (1 << bits) - 1}
	c.Set(v)
	return c
}

// Inc increments, saturating at the maximum.
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Dec decrements, saturating at zero.
func (c *SatCounter) Dec() {
	if c.v > 0 {
		c.v--
	}
}

// Clear resets the counter to zero.
func (c *SatCounter) Clear() { c.v = 0 }

// Set assigns a value, clamping to the counter's range.
func (c *SatCounter) Set(v uint32) {
	if v > c.max {
		v = c.max
	}
	c.v = v
}

// Value returns the current count.
func (c SatCounter) Value() uint32 { return c.v }

// Max returns the saturation value.
func (c SatCounter) Max() uint32 { return c.max }

// MSB reports whether the counter's top bit is set — the usual
// taken/not-taken decision point.
func (c SatCounter) MSB() bool { return c.v > c.max/2 }
