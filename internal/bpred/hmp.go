package bpred

import "fmt"

// HitMissPredictor is the dynamic cache hit/miss predictor of §4.4: a
// PC-indexed table of 4-bit saturating counters, incremented on a hit,
// cleared on a miss, predicting "hit" only when the counter exceeds a high
// confidence threshold (13 in the paper). The segmented IQ uses it to
// avoid creating chains for loads that will almost certainly hit the L1.
type HitMissPredictor struct {
	table     []SatCounter
	threshold uint32

	hitPreds        uint64 // predictions that said "hit"
	hitPredsCorrect uint64 // ... that were actually hits
	actualHits      uint64
	actualMisses    uint64
}

// HMPDefaultEntries is the predictor table size. The paper does not state
// one; 4K PC-indexed entries comfortably covers the static load footprint
// of the workloads.
const HMPDefaultEntries = 4096

// HMPDefaultThreshold reproduces the paper: "predict a hit only if the
// counter is greater than 13".
const HMPDefaultThreshold = 13

// NewHMP builds a hit/miss predictor with the given table size (a power of
// two) and confidence threshold.
func NewHMP(entries int, threshold uint32) (*HitMissPredictor, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: HMP entries %d must be a positive power of two", entries)
	}
	if threshold > 15 {
		return nil, fmt.Errorf("bpred: HMP threshold %d exceeds 4-bit counter range", threshold)
	}
	h := &HitMissPredictor{table: make([]SatCounter, entries), threshold: threshold}
	for i := range h.table {
		h.table[i] = NewSatCounter(4, 0)
	}
	return h, nil
}

// MustNewHMP is NewHMP with the default geometry on error-free inputs.
func MustNewHMP() *HitMissPredictor {
	h, err := NewHMP(HMPDefaultEntries, HMPDefaultThreshold)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *HitMissPredictor) slot(pc uint64) *SatCounter {
	return &h.table[(pc>>2)&uint64(len(h.table)-1)]
}

// PredictHit reports whether the load at pc is confidently predicted to
// hit in the L1 data cache.
func (h *HitMissPredictor) PredictHit(pc uint64) bool {
	pred := h.slot(pc).Value() > h.threshold
	if pred {
		h.hitPreds++
	}
	return pred
}

// Update trains the predictor with the actual outcome of the load at pc.
// The caller must have called PredictHit for this dynamic load first if it
// wants accuracy accounting to be meaningful.
func (h *HitMissPredictor) Update(pc uint64, hit bool) {
	c := h.slot(pc)
	wasHitPred := c.Value() > h.threshold
	if hit {
		h.actualHits++
		if wasHitPred {
			h.hitPredsCorrect++
		}
		c.Inc()
	} else {
		h.actualMisses++
		c.Clear()
	}
}

// HitPredictionAccuracy returns the fraction of "hit" predictions that
// were actually hits (the paper reports >98%).
func (h *HitMissPredictor) HitPredictionAccuracy() float64 {
	if h.hitPreds == 0 {
		return 0
	}
	return float64(h.hitPredsCorrect) / float64(h.hitPreds)
}

// HitCoverage returns the fraction of actual hits that were predicted as
// hits (the paper reports >83% on average).
func (h *HitMissPredictor) HitCoverage() float64 {
	if h.actualHits == 0 {
		return 0
	}
	return float64(h.hitPredsCorrect) / float64(h.actualHits)
}

// ActualHitRate returns the observed load hit rate.
func (h *HitMissPredictor) ActualHitRate() float64 {
	total := h.actualHits + h.actualMisses
	if total == 0 {
		return 0
	}
	return float64(h.actualHits) / float64(total)
}
