package bpred

import "fmt"

// Config describes the hybrid branch predictor of Table 1 ("Hybrid
// local/global (a la 21264)").
type Config struct {
	GlobalHistBits int // global history register width; PHT has 2^bits entries
	LocalHistBits  int // per-branch history width; local PHT has 2^bits entries
	LocalEntries   int // number of per-branch history registers (power of two)
	ChoiceHistBits int // choice PHT indexed by this many global history bits
	LocalCtrBits   int // local PHT counter width (3 on the 21264)
	GlobalCtrBits  int // global PHT counter width
	ChoiceCtrBits  int // choice PHT counter width
}

// DefaultConfig is the Table 1 configuration: 13-bit global history with an
// 8K-entry PHT, 2K 11-bit local histories with a 2K-entry PHT, and a
// 13-bit-history 8K-entry choice PHT.
func DefaultConfig() Config {
	return Config{
		GlobalHistBits: 13,
		LocalHistBits:  11,
		LocalEntries:   2048,
		ChoiceHistBits: 13,
		LocalCtrBits:   3,
		GlobalCtrBits:  2,
		ChoiceCtrBits:  2,
	}
}

func (c Config) validate() error {
	if c.GlobalHistBits < 1 || c.GlobalHistBits > 24 {
		return fmt.Errorf("bpred: global history bits %d out of range", c.GlobalHistBits)
	}
	if c.LocalHistBits < 1 || c.LocalHistBits > 24 {
		return fmt.Errorf("bpred: local history bits %d out of range", c.LocalHistBits)
	}
	if c.ChoiceHistBits < 1 || c.ChoiceHistBits > 24 {
		return fmt.Errorf("bpred: choice history bits %d out of range", c.ChoiceHistBits)
	}
	if c.LocalEntries <= 0 || c.LocalEntries&(c.LocalEntries-1) != 0 {
		return fmt.Errorf("bpred: local entries %d must be a positive power of two", c.LocalEntries)
	}
	return nil
}

// Predictor is the hybrid direction predictor. A choice table selects per
// prediction between a global-history predictor and a per-branch local
// history predictor.
type Predictor struct {
	cfg Config

	globalHist uint32
	globalPHT  []SatCounter
	localHist  []uint32
	localPHT   []SatCounter
	choicePHT  []SatCounter

	// Stats.
	lookups    uint64
	correct    uint64
	globalUsed uint64
	localUsed  uint64
}

// NewPredictor builds a predictor from cfg.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:       cfg,
		globalPHT: make([]SatCounter, 1<<cfg.GlobalHistBits),
		localHist: make([]uint32, cfg.LocalEntries),
		localPHT:  make([]SatCounter, 1<<cfg.LocalHistBits),
		choicePHT: make([]SatCounter, 1<<cfg.ChoiceHistBits),
	}
	for i := range p.globalPHT {
		p.globalPHT[i] = NewSatCounter(cfg.GlobalCtrBits, (1<<cfg.GlobalCtrBits)/2)
	}
	for i := range p.localPHT {
		p.localPHT[i] = NewSatCounter(cfg.LocalCtrBits, (1<<cfg.LocalCtrBits)/2)
	}
	for i := range p.choicePHT {
		p.choicePHT[i] = NewSatCounter(cfg.ChoiceCtrBits, (1<<cfg.ChoiceCtrBits)/2)
	}
	return p, nil
}

// MustNewPredictor is NewPredictor for known-good configs.
func MustNewPredictor(cfg Config) *Predictor {
	p, err := NewPredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Predictor) globalIndex() uint32 {
	return p.globalHist & ((1 << p.cfg.GlobalHistBits) - 1)
}

func (p *Predictor) choiceIndex() uint32 {
	return p.globalHist & ((1 << p.cfg.ChoiceHistBits) - 1)
}

func (p *Predictor) localSlot(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.LocalEntries-1))
}

func (p *Predictor) localIndex(pc uint64) uint32 {
	return p.localHist[p.localSlot(pc)] & ((1 << p.cfg.LocalHistBits) - 1)
}

// Predict returns the predicted direction for the branch at pc. It does
// not modify any state; call Update with the resolved outcome.
func (p *Predictor) Predict(pc uint64) bool {
	if p.choicePHT[p.choiceIndex()].MSB() {
		return p.globalPHT[p.globalIndex()].MSB()
	}
	return p.localPHT[p.localIndex(pc)].MSB()
}

// Update trains the predictor with the resolved outcome of the branch at
// pc. The simulator's front end stalls on a misprediction until the branch
// resolves, so in-order immediate update is exact for this pipeline model.
func (p *Predictor) Update(pc uint64, taken bool) {
	gIdx := p.globalIndex()
	lIdx := p.localIndex(pc)
	cIdx := p.choiceIndex()

	gPred := p.globalPHT[gIdx].MSB()
	lPred := p.localPHT[lIdx].MSB()
	useGlobal := p.choicePHT[cIdx].MSB()

	p.lookups++
	pred := lPred
	if useGlobal {
		pred = gPred
		p.globalUsed++
	} else {
		p.localUsed++
	}
	if pred == taken {
		p.correct++
	}

	// Train the choice table only when the component predictors disagree.
	if gPred != lPred {
		if gPred == taken {
			p.choicePHT[cIdx].Inc()
		} else {
			p.choicePHT[cIdx].Dec()
		}
	}
	// Train both components.
	if taken {
		p.globalPHT[gIdx].Inc()
		p.localPHT[lIdx].Inc()
	} else {
		p.globalPHT[gIdx].Dec()
		p.localPHT[lIdx].Dec()
	}
	// Shift histories.
	bit := uint32(0)
	if taken {
		bit = 1
	}
	p.globalHist = (p.globalHist << 1) | bit
	slot := p.localSlot(pc)
	p.localHist[slot] = (p.localHist[slot] << 1) | bit
}

// Accuracy returns the fraction of direction predictions that were correct.
func (p *Predictor) Accuracy() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.lookups)
}

// Lookups returns the number of resolved predictions.
func (p *Predictor) Lookups() uint64 { return p.lookups }

// GlobalUseFraction returns how often the choice table selected the global
// component.
func (p *Predictor) GlobalUseFraction() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.globalUsed) / float64(p.lookups)
}
