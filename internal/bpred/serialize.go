package bpred

import (
	"fmt"

	"repro/internal/codec"
)

// Checkpoint serialization: the branch structures are the bulk of a warmed
// machine's trained state, so they encode their full table contents — the
// same state Clone deep-copies. Each section is self-describing (the
// predictor writes its own Config, the BTB its geometry) and validated on
// decode, so a file whose branch-structure geometry drifted from its
// header is rejected here rather than producing a silently mistrained
// machine.

// Config returns the configuration the predictor was built with, so a
// checkpoint loader can verify a decoded predictor against the machine
// configuration it is being wired into.
func (p *Predictor) Config() Config { return p.cfg }

// Geometry returns the BTB's total entry count and associativity.
func (b *BTB) Geometry() (entries, ways int) { return b.sets * b.ways, b.ways }

// EncodeTo writes the predictor's configuration, tables and statistics.
func (p *Predictor) EncodeTo(w *codec.Writer) {
	w.Int(p.cfg.GlobalHistBits)
	w.Int(p.cfg.LocalHistBits)
	w.Int(p.cfg.LocalEntries)
	w.Int(p.cfg.ChoiceHistBits)
	w.Int(p.cfg.LocalCtrBits)
	w.Int(p.cfg.GlobalCtrBits)
	w.Int(p.cfg.ChoiceCtrBits)
	w.U32(p.globalHist)
	for _, c := range p.globalPHT {
		w.U32(c.Value())
	}
	for _, h := range p.localHist {
		w.U32(h)
	}
	for _, c := range p.localPHT {
		w.U32(c.Value())
	}
	for _, c := range p.choicePHT {
		w.U32(c.Value())
	}
	w.U64(p.lookups)
	w.U64(p.correct)
	w.U64(p.globalUsed)
	w.U64(p.localUsed)
}

// DecodePredictor reads a predictor written by EncodeTo.
func DecodePredictor(r *codec.Reader) (*Predictor, error) {
	cfg := Config{
		GlobalHistBits: r.Int(),
		LocalHistBits:  r.Int(),
		LocalEntries:   r.Int(),
		ChoiceHistBits: r.Int(),
		LocalCtrBits:   r.Int(),
		GlobalCtrBits:  r.Int(),
		ChoiceCtrBits:  r.Int(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cfg.LocalEntries > 1<<24 {
		return nil, fmt.Errorf("bpred: decoded local-entry count %d implausibly large", cfg.LocalEntries)
	}
	p, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	p.globalHist = r.U32()
	for i := range p.globalPHT {
		p.globalPHT[i].Set(r.U32())
	}
	for i := range p.localHist {
		p.localHist[i] = r.U32()
	}
	for i := range p.localPHT {
		p.localPHT[i].Set(r.U32())
	}
	for i := range p.choicePHT {
		p.choicePHT[i].Set(r.U32())
	}
	p.lookups = r.U64()
	p.correct = r.U64()
	p.globalUsed = r.U64()
	p.localUsed = r.U64()
	return p, r.Err()
}

// EncodeTo writes the BTB's geometry, entries and statistics.
func (b *BTB) EncodeTo(w *codec.Writer) {
	w.Int(b.sets * b.ways)
	w.Int(b.ways)
	for i := range b.lines {
		e := &b.lines[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.U64(e.target)
		w.U64(e.lru)
	}
	w.U64(b.lookups)
	w.U64(b.hits)
	w.U64(b.stamp)
}

// DecodeBTB reads a BTB written by EncodeTo.
func DecodeBTB(r *codec.Reader) (*BTB, error) {
	entries, ways := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if entries < 0 || entries > 1<<24 {
		return nil, fmt.Errorf("bpred: decoded BTB entry count %d implausibly large", entries)
	}
	b, err := NewBTB(entries, ways)
	if err != nil {
		return nil, err
	}
	for i := range b.lines {
		e := &b.lines[i]
		e.valid = r.Bool()
		e.tag = r.U64()
		e.target = r.U64()
		e.lru = r.U64()
	}
	b.lookups = r.U64()
	b.hits = r.U64()
	b.stamp = r.U64()
	return b, r.Err()
}
