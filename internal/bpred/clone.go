package bpred

// The predictors are plain table state (saturating counters, histories,
// LRU stamps), so cloning is a deep copy of the slices plus a struct copy
// for the scalars. Clones share nothing mutable with their receiver; a
// warmed predictor can therefore be cloned once per forked machine.

// Clone returns an independent copy of the direction predictor.
func (p *Predictor) Clone() *Predictor {
	n := new(Predictor)
	*n = *p
	n.globalPHT = append([]SatCounter(nil), p.globalPHT...)
	n.localHist = append([]uint32(nil), p.localHist...)
	n.localPHT = append([]SatCounter(nil), p.localPHT...)
	n.choicePHT = append([]SatCounter(nil), p.choicePHT...)
	return n
}

// Clone returns an independent copy of the branch target buffer.
func (b *BTB) Clone() *BTB {
	n := new(BTB)
	*n = *b
	n.lines = append([]btbEntry(nil), b.lines...)
	return n
}

// Clone returns an independent copy of the hit/miss predictor. Cloning a
// nil receiver yields nil, so callers need not special-case disabled
// predictors.
func (h *HitMissPredictor) Clone() *HitMissPredictor {
	if h == nil {
		return nil
	}
	n := new(HitMissPredictor)
	*n = *h
	n.table = append([]SatCounter(nil), h.table...)
	return n
}

// Clone returns an independent copy of the left/right predictor, or nil
// for a nil receiver.
func (l *LeftRightPredictor) Clone() *LeftRightPredictor {
	if l == nil {
		return nil
	}
	n := new(LeftRightPredictor)
	*n = *l
	n.table = append([]SatCounter(nil), l.table...)
	return n
}
