package bpred

import "fmt"

// BTB is the branch target buffer of Table 1: 4K entries, 4-way set
// associative, true-LRU replacement within a set.
type BTB struct {
	sets  int
	ways  int
	lines []btbEntry // sets*ways, grouped by set

	lookups uint64
	hits    uint64
	stamp   uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64 // larger = more recently used
}

// NewBTB builds a BTB with the given total entry count and associativity.
func NewBTB(entries, ways int) (*BTB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("bpred: invalid BTB geometry %d entries / %d ways", entries, ways)
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d must be a power of two", sets)
	}
	return &BTB{sets: sets, ways: ways, lines: make([]btbEntry, entries)}, nil
}

// MustNewBTB is NewBTB for known-good geometries.
func MustNewBTB(entries, ways int) *BTB {
	b, err := NewBTB(entries, ways)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *BTB) set(pc uint64) ([]btbEntry, uint64) {
	idx := int((pc >> 2) & uint64(b.sets-1))
	return b.lines[idx*b.ways : (idx+1)*b.ways], (pc >> 2) / uint64(b.sets)
}

// Lookup returns the stored target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	set, tag := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.stamp++
			set[i].lru = b.stamp
			b.hits++
			return set[i].target, true
		}
	}
	return 0, false
}

// Insert records the target of the branch at pc, evicting the set's LRU
// entry if necessary.
func (b *BTB) Insert(pc, target uint64) {
	set, tag := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.stamp++
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.stamp}
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}
