package bpred

import (
	"testing"
	"testing/quick"
)

func TestSatCounter(t *testing.T) {
	c := NewSatCounter(2, 0)
	if c.Max() != 3 {
		t.Fatalf("2-bit max = %d", c.Max())
	}
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Errorf("saturated value = %d, want 3", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Errorf("floored value = %d, want 0", c.Value())
	}
	c.Set(99)
	if c.Value() != 3 {
		t.Errorf("Set should clamp, got %d", c.Value())
	}
	c.Clear()
	if c.Value() != 0 {
		t.Error("Clear failed")
	}
}

func TestSatCounterMSB(t *testing.T) {
	// 2-bit: 0,1 -> false; 2,3 -> true.
	for v, want := range map[uint32]bool{0: false, 1: false, 2: true, 3: true} {
		c := NewSatCounter(2, v)
		if c.MSB() != want {
			t.Errorf("2-bit MSB(%d) = %v", v, c.MSB())
		}
	}
	// 3-bit: threshold at 4.
	if NewSatCounter(3, 3).MSB() || !NewSatCounter(3, 4).MSB() {
		t.Error("3-bit MSB threshold wrong")
	}
	// 1-bit.
	if NewSatCounter(1, 0).MSB() || !NewSatCounter(1, 1).MSB() {
		t.Error("1-bit MSB wrong")
	}
}

func TestSatCounterPanics(t *testing.T) {
	for _, bits := range []int{0, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", bits)
				}
			}()
			NewSatCounter(bits, 0)
		}()
	}
}

// Property: a counter never leaves [0, max].
func TestSatCounterBoundsProperty(t *testing.T) {
	f := func(ops []bool, bits uint8) bool {
		c := NewSatCounter(int(bits%8)+1, 0)
		for _, inc := range ops {
			if inc {
				c.Inc()
			} else {
				c.Dec()
			}
			if c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictorConfigValidation(t *testing.T) {
	bad := []Config{
		{GlobalHistBits: 0, LocalHistBits: 11, LocalEntries: 2048, ChoiceHistBits: 13},
		{GlobalHistBits: 13, LocalHistBits: 0, LocalEntries: 2048, ChoiceHistBits: 13},
		{GlobalHistBits: 13, LocalHistBits: 11, LocalEntries: 1000, ChoiceHistBits: 13},
		{GlobalHistBits: 13, LocalHistBits: 11, LocalEntries: 2048, ChoiceHistBits: 0},
	}
	for i, cfg := range bad {
		if _, err := NewPredictor(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewPredictor(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := MustNewPredictor(DefaultConfig())
	pc := uint64(0x400100)
	for i := 0; i < 64; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("predictor failed to learn always-taken")
	}
	if p.Accuracy() < 0.9 {
		t.Errorf("accuracy %.2f on trivial pattern", p.Accuracy())
	}
	if p.Lookups() != 64 {
		t.Errorf("lookups = %d", p.Lookups())
	}
}

func TestPredictorLearnsLocalPattern(t *testing.T) {
	// Period-2 pattern (T,N,T,N,...) is unlearnable by a plain 2-bit
	// counter but trivial for a local-history predictor.
	p := MustNewPredictor(DefaultConfig())
	pc := uint64(0x400200)
	taken := false
	for i := 0; i < 400; i++ {
		taken = !taken
		p.Update(pc, taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		taken = !taken
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	if correct < 95 {
		t.Errorf("period-2 pattern accuracy %d/100, want near-perfect", correct)
	}
}

func TestPredictorLearnsGlobalCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global
	// history captures it.
	p := MustNewPredictor(DefaultConfig())
	pcA, pcB := uint64(0x400300), uint64(0x400304)
	seq := []bool{true, true, false, true, false, false, true, false}
	for round := 0; round < 200; round++ {
		a := seq[round%len(seq)]
		p.Update(pcA, a)
		p.Update(pcB, a)
	}
	correct := 0
	for round := 0; round < 100; round++ {
		a := seq[round%len(seq)]
		p.Update(pcA, a)
		if p.Predict(pcB) == a {
			correct++
		}
		p.Update(pcB, a)
	}
	if correct < 90 {
		t.Errorf("correlated branch accuracy %d/100", correct)
	}
	if p.GlobalUseFraction() == 0 {
		t.Log("note: choice table never selected global; acceptable if local learned the merged pattern")
	}
}

func TestPredictorEmptyStats(t *testing.T) {
	p := MustNewPredictor(DefaultConfig())
	if p.Accuracy() != 0 || p.GlobalUseFraction() != 0 {
		t.Error("empty predictor stats should be 0")
	}
}

func TestBTBGeometryValidation(t *testing.T) {
	for _, g := range [][2]int{{0, 4}, {4096, 0}, {4097, 4}, {12, 4}} {
		if _, err := NewBTB(g[0], g[1]); err == nil {
			t.Errorf("geometry %v should be rejected", g)
		}
	}
	if _, err := NewBTB(4096, 4); err != nil {
		t.Errorf("Table 1 geometry rejected: %v", err)
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := MustNewBTB(4096, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB should miss")
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
	// Overwrite same branch.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Errorf("overwrite failed: %#x", tgt)
	}
	if b.HitRate() <= 0 {
		t.Error("hit rate should be positive")
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	// Tiny BTB: 8 entries, 4 ways = 2 sets. Fill one set with 4 branches,
	// touch 3 of them, insert a 5th mapping to the same set: the untouched
	// one must be the victim.
	b := MustNewBTB(8, 4)
	// Set index = (pc>>2) & 1, so PCs with (pc>>2) even map to set 0.
	pcs := []uint64{0x00, 0x08, 0x10, 0x18} // all set 0
	for _, pc := range pcs {
		b.Insert(pc, pc+0x1000)
	}
	for _, pc := range pcs[1:] {
		if _, ok := b.Lookup(pc); !ok {
			t.Fatalf("expected hit for %#x", pc)
		}
	}
	b.Insert(0x20, 0x9000) // evicts LRU = 0x00
	if _, ok := b.Lookup(0x00); ok {
		t.Error("LRU entry should have been evicted")
	}
	for _, pc := range append(pcs[1:], 0x20) {
		if _, ok := b.Lookup(pc); !ok {
			t.Errorf("%#x should still be present", pc)
		}
	}
}

func TestBTBEmptyHitRate(t *testing.T) {
	if MustNewBTB(16, 4).HitRate() != 0 {
		t.Error("empty BTB hit rate should be 0")
	}
}

func TestHMPValidation(t *testing.T) {
	if _, err := NewHMP(1000, 13); err == nil {
		t.Error("non-power-of-two table should be rejected")
	}
	if _, err := NewHMP(1024, 16); err == nil {
		t.Error("threshold beyond 4-bit range should be rejected")
	}
}

func TestHMPBehaviour(t *testing.T) {
	h := MustNewHMP()
	pc := uint64(0x500000)
	// Fresh counter: must not predict hit (low confidence).
	if h.PredictHit(pc) {
		t.Error("cold HMP predicted hit")
	}
	// 13 hits: counter reaches 13, still not > 13.
	for i := 0; i < 13; i++ {
		h.Update(pc, true)
	}
	if h.PredictHit(pc) {
		t.Error("counter at 13 must not yet predict hit (paper: > 13)")
	}
	// One more hit: now predicts.
	h.Update(pc, true)
	if !h.PredictHit(pc) {
		t.Error("counter at 14 should predict hit")
	}
	// A single miss clears it.
	h.Update(pc, false)
	if h.PredictHit(pc) {
		t.Error("miss must clear confidence")
	}
	if h.ActualHitRate() <= 0.9 {
		t.Errorf("actual hit rate = %.2f", h.ActualHitRate())
	}
}

func TestHMPAccuracyAccounting(t *testing.T) {
	h := MustNewHMP()
	pcHit := uint64(0x500100)
	// Train to confidence, then observe many correct hit predictions.
	for i := 0; i < 20; i++ {
		h.PredictHit(pcHit)
		h.Update(pcHit, true)
	}
	if acc := h.HitPredictionAccuracy(); acc != 1.0 {
		t.Errorf("accuracy = %.3f, want 1.0", acc)
	}
	if cov := h.HitCoverage(); cov <= 0 || cov > 1 {
		t.Errorf("coverage = %.3f out of range", cov)
	}
	// Empty predictor stats.
	h2 := MustNewHMP()
	if h2.HitPredictionAccuracy() != 0 || h2.HitCoverage() != 0 || h2.ActualHitRate() != 0 {
		t.Error("empty HMP stats should be 0")
	}
}

func TestLRP(t *testing.T) {
	if _, err := NewLRP(100); err == nil {
		t.Error("non-power-of-two LRP should be rejected")
	}
	l := MustNewLRP()
	pc := uint64(0x600000)
	// Default weakly predicts left.
	if !l.PredictLeftLater(pc) {
		t.Error("default prediction should be left")
	}
	// Train toward right.
	for i := 0; i < 4; i++ {
		l.Update(pc, false)
	}
	if l.PredictLeftLater(pc) {
		t.Error("failed to learn right-later")
	}
	// Train back toward left.
	for i := 0; i < 4; i++ {
		l.Update(pc, true)
	}
	if !l.PredictLeftLater(pc) {
		t.Error("failed to re-learn left-later")
	}
	if l.Accuracy() <= 0 || l.Accuracy() >= 1 {
		t.Errorf("accuracy = %.3f; mixed training should be imperfect", l.Accuracy())
	}
	if MustNewLRP().Accuracy() != 0 {
		t.Error("empty LRP accuracy should be 0")
	}
}

// Property: HMP only reaches hit-prediction confidence through an unbroken
// run of at least threshold+1 hits.
func TestHMPConfidenceProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		h := MustNewHMP()
		pc := uint64(0x700000)
		run := 0
		for _, hit := range outcomes {
			h.Update(pc, hit)
			if hit {
				run++
			} else {
				run = 0
			}
			pred := h.PredictHit(pc)
			if pred && run < HMPDefaultThreshold+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictorRandomBranchBounded(t *testing.T) {
	// On a stream of i.i.d. random outcomes, no predictor can do much
	// better than 50%; check we are sane (not inverted, not stuck).
	p := MustNewPredictor(DefaultConfig())
	pc := uint64(0x400400)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		p.Update(pc, state&1 == 1)
	}
	if acc := p.Accuracy(); acc < 0.40 || acc > 0.65 {
		t.Errorf("random-stream accuracy %.3f outside sane bounds", acc)
	}
}
