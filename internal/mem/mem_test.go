package mem

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(5, func(int64) { got = append(got, 5) })
	q.Schedule(1, func(int64) { got = append(got, 1) })
	q.Schedule(3, func(int64) { got = append(got, 3) })
	if n := q.RunDue(0); n != 0 {
		t.Fatalf("ran %d events before any were due", n)
	}
	if n := q.RunDue(3); n != 2 {
		t.Fatalf("ran %d events at cycle 3, want 2", n)
	}
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("order = %v", got)
	}
	q.RunDue(10)
	if len(got) != 3 || got[2] != 5 {
		t.Fatalf("final order = %v", got)
	}
	if q.Len() != 0 {
		t.Error("queue should be empty")
	}
	if _, ok := q.NextTime(); ok {
		t.Error("NextTime on empty queue")
	}
}

func TestEventQueueSameCycleFIFO(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, func(int64) { got = append(got, i) })
	}
	q.RunDue(7)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", got)
		}
	}
}

func TestEventQueueCascading(t *testing.T) {
	// An event scheduling another event at the same cycle: both run in one
	// RunDue call.
	var q EventQueue
	ran := 0
	q.Schedule(2, func(now int64) {
		ran++
		q.Schedule(now, func(int64) { ran++ })
	})
	q.RunDue(2)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if next, ok := q.NextTime(); ok {
		t.Fatalf("leftover event at %d", next)
	}
}

// addArgHandler exercises the arg-carrying Ref path: delivery appends
// now plus the payload's value.
type addArgHandler struct{ got *[]int64 }

func (h addArgHandler) HandleEvent(_ uint8, now int64, _ Kind, arg any) {
	*h.got = append(*h.got, now+*arg.(*int64))
}

// Regression: callbacks observe the event's own scheduled time, not the
// clock RunDue was called with. With idle-cycle skipping the engine's
// clock can be far past an event's due time on the RunDue that drains it;
// completion stamps taken from the callback argument must not drift.
func TestEventQueuePastDueObservesScheduledTime(t *testing.T) {
	var q EventQueue
	var got []int64
	q.Schedule(90, func(now int64) { got = append(got, now) })
	q.ScheduleRef(95, Ref{H: addArgHandler{&got}, Arg: new(int64)})
	q.Schedule(120, func(now int64) { got = append(got, now) })
	// The machine skips straight to cycle 120: all three events drain in
	// one call, each seeing its own time.
	if n := q.RunDue(120); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	want := []int64{90, 95, 120}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("observed times = %v, want %v", got, want)
		}
	}
	// Cascading past-due events keep the contract too.
	q.Schedule(10, func(now int64) {
		got = append(got, now)
		q.Schedule(now+5, func(now int64) { got = append(got, now) })
	})
	got = got[:0]
	q.RunDue(200)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("cascaded observed times = %v, want [10 15]", got)
	}
}

// Property: events always run in non-decreasing time order.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q EventQueue
		var got []int64
		for _, tm := range times {
			when := int64(tm % 500)
			q.Schedule(when, func(int64) { got = append(got, when) })
		}
		q.RunDue(1000)
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			len(got) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// fakeLower is a scriptable Supplier for isolating a single cache level.
type fakeLower struct {
	eq      *EventQueue
	latency int64
	fetches int
	wbs     int
}

func (f *fakeLower) FetchLine(now int64, lineAddr uint64, done Ref) {
	f.fetches++
	f.eq.ScheduleRef(now+f.latency, done)
}

func (f *fakeLower) WritebackLine(now int64, lineAddr uint64) { f.wbs++ }

func testCache(t *testing.T, cfg CacheConfig, lowerLat int64) (*Cache, *fakeLower, *EventQueue) {
	t.Helper()
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: lowerLat}
	c, err := NewCache(cfg, eq, low)
	if err != nil {
		t.Fatal(err)
	}
	return c, low, eq
}

var smallCfg = CacheConfig{Name: "T", Size: 1024, Ways: 2, LineSize: 64,
	HitLatency: 3, MSHRs: 4}

func TestCacheConfigValidation(t *testing.T) {
	eq := &EventQueue{}
	low := &fakeLower{eq: eq}
	bad := []CacheConfig{
		{Name: "a", Size: 0, Ways: 1, LineSize: 64, HitLatency: 1, MSHRs: 1},
		{Name: "b", Size: 1024, Ways: 1, LineSize: 48, HitLatency: 1, MSHRs: 1},
		{Name: "c", Size: 1024, Ways: 3, LineSize: 64, HitLatency: 1, MSHRs: 1},
		{Name: "d", Size: 3 * 64, Ways: 1, LineSize: 64, HitLatency: 1, MSHRs: 1},
		{Name: "e", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 0, MSHRs: 1},
		{Name: "f", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 1, MSHRs: 0},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg, eq, low); err == nil {
			t.Errorf("config %s should be rejected", cfg.Name)
		}
	}
	if _, err := NewCache(smallCfg, nil, low); err == nil {
		t.Error("nil event queue should be rejected")
	}
	if _, err := NewCache(smallCfg, eq, nil); err == nil {
		t.Error("nil lower level should be rejected")
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c, low, eq := testCache(t, smallCfg, 20)
	var doneAt int64 = -1
	var kind Kind
	ok := c.Access(0, 0x1008, false, func(now int64, k Kind) { doneAt, kind = now, k })
	if !ok {
		t.Fatal("access rejected")
	}
	for cyc := int64(0); cyc <= 30 && doneAt < 0; cyc++ {
		eq.RunDue(cyc)
	}
	// Miss: lookup 3 + lower 20 = 23.
	if doneAt != 23 || kind != KindMiss {
		t.Fatalf("miss completed at %d kind %v, want 23 miss", doneAt, kind)
	}
	if low.fetches != 1 {
		t.Fatalf("fetches = %d", low.fetches)
	}

	// Same line again: hit with 3-cycle latency.
	doneAt = -1
	c.Access(30, 0x1010, false, func(now int64, k Kind) { doneAt, kind = now, k })
	eq.RunDue(33)
	if doneAt != 33 || kind != KindHit {
		t.Fatalf("hit completed at %d kind %v, want 33 hit", doneAt, kind)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDelayedHitMerging(t *testing.T) {
	c, low, eq := testCache(t, smallCfg, 20)
	var times []int64
	var kinds []Kind
	record := func(now int64, k Kind) { times = append(times, now); kinds = append(kinds, k) }
	c.Access(0, 0x2000, false, record)
	c.Access(1, 0x2008, false, record) // same line, in flight -> delayed hit
	c.Access(2, 0x2030, true, record)  // same line again
	for cyc := int64(0); cyc <= 30; cyc++ {
		eq.RunDue(cyc)
	}
	if low.fetches != 1 {
		t.Fatalf("merged accesses caused %d fetches", low.fetches)
	}
	if len(times) != 3 {
		t.Fatalf("completions = %d", len(times))
	}
	// All complete at fill time 23.
	for i, tm := range times {
		if tm != 23 {
			t.Errorf("completion %d at %d, want 23", i, tm)
		}
	}
	if kinds[0] != KindMiss || kinds[1] != KindDelayedHit || kinds[2] != KindDelayedHit {
		t.Fatalf("kinds = %v", kinds)
	}
	st := c.Stats()
	if st.DelayedHits != 2 {
		t.Fatalf("delayed hits = %d", st.DelayedHits)
	}
	if st.MissRate() != 1.0 {
		t.Fatalf("miss rate = %v (delayed hits are misses)", st.MissRate())
	}
}

func TestCacheMSHRLimit(t *testing.T) {
	c, _, eq := testCache(t, smallCfg, 50)
	nop := func(int64, Kind) {}
	for i := 0; i < 4; i++ {
		if !c.Access(0, uint64(0x4000+i*64), false, nop) {
			t.Fatalf("access %d rejected below MSHR limit", i)
		}
	}
	if c.OutstandingMisses() != 4 {
		t.Fatalf("outstanding = %d", c.OutstandingMisses())
	}
	if c.Access(0, 0x9000, false, nop) {
		t.Fatal("access beyond MSHR limit accepted")
	}
	if c.Stats().MSHRRejects != 1 {
		t.Fatalf("rejects = %d", c.Stats().MSHRRejects)
	}
	if c.MSHRPeak() != 4 {
		t.Fatalf("peak = %d", c.MSHRPeak())
	}
	// Merging into an existing MSHR is still allowed when full.
	if !c.Access(0, 0x4008, false, nop) {
		t.Fatal("merge rejected while MSHRs full")
	}
	for cyc := int64(0); cyc <= 60; cyc++ {
		eq.RunDue(cyc)
	}
	if c.OutstandingMisses() != 0 {
		t.Fatal("MSHRs not freed after fills")
	}
	// After fills, new misses are accepted again.
	if !c.Access(61, 0x9000, false, nop) {
		t.Fatal("access rejected after MSHRs freed")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	// 2-way, 8 sets: three lines mapping to the same set force an
	// eviction; a dirty victim must be written back.
	c, low, eq := testCache(t, smallCfg, 10)
	setStride := uint64(smallCfg.Size / smallCfg.Ways) // 512: same set, different tag
	nop := func(int64, Kind) {}
	run := func(to int64) {
		for cyc := int64(0); cyc <= to; cyc++ {
			eq.RunDue(cyc)
		}
	}
	c.Access(0, 0x0, true, nop) // write -> line dirty on fill
	run(20)
	c.Access(21, setStride, false, nop)
	run(40)
	c.Access(41, 2*setStride, false, nop) // evicts dirty line 0x0 (LRU)
	run(60)
	if low.wbs != 1 {
		t.Fatalf("writebacks = %d, want 1", low.wbs)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("stat writebacks = %d", c.Stats().Writebacks)
	}
	// Line 0x0 must now miss (was evicted).
	before := c.Stats().Misses
	c.Access(61, 0x0, false, nop)
	if c.Stats().Misses != before+1 {
		t.Error("evicted line should miss")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c, _, eq := testCache(t, smallCfg, 10)
	setStride := uint64(smallCfg.Size / smallCfg.Ways)
	nop := func(int64, Kind) {}
	run := func(from, to int64) {
		for cyc := from; cyc <= to; cyc++ {
			eq.RunDue(cyc)
		}
	}
	c.Access(0, 0x0, false, nop)
	run(0, 20)
	c.Access(21, setStride, false, nop)
	run(21, 40)
	// Touch line 0x0 to make setStride the LRU.
	c.Access(41, 0x0, false, nop)
	run(41, 45)
	c.Access(46, 2*setStride, false, nop) // evicts setStride
	run(46, 70)
	hitsBefore := c.Stats().Hits
	c.Access(71, 0x0, false, nop)
	if c.Stats().Hits != hitsBefore+1 {
		t.Error("recently used line was evicted")
	}
	missBefore := c.Stats().Misses
	c.Access(72, setStride, false, nop)
	if c.Stats().Misses != missBefore+1 {
		t.Error("LRU line should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	var doneAt int64 = -1
	h.L1D.Access(0, 0x100000, false, func(now int64, k Kind) { doneAt = now })
	for cyc := int64(0); cyc <= 200 && doneAt < 0; cyc++ {
		h.Tick(cyc)
	}
	// L1 lookup 3 + L2 lookup 10 + memory 100 + memory transfer 8 +
	// L2->L1 transfer 1 = 122.
	if doneAt != 122 {
		t.Fatalf("cold miss completed at %d, want 122", doneAt)
	}

	// L2 hit path: evict nothing, access a different line that is in L2
	// after... instead re-access the same line after flushing L1 is hard;
	// access a neighbouring line in the same L2 line? Line sizes are
	// equal, so instead verify a warm L1 hit takes exactly 3 cycles.
	doneAt = -1
	h.L1D.Access(300, 0x100008, false, func(now int64, k Kind) { doneAt = now })
	for cyc := int64(300); cyc <= 310 && doneAt < 0; cyc++ {
		h.Tick(cyc)
	}
	if doneAt != 303 {
		t.Fatalf("warm hit at %d, want 303", doneAt)
	}
	if h.Mem.Fetches() != 1 {
		t.Fatalf("memory fetches = %d", h.Mem.Fetches())
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	// Warm the L2 but evict from L1 by streaming past L1 capacity within
	// one L1 set.
	h := MustNewHierarchy(DefaultHierarchyConfig())
	nop := func(int64, Kind) {}
	l1SetStride := uint64(64 << 10 / 2) // 32 KB
	cyc := int64(0)
	run := func(until int64) {
		for ; cyc <= until; cyc++ {
			h.Tick(cyc)
		}
	}
	h.L1D.Access(0, 0x0, false, nop)
	run(200)
	h.L1D.Access(cyc, l1SetStride, false, nop)
	run(cyc + 200)
	h.L1D.Access(cyc, 2*l1SetStride, false, nop) // evicts 0x0 from L1; L2 keeps it
	run(cyc + 200)

	var doneAt int64 = -1
	start := cyc
	h.L1D.Access(start, 0x0, false, func(now int64, k Kind) { doneAt = now })
	run(cyc + 50)
	// L1 lookup 3 + L2 hit 10 + transfer 1 = 14.
	if got := doneAt - start; got != 14 {
		t.Fatalf("L2 hit latency = %d, want 14", got)
	}
}

func TestMemoryBandwidthSerialization(t *testing.T) {
	eq := &EventQueue{}
	mm := MustNewMainMemory(eq, 100, 64, 8)
	var times []int64
	mm.FetchLine(0, 0x0, PlainFunc(func(now int64) { times = append(times, now) }))
	mm.FetchLine(0, 0x40, PlainFunc(func(now int64) { times = append(times, now) }))
	mm.FetchLine(0, 0x80, PlainFunc(func(now int64) { times = append(times, now) }))
	for cyc := int64(0); cyc <= 200; cyc++ {
		eq.RunDue(cyc)
	}
	// 64B at 8B/cyc = 8 cycles per transfer: 108, 116, 124.
	want := []int64{108, 116, 124}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("transfer %d at %d, want %d (all %v)", i, times[i], w, times)
		}
	}
	mm.WritebackLine(200, 0x0)
	if mm.Writebacks() != 1 {
		t.Error("writeback not counted")
	}
}

func TestMainMemoryValidation(t *testing.T) {
	eq := &EventQueue{}
	if _, err := NewMainMemory(nil, 100, 64, 8); err == nil {
		t.Error("nil queue should be rejected")
	}
	if _, err := NewMainMemory(eq, 0, 64, 8); err == nil {
		t.Error("zero latency should be rejected")
	}
	if _, err := NewMainMemory(eq, 100, 0, 8); err == nil {
		t.Error("zero line should be rejected")
	}
	// Unlimited bandwidth is allowed.
	mm := MustNewMainMemory(eq, 50, 64, 0)
	var doneAt int64
	mm.FetchLine(0, 0, PlainFunc(func(now int64) { doneAt = now }))
	eq.RunDue(50)
	if doneAt != 50 {
		t.Errorf("unlimited-bw fetch at %d, want 50", doneAt)
	}
}

func TestL2PendingFetchQueue(t *testing.T) {
	// An L2 with one MSHR receiving two upper-level fetches must queue the
	// second and still complete it.
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: 10}
	cfg := smallCfg
	cfg.MSHRs = 1
	c := MustNewCache(cfg, eq, low)
	var done1, done2 int64 = -1, -1
	c.FetchLine(0, 0x1000, PlainFunc(func(now int64) { done1 = now }))
	c.FetchLine(0, 0x2000, PlainFunc(func(now int64) { done2 = now }))
	for cyc := int64(0); cyc <= 100; cyc++ {
		eq.RunDue(cyc)
	}
	if done1 < 0 || done2 < 0 {
		t.Fatalf("queued fetch lost: %d %d", done1, done2)
	}
	if done2 <= done1 {
		t.Fatalf("queued fetch finished first: %d vs %d", done2, done1)
	}
}

func TestFetchLineMergesWithInflight(t *testing.T) {
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: 10}
	c := MustNewCache(smallCfg, eq, low)
	var times []int64
	c.FetchLine(0, 0x3000, PlainFunc(func(now int64) { times = append(times, now) }))
	c.FetchLine(1, 0x3000, PlainFunc(func(now int64) { times = append(times, now) }))
	for cyc := int64(0); cyc <= 50; cyc++ {
		eq.RunDue(cyc)
	}
	if low.fetches != 1 {
		t.Fatalf("duplicate fetch issued: %d", low.fetches)
	}
	if len(times) != 2 {
		t.Fatalf("completions = %v", times)
	}
}

func TestWritebackLinePropagation(t *testing.T) {
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: 10}
	c := MustNewCache(smallCfg, eq, low)
	// Line not present: forwarded down.
	c.WritebackLine(0, 0x5000)
	if low.wbs != 1 {
		t.Fatalf("writeback not forwarded: %d", low.wbs)
	}
	// Fetch a line, then write it back from above: absorbed, marked dirty.
	nop := func(int64, Kind) {}
	c.Access(0, 0x6000, false, nop)
	for cyc := int64(0); cyc <= 20; cyc++ {
		eq.RunDue(cyc)
	}
	c.WritebackLine(21, 0x6000)
	if low.wbs != 1 {
		t.Fatal("present line should be absorbed, not forwarded")
	}
	// Evicting it later must write it back (it is dirty now).
	setStride := uint64(smallCfg.Size / smallCfg.Ways)
	c.Access(22, 0x6000+setStride, false, nop)
	c.Access(23, 0x6000+2*setStride, false, nop)
	for cyc := int64(22); cyc <= 60; cyc++ {
		eq.RunDue(cyc)
	}
	if low.wbs != 2 {
		t.Fatalf("dirty absorbed line not written back on eviction: %d", low.wbs)
	}
}

func TestKindString(t *testing.T) {
	if KindHit.String() != "hit" || KindDelayedHit.String() != "delayed-hit" ||
		KindMiss.String() != "miss" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

// Property: under random access streams the cache conserves accounting:
// accesses = hits + delayed hits + misses, and all accepted accesses
// eventually complete.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		eq := &EventQueue{}
		low := &fakeLower{eq: eq, latency: 15}
		c := MustNewCache(smallCfg, eq, low)
		completions := 0
		accepted := 0
		cyc := int64(0)
		for _, a := range addrs {
			if c.Access(cyc, uint64(a)*8, a%3 == 0, func(int64, Kind) { completions++ }) {
				accepted++
			}
			eq.RunDue(cyc)
			cyc++
		}
		for ; cyc < int64(len(addrs))+100; cyc++ {
			eq.RunDue(cyc)
		}
		st := c.Stats()
		return completions == accepted &&
			st.Accesses == st.Hits+st.DelayedHits+st.Misses &&
			st.Accesses == uint64(accepted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProbe(t *testing.T) {
	c, _, eq := testCache(t, smallCfg, 20)
	if c.Probe(0x7000) != KindMiss {
		t.Fatal("cold line should probe as miss")
	}
	nop := func(int64, Kind) {}
	c.Access(0, 0x7000, false, nop)
	if c.Probe(0x7008) != KindDelayedHit {
		t.Fatal("in-flight line should probe as delayed hit")
	}
	for cyc := int64(0); cyc <= 30; cyc++ {
		eq.RunDue(cyc)
	}
	if c.Probe(0x7000) != KindHit {
		t.Fatal("filled line should probe as hit")
	}
	// Probe has no side effects on stats.
	st := c.Stats()
	if st.Accesses != 1 {
		t.Fatalf("probe changed accounting: %+v", st)
	}
}
