package mem

import "fmt"

// MainMemory is the DRAM model of Table 1: fixed access latency plus a
// shared channel of fixed bytes-per-cycle bandwidth.
type MainMemory struct {
	latency  int64
	lineSize int
	bw       int // bytes per cycle; <=0 means unlimited
	eq       *EventQueue

	linkFree int64

	fetches    uint64
	writebacks uint64
}

// NewMainMemory builds a memory with the given access latency (cycles),
// line transfer size and channel bandwidth in bytes per cycle.
func NewMainMemory(eq *EventQueue, latency int64, lineSize, bytesPerCycle int) (*MainMemory, error) {
	if eq == nil {
		return nil, fmt.Errorf("mem: nil event queue")
	}
	if latency < 1 || lineSize <= 0 {
		return nil, fmt.Errorf("mem: invalid memory parameters latency=%d line=%d", latency, lineSize)
	}
	return &MainMemory{latency: latency, lineSize: lineSize, bw: bytesPerCycle, eq: eq}, nil
}

// MustNewMainMemory is NewMainMemory for known-good parameters.
func MustNewMainMemory(eq *EventQueue, latency int64, lineSize, bytesPerCycle int) *MainMemory {
	m, err := NewMainMemory(eq, latency, lineSize, bytesPerCycle)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *MainMemory) reserve(ready int64) int64 {
	if m.bw <= 0 {
		return ready
	}
	transfer := int64((m.lineSize + m.bw - 1) / m.bw)
	start := ready
	if m.linkFree > start {
		start = m.linkFree
	}
	m.linkFree = start + transfer
	return m.linkFree
}

// FetchLine implements Supplier.
func (m *MainMemory) FetchLine(now int64, lineAddr uint64, done Ref) {
	m.fetches++
	deliver := m.reserve(now + m.latency)
	m.eq.ScheduleRef(deliver, done)
}

// WritebackLine implements Supplier: the transfer consumes channel
// bandwidth but completes silently.
func (m *MainMemory) WritebackLine(now int64, lineAddr uint64) {
	m.writebacks++
	m.reserve(now)
}

// Fetches returns the number of line reads served.
func (m *MainMemory) Fetches() uint64 { return m.fetches }

// Writebacks returns the number of dirty lines absorbed.
func (m *MainMemory) Writebacks() uint64 { return m.writebacks }

// HierarchyConfig configures the full Table 1 memory system.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	MemLatency       int64
	MemBytesPerCycle int
}

// DefaultHierarchyConfig returns the Table 1 memory system: split 64 KB
// 2-way L1s with 64-byte lines (I: 1-cycle, D: 3-cycle, 32 MSHRs), a
// unified 1 MB 4-way 10-cycle L2 with 32 MSHRs and 64 B/cycle bandwidth to
// the L1s, and 100-cycle 8 B/cycle main memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: CacheConfig{Name: "L1I", Size: 64 << 10, Ways: 2, LineSize: 64,
			HitLatency: 1, MSHRs: 8},
		L1D: CacheConfig{Name: "L1D", Size: 64 << 10, Ways: 2, LineSize: 64,
			HitLatency: 3, MSHRs: 32},
		L2: CacheConfig{Name: "L2", Size: 1 << 20, Ways: 4, LineSize: 64,
			HitLatency: 10, MSHRs: 32, UpLinkBytesPerCycle: 64},
		MemLatency:       100,
		MemBytesPerCycle: 8,
	}
}

// Hierarchy wires the two L1s, the unified L2 and main memory to a single
// event queue.
type Hierarchy struct {
	EQ  *EventQueue
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *MainMemory
}

// NewHierarchy builds the full memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	eq := &EventQueue{}
	mm, err := NewMainMemory(eq, cfg.MemLatency, cfg.L2.LineSize, cfg.MemBytesPerCycle)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2, eq, mm)
	if err != nil {
		return nil, err
	}
	l1i, err := NewCache(cfg.L1I, eq, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D, eq, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{EQ: eq, L1I: l1i, L1D: l1d, L2: l2, Mem: mm}, nil
}

// MustNewHierarchy is NewHierarchy for known-good configurations.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Tick runs all memory-system events due at or before the given cycle.
func (h *Hierarchy) Tick(now int64) { h.EQ.RunDue(now) }

// WarmData functionally installs a data line in the L1D and L2.
func (h *Hierarchy) WarmData(addr uint64, write bool) {
	h.L1D.Warm(addr, write)
	h.L2.Warm(addr, false)
}

// WarmInst functionally installs an instruction line in the L1I and L2.
func (h *Hierarchy) WarmInst(pc uint64) {
	h.L1I.Warm(pc, false)
	h.L2.Warm(pc, false)
}
