package mem

import (
	"strconv"
	"testing"
)

// manualLower is a Supplier whose fills the test fires by hand, so MSHRs
// stay busy exactly as long as the test wants.
type manualLower struct {
	fills []Ref
}

func (m *manualLower) FetchLine(now int64, lineAddr uint64, done Ref) {
	m.fills = append(m.fills, done)
}
func (m *manualLower) WritebackLine(int64, uint64) {}

func (m *manualLower) takeFill(t *testing.T) Ref {
	t.Helper()
	if len(m.fills) != 1 {
		t.Fatalf("expected exactly one outstanding fetch, have %d", len(m.fills))
	}
	f := m.fills[0]
	m.fills[0] = Ref{}
	m.fills = m.fills[:0]
	return f
}

// TestPendingFetchQueueSteadyStateAllocs pins the fix for the queued
// upper-level fetch path: popping with a head index and resetting the
// drained slice reuses the backing array, so a steady state of
// queue-one/drain-one rounds allocates nothing. The previous
// pendingFetches[1:] pop shrank the capacity on every round until every
// append allocated afresh (and stranded the consumed prefix meanwhile).
func TestPendingFetchQueueSteadyStateAllocs(t *testing.T) {
	low := &manualLower{}
	eq := &EventQueue{}
	c := MustNewCache(CacheConfig{
		Name: "t", Size: 1 << 14, Ways: 2, LineSize: 64, HitLatency: 1, MSHRs: 1,
	}, eq, low)

	now := int64(0)
	addr := uint64(0)
	done := Ref{H: dropHandler{}}
	round := func() {
		a, b := addr, addr+64
		addr += 128               // fresh lines each round, so both fetches miss
		c.FetchLine(now, a, done) // takes the only MSHR
		c.FetchLine(now, b, done) // queued behind it
		now += 2
		eq.RunDue(now) // fetch for a departs to the lower level
		low.takeFill(t).Deliver(now, KindHit)
		now += 2
		eq.RunDue(now) // a delivered; queued fetch for b departs
		low.takeFill(t).Deliver(now, KindHit)
		now += 2
		eq.RunDue(now) // b delivered
		if n := c.pendingFetchLen(); n != 0 {
			t.Fatalf("round left %d queued fetches", n)
		}
		if c.pfHead != 0 || len(c.pendingFetches) != 0 {
			t.Fatalf("drained queue not reset: head %d, len %d", c.pfHead, len(c.pendingFetches))
		}
	}
	for i := 0; i < 8; i++ {
		round() // warm the event heap, MSHR pool and queue array
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("queued-fetch round allocates %.2f objects, want 0", avg)
	}
	if cap(c.pendingFetches) > 8 {
		t.Errorf("pending-fetch array grew to cap %d over single-entry rounds", cap(c.pendingFetches))
	}
}

// TestMSHRTableReuse drives the slot array through interleaved alloc and
// release and checks the invariants the scans rely on: count matches
// occupied slots, released lines look up as nil, busy lines are found.
func TestMSHRTableReuse(t *testing.T) {
	low := &manualLower{}
	eq := &EventQueue{}
	const mshrs = 4
	c := MustNewCache(CacheConfig{
		Name: "t", Size: 1 << 14, Ways: 2, LineSize: 64, HitLatency: 1, MSHRs: mshrs,
	}, eq, low)

	lines := []uint64{0x000, 0x040, 0x080, 0x0c0}
	for _, a := range lines {
		c.allocMSHR(a)
	}
	if c.OutstandingMisses() != mshrs {
		t.Fatalf("outstanding %d, want %d", c.OutstandingMisses(), mshrs)
	}
	for _, a := range lines {
		if c.lookupMSHR(a) == nil {
			t.Fatalf("line %#x not found while busy", a)
		}
	}
	if c.lookupMSHR(0x100) != nil {
		t.Fatal("found an MSHR for a line never allocated")
	}
	// Release from the middle, then reuse the slot for a new line.
	if c.releaseMSHR(0x040) == nil {
		t.Fatal("release of busy line returned nil")
	}
	if c.lookupMSHR(0x040) != nil {
		t.Fatal("released line still looks up")
	}
	if c.releaseMSHR(0x040) != nil {
		t.Fatal("double release returned an MSHR")
	}
	c.allocMSHR(0x140)
	if c.OutstandingMisses() != mshrs {
		t.Fatalf("outstanding %d after refill, want %d", c.OutstandingMisses(), mshrs)
	}
	if c.lookupMSHR(0x140) == nil {
		t.Fatal("refilled slot not found")
	}
	if c.MSHRPeak() != mshrs {
		t.Fatalf("peak %d, want %d", c.MSHRPeak(), mshrs)
	}
}

// BenchmarkMSHRLookup measures the slot-array scan that replaced the
// former map[uint64]*mshr, at the occupancies Table 1 machines actually
// see. "hit" finds a busy line mid-table; "miss" proves absence by
// scanning every slot — the common case on the L1 access path.
func BenchmarkMSHRLookup(b *testing.B) {
	for _, mshrs := range []int{8, 32} {
		low := &manualLower{}
		eq := &EventQueue{}
		c := MustNewCache(CacheConfig{
			Name: "b", Size: 1 << 20, Ways: 8, LineSize: 64, HitLatency: 1, MSHRs: mshrs,
		}, eq, low)
		for i := 0; i < mshrs/2; i++ {
			c.allocMSHR(uint64(i) << 6)
		}
		target := uint64(mshrs/4) << 6
		b.Run("hit/"+c.cfg.Name+strconv.Itoa(mshrs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c.lookupMSHR(target) == nil {
					b.Fatal("busy line not found")
				}
			}
		})
		b.Run("miss/"+c.cfg.Name+strconv.Itoa(mshrs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c.lookupMSHR(1<<40) != nil {
					b.Fatal("absent line found")
				}
			}
		})
	}
}
