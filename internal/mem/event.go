// Package mem implements the detailed event-driven memory hierarchy of
// Table 1: split 64 KB 2-way L1 instruction and data caches, a unified
// 1 MB 4-way L2, and main memory, with per-cache MSHRs (32 outstanding
// misses), miss merging (delayed hits), finite link bandwidth, and
// write-back/write-allocate policy.
package mem

// Handler receives deferred memory-system callbacks. A component that
// schedules events implements it once and dispatches on its own op codes;
// now is the event's scheduled time (see RunDue's time contract), k is the
// service kind for cache-delivery events (KindHit for plain timer events),
// and arg is the per-event payload.
type Handler interface {
	HandleEvent(op uint8, now int64, k Kind, arg any)
}

// Ref names a deferred callback without a closure: a handler, the
// handler's dispatch code, and a payload. Storing pointer-shaped values in
// the interfaces does not heap-allocate, so hot paths build Refs freely —
// and unlike an opaque function value, a Ref is inspectable: the
// active-clone machinery can remap H and Arg onto a cloned machine's
// structures, which closures made impossible.
type Ref struct {
	H   Handler
	Op  uint8
	Arg any
}

// Deliver invokes the referenced callback.
func (r Ref) Deliver(now int64, k Kind) { r.H.HandleEvent(r.Op, now, k, r.Arg) }

// plainFunc adapts a plain func(now) callback to the Handler form. A func
// value is pointer-shaped, so carrying it in Ref.Arg allocates nothing.
type plainFunc struct{}

func (plainFunc) HandleEvent(_ uint8, now int64, _ Kind, arg any) { arg.(func(int64))(now) }

// PlainFunc wraps fn as a Ref. Refs built this way cannot be remapped
// across an active clone (the function value is opaque), so the engine's
// own paths use real handlers; PlainFunc serves tests and one-shot
// tooling, and the quiescent-clone path where no events are pending.
func PlainFunc(fn func(now int64)) Ref { return Ref{H: plainFunc{}, Arg: fn} }

// kindFunc adapts a func(now, Kind) access callback to the Handler form.
type kindFunc struct{}

func (kindFunc) HandleEvent(_ uint8, now int64, k Kind, arg any) { arg.(func(int64, Kind))(now, k) }

// KindFunc wraps fn as a Ref whose delivery forwards the service Kind.
// The same remapping caveat as PlainFunc applies.
func KindFunc(fn func(now int64, k Kind)) Ref { return Ref{H: kindFunc{}, Arg: fn} }

// EventQueue is a monotonic time-ordered callback queue. Events scheduled
// for the same cycle run in scheduling order. The heap is managed by hand
// on a typed slice (container/heap would box every event through `any`,
// which allocates on the simulator's hottest path).
type EventQueue struct {
	h   []event
	seq uint64
}

type event struct {
	when int64
	seq  uint64
	ref  Ref
}

func (q *EventQueue) less(i, j int) bool {
	if q.h[i].when != q.h[j].when {
		return q.h[i].when < q.h[j].when
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

func (q *EventQueue) push(e event) {
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

func (q *EventQueue) pop() event {
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = event{} // clear the ref so released values can be collected
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return e
}

// ScheduleRef delivers ref at the given cycle (with KindHit — the kind
// only matters for cache-internal delivery paths, which carry it in their
// own structures). An event scheduled in the past fires on the next
// RunDue, but still observes its own scheduled time — see RunDue.
func (q *EventQueue) ScheduleRef(when int64, ref Ref) {
	q.seq++
	q.push(event{when: when, seq: q.seq, ref: ref})
}

// Schedule runs fn at the given cycle: ScheduleRef over a PlainFunc
// wrapper (allocation-free, but not remappable across an active clone).
func (q *EventQueue) Schedule(when int64, fn func(now int64)) {
	q.ScheduleRef(when, PlainFunc(fn))
}

// RunDue executes every event whose time is <= now, including events those
// events schedule at or before now. It returns the number executed.
//
// Time contract: a callback observes the event's own scheduled time, not
// the caller's clock. The two only differ when RunDue is called with a
// clock past the event's due time — which cannot happen while the engine
// ticks every cycle, but does the moment idle cycles are skipped: an
// event due at cycle 90 must still see 90 even if the machine next wakes
// at 120. Completion stamps derived from the callback time stay exact
// either way.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for len(q.h) > 0 && q.h[0].when <= now {
		e := q.pop()
		e.ref.Deliver(e.when, KindHit)
		n++
	}
	return n
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event.
func (q *EventQueue) NextTime() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].when, true
}
