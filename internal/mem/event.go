// Package mem implements the detailed event-driven memory hierarchy of
// Table 1: split 64 KB 2-way L1 instruction and data caches, a unified
// 1 MB 4-way L2, and main memory, with per-cache MSHRs (32 outstanding
// misses), miss merging (delayed hits), finite link bandwidth, and
// write-back/write-allocate policy.
package mem

import "container/heap"

// EventQueue is a monotonic time-ordered callback queue. Events scheduled
// for the same cycle run in scheduling order.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

type event struct {
	when int64
	seq  uint64
	fn   func(now int64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Schedule runs fn at the given cycle. Scheduling in the past is treated
// as "now" by RunDue.
func (q *EventQueue) Schedule(when int64, fn func(now int64)) {
	q.seq++
	heap.Push(&q.h, event{when: when, seq: q.seq, fn: fn})
}

// RunDue executes every event whose time is <= now, including events those
// events schedule at or before now. It returns the number executed.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for len(q.h) > 0 && q.h[0].when <= now {
		e := heap.Pop(&q.h).(event)
		e.fn(now)
		n++
	}
	return n
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event.
func (q *EventQueue) NextTime() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].when, true
}
