// Package mem implements the detailed event-driven memory hierarchy of
// Table 1: split 64 KB 2-way L1 instruction and data caches, a unified
// 1 MB 4-way L2, and main memory, with per-cache MSHRs (32 outstanding
// misses), miss merging (delayed hits), finite link bandwidth, and
// write-back/write-allocate policy.
package mem

// EventQueue is a monotonic time-ordered callback queue. Events scheduled
// for the same cycle run in scheduling order. The heap is managed by hand
// on a typed slice (container/heap would box every event through `any`,
// which allocates on the simulator's hottest path).
type EventQueue struct {
	h   []event
	seq uint64
}

type event struct {
	when  int64
	seq   uint64
	fn    func(now int64)
	argFn func(now int64, arg any)
	arg   any
}

func (q *EventQueue) less(i, j int) bool {
	if q.h[i].when != q.h[j].when {
		return q.h[i].when < q.h[j].when
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

func (q *EventQueue) push(e event) {
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

func (q *EventQueue) pop() event {
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = event{} // clear fn/arg so released values can be collected
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return e
}

// Schedule runs fn at the given cycle. An event scheduled in the past
// fires on the next RunDue, but still observes its own scheduled time —
// see RunDue's time contract.
func (q *EventQueue) Schedule(when int64, fn func(now int64)) {
	q.seq++
	q.push(event{when: when, seq: q.seq, fn: fn})
}

// ScheduleArg runs fn(now, arg) at the given cycle. Unlike Schedule with a
// capturing closure, a long-lived fn plus a pointer-typed arg allocates
// nothing: storing a pointer in an `any` does not heap-allocate, so callers
// that would otherwise build a fresh closure per event (one per issued
// instruction, per cache miss, ...) should prefer this form.
func (q *EventQueue) ScheduleArg(when int64, fn func(now int64, arg any), arg any) {
	q.seq++
	q.push(event{when: when, seq: q.seq, argFn: fn, arg: arg})
}

// RunDue executes every event whose time is <= now, including events those
// events schedule at or before now. It returns the number executed.
//
// Time contract: a callback observes the event's own scheduled time, not
// the caller's clock. The two only differ when RunDue is called with a
// clock past the event's due time — which cannot happen while the engine
// ticks every cycle, but does the moment idle cycles are skipped: an
// event due at cycle 90 must still see 90 even if the machine next wakes
// at 120. Completion stamps derived from the callback time stay exact
// either way.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for len(q.h) > 0 && q.h[0].when <= now {
		e := q.pop()
		if e.fn != nil {
			e.fn(e.when)
		} else {
			e.argFn(e.when, e.arg)
		}
		n++
	}
	return n
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextTime returns the time of the earliest pending event.
func (q *EventQueue) NextTime() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].when, true
}
