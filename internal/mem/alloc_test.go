package mem

import "testing"

// TestScheduleArgDoesNotAllocate pins the event queue's steady-state
// behaviour: scheduling with a long-lived function and a pointer argument
// allocates nothing once the heap slice has grown.
func TestScheduleArgDoesNotAllocate(t *testing.T) {
	var q EventQueue
	fired := 0
	fn := func(now int64, arg any) { *arg.(*int)++ }
	// Warm the heap slice.
	for i := 0; i < 8; i++ {
		q.ScheduleArg(int64(i), fn, &fired)
	}
	q.RunDue(8)
	now := int64(9)
	if avg := testing.AllocsPerRun(100, func() {
		q.ScheduleArg(now, fn, &fired)
		q.ScheduleArg(now+1, fn, &fired)
		q.RunDue(now + 1)
		now += 2
	}); avg != 0 {
		t.Errorf("ScheduleArg/RunDue allocates %.1f objects per round, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestCacheHitPathDoesNotAllocate pins the pooled hit delivery: repeated
// hits to a resident line through AccessArg must not allocate in steady
// state.
func TestCacheHitPathDoesNotAllocate(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.L1D.Warm(0x1000, false)
	done := func(int64, Kind, any) {}
	now := int64(0)
	// Warm the event heap and hit pool.
	for i := 0; i < 8; i++ {
		h.L1D.AccessArg(now, 0x1000, false, done, nil)
		now++
		h.Tick(now + 4)
	}
	if avg := testing.AllocsPerRun(100, func() {
		h.L1D.AccessArg(now, 0x1000, false, done, nil)
		now++
		h.Tick(now + 4)
	}); avg != 0 {
		t.Errorf("hit path allocates %.1f objects per access, want 0", avg)
	}
}
