package mem

import "testing"

// countHandler bumps the int payload on delivery.
type countHandler struct{}

func (countHandler) HandleEvent(_ uint8, _ int64, _ Kind, arg any) { *arg.(*int)++ }

// TestScheduleRefDoesNotAllocate pins the event queue's steady-state
// behaviour: scheduling a handler ref with a pointer argument allocates
// nothing once the heap slice has grown.
func TestScheduleRefDoesNotAllocate(t *testing.T) {
	var q EventQueue
	fired := 0
	ref := Ref{H: countHandler{}, Arg: &fired}
	// Warm the heap slice.
	for i := 0; i < 8; i++ {
		q.ScheduleRef(int64(i), ref)
	}
	q.RunDue(8)
	now := int64(9)
	if avg := testing.AllocsPerRun(100, func() {
		q.ScheduleRef(now, ref)
		q.ScheduleRef(now+1, ref)
		q.RunDue(now + 1)
		now += 2
	}); avg != 0 {
		t.Errorf("ScheduleRef/RunDue allocates %.1f objects per round, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestScheduleRefBuiltInline pins that constructing the Ref at the call
// site — handler value, op and pointer payload — allocates nothing, since
// every engine hot path builds its refs inline.
func TestScheduleRefBuiltInline(t *testing.T) {
	var q EventQueue
	fired := 0
	for i := 0; i < 8; i++ {
		q.ScheduleRef(int64(i), Ref{H: countHandler{}, Op: 3, Arg: &fired})
	}
	q.RunDue(8)
	now := int64(9)
	if avg := testing.AllocsPerRun(100, func() {
		q.ScheduleRef(now, Ref{H: countHandler{}, Op: 3, Arg: &fired})
		q.RunDue(now)
		now++
	}); avg != 0 {
		t.Errorf("inline Ref construction allocates %.1f objects per round, want 0", avg)
	}
}

// dropHandler ignores its deliveries.
type dropHandler struct{}

func (dropHandler) HandleEvent(uint8, int64, Kind, any) {}

// TestCacheHitPathDoesNotAllocate pins the pooled hit delivery: repeated
// hits to a resident line through AccessRef must not allocate in steady
// state.
func TestCacheHitPathDoesNotAllocate(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.L1D.Warm(0x1000, false)
	done := Ref{H: dropHandler{}}
	now := int64(0)
	// Warm the event heap and hit pool.
	for i := 0; i < 8; i++ {
		h.L1D.AccessRef(now, 0x1000, false, done)
		now++
		h.Tick(now + 4)
	}
	if avg := testing.AllocsPerRun(100, func() {
		h.L1D.AccessRef(now, 0x1000, false, done)
		now++
		h.Tick(now + 4)
	}); avg != 0 {
		t.Errorf("hit path allocates %.1f objects per access, want 0", avg)
	}
}

// TestPlainFuncWrapperDoesNotAllocate pins the closure-compat wrappers: a
// long-lived func value rides a Ref without boxing.
func TestPlainFuncWrapperDoesNotAllocate(t *testing.T) {
	var q EventQueue
	fired := 0
	fn := func(int64) { fired++ }
	for i := 0; i < 8; i++ {
		q.Schedule(int64(i), fn)
	}
	q.RunDue(8)
	now := int64(9)
	if avg := testing.AllocsPerRun(100, func() {
		q.Schedule(now, fn)
		q.RunDue(now)
		now++
	}); avg != 0 {
		t.Errorf("Schedule wrapper allocates %.1f objects per round, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}
