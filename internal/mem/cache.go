package mem

import "fmt"

// Kind classifies how an access was serviced, from the requester's point
// of view.
type Kind uint8

const (
	// KindHit: the line was present; data after the hit latency.
	KindHit Kind = iota
	// KindDelayedHit: the line was already being fetched; the access
	// merged into the outstanding MSHR (a miss for hit/miss-prediction
	// purposes, per §6.1's discussion of swim).
	KindDelayedHit
	// KindMiss: the access itself initiated a fetch from below.
	KindMiss
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindHit:
		return "hit"
	case KindDelayedHit:
		return "delayed-hit"
	case KindMiss:
		return "miss"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Supplier is a lower memory level that can deliver and absorb full lines.
type Supplier interface {
	// FetchLine requests the aligned line; done is delivered when the line
	// has arrived at the requester (link bandwidth included).
	FetchLine(now int64, lineAddr uint64, done Ref)
	// WritebackLine absorbs a dirty line evicted by the requester.
	WritebackLine(now int64, lineAddr uint64)
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	Size       int // total bytes
	Ways       int
	LineSize   int // bytes
	HitLatency int // cycles from access to data on a hit
	MSHRs      int // maximum outstanding misses
	// UpLinkBytesPerCycle is the bandwidth of the link that delivers lines
	// from this cache to the level above (e.g. 64 for the L2 per Table 1).
	// Zero means the link is never a bottleneck.
	UpLinkBytesPerCycle int
}

func (c CacheConfig) validate() error {
	if c.Size <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("mem: %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("mem: %s: hit latency %d < 1", c.Name, c.HitLatency)
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("mem: %s: need at least one MSHR", c.Name)
	}
	return nil
}

// CacheStats aggregates a cache's activity.
type CacheStats struct {
	Accesses    uint64
	Hits        uint64
	DelayedHits uint64
	Misses      uint64 // accesses that allocated an MSHR
	Writebacks  uint64
	MSHRRejects uint64 // accesses rejected because all MSHRs were busy
}

// MissRate returns (delayed hits + misses) / accesses — the paper's notion
// of L1 miss rate, under which a delayed hit is a miss.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.DelayedHits+s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

type mshrTarget struct {
	write bool
	kind  Kind
	ref   Ref
}

type mshr struct {
	lineAddr uint64
	targets  []mshrTarget
	// upDones marks targets that are line fetches for an upper cache and
	// therefore need up-link bandwidth on delivery.
	upDones []Ref
}

// Cache event ops (HandleEvent dispatch codes).
const (
	// opCacheFetch (arg *mshr): the tag lookup finished; the fetch departs
	// for the lower level.
	opCacheFetch uint8 = iota
	// opCacheDeliver (arg *mshr): the fill is installed; deliver every
	// merged demand target and recycle the mshr.
	opCacheDeliver
	// opCacheHit (arg *mshrTarget, pooled): deliver one hit access.
	opCacheHit
	// opCacheFill (arg *mshr): the fetched line arrived from below.
	opCacheFill
)

// HandleEvent implements Handler: the cache's own deferred work.
func (c *Cache) HandleEvent(op uint8, now int64, _ Kind, arg any) {
	switch op {
	case opCacheFetch:
		m := arg.(*mshr)
		c.lower.FetchLine(now, m.lineAddr, Ref{H: c, Op: opCacheFill, Arg: m})
	case opCacheDeliver:
		c.deliverTargets(now, arg.(*mshr))
	case opCacheHit:
		c.deliverHit(now, arg.(*mshrTarget))
	case opCacheFill:
		c.fill(now, arg.(*mshr).lineAddr)
	}
}

// Cache is one cache level. It is driven entirely through the shared
// EventQueue: all callbacks fire from EventQueue.RunDue.
type Cache struct {
	cfg   CacheConfig
	eq    *EventQueue
	lower Supplier

	sets      int
	lineShift uint
	setShift  uint // log2(sets); setOf derives the tag with a shift, not a divide
	lines     []cacheLine
	stamp     uint64

	// gen counts MSHR allocations and releases — the only events that can
	// change whether the cache would accept a previously rejected access.
	// The LSQ memoises rejections against it (uop.RejGen) so a load stuck
	// behind a full MSHR file repeats its rejection without re-walking the
	// tag array and MSHR file every cycle.
	gen uint64

	// mshrTab is the MSHR file itself: a flat slot array sized to
	// cfg.MSHRs, matching the small fully-associative structure in real
	// hardware. Lookups scan every slot — at the 8–32 MSHRs of Table 1
	// that is a handful of contiguous compares, cheaper than hashing into
	// a Go map — and the simulator's memory-bound profile is dominated by
	// these lookups (see BenchmarkMSHRLookup). mshrLine mirrors the slots'
	// line addresses (noLine when free) so the scan compares against one
	// compact uint64 array instead of dereferencing a pointer per slot.
	mshrTab   []*mshr
	mshrLine  []uint64
	mshrCount int
	// mshrPool recycles mshr structures (and their targets/upDones
	// capacity) so steady-state misses allocate nothing.
	mshrPool []*mshr
	// hitPool recycles the target structures carried by hit-delivery
	// events.
	hitPool []*mshrTarget
	// pendingFetches queues upper-level line fetches that arrived while
	// all MSHRs were busy; they start as MSHRs free. pfHead indexes the
	// queue's front so a pop never re-slices the backing array (which
	// would strand the consumed prefix for the cache's lifetime); the
	// slice is reset whenever the queue drains.
	pendingFetches []pendingFetch
	pfHead         int

	linkFree int64 // next cycle the up-link is available

	stats CacheStats
	// mshrOccupancy integrates MSHR usage for average-occupancy reporting.
	mshrPeak int
}

type pendingFetch struct {
	lineAddr uint64
	done     Ref
}

// NewCache builds a cache on top of lower, sharing the event queue eq.
func NewCache(cfg CacheConfig, eq *EventQueue, lower Supplier) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eq == nil || lower == nil {
		return nil, fmt.Errorf("mem: %s: nil event queue or lower level", cfg.Name)
	}
	nLines := cfg.Size / cfg.LineSize
	c := &Cache{
		cfg:      cfg,
		eq:       eq,
		lower:    lower,
		sets:     nLines / cfg.Ways,
		lines:    newLines(nLines),
		mshrTab:  make([]*mshr, cfg.MSHRs),
		mshrLine: make([]uint64, cfg.MSHRs),
	}
	for i := range c.mshrLine {
		c.mshrLine[i] = noLine
	}
	for c.lineShift = 0; 1<<c.lineShift != cfg.LineSize; c.lineShift++ {
	}
	for c.setShift = 0; 1<<c.setShift != c.sets; c.setShift++ {
	}
	return c, nil
}

// noLine marks a free MSHR slot in mshrLine. Line addresses are aligned
// to the line size, so the all-ones pattern can never collide.
const noLine = ^uint64(0)

// lookupMSHR returns the busy MSHR registered for lineAddr, or nil. The
// scan covers the whole slot array; entries are sparse and the array is a
// cache line or two.
func (c *Cache) lookupMSHR(lineAddr uint64) *mshr {
	for i, la := range c.mshrLine {
		if la == lineAddr {
			return c.mshrTab[i]
		}
	}
	return nil
}

// allocMSHR takes an mshr from the freelist (or allocates the structure's
// only heap objects, once) and registers it for lineAddr in the first
// free slot. Callers have already checked that a slot is free.
func (c *Cache) allocMSHR(lineAddr uint64) *mshr {
	var m *mshr
	if n := len(c.mshrPool); n > 0 {
		m = c.mshrPool[n-1]
		c.mshrPool[n-1] = nil
		c.mshrPool = c.mshrPool[:n-1]
		m.lineAddr = lineAddr
	} else {
		m = &mshr{lineAddr: lineAddr}
	}
	for i, s := range c.mshrTab {
		if s == nil {
			c.mshrTab[i] = m
			c.mshrLine[i] = lineAddr
			break
		}
	}
	c.mshrCount++
	c.gen++
	if c.mshrCount > c.mshrPeak {
		c.mshrPeak = c.mshrCount
	}
	return m
}

// releaseMSHR unregisters the MSHR for lineAddr and returns it, or nil if
// none is busy for that line.
func (c *Cache) releaseMSHR(lineAddr uint64) *mshr {
	for i, la := range c.mshrLine {
		if la == lineAddr {
			m := c.mshrTab[i]
			c.mshrTab[i] = nil
			c.mshrLine[i] = noLine
			c.mshrCount--
			c.gen++
			return m
		}
	}
	return nil
}

// deliverTargets completes every demand access merged into an mshr, then
// recycles the structure. m has already been removed from the slot table.
func (c *Cache) deliverTargets(now int64, m *mshr) {
	for i := range m.targets {
		t := &m.targets[i]
		t.ref.Deliver(now, t.kind)
		t.ref = Ref{}
	}
	m.targets = m.targets[:0]
	for i := range m.upDones {
		m.upDones[i] = Ref{}
	}
	m.upDones = m.upDones[:0]
	c.mshrPool = append(c.mshrPool, m)
}

// deliverHit completes one hit access after the hit latency. t is a
// pooled *mshrTarget carrying the caller's callback.
func (c *Cache) deliverHit(now int64, t *mshrTarget) {
	done := t.ref
	t.ref = Ref{}
	c.hitPool = append(c.hitPool, t)
	done.Deliver(now, KindHit)
}

// scheduleHit books a hit delivery without allocating: the callback rides
// in a recycled mshrTarget.
func (c *Cache) scheduleHit(when int64, done Ref) {
	var t *mshrTarget
	if n := len(c.hitPool); n > 0 {
		t = c.hitPool[n-1]
		c.hitPool[n-1] = nil
		c.hitPool = c.hitPool[:n-1]
	} else {
		t = &mshrTarget{}
	}
	t.ref = done
	c.eq.ScheduleRef(when, Ref{H: c, Op: opCacheHit, Arg: t})
}

// MustNewCache is NewCache for known-good configurations.
func MustNewCache(cfg CacheConfig, eq *EventQueue, lower Supplier) *Cache {
	c, err := NewCache(cfg, eq, lower)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the cache's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// MSHRPeak returns the highest number of simultaneously busy MSHRs.
func (c *Cache) MSHRPeak() int { return c.mshrPeak }

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the aligned line address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineSize-1) }

func (c *Cache) setOf(lineAddr uint64) ([]cacheLine, uint64) {
	idx := int((lineAddr >> c.lineShift) & uint64(c.sets-1))
	tag := (lineAddr >> c.lineShift) >> c.setShift
	return c.lines[idx*c.cfg.Ways : (idx+1)*c.cfg.Ways], tag
}

func (c *Cache) lookup(lineAddr uint64) *cacheLine {
	set, tag := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Probe reports how an access to addr would be serviced right now, with
// no side effects: the tag-array outcome the cache controller knows at
// lookup time. The LSQ uses it to signal chain suspension at
// miss-detection time (§3.4), before the data returns.
func (c *Cache) Probe(addr uint64) Kind {
	lineAddr := c.LineAddr(addr)
	if ln := c.lookup(lineAddr); ln != nil {
		return KindHit
	}
	if c.lookupMSHR(lineAddr) != nil {
		return KindDelayedHit
	}
	return KindMiss
}

// Access performs a demand access (load or store) of the line containing
// addr. done is invoked — from the event queue — when the data is
// available, with the service Kind. Access returns false, without side
// effects, if the access could not be accepted because all MSHRs are busy;
// the caller (the LSQ) retries on a later cycle.
func (c *Cache) Access(now int64, addr uint64, write bool, done func(now int64, k Kind)) bool {
	return c.AccessRef(now, addr, write, KindFunc(done))
}

// AccessRef is Access with the callback as a Ref, so a caller issuing many
// accesses (the LSQ) schedules no closure per access and the pending
// access survives an active clone (the Ref is remappable).
func (c *Cache) AccessRef(now int64, addr uint64, write bool, done Ref) bool {
	_, ok := c.AccessRefKind(now, addr, write, done)
	return ok
}

// AccessRefKind is AccessRef reporting the tag-array outcome of an
// accepted access — what Probe would have returned immediately before it.
// Callers that need both (the LSQ probes for miss-detection signalling,
// then accesses) save a second tag and MSHR scan per access.
func (c *Cache) AccessRefKind(now int64, addr uint64, write bool, done Ref) (Kind, bool) {
	lineAddr := c.LineAddr(addr)
	if ln := c.lookup(lineAddr); ln != nil {
		c.stats.Accesses++
		c.stats.Hits++
		c.stamp++
		ln.lru = c.stamp
		if write {
			ln.dirty = true
		}
		c.scheduleHit(now+int64(c.cfg.HitLatency), done)
		return KindHit, true
	}
	if m := c.lookupMSHR(lineAddr); m != nil {
		c.stats.Accesses++
		c.stats.DelayedHits++
		m.targets = append(m.targets, mshrTarget{write: write, kind: KindDelayedHit, ref: done})
		return KindDelayedHit, true
	}
	if c.mshrCount >= c.cfg.MSHRs {
		c.stats.MSHRRejects++
		return KindMiss, false
	}
	c.stats.Accesses++
	c.stats.Misses++
	m := c.allocMSHR(lineAddr)
	m.targets = append(m.targets, mshrTarget{write: write, kind: KindMiss, ref: done})
	// The fetch leaves after the tag-lookup latency.
	c.eq.ScheduleRef(now+int64(c.cfg.HitLatency), Ref{H: c, Op: opCacheFetch, Arg: m})
	return KindMiss, true
}

// FetchLine implements Supplier for an upper-level cache: a read of the
// full line, delivered over this cache's up-link.
func (c *Cache) FetchLine(now int64, lineAddr uint64, done Ref) {
	lineAddr = c.LineAddr(lineAddr)
	if ln := c.lookup(lineAddr); ln != nil {
		c.stats.Accesses++
		c.stats.Hits++
		c.stamp++
		ln.lru = c.stamp
		deliver := c.reserveLink(now + int64(c.cfg.HitLatency))
		c.eq.ScheduleRef(deliver, done)
		return
	}
	if m := c.lookupMSHR(lineAddr); m != nil {
		c.stats.Accesses++
		c.stats.DelayedHits++
		m.upDones = append(m.upDones, done)
		return
	}
	if c.mshrCount >= c.cfg.MSHRs {
		// Upper levels have no retry path; queue until an MSHR frees.
		c.stats.MSHRRejects++
		c.pendingFetches = append(c.pendingFetches, pendingFetch{lineAddr: lineAddr, done: done})
		return
	}
	c.stats.Accesses++
	c.stats.Misses++
	m := c.allocMSHR(lineAddr)
	m.upDones = append(m.upDones, done)
	c.eq.ScheduleRef(now+int64(c.cfg.HitLatency), Ref{H: c, Op: opCacheFetch, Arg: m})
}

// WritebackLine implements Supplier: absorb a dirty line from above. If
// present the line is marked dirty; otherwise the writeback is forwarded
// down (no write-allocate for evictions).
func (c *Cache) WritebackLine(now int64, lineAddr uint64) {
	lineAddr = c.LineAddr(lineAddr)
	if ln := c.lookup(lineAddr); ln != nil {
		ln.dirty = true
		return
	}
	c.lower.WritebackLine(now, lineAddr)
}

// fill installs a fetched line and completes all merged targets.
func (c *Cache) fill(now int64, lineAddr uint64) {
	m := c.releaseMSHR(lineAddr)
	if m == nil {
		panic(fmt.Sprintf("mem: %s: fill without MSHR for %#x", c.cfg.Name, lineAddr))
	}

	set, tag := c.setOf(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		victimAddr := (set[victim].tag*uint64(c.sets) + (lineAddr>>c.lineShift)&uint64(c.sets-1)) << c.lineShift
		c.lower.WritebackLine(now, victimAddr)
	}
	dirty := false
	for _, t := range m.targets {
		if t.write {
			dirty = true
		}
	}
	c.stamp++
	set[victim] = cacheLine{valid: true, dirty: dirty, tag: tag, lru: c.stamp}

	// One event delivers every merged demand target (same relative order as
	// one event per target: nothing else is scheduled in between) and then
	// recycles the mshr.
	c.eq.ScheduleRef(now, Ref{H: c, Op: opCacheDeliver, Arg: m})
	for _, done := range m.upDones {
		deliver := c.reserveLink(now)
		c.eq.ScheduleRef(deliver, done)
	}

	// Start one queued upper-level fetch now that an MSHR is free.
	if c.pfHead < len(c.pendingFetches) {
		pf := c.pendingFetches[c.pfHead]
		c.pendingFetches[c.pfHead] = pendingFetch{}
		c.pfHead++
		if c.pfHead == len(c.pendingFetches) {
			c.pendingFetches = c.pendingFetches[:0]
			c.pfHead = 0
		}
		c.FetchLine(now, pf.lineAddr, pf.done)
	}
}

// Warm functionally installs the line containing addr — no latency, no
// events, no demand-access statistics. Used to pre-warm the hierarchy so
// that short simulation samples start from a steady state, standing in
// for the paper's 20-billion-instruction fast-forward.
func (c *Cache) Warm(addr uint64, dirty bool) {
	lineAddr := c.LineAddr(addr)
	if ln := c.lookup(lineAddr); ln != nil {
		c.stamp++
		ln.lru = c.stamp
		if dirty {
			ln.dirty = true
		}
		return
	}
	set, tag := c.setOf(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.stamp++
	set[victim] = cacheLine{valid: true, dirty: dirty, tag: tag, lru: c.stamp}
}

// reserveLink books the up-link for one line transfer beginning no earlier
// than ready and returns the delivery time.
func (c *Cache) reserveLink(ready int64) int64 {
	if c.cfg.UpLinkBytesPerCycle <= 0 {
		return ready
	}
	transfer := int64((c.cfg.LineSize + c.cfg.UpLinkBytesPerCycle - 1) / c.cfg.UpLinkBytesPerCycle)
	start := ready
	if c.linkFree > start {
		start = c.linkFree
	}
	c.linkFree = start + transfer
	return c.linkFree
}

// OutstandingMisses returns the number of busy MSHRs.
func (c *Cache) OutstandingMisses() int { return c.mshrCount }

// SkipMSHRRejects records n MSHR-full rejections without performing the
// accesses. The cycle-skipping engine uses it to replay the rejections a
// blocked load would have accumulated on elided idle cycles; the real
// reject path (AccessArg finding every MSHR busy) touches only this
// counter, so the replay is exact.
func (c *Cache) SkipMSHRRejects(n uint64) { c.stats.MSHRRejects += n }

// AcceptGen identifies the MSHR file's acceptance state: it advances
// exactly when an MSHR is allocated or released (the only transitions —
// fills included, which release — that can change the outcome of an
// access the cache has rejected). While it is unchanged, a rejected
// access would be rejected again.
func (c *Cache) AcceptGen() uint64 { return c.gen }

// pendingFetchLen returns the number of queued upper-level fetches.
func (c *Cache) pendingFetchLen() int { return len(c.pendingFetches) - c.pfHead }
