package mem

import (
	"fmt"
	"sync"
)

// Cloning the memory system copies its architectural state — tag/LRU
// arrays, dirty bits, link reservations, statistics — into a structure
// wired to a fresh event queue. Transient state cannot move across a
// clone: pending events, busy MSHRs and queued fetches hold closures
// bound to the original caches, so the hierarchy must be quiescent. The
// sweep harness only clones warmed machines at cycle zero, where
// quiescence holds by construction; Clone checks it anyway so a misuse
// fails loudly instead of dropping in-flight accesses.

// Clone returns a copy of the cache's architectural state wired to eq and
// lower. The cache must be idle: no busy MSHRs and no queued upper-level
// fetches.
func (c *Cache) Clone(eq *EventQueue, lower Supplier) (*Cache, error) {
	if c.mshrCount > 0 || c.pendingFetchLen() > 0 {
		return nil, fmt.Errorf("mem: %s: clone with %d busy MSHRs, %d pending fetches",
			c.cfg.Name, c.mshrCount, c.pendingFetchLen())
	}
	n, err := NewCache(c.cfg, eq, lower)
	if err != nil {
		return nil, err
	}
	copy(n.lines, c.lines)
	n.stamp = c.stamp
	n.linkFree = c.linkFree
	n.stats = c.stats
	n.mshrPeak = c.mshrPeak
	return n, nil
}

// Clone returns a copy of the memory channel state wired to eq.
func (m *MainMemory) Clone(eq *EventQueue) *MainMemory {
	n := new(MainMemory)
	*n = *m
	n.eq = eq
	return n
}

// Clone returns an independent copy of the whole hierarchy around a fresh
// event queue. The hierarchy must be quiescent: no pending events (and
// hence no in-flight fills anywhere in it).
func (h *Hierarchy) Clone() (*Hierarchy, error) {
	if h.EQ.Len() > 0 {
		return nil, fmt.Errorf("mem: clone with %d pending events", h.EQ.Len())
	}
	eq := &EventQueue{}
	mm := h.Mem.Clone(eq)
	l2, err := h.L2.Clone(eq, mm)
	if err != nil {
		return nil, err
	}
	l1i, err := h.L1I.Clone(eq, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := h.L1D.Clone(eq, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{EQ: eq, L1I: l1i, L1D: l1d, L2: l2, Mem: mm}, nil
}

// Active cloning copies the hierarchy mid-flight — busy MSHRs, queued
// fetches and pending events included. It is possible because events are
// Refs, not closures: every Ref names its Handler and payload, so the
// clone re-points them at the cloned machine's structures through a Remap.
// The protocol has two phases, because a Ref's handler may live outside
// this package (the LSQ, the front end, the engine): CloneActive copies
// the structure and registers the cache-level identities, the caller then
// registers its own handler and payload mappings, and ResolveRemap
// finally rewrites every held Ref. A Ref whose handler or payload has no
// mapping — a PlainFunc test wrapper, say — fails resolution with an
// error, and the caller falls back to a quiescent clone site.

// Remap carries the old→new identity mappings an active clone uses to
// re-point in-flight Refs at the cloned machine.
type Remap struct {
	handlers map[Handler]Handler
	mshrs    map[*mshr]*mshr
	targets  map[*mshrTarget]*mshrTarget
	// Arg resolves payloads foreign to this package (the engine's uops).
	// It must map nil to nil and error on anything it does not recognise.
	Arg func(arg any) (any, error)
}

// NewRemap returns an empty remap.
func NewRemap() *Remap {
	return &Remap{
		handlers: make(map[Handler]Handler),
		mshrs:    make(map[*mshr]*mshr),
		targets:  make(map[*mshrTarget]*mshrTarget),
	}
}

// RegisterHandler maps a handler identity to its clone.
func (rm *Remap) RegisterHandler(old, new Handler) { rm.handlers[old] = new }

// ResolveRef rewrites one Ref onto the cloned machine.
func (rm *Remap) ResolveRef(r Ref) (Ref, error) {
	h, ok := rm.handlers[r.H]
	if !ok {
		return Ref{}, fmt.Errorf("mem: remap: unmapped handler %T", r.H)
	}
	arg, err := rm.resolveArg(r.Arg)
	if err != nil {
		return Ref{}, err
	}
	return Ref{H: h, Op: r.Op, Arg: arg}, nil
}

// resolveArg rewrites an event payload. Hit-delivery targets are cloned
// lazily here — they are pooled structures reachable only through the
// events that carry them.
func (rm *Remap) resolveArg(a any) (any, error) {
	switch v := a.(type) {
	case nil:
		return nil, nil
	case *mshr:
		n, ok := rm.mshrs[v]
		if !ok {
			return nil, fmt.Errorf("mem: remap: unmapped mshr for line %#x", v.lineAddr)
		}
		return n, nil
	case *mshrTarget:
		if n, ok := rm.targets[v]; ok {
			return n, nil
		}
		ref, err := rm.ResolveRef(v.ref)
		if err != nil {
			return nil, err
		}
		n := &mshrTarget{write: v.write, kind: v.kind, ref: ref}
		rm.targets[v] = n
		return n, nil
	default:
		if rm.Arg == nil {
			return nil, fmt.Errorf("mem: remap: unmapped payload %T", a)
		}
		return rm.Arg(a)
	}
}

// cloneActive copies the cache verbatim — busy MSHRs and queued fetches
// included, their Refs still pointing at the old machine — and registers
// the mshr identities in rm. ResolveRemap rewrites the Refs afterwards.
func (c *Cache) cloneActive(eq *EventQueue, lower Supplier, rm *Remap) (*Cache, error) {
	n, err := NewCache(c.cfg, eq, lower)
	if err != nil {
		return nil, err
	}
	copy(n.lines, c.lines)
	n.stamp = c.stamp
	n.linkFree = c.linkFree
	n.stats = c.stats
	n.mshrPeak = c.mshrPeak
	// The generation counter must survive: in-flight LSQ rejection memos
	// are validated against it.
	n.gen = c.gen
	n.mshrCount = c.mshrCount
	for i, m := range c.mshrTab {
		if m == nil {
			continue
		}
		nm := &mshr{lineAddr: m.lineAddr}
		if len(m.targets) > 0 {
			nm.targets = append(nm.targets, m.targets...)
		}
		if len(m.upDones) > 0 {
			nm.upDones = append(nm.upDones, m.upDones...)
		}
		n.mshrTab[i] = nm
		n.mshrLine[i] = c.mshrLine[i]
		rm.mshrs[m] = nm
	}
	if pf := c.pendingFetches[c.pfHead:]; len(pf) > 0 {
		n.pendingFetches = append(n.pendingFetches, pf...)
	}
	rm.RegisterHandler(c, n)
	return n, nil
}

// resolveRemap rewrites the cloned cache's held Refs (mshr targets,
// upper-level dones, queued fetches) onto the cloned machine.
func (c *Cache) resolveRemap(rm *Remap) error {
	for _, m := range c.mshrTab {
		if m == nil {
			continue
		}
		for i := range m.targets {
			r, err := rm.ResolveRef(m.targets[i].ref)
			if err != nil {
				return err
			}
			m.targets[i].ref = r
		}
		for i := range m.upDones {
			r, err := rm.ResolveRef(m.upDones[i])
			if err != nil {
				return err
			}
			m.upDones[i] = r
		}
	}
	for i := range c.pendingFetches {
		r, err := rm.ResolveRef(c.pendingFetches[i].done)
		if err != nil {
			return err
		}
		c.pendingFetches[i].done = r
	}
	return nil
}

// cloneEvents copies the pending events verbatim (old Refs).
func (q *EventQueue) cloneEvents(from *EventQueue) {
	q.seq = from.seq
	q.h = append(q.h[:0], from.h...)
}

// resolveRemap rewrites every pending event's Ref through rm.
func (q *EventQueue) resolveRemap(rm *Remap) error {
	for i := range q.h {
		r, err := rm.ResolveRef(q.h[i].ref)
		if err != nil {
			return err
		}
		q.h[i].ref = r
	}
	return nil
}

// linePools recycles cache line arrays across machine clones, one
// sync.Pool per array length so a pooled buffer always fits exactly.
// Snapshot-heavy sweeps (the prefix-sharing ladder, checkpoint forks)
// build and discard whole hierarchies in a loop; the line arrays are the
// bulk of each clone's bytes, and reusing them keeps the loop's
// footprint near the live set instead of growing with the fork count.
var linePools sync.Map // map[int]*sync.Pool of []cacheLine

func linePool(n int) *sync.Pool {
	if p, ok := linePools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := linePools.LoadOrStore(n, new(sync.Pool))
	return p.(*sync.Pool)
}

// newLines returns a zeroed line array of length n, reusing a recycled
// buffer when one is available.
func newLines(n int) []cacheLine {
	if v := linePool(n).Get(); v != nil {
		s := v.([]cacheLine)
		clear(s)
		return s
	}
	return make([]cacheLine, n)
}

// Recycle returns the hierarchy's line arrays to the clone pool. The
// hierarchy must never be used again: its caches are left without
// storage on purpose, so a late access fails loudly instead of silently
// sharing state with a newer machine.
func (h *Hierarchy) Recycle() {
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2} {
		if c.lines != nil {
			linePool(len(c.lines)).Put(c.lines)
			c.lines = nil
		}
	}
}

// CloneActive copies the hierarchy mid-flight: architectural state, busy
// MSHRs, queued upper-level fetches and the pending event list. The
// returned hierarchy's Refs still point at the old machine; the caller
// registers its own handler clones (LSQ, front end, engine) and a payload
// resolver in rm, then calls ResolveRemap on the result. Until then the
// clone must not be ticked.
func (h *Hierarchy) CloneActive(rm *Remap) (*Hierarchy, error) {
	eq := &EventQueue{}
	eq.cloneEvents(h.EQ)
	mm := h.Mem.Clone(eq)
	l2, err := h.L2.cloneActive(eq, mm, rm)
	if err != nil {
		return nil, err
	}
	l1i, err := h.L1I.cloneActive(eq, l2, rm)
	if err != nil {
		return nil, err
	}
	l1d, err := h.L1D.cloneActive(eq, l2, rm)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{EQ: eq, L1I: l1i, L1D: l1d, L2: l2, Mem: mm}, nil
}

// ResolveRemap completes an active clone: every Ref held by the event
// queue, the caches' MSHRs and the queued fetches is rewritten onto the
// cloned machine. An unmapped handler or payload is an error, and the
// clone must then be discarded.
func (h *Hierarchy) ResolveRemap(rm *Remap) error {
	if err := h.EQ.resolveRemap(rm); err != nil {
		return err
	}
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2} {
		if err := c.resolveRemap(rm); err != nil {
			return err
		}
	}
	return nil
}
