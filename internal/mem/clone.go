package mem

import "fmt"

// Cloning the memory system copies its architectural state — tag/LRU
// arrays, dirty bits, link reservations, statistics — into a structure
// wired to a fresh event queue. Transient state cannot move across a
// clone: pending events, busy MSHRs and queued fetches hold closures
// bound to the original caches, so the hierarchy must be quiescent. The
// sweep harness only clones warmed machines at cycle zero, where
// quiescence holds by construction; Clone checks it anyway so a misuse
// fails loudly instead of dropping in-flight accesses.

// Clone returns a copy of the cache's architectural state wired to eq and
// lower. The cache must be idle: no busy MSHRs and no queued upper-level
// fetches.
func (c *Cache) Clone(eq *EventQueue, lower Supplier) (*Cache, error) {
	if c.mshrCount > 0 || c.pendingFetchLen() > 0 {
		return nil, fmt.Errorf("mem: %s: clone with %d busy MSHRs, %d pending fetches",
			c.cfg.Name, c.mshrCount, c.pendingFetchLen())
	}
	n, err := NewCache(c.cfg, eq, lower)
	if err != nil {
		return nil, err
	}
	copy(n.lines, c.lines)
	n.stamp = c.stamp
	n.linkFree = c.linkFree
	n.stats = c.stats
	n.mshrPeak = c.mshrPeak
	return n, nil
}

// Clone returns a copy of the memory channel state wired to eq.
func (m *MainMemory) Clone(eq *EventQueue) *MainMemory {
	n := new(MainMemory)
	*n = *m
	n.eq = eq
	return n
}

// Clone returns an independent copy of the whole hierarchy around a fresh
// event queue. The hierarchy must be quiescent: no pending events (and
// hence no in-flight fills anywhere in it).
func (h *Hierarchy) Clone() (*Hierarchy, error) {
	if h.EQ.Len() > 0 {
		return nil, fmt.Errorf("mem: clone with %d pending events", h.EQ.Len())
	}
	eq := &EventQueue{}
	mm := h.Mem.Clone(eq)
	l2, err := h.L2.Clone(eq, mm)
	if err != nil {
		return nil, err
	}
	l1i, err := h.L1I.Clone(eq, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := h.L1D.Clone(eq, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{EQ: eq, L1I: l1i, L1D: l1d, L2: l2, Mem: mm}, nil
}
