package mem

import (
	"fmt"

	"repro/internal/codec"
)

// Checkpoint serialization of the memory system. The encoded state is
// exactly what Clone copies: tag/LRU arrays, dirty bits, link
// reservations and statistics. Transient state cannot cross a file any
// more than it can cross a clone — busy MSHRs and queued fetches hold
// closures bound to the live caches — so EncodeTo requires quiescence and
// writes the (zero) MSHR occupancy so the decoder can verify it.

// EncodeTo writes the cache's architectural state. The cache must be
// idle: no busy MSHRs and no queued upper-level fetches.
func (c *Cache) EncodeTo(w *codec.Writer) error {
	if c.mshrCount > 0 || c.pendingFetchLen() > 0 {
		return fmt.Errorf("mem: %s: encode with %d busy MSHRs, %d pending fetches",
			c.cfg.Name, c.mshrCount, c.pendingFetchLen())
	}
	w.String(c.cfg.Name)
	w.Int(len(c.lines))
	for i := range c.lines {
		ln := &c.lines[i]
		w.Bool(ln.valid)
		w.Bool(ln.dirty)
		w.U64(ln.tag)
		w.U64(ln.lru)
	}
	w.U64(c.stamp)
	w.Int(c.mshrCount) // always zero; the decoder cross-checks
	w.Int(c.pendingFetchLen())
	w.I64(c.linkFree)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.DelayedHits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Writebacks)
	w.U64(c.stats.MSHRRejects)
	w.Int(c.mshrPeak)
	return w.Err()
}

// decodeInto restores state written by EncodeTo into a freshly built
// cache of the same configuration.
func (c *Cache) decodeInto(r *codec.Reader) error {
	if name := r.String(256); name != c.cfg.Name && r.Err() == nil {
		return fmt.Errorf("mem: decoding %q state into %q cache", name, c.cfg.Name)
	}
	if n := r.Int(); n != len(c.lines) && r.Err() == nil {
		return fmt.Errorf("mem: %s: decoded line count %d, cache has %d", c.cfg.Name, n, len(c.lines))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.valid = r.Bool()
		ln.dirty = r.Bool()
		ln.tag = r.U64()
		ln.lru = r.U64()
	}
	c.stamp = r.U64()
	if busy, pending := r.Int(), r.Int(); (busy != 0 || pending != 0) && r.Err() == nil {
		return fmt.Errorf("mem: %s: file carries %d busy MSHRs, %d pending fetches; checkpoints are quiescent",
			c.cfg.Name, busy, pending)
	}
	c.linkFree = r.I64()
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.DelayedHits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.Writebacks = r.U64()
	c.stats.MSHRRejects = r.U64()
	c.mshrPeak = r.Int()
	return r.Err()
}

// EncodeTo writes the memory channel's state.
func (m *MainMemory) EncodeTo(w *codec.Writer) {
	w.I64(m.linkFree)
	w.U64(m.fetches)
	w.U64(m.writebacks)
}

func (m *MainMemory) decodeInto(r *codec.Reader) {
	m.linkFree = r.I64()
	m.fetches = r.U64()
	m.writebacks = r.U64()
}

// EncodeTo writes the whole hierarchy's architectural state. The
// hierarchy must be quiescent (no pending events), exactly as for Clone.
func (h *Hierarchy) EncodeTo(w *codec.Writer) error {
	if h.EQ.Len() > 0 {
		return fmt.Errorf("mem: encode with %d pending events", h.EQ.Len())
	}
	h.Mem.EncodeTo(w)
	for _, c := range []*Cache{h.L2, h.L1I, h.L1D} {
		if err := c.EncodeTo(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// DecodeHierarchy rebuilds a hierarchy of the given configuration and
// restores the state written by EncodeTo. The configuration must match
// the one the encoder ran under (the caller validates geometry via the
// checkpoint fingerprint; this decoder re-checks structure sizes).
func DecodeHierarchy(r *codec.Reader, cfg HierarchyConfig) (*Hierarchy, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	h.Mem.decodeInto(r)
	for _, c := range []*Cache{h.L2, h.L1I, h.L1D} {
		if err := c.decodeInto(r); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
