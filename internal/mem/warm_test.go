package mem

import "testing"

func TestWarmInstallsLines(t *testing.T) {
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.WarmData(0x1234, false)
	if h.L1D.Probe(0x1234) != KindHit {
		t.Fatal("warm did not install in L1D")
	}
	if h.L2.Probe(0x1234) != KindHit {
		t.Fatal("warm did not install in L2")
	}
	if h.L1I.Probe(0x1234) != KindMiss {
		t.Fatal("data warm leaked into L1I")
	}
	h.WarmInst(0x9999)
	if h.L1I.Probe(0x9999) != KindHit {
		t.Fatal("warm did not install in L1I")
	}
	// Warm adds no demand-access statistics.
	if h.L1D.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 {
		t.Fatal("warm counted as demand accesses")
	}
	// A warmed demand access hits with normal latency.
	var doneAt int64 = -1
	h.L1D.Access(10, 0x1234, false, func(now int64, k Kind) { doneAt = now })
	h.Tick(13)
	if doneAt != 13 {
		t.Fatalf("warmed access at %d, want 13", doneAt)
	}
}

func TestWarmDirtyAndEviction(t *testing.T) {
	// Warm is purely functional: it installs tag state and generates no
	// memory traffic, even when it displaces a dirty line (there is no
	// data to preserve during a fast-forward).
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: 10}
	c := MustNewCache(smallCfg, eq, low)
	c.Warm(0x0, true) // dirty
	setStride := uint64(smallCfg.Size / smallCfg.Ways)
	c.Warm(setStride, false)
	c.Warm(2*setStride, false) // evicts dirty 0x0: silently
	if low.wbs != 0 || low.fetches != 0 {
		t.Fatalf("warm generated traffic: wbs=%d fetches=%d", low.wbs, low.fetches)
	}
	// Re-warming a present line refreshes LRU and can set dirty; the
	// dirty state then interacts normally with demand traffic.
	c.Warm(setStride, true)
	nop := func(int64, Kind) {}
	c.Access(0, 2*setStride, false, nop) // hit, refresh LRU
	c.Access(1, 3*setStride, false, nop) // demand miss: evicts setStride (dirty)
	for cyc := int64(0); cyc <= 30; cyc++ {
		eq.RunDue(cyc)
	}
	if low.wbs != 1 {
		t.Fatalf("dirty warmed line not written back on demand eviction: %d", low.wbs)
	}
}

func TestL2UpLinkBandwidth(t *testing.T) {
	// Two L1 fetches hitting the L2 back-to-back serialize on the
	// 64 B/cycle up-link: one cycle apart.
	h := MustNewHierarchy(DefaultHierarchyConfig())
	h.L2.Warm(0x1000, false)
	h.L2.Warm(0x2000, false)
	var t1, t2 int64 = -1, -1
	h.L2.FetchLine(0, 0x1000, PlainFunc(func(now int64) { t1 = now }))
	h.L2.FetchLine(0, 0x2000, PlainFunc(func(now int64) { t2 = now }))
	for c := int64(0); c <= 30; c++ {
		h.Tick(c)
	}
	// L2 latency 10 + 1-cycle transfer = 11; the second transfer waits
	// for the link: 12.
	if t1 != 11 || t2 != 12 {
		t.Fatalf("deliveries at %d,%d; want 11,12 (link serialization)", t1, t2)
	}
}

func TestProbeAfterEviction(t *testing.T) {
	eq := &EventQueue{}
	low := &fakeLower{eq: eq, latency: 5}
	c := MustNewCache(smallCfg, eq, low)
	setStride := uint64(smallCfg.Size / smallCfg.Ways)
	c.Warm(0x0, false)
	c.Warm(setStride, false)
	c.Warm(2*setStride, false)
	if c.Probe(0x0) != KindMiss {
		t.Fatal("evicted line should probe as miss")
	}
}
