// Package bitvec provides the small word-parallel bit-set kernels the
// instruction-queue designs build their occupancy and readiness bitmaps
// from: fixed-capacity multi-word sets with position insertion/removal
// (shifting the tail, for position-indexed segments and buffers) and the
// usual test/set/clear/popcount operations over []uint64 words.
package bitvec

import "math/bits"

// Words returns the number of uint64 words needed for n bits.
func Words(n int) int { return (n + 63) >> 6 }

// New returns a zeroed bit set with capacity for n bits.
func New(n int) []uint64 { return make([]uint64, Words(n)) }

// Test reports whether bit i is set.
func Test(w []uint64, i int) bool { return w[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func Set(w []uint64, i int) { w[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func Clear(w []uint64, i int) { w[i>>6] &^= 1 << (uint(i) & 63) }

// Assign sets bit i to v.
func Assign(w []uint64, i int, v bool) {
	if v {
		Set(w, i)
	} else {
		Clear(w, i)
	}
}

// Count returns the number of set bits.
func Count(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// Any reports whether any bit is set.
func Any(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1.
func NextSet(w []uint64, i int) int {
	if i < 0 {
		i = 0
	}
	k := i >> 6
	if k >= len(w) {
		return -1
	}
	// Mask off bits below i in the first word.
	x := w[k] &^ ((1 << (uint(i) & 63)) - 1)
	for {
		if x != 0 {
			return k<<6 + bits.TrailingZeros64(x)
		}
		k++
		if k >= len(w) {
			return -1
		}
		x = w[k]
	}
}

// Insert shifts bits at positions >= i up by one and sets bit i to v
// (mirrors inserting an element at position i of a position-indexed
// sequence). The top bit of the last word is discarded; callers size the
// set so it is never populated.
func Insert(w []uint64, i int, v bool) {
	k := i >> 6
	off := uint(i) & 63
	low := (uint64(1) << off) - 1
	carry := w[k] >> 63
	w[k] = w[k]&low | (w[k]&^low)<<1
	if v {
		w[k] |= 1 << off
	}
	for k++; k < len(w); k++ {
		nc := w[k] >> 63
		w[k] = w[k]<<1 | carry
		carry = nc
	}
}

// Remove shifts bits at positions > i down by one, dropping bit i
// (mirrors removing position i of a position-indexed sequence).
func Remove(w []uint64, i int) {
	k := i >> 6
	off := uint(i) & 63
	low := (uint64(1) << off) - 1
	hi := w[k] &^ low &^ (1 << off)
	w[k] = w[k]&low | hi>>1
	for j := k + 1; j < len(w); j++ {
		w[j-1] |= (w[j] & 1) << 63
		w[j] >>= 1
	}
}
