package bitvec

import (
	"testing"
)

// model is a reference implementation: a plain bool slice.
type model []bool

func (m *model) insert(i int, v bool) {
	*m = append(*m, false)
	copy((*m)[i+1:], (*m)[i:])
	(*m)[i] = v
}

func (m *model) remove(i int) {
	copy((*m)[i:], (*m)[i+1:])
	*m = (*m)[:len(*m)-1]
}

func (m model) count() int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

func (m model) nextSet(i int) int {
	for ; i < len(m); i++ {
		if m[i] {
			return i
		}
	}
	return -1
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// TestAgainstModel drives random insert/remove/set/clear sequences across
// word boundaries and compares every observable against the bool-slice
// model.
func TestAgainstModel(t *testing.T) {
	const capacity = 200 // > 3 words
	r := &rng{s: 42}
	w := New(capacity)
	var m model

	check := func(step int) {
		t.Helper()
		if got, want := Count(w), m.count(); got != want {
			t.Fatalf("step %d: Count = %d, want %d", step, got, want)
		}
		if got, want := Any(w), m.count() > 0; got != want {
			t.Fatalf("step %d: Any = %v, want %v", step, got, want)
		}
		for i := 0; i < len(m); i++ {
			if Test(w, i) != m[i] {
				t.Fatalf("step %d: bit %d = %v, want %v", step, i, Test(w, i), m[i])
			}
		}
		for i := 0; i <= len(m); i++ {
			if got, want := NextSet(w, i), m.nextSet(i); got != want {
				t.Fatalf("step %d: NextSet(%d) = %d, want %d", step, i, got, want)
			}
		}
	}

	for step := 0; step < 4000; step++ {
		switch op := r.intn(4); {
		case op == 0 && len(m) < capacity-1, len(m) == 0:
			i := r.intn(len(m) + 1)
			v := r.intn(2) == 0
			Insert(w, i, v)
			m.insert(i, v)
		case op == 1:
			i := r.intn(len(m))
			Remove(w, i)
			m.remove(i)
		case op == 2:
			i := r.intn(len(m))
			Set(w, i)
			m[i] = true
		default:
			i := r.intn(len(m))
			v := r.intn(2) == 0
			Assign(w, i, v)
			m[i] = v
		}
		check(step)
	}
}
