package presched_test

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/iq/iqtest"
	"repro/internal/presched"
)

func TestConformanceFuzz(t *testing.T) {
	for name, cfg := range map[string]presched.Config{
		"default-320": presched.DefaultConfig(320),
		"tiny":        {Lines: 4, LineWidth: 3, IssueBuffer: 4, PredictedLoadLatency: 4},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			iqtest.Fuzz(t, func() iq.Queue { return presched.MustNew(cfg) }, iqtest.DefaultOptions())
		})
	}
}

func TestCloneFuzz(t *testing.T) {
	iqtest.CloneFuzz(t, func() iq.Queue { return presched.MustNew(presched.DefaultConfig(320)) }, iqtest.DefaultOptions())
}
