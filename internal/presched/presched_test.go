package presched

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

func alu(seq int64, s1, s2, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d})
}

func load(seq int64, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.Load, Src1: isa.RegNone, Src2: isa.RegNone, Dest: d, Size: 8})
}

func always(*uop.UOp) bool { return true }

func TestDefaultConfigSizes(t *testing.T) {
	// The paper's prescheduling points: 128, 320, 704, 1472 total slots
	// = 32-entry buffer + 8/24/56/120 lines of 12.
	for _, c := range []struct{ total, lines int }{
		{128, 8}, {320, 24}, {704, 56}, {1472, 120},
	} {
		cfg := DefaultConfig(c.total)
		if cfg.Lines != c.lines {
			t.Errorf("DefaultConfig(%d).Lines = %d, want %d", c.total, cfg.Lines, c.lines)
		}
		q := MustNew(cfg)
		if q.Capacity() != c.total {
			t.Errorf("capacity = %d, want %d", q.Capacity(), c.total)
		}
	}
	if DefaultConfig(10).Lines != 1 {
		t.Error("degenerate size should clamp to one line")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Lines: 0, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 0, IssueBuffer: 32, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 12, IssueBuffer: 0, PredictedLoadLatency: 4},
		{Lines: 8, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if q := MustNew(DefaultConfig(128)); q.Name() != "prescheduled" || q.ExtraDispatchStages() != 1 {
		t.Error("identity wrong")
	}
}

func TestReadyInstructionFlowsThroughHeadRow(t *testing.T) {
	q := MustNew(Config{Lines: 8, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4})
	u := alu(0, isa.RegNone, isa.RegNone, 1)
	q.BeginCycle(0)
	if !q.Dispatch(0, u) {
		t.Fatal("dispatch failed")
	}
	if q.Len() != 1 {
		t.Fatal("len")
	}
	// Cycle 1: head row drains to the buffer; not issuable that cycle.
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 0 {
		t.Fatal("issued in the buffer-arrival cycle")
	}
	q.BeginCycle(2)
	if got := q.Issue(2, 8, always); len(got) != 1 || got[0] != u {
		t.Fatalf("issue = %v", got)
	}
	if q.Len() != 0 {
		t.Error("len after issue")
	}
}

func TestDependentPlacedInLaterRow(t *testing.T) {
	q := MustNew(Config{Lines: 16, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	con := alu(1, 1, isa.RegNone, 2)
	con.Prod[0] = ld
	q.Dispatch(0, con)
	// Load predicted available at 0+0+1+4 = 5: consumer goes to row
	// offset 5. Drive the protocol; the consumer must not reach the
	// buffer before ~5 cycles have elapsed.
	reachedBuf := int64(-1)
	for cycle := int64(1); cycle <= 10; cycle++ {
		q.BeginCycle(cycle)
		for _, u := range q.buf {
			if u == con && reachedBuf < 0 {
				reachedBuf = cycle
			}
		}
		q.Issue(cycle, 8, always)
		// Let the load complete right after issue with its predicted hit
		// latency so the consumer is ready when it arrives.
		if ld.IssueCycle != uop.NotYet && ld.Complete == uop.NotYet {
			ld.Complete = ld.IssueCycle + 4
		}
	}
	if reachedBuf < 5 {
		t.Errorf("consumer reached the buffer at cycle %d, want >= 5", reachedBuf)
	}
	if con.IssueCycle == uop.NotYet {
		t.Error("consumer never issued")
	}
}

func TestMispredictedLoadCampsInBuffer(t *testing.T) {
	// A load that misses leaves its dependent sitting unready in the
	// issue buffer — the weakness the paper attributes to prescheduling.
	q := MustNew(Config{Lines: 16, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	con := alu(1, 1, isa.RegNone, 2)
	con.Prod[0] = ld
	q.Dispatch(0, con)

	inBufUnready := 0
	for cycle := int64(1); cycle <= 30; cycle++ {
		q.BeginCycle(cycle)
		q.Issue(cycle, 8, always)
		// The load misses: data not back until cycle 25.
		if ld.IssueCycle != uop.NotYet && ld.Complete == uop.NotYet {
			ld.Complete = 25
			q.NotifyLoadMiss(cycle, ld) // no-op by design
		}
		for _, u := range q.buf {
			if u == con && !u.Ready(cycle) {
				inBufUnready++
			}
		}
	}
	if inBufUnready < 10 {
		t.Errorf("dependent camped unready for %d cycles, expected many", inBufUnready)
	}
	if con.IssueCycle == uop.NotYet || con.IssueCycle < 25 {
		t.Errorf("consumer issued at %d, want >= 25", con.IssueCycle)
	}
}

func TestRowOverflowFallsToLaterRows(t *testing.T) {
	q := MustNew(Config{Lines: 4, LineWidth: 2, IssueBuffer: 4, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	// Fill row 0 (two ready instructions), third spills to row 1.
	for i := int64(0); i < 3; i++ {
		if !q.Dispatch(0, alu(i, isa.RegNone, isa.RegNone, 1)) {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	row0 := q.lines[q.head%q.cfg.Lines]
	row1 := q.lines[(q.head+1)%q.cfg.Lines]
	if len(row0) != 2 || len(row1) != 1 {
		t.Fatalf("row fill = %d/%d", len(row0), len(row1))
	}
}

func TestDispatchStallWhenArrayFull(t *testing.T) {
	q := MustNew(Config{Lines: 2, LineWidth: 1, IssueBuffer: 2, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	if !q.Dispatch(0, alu(0, isa.RegNone, isa.RegNone, 1)) ||
		!q.Dispatch(0, alu(1, isa.RegNone, isa.RegNone, 1)) {
		t.Fatal("fills failed")
	}
	if q.Dispatch(0, alu(2, isa.RegNone, isa.RegNone, 1)) {
		t.Fatal("dispatch into full array accepted")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_stall_full") != 1 {
		t.Error("stall not counted")
	}
}

func TestBufferStallsArray(t *testing.T) {
	// Rows cannot drain while the buffer is full of unready campers.
	q := MustNew(Config{Lines: 8, LineWidth: 2, IssueBuffer: 2, PredictedLoadLatency: 4})
	ghost := load(99, 9)
	q.BeginCycle(0)
	for i := int64(0); i < 4; i++ {
		u := alu(i, 9, isa.RegNone, 1)
		u.Prod[0] = ghost // never ready
		q.Dispatch(0, u)
	}
	for cycle := int64(1); cycle <= 6; cycle++ {
		q.BeginCycle(cycle)
		q.Issue(cycle, 8, always)
	}
	if len(q.buf) != 2 {
		t.Fatalf("buffer holds %d, want 2 campers", len(q.buf))
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d; array must retain the remainder", q.Len())
	}
	// Once the ghost completes, everything drains. The writeback call
	// delivers the wakeup, as the pipeline would for a real producer.
	ghost.Complete = 7
	q.Writeback(7, ghost)
	for cycle := int64(7); cycle <= 14; cycle++ {
		q.BeginCycle(cycle)
		q.Issue(cycle, 8, always)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after drain", q.Len())
	}
}

func TestAvailabilityTableUsesResolvedTimes(t *testing.T) {
	q := MustNew(Config{Lines: 16, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4})
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	// The load resolves late (a miss), before the consumer dispatches:
	// the consumer must be scheduled with the real completion time.
	ld.Complete = 20
	con := alu(1, 1, isa.RegNone, 2)
	con.Prod[0] = ld
	q.BeginCycle(1)
	q.Dispatch(1, con)
	// Predicted ready = 20 → row offset 19, clamped to Lines-1 = 15.
	found := -1
	for k := 0; k < q.cfg.Lines; k++ {
		for _, u := range q.lines[(q.head+k)%q.cfg.Lines] {
			if u == con {
				found = k // head-relative row offset
			}
		}
	}
	if found < 10 {
		t.Errorf("consumer in row offset %d; resolved miss latency should push it deep", found)
	}
}

func TestWritebackReleasesAvailRow(t *testing.T) {
	q := MustNew(DefaultConfig(128))
	q.BeginCycle(0)
	ld := load(0, 1)
	q.Dispatch(0, ld)
	if !q.avail[1].valid {
		t.Fatal("avail row not set")
	}
	// Younger producer of the same register.
	ld2 := load(1, 1)
	q.Dispatch(0, ld2)
	q.Writeback(5, ld)
	if !q.avail[1].valid || q.avail[1].producer != ld2 {
		t.Fatal("younger row clobbered")
	}
	q.Writeback(6, ld2)
	if q.avail[1].valid {
		t.Fatal("row not released")
	}
	// Writeback of a destination-less op is a no-op.
	st := uop.New(2, isa.Inst{Class: isa.Store, Src1: 1, Src2: 2, Size: 8})
	q.Writeback(7, st)
}

func TestStatsComplete(t *testing.T) {
	q := MustNew(DefaultConfig(128))
	q.BeginCycle(0)
	q.Dispatch(0, alu(0, isa.RegNone, isa.RegNone, 1))
	q.BeginCycle(1)
	q.Issue(1, 8, always)
	s := stats.NewSet()
	q.CollectStats(s)
	for _, name := range []string{
		"iq_dispatched", "iq_issued", "iq_stall_full",
		"presched_buf_occupancy_avg", "presched_buf_unready_avg",
		"presched_array_occupancy_avg",
	} {
		if _, ok := s.Get(name); !ok {
			t.Errorf("missing stat %q", name)
		}
	}
	// No-op notifications must not panic.
	q.NotifyLoadMiss(0, nil)
	q.NotifyLoadComplete(0, nil)
	q.EndCycle(0, false)
}
