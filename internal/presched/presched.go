// Package presched implements the prescheduling instruction queue of
// Michaud & Seznec, the quasi-static dependence-based baseline the paper
// compares against (§2, §6.3).
//
// Instructions are placed at dispatch into a scheduling array whose rows
// correspond to future cycles, using latencies predicted from a register
// availability table (loads are assumed to hit the L1). Each cycle the
// oldest row drains into a small conventional issue buffer; instructions
// issue only from that buffer. A mispredicted load latency leaves the
// load's dependents camping in the issue buffer long before they are
// ready — the inflexibility the segmented IQ's dynamic chains remove.
package presched

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

// Config describes a prescheduling IQ.
type Config struct {
	// Lines is the number of scheduling-array rows.
	Lines int
	// LineWidth is the instruction slots per row (12, per the authors'
	// recommended configuration).
	LineWidth int
	// IssueBuffer is the size of the fully associative issue buffer (32).
	IssueBuffer int
	// PredictedLoadLatency is the assumed load-to-use latency (EA + L1
	// hit).
	PredictedLoadLatency int
	// Threads is the number of hardware contexts sharing the queue; the
	// availability table is replicated per context. 0 means 1.
	Threads int
	// StatsEvery samples the per-cycle buffer-readiness statistics every
	// n cycles (0 or 1: every cycle). Scheduling is unaffected.
	StatsEvery int
}

// DefaultConfig returns the configuration the paper simulates for a given
// total capacity: a 32-entry issue buffer plus 12-wide rows.
func DefaultConfig(totalSlots int) Config {
	lines := (totalSlots - 32) / 12
	if lines < 1 {
		lines = 1
	}
	return Config{Lines: lines, LineWidth: 12, IssueBuffer: 32, PredictedLoadLatency: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lines < 1 || c.LineWidth < 1 || c.IssueBuffer < 1 {
		return fmt.Errorf("presched: non-positive geometry %+v", c)
	}
	if c.PredictedLoadLatency < 1 {
		return fmt.Errorf("presched: predicted load latency %d < 1", c.PredictedLoadLatency)
	}
	return nil
}

type availEntry struct {
	valid    bool
	producer *uop.UOp
	at       int64 // predicted availability cycle
}

// PreschedIQ implements iq.Queue.
//
// Only the issue buffer participates in wakeup; its readiness state is a
// ticket-indexed bitmap maintained event-driven by an iq.Scoreboard.
// Each buffer entry holds a ticket from a small freelist; the buffer scan
// in Issue and the camper pick in recycleCampers test one bit instead of
// re-evaluating the entry's operands, and the unreadiness statistic is a
// popcount.
type PreschedIQ struct {
	cfg   Config
	lines [][]*uop.UOp // ring buffer of rows
	head  int          // index of the oldest row
	base  int64        // predicted-ready cycle of the oldest row
	buf   []*uop.UOp   // issue buffer
	bufAt []int64      // cycle each buffer entry arrived (parallel to buf)
	bufH  []int32      // scoreboard ticket of each entry (parallel to buf)
	total int
	now   int64 // current cycle; clocks wakeup deliveries

	tslot  []*uop.UOp // ticket -> buffer instruction
	free   []int32    // free tickets (LIFO)
	readyW []uint64   // ticket-indexed: in buffer and issue-ready
	storeW []uint64   // ticket-indexed: buffered stores (Ready-stat correction)
	sb     iq.Scoreboard

	// unresolved holds issued producers whose completion time was still
	// unknown when they left the queue; the next cycle re-checks them
	// (the execution core stamps Complete right after Issue returns).
	unresolved []*uop.UOp

	outScratch []*uop.UOp // backs Issue's result; reused every cycle

	avail []availEntry // threads * NumRegs

	dem iq.Watermark // occupancy high-watermark, for prefix sharing

	stDispatched stats.Counter
	stIssued     stats.Counter
	stStallFull  stats.Counter
	stRecycled   stats.Counter
	stBufOcc     stats.Mean
	stBufUnready stats.Mean
	stArrayOcc   stats.Mean
}

// New builds a prescheduling IQ.
func New(cfg Config) (*PreschedIQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	q := &PreschedIQ{
		cfg:    cfg,
		lines:  make([][]*uop.UOp, cfg.Lines),
		avail:  make([]availEntry, threads*isa.NumRegs),
		base:   0,
		tslot:  make([]*uop.UOp, cfg.IssueBuffer),
		free:   make([]int32, cfg.IssueBuffer),
		readyW: bitvec.New(cfg.IssueBuffer),
		storeW: bitvec.New(cfg.IssueBuffer),
	}
	for i := range q.free {
		q.free[i] = int32(cfg.IssueBuffer - 1 - i)
	}
	q.sb.Grow(cfg.IssueBuffer)
	return q, nil
}

// availRow returns a thread's availability-table entry for reg.
func (q *PreschedIQ) availRow(thread, reg int) *availEntry {
	return &q.avail[thread*isa.NumRegs+reg]
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *PreschedIQ {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Name implements iq.Queue.
func (q *PreschedIQ) Name() string { return "prescheduled" }

// Capacity implements iq.Queue.
func (q *PreschedIQ) Capacity() int { return q.cfg.IssueBuffer + q.cfg.Lines*q.cfg.LineWidth }

// Len implements iq.Queue.
func (q *PreschedIQ) Len() int { return q.total }

// ExtraDispatchStages implements iq.Queue: prescheduling costs an extra
// dispatch cycle, as the paper charges (§5).
func (q *PreschedIQ) ExtraDispatchStages() int { return 1 }

// wake delivers p's now-known completion time to parked buffer entries.
func (q *PreschedIQ) wake(cycle int64, p *uop.UOp) {
	for _, h := range q.sb.Wake(p, cycle) {
		bitvec.Set(q.readyW, int(h))
	}
}

// advance moves the queue's clock to cycle: re-check issued producers
// whose completion time was unknown and deliver scheduled wakeups.
func (q *PreschedIQ) advance(cycle int64) {
	q.now = cycle
	if len(q.unresolved) > 0 {
		kept := q.unresolved[:0]
		for _, u := range q.unresolved {
			if u.Complete == uop.NotYet {
				kept = append(kept, u)
				continue
			}
			q.wake(cycle, u)
		}
		for i := len(kept); i < len(q.unresolved); i++ {
			q.unresolved[i] = nil
		}
		q.unresolved = kept
	}
	for _, h := range q.sb.Due(cycle) {
		bitvec.Set(q.readyW, int(h))
	}
}

// bufEnter places u in the issue buffer, assigning a scoreboard ticket.
func (q *PreschedIQ) bufEnter(u *uop.UOp, cycle int64) {
	t := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.tslot[t] = u
	if u.IsStore() {
		bitvec.Set(q.storeW, int(t))
	}
	if q.sb.Track(t, u, cycle) {
		bitvec.Set(q.readyW, int(t))
	}
	q.buf = append(q.buf, u)
	q.bufAt = append(q.bufAt, cycle)
	q.bufH = append(q.bufH, t)
}

// bufLeave releases ticket t after its instruction left the buffer.
func (q *PreschedIQ) bufLeave(t int32) {
	q.sb.Untrack(t)
	q.tslot[t] = nil
	bitvec.Clear(q.readyW, int(t))
	bitvec.Clear(q.storeW, int(t))
	q.free = append(q.free, t)
}

// BeginCycle implements iq.Queue: the oldest due row drains into the issue
// buffer; the array advances one row per cycle at most, and stalls while
// the buffer lacks space.
func (q *PreschedIQ) BeginCycle(cycle int64) {
	q.advance(cycle)
	if q.base <= cycle {
		// Recycling (Michaud & Seznec): instructions that reached the
		// issue buffer before their operands — a mispredicted load
		// latency — are reinserted into the scheduling array when the
		// buffer is full and a row is waiting to drain. Without it the
		// buffer wedges solid with campers.
		if len(q.lines[q.head]) > 0 && len(q.buf) >= q.cfg.IssueBuffer {
			q.recycleCampers(cycle, len(q.lines[q.head]))
		}
		row := q.lines[q.head]
		moved := 0
		for _, u := range row {
			if len(q.buf) >= q.cfg.IssueBuffer {
				break
			}
			q.bufEnter(u, cycle)
			moved++
		}
		if moved > 0 {
			q.lines[q.head] = append(row[:0], row[moved:]...)
		}
		if len(q.lines[q.head]) == 0 {
			q.lines[q.head] = nil
			q.head = (q.head + 1) % q.cfg.Lines
			q.base++
		}
	}

	if every := int64(q.cfg.StatsEvery); every <= 1 || cycle%every == 0 {
		q.stBufOcc.Observe(float64(len(q.buf)))
		// The ready bitmap tracks issue readiness, under which a store
		// waits only for its address; the unreadiness statistic counts
		// full operand readiness, so discount ready stores with pending
		// data before subtracting.
		ready := bitvec.Count(q.readyW)
		for k := range q.readyW {
			w := q.readyW[k] & q.storeW[k]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				if !q.tslot[k<<6+b].OperandReady(0, cycle) {
					ready--
				}
			}
		}
		q.stBufUnready.Observe(float64(len(q.buf) - ready))
		q.stArrayOcc.Observe(float64(q.total - len(q.buf)))
	}
}

// Quiescent implements iq.Queue: every scheduling-array row is empty (so
// row drains, camper recycling and dispatch placement cannot occur), no
// buffered instruction is issue-ready, and no resolved producer is
// pending re-check. Buffered campers parked on unresolved producers wake
// via events the engine bounds the skip window by.
func (q *PreschedIQ) Quiescent(cycle int64) bool {
	for _, row := range q.lines {
		if len(row) > 0 {
			return false
		}
	}
	for _, w := range q.readyW {
		if w != 0 {
			return false
		}
	}
	for _, u := range q.unresolved {
		if u.Complete != uop.NotYet {
			return false
		}
	}
	return true
}

// SkipCycles implements iq.Queue: replay BeginCycle's observable work on
// a frozen queue — the empty head row still retires (the ring rotates and
// base advances one row per cycle) and the statistics still sample.
func (q *PreschedIQ) SkipCycles(from, to int64) {
	every := int64(q.cfg.StatsEvery)
	for x := from; x < to; x++ {
		if q.base <= x {
			// The head row is empty (Quiescent checked), so BeginCycle's
			// drain reduces to exactly this retirement step.
			q.lines[q.head] = nil
			q.head = (q.head + 1) % q.cfg.Lines
			q.base++
		}
		if every <= 1 || x%every == 0 {
			// readyW is all-zero while frozen, so the store-discount scan
			// in BeginCycle observes ready == 0.
			q.stBufOcc.Observe(float64(len(q.buf)))
			q.stBufUnready.Observe(float64(len(q.buf)))
			q.stArrayOcc.Observe(float64(q.total - len(q.buf)))
		}
	}
}

// recycleCampers removes up to need unready instructions from the issue
// buffer, youngest first, and reinserts them into the scheduling array at
// their re-predicted ready rows (a fixed reinsertion distance when the
// producer's latency is still unknown).
func (q *PreschedIQ) recycleCampers(cycle int64, need int) {
	const unknownDelay = 8
	for n := 0; n < need; n++ {
		pick := -1
		for i := len(q.buf) - 1; i >= 0; i-- {
			if !bitvec.Test(q.readyW, int(q.bufH[i])) {
				pick = i
				break
			}
		}
		if pick < 0 {
			return // every camper is ready; they will issue
		}
		u := q.buf[pick]
		q.bufLeave(q.bufH[pick])
		q.buf = append(q.buf[:pick], q.buf[pick+1:]...)
		q.bufAt = append(q.bufAt[:pick], q.bufAt[pick+1:]...)
		q.bufH = append(q.bufH[:pick], q.bufH[pick+1:]...)

		d := int64(unknownDelay)
		known := true
		for j := 0; j < 2; j++ {
			if u.IsStore() && j == 0 {
				continue
			}
			if p := u.Prod[j]; p != nil && p.Complete == uop.NotYet {
				known = false
			} else if p != nil && p.Complete-cycle > d {
				d = p.Complete - cycle
			}
		}
		if !known {
			d = unknownDelay
		}
		idx := int(d)
		if idx >= q.cfg.Lines {
			idx = q.cfg.Lines - 1
		}
		if idx < 1 {
			idx = 1 // never into the head row: it is what we are draining
		}
		placed := -1
		for k := idx; k < q.cfg.Lines && placed < 0; k++ {
			if slot := (q.head + k) % q.cfg.Lines; len(q.lines[slot]) < q.cfg.LineWidth {
				placed = slot
			}
		}
		for k := idx - 1; k >= 1 && placed < 0; k-- {
			if slot := (q.head + k) % q.cfg.Lines; len(q.lines[slot]) < q.cfg.LineWidth {
				placed = slot
			}
		}
		if placed < 0 {
			// Array completely full: swap the camper with the globally
			// oldest array instruction. The pop above freed a buffer
			// slot, the oldest instruction is the one whose completion
			// unblocks the machine (it is the ROB head or feeds it), and
			// the camper takes its slot — guaranteed forward progress
			// even when every structure is full.
			oldRow, oldIdx := -1, -1
			var oldest *uop.UOp
			for r := 0; r < q.cfg.Lines; r++ {
				for i, x := range q.lines[r] {
					if oldest == nil || x.Seq < oldest.Seq {
						oldest, oldRow, oldIdx = x, r, i
					}
				}
			}
			if oldest == nil {
				// No array instructions at all: give up (cannot happen
				// while placement fails, but stay safe).
				q.bufEnter(u, cycle)
				return
			}
			q.lines[oldRow] = append(q.lines[oldRow][:oldIdx], q.lines[oldRow][oldIdx+1:]...)
			q.bufEnter(oldest, cycle)
			placed = oldRow
		}
		q.lines[placed] = append(q.lines[placed], u)
		q.stRecycled.Inc()
	}
}

// Issue implements iq.Queue: conventional wakeup/select over the issue
// buffer only. The returned slice is owned by the queue and valid until
// the next call.
func (q *PreschedIQ) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	if cycle != q.now {
		// Unit-test drivers may skip BeginCycle; deliver wakeups here.
		q.advance(cycle)
	}
	out := q.outScratch[:0]
	kept := q.buf[:0]
	keptAt := q.bufAt[:0]
	keptH := q.bufH[:0]
	for i, u := range q.buf {
		if len(out) < max && q.bufAt[i] < cycle && bitvec.Test(q.readyW, int(q.bufH[i])) && tryIssue(u) {
			u.IssueCycle = cycle
			out = append(out, u)
			q.bufLeave(q.bufH[i])
			if u.Inst.HasDest() {
				q.unresolved = append(q.unresolved, u)
			}
			continue
		}
		kept = append(kept, u)
		keptAt = append(keptAt, q.bufAt[i])
		keptH = append(keptH, q.bufH[i])
	}
	for i := len(kept); i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = kept
	q.bufAt = keptAt
	q.bufH = keptH
	q.total -= len(out)
	q.outScratch = out
	q.stIssued.Add(uint64(len(out)))
	return out
}

// predictedReady returns the cycle operand j of u is expected to become
// available, preferring exact knowledge (a resolved producer) over the
// availability table's prediction.
func (q *PreschedIQ) predictedReady(u *uop.UOp, j int, cycle int64) int64 {
	src := u.Src(j)
	if src == isa.RegNone || src == isa.RegZero {
		return cycle
	}
	if p := u.Prod[j]; p != nil && p.Complete != uop.NotYet {
		return p.Complete
	}
	e := q.availRow(u.Thread, src)
	if e.valid && e.producer != nil && e.producer.Complete == uop.NotYet {
		return e.at
	}
	if e.valid && e.producer != nil && e.producer.Complete != uop.NotYet {
		return e.producer.Complete
	}
	return cycle
}

// Dispatch implements iq.Queue: quasi-static placement by predicted ready
// time. Returns false when the target row and every later row is full.
// A store is placed by its address operand alone (the data drains through
// the LSQ).
func (q *PreschedIQ) Dispatch(cycle int64, u *uop.UOp) bool {
	r := q.predictedReady(u, 1, cycle)
	if !u.IsStore() {
		if r0 := q.predictedReady(u, 0, cycle); r0 > r {
			r = r0
		}
	}
	d := r - cycle
	if d < 0 {
		d = 0
	}
	idx := int(d)
	if idx >= q.cfg.Lines {
		idx = q.cfg.Lines - 1
	}
	placed := -1
	for k := idx; k < q.cfg.Lines; k++ {
		slot := (q.head + k) % q.cfg.Lines
		if len(q.lines[slot]) < q.cfg.LineWidth {
			placed = slot
			break
		}
	}
	if placed < 0 {
		q.stStallFull.Inc()
		return false
	}
	u.DispatchCycle = cycle
	q.lines[placed] = append(q.lines[placed], u)
	q.total++
	q.stDispatched.Inc()
	q.dem.Observe(cycle, int64(q.total))

	if u.Inst.HasDest() {
		lat := int64(u.Latency())
		if u.IsLoad() {
			lat = int64(q.cfg.PredictedLoadLatency)
		}
		// Predicted issue is one cycle after the row drains to the buffer.
		*q.availRow(u.Thread, u.Inst.Dest) = availEntry{valid: true, producer: u, at: cycle + d + 1 + lat}
	}
	return true
}

// NotifyLoadMiss implements iq.Queue: the prescheduling design has no
// post-dispatch correction mechanism — the paper's central criticism.
func (q *PreschedIQ) NotifyLoadMiss(cycle int64, u *uop.UOp) {}

// NotifyLoadComplete implements iq.Queue: the load's completion cycle is
// now known, so wake buffered consumers parked on it. (Future dependents
// use the resolved completion time through the producer edge.) The wake
// is clocked by the queue's own cycle, not the caller's stamp, since some
// drivers announce writebacks scheduled for a future cycle.
func (q *PreschedIQ) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
}

// Writeback implements iq.Queue: wake parked consumers (see
// NotifyLoadComplete for the clocking) and release the
// availability-table row.
func (q *PreschedIQ) Writeback(cycle int64, u *uop.UOp) {
	q.wake(q.now, u)
	if !u.Inst.HasDest() {
		return
	}
	e := q.availRow(u.Thread, u.Inst.Dest)
	if e.valid && e.producer == u {
		e.valid = false
		e.producer = nil
	}
}

// EndCycle implements iq.Queue (the array always advances; no deadlock).
func (q *PreschedIQ) EndCycle(cycle int64, machineActive bool) {}

// CollectStats implements iq.Queue.
func (q *PreschedIQ) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.stDispatched.Value()))
	s.Put("iq_issued", float64(q.stIssued.Value()))
	s.Put("iq_stall_full", float64(q.stStallFull.Value()))
	s.Put("presched_recycled", float64(q.stRecycled.Value()))
	s.Put("presched_buf_occupancy_avg", q.stBufOcc.Value())
	s.Put("presched_buf_unready_avg", q.stBufUnready.Value())
	s.Put("presched_array_occupancy_avg", q.stArrayOcc.Value())
}

var _ iq.Queue = (*PreschedIQ)(nil)

// DebugLocate reports where a uop currently resides: "buffer", a row
// offset like "row+3", or "absent". Diagnostic use only.
func (q *PreschedIQ) DebugLocate(u *uop.UOp) string {
	for _, x := range q.buf {
		if x == u {
			return "buffer"
		}
	}
	for k := 0; k < q.cfg.Lines; k++ {
		for _, x := range q.lines[(q.head+k)%q.cfg.Lines] {
			if x == u {
				return fmt.Sprintf("row+%d (base=%d)", k, q.base)
			}
		}
	}
	return "absent"
}
