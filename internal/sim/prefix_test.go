package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// prefixFamilies returns one sweep family per queue design. The ideal
// and segmented families vary the design's own sweep bound (capacity,
// chain wires); the other three vary ROB/LSQ, the only dimension their
// geometry-baked placement allows a family to share across.
func prefixFamilies() map[string][]Config {
	shrink := func(c Config, rob, lsq int) Config {
		c.ROBSize, c.LSQSize = rob, lsq
		return c
	}
	fams := map[string][]Config{
		"ideal": {
			DefaultConfig(QueueIdeal, 64),
			DefaultConfig(QueueIdeal, 256),
			DefaultConfig(QueueIdeal, 128),
		},
		"segmented": {
			SegmentedConfig(256, 64, true, true),
			SegmentedConfig(256, 0, true, true),
			SegmentedConfig(256, 128, true, true),
		},
	}
	for name, cfg := range map[string]Config{
		"presched": PrescheduledConfig(320),
		"fifos":    FIFOConfig(128),
		"distance": DistanceConfig(320),
	} {
		fams[name] = []Config{
			shrink(cfg, cfg.ROBSize/2, cfg.LSQSize/2),
			cfg,
			shrink(cfg, cfg.ROBSize/2, cfg.LSQSize),
		}
	}
	return fams
}

// TestRunFamilyMatchesCold: for every design's sweep family, results
// with prefix sharing on must be bit-identical to cold checkpoint forks
// of each member (share=false), and the refittable families must
// actually share — otherwise the test exercises only the fallback path.
func TestRunFamilyMatchesCold(t *testing.T) {
	const workload, seed, n, warm = "swim", 1, 20_000, 50_000
	for name, cfgs := range prefixFamilies() {
		name, cfgs := name, cfgs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ck, err := NewCheckpoint(cfgs[0], ContextSpec{Workload: workload, Seed: seed, Warm: warm})
			if err != nil {
				t.Fatal(err)
			}
			var ps PrefixStats
			shared, err := RunFamily(ck, cfgs, n, true, &ps)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := RunFamily(ck, cfgs, n, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				if !reflect.DeepEqual(shared[i], cold[i]) {
					t.Errorf("member %d diverged from cold run\nshared: %+v\ncold:   %+v",
						i, shared[i].Stats, cold[i].Stats)
				}
			}
			if ps.Families.Load() != 1 {
				t.Errorf("expected one ladder-carrying family, got %d", ps.Families.Load())
			}
			if got := ps.Shared.Load() + ps.Fallbacks.Load(); got != int64(len(cfgs)-1) {
				t.Errorf("sibling outcomes %d != %d members", got, len(cfgs)-1)
			}
			// The ideal/segmented families here tighten the queue bound
			// well below swim's demand, which crosses it within the first
			// couple thousand cycles — an early-divergence fallback is
			// the correct outcome for them. Only the ROB/LSQ families
			// are guaranteed late divergence; TestRunFamilyFullShare and
			// TestCloneBoundedMidRun cover the queue-dim share and refit
			// paths with measured bounds.
			if sharing := map[string]bool{"presched": true, "fifos": true, "distance": true}; sharing[name] && ps.Shared.Load() == 0 {
				t.Errorf("[%s] no sibling forked from a rung (fallbacks=%d); sharing untested",
					name, ps.Fallbacks.Load())
			}
			t.Logf("[%s] prefix: %s", name, ps.String())
		})
	}
}

// TestRunFamilyMatchesColdSMT repeats the conformance check on
// multi-context machines: 2- and 4-context sets for each design, with
// pending SMT state (shared caches, partitioned ROB/LSQ) carried across
// the fork.
func TestRunFamilyMatchesColdSMT(t *testing.T) {
	if testing.Short() {
		t.Skip("SMT conformance matrix is slow")
	}
	const n, warm = 20_000, 30_000
	workloads := []string{"swim", "twolf", "mgrid", "gcc"}
	for name, cfgs := range prefixFamilies() {
		for _, nctx := range []int{2, 4} {
			name, cfgs, nctx := name, cfgs, nctx
			t.Run(fmt.Sprintf("%s/%dctx", name, nctx), func(t *testing.T) {
				t.Parallel()
				var specs []ContextSpec
				for i := 0; i < nctx; i++ {
					specs = append(specs, ContextSpec{Workload: workloads[i], Seed: uint64(i + 1), Warm: warm})
				}
				ck, err := NewCheckpoint(cfgs[0], specs...)
				if err != nil {
					t.Fatal(err)
				}
				var ps PrefixStats
				shared, err := RunFamily(ck, cfgs, n, true, &ps)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := RunFamily(ck, cfgs, n, false, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range cfgs {
					if !reflect.DeepEqual(shared[i], cold[i]) {
						t.Errorf("member %d diverged from cold run\nshared: %+v\ncold:   %+v",
							i, shared[i].Stats, cold[i].Stats)
					}
				}
				t.Logf("[%s/%dctx] prefix: %s", name, nctx, ps.String())
			})
		}
	}
}

// TestRunFamilyFullShare drives the full-run share path: the reference
// is run once to measure its demand peak, and a sibling is bounded just
// above that peak, so the reference's demand provably never reaches the
// sibling's bound. RunFamily must then duplicate the reference's result
// outright — SharedCycles equals the whole run — and the copy must match
// a cold run of the sibling exactly.
func TestRunFamilyFullShare(t *testing.T) {
	const n, warm = 20_000, 50_000
	cases := []struct {
		name    string
		ref     Config
		dim     string
		makeSib func(Config, int) Config
	}{
		{"ideal", DefaultConfig(QueueIdeal, 512), "iq",
			func(c Config, b int) Config { c.QueueSize = b; return c }},
		{"segmented", SegmentedConfig(256, 0, true, true), "chains",
			func(c Config, b int) Config { c.Segmented.MaxChains = b; return c }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ck, err := NewCheckpoint(tc.ref, ContextSpec{Workload: "swim", Seed: 1, Warm: warm})
			if err != nil {
				t.Fatal(err)
			}
			probe, err := ck.Fork(tc.ref)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := probe.Run(n); err != nil {
				t.Fatal(err)
			}
			peak := int64(-1)
			for _, d := range probe.Engine.Demands() {
				if d.Dim == tc.dim {
					peak = d.Peak()
				}
			}
			if peak < 0 {
				t.Fatalf("reference reported no %q demand curve", tc.dim)
			}
			bound := int(peak) + 16
			if b1, _, _ := queueBound(tc.ref); b1 != 0 && bound >= b1 {
				t.Skipf("demand saturates the reference bound (%d/%d); nothing to refit", peak, b1)
			}
			cfgs := []Config{tc.ref, tc.makeSib(tc.ref, bound)}
			var ps PrefixStats
			shared, err := RunFamily(ck, cfgs, n, true, &ps)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := RunFamily(ck, cfgs, n, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				if !reflect.DeepEqual(shared[i], cold[i]) {
					t.Errorf("member %d diverged from cold run\nshared: %+v\ncold:   %+v",
						i, shared[i].Stats, cold[i].Stats)
				}
			}
			if ps.Shared.Load() != 1 || ps.SharedCycles.Load() != shared[0].Cycles {
				t.Errorf("never-diverging sibling did not share the whole run (ref cycles %d): %s",
					shared[0].Cycles, ps.String())
			}
			t.Logf("[%s] bound=%d (peak %d): %s", tc.name, bound, peak, ps.String())
		})
	}
}

// TestCloneBoundedMidRun is the direct refit conformance check: a
// reference machine is snapshotted mid-run — with instructions in
// flight, caches warm, predictors trained — and refitted to a tighter
// queue bound chosen just above the run's measured demand peak
// (capacity for the conventional design, the chain pool's free list for
// the segmented one). The refitted machine's run must match a cold fork
// of the tighter configuration bit for bit.
func TestCloneBoundedMidRun(t *testing.T) {
	const n, warm = 20_000, 50_000
	cases := []struct {
		name    string
		ref     Config
		dim     string
		makeSib func(Config, int) Config
	}{
		{"ideal", DefaultConfig(QueueIdeal, 512), "iq",
			func(c Config, b int) Config { c.QueueSize = b; return c }},
		{"segmented", SegmentedConfig(256, 0, true, true), "chains",
			func(c Config, b int) Config { c.Segmented.MaxChains = b; return c }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ck, err := NewCheckpoint(tc.ref, ContextSpec{Workload: "swim", Seed: 1, Warm: warm})
			if err != nil {
				t.Fatal(err)
			}
			probe, err := ck.Fork(tc.ref)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := probe.Run(n); err != nil {
				t.Fatal(err)
			}
			peak := int64(-1)
			for _, d := range probe.Engine.Demands() {
				if d.Dim == tc.dim {
					peak = d.Peak()
				}
			}
			if peak < 0 {
				t.Fatalf("reference reported no %q demand curve", tc.dim)
			}
			bound := int(peak) + 16
			if b1, _, _ := queueBound(tc.ref); b1 != 0 && bound >= b1 {
				t.Skipf("demand saturates the reference bound (%d/%d); nothing to refit", peak, b1)
			}
			sibCfg := tc.makeSib(tc.ref, bound)

			p, err := ck.Fork(tc.ref)
			if err != nil {
				t.Fatal(err)
			}
			var sib *Engine
			var cloneErr error
			hook := func(e *Engine) {
				if sib == nil && cloneErr == nil && e.cycle >= 4096 && e.inExec == 0 {
					sib, cloneErr = e.CloneBounded(sibCfg)
				}
			}
			if err := p.Engine.runHooked(n, hook); err != nil {
				t.Fatal(err)
			}
			if cloneErr != nil {
				t.Fatalf("mid-run CloneBounded: %v", cloneErr)
			}
			if sib == nil {
				t.Fatal("run never reached a cloneable boundary past cycle 4096")
			}
			forkCycle := sib.cycle
			got, err := (&Processor{Engine: sib}).Run(n)
			if err != nil {
				t.Fatal(err)
			}
			coldP, err := ck.Fork(sibCfg)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := coldP.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, cold) {
				t.Errorf("refitted run diverged from cold run\nrefit: %+v\ncold:  %+v",
					got.Stats, cold.Stats)
			}
			t.Logf("[%s] bound=%d (peak %d), forked at cycle %d of %d",
				tc.name, bound, peak, forkCycle, cold.Cycles)
		})
	}
}

// TestRunFamilyMidRunDivergence exercises the ladder rung path proper: a
// sibling whose ROB the reference's demand reaches only late in the run,
// so the fork must come from a rung strictly between the checkpoint and
// the divergence cycle — sharing part of the run, simulating the rest.
func TestRunFamilyMidRunDivergence(t *testing.T) {
	const n, warm = 20_000, 50_000
	// twolf's ROB demand keeps climbing deep into the run, giving
	// divergence cycles safely past the first ladder rung (quiescent
	// boundaries can be thousands of cycles apart).
	ref := SegmentedConfig(256, 0, true, true)
	ck, err := NewCheckpoint(ref, ContextSpec{Workload: "twolf", Seed: 1, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := ck.Fork(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Run(n); err != nil {
		t.Fatal(err)
	}
	// Pick a ROB bound whose first crossing lands past the first rung
	// marks but well before the end of the run: the sibling then diverges
	// mid-run, forcing a rung fork rather than a whole-run copy.
	sibRob := 0
	var divAt int64
	for _, d := range probe.Engine.Demands() {
		if d.Dim != "rob" {
			continue
		}
		for _, s := range d.Steps {
			if s.Cycle > 8000 && int(s.High) < ref.ROBSize {
				sibRob, divAt = int(s.High), s.Cycle
				break
			}
		}
	}
	if sibRob == 0 {
		t.Skip("no mid-run ROB demand step on this workload; rung path not reachable here")
	}
	sibCfg := ref
	sibCfg.ROBSize = sibRob
	cfgs := []Config{ref, sibCfg}
	var ps PrefixStats
	shared, err := RunFamily(ck, cfgs, n, true, &ps)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunFamily(ck, cfgs, n, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(shared[i], cold[i]) {
			t.Errorf("member %d diverged from cold run\nshared: %+v\ncold:   %+v",
				i, shared[i].Stats, cold[i].Stats)
		}
	}
	sc := ps.SharedCycles.Load()
	if ps.Shared.Load() != 1 || sc == 0 || sc > divAt || sc >= shared[0].Cycles {
		t.Errorf("expected a partial rung fork before cycle %d (ref run %d cycles): %s",
			divAt, shared[0].Cycles, ps.String())
	}
	t.Logf("sibling ROB=%d diverges at cycle %d: %s", sibRob, divAt, ps.String())
}

// TestRunFamilyEarlyDivergenceFallsBack: a sibling whose bound the
// reference's demand crosses before the first affordable rung must
// silently take the cold-fork path — and still match a cold run.
func TestRunFamilyEarlyDivergenceFallsBack(t *testing.T) {
	const n, warm = 12_000, 30_000
	cfgs := []Config{
		DefaultConfig(QueueIdeal, 256),
		// An 8-entry queue binds within the first few cycles of
		// measurement, far below the ladder's economics floor.
		DefaultConfig(QueueIdeal, 8),
	}
	ck, err := NewCheckpoint(cfgs[0], ContextSpec{Workload: "swim", Seed: 1, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	var ps PrefixStats
	shared, err := RunFamily(ck, cfgs, n, true, &ps)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunFamily(ck, cfgs, n, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(shared[i], cold[i]) {
			t.Errorf("member %d diverged from cold run", i)
		}
	}
	if ps.Fallbacks.Load() != 1 || ps.Shared.Load() != 0 {
		t.Errorf("expected the tight sibling to fall back (fallbacks=%d shared=%d)",
			ps.Fallbacks.Load(), ps.Shared.Load())
	}
}

// TestPickReference: the dominating member is found regardless of
// position; mixed families without one are rejected.
func TestPickReference(t *testing.T) {
	fam := []Config{
		DefaultConfig(QueueIdeal, 64),
		DefaultConfig(QueueIdeal, 512),
		DefaultConfig(QueueIdeal, 128),
	}
	if got := pickReference(fam); got != 1 {
		t.Errorf("pickReference = %d, want 1", got)
	}
	mixed := []Config{DefaultConfig(QueueIdeal, 64), SegmentedConfig(256, 0, true, true)}
	if got := pickReference(mixed); got != -1 {
		t.Errorf("pickReference accepted a cross-design family (%d)", got)
	}
	// Two members each loosest on a different dimension: no reference.
	a := DefaultConfig(QueueIdeal, 256)
	b := DefaultConfig(QueueIdeal, 128)
	b.ROBSize = a.ROBSize * 2
	if got := pickReference([]Config{a, b}); got != -1 {
		t.Errorf("pickReference found a reference in an undominated family (%d)", got)
	}
}
