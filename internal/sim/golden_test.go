package sim

import (
	"testing"
)

// TestGoldenCycleCounts pins the exact cycle and instruction counts of a
// fixed short run for every queue design. These are behavioural goldens:
// performance work on the hot paths (scratch-buffer reuse, closure
// hoisting, event-queue and MSHR pooling) must leave the simulated machine
// cycle-identical, and any intentional model change must update these
// values consciously.
func TestGoldenCycleCounts(t *testing.T) {
	cases := []struct {
		name          string
		cfg           Config
		workload      string
		cycles, insts int64
	}{
		{"ideal", DefaultConfig(QueueIdeal, 256), "swim", 5005, 8007},
		{"ideal", DefaultConfig(QueueIdeal, 256), "gcc", 12796, 8002},
		{"segmented", SegmentedConfig(256, 64, true, true), "swim", 5945, 8007},
		{"segmented", SegmentedConfig(256, 64, true, true), "gcc", 13243, 8002},
		{"prescheduled", PrescheduledConfig(256), "swim", 28603, 8003},
		{"prescheduled", PrescheduledConfig(256), "gcc", 14748, 8001},
		{"fifos", FIFOConfig(256), "swim", 5278, 8007},
		{"fifos", FIFOConfig(256), "gcc", 12796, 8002},
		{"distance", DistanceConfig(256), "swim", 10355, 8007},
		{"distance", DistanceConfig(256), "gcc", 13647, 8006},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name+"/"+tc.workload, func(t *testing.T) {
			t.Parallel()
			r, err := RunWorkloadWarm(tc.cfg, tc.workload, 1, 8000, 50000)
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles != tc.cycles || r.Instructions != tc.insts {
				t.Errorf("got cycles=%d insts=%d, want cycles=%d insts=%d",
					r.Cycles, r.Instructions, tc.cycles, tc.insts)
			}
		})
	}
}

// TestStatsSamplingDoesNotChangeBehaviour runs the same machine with and
// without statistics sampling: the cycle count and IPC must be identical,
// since the sampling knob only reduces how often occupancy/readiness
// scans run.
func TestStatsSamplingDoesNotChangeBehaviour(t *testing.T) {
	kinds := []Config{
		DefaultConfig(QueueIdeal, 128),
		SegmentedConfig(128, 32, true, true),
		PrescheduledConfig(128),
		FIFOConfig(128),
		DistanceConfig(128),
	}
	for _, base := range kinds {
		base := base
		t.Run(string(base.Queue), func(t *testing.T) {
			t.Parallel()
			r1, err := RunWorkloadWarm(base, "gcc", 7, 3000, 10000)
			if err != nil {
				t.Fatal(err)
			}
			sampled := base
			sampled.StatsSampleEvery = 64
			r2, err := RunWorkloadWarm(sampled, "gcc", 7, 3000, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
				t.Errorf("sampling changed behaviour: cycles %d vs %d, insts %d vs %d",
					r1.Cycles, r2.Cycles, r1.Instructions, r2.Instructions)
			}
		})
	}
}

// TestRunDeterminism runs every design twice with an identical
// configuration, seed and workload, and requires the full statistics dump
// to be byte-identical — the property every experiment in the repository
// (and the golden test above) quietly depends on.
func TestRunDeterminism(t *testing.T) {
	kinds := []Config{
		DefaultConfig(QueueIdeal, 128),
		SegmentedConfig(128, 32, true, true),
		PrescheduledConfig(128),
		FIFOConfig(128),
		DistanceConfig(128),
	}
	for _, cfg := range kinds {
		cfg := cfg
		t.Run(string(cfg.Queue), func(t *testing.T) {
			t.Parallel()
			r1, err := RunWorkloadWarm(cfg, "swim", 3, 3000, 10000)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunWorkloadWarm(cfg, "swim", 3, 3000, 10000)
			if err != nil {
				t.Fatal(err)
			}
			d1, d2 := r1.Stats.String(), r2.Stats.String()
			if d1 != d2 {
				t.Errorf("two identical runs diverged:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
			}
		})
	}
}
