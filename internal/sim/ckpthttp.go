package sim

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// HTTPStore is a CheckpointStore client for the plain GET/PUT protocol
// served by `iqbench -ckpt-serve` (see NewStoreHandler for the wire
// format), so sweep shards on different hosts can share warmups
// without a shared filesystem. Transient trouble — connection errors
// and 5xx responses — is retried with exponential backoff and jitter;
// once the retry budget is exhausted the store latches degraded and
// later calls fail fast with ErrStoreUnavailable, which the
// StoreClient turns into silent local warmups. The latch is not
// permanent: after CoolDown one call is admitted as a half-open probe
// (a single attempt, no retries), and a reachable server un-latches
// the store — so a store or coordinator restart mid-sweep restores
// warmup sharing instead of disabling it for the rest of the process.
// While the outage lasts, each failed probe restarts the cool-down,
// keeping every other call fail-fast. Concurrent Gets of the same key
// are coalesced into one request (single-flight), so a grid's worth of
// workers warming the same workload does not stampede the server.
type HTTPStore struct {
	// BaseURL locates the server, e.g. "http://10.0.0.7:8377".
	BaseURL string
	// Client performs the requests; NewHTTPStore installs one with a
	// per-request timeout.
	Client *http.Client
	// Retries bounds the attempts beyond the first for one operation.
	Retries int
	// Backoff is the first retry's delay; it doubles per attempt (capped
	// at maxBackoffStep), plus up to 100% jitter so synchronized shards
	// desynchronize.
	Backoff time.Duration
	// CoolDown is how long the store stays latched degraded before one
	// half-open probe is allowed through. Zero means the default 5 s.
	CoolDown time.Duration
	// Stats, when non-nil, receives retry and byte counts. (Hit/miss
	// accounting lives in StoreClient; the same *StoreStats is shared.)
	Stats *StoreStats

	// sleep and now are swapped out by tests; nil means the real clock.
	sleep func(time.Duration)
	now   func() time.Time

	mu         sync.Mutex
	inflight   map[string]*flight
	degraded   bool
	degradedAt time.Time
	probing    bool
}

// flight is one in-progress Get shared by every concurrent caller of
// the same key.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewHTTPStore returns an HTTPStore with production defaults: 30 s per
// request, 3 retries, 100 ms initial backoff.
func NewHTTPStore(baseURL string) *HTTPStore {
	return &HTTPStore{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client:  &http.Client{Timeout: 30 * time.Second},
		Retries: 3,
		Backoff: 100 * time.Millisecond,
	}
}

// Degraded reports whether the store is currently latched unavailable.
func (st *HTTPStore) Degraded() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.degraded
}

func (st *HTTPStore) clock() time.Time {
	if st.now != nil {
		return st.now()
	}
	return time.Now()
}

func (st *HTTPStore) coolDown() time.Duration {
	if st.CoolDown > 0 {
		return st.CoolDown
	}
	return 5 * time.Second
}

// admit gates one call against the degraded latch: a healthy store
// admits everyone, a freshly latched store fails everyone fast, and a
// store past its cool-down admits exactly one caller as the half-open
// probe (probe == true) while the rest keep failing fast until the
// probe reports back.
func (st *HTTPStore) admit() (probe bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.degraded {
		return false, nil
	}
	if !st.probing && st.clock().Sub(st.degradedAt) >= st.coolDown() {
		st.probing = true
		return true, nil
	}
	return false, ErrStoreUnavailable
}

// probeDone records a half-open probe's outcome: any response from the
// server (success or a protocol-level rejection) proves it reachable
// and un-latches the store; a transport-level failure restarts the
// cool-down with the latch still set.
func (st *HTTPStore) probeDone(reachable bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.probing = false
	if reachable {
		st.degraded = false
		st.stats().Recoveries.Add(1)
	} else {
		st.degradedAt = st.clock()
	}
}

// latch marks the store degraded after an exhausted retry budget.
func (st *HTTPStore) latch() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.degraded {
		st.degraded = true
		st.degradedAt = st.clock()
	}
}

func (st *HTTPStore) keyURL(key string) string {
	return st.BaseURL + "/ckpt/" + url.PathEscape(key)
}

func (st *HTTPStore) stats() *StoreStats {
	if st.Stats != nil {
		return st.Stats
	}
	return &discardStats
}

// Get implements CheckpointStore, coalescing concurrent same-key
// requests.
func (st *HTTPStore) Get(key string) ([]byte, error) {
	probe, err := st.admit()
	if err != nil {
		return nil, err
	}
	if probe {
		// Half-open trial: one attempt, no retries, no single-flight. A
		// retryable failure means the server is still down; anything else
		// (including a miss) proves it back and resets the latch.
		data, retryable, err := st.getOnce(key)
		st.probeDone(err == nil || !retryable)
		if err != nil && retryable {
			return nil, fmt.Errorf("%w: probe: %v", ErrStoreUnavailable, err)
		}
		return data, err
	}
	st.mu.Lock()
	if f := st.inflight[key]; f != nil {
		st.mu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &flight{done: make(chan struct{})}
	if st.inflight == nil {
		st.inflight = make(map[string]*flight)
	}
	st.inflight[key] = f
	st.mu.Unlock()

	f.data, f.err = st.retry("GET", key, func() ([]byte, bool, error) { return st.getOnce(key) })

	st.mu.Lock()
	delete(st.inflight, key)
	st.mu.Unlock()
	close(f.done)
	return f.data, f.err
}

// Put implements CheckpointStore.
func (st *HTTPStore) Put(key string, data []byte) error {
	probe, aerr := st.admit()
	if aerr != nil {
		return aerr
	}
	if probe {
		err := st.putOnce(key, data)
		var pe *permanentError
		reachable := err == nil || errors.As(err, &pe)
		st.probeDone(reachable)
		if err != nil && !reachable {
			return fmt.Errorf("%w: probe: %v", ErrStoreUnavailable, err)
		}
		return err
	}
	_, err := st.retry("PUT", key, func() ([]byte, bool, error) {
		err := st.putOnce(key, data)
		var pe *permanentError
		if errors.As(err, &pe) {
			return nil, false, err
		}
		return nil, true, err
	})
	return err
}

// retry runs one attempt function under the store's retry policy. The
// attempt reports (result, retryable, error); a non-retryable error
// (404, 4xx) passes straight through, while exhausting the budget on
// retryable errors latches the store degraded.
func (st *HTTPStore) retry(verb, key string, attempt func() ([]byte, bool, error)) ([]byte, error) {
	for try := 0; ; try++ {
		data, retryable, err := attempt()
		if err == nil || !retryable {
			return data, err
		}
		if try >= st.Retries {
			st.latch()
			return nil, fmt.Errorf("%w: %s %s failed %d times, last: %v",
				ErrStoreUnavailable, verb, key, try+1, err)
		}
		if verb == "GET" {
			st.stats().GetRetries.Add(1)
		}
		st.sleepFor(backoffStep(st.Backoff, try))
	}
}

// maxBackoffStep caps one exponential backoff step. Without the cap a
// raised retry budget shifts the step past the time.Duration range —
// `base << try` goes negative around try 38 for a 100 ms base — and a
// negative "delay" used to collapse to 1 ms, turning the tail of a long
// budget into a hot retry loop.
const maxBackoffStep = 30 * time.Second

// backoffStep returns the exponential delay for retry number try:
// base doubled per attempt, clamped to [1ms, maxBackoffStep], computed
// by repeated doubling so no shift ever overflows.
func backoffStep(base time.Duration, try int) time.Duration {
	d := base
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < try && d < maxBackoffStep; i++ {
		d <<= 1
	}
	if d > maxBackoffStep {
		d = maxBackoffStep
	}
	return d
}

// sleepFor sleeps the step plus up to 100% jitter, through the test
// hook when one is installed.
func (st *HTTPStore) sleepFor(d time.Duration) {
	d += rand.N(d) // full jitter on top of the exponential step
	if st.sleep != nil {
		st.sleep(d)
		return
	}
	time.Sleep(d)
}

func (st *HTTPStore) getOnce(key string) (data []byte, retryable bool, err error) {
	resp, err := st.Client.Get(st.keyURL(key))
	if err != nil {
		return nil, true, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, true, err
		}
		// The digest header is the end-to-end torn-transfer check: a
		// mismatch means the body we read is not the blob the server
		// hashed, so retry rather than hand back garbage.
		if want := resp.Header.Get(digestHeader); want != "" && want != blobDigest(data) {
			return nil, true, fmt.Errorf("GET %s: digest mismatch (%s != %s)", key, blobDigest(data), want)
		}
		return data, false, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, ErrNotFound
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("GET %s: %s", key, resp.Status)
	default:
		return nil, false, fmt.Errorf("GET %s: %s", key, resp.Status)
	}
}

func (st *HTTPStore) putOnce(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, st.keyURL(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(digestHeader, blobDigest(data))
	resp, err := st.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode/100 == 2:
		return nil
	case resp.StatusCode >= 500:
		return fmt.Errorf("PUT %s: %s", key, resp.Status)
	default:
		// 4xx is a protocol-level rejection (bad key, digest mismatch the
		// server caught); retrying the identical request cannot help, but
		// wrap it unretryable-shaped by reporting through retry() as-is.
		return &permanentError{fmt.Errorf("PUT %s: %s", key, resp.Status)}
	}
}

// permanentError marks a Put failure that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// digestHeader carries the ETag-style content fingerprint both ways:
// the server stamps GET responses with it and verifies it on PUT.
const digestHeader = "X-Ckpt-Digest"

// blobDigest fingerprints a blob for the digest header (FNV-1a 64,
// hex). Not cryptographic — it guards against truncation and torn
// transfers, not adversaries.
func blobDigest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
