package sim

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPStore is a CheckpointStore client for the plain GET/PUT protocol
// served by `iqbench -ckpt-serve` (see NewStoreHandler for the wire
// format), so sweep shards on different hosts can share warmups
// without a shared filesystem. Transient trouble — connection errors
// and 5xx responses — is retried with exponential backoff and jitter;
// once the retry budget is exhausted the store latches degraded and
// every later call fails fast with ErrStoreUnavailable, which the
// StoreClient turns into silent local warmups. Concurrent Gets of the
// same key are coalesced into one request (single-flight), so a grid's
// worth of workers warming the same workload does not stampede the
// server.
type HTTPStore struct {
	// BaseURL locates the server, e.g. "http://10.0.0.7:8377".
	BaseURL string
	// Client performs the requests; NewHTTPStore installs one with a
	// per-request timeout.
	Client *http.Client
	// Retries bounds the attempts beyond the first for one operation.
	Retries int
	// Backoff is the first retry's delay; it doubles per attempt, plus
	// up to 100% jitter so synchronized shards desynchronize.
	Backoff time.Duration
	// Stats, when non-nil, receives retry and byte counts. (Hit/miss
	// accounting lives in StoreClient; the same *StoreStats is shared.)
	Stats *StoreStats

	degraded atomic.Bool
	mu       sync.Mutex
	inflight map[string]*flight
}

// flight is one in-progress Get shared by every concurrent caller of
// the same key.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewHTTPStore returns an HTTPStore with production defaults: 30 s per
// request, 3 retries, 100 ms initial backoff.
func NewHTTPStore(baseURL string) *HTTPStore {
	return &HTTPStore{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client:  &http.Client{Timeout: 30 * time.Second},
		Retries: 3,
		Backoff: 100 * time.Millisecond,
	}
}

// Degraded reports whether the store has latched unavailable.
func (st *HTTPStore) Degraded() bool { return st.degraded.Load() }

func (st *HTTPStore) keyURL(key string) string {
	return st.BaseURL + "/ckpt/" + url.PathEscape(key)
}

func (st *HTTPStore) stats() *StoreStats {
	if st.Stats != nil {
		return st.Stats
	}
	return &discardStats
}

// Get implements CheckpointStore, coalescing concurrent same-key
// requests.
func (st *HTTPStore) Get(key string) ([]byte, error) {
	if st.degraded.Load() {
		return nil, ErrStoreUnavailable
	}
	st.mu.Lock()
	if f := st.inflight[key]; f != nil {
		st.mu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &flight{done: make(chan struct{})}
	if st.inflight == nil {
		st.inflight = make(map[string]*flight)
	}
	st.inflight[key] = f
	st.mu.Unlock()

	f.data, f.err = st.retry("GET", key, func() ([]byte, bool, error) { return st.getOnce(key) })

	st.mu.Lock()
	delete(st.inflight, key)
	st.mu.Unlock()
	close(f.done)
	return f.data, f.err
}

// Put implements CheckpointStore.
func (st *HTTPStore) Put(key string, data []byte) error {
	if st.degraded.Load() {
		return ErrStoreUnavailable
	}
	_, err := st.retry("PUT", key, func() ([]byte, bool, error) {
		err := st.putOnce(key, data)
		var pe *permanentError
		if errors.As(err, &pe) {
			return nil, false, err
		}
		return nil, true, err
	})
	return err
}

// retry runs one attempt function under the store's retry policy. The
// attempt reports (result, retryable, error); a non-retryable error
// (404, 4xx) passes straight through, while exhausting the budget on
// retryable errors latches the store degraded.
func (st *HTTPStore) retry(verb, key string, attempt func() ([]byte, bool, error)) ([]byte, error) {
	for try := 0; ; try++ {
		data, retryable, err := attempt()
		if err == nil || !retryable {
			return data, err
		}
		if try >= st.Retries {
			st.degraded.Store(true)
			return nil, fmt.Errorf("%w: %s %s failed %d times, last: %v",
				ErrStoreUnavailable, verb, key, try+1, err)
		}
		if verb == "GET" {
			st.stats().GetRetries.Add(1)
		}
		d := st.Backoff << try
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d + rand.N(d)) // full jitter on top of the exponential step
	}
}

func (st *HTTPStore) getOnce(key string) (data []byte, retryable bool, err error) {
	resp, err := st.Client.Get(st.keyURL(key))
	if err != nil {
		return nil, true, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, true, err
		}
		// The digest header is the end-to-end torn-transfer check: a
		// mismatch means the body we read is not the blob the server
		// hashed, so retry rather than hand back garbage.
		if want := resp.Header.Get(digestHeader); want != "" && want != blobDigest(data) {
			return nil, true, fmt.Errorf("GET %s: digest mismatch (%s != %s)", key, blobDigest(data), want)
		}
		return data, false, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, ErrNotFound
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("GET %s: %s", key, resp.Status)
	default:
		return nil, false, fmt.Errorf("GET %s: %s", key, resp.Status)
	}
}

func (st *HTTPStore) putOnce(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, st.keyURL(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(digestHeader, blobDigest(data))
	resp, err := st.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode/100 == 2:
		return nil
	case resp.StatusCode >= 500:
		return fmt.Errorf("PUT %s: %s", key, resp.Status)
	default:
		// 4xx is a protocol-level rejection (bad key, digest mismatch the
		// server caught); retrying the identical request cannot help, but
		// wrap it unretryable-shaped by reporting through retry() as-is.
		return &permanentError{fmt.Errorf("PUT %s: %s", key, resp.Status)}
	}
}

// permanentError marks a Put failure that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// digestHeader carries the ETag-style content fingerprint both ways:
// the server stamps GET responses with it and verifies it on PUT.
const digestHeader = "X-Ckpt-Digest"

// blobDigest fingerprints a blob for the digest header (FNV-1a 64,
// hex). Not cryptographic — it guards against truncation and torn
// transfers, not adversaries.
func blobDigest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
