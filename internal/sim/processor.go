package sim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Result reports a completed simulation.
type Result struct {
	Workload     string
	QueueName    string
	Instructions int64
	Cycles       int64
	IPC          float64
	Stats        *stats.Set
}

// Processor is one simulated core: the Table 1 pipeline around a
// pluggable instruction queue. It is an Engine with a single hardware
// context and the single-threaded result report.
type Processor struct {
	*Engine
}

// New builds a processor over the given workload stream.
func New(cfg Config, stream trace.Stream) (*Processor, error) {
	e, err := NewEngine(cfg, []trace.Stream{stream})
	if err != nil {
		return nil, err
	}
	return &Processor{Engine: e}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, stream trace.Stream) *Processor {
	p, err := New(cfg, stream)
	if err != nil {
		panic(err)
	}
	return p
}

// Warm consumes n instructions from s — which must replay the same
// deterministic stream the processor will execute — installing their
// cache lines and training the branch structures, without advancing
// simulated time. It stands in for the paper's 20-billion-instruction
// fast-forward to a checkpoint: short measured samples then start from a
// steady state instead of a cold machine.
func (p *Processor) Warm(s trace.Stream, n int64) {
	p.Engine.Warm([]trace.Stream{s}, n)
}

// Run simulates until maxInstructions commit (or the trace drains) and
// returns the results.
func (p *Processor) Run(maxInstructions int64) (*Result, error) {
	if err := p.Engine.run(maxInstructions); err != nil {
		return nil, err
	}
	return p.result(), nil
}

func (p *Processor) result() *Result {
	e := p.Engine
	s := stats.NewSet()
	committed := e.Committed()
	cycles := e.cycle
	if cycles == 0 {
		cycles = 1
	}
	ipc := float64(committed) / float64(cycles)
	s.Put("cycles", float64(e.cycle))
	s.Put("instructions", float64(committed))
	s.Put("ipc", ipc)
	s.Put("issued", float64(e.stIssued.Value()))
	s.Put("rob_occupancy_avg", e.stRobOcc.Value())
	s.Put("dispatch_stall_rob", float64(e.stDispStallROB.Value()))
	s.Put("dispatch_stall_lsq", float64(e.stDispStallLSQ.Value()))
	s.Put("dispatch_stall_iq", float64(e.stDispStallIQ.Value()))

	// Per-context front-end and LSQ statistics. A single-context machine
	// keeps the historical unprefixed names; a multi-context one reports
	// every context separately under thread<i>_, plus its committed count.
	workload := e.ctxs[0].workload
	for _, th := range e.ctxs {
		pfx := ""
		if len(e.ctxs) > 1 {
			pfx = fmt.Sprintf("thread%d_", th.id)
			s.Put(pfx+"committed", float64(th.committed))
			if th != e.ctxs[0] {
				workload += "+" + th.workload
			}
		}
		s.Put(pfx+"fetched", float64(th.fe.Fetched()))
		s.Put(pfx+"branches", float64(th.fe.Branches()))
		s.Put(pfx+"branch_mispredicts", float64(th.fe.Mispredicts()))
		s.Put(pfx+"branch_mispredict_rate", stats.Ratio(th.fe.Mispredicts(), th.fe.Branches()))
		s.Put(pfx+"btb_misses", float64(th.fe.BTBMisses()))
		s.Put(pfx+"fetch_stall_branch", float64(th.fe.BranchStallCycles()))
		s.Put(pfx+"fetch_stall_icache", float64(th.fe.ICacheStallCycles()))

		s.Put(pfx+"lsq_forwards", float64(th.lsq.Forwards()))
		s.Put(pfx+"lsq_mshr_rejects", float64(th.lsq.MSHRRejects()))
		s.Put(pfx+"lsq_loads", float64(th.lsq.LoadsIssued()))
		s.Put(pfx+"lsq_store_writes", float64(th.lsq.StoreWrites()))
	}
	s.Put("fu_structural_stalls", float64(e.fus.StructuralStalls()))

	d := e.hier.L1D.Stats()
	s.Put("l1d_accesses", float64(d.Accesses))
	s.Put("l1d_miss_rate", d.MissRate())
	s.Put("l1d_delayed_hits", float64(d.DelayedHits))
	l2 := e.hier.L2.Stats()
	s.Put("l2_accesses", float64(l2.Accesses))
	s.Put("l2_miss_rate", l2.MissRate())
	s.Put("mem_fetches", float64(e.hier.Mem.Fetches()))

	e.q.CollectStats(s)

	return &Result{
		Workload:     workload,
		QueueName:    e.q.Name(),
		Instructions: committed,
		Cycles:       e.cycle,
		IPC:          ipc,
		Stats:        s,
	}
}

// RunWorkload is the package's convenience entry point: build the named
// workload, simulate n instructions on the configured machine, and return
// the result.
func RunWorkload(cfg Config, workload string, seed uint64, n int64) (*Result, error) {
	return RunWorkloadWarm(cfg, workload, seed, n, 0)
}

// RunWorkloadWarm is RunWorkload preceded by a functional fast-forward:
// the first warm instructions of the stream are consumed to install cache
// lines and train the branch structures (Processor.Warm); measurement then
// continues from that point, as with the paper's checkpoints.
func RunWorkloadWarm(cfg Config, workload string, seed uint64, n, warm int64) (*Result, error) {
	return RunContexts(cfg, []ContextSpec{{Workload: workload, Seed: seed, Warm: warm}}, n)
}

// RunContexts is the cold-machine reference path for a context set: one
// hardware context per spec, each stream built from its (workload, seed)
// and fast-forwarded round-robin over the per-context warm budgets, then
// n total committed instructions simulated. It warms exactly as
// NewCheckpoint does, so a machine forked from a checkpoint over the
// same specs behaves identically to this cold run.
func RunContexts(cfg Config, specs []ContextSpec, n int64) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: run needs at least one context")
	}
	streams := make([]trace.Stream, len(specs))
	budgets := make([]int64, len(specs))
	for i, sp := range specs {
		s, err := trace.New(sp.Workload, sp.Seed)
		if err != nil {
			return nil, err
		}
		streams[i] = s
		budgets[i] = sp.Warm
	}
	e, err := NewEngine(cfg, streams)
	if err != nil {
		return nil, err
	}
	e.warmContexts(streams, budgets)
	p := &Processor{Engine: e}
	return p.Run(n)
}
