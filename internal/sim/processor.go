package sim

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result reports a completed simulation.
type Result struct {
	Workload     string
	QueueName    string
	Instructions int64
	Cycles       int64
	IPC          float64
	Stats        *stats.Set
}

// Processor is one simulated core: the Table 1 pipeline around a
// pluggable instruction queue. It is an Engine with a single hardware
// context and the single-threaded result report.
type Processor struct {
	*Engine
}

// New builds a processor over the given workload stream.
func New(cfg Config, stream trace.Stream) (*Processor, error) {
	e, err := NewEngine(cfg, []trace.Stream{stream})
	if err != nil {
		return nil, err
	}
	return &Processor{Engine: e}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, stream trace.Stream) *Processor {
	p, err := New(cfg, stream)
	if err != nil {
		panic(err)
	}
	return p
}

// Warm consumes n instructions from s — which must replay the same
// deterministic stream the processor will execute — installing their
// cache lines and training the branch structures, without advancing
// simulated time. It stands in for the paper's 20-billion-instruction
// fast-forward to a checkpoint: short measured samples then start from a
// steady state instead of a cold machine.
func (p *Processor) Warm(s trace.Stream, n int64) {
	p.Engine.Warm([]trace.Stream{s}, n)
}

// Run simulates until maxInstructions commit (or the trace drains) and
// returns the results.
func (p *Processor) Run(maxInstructions int64) (*Result, error) {
	if err := p.Engine.run(maxInstructions); err != nil {
		return nil, err
	}
	return p.result(), nil
}

func (p *Processor) result() *Result {
	e := p.Engine
	th := e.ctxs[0]
	s := stats.NewSet()
	committed := e.Committed()
	cycles := e.cycle
	if cycles == 0 {
		cycles = 1
	}
	ipc := float64(committed) / float64(cycles)
	s.Put("cycles", float64(e.cycle))
	s.Put("instructions", float64(committed))
	s.Put("ipc", ipc)
	s.Put("issued", float64(e.stIssued.Value()))
	s.Put("rob_occupancy_avg", e.stRobOcc.Value())
	s.Put("dispatch_stall_rob", float64(e.stDispStallROB.Value()))
	s.Put("dispatch_stall_lsq", float64(e.stDispStallLSQ.Value()))
	s.Put("dispatch_stall_iq", float64(e.stDispStallIQ.Value()))

	s.Put("fetched", float64(th.fe.Fetched()))
	s.Put("branches", float64(th.fe.Branches()))
	s.Put("branch_mispredicts", float64(th.fe.Mispredicts()))
	s.Put("branch_mispredict_rate", stats.Ratio(th.fe.Mispredicts(), th.fe.Branches()))
	s.Put("btb_misses", float64(th.fe.BTBMisses()))
	s.Put("fetch_stall_branch", float64(th.fe.BranchStallCycles()))
	s.Put("fetch_stall_icache", float64(th.fe.ICacheStallCycles()))

	s.Put("lsq_forwards", float64(th.lsq.Forwards()))
	s.Put("lsq_mshr_rejects", float64(th.lsq.MSHRRejects()))
	s.Put("lsq_loads", float64(th.lsq.LoadsIssued()))
	s.Put("lsq_store_writes", float64(th.lsq.StoreWrites()))
	s.Put("fu_structural_stalls", float64(e.fus.StructuralStalls()))

	d := e.hier.L1D.Stats()
	s.Put("l1d_accesses", float64(d.Accesses))
	s.Put("l1d_miss_rate", d.MissRate())
	s.Put("l1d_delayed_hits", float64(d.DelayedHits))
	l2 := e.hier.L2.Stats()
	s.Put("l2_accesses", float64(l2.Accesses))
	s.Put("l2_miss_rate", l2.MissRate())
	s.Put("mem_fetches", float64(e.hier.Mem.Fetches()))

	e.q.CollectStats(s)

	return &Result{
		Workload:     th.workload,
		QueueName:    e.q.Name(),
		Instructions: committed,
		Cycles:       e.cycle,
		IPC:          ipc,
		Stats:        s,
	}
}

// RunWorkload is the package's convenience entry point: build the named
// workload, simulate n instructions on the configured machine, and return
// the result.
func RunWorkload(cfg Config, workload string, seed uint64, n int64) (*Result, error) {
	return RunWorkloadWarm(cfg, workload, seed, n, 0)
}

// RunWorkloadWarm is RunWorkload preceded by a functional fast-forward:
// the first warm instructions of the stream are consumed to install cache
// lines and train the branch structures (Processor.Warm); measurement then
// continues from that point, as with the paper's checkpoints.
func RunWorkloadWarm(cfg Config, workload string, seed uint64, n, warm int64) (*Result, error) {
	s, err := trace.New(workload, seed)
	if err != nil {
		return nil, err
	}
	p, err := New(cfg, s)
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		p.Warm(s, warm) // consumes the stream prefix the FE would have fetched
	}
	return p.Run(n)
}
