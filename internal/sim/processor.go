package sim

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uop"
)

// Result reports a completed simulation.
type Result struct {
	Workload     string
	QueueName    string
	Instructions int64
	Cycles       int64
	IPC          float64
	Stats        *stats.Set
}

// Processor is one simulated core: the Table 1 pipeline around a
// pluggable instruction queue.
type Processor struct {
	cfg Config
	q   iq.Queue

	hier *mem.Hierarchy
	fe   *pipeline.FrontEnd
	ren  *pipeline.Renamer
	rob  *pipeline.ROB
	lsq  *pipeline.LSQ
	fus  *pipeline.FUPool

	cycle     int64
	committed int64
	inExec    int // issued instructions whose results are outstanding

	// Per-cycle and per-instruction callbacks, bound once at construction
	// so the cycle loop schedules no fresh closures. tryIssueFn reads
	// p.cycle, which equals the cycle being stepped throughout Step.
	commitFn   func(*uop.UOp)
	tryIssueFn func(*uop.UOp) bool
	execDoneFn func(now int64, arg any) // EA done for loads: leave execution
	wbDoneFn   func(now int64, arg any) // completion: leave execution + writeback

	// Per-run statistics.
	stIssued       stats.Counter
	stCommitted    stats.Counter
	stDispStallROB stats.Counter
	stDispStallLSQ stats.Counter
	stDispStallIQ  stats.Counter
	stRobOcc       stats.Mean
	workload       string
}

// New builds a processor over the given workload stream.
func New(cfg Config, stream trace.Stream) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	bp, err := bpred.NewPredictor(cfg.BranchPredictor)
	if err != nil {
		return nil, err
	}
	btb, err := bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays)
	if err != nil {
		return nil, err
	}
	feCfg := pipeline.FrontEndConfig{
		FetchWidth:       cfg.FetchWidth,
		MaxBranches:      cfg.MaxBranches,
		FetchToDecode:    cfg.FetchToDecode,
		DecodeToDispatch: cfg.DecodeToDispatch,
		ExtraDispatch:    q.ExtraDispatchStages(),
		BufferCap:        (cfg.FetchToDecode + cfg.DecodeToDispatch + 10) * cfg.FetchWidth,
	}
	p := &Processor{
		cfg:      cfg,
		q:        q,
		hier:     hier,
		fe:       pipeline.NewFrontEnd(feCfg, stream, bp, btb, hier.L1I),
		ren:      pipeline.NewRenamer(),
		rob:      pipeline.NewROB(cfg.ROBSize),
		fus:      pipeline.NewFUPool(cfg.FUPerClass),
		workload: stream.Name(),
	}
	p.lsq = pipeline.NewLSQ(cfg.LSQSize, hier.L1D, hier.EQ, q, cfg.CacheRdPorts, cfg.CacheWrPorts)
	p.commitFn = func(u *uop.UOp) {
		p.committed++
		p.stCommitted.Inc()
		switch {
		case u.IsStore():
			p.lsq.CommitStore(u)
		case u.IsLoad():
			p.lsq.Remove(u)
		}
	}
	p.tryIssueFn = func(u *uop.UOp) bool { return p.fus.TryIssue(p.cycle, u) }
	p.execDoneFn = func(now int64, arg any) { p.inExec-- }
	p.wbDoneFn = func(now int64, arg any) {
		p.inExec--
		p.q.Writeback(now, arg.(*uop.UOp))
	}
	return p, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, stream trace.Stream) *Processor {
	p, err := New(cfg, stream)
	if err != nil {
		panic(err)
	}
	return p
}

// Queue exposes the scheduler under test.
func (p *Processor) Queue() iq.Queue { return p.q }

// Cycle returns the current cycle number.
func (p *Processor) Cycle() int64 { return p.cycle }

// Committed returns the number of retired instructions.
func (p *Processor) Committed() int64 { return p.committed }

// Step advances the machine one cycle.
func (p *Processor) Step() {
	c := p.cycle

	// 1. Memory system and scheduled core events (completions,
	//    writebacks, chain suspensions).
	p.hier.Tick(c)

	// 2. Commit, in order, up to the commit width.
	commits := p.rob.Commit(c, p.cfg.CommitWidth, p.commitFn)

	// 3. Scheduler-internal work: wire propagation, promotion, pushdown,
	//    deadlock recovery, or array advance.
	p.q.BeginCycle(c)

	// 4. Issue and begin execution.
	p.issue(c)

	// 5. The LSQ starts eligible cache accesses and drains retired
	//    stores.
	p.lsq.Tick(c)

	// 6. In-order dispatch from the front-end buffer.
	p.dispatch(c)

	// 7. Fetch.
	p.fe.Fetch(c)

	// 8. Deadlock bookkeeping.
	active := p.inExec > 0 || p.hier.EQ.Len() > 0 || p.lsq.Busy() || commits > 0
	p.q.EndCycle(c, active)

	p.stRobOcc.Observe(float64(p.rob.Len()))
	p.cycle++
}

func (p *Processor) issue(c int64) {
	issued := p.q.Issue(c, p.cfg.IssueWidth, p.tryIssueFn)
	p.stIssued.Add(uint64(len(issued)))
	for _, u := range issued {
		lat := int64(u.Latency())
		p.inExec++
		switch {
		case u.IsLoad():
			// The EA calculation finishes after one cycle; the LSQ takes
			// over. A load waiting in the LSQ is *not* "in execution" —
			// it may be blocked on the IQ's own progress, and counting it
			// would mask the deadlocks §4.5 recovers from. Its memory
			// traffic keeps the machine active through the event queue.
			u.EADone = c + lat
			p.hier.EQ.ScheduleArg(u.EADone, p.execDoneFn, nil)
		case u.IsStore():
			// Retirement (Complete) is set by the LSQ once the data is
			// also ready; the chain writeback happens at EA completion
			// (stores produce no register value).
			u.EADone = c + lat
			p.hier.EQ.ScheduleArg(u.EADone, p.wbDoneFn, u)
		default:
			u.Complete = c + lat
			p.hier.EQ.ScheduleArg(u.Complete, p.wbDoneFn, u)
		}
	}
}

func (p *Processor) dispatch(c int64) {
	for n := 0; n < p.cfg.DispatchWidth; n++ {
		u := p.fe.NextReady(c)
		if u == nil {
			return
		}
		if p.rob.Full() {
			p.stDispStallROB.Inc()
			return
		}
		if u.Inst.Class.IsMem() && p.lsq.Full() {
			p.stDispStallLSQ.Inc()
			return
		}
		p.ren.Rename(u, c)
		if !p.q.Dispatch(c, u) {
			p.stDispStallIQ.Inc()
			return
		}
		p.rob.Push(u)
		if u.Inst.Class.IsMem() {
			p.lsq.Add(u)
		}
		p.fe.Pop()
	}
}

// Warm consumes n instructions from s — which must replay the same
// deterministic stream the processor will execute — installing their
// cache lines and training the branch structures, without advancing
// simulated time. It stands in for the paper's 20-billion-instruction
// fast-forward to a checkpoint: short measured samples then start from a
// steady state instead of a cold machine.
func (p *Processor) Warm(s trace.Stream, n int64) {
	for i := int64(0); i < n; i++ {
		in, ok := s.Next()
		if !ok {
			return
		}
		p.hier.WarmInst(in.PC)
		if in.Class.IsMem() {
			p.hier.WarmData(in.Addr, in.Class == isa.Store)
		}
		p.fe.Train(in)
	}
}

// Run simulates until maxInstructions commit (or the trace drains) and
// returns the results. A safety valve aborts pathologically stuck runs.
func (p *Processor) Run(maxInstructions int64) (*Result, error) {
	if maxInstructions < 1 {
		return nil, fmt.Errorf("sim: instruction budget %d", maxInstructions)
	}
	limit := maxInstructions*400 + 1_000_000
	for p.committed < maxInstructions {
		if p.fe.Done() && p.rob.Len() == 0 {
			break // finite trace fully drained
		}
		if p.cycle > limit {
			return nil, fmt.Errorf("sim: no forward progress after %d cycles (%d/%d committed, %s on %s)",
				p.cycle, p.committed, maxInstructions, p.q.Name(), p.workload)
		}
		p.Step()
	}
	return p.result(), nil
}

func (p *Processor) result() *Result {
	s := stats.NewSet()
	cycles := p.cycle
	if cycles == 0 {
		cycles = 1
	}
	ipc := float64(p.committed) / float64(cycles)
	s.Put("cycles", float64(p.cycle))
	s.Put("instructions", float64(p.committed))
	s.Put("ipc", ipc)
	s.Put("issued", float64(p.stIssued.Value()))
	s.Put("rob_occupancy_avg", p.stRobOcc.Value())
	s.Put("dispatch_stall_rob", float64(p.stDispStallROB.Value()))
	s.Put("dispatch_stall_lsq", float64(p.stDispStallLSQ.Value()))
	s.Put("dispatch_stall_iq", float64(p.stDispStallIQ.Value()))

	s.Put("fetched", float64(p.fe.Fetched()))
	s.Put("branches", float64(p.fe.Branches()))
	s.Put("branch_mispredicts", float64(p.fe.Mispredicts()))
	s.Put("branch_mispredict_rate", stats.Ratio(p.fe.Mispredicts(), p.fe.Branches()))
	s.Put("btb_misses", float64(p.fe.BTBMisses()))
	s.Put("fetch_stall_branch", float64(p.fe.BranchStallCycles()))
	s.Put("fetch_stall_icache", float64(p.fe.ICacheStallCycles()))

	s.Put("lsq_forwards", float64(p.lsq.Forwards()))
	s.Put("lsq_mshr_rejects", float64(p.lsq.MSHRRejects()))
	s.Put("lsq_loads", float64(p.lsq.LoadsIssued()))
	s.Put("lsq_store_writes", float64(p.lsq.StoreWrites()))
	s.Put("fu_structural_stalls", float64(p.fus.StructuralStalls()))

	d := p.hier.L1D.Stats()
	s.Put("l1d_accesses", float64(d.Accesses))
	s.Put("l1d_miss_rate", d.MissRate())
	s.Put("l1d_delayed_hits", float64(d.DelayedHits))
	l2 := p.hier.L2.Stats()
	s.Put("l2_accesses", float64(l2.Accesses))
	s.Put("l2_miss_rate", l2.MissRate())
	s.Put("mem_fetches", float64(p.hier.Mem.Fetches()))

	p.q.CollectStats(s)

	return &Result{
		Workload:     p.workload,
		QueueName:    p.q.Name(),
		Instructions: p.committed,
		Cycles:       p.cycle,
		IPC:          ipc,
		Stats:        s,
	}
}

// RunWorkload is the package's convenience entry point: build the named
// workload, simulate n instructions on the configured machine, and return
// the result.
func RunWorkload(cfg Config, workload string, seed uint64, n int64) (*Result, error) {
	return RunWorkloadWarm(cfg, workload, seed, n, 0)
}

// RunWorkloadWarm is RunWorkload preceded by a functional fast-forward:
// the first warm instructions of the stream are consumed to install cache
// lines and train the branch structures (Processor.Warm); measurement then
// continues from that point, as with the paper's checkpoints.
func RunWorkloadWarm(cfg Config, workload string, seed uint64, n, warm int64) (*Result, error) {
	s, err := trace.New(workload, seed)
	if err != nil {
		return nil, err
	}
	p, err := New(cfg, s)
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		p.Warm(s, warm) // consumes the stream prefix the FE would have fetched
	}
	return p.Run(n)
}

// Debug prints internal machine state; used by diagnostic tools.
func (p *Processor) Debug() {
	fmt.Printf("inExec=%d eqLen=%d lsqBusy=%v lsqLen=%d robLen=%d feBuf=%d feDone=%v\n",
		p.inExec, p.hier.EQ.Len(), p.lsq.Busy(), p.lsq.Len(), p.rob.Len(), p.fe.BufLen(), p.fe.Done())
	if h := p.rob.Head(); h != nil {
		fmt.Printf("rob head: %s EADone=%d memkind=%d\n", h.String(), h.EADone, h.MemKind)
		for j := 0; j < 2; j++ {
			if pr := h.Prod[j]; pr != nil {
				fmt.Printf("  prod%d: %s EADone=%d kind=%d\n", j, pr.String(), pr.EADone, pr.MemKind)
			}
		}
	}
}

// ROBHead exposes the oldest in-flight instruction; diagnostic use only.
func (p *Processor) ROBHead() *uop.UOp { return p.rob.Head() }
