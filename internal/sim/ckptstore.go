package sim

import (
	"fmt"
	"os"
	"path/filepath"
)

// CheckpointStore backs the warm-checkpoint cache with a directory, so
// warmup is paid once ever per (workload, seed, warmup length, geometry)
// rather than once per process. Files are named by the full key —
//
//	ck_<workload>_s<seed>_w<warm>_g<fingerprint>.ckpt
//
// so stores can be shared between sweeps with different machine
// geometries, and a geometry change simply misses instead of colliding.
// Writes go through a temp file and rename, so a crashed or concurrent
// writer never leaves a torn file under the final name; concurrent
// writers of the same key race benignly (last rename wins, both files
// are identical).
type CheckpointStore struct {
	// Dir is the backing directory; it is created on first save.
	Dir string
}

// Path returns the backing file for one checkpoint key.
func (st *CheckpointStore) Path(cfg *Config, workload string, seed uint64, warm int64) string {
	name := fmt.Sprintf("ck_%s_s%d_w%d_g%016x.ckpt", workload, seed, warm, cfg.GeometryFingerprint())
	return filepath.Join(st.Dir, name)
}

// LoadOrNew returns a warmed checkpoint for the key, loading it from the
// store when a matching file exists and building (then saving) it
// otherwise. hit reports whether the warmup was skipped. A stale or
// unreadable file is treated as a miss and rebuilt over.
func (st *CheckpointStore) LoadOrNew(cfg Config, workload string, seed uint64, warm int64) (ck *Checkpoint, hit bool, err error) {
	path := st.Path(&cfg, workload, seed, warm)
	if ck, err := st.load(path, workload, seed, warm); err == nil {
		return ck, true, nil
	} else if !os.IsNotExist(err) {
		// A present-but-unloadable file is worth mentioning: it means the
		// store was written by an incompatible build or got corrupted, and
		// every run will silently re-warm until it is replaced.
		fmt.Fprintf(os.Stderr, "ckpt-store: rebuilding %s: %v\n", filepath.Base(path), err)
	}
	ck, err = NewCheckpoint(cfg, workload, seed, warm)
	if err != nil {
		return nil, false, err
	}
	if err := st.save(ck, path); err != nil {
		return nil, false, fmt.Errorf("sim: saving checkpoint %s: %w", filepath.Base(path), err)
	}
	return ck, false, nil
}

func (st *CheckpointStore) load(path, workload string, seed uint64, warm int64) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := LoadCheckpoint(f)
	if err != nil {
		return nil, err
	}
	// The key is encoded in the file name, but file contents win: a file
	// copied or renamed across keys must not impersonate another warmup.
	if ck.Workload() != workload || ck.Seed() != seed || ck.Warm() != warm {
		return nil, fmt.Errorf("file holds (%s, seed %d, warm %d), wanted (%s, seed %d, warm %d)",
			ck.Workload(), ck.Seed(), ck.Warm(), workload, seed, warm)
	}
	return ck, nil
}

func (st *CheckpointStore) save(ck *Checkpoint, path string) error {
	if err := os.MkdirAll(st.Dir, 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.Dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ck.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
