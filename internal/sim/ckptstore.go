package sim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// The warm-checkpoint cache pays warmup once ever per (context set,
// geometry) rather than once per process: a sweep asks
// the store before simulating a warmup, and uploads the result after.
// The store is strictly an accelerator — every store failure degrades
// to a local in-process warmup, so a sweep backed by a broken,
// unreachable, or read-only store produces bit-identical results to a
// store-less run, just slower.

// CheckpointStore is a keyed blob store backing the warm-checkpoint
// cache. Keys come from CheckpointKey and satisfy ValidStoreKey.
// Implementations must make Put atomic with respect to concurrent
// readers and writers of the same key: a Get never observes a torn
// blob, and concurrent writers race benignly (last write wins; both
// blobs are identical by construction, since the key pins everything
// the checkpoint depends on).
type CheckpointStore interface {
	// Get returns the blob stored under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Put stores data under key, replacing any previous blob.
	Put(key string, data []byte) error
}

// ErrNotFound reports a key with no blob in the store — the one Get
// error that means "miss" rather than "store trouble".
var ErrNotFound = errors.New("sim: checkpoint not in store")

// ErrStoreUnavailable marks a store that has exhausted its retry
// budget and latched itself off; further calls fail fast so a sweep
// pays the outage once, not once per grid point.
var ErrStoreUnavailable = errors.New("sim: checkpoint store unavailable")

// CheckpointKey names one checkpoint in a store: the sanitized join of
// the ordered context set, then the geometry fingerprint —
//
//	ck_<workload>_s<seed>_w<warm>[_<workload>_s<seed>_w<warm>...]_g<fingerprint>.ckpt
//
// Each workload component is escaped so a hostile or merely unusual
// name (path separators, "..", spaces) cannot leave the store
// directory or collide with another key; plain [A-Za-z0-9_-] names —
// every built-in benchmark — are unchanged, and a one-context set
// reproduces the exact single-workload key of earlier builds, so
// existing stores keep hitting. The geometry fingerprint lets sweeps
// with different machine geometries share one store: a geometry change
// misses instead of colliding.
func CheckpointKey(cfg *Config, specs []ContextSpec) string {
	var b strings.Builder
	b.WriteString("ck")
	for _, sp := range specs {
		fmt.Fprintf(&b, "_%s_s%d_w%d", escapeKeyComponent(sp.Workload), sp.Seed, sp.Warm)
	}
	fmt.Fprintf(&b, "_g%016x.ckpt", cfg.GeometryFingerprint())
	return b.String()
}

// escapeKeyComponent %XX-escapes every byte outside [A-Za-z0-9_-]
// (including '%' itself, so the escaping is injective).
func escapeKeyComponent(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if !plainKeyByte(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if plainKeyByte(s[i]) {
			b.WriteByte(s[i])
		} else {
			fmt.Fprintf(&b, "%%%02X", s[i])
		}
	}
	return b.String()
}

func plainKeyByte(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
		'0' <= c && c <= '9' || c == '_' || c == '-'
}

// ValidStoreKey reports whether key is a well-formed store key: the
// byte alphabet CheckpointKey emits, no path separators, no "..". The
// HTTP server rejects anything else before touching its directory, and
// DirStore double-checks, so a hostile key can never escape the store.
func ValidStoreKey(key string) bool {
	if key == "" || len(key) > 255 || strings.Contains(key, "..") {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !plainKeyByte(c) && c != '.' && c != '%' {
			return false
		}
	}
	return true
}

// DirStore backs the checkpoint cache with a directory (the `-ckpt-dir`
// flag), created on first Put. Writes go through a temp file and
// rename, so a crashed or concurrent writer never leaves a torn blob
// under the final name.
type DirStore struct {
	// Dir is the backing directory.
	Dir string
}

// Path returns the backing file for one store key.
func (st *DirStore) Path(key string) string { return filepath.Join(st.Dir, key) }

func (st *DirStore) pathOf(key string) (string, error) {
	if !ValidStoreKey(key) {
		return "", fmt.Errorf("sim: invalid checkpoint store key %q", key)
	}
	return st.Path(key), nil
}

// Get implements CheckpointStore.
func (st *DirStore) Get(key string) ([]byte, error) {
	path, err := st.pathOf(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) || errors.Is(err, syscall.ENOTDIR) {
		// ENOTDIR: a path component of Dir is a regular file. The blob
		// certainly is not there — report a miss and let Put (which will
		// fail loudly) decide whether the store is usable at all.
		return nil, ErrNotFound
	}
	return b, err
}

// Put implements CheckpointStore with temp+rename atomicity.
func (st *DirStore) Put(key string, data []byte) error {
	path, err := st.pathOf(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(st.Dir, 0o777); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.Dir, key+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// StoreStats counts checkpoint-store activity across a batch. All
// fields are safe for concurrent update; a nil *StoreStats disables
// counting wherever one is accepted.
type StoreStats struct {
	// Hits counts warmups skipped by loading a stored checkpoint.
	Hits atomic.Int64
	// Misses counts warmups simulated because the store had no blob
	// (the result is then uploaded).
	Misses atomic.Int64
	// PutFailures counts checkpoints built but not saved (read-only
	// directory, dead server). Never fatal: the build is used anyway.
	PutFailures atomic.Int64
	// GetRetries counts remote Get attempts beyond the first, i.e.
	// transient connection errors and 5xx responses survived.
	GetRetries atomic.Int64
	// Recoveries counts degraded latches reset by a successful
	// half-open probe (the store came back mid-sweep).
	Recoveries atomic.Int64
	// Fallbacks counts warmups simulated locally because the store was
	// unreachable or failing (as opposed to a clean miss).
	Fallbacks atomic.Int64
	// BytesRead / BytesWritten total the blob bytes transferred on
	// store hits and uploads.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// String renders the counters for the `[ckpt-cache: ...]` line; the
// failure-path counters appear only when nonzero, so the healthy-store
// line stays as short as before.
func (s *StoreStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hits=%d misses=%d", s.Hits.Load(), s.Misses.Load())
	if v := s.Fallbacks.Load(); v != 0 {
		fmt.Fprintf(&b, " fallbacks=%d", v)
	}
	if v := s.PutFailures.Load(); v != 0 {
		fmt.Fprintf(&b, " put-failures=%d", v)
	}
	if v := s.GetRetries.Load(); v != 0 {
		fmt.Fprintf(&b, " get-retries=%d", v)
	}
	if v := s.Recoveries.Load(); v != 0 {
		fmt.Fprintf(&b, " recoveries=%d", v)
	}
	if v := s.BytesRead.Load(); v != 0 {
		fmt.Fprintf(&b, " bytes-read=%d", v)
	}
	if v := s.BytesWritten.Load(); v != 0 {
		fmt.Fprintf(&b, " bytes-written=%d", v)
	}
	return b.String()
}

// Values flattens the nonzero counters for machine-readable reports
// (the shard-file JSON).
func (s *StoreStats) Values() map[string]int64 {
	m := make(map[string]int64)
	add := func(k string, v int64) {
		if v != 0 {
			m[k] = v
		}
	}
	add("hits", s.Hits.Load())
	add("misses", s.Misses.Load())
	add("put_failures", s.PutFailures.Load())
	add("get_retries", s.GetRetries.Load())
	add("recoveries", s.Recoveries.Load())
	add("fallbacks", s.Fallbacks.Load())
	add("bytes_read", s.BytesRead.Load())
	add("bytes_written", s.BytesWritten.Load())
	return m
}

// discardStats absorbs counts when a client has no Stats attached.
var discardStats StoreStats

// StoreClient drives one CheckpointStore for a sweep: load-or-build
// semantics, key construction, validation of loaded blobs, counters,
// and — the contract the whole design hangs on — graceful degradation.
// No store failure is ever returned to the caller: a failing Get falls
// back to a local warmup, a failing Put is logged and counted but the
// freshly built (perfectly good) checkpoint is returned anyway. The
// only errors LoadOrNew can return are the simulator's own.
type StoreClient struct {
	// Store is the backing blob store.
	Store CheckpointStore
	// Stats, when non-nil, receives hit/miss/failure counts.
	Stats *StoreStats

	// warnGet / warnPut gate the degradation warnings to one line per
	// client per direction, so a dead store does not spam a 10k-point
	// sweep's stderr.
	warnGet sync.Once
	warnPut sync.Once
}

func (sc *StoreClient) stats() *StoreStats {
	if sc.Stats != nil {
		return sc.Stats
	}
	return &discardStats
}

// LoadOrNew returns a warmed checkpoint for the context set, loading it
// from the store when a matching blob exists and building (then
// uploading) it otherwise. hit reports whether the warmup was skipped. A
// stale, corrupt, old-version, or mis-keyed blob is treated as a miss
// and rebuilt over; a failing store is warned about once and never fails
// the sweep.
func (sc *StoreClient) LoadOrNew(cfg Config, specs ...ContextSpec) (ck *Checkpoint, hit bool, err error) {
	key := CheckpointKey(&cfg, specs)
	data, gerr := sc.Store.Get(key)
	switch {
	case gerr == nil:
		if ck := sc.decode(key, data, specs); ck != nil {
			sc.stats().Hits.Add(1)
			sc.stats().BytesRead.Add(int64(len(data)))
			return ck, true, nil
		}
		// decode warned; fall through to rebuild (and replace the blob).
	case errors.Is(gerr, ErrNotFound):
		// Clean miss: build and upload below.
	default:
		// Store trouble. Warn once, build locally, and skip the upload —
		// a store that cannot serve Get is not worth paying Put timeouts
		// for on every grid point.
		sc.warnGet.Do(func() {
			fmt.Fprintf(os.Stderr, "ckpt-store: unavailable, falling back to local warmups: %v\n", gerr)
		})
		ck, err := NewCheckpoint(cfg, specs...)
		if err != nil {
			return nil, false, err
		}
		sc.stats().Fallbacks.Add(1)
		return ck, false, nil
	}
	ck, err = NewCheckpoint(cfg, specs...)
	if err != nil {
		return nil, false, err
	}
	sc.stats().Misses.Add(1)
	var buf bytes.Buffer
	perr := ck.Save(&buf)
	if perr == nil {
		perr = sc.Store.Put(key, buf.Bytes())
	}
	if perr != nil {
		// The checkpoint in hand is valid regardless of whether the store
		// kept a copy; failing the sweep here would make the cache less
		// robust than no cache at all.
		sc.warnPut.Do(func() {
			fmt.Fprintf(os.Stderr, "ckpt-store: cannot save %s (checkpoint still used): %v\n", key, perr)
		})
		sc.stats().PutFailures.Add(1)
	} else {
		sc.stats().BytesWritten.Add(int64(buf.Len()))
	}
	return ck, false, nil
}

// decode parses a stored blob and checks it really is the requested
// checkpoint; contents win over the key, so a blob copied or renamed
// across keys must not impersonate another warmup. Returns nil (after
// a stderr note) for anything unusable.
func (sc *StoreClient) decode(key string, data []byte, specs []ContextSpec) *Checkpoint {
	ck, err := LoadCheckpoint(bytes.NewReader(data))
	if err == nil && !slices.Equal(ck.specs, specs) {
		err = fmt.Errorf("blob holds context set %v, wanted %v", ck.specs, specs)
	}
	if err != nil {
		// A present-but-unloadable blob is worth mentioning: it means the
		// store was written by an incompatible build or got corrupted, and
		// every run will silently re-warm until it is replaced.
		fmt.Fprintf(os.Stderr, "ckpt-store: rebuilding %s: %v\n", key, err)
		return nil
	}
	return ck
}
