//go:build race

package sim

// raceDetector reports whether the race detector is active. sync.Pool
// deliberately drops items at random under the detector to shake out
// lifetime bugs, so allocation-pinning tests are meaningless there and
// skip themselves.
const raceDetector = true
