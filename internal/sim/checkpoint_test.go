package sim

import (
	"reflect"
	"testing"
)

// forkTestConfigs covers all five queue designs.
func forkTestConfigs() map[string]Config {
	return map[string]Config{
		"ideal":     DefaultConfig(QueueIdeal, 256),
		"segmented": SegmentedConfig(256, 64, true, true),
		"presched":  PrescheduledConfig(320),
		"fifos":     FIFOConfig(128),
		"distance":  DistanceConfig(320),
	}
}

// TestCheckpointForkMatchesColdRun: a run forked from a warmed checkpoint
// must be bit-identical — cycles and every statistic — to a cold run that
// warms from scratch, for every queue design. A second fork from the same
// checkpoint must reproduce it again (forking never mutates the
// checkpoint).
func TestCheckpointForkMatchesColdRun(t *testing.T) {
	const workload, seed, n, warm = "swim", 1, 8000, 50_000
	for name, cfg := range forkTestConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cold, err := RunWorkloadWarm(cfg, workload, seed, n, warm)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := NewCheckpoint(cfg, ContextSpec{Workload: workload, Seed: seed, Warm: warm})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				p, err := ck.Fork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				forked, err := p.Run(n)
				if err != nil {
					t.Fatal(err)
				}
				if forked.Cycles != cold.Cycles {
					t.Fatalf("fork %d: cycles %d, cold run %d", i, forked.Cycles, cold.Cycles)
				}
				if !reflect.DeepEqual(forked, cold) {
					t.Fatalf("fork %d: result differs from cold run\nforked: %+v\ncold:   %+v", i, forked.Stats, cold.Stats)
				}
			}
		})
	}
}

// TestCheckpointForkAcrossConfigs: the property the sweep scheduler relies
// on — one checkpoint serves every grid point that shares the memory and
// branch-structure geometry. Forking an ideal-queue checkpoint into each
// other design must match that design's own cold run exactly.
func TestCheckpointForkAcrossConfigs(t *testing.T) {
	const workload, seed, n, warm = "gcc", 3, 6000, 40_000
	ck, err := NewCheckpoint(DefaultConfig(QueueIdeal, 256), ContextSpec{Workload: workload, Seed: seed, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range forkTestConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cold, err := RunWorkloadWarm(cfg, workload, seed, n, warm)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ck.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			forked, err := p.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(forked, cold) {
				t.Fatalf("forked result differs from cold run\nforked: %+v\ncold:   %+v", forked.Stats, cold.Stats)
			}
		})
	}
}

// TestCheckpointGeometryValidation: forks that would invalidate the
// warmed state are rejected.
func TestCheckpointGeometryValidation(t *testing.T) {
	ck, err := NewCheckpoint(DefaultConfig(QueueIdeal, 128), ContextSpec{Workload: "gcc", Seed: 1, Warm: 1000})
	if err != nil {
		t.Fatal(err)
	}
	badMem := DefaultConfig(QueueIdeal, 128)
	badMem.Memory.L1D.Size *= 2
	if _, err := ck.Fork(badMem); err == nil {
		t.Error("memory-geometry change accepted")
	}
	badBTB := DefaultConfig(QueueIdeal, 128)
	badBTB.BTBEntries = 512
	if _, err := ck.Fork(badBTB); err == nil {
		t.Error("BTB-geometry change accepted")
	}
	badQ := DefaultConfig(QueueIdeal, 128)
	badQ.Queue = "nonsense"
	if _, err := ck.Fork(badQ); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestEngineCloneRunsIdentically: cloning a quiescent machine yields an
// independent twin; both runs produce identical results.
func TestEngineCloneRunsIdentically(t *testing.T) {
	cfg := SegmentedConfig(128, 64, false, false)
	ck, err := NewCheckpoint(cfg, ContextSpec{Workload: "vortex", Seed: 2, Warm: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ck.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := p.Engine.Clone()
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Processor{Engine: twin}).Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clone diverged\noriginal: %+v\nclone:    %+v", a.Stats, b.Stats)
	}
}

// TestEngineCloneRejectsInFlightState: a machine with outstanding events
// cannot be cloned (scheduled events hold closures bound to the original).
func TestEngineCloneRejectsInFlightState(t *testing.T) {
	cfg := SegmentedConfig(128, 64, false, false)
	ck, err := NewCheckpoint(cfg, ContextSpec{Workload: "swim", Seed: 1, Warm: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ck.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.Step()
	}
	if p.Committed() == 0 && p.hier.EQ.Len() == 0 {
		t.Skip("machine idle after 50 cycles; nothing in flight")
	}
	if _, err := p.Engine.Clone(); err == nil {
		t.Error("clone of a mid-run machine accepted")
	}
}
