package sim

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uop"
)

// Clone returns an independent deep copy of the machine: the queue, every
// context's front end, renamer, ROB and LSQ, the memory hierarchy, branch
// structures and statistics. In-flight instructions are remapped through
// one shared uop.CloneMap so the cloned layers agree on instruction
// identity exactly as the originals do. Stepping either machine leaves
// the other untouched.
//
// Two gates apply. The machine must be quiescent — no issued instruction
// awaiting completion and no pending memory events — because scheduled
// events hold closures bound to the original machine and cannot be
// re-bound. And every context's stream must be forkable (trace.Forkable)
// so the clone can replay the same instruction suffix. Machines built by
// NewCheckpoint satisfy both by construction.
func (e *Engine) Clone() (*Engine, error) {
	if e.inExec != 0 {
		return nil, fmt.Errorf("sim: clone requires a quiescent machine (%d instructions in execution)", e.inExec)
	}
	hier, err := e.hier.Clone()
	if err != nil {
		return nil, err
	}
	for _, th := range e.ctxs {
		if _, ok := th.stream.(trace.Forkable); !ok {
			return nil, fmt.Errorf("sim: clone requires forkable streams (context %d reads a %T)", th.id, th.stream)
		}
	}
	m := uop.NewCloneMap()
	n := new(Engine)
	*n = *e
	n.hier = hier
	n.fus = e.fus.Clone()
	n.q = e.q.Clone(m)
	n.demROB.Steps = e.demROB.CloneSteps()
	n.demLSQ.Steps = e.demLSQ.CloneSteps()
	n.ctxs = nil
	for _, th := range e.ctxs {
		s := th.stream.(trace.Forkable).Fork()
		bp := th.bp.Clone()
		btb := th.btb.Clone()
		nth := &context{
			id:        th.id,
			stream:    s,
			bp:        bp,
			btb:       btb,
			fe:        th.fe.Clone(s, bp, btb, hier.L1I, m),
			ren:       th.ren.Clone(m),
			rob:       th.rob.Clone(m),
			workload:  th.workload,
			committed: th.committed,
		}
		nth.lsq = th.lsq.Clone(hier.L1D, hier.EQ, n.q, m)
		n.bindCommit(nth)
		n.ctxs = append(n.ctxs, nth)
	}
	n.bindCallbacks()
	return n, nil
}

// CloneActive returns an independent deep copy of a machine that is
// mid-run: pending memory events, busy MSHRs and queued fetches are
// carried across and re-pointed at the clone through a mem.Remap. Since
// PR 8's event refactor every event is a Ref naming its handler (cache,
// LSQ, front end, engine) and payload (mshr, uop, nil), so the clone
// registers the handler identities it creates and resolves every Ref
// afterwards; an unresolvable Ref — a test-only closure wrapper, or a
// payload kind the resolver does not know — returns an error and the
// caller falls back to a quiescent clone site.
//
// One gate remains from Clone: no instruction may be in execution
// (inExec == 0). Such boundaries are dense — measured ~1 per 5 cycles on
// the Table 1 machine — whereas fully-quiescent (empty event queue)
// boundaries essentially never occur mid-run, which is the point of this
// function. Streams must be forkable, as for Clone.
func (e *Engine) CloneActive() (*Engine, error) {
	return e.cloneActive(nil)
}

// CloneBounded is CloneActive refitted to a sibling sweep configuration:
// the clone is exactly the machine a cold run under cfg would have built
// at this cycle, provided the demand watermarks never crossed cfg's
// tighter bounds — which the caller establishes from Demands() and the
// refits re-verify. cfg may tighten the queue design's sweep bound
// (capacity for the conventional design, chain wires for the segmented
// one) and the ROB/LSQ sizes; everything else must match. An error means
// the refit could not be proven safe and the caller must fork cold.
func (e *Engine) CloneBounded(cfg Config) (*Engine, error) {
	return e.cloneActive(&cfg)
}

func (e *Engine) cloneActive(cfg2 *Config) (*Engine, error) {
	if e.inExec != 0 {
		return nil, fmt.Errorf("sim: active clone at a non-boundary (%d instructions in execution)", e.inExec)
	}
	for _, th := range e.ctxs {
		if _, ok := th.stream.(trace.Forkable); !ok {
			return nil, fmt.Errorf("sim: clone requires forkable streams (context %d reads a %T)", th.id, th.stream)
		}
	}
	robEach, lsqEach := 0, 0
	if cfg2 != nil {
		if err := validateSibling(e.cfg, *cfg2); err != nil {
			return nil, err
		}
		robEach, lsqEach = cfg2.forContexts(len(e.ctxs))
	}
	rm := mem.NewRemap()
	hier, err := e.hier.CloneActive(rm)
	if err != nil {
		return nil, err
	}
	m := uop.NewCloneMap()
	rm.Arg = func(a any) (any, error) {
		u, ok := a.(*uop.UOp)
		if !ok {
			return nil, fmt.Errorf("sim: active clone: unmapped event payload %T", a)
		}
		return m.Get(u), nil
	}
	n := new(Engine)
	*n = *e
	n.hier = hier
	n.fus = e.fus.Clone()
	n.demROB.Steps = e.demROB.CloneSteps()
	n.demLSQ.Steps = e.demLSQ.CloneSteps()
	if cfg2 == nil {
		n.q = e.q.Clone(m)
	} else {
		n.cfg = *cfg2
		b1, _, refit1 := queueBound(e.cfg)
		b2, _, _ := queueBound(*cfg2)
		if refit1 && b1 != b2 {
			q2, ok := e.q.CloneBounded(m, b2)
			if !ok {
				return nil, fmt.Errorf("sim: queue refit to bound %d unsafe (watermark crossed or unsupported)", b2)
			}
			n.q = q2
		} else {
			n.q = e.q.Clone(m)
		}
	}
	n.ctxs = nil
	rm.RegisterHandler(e, n)
	for _, th := range e.ctxs {
		s := th.stream.(trace.Forkable).Fork()
		bp := th.bp.Clone()
		btb := th.btb.Clone()
		nth := &context{
			id:        th.id,
			stream:    s,
			bp:        bp,
			btb:       btb,
			fe:        th.fe.Clone(s, bp, btb, hier.L1I, m),
			ren:       th.ren.Clone(m),
			workload:  th.workload,
			committed: th.committed,
		}
		if cfg2 == nil {
			nth.rob = th.rob.Clone(m)
			nth.lsq = th.lsq.Clone(hier.L1D, hier.EQ, n.q, m)
		} else {
			rob, ok := th.rob.CloneCap(m, robEach)
			if !ok {
				return nil, fmt.Errorf("sim: ROB refit to %d unsafe (%d resident)", robEach, th.rob.Len())
			}
			nth.rob = rob
			lsq, ok := th.lsq.CloneCap(hier.L1D, hier.EQ, n.q, m, lsqEach)
			if !ok {
				return nil, fmt.Errorf("sim: LSQ refit to %d unsafe (%d resident)", lsqEach, th.lsq.Len())
			}
			nth.lsq = lsq
		}
		rm.RegisterHandler(th.fe, nth.fe)
		rm.RegisterHandler(th.lsq, nth.lsq)
		n.bindCommit(nth)
		n.ctxs = append(n.ctxs, nth)
	}
	n.bindCallbacks()
	if err := hier.ResolveRemap(rm); err != nil {
		return nil, err
	}
	return n, nil
}
