package sim

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/uop"
)

// Clone returns an independent deep copy of the machine: the queue, every
// context's front end, renamer, ROB and LSQ, the memory hierarchy, branch
// structures and statistics. In-flight instructions are remapped through
// one shared uop.CloneMap so the cloned layers agree on instruction
// identity exactly as the originals do. Stepping either machine leaves
// the other untouched.
//
// Two gates apply. The machine must be quiescent — no issued instruction
// awaiting completion and no pending memory events — because scheduled
// events hold closures bound to the original machine and cannot be
// re-bound. And every context's stream must be forkable (trace.Forkable)
// so the clone can replay the same instruction suffix. Machines built by
// NewCheckpoint satisfy both by construction.
func (e *Engine) Clone() (*Engine, error) {
	if e.inExec != 0 {
		return nil, fmt.Errorf("sim: clone requires a quiescent machine (%d instructions in execution)", e.inExec)
	}
	hier, err := e.hier.Clone()
	if err != nil {
		return nil, err
	}
	for _, th := range e.ctxs {
		if _, ok := th.stream.(trace.Forkable); !ok {
			return nil, fmt.Errorf("sim: clone requires forkable streams (context %d reads a %T)", th.id, th.stream)
		}
	}
	m := uop.NewCloneMap()
	n := new(Engine)
	*n = *e
	n.hier = hier
	n.fus = e.fus.Clone()
	n.q = e.q.Clone(m)
	n.ctxs = nil
	for _, th := range e.ctxs {
		s := th.stream.(trace.Forkable).Fork()
		bp := th.bp.Clone()
		btb := th.btb.Clone()
		nth := &context{
			id:        th.id,
			stream:    s,
			bp:        bp,
			btb:       btb,
			fe:        th.fe.Clone(s, bp, btb, hier.L1I, m),
			ren:       th.ren.Clone(m),
			rob:       th.rob.Clone(m),
			workload:  th.workload,
			committed: th.committed,
		}
		nth.lsq = th.lsq.Clone(hier.L1D, hier.EQ, n.q, m)
		n.bindCommit(nth)
		n.ctxs = append(n.ctxs, nth)
	}
	n.bindCallbacks()
	return n, nil
}
