package sim

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Checkpoint captures a machine warmed over one workload's prefix: caches
// installed, branch structures trained, and the instruction stream
// advanced to the measurement point. Fork then stamps out fresh machines
// that resume from that state — under the checkpoint's own configuration
// or any other that keeps the same memory and branch-structure geometry —
// so a sweep pays for the warmup once per (workload, seed) instead of
// once per grid point.
//
// The forked machines share a memoised view of the post-warmup stream
// (trace.ForkSource); Fork is safe to call from concurrent goroutines,
// and the forked machines may themselves run concurrently.
type Checkpoint struct {
	template *Engine

	// seed and warm record how the template was produced; Save writes them
	// so LoadCheckpoint can rebuild the generator and report provenance.
	seed uint64
	warm int64
}

// NewCheckpoint builds the named workload, fast-forwards it by warm
// instructions (Engine.Warm: cache lines installed, branch structures
// trained, no simulated time), and captures the result.
func NewCheckpoint(cfg Config, workload string, seed uint64, warm int64) (*Checkpoint, error) {
	base, err := trace.New(workload, seed)
	if err != nil {
		return nil, err
	}
	src := trace.NewForkSource(base)
	cur := src.Fork()
	// No cursor ever starts below the warm frontier, so live trimming can
	// run from the first instruction: the warmup prefix is freed as it is
	// consumed instead of accumulating until the explicit trim below.
	src.TrimBefore(0)
	e, err := NewEngine(cfg, []trace.Stream{cur})
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		e.Warm([]trace.Stream{cur}, warm)
		// The warmup prefix will never be replayed: every fork starts at
		// the frontier.
		src.TrimBefore(cur.Pos())
	}
	return &Checkpoint{template: e, seed: seed, warm: warm}, nil
}

// Workload returns the checkpointed workload's name.
func (ck *Checkpoint) Workload() string { return ck.template.ctxs[0].workload }

// Seed returns the trace seed the checkpoint was warmed with.
func (ck *Checkpoint) Seed() uint64 { return ck.seed }

// Warm returns the warmup length the checkpoint was built with.
func (ck *Checkpoint) Warm() int64 { return ck.warm }

// Release declares the checkpoint done forking: its template cursor —
// pinned at the warm frontier, which forces the fork source to keep the
// whole measured suffix memoised for potential future forks — is
// unregistered, so the source's live trimming can follow the machines
// already forked instead. Fork must not be called after Release.
func (ck *Checkpoint) Release() {
	if c, ok := ck.template.ctxs[0].stream.(*trace.ForkCursor); ok {
		c.Release()
	}
}

// Fork returns a fresh machine resuming from the checkpoint under cfg,
// which may vary the queue design, queue size, widths, and ROB/LSQ sizes
// freely. The memory hierarchy and branch-structure geometry must match
// the checkpoint's — the warmed state would be meaningless otherwise —
// and a mismatch is an error. Concurrent forks are safe: the checkpoint
// is only ever read.
func (ck *Checkpoint) Fork(cfg Config) (*Processor, error) {
	t := ck.template
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Memory != t.cfg.Memory {
		return nil, fmt.Errorf("sim: fork changes memory geometry; re-checkpoint instead")
	}
	if cfg.BranchPredictor != t.cfg.BranchPredictor ||
		cfg.BTBEntries != t.cfg.BTBEntries || cfg.BTBWays != t.cfg.BTBWays {
		return nil, fmt.Errorf("sim: fork changes branch-structure geometry; re-checkpoint instead")
	}
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	hier, err := t.hier.Clone()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	tth := t.ctxs[0]
	th, err := e.newContext(0, tth.stream.(trace.Forkable).Fork(),
		cfg.ROBSize, cfg.LSQSize, tth.bp.Clone(), tth.btb.Clone())
	if err != nil {
		return nil, err
	}
	e.ctxs = append(e.ctxs, th)
	e.bindCallbacks()
	return &Processor{Engine: e}, nil
}
