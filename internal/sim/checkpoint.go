package sim

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/trace"
)

// ContextSpec names one hardware context of a checkpointed machine: a
// workload, the seed its trace generator runs with, and the number of
// instructions to fast-forward that context before measurement. A
// single-threaded checkpoint is simply a one-element context set.
type ContextSpec struct {
	// Workload is the workload name (trace.New).
	Workload string
	// Seed seeds the workload's trace generator.
	Seed uint64
	// Warm is this context's fast-forward budget in instructions.
	Warm int64
}

// Checkpoint captures a machine warmed over an ordered context set's
// prefixes: caches installed, branch structures trained, and every
// context's instruction stream advanced to the measurement point. Fork
// then stamps out fresh machines that resume from that state — under the
// checkpoint's own configuration or any other that keeps the same memory
// and branch-structure geometry — so a sweep pays for the warmup once
// per context set instead of once per grid point.
//
// The forked machines share per-context memoised views of the
// post-warmup streams (trace.ForkSource); Fork is safe to call from
// concurrent goroutines, and the forked machines may themselves run
// concurrently.
type Checkpoint struct {
	template *Engine

	// specs records how the template was produced, in context order; Save
	// writes them so LoadCheckpoint can rebuild the generators and report
	// provenance.
	specs []ContextSpec

	// frontiers are the per-context warm frontiers as absolute positions in
	// each workload's original stream. The template's own cursors cannot
	// supply these: a freshly warmed cursor sits at the absolute frontier,
	// but a loaded one sits at zero (its rebuilt source's origin is the
	// frontier itself), so Save records the absolute value here to stay
	// construction-path independent.
	frontiers []int64
}

// NewCheckpoint builds one hardware context per spec, fast-forwards the
// set round-robin over the per-context warm budgets (Engine.warmContexts:
// cache lines installed, branch structures trained, no simulated time),
// and captures the result. The round-robin interleaving matches a live
// SMT run's fetch rotation, so forking the checkpoint is equivalent to
// warming a cold machine over the same specs.
func NewCheckpoint(cfg Config, specs ...ContextSpec) (*Checkpoint, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: checkpoint needs at least one context")
	}
	curs := make([]trace.Stream, len(specs))
	srcs := make([]*trace.ForkSource, len(specs))
	budgets := make([]int64, len(specs))
	for i, sp := range specs {
		base, err := trace.New(sp.Workload, sp.Seed)
		if err != nil {
			return nil, err
		}
		src := trace.NewForkSource(base)
		cur := src.Fork()
		// No cursor ever starts below the warm frontier, so live trimming
		// can run from the first instruction: the warmup prefix is freed as
		// it is consumed instead of accumulating until the explicit trim
		// below.
		src.TrimBefore(0)
		srcs[i], curs[i] = src, cur
		budgets[i] = sp.Warm
	}
	e, err := NewEngine(cfg, curs)
	if err != nil {
		return nil, err
	}
	e.warmContexts(curs, budgets)
	frontiers := make([]int64, len(specs))
	for i, src := range srcs {
		frontiers[i] = curs[i].(*trace.ForkCursor).Pos()
		// The warmup prefix will never be replayed: every fork starts at
		// the frontier.
		src.TrimBefore(frontiers[i])
	}
	return &Checkpoint{template: e, specs: append([]ContextSpec(nil), specs...), frontiers: frontiers}, nil
}

// Specs returns the ordered context set the checkpoint was built over.
func (ck *Checkpoint) Specs() []ContextSpec {
	return append([]ContextSpec(nil), ck.specs...)
}

// Contexts returns the number of hardware contexts.
func (ck *Checkpoint) Contexts() int { return len(ck.specs) }

// Release declares the checkpoint done forking: its template cursors —
// pinned at the warm frontier, which forces each fork source to keep the
// whole measured suffix memoised for potential future forks — are
// unregistered, so the sources' live trimming can follow the machines
// already forked instead. Fork must not be called after Release.
func (ck *Checkpoint) Release() {
	for _, th := range ck.template.ctxs {
		if c, ok := th.stream.(*trace.ForkCursor); ok {
			c.Release()
		}
	}
}

// Fork returns a fresh machine resuming from the checkpoint under cfg,
// which may vary the queue design, queue size, widths, and ROB/LSQ sizes
// freely. The memory hierarchy and branch-structure geometry must match
// the checkpoint's — the warmed state would be meaningless otherwise —
// and a mismatch is an error. Every context of the template is forked;
// the n-context resource partitioning is re-derived from cfg exactly as
// NewEngine would. Concurrent forks are safe: the checkpoint is only
// ever read.
func (ck *Checkpoint) Fork(cfg Config) (*Processor, error) {
	t := ck.template
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Memory != t.cfg.Memory {
		return nil, fmt.Errorf("sim: fork changes memory geometry; re-checkpoint instead")
	}
	if cfg.BranchPredictor != t.cfg.BranchPredictor ||
		cfg.BTBEntries != t.cfg.BTBEntries || cfg.BTBWays != t.cfg.BTBWays {
		return nil, fmt.Errorf("sim: fork changes branch-structure geometry; re-checkpoint instead")
	}
	robEach, lsqEach := cfg.forContexts(len(t.ctxs))
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	hier, err := t.hier.Clone()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	for _, tth := range t.ctxs {
		th, err := e.newContext(tth.id, tth.stream.(trace.Forkable).Fork(),
			robEach, lsqEach, tth.bp.Clone(), tth.btb.Clone())
		if err != nil {
			return nil, err
		}
		e.ctxs = append(e.ctxs, th)
	}
	e.bindCallbacks()
	return &Processor{Engine: e}, nil
}
