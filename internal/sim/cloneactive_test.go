package sim

import (
	"reflect"
	"testing"
)

// stepToBoundary advances the machine until an inExec==0 boundary at or
// after the target committed count, and reports how many pending memory
// events the boundary carries.
func stepToBoundary(t *testing.T, e *Engine, committed int64) int {
	t.Helper()
	for i := 0; i < 20_000_000; i++ {
		if e.Committed() >= committed && e.inExec == 0 {
			return e.hier.EQ.Len()
		}
		e.Step()
	}
	t.Fatal("no inExec==0 boundary found")
	return 0
}

// TestEngineCloneActiveMidRun: an active clone taken mid-run — pending
// memory events, busy MSHRs and queued fetches in flight — must continue
// bit-identically to the machine it was cloned from, for every queue
// design. This is the property the prefix-sharing ladder rests on.
func TestEngineCloneActiveMidRun(t *testing.T) {
	const workload, seed, n, warm = "swim", 1, 8000, 50_000
	sawPending := false
	for name, cfg := range forkTestConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			ck, err := NewCheckpoint(cfg, ContextSpec{Workload: workload, Seed: seed, Warm: warm})
			if err != nil {
				t.Fatal(err)
			}
			p, err := ck.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pending := stepToBoundary(t, p.Engine, 2000)
			if pending > 0 {
				sawPending = true
			}
			twin, err := p.Engine.CloneActive()
			if err != nil {
				t.Fatal(err)
			}
			a, err := p.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			b, err := (&Processor{Engine: twin}).Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("active clone diverged\noriginal: %+v\nclone:    %+v", a.Stats, b.Stats)
			}
		})
	}
	if !sawPending {
		t.Error("no design hit a boundary with pending events; test exercises nothing beyond Clone")
	}
}

// TestEngineCloneActiveRejectsMidExecution: between boundaries the gate
// must hold — instructions in execution cannot be carried across.
func TestEngineCloneActiveRejectsMidExecution(t *testing.T) {
	cfg := SegmentedConfig(128, 64, false, false)
	ck, err := NewCheckpoint(cfg, ContextSpec{Workload: "swim", Seed: 1, Warm: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ck.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && p.Engine.inExec == 0; i++ {
		p.Step()
	}
	if p.Engine.inExec == 0 {
		t.Skip("machine never entered execution in 5000 cycles")
	}
	if _, err := p.Engine.CloneActive(); err == nil {
		t.Error("active clone accepted with instructions in execution")
	}
}
