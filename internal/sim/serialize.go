package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/bpred"
	"repro/internal/codec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Checkpoint file format (little-endian throughout, via internal/codec):
//
//	magic     8 bytes  "IQCKPT1\n"
//	version   u32      CheckpointVersion
//	geometry  u64      GeometryFingerprint of the template configuration
//	config    bytes    length-prefixed JSON of the full sim.Config
//	workload  string
//	seed      u64
//	warm      i64      requested warmup length
//	pos       i64      warm frontier: instructions actually consumed
//	predictor           bpred.Predictor section (self-describing)
//	btb                 bpred.BTB section (self-describing)
//	hierarchy           mem.Hierarchy section (per-cache, name-checked)
//	memo      i64 + n×inst  ForkSource suffix beyond the frontier
//	trailer   u32      ckptTrailer, then EOF
//
// A checkpoint template is an unstepped machine: warmed caches, trained
// branch structures, stream at the frontier, simulated time still zero.
// Save enforces that shape, so the file never carries in-flight pipeline
// state and Load rebuilds the pipeline empty, exactly as NewCheckpoint
// leaves it. The geometry fingerprint is duplicated from the config so a
// store can match files without parsing JSON, and Load cross-checks the
// two against each other.

// CheckpointVersion is the current checkpoint file format version.
const CheckpointVersion = 1

const ckptTrailer uint32 = 0x54504b43 // "CKPT"

var ckptMagic = [8]byte{'I', 'Q', 'C', 'K', 'P', 'T', '1', '\n'}

// maxMemoSuffix bounds the carried memo suffix on decode. A template's
// suffix only grows while forked runs outpace it mid-sweep; at save time
// it is almost always empty, so anything enormous is corruption.
const maxMemoSuffix = 1 << 24

// GeometryFingerprint hashes the parts of the configuration a checkpoint's
// warmed state depends on: the memory hierarchy and the branch-structure
// geometry. Two configurations with equal fingerprints can fork from the
// same checkpoint; Fork enforces the same equality field-by-field.
func (cfg *Config) GeometryFingerprint() uint64 {
	b, err := json.Marshal(struct {
		Memory          any
		BranchPredictor any
		BTBEntries      int
		BTBWays         int
	}{cfg.Memory, cfg.BranchPredictor, cfg.BTBEntries, cfg.BTBWays})
	if err != nil {
		// All geometry fields are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("sim: geometry fingerprint: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Save writes the checkpoint to w in the versioned binary format above.
// The template must be in canonical checkpoint shape: a single-context
// machine that has been warmed but never stepped.
func (ck *Checkpoint) Save(w io.Writer) error {
	t := ck.template
	if len(t.ctxs) != 1 {
		return fmt.Errorf("sim: save supports single-context checkpoints, machine has %d", len(t.ctxs))
	}
	if t.cycle != 0 || t.seq != 0 || t.inExec != 0 {
		return fmt.Errorf("sim: save requires an unstepped template (cycle %d, seq %d, inExec %d)",
			t.cycle, t.seq, t.inExec)
	}
	tth := t.ctxs[0]
	cur, ok := tth.stream.(*trace.ForkCursor)
	if !ok {
		return fmt.Errorf("sim: save requires a fork-cursor stream, have %T", tth.stream)
	}
	cfgJSON, err := json.Marshal(t.cfg)
	if err != nil {
		return fmt.Errorf("sim: encoding config: %w", err)
	}

	bw := bufio.NewWriter(w)
	cw := codec.NewWriter(bw)
	cw.Raw(ckptMagic[:])
	cw.U32(CheckpointVersion)
	cw.U64(t.cfg.GeometryFingerprint())
	cw.Bytes(cfgJSON)
	cw.String(tth.workload)
	cw.U64(ck.seed)
	cw.I64(ck.warm)
	pos := cur.Pos()
	cw.I64(pos)
	tth.bp.EncodeTo(cw)
	tth.btb.EncodeTo(cw)
	if err := t.hier.EncodeTo(cw); err != nil {
		return err
	}
	memo := cur.Source().MemoSuffix(pos)
	cw.I64(int64(len(memo)))
	for i := range memo {
		trace.EncodeInst(cw, &memo[i])
	}
	cw.U32(ckptTrailer)
	if err := cw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by Save and rebuilds the
// warmed template: trained branch structures and cache contents come from
// the file, the instruction stream is regenerated from (workload, seed)
// and fast-forwarded to the recorded frontier, and the pipeline starts
// empty at cycle zero. The result forks exactly like the checkpoint that
// was saved.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	cr := codec.NewReader(br)

	magic := cr.Raw(len(ckptMagic))
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint header: %w", err)
	}
	if string(magic) != string(ckptMagic[:]) {
		return nil, fmt.Errorf("sim: not a checkpoint file (bad magic %q)", magic)
	}
	if v := cr.U32(); v != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint format version %d, this build reads %d", v, CheckpointVersion)
	}
	fp := cr.U64()
	cfgJSON := cr.Bytes(1 << 20)
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint header: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint config invalid: %w", err)
	}
	if got := cfg.GeometryFingerprint(); got != fp {
		return nil, fmt.Errorf("sim: checkpoint geometry fingerprint %016x does not match its config (%016x)", fp, got)
	}

	workload := cr.String(256)
	seed := cr.U64()
	warm := cr.I64()
	pos := cr.I64()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if pos < 0 || warm < 0 || pos > warm {
		return nil, fmt.Errorf("sim: checkpoint frontier %d inconsistent with warmup %d", pos, warm)
	}

	bp, err := bpred.DecodePredictor(cr)
	if err != nil {
		return nil, err
	}
	if bp.Config() != cfg.BranchPredictor {
		return nil, fmt.Errorf("sim: checkpoint predictor geometry does not match its config")
	}
	btb, err := bpred.DecodeBTB(cr)
	if err != nil {
		return nil, err
	}
	if entries, ways := btb.Geometry(); entries != cfg.BTBEntries || ways != cfg.BTBWays {
		return nil, fmt.Errorf("sim: checkpoint BTB geometry %d/%d does not match its config %d/%d",
			entries, ways, cfg.BTBEntries, cfg.BTBWays)
	}
	hier, err := mem.DecodeHierarchy(cr, cfg.Memory)
	if err != nil {
		return nil, err
	}

	nMemo := cr.I64()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if nMemo < 0 || nMemo > maxMemoSuffix {
		return nil, fmt.Errorf("sim: checkpoint memo suffix length %d implausible", nMemo)
	}
	memo := make([]isa.Inst, nMemo)
	for i := range memo {
		if memo[i], err = trace.DecodeInst(cr); err != nil {
			return nil, err
		}
	}
	if tr := cr.U32(); cr.Err() == nil && tr != ckptTrailer {
		return nil, fmt.Errorf("sim: checkpoint trailer %08x corrupt", tr)
	}
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("sim: trailing bytes after checkpoint")
	}

	base, err := trace.New(workload, seed)
	if err != nil {
		return nil, err
	}
	src, err := trace.ResumeForkSource(base, pos, memo)
	if err != nil {
		return nil, err
	}
	cur := src.Fork()
	src.TrimBefore(0)

	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	th, err := e.newContext(0, cur, cfg.ROBSize, cfg.LSQSize, bp, btb)
	if err != nil {
		return nil, err
	}
	th.workload = workload
	e.ctxs = append(e.ctxs, th)
	e.bindCallbacks()
	return &Checkpoint{template: e, seed: seed, warm: warm}, nil
}
