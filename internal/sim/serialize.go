package sim

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/bpred"
	"repro/internal/codec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Checkpoint file format (little-endian throughout, via internal/codec):
//
//	magic     8 bytes  "IQCKPT1\n"
//	version   u32      CheckpointVersion
//	geometry  u64      GeometryFingerprint of the template configuration
//	ctxset    u64      ContextSetFingerprint of the ordered context set
//	config    bytes    length-prefixed JSON of the full sim.Config
//	nctx      u32      context count
//	per context, in order:
//	  workload  string
//	  seed      u64
//	  warm      i64    requested warmup length for this context
//	  pos       i64    warm frontier: instructions actually consumed
//	  predictor        bpred.Predictor section (self-describing)
//	  btb              bpred.BTB section (self-describing)
//	  memo      i64 + n×inst  ForkSource suffix beyond the frontier
//	hierarchy           mem.Hierarchy section (shared; per-cache, name-checked)
//	trailer   u32      ckptTrailer, then EOF
//
// A checkpoint template is an unstepped machine: warmed caches, trained
// branch structures, every context's stream at its frontier, simulated
// time still zero. Save enforces that shape, so the file never carries
// in-flight pipeline state and Load rebuilds the pipeline empty, exactly
// as NewCheckpoint leaves it. The geometry fingerprint is duplicated from
// the config so a store can match files without parsing JSON, and Load
// cross-checks the two against each other; the context-set fingerprint
// likewise pins the ordered (workload, seed, warm) set against the
// per-context sections that follow.
//
// Version 1 of the format carried exactly one context (workload/seed/warm
// directly in the header, no context-set fingerprint); this build rejects
// v1 files with a version error rather than guessing at their layout.

// CheckpointVersion is the current checkpoint file format version.
const CheckpointVersion = 2

const ckptTrailer uint32 = 0x54504b43 // "CKPT"

var ckptMagic = [8]byte{'I', 'Q', 'C', 'K', 'P', 'T', '1', '\n'}

// maxMemoSuffix bounds each carried memo suffix on decode. A template's
// suffix only grows while forked runs outpace it mid-sweep; at save time
// it is almost always empty, so anything enormous is corruption.
const maxMemoSuffix = 1 << 24

// maxCheckpointContexts bounds the decoded context count. The SMT grid
// tops out at a handful of hardware contexts; anything larger is
// corruption, not a machine we can build.
const maxCheckpointContexts = 64

// GeometryFingerprint hashes the parts of the configuration a checkpoint's
// warmed state depends on: the memory hierarchy and the branch-structure
// geometry. Two configurations with equal fingerprints can fork from the
// same checkpoint; Fork enforces the same equality field-by-field.
func (cfg *Config) GeometryFingerprint() uint64 {
	b, err := json.Marshal(struct {
		Memory          any
		BranchPredictor any
		BTBEntries      int
		BTBWays         int
	}{cfg.Memory, cfg.BranchPredictor, cfg.BTBEntries, cfg.BTBWays})
	if err != nil {
		// All geometry fields are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("sim: geometry fingerprint: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ContextSetFingerprint hashes an ordered context set: every workload
// name (length-prefixed, so the encoding is injective), seed and warm
// budget, in context order. Reordering the same contexts changes the
// fingerprint — the interleaved warmup makes order part of the machine
// state.
func ContextSetFingerprint(specs []ContextSpec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, sp := range specs {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(sp.Workload)))
		h.Write(buf[:])
		h.Write([]byte(sp.Workload))
		binary.LittleEndian.PutUint64(buf[:], sp.Seed)
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(sp.Warm))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Save writes the checkpoint to w in the versioned binary format above.
// The template must be in canonical checkpoint shape: warmed but never
// stepped, every context's stream a fork cursor at its frontier.
func (ck *Checkpoint) Save(w io.Writer) error {
	t := ck.template
	if t.cycle != 0 || t.seq != 0 || t.inExec != 0 {
		return fmt.Errorf("sim: save requires an unstepped template (cycle %d, seq %d, inExec %d)",
			t.cycle, t.seq, t.inExec)
	}
	curs := make([]*trace.ForkCursor, len(t.ctxs))
	for i, th := range t.ctxs {
		cur, ok := th.stream.(*trace.ForkCursor)
		if !ok {
			return fmt.Errorf("sim: save requires fork-cursor streams, context %d has %T", i, th.stream)
		}
		curs[i] = cur
	}
	cfgJSON, err := json.Marshal(t.cfg)
	if err != nil {
		return fmt.Errorf("sim: encoding config: %w", err)
	}

	bw := bufio.NewWriter(w)
	cw := codec.NewWriter(bw)
	cw.Raw(ckptMagic[:])
	cw.U32(CheckpointVersion)
	cw.U64(t.cfg.GeometryFingerprint())
	cw.U64(ContextSetFingerprint(ck.specs))
	cw.Bytes(cfgJSON)
	cw.U32(uint32(len(t.ctxs)))
	for i, th := range t.ctxs {
		sp := ck.specs[i]
		cw.String(sp.Workload)
		cw.U64(sp.Seed)
		cw.I64(sp.Warm)
		cw.I64(ck.frontiers[i])
		th.bp.EncodeTo(cw)
		th.btb.EncodeTo(cw)
		// The cursor's own (source-relative) position is the frontier in
		// the source's coordinates whatever the construction path, so the
		// suffix read starts there.
		memo := curs[i].Source().MemoSuffix(curs[i].Pos())
		cw.I64(int64(len(memo)))
		for j := range memo {
			trace.EncodeInst(cw, &memo[j])
		}
	}
	if err := t.hier.EncodeTo(cw); err != nil {
		return err
	}
	cw.U32(ckptTrailer)
	if err := cw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by Save and rebuilds the
// warmed template: trained branch structures and cache contents come from
// the file, each context's instruction stream is regenerated from its
// (workload, seed) and fast-forwarded to the recorded frontier, and the
// pipeline starts empty at cycle zero. The result forks exactly like the
// checkpoint that was saved.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	cr := codec.NewReader(br)

	magic := cr.Raw(len(ckptMagic))
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint header: %w", err)
	}
	if string(magic) != string(ckptMagic[:]) {
		return nil, fmt.Errorf("sim: not a checkpoint file (bad magic %q)", magic)
	}
	if v := cr.U32(); v != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint format version %d, this build reads %d", v, CheckpointVersion)
	}
	fp := cr.U64()
	ctxFP := cr.U64()
	cfgJSON := cr.Bytes(1 << 20)
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint header: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint config invalid: %w", err)
	}
	if got := cfg.GeometryFingerprint(); got != fp {
		return nil, fmt.Errorf("sim: checkpoint geometry fingerprint %016x does not match its config (%016x)", fp, got)
	}

	nctx := cr.U32()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if nctx < 1 || nctx > maxCheckpointContexts {
		return nil, fmt.Errorf("sim: checkpoint context count %d implausible", nctx)
	}
	specs := make([]ContextSpec, nctx)
	poss := make([]int64, nctx)
	bps := make([]*bpred.Predictor, nctx)
	btbs := make([]*bpred.BTB, nctx)
	memos := make([][]isa.Inst, nctx)
	for i := range specs {
		specs[i].Workload = cr.String(256)
		specs[i].Seed = cr.U64()
		specs[i].Warm = cr.I64()
		poss[i] = cr.I64()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if poss[i] < 0 || specs[i].Warm < 0 || poss[i] > specs[i].Warm {
			return nil, fmt.Errorf("sim: checkpoint context %d frontier %d inconsistent with warmup %d",
				i, poss[i], specs[i].Warm)
		}
		bp, err := bpred.DecodePredictor(cr)
		if err != nil {
			return nil, err
		}
		if bp.Config() != cfg.BranchPredictor {
			return nil, fmt.Errorf("sim: checkpoint context %d predictor geometry does not match its config", i)
		}
		bps[i] = bp
		btb, err := bpred.DecodeBTB(cr)
		if err != nil {
			return nil, err
		}
		if entries, ways := btb.Geometry(); entries != cfg.BTBEntries || ways != cfg.BTBWays {
			return nil, fmt.Errorf("sim: checkpoint context %d BTB geometry %d/%d does not match its config %d/%d",
				i, entries, ways, cfg.BTBEntries, cfg.BTBWays)
		}
		btbs[i] = btb
		nMemo := cr.I64()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if nMemo < 0 || nMemo > maxMemoSuffix {
			return nil, fmt.Errorf("sim: checkpoint context %d memo suffix length %d implausible", i, nMemo)
		}
		memo := make([]isa.Inst, nMemo)
		for j := range memo {
			if memo[j], err = trace.DecodeInst(cr); err != nil {
				return nil, err
			}
		}
		memos[i] = memo
	}
	if got := ContextSetFingerprint(specs); got != ctxFP {
		return nil, fmt.Errorf("sim: checkpoint context-set fingerprint %016x does not match its contexts (%016x)", ctxFP, got)
	}
	hier, err := mem.DecodeHierarchy(cr, cfg.Memory)
	if err != nil {
		return nil, err
	}
	if tr := cr.U32(); cr.Err() == nil && tr != ckptTrailer {
		return nil, fmt.Errorf("sim: checkpoint trailer %08x corrupt", tr)
	}
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("sim: trailing bytes after checkpoint")
	}

	robEach, lsqEach := cfg.forContexts(int(nctx))
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	for i, sp := range specs {
		base, err := trace.New(sp.Workload, sp.Seed)
		if err != nil {
			return nil, err
		}
		src, err := trace.ResumeForkSource(base, poss[i], memos[i])
		if err != nil {
			return nil, err
		}
		cur := src.Fork()
		src.TrimBefore(0)
		th, err := e.newContext(i, cur, robEach, lsqEach, bps[i], btbs[i])
		if err != nil {
			return nil, err
		}
		th.workload = sp.Workload
		e.ctxs = append(e.ctxs, th)
	}
	e.bindCallbacks()
	return &Checkpoint{template: e, specs: specs, frontiers: poss}, nil
}
