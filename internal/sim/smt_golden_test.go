package sim

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// The SMT golden numbers below pin the multi-context engine's
// cycle-exact behaviour for 2- and 4-thread mixes. They were recaptured
// when warmup switched from sequential (one context fully warmed before
// the next) to round-robin (one instruction per context per turn,
// matching live SMT fetch rotation) — shared cache and predictor warm
// state interleaves differently, so all four counts moved. Any change
// here is a behaviour change of the shared-queue SMT model and needs the
// same scrutiny as the single-thread golden numbers.
func TestSMTGoldenCycleCounts(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		workloads []string
		n, warm   int64

		cycles       int64
		instructions int64
		perThread    []int64
	}{
		{
			name:      "segmented2_swim_gcc",
			cfg:       SegmentedConfig(256, 64, true, true),
			workloads: []string{"swim", "gcc"},
			n:         16000, warm: 50000,
			cycles: 10050, instructions: 16000,
			perThread: []int64{12925, 3075},
		},
		{
			name:      "segmented4_swim_gcc",
			cfg:       SegmentedConfig(256, 64, true, true),
			workloads: []string{"swim", "gcc", "swim", "gcc"},
			n:         32000, warm: 50000,
			cycles: 15814, instructions: 32007,
			perThread: []int64{12108, 3944, 12112, 3843},
		},
		{
			name:      "ideal2_swim_gcc",
			cfg:       DefaultConfig(QueueIdeal, 256),
			workloads: []string{"swim", "gcc"},
			n:         16000, warm: 50000,
			cycles: 8034, instructions: 16001,
			perThread: []int64{12635, 3366},
		},
		{
			name:      "ideal4_swim_gcc",
			cfg:       DefaultConfig(QueueIdeal, 256),
			workloads: []string{"swim", "gcc", "swim", "gcc"},
			n:         32000, warm: 50000,
			cycles: 10810, instructions: 32007,
			perThread: []int64{10451, 5706, 10443, 5407},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunSMT(tc.cfg, tc.workloads, 1, tc.n, tc.warm)
			if err != nil {
				t.Fatalf("RunSMT: %v", err)
			}
			if res.Cycles != tc.cycles {
				t.Errorf("cycles = %d, want %d", res.Cycles, tc.cycles)
			}
			if res.Instructions != tc.instructions {
				t.Errorf("instructions = %d, want %d", res.Instructions, tc.instructions)
			}
			if !reflect.DeepEqual(res.PerThread, tc.perThread) {
				t.Errorf("per-thread = %v, want %v", res.PerThread, tc.perThread)
			}
		})
	}
}

// TestSMTFetchPortAfterDrain pins the fetch-port hand-off when a context's
// trace runs dry mid-run: a drained context must yield the shared fetch
// port to the remaining ones instead of consuming it with a no-op fetch.
// Thread 0 runs a short finite trace that drains early; thread 1 runs a
// long one. (The rotation bug this pins against — breaking out of the
// port scan on a Done() context — starved thread 1 of roughly half its
// fetch cycles once thread 0 finished.)
func TestSMTFetchPortAfterDrain(t *testing.T) {
	short, err := trace.New("swim", 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := trace.New("gcc", 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSMT(DefaultConfig(QueueIdeal, 256),
		[]trace.Stream{trace.Limit(short, 1500), long})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	const wantCycles, wantInsts = 64919, 10000
	wantPerThread := []int64{1500, 8500}
	if res.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", res.Cycles, wantCycles)
	}
	if res.Instructions != wantInsts {
		t.Errorf("instructions = %d, want %d", res.Instructions, wantInsts)
	}
	if !reflect.DeepEqual(res.PerThread, wantPerThread) {
		t.Errorf("per-thread = %v, want %v", res.PerThread, wantPerThread)
	}
	if res.PerThread[0] != 1500 {
		t.Errorf("thread 0 committed %d, want its full 1500-instruction trace", res.PerThread[0])
	}
}
