package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// deepEqualIgnoreFuncs compares two values structurally, traversing
// unexported fields, with three deliberate deviations from
// reflect.DeepEqual: function values always compare equal (the engine,
// LSQ and front end hold bound callbacks whose closures necessarily
// differ between two machines), nil and empty slices/maps compare equal
// (scratch buffers are allocated lazily and their emptiness, not their
// identity, is the machine state), and floats compare by bit pattern.
// It returns the path of the first difference.
func deepEqualIgnoreFuncs(a, b any) (string, bool) {
	return deepValueEqual("", reflect.ValueOf(a), reflect.ValueOf(b),
		make(map[[2]uintptr]bool))
}

func deepValueEqual(path string, a, b reflect.Value, visited map[[2]uintptr]bool) (string, bool) {
	if a.IsValid() != b.IsValid() {
		return path, false
	}
	if !a.IsValid() {
		return "", true
	}
	if a.Type() != b.Type() {
		return path + " (type)", false
	}
	switch a.Kind() {
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		return "", true
	case reflect.Pointer:
		if a.IsNil() != b.IsNil() {
			return path, false
		}
		if a.IsNil() || a.Pointer() == b.Pointer() {
			return "", true
		}
		k := [2]uintptr{a.Pointer(), b.Pointer()}
		if visited[k] {
			return "", true
		}
		visited[k] = true
		return deepValueEqual(path, a.Elem(), b.Elem(), visited)
	case reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return path, false
		}
		if a.IsNil() {
			return "", true
		}
		return deepValueEqual(path, a.Elem(), b.Elem(), visited)
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < a.NumField(); i++ {
			if p, ok := deepValueEqual(path+"."+t.Field(i).Name, a.Field(i), b.Field(i), visited); !ok {
				return p, false
			}
		}
		return "", true
	case reflect.Slice:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s (len %d vs %d)", path, a.Len(), b.Len()), false
		}
		if a.Len() == 0 || a.Pointer() == b.Pointer() {
			return "", true
		}
		fallthrough
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			if p, ok := deepValueEqual(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), visited); !ok {
				return p, false
			}
		}
		return "", true
	case reflect.Map:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s (len %d vs %d)", path, a.Len(), b.Len()), false
		}
		if a.Len() == 0 || a.Pointer() == b.Pointer() {
			return "", true
		}
		if a.Type().Key().Kind() == reflect.Pointer {
			// Keys are object identities (e.g. in-flight uops): two
			// machines never share them, so match keys structurally,
			// each b-key consumed at most once.
			akeys, bkeys := a.MapKeys(), b.MapKeys()
			used := make([]bool, len(bkeys))
		outer:
			for _, ka := range akeys {
				va := a.MapIndex(ka)
				for j, kb := range bkeys {
					if used[j] {
						continue
					}
					// A failed candidate must not pollute the shared
					// visited set, so each attempt gets its own.
					scratch := make(map[[2]uintptr]bool)
					if _, ok := deepValueEqual("", ka, kb, scratch); !ok {
						continue
					}
					if _, ok := deepValueEqual("", va, b.MapIndex(kb), scratch); !ok {
						continue
					}
					used[j] = true
					continue outer
				}
				return fmt.Sprintf("%s[%v] (no structurally equal key)", path, ka), false
			}
			return "", true
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() {
				return fmt.Sprintf("%s[%v] (missing key)", path, iter.Key()), false
			}
			if p, ok := deepValueEqual(fmt.Sprintf("%s[%v]", path, iter.Key()), iter.Value(), bv, visited); !ok {
				return p, false
			}
		}
		return "", true
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			return path, false
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			return fmt.Sprintf("%s (%d vs %d)", path, a.Int(), b.Int()), false
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if a.Uint() != b.Uint() {
			return fmt.Sprintf("%s (%d vs %d)", path, a.Uint(), b.Uint()), false
		}
	case reflect.Float32, reflect.Float64:
		if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
			return fmt.Sprintf("%s (%v vs %v)", path, a.Float(), b.Float()), false
		}
	case reflect.Complex64, reflect.Complex128:
		if a.Complex() != b.Complex() {
			return path, false
		}
	case reflect.String:
		if a.String() != b.String() {
			return fmt.Sprintf("%s (%q vs %q)", path, a.String(), b.String()), false
		}
	}
	return "", true
}

// runSkipPair runs the same workload on the same configuration twice —
// once with event-driven skipping (the default) and once stepping every
// cycle — and returns both results and final engines.
func runSkipPair(t *testing.T, cfg Config, workload string, seed uint64, n, warm int64) (rSkip, rStep *Result, eSkip, eStep *Engine) {
	t.Helper()
	run := func(noSkip bool) (*Result, *Engine) {
		c := cfg
		c.NoSkip = noSkip
		s, err := trace.New(workload, seed)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if warm > 0 {
			p.Warm(s, warm)
		}
		r, err := p.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		return r, p.Engine
	}
	rSkip, eSkip = run(false)
	rStep, eStep = run(true)
	return
}

// requireSkipEquivalence asserts the skip-oracle contract: the full
// statistics dump is byte-identical and the final machines are equal in
// every field other than the skip telemetry itself.
func requireSkipEquivalence(t *testing.T, rSkip, rStep *Result, eSkip, eStep *Engine) {
	t.Helper()
	if eStep.skippedCycles != 0 || eStep.skipWindows != 0 {
		t.Fatalf("NoSkip run skipped %d cycles in %d windows", eStep.skippedCycles, eStep.skipWindows)
	}
	if d1, d2 := rSkip.Stats.String(), rStep.Stats.String(); d1 != d2 {
		t.Errorf("skipping changed the statistics:\n--- skip\n%s\n--- no-skip\n%s", d1, d2)
	}
	// Normalise the telemetry and the knob itself, then require equality
	// of everything else, unexported state included.
	eSkip.skippedCycles, eSkip.skipWindows = 0, 0
	eSkip.cfg.NoSkip, eStep.cfg.NoSkip = false, false
	if p, ok := deepEqualIgnoreFuncs(eSkip, eStep); !ok {
		t.Errorf("final machine state diverged at %s", p)
	}
}

// TestSkipConformanceGolden runs every golden-test machine with and
// without idle-cycle skipping: the statistics must be byte-identical and
// the final machines equal field by field. The cases where skipping is
// known to elide cycles additionally assert it actually did, so the test
// cannot pass vacuously.
func TestSkipConformanceGolden(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		workload string
		mustSkip bool
	}{
		{"ideal", DefaultConfig(QueueIdeal, 256), "swim", true},
		{"ideal", DefaultConfig(QueueIdeal, 256), "gcc", true},
		{"segmented", SegmentedConfig(256, 64, true, true), "swim", true},
		{"segmented", SegmentedConfig(256, 64, true, true), "gcc", true},
		{"prescheduled", PrescheduledConfig(256), "swim", false},
		{"prescheduled", PrescheduledConfig(256), "gcc", true},
		{"fifos", FIFOConfig(256), "swim", true},
		{"fifos", FIFOConfig(256), "gcc", true},
		{"distance", DistanceConfig(256), "swim", true},
		{"distance", DistanceConfig(256), "gcc", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name+"/"+tc.workload, func(t *testing.T) {
			t.Parallel()
			rSkip, rStep, eSkip, eStep := runSkipPair(t, tc.cfg, tc.workload, 1, 8000, 50000)
			if tc.mustSkip && eSkip.skippedCycles == 0 {
				t.Error("expected the skip run to elide cycles; it elided none")
			}
			requireSkipEquivalence(t, rSkip, rStep, eSkip, eStep)
		})
	}
}

// TestSkipConformanceSweep covers a pinned sweep grid — every design at
// two queue sizes on a third workload — with the same oracle.
func TestSkipConformanceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid conformance is long")
	}
	grids := []struct {
		name string
		cfg  func(size int) Config
	}{
		{"ideal", func(n int) Config { return DefaultConfig(QueueIdeal, n) }},
		{"segmented", func(n int) Config { return SegmentedConfig(n, 64, true, true) }},
		{"prescheduled", PrescheduledConfig},
		{"fifos", FIFOConfig},
		{"distance", DistanceConfig},
	}
	for _, g := range grids {
		for _, size := range []int{64, 256} {
			g, size := g, size
			t.Run(fmt.Sprintf("%s/%d", g.name, size), func(t *testing.T) {
				t.Parallel()
				rSkip, rStep, eSkip, eStep := runSkipPair(t, g.cfg(size), "twolf", 5, 4000, 20000)
				requireSkipEquivalence(t, rSkip, rStep, eSkip, eStep)
			})
		}
	}
}

// TestSkipConformanceSMT runs the skip oracle on a two-context machine:
// shared queue, shared fetch port, per-context front ends and LSQs.
func TestSkipConformanceSMT(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(QueueIdeal, 256),
		SegmentedConfig(256, 64, true, true),
	} {
		cfg := cfg
		t.Run(string(cfg.Queue), func(t *testing.T) {
			t.Parallel()
			run := func(noSkip bool) (*SMTResult, *Engine) {
				c := cfg
				c.NoSkip = noSkip
				res, err := RunSMT(c, []string{"swim", "gcc"}, 1, 12000, 30000)
				if err != nil {
					t.Fatal(err)
				}
				return res, nil
			}
			rSkip, _ := run(false)
			rStep, _ := run(true)
			if d1, d2 := rSkip.Stats.String(), rStep.Stats.String(); d1 != d2 {
				t.Errorf("skipping changed the SMT statistics:\n--- skip\n%s\n--- no-skip\n%s", d1, d2)
			}
		})
	}
}

// TestCheckpointForkSkipConformance forks the same checkpoint twice, one
// fork skipping and one stepping: the forks must stay bit-identical. This
// pins that skipping composes with warm-state checkpoints (the sweep
// harness's fast path) and that Fork treats NoSkip as a free knob rather
// than checkpoint geometry.
func TestCheckpointForkSkipConformance(t *testing.T) {
	ck, err := NewCheckpoint(DistanceConfig(256), ContextSpec{Workload: "swim", Seed: 1, Warm: 50000})
	if err != nil {
		t.Fatal(err)
	}
	run := func(noSkip bool) (*Result, *Engine) {
		cfg := DistanceConfig(256)
		cfg.NoSkip = noSkip
		p, err := ck.Fork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(8000)
		if err != nil {
			t.Fatal(err)
		}
		return r, p.Engine
	}
	rSkip, eSkip := run(false)
	rStep, eStep := run(true)
	if eSkip.skippedCycles == 0 {
		t.Error("expected the skipping fork to elide cycles; it elided none")
	}
	requireSkipEquivalence(t, rSkip, rStep, eSkip, eStep)
}
