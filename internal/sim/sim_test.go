package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

const testInsts = 8000

func run(t *testing.T, cfg Config, workload string, n int64) *Result {
	t.Helper()
	r, err := RunWorkload(cfg, workload, 7, n)
	if err != nil {
		t.Fatalf("%s on %s: %v", cfg.Queue, workload, err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(QueueIdeal, 512).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(QueueIdeal, 512)
	bad.Queue = "nonsense"
	if err := bad.Validate(); err == nil {
		t.Error("unknown queue kind accepted")
	}
	bad2 := DefaultConfig(QueueIdeal, 0)
	if err := bad2.Validate(); err == nil {
		t.Error("zero queue size accepted")
	}
	bad3 := DefaultConfig(QueueIdeal, 32)
	bad3.ROBSize = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	if _, err := New(bad, trace.FromSlice("x", nil)); err == nil {
		t.Error("New must validate")
	}
	if _, err := RunWorkload(DefaultConfig(QueueIdeal, 32), "nope", 1, 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTable1Defaults(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 512)
	if cfg.FetchToDecode != 10 || cfg.DecodeToDispatch != 5 {
		t.Error("front-end depth wrong")
	}
	if cfg.FetchWidth != 8 || cfg.IssueWidth != 8 || cfg.CommitWidth != 8 || cfg.DispatchWidth != 8 {
		t.Error("widths wrong")
	}
	if cfg.MaxBranches != 3 {
		t.Error("branch limit wrong")
	}
	if cfg.ROBSize != 3*512 {
		t.Error("ROB must be 3x the IQ")
	}
	if cfg.BTBEntries != 4096 || cfg.BTBWays != 4 {
		t.Error("BTB geometry wrong")
	}
	m := cfg.Memory
	if m.L1D.Size != 64<<10 || m.L1D.Ways != 2 || m.L1D.HitLatency != 3 || m.L1D.MSHRs != 32 {
		t.Error("L1D config wrong")
	}
	if m.L2.Size != 1<<20 || m.L2.Ways != 4 || m.L2.HitLatency != 10 {
		t.Error("L2 config wrong")
	}
	if m.MemLatency != 100 || m.MemBytesPerCycle != 8 {
		t.Error("memory config wrong")
	}
}

func TestAllQueuesAllWorkloadsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	configs := map[string]Config{
		"ideal-64":     DefaultConfig(QueueIdeal, 64),
		"seg-64":       SegmentedConfig(64, 64, true, true),
		"presched-128": PrescheduledConfig(128),
		"fifos-64":     FIFOConfig(64),
		"distance-128": DistanceConfig(128),
	}
	for name, cfg := range configs {
		for _, w := range trace.Names() {
			r := run(t, cfg, w, 4000)
			// The final cycle may retire up to the commit width beyond
			// the requested budget.
			if r.Instructions < 4000 || r.Instructions >= 4000+int64(cfg.CommitWidth) {
				t.Errorf("%s/%s committed %d", name, w, r.Instructions)
			}
			if r.IPC <= 0.05 || r.IPC > 8 {
				t.Errorf("%s/%s IPC %.3f implausible", name, w, r.IPC)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SegmentedConfig(128, 64, true, true)
	a := run(t, cfg, "equake", testInsts)
	b := run(t, cfg, "equake", testInsts)
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestIdealDominatesAtEqualSize(t *testing.T) {
	// The single-cycle ideal queue is an upper bound for the segmented
	// design at the same capacity (it pays no extra dispatch stage, no
	// promotion latency and has full-queue wakeup).
	for _, w := range []string{"swim", "gcc", "mgrid"} {
		ideal := run(t, DefaultConfig(QueueIdeal, 256), w, testInsts)
		seg := run(t, SegmentedConfig(256, 0, false, false), w, testInsts)
		if seg.IPC > ideal.IPC*1.05 {
			t.Errorf("%s: segmented %.3f implausibly beats ideal %.3f", w, seg.IPC, ideal.IPC)
		}
	}
}

func TestLargerWindowHelpsMemoryBoundCode(t *testing.T) {
	// The paper's headline: swim-like FP code gains enormously from a
	// larger window under an ideal queue.
	small := run(t, DefaultConfig(QueueIdeal, 32), "swim", testInsts)
	large := run(t, DefaultConfig(QueueIdeal, 512), "swim", testInsts)
	if large.IPC < small.IPC*1.5 {
		t.Errorf("swim: 512-entry %.3f vs 32-entry %.3f — expected a large win",
			large.IPC, small.IPC)
	}
	// gcc-like code gains little (misprediction bound).
	gs := run(t, DefaultConfig(QueueIdeal, 32), "gcc", testInsts)
	gl := run(t, DefaultConfig(QueueIdeal, 512), "gcc", testInsts)
	if gl.IPC > gs.IPC*1.6 {
		t.Errorf("gcc: 512-entry %.3f vs 32-entry %.3f — window should not help much",
			gl.IPC, gs.IPC)
	}
}

func TestSegmentedTracksIdealOnMgrid(t *testing.T) {
	// Mgrid achieves the paper's best relative performance (99.4% of
	// ideal at 512 entries with unlimited chains); require a healthy
	// fraction here.
	ideal := run(t, DefaultConfig(QueueIdeal, 256), "mgrid", testInsts)
	seg := run(t, SegmentedConfig(256, 0, false, false), "mgrid", testInsts)
	if rel := seg.IPC / ideal.IPC; rel < 0.5 {
		t.Errorf("segmented mgrid at %.1f%% of ideal, want a high fraction", rel*100)
	}
}

func TestSegmentedStatsPlumbing(t *testing.T) {
	r := run(t, SegmentedConfig(128, 64, true, true), "equake", testInsts)
	if v := r.Stats.MustGet("chains_peak"); v <= 0 {
		t.Error("chain accounting missing")
	}
	if v := r.Stats.MustGet("iq_promotions"); v <= 0 {
		t.Error("no promotions recorded")
	}
	if _, ok := r.Stats.Get("hmp_hit_pred_accuracy"); !ok {
		t.Error("HMP stats missing")
	}
	if _, ok := r.Stats.Get("lrp_accuracy"); !ok {
		t.Error("LRP stats missing")
	}
	if v := r.Stats.MustGet("l1d_accesses"); v <= 0 {
		t.Error("memory stats missing")
	}
	if v := r.Stats.MustGet("branches"); v <= 0 {
		t.Error("branch stats missing")
	}
}

func TestChainScarcityHurts(t *testing.T) {
	// equake has the highest chain demand (Table 2); starving it of
	// chains must not *help*.
	rich := run(t, SegmentedConfig(256, 0, false, false), "equake", testInsts)
	poor := run(t, SegmentedConfig(256, 16, false, false), "equake", testInsts)
	if poor.IPC > rich.IPC*1.05 {
		t.Errorf("16 chains (%.3f) implausibly beats unlimited (%.3f)", poor.IPC, rich.IPC)
	}
	if poor.Stats.MustGet("iq_stall_nochain") == 0 {
		t.Error("chain starvation produced no dispatch stalls")
	}
}

func TestFiniteTraceDrains(t *testing.T) {
	ins := []isa.Inst{
		{PC: 4, Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1},
		{PC: 8, Class: isa.IntAlu, Src1: 1, Src2: isa.RegNone, Dest: 2},
		{PC: 12, Class: isa.Load, Src1: 2, Src2: isa.RegNone, Dest: 3, Size: 8, Addr: 0x100},
		{PC: 16, Class: isa.Store, Src1: 3, Src2: 2, Size: 8, Addr: 0x108},
	}
	p := MustNew(SegmentedConfig(64, 8, false, false), trace.FromSlice("tiny", ins))
	r, err := p.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 4 {
		t.Fatalf("committed %d, want 4", r.Instructions)
	}
}

func TestBuildQueueVariants(t *testing.T) {
	// Explicit sub-configs are honoured.
	cfg := SegmentedConfig(512, 128, false, false)
	cfg.Segmented.InstantWires = true
	q, err := cfg.buildQueue()
	if err != nil {
		t.Fatal(err)
	}
	if sq, ok := q.(*core.SegmentedIQ); !ok || !sq.Config().InstantWires {
		t.Error("segmented sub-config not honoured")
	}
	pc := PrescheduledConfig(320)
	q2, err := pc.buildQueue()
	if err != nil {
		t.Fatal(err)
	}
	if q2.Capacity() != 320 {
		t.Errorf("presched capacity %d", q2.Capacity())
	}
}
