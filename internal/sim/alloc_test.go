package sim

import "testing"

// TestCloneActiveAllocsBounded pins the allocation count of the
// snapshot/fork hot path: one ladder rung (CloneActive) plus its
// retirement (Recycle). With the line-array pool in internal/mem a
// steady-state rung costs ~1.4k allocations — dominated by the in-flight
// uop clones, which scale with machine occupancy, not machine size. The
// bound is deliberately loose; it exists to catch a regression that
// starts allocating per cache line or per queue slot again (tens of
// thousands of allocations), not to freeze the exact count.
func TestCloneActiveAllocsBounded(t *testing.T) {
	if raceDetector {
		t.Skip("sync.Pool drops items under the race detector; allocation bounds do not hold")
	}
	cfg := SegmentedConfig(256, 0, true, true)
	ck, err := NewCheckpoint(cfg, ContextSpec{Workload: "swim", Seed: 1, Warm: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ck.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Engine.run(5_000); err != nil {
		t.Fatal(err)
	}
	// Step to a snapshot boundary, then warm the buffer pool with one
	// clone/recycle round so the measured runs see steady state.
	for i := 0; i < 100_000 && p.Engine.inExec != 0; i++ {
		p.Engine.Step()
	}
	first, err := p.Engine.CloneActive()
	if err != nil {
		t.Fatal(err)
	}
	first.Recycle()
	const maxAllocs = 5_000
	if avg := testing.AllocsPerRun(20, func() {
		c, err := p.Engine.CloneActive()
		if err != nil {
			panic(err)
		}
		c.Recycle()
	}); avg > maxAllocs {
		t.Errorf("CloneActive+Recycle = %.0f allocs/op, want <= %d — did a per-line or per-slot allocation sneak into the snapshot path?", avg, maxAllocs)
	}
}

// TestRecycleReusesLineArrays verifies the pool actually round-trips: a
// machine forked after another was recycled must not grow the process
// footprint by a full hierarchy's line arrays. Measured as allocated
// bytes per fork+recycle cycle staying well under one hierarchy's line
// storage (the L2 alone is several hundred KiB).
func TestRecycleReusesLineArrays(t *testing.T) {
	if raceDetector {
		t.Skip("sync.Pool drops items under the race detector; allocation bounds do not hold")
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	ck, err := NewCheckpoint(cfg, ContextSpec{Workload: "swim", Seed: 1, Warm: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	fork := func() {
		p, err := ck.Fork(cfg)
		if err != nil {
			panic(err)
		}
		p.Engine.Recycle()
	}
	fork() // warm the pool
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fork()
		}
	})
	// One L2's line array alone is ~384 KiB; three caches re-allocated
	// per fork would dwarf this bound.
	if bytes := res.AllocedBytesPerOp(); bytes > 300_000 {
		t.Errorf("fork+recycle allocates %d B/op — line arrays are not being reused", bytes)
	}
}
