// Package sim assembles the full processor of Table 1 around a pluggable
// instruction-queue design and drives it cycle by cycle over a workload
// trace.
package sim

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/distiq"
	"repro/internal/fifoiq"
	"repro/internal/iq"
	"repro/internal/mem"
	"repro/internal/presched"
)

// QueueKind selects the scheduler design under evaluation.
type QueueKind string

// The queue designs available: the three the paper evaluates plus the
// FIFO-based design of Palacharla et al. from its related work.
const (
	// QueueIdeal is the single-cycle monolithic conventional IQ.
	QueueIdeal QueueKind = "ideal"
	// QueueSegmented is the paper's segmented, chain-scheduled IQ.
	QueueSegmented QueueKind = "segmented"
	// QueuePrescheduled is Michaud & Seznec's prescheduling IQ.
	QueuePrescheduled QueueKind = "prescheduled"
	// QueueFIFO is Palacharla et al.'s dependence-based FIFO IQ.
	QueueFIFO QueueKind = "fifos"
	// QueueDistance is Canal & González's distance scheme (wait buffer
	// before the scheduling array).
	QueueDistance QueueKind = "distance"
)

// Config is the full processor configuration (Table 1 defaults).
type Config struct {
	// Queue selects the IQ design; QueueSize its total capacity.
	Queue     QueueKind
	QueueSize int
	// Segmented holds the chain-IQ parameters (used when Queue ==
	// QueueSegmented). If zero-valued it is derived from QueueSize.
	Segmented core.Config
	// Presched holds the prescheduling parameters (used when Queue ==
	// QueuePrescheduled). If zero-valued it is derived from QueueSize.
	Presched presched.Config
	// FIFO holds the FIFO-queue parameters (used when Queue ==
	// QueueFIFO). If zero-valued it is derived from QueueSize.
	FIFO fifoiq.Config
	// Distance holds the distance-scheme parameters (used when Queue ==
	// QueueDistance). If zero-valued it is derived from QueueSize.
	Distance distiq.Config

	FetchWidth       int
	DispatchWidth    int
	IssueWidth       int
	CommitWidth      int
	MaxBranches      int
	FetchToDecode    int
	DecodeToDispatch int

	// ROBSize defaults to 3x QueueSize (§5); LSQSize to QueueSize.
	ROBSize int
	LSQSize int

	FUPerClass   int
	CacheRdPorts int
	CacheWrPorts int

	// StatsSampleEvery samples the queues' per-cycle occupancy/readiness
	// statistics every n cycles instead of every cycle (0 or 1: every
	// cycle, exact averages). The scans walk every occupied queue slot,
	// so sampling speeds up large-queue simulations; simulated behaviour
	// (IPC, cycle counts) is unaffected. It applies to whichever queue
	// design is selected.
	StatsSampleEvery int

	// NoSkip disables event-driven idle-cycle skipping: every cycle is
	// stepped individually even when the machine is provably frozen until
	// the next scheduled event. Skipping is bit-identical by construction
	// (the conformance tests compare full machine state and statistics
	// with and without it), so this knob exists for cross-checking and
	// debugging, not for correctness.
	NoSkip bool

	BranchPredictor bpred.Config
	BTBEntries      int
	BTBWays         int

	Memory mem.HierarchyConfig
}

// DefaultConfig returns the Table 1 machine with the given IQ design and
// size.
func DefaultConfig(kind QueueKind, iqSize int) Config {
	return Config{
		Queue:            kind,
		QueueSize:        iqSize,
		FetchWidth:       8,
		DispatchWidth:    8,
		IssueWidth:       8,
		CommitWidth:      8,
		MaxBranches:      3,
		FetchToDecode:    10,
		DecodeToDispatch: 5,
		ROBSize:          3 * iqSize,
		LSQSize:          iqSize,
		FUPerClass:       8,
		CacheRdPorts:     8,
		CacheWrPorts:     8,
		BranchPredictor:  bpred.DefaultConfig(),
		BTBEntries:       4096,
		BTBWays:          4,
		Memory:           mem.DefaultHierarchyConfig(),
	}
}

// SegmentedConfig returns the paper's standard segmented-IQ machine:
// 32-entry segments with the given chain-wire budget (0 = unlimited) and
// predictor selection.
func SegmentedConfig(iqSize, maxChains int, useHMP, useLRP bool) Config {
	cfg := DefaultConfig(QueueSegmented, iqSize)
	cfg.Segmented = core.DefaultConfig(iqSize, maxChains)
	cfg.Segmented.UseHMP = useHMP
	cfg.Segmented.UseLRP = useLRP
	return cfg
}

// PrescheduledConfig returns the prescheduling baseline machine with the
// given total slot count (32-entry buffer + 12-wide rows).
func PrescheduledConfig(totalSlots int) Config {
	cfg := DefaultConfig(QueuePrescheduled, totalSlots)
	cfg.Presched = presched.DefaultConfig(totalSlots)
	return cfg
}

// FIFOConfig returns the Palacharla-style FIFO-queue machine with the
// given total slot count (depth-8 FIFOs).
func FIFOConfig(totalSlots int) Config {
	cfg := DefaultConfig(QueueFIFO, totalSlots)
	cfg.FIFO = fifoiq.DefaultConfig(totalSlots)
	return cfg
}

// DistanceConfig returns the Canal & González distance-scheme machine
// with the given total slot count (32-entry wait buffer + 12-wide rows).
func DistanceConfig(totalSlots int) Config {
	cfg := DefaultConfig(QueueDistance, totalSlots)
	cfg.Distance = distiq.DefaultConfig(totalSlots)
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueueSize < 1 {
		return fmt.Errorf("sim: queue size %d", c.QueueSize)
	}
	for name, v := range map[string]int{
		"fetch width": c.FetchWidth, "dispatch width": c.DispatchWidth,
		"issue width": c.IssueWidth, "commit width": c.CommitWidth,
		"rob size": c.ROBSize, "lsq size": c.LSQSize,
		"fu per class": c.FUPerClass,
	} {
		if v < 1 {
			return fmt.Errorf("sim: non-positive %s", name)
		}
	}
	switch c.Queue {
	case QueueIdeal, QueueSegmented, QueuePrescheduled, QueueFIFO, QueueDistance:
	default:
		return fmt.Errorf("sim: unknown queue kind %q", c.Queue)
	}
	return nil
}

// forContexts adjusts the configuration in place for an n-context
// machine and returns the per-context ROB and LSQ capacities. With one
// context it is a no-op returning the full configured sizes; with
// several, the queue design's per-register tables are replicated per
// context and the ROB/LSQ capacities divided evenly (floors of 8 and 4).
// Every construction path — NewEngine, Checkpoint.Fork, LoadCheckpoint —
// goes through here, so an n-context machine is built identically no
// matter how it came to exist.
func (c *Config) forContexts(n int) (robEach, lsqEach int) {
	robEach, lsqEach = c.ROBSize, c.LSQSize
	if n <= 1 {
		return robEach, lsqEach
	}
	switch c.Queue {
	case QueueSegmented:
		if c.Segmented.Segments == 0 {
			c.Segmented = core.DefaultConfig(c.QueueSize, 0)
		}
		c.Segmented.Threads = n
	case QueuePrescheduled:
		if c.Presched.Lines == 0 {
			c.Presched = presched.DefaultConfig(c.QueueSize)
		}
		c.Presched.Threads = n
	case QueueDistance:
		if c.Distance.Lines == 0 {
			c.Distance = distiq.DefaultConfig(c.QueueSize)
		}
		c.Distance.Threads = n
	}
	if robEach = c.ROBSize / n; robEach < 8 {
		robEach = 8
	}
	if lsqEach = c.LSQSize / n; lsqEach < 4 {
		lsqEach = 4
	}
	return robEach, lsqEach
}

// buildQueue constructs the configured IQ design.
func (c Config) buildQueue() (iq.Queue, error) {
	switch c.Queue {
	case QueueIdeal:
		q := iq.NewConventional(c.QueueSize)
		q.SetStatsSampling(c.StatsSampleEvery)
		return q, nil
	case QueueSegmented:
		sc := c.Segmented
		if sc.Segments == 0 {
			sc = core.DefaultConfig(c.QueueSize, 0)
		}
		if sc.StatsEvery == 0 {
			sc.StatsEvery = c.StatsSampleEvery
		}
		return core.New(sc)
	case QueuePrescheduled:
		pc := c.Presched
		if pc.Lines == 0 {
			pc = presched.DefaultConfig(c.QueueSize)
		}
		if pc.StatsEvery == 0 {
			pc.StatsEvery = c.StatsSampleEvery
		}
		return presched.New(pc)
	case QueueFIFO:
		fc := c.FIFO
		if fc.FIFOs == 0 {
			fc = fifoiq.DefaultConfig(c.QueueSize)
		}
		if fc.StatsEvery == 0 {
			fc.StatsEvery = c.StatsSampleEvery
		}
		return fifoiq.New(fc)
	case QueueDistance:
		dc := c.Distance
		if dc.Lines == 0 {
			dc = distiq.DefaultConfig(c.QueueSize)
		}
		if dc.StatsEvery == 0 {
			dc.StatsEvery = c.StatsSampleEvery
		}
		return distiq.New(dc)
	}
	return nil, fmt.Errorf("sim: unknown queue kind %q", c.Queue)
}
