package sim

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- key sanitization -------------------------------------------------

// TestCheckpointKeySanitizesHostileNames: a workload name with path
// separators, dot-dot, or arbitrary bytes must produce a valid,
// directory-confined, collision-free store key.
func TestCheckpointKeySanitizesHostileNames(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 128)
	hostile := []string{
		"../../etc/passwd",
		"..",
		"a/b",
		`a\b`,
		"sp ace",
		"new\nline",
		"per%cent",
		"dot.dot",
		"\x00nul",
		"ünïcode",
	}
	seen := make(map[string]string)
	for _, wl := range hostile {
		key := key1(&cfg, wl, 1, 1000)
		if !ValidStoreKey(key) {
			t.Errorf("key for %q is not valid: %q", wl, key)
		}
		if strings.ContainsAny(key, `/\`) || strings.Contains(key, "..") {
			t.Errorf("key for %q can escape the store dir: %q", wl, key)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("workloads %q and %q collide on key %q", prev, wl, key)
		}
		seen[key] = wl
		// The key must stay inside the store directory when joined.
		dir := t.TempDir()
		p := (&DirStore{Dir: dir}).Path(key)
		if rel, err := filepath.Rel(dir, p); err != nil || strings.HasPrefix(rel, "..") {
			t.Errorf("key for %q resolves outside the store: %q", wl, p)
		}
	}
	// Escaping must be injective: a pre-escaped name is distinct from
	// the name it would escape to.
	a := key1(&cfg, "a/b", 1, 1000)
	b := key1(&cfg, "a%2Fb", 1, 1000)
	if a == b {
		t.Errorf("escaped and literal names collide: %q", a)
	}
	// Plain benchmark names must be untouched, so stores written by
	// older builds keep hitting.
	if key := key1(&cfg, "swim", 3, 500); !strings.HasPrefix(key, "ck_swim_s3_w500_g") {
		t.Errorf("plain workload name was rewritten: %q", key)
	}
}

// TestDirStoreRejectsInvalidKeys: raw store access with a hostile key
// (as the HTTP server might see) must error out, not touch the
// filesystem outside the store.
func TestDirStoreRejectsInvalidKeys(t *testing.T) {
	outer := t.TempDir()
	st := &DirStore{Dir: filepath.Join(outer, "store")}
	for _, key := range []string{"", "../escape", "a/b", "ck_..ckpt", "bad key"} {
		if _, err := st.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want invalid-key error", key, err)
		}
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", key)
		}
	}
	if _, err := os.Stat(filepath.Join(outer, "escape")); !os.IsNotExist(err) {
		t.Fatal("hostile key escaped the store directory")
	}
}

// --- graceful degradation --------------------------------------------

// smallCfgKey are the shared scale parameters for the store tests:
// small enough to keep warmups cheap, big enough to be a real machine.
const (
	tstWorkload = "swim"
	tstSeed     = 3
	tstWarm     = 10_000
	tstN        = 2000
)

func tstConfig() Config { return DefaultConfig(QueueIdeal, 128) }

func tstSpec() ContextSpec {
	return ContextSpec{Workload: tstWorkload, Seed: tstSeed, Warm: tstWarm}
}

// key1 builds a store key for a single-context set.
func key1(cfg *Config, wl string, seed uint64, warm int64) string {
	return CheckpointKey(cfg, []ContextSpec{{Workload: wl, Seed: seed, Warm: warm}})
}

// runFork forks ck under cfg and runs it, failing the test on error.
func runFork(t *testing.T, ck *Checkpoint) *Result {
	t.Helper()
	p, err := ck.Fork(tstConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(tstN)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStorePutFailureNonFatal: a store that cannot be written (here:
// the directory path runs through a regular file) must not fail
// LoadOrNew — the freshly built checkpoint is in hand and perfectly
// good. Pins the PR 5 bugfix for read-only/full-disk store dirs.
func TestStorePutFailureNonFatal(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o666); err != nil {
		t.Fatal(err)
	}
	stats := &StoreStats{}
	sc := &StoreClient{Store: &DirStore{Dir: filepath.Join(blocker, "store")}, Stats: stats}
	ck, hit, err := sc.LoadOrNew(tstConfig(), tstSpec())
	if err != nil {
		t.Fatalf("LoadOrNew failed on an unwritable store: %v", err)
	}
	if hit {
		t.Fatal("unwritable empty store reported a hit")
	}
	if got := stats.PutFailures.Load(); got != 1 {
		t.Fatalf("PutFailures = %d, want 1", got)
	}
	if got := stats.Misses.Load(); got != 1 {
		t.Fatalf("Misses = %d, want 1", got)
	}
	// The checkpoint must be fully usable despite the failed save.
	if r := runFork(t, ck); r.Instructions < tstN {
		t.Fatalf("forked run simulated %d instructions, want >= %d", r.Instructions, tstN)
	}
}

// TestStoreClientFallsBackWhenUnreachable: a wrong URL (nothing
// listening) must cost one retry budget, then degrade to local warmups
// that are bit-identical to store-less ones.
func TestStoreClientFallsBackWhenUnreachable(t *testing.T) {
	hs := NewHTTPStore("http://127.0.0.1:1") // reserved port, connection refused
	hs.Retries = 2
	hs.Backoff = time.Millisecond
	stats := &StoreStats{}
	hs.Stats = stats
	sc := &StoreClient{Store: hs, Stats: stats}

	ck, hit, err := sc.LoadOrNew(tstConfig(), tstSpec())
	if err != nil {
		t.Fatalf("LoadOrNew failed against an unreachable store: %v", err)
	}
	if hit {
		t.Fatal("unreachable store reported a hit")
	}
	if !hs.Degraded() {
		t.Fatal("store did not latch degraded after exhausting retries")
	}
	if got := stats.Fallbacks.Load(); got != 1 {
		t.Fatalf("Fallbacks = %d, want 1", got)
	}
	// Degraded store: the next LoadOrNew must fail fast (no new
	// retries) and still produce a usable checkpoint.
	before := stats.GetRetries.Load()
	ck2, _, err := sc.LoadOrNew(tstConfig(), tstSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.GetRetries.Load(); got != before {
		t.Fatalf("degraded store still retried: %d -> %d", before, got)
	}
	if got := stats.Fallbacks.Load(); got != 2 {
		t.Fatalf("Fallbacks = %d, want 2", got)
	}

	// Fallback warmups must match a plain local warmup bit for bit.
	plain, err := NewCheckpoint(tstConfig(), tstSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := runFork(t, plain)
	for i, c := range []*Checkpoint{ck, ck2} {
		if got := runFork(t, c); !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback checkpoint %d differs from local warmup\ngot:  %+v\nwant: %+v", i, got.Stats, want.Stats)
		}
	}
}

// --- concurrency ------------------------------------------------------

// TestConcurrentLoadOrNewSameKey: racing LoadOrNew calls on one key
// must all succeed with usable, identical checkpoints (last rename
// wins in the store), for both backends.
func TestConcurrentLoadOrNewSameKey(t *testing.T) {
	dir := t.TempDir()
	srv := httptest.NewServer(NewStoreHandler(t.TempDir()))
	defer srv.Close()
	backends := map[string]CheckpointStore{
		"dir":  &DirStore{Dir: dir},
		"http": NewHTTPStore(srv.URL),
	}
	for name, store := range backends {
		store := store
		t.Run(name, func(t *testing.T) {
			stats := &StoreStats{}
			sc := &StoreClient{Store: store, Stats: stats}
			const workers = 4
			cks := make([]*Checkpoint, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cks[i], _, errs[i] = sc.LoadOrNew(tstConfig(), tstSpec())
				}(i)
			}
			wg.Wait()
			var want *Result
			for i := 0; i < workers; i++ {
				if errs[i] != nil {
					t.Fatalf("worker %d: %v", i, errs[i])
				}
				r := runFork(t, cks[i])
				if want == nil {
					want = r
				} else if !reflect.DeepEqual(r, want) {
					t.Fatalf("worker %d's checkpoint runs differently", i)
				}
			}
			// Whatever write won the race must now serve a hit.
			if _, hit, err := sc.LoadOrNew(tstConfig(), tstSpec()); err != nil {
				t.Fatal(err)
			} else if !hit {
				t.Fatal("store missed after concurrent writers finished")
			}
		})
	}
}

// TestHTTPStoreSingleFlight: concurrent Gets of one key are coalesced
// into a single request.
func TestHTTPStoreSingleFlight(t *testing.T) {
	const key = "ck_x_s1_w1_g0000000000000000.ckpt"
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open so callers pile up
		w.Write([]byte("blob"))
	}))
	defer srv.Close()
	hs := NewHTTPStore(srv.URL)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := hs.Get(key)
			if err != nil || string(data) != "blob" {
				t.Errorf("Get = %q, %v", data, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests for one key, want 1 (single-flight)", n)
	}
}

// --- HTTP protocol ----------------------------------------------------

// TestHTTPStoreRoundTrip: Put then Get through a real server over a
// real directory, plus the not-found path.
func TestHTTPStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv := httptest.NewServer(NewStoreHandler(dir))
	defer srv.Close()
	hs := NewHTTPStore(srv.URL)
	stats := &StoreStats{}
	hs.Stats = stats

	const key = "ck_rt_s1_w1_g00000000000000aa.ckpt"
	blob := bytes.Repeat([]byte{0xc7, 0x01, 0x55}, 1000)
	if err := hs.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	// The blob landed, atomically, in the served directory.
	if got, err := os.ReadFile(filepath.Join(dir, key)); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("served dir holds %d bytes, err %v", len(got), err)
	}
	got, err := hs.Get(key)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Get returned %d bytes, err %v", len(got), err)
	}
	if _, err := hs.Get("ck_missing_s1_w1_g0000000000000000.ckpt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	if hs.Degraded() {
		t.Fatal("healthy store latched degraded")
	}
}

// TestHTTPStoreRetries5xx: transient 5xx responses are retried (and
// counted); the store only degrades when the budget is exhausted.
func TestHTTPStoreRetries5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "catching my breath", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "no such checkpoint", http.StatusNotFound)
	}))
	defer srv.Close()
	hs := NewHTTPStore(srv.URL)
	hs.Retries = 3
	hs.Backoff = time.Millisecond
	stats := &StoreStats{}
	hs.Stats = stats

	if _, err := hs.Get("ck_x_s1_w1_g0000000000000000.ckpt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after transient 5xx = %v, want ErrNotFound", err)
	}
	if got := stats.GetRetries.Load(); got != 2 {
		t.Fatalf("GetRetries = %d, want 2", got)
	}
	if hs.Degraded() {
		t.Fatal("store degraded although the retry budget was not exhausted")
	}
}

// TestHTTPStoreDegradesAfterBudget: persistent 5xx exhausts the budget
// and latches the store off; later calls fail fast without requests.
func TestHTTPStoreDegradesAfterBudget(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	hs := NewHTTPStore(srv.URL)
	hs.Retries = 2
	hs.Backoff = time.Millisecond

	if err := hs.Put("ck_x_s1_w1_g0000000000000000.ckpt", []byte("b")); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Put = %v, want ErrStoreUnavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if _, err := hs.Get("ck_x_s1_w1_g0000000000000000.ckpt"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Get on degraded store = %v, want ErrStoreUnavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("degraded store still sent requests (%d total)", got)
	}
}

// TestStoreHandlerRejectsHostileKeys: the server must refuse keys that
// could escape or confuse the store before touching the directory.
func TestStoreHandlerRejectsHostileKeys(t *testing.T) {
	dir := t.TempDir()
	h := NewStoreHandler(dir)
	bad := []string{
		"ck_..ckpt",              // dot-dot
		"ck_a%2F..%2Fb.ckpt",     // literal % escapes are fine bytes, but..
		"bad key.ckpt",           // space
		"ck_" + "\x01" + ".ckpt", // control byte
		"",                       // empty
	}
	// ..except the %2F case: decoded it is still a valid alphabet, so
	// craft one that really is hostile after the server's decoding.
	for _, key := range bad {
		if key == "ck_a%2F..%2Fb.ckpt" {
			continue // covered by the raw-path probe below
		}
		req := httptest.NewRequest(http.MethodPut, "http://store/ckpt/x", strings.NewReader("x"))
		req.URL.Path = "/ckpt/" + key // bypass parsing so raw bytes reach the handler
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("PUT with key %q: status %d, want 400", key, w.Code)
		}
	}
	// A traversal attempt via an escaped path against the real server
	// stack must not create anything outside the store directory.
	srv := httptest.NewServer(h)
	defer srv.Close()
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/ckpt/..%2Fescaped", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatalf("traversal PUT succeeded with %s", resp.Status)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escaped")); !os.IsNotExist(err) {
		t.Fatal("traversal PUT wrote outside the store directory")
	}
	// Digest mismatch is caught server-side.
	req2 := httptest.NewRequest(http.MethodPut, "http://store/ckpt/ck_d_s1_w1_g0000000000000000.ckpt",
		strings.NewReader("body"))
	req2.Header.Set("X-Ckpt-Digest", "00000000000000ff")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req2)
	if w.Code != http.StatusBadRequest {
		t.Errorf("digest-mismatch PUT: status %d, want 400", w.Code)
	}
}

// TestHTTPStoreCorruptBlobRebuilt: a present-but-corrupt remote blob is
// a miss — rebuilt locally and re-uploaded — after which the store
// serves real hits. Mirrors the DirStore corruption test in
// serialize_test.go.
func TestHTTPStoreCorruptBlobRebuilt(t *testing.T) {
	srv := httptest.NewServer(NewStoreHandler(t.TempDir()))
	defer srv.Close()
	hs := NewHTTPStore(srv.URL)
	stats := &StoreStats{}
	hs.Stats = stats
	sc := &StoreClient{Store: hs, Stats: stats}

	cfg := tstConfig()
	key := key1(&cfg, tstWorkload, tstSeed, tstWarm)
	if err := hs.Put(key, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	ck, hit, err := sc.LoadOrNew(cfg, tstSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupt blob counted as a hit")
	}
	if r := runFork(t, ck); r.Instructions < tstN {
		t.Fatalf("rebuilt checkpoint unusable: %d instructions", r.Instructions)
	}
	// The rebuild replaced the garbage; now it hits.
	if _, hit, err := sc.LoadOrNew(cfg, tstSpec()); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Fatal("store missed after the corrupt blob was replaced")
	}
	if stats.Hits.Load() != 1 || stats.Misses.Load() != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", stats.Hits.Load(), stats.Misses.Load())
	}
}

// TestCheckpointKeyExample documents the on-the-wire key shape.
func TestCheckpointKeyExample(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 128)
	key := key1(&cfg, "swim", 1, 300000)
	want := fmt.Sprintf("ck_swim_s1_w300000_g%016x.ckpt", cfg.GeometryFingerprint())
	if key != want {
		t.Fatalf("key = %q, want %q", key, want)
	}
}
