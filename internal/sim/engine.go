package sim

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uop"
)

// Engine is the one machine behind both Processor and SMTProcessor: a
// Table 1 pipeline whose shared resources (instruction queue, function
// units, memory hierarchy) are driven by one or more hardware contexts.
// A single-threaded run is simply an Engine with one context; the §7 SMT
// machine is the same Engine with several. Fetch and dispatch bandwidth
// rotate round-robin among contexts, commit bandwidth is shared with
// rotating priority, and chains from independent threads interleave
// freely in the segmented queue.
type Engine struct {
	cfg Config
	q   iq.Queue

	hier *mem.Hierarchy
	fus  *pipeline.FUPool

	ctxs []*context

	cycle  int64
	inExec int // issued instructions whose results are outstanding
	seq    int64

	// Cycle-skipping telemetry (not part of the simulated machine state:
	// excluded from the run's stats.Set so skip and no-skip runs stay
	// byte-comparable).
	skippedCycles int64 // cycles elided by event-driven skipping
	skipWindows   int64 // skip windows taken

	// tryIssueFn is bound once at construction so the issue loop passes no
	// fresh closure per call. It reads e.cycle, which equals the cycle
	// being stepped throughout Step.
	tryIssueFn func(*uop.UOp) bool

	// Per-run statistics (aggregated across contexts).
	stIssued       stats.Counter
	stCommitted    stats.Counter
	stDispStallROB stats.Counter
	stDispStallLSQ stats.Counter
	stDispStallIQ  stats.Counter
	stRobOcc       stats.Mean

	// Engine-level demand telemetry for prefix sharing: per-context
	// high-watermarks of ROB and LSQ occupancy (the max across contexts,
	// since forContexts divides both capacities evenly). Excluded from
	// the run's stats.Set, like the skip telemetry above.
	demROB iq.Watermark
	demLSQ iq.Watermark
}

// context is one hardware context: a private front end (with branch
// predictor and BTB), renamer, reorder buffer and load/store queue over
// the shared back end.
type context struct {
	id     int
	stream trace.Stream
	bp     *bpred.Predictor
	btb    *bpred.BTB
	fe     *pipeline.FrontEnd
	ren    *pipeline.Renamer
	rob    *pipeline.ROB
	lsq    *pipeline.LSQ

	workload  string
	committed int64

	// commitFn is the ROB commit callback, bound once per context.
	commitFn func(*uop.UOp)
}

// NewEngine builds a machine over the given workload streams, one per
// hardware context. With one stream the ROB and LSQ keep their full
// configured capacities; with several, the capacities are divided evenly
// among the contexts and the queue designs' per-register tables are
// replicated per context.
func NewEngine(cfg Config, streams []trace.Stream) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(streams)
	if n < 1 {
		return nil, fmt.Errorf("sim: SMT needs at least one stream")
	}
	robEach, lsqEach := cfg.forContexts(n)
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	for i, s := range streams {
		th, err := e.newContext(i, s, robEach, lsqEach, nil, nil)
		if err != nil {
			return nil, err
		}
		e.ctxs = append(e.ctxs, th)
	}
	e.bindCallbacks()
	return e, nil
}

// newContext builds one hardware context over the engine's shared
// hierarchy and queue. bp and btb, if non-nil, supply pre-trained branch
// structures (checkpoint forks); otherwise fresh ones are built.
func (e *Engine) newContext(id int, s trace.Stream, robSize, lsqSize int, bp *bpred.Predictor, btb *bpred.BTB) (*context, error) {
	var err error
	if bp == nil {
		bp, err = bpred.NewPredictor(e.cfg.BranchPredictor)
		if err != nil {
			return nil, err
		}
	}
	if btb == nil {
		btb, err = bpred.NewBTB(e.cfg.BTBEntries, e.cfg.BTBWays)
		if err != nil {
			return nil, err
		}
	}
	feCfg := pipeline.FrontEndConfig{
		FetchWidth:       e.cfg.FetchWidth,
		MaxBranches:      e.cfg.MaxBranches,
		FetchToDecode:    e.cfg.FetchToDecode,
		DecodeToDispatch: e.cfg.DecodeToDispatch,
		ExtraDispatch:    e.q.ExtraDispatchStages(),
		BufferCap:        (e.cfg.FetchToDecode + e.cfg.DecodeToDispatch + 10) * e.cfg.FetchWidth,
	}
	th := &context{
		id:       id,
		stream:   s,
		bp:       bp,
		btb:      btb,
		fe:       pipeline.NewFrontEnd(feCfg, s, bp, btb, e.hier.L1I),
		ren:      pipeline.NewRenamer(),
		rob:      pipeline.NewROB(robSize),
		workload: s.Name(),
	}
	th.lsq = pipeline.NewLSQ(lsqSize, e.hier.L1D, e.hier.EQ, e.q, e.cfg.CacheRdPorts, e.cfg.CacheWrPorts)
	e.bindCommit(th)
	return th, nil
}

// bindCommit (re)binds a context's ROB commit callback to e and th.
func (e *Engine) bindCommit(th *context) {
	th.commitFn = func(u *uop.UOp) {
		th.committed++
		e.stCommitted.Inc()
		switch {
		case u.IsStore():
			th.lsq.CommitStore(u)
		case u.IsLoad():
			th.lsq.Remove(u)
		}
	}
}

// bindCallbacks (re)binds the issue loop's shared callbacks to e.
func (e *Engine) bindCallbacks() {
	e.tryIssueFn = func(u *uop.UOp) bool { return e.fus.TryIssue(e.cycle, u) }
}

// Engine event ops (mem.Handler dispatch codes). Issue schedules
// completion events against the shared queue as identifiable refs, so an
// active clone could remap them (none are pending at the inExec == 0
// boundaries clones are taken at, but the mapping is registered anyway).
const (
	// engOpExecDone (arg nil): a load's EA calculation finished — it
	// leaves execution; the LSQ takes over.
	engOpExecDone uint8 = iota
	// engOpWbDone (arg *uop.UOp): an instruction completed — leave
	// execution and write back to the queue.
	engOpWbDone
)

// HandleEvent implements mem.Handler.
func (e *Engine) HandleEvent(op uint8, now int64, _ mem.Kind, arg any) {
	switch op {
	case engOpExecDone:
		e.inExec--
	case engOpWbDone:
		e.inExec--
		e.q.Writeback(now, arg.(*uop.UOp))
	}
}

// Queue exposes the shared scheduler under test.
func (e *Engine) Queue() iq.Queue { return e.q }

// Demands returns the machine's demand curves: the queue design's own
// (chain wires, occupancy) plus the engine-level ROB and LSQ watermarks.
// See iq/demand.go; the slices are owned by the engine.
func (e *Engine) Demands() []iq.DemandCurve {
	ds := append([]iq.DemandCurve(nil), e.q.Demands()...)
	ds = append(ds,
		iq.DemandCurve{Dim: "rob", Steps: e.demROB.Steps},
		iq.DemandCurve{Dim: "lsq", Steps: e.demLSQ.Steps})
	return ds
}

// Cycle returns the current cycle number.
func (e *Engine) Cycle() int64 { return e.cycle }

// Committed returns the total instructions retired across all contexts.
func (e *Engine) Committed() int64 {
	var sum int64
	for _, th := range e.ctxs {
		sum += th.committed
	}
	return sum
}

// Contexts returns the number of hardware contexts.
func (e *Engine) Contexts() int { return len(e.ctxs) }

// Step advances the machine one cycle.
func (e *Engine) Step() {
	c := e.cycle
	n := len(e.ctxs)

	// 1. Memory system and scheduled core events (completions,
	//    writebacks, chain suspensions).
	e.hier.Tick(c)

	// 2. Commit, in order, up to the commit width — shared bandwidth with
	//    rotating priority among contexts.
	commits := 0
	width := e.cfg.CommitWidth
	for i := 0; i < n && width > 0; i++ {
		th := e.ctxs[(int(c)+i)%n]
		done := th.rob.Commit(c, width, th.commitFn)
		commits += done
		width -= done
	}

	// 3. Scheduler-internal work: wire propagation, promotion, pushdown,
	//    deadlock recovery, or array advance.
	e.q.BeginCycle(c)

	// 4. Issue and begin execution.
	issuedN := e.issue(c)

	// 5. The LSQs start eligible cache accesses and drain retired stores.
	for _, th := range e.ctxs {
		th.lsq.Tick(c)
	}

	// 6. In-order dispatch from the front-end buffers, round-robin.
	dispatchedN := e.dispatch(c)
	if dispatchedN > 0 {
		// ROB and LSQ occupancy only rise at dispatch and only fall at
		// commit (which precedes dispatch within the cycle), so the
		// post-dispatch value is the cycle's maximum.
		maxRob, maxLsq := 0, 0
		for _, th := range e.ctxs {
			if l := th.rob.Len(); l > maxRob {
				maxRob = l
			}
			if l := th.lsq.Len(); l > maxLsq {
				maxLsq = l
			}
		}
		e.demROB.Observe(c, int64(maxRob))
		e.demLSQ.Observe(c, int64(maxLsq))
	}

	// 7. Fetch: round-robin, one context per cycle at full width (RR.1.8).
	//    A context stalled on a misprediction or I-cache miss — or whose
	//    trace has drained — yields the port to the next one; the port is
	//    consumed only by a context that actually buffers instructions.
	for i := 0; i < n; i++ {
		th := e.ctxs[(int(c)+i)%n]
		before := th.fe.BufLen()
		th.fe.Fetch(c)
		if th.fe.BufLen() != before {
			break
		}
	}

	// 8. Deadlock bookkeeping.
	active := e.inExec > 0 || e.hier.EQ.Len() > 0 || commits > 0
	robLen := 0
	for _, th := range e.ctxs {
		active = active || th.lsq.Busy()
		robLen += th.rob.Len()
	}
	e.q.EndCycle(c, active)

	e.stRobOcc.Observe(float64(robLen))
	e.cycle++

	// 9. Event-driven idle-cycle skipping: when nothing moved this cycle
	//    and nothing can move before the next scheduled event, advance the
	//    clock in one jump, replaying the per-cycle statistics so the run
	//    is bit-identical to stepping every cycle.
	if !e.cfg.NoSkip && commits == 0 && issuedN == 0 && dispatchedN == 0 && e.inExec == 0 {
		e.maybeSkip(c, robLen)
	}
}

// maybeSkip elides the cycles (c, to) when the machine is provably frozen:
// no in-flight execution, a non-committable ROB head in every context,
// stalled-or-idle fetch, an LSQ whose only per-cycle effects are stall
// counters, and a quiescent scheduler. The window is bounded by the next
// event-queue entry and by the front-end buffers' next dispatch-eligible
// instruction. Per-cycle observable state — sampled statistics, stall
// counters, ring rotations — is replayed exactly, so a skipping run and a
// cycle-by-cycle run produce byte-identical statistics and equal machine
// state. Called with commits == issued == dispatched == 0 and inExec == 0,
// after e.cycle has already advanced to c+1.
func (e *Engine) maybeSkip(c int64, robLen int) {
	// With no pending events nothing external can wake the machine — and
	// the segmented design's deadlock detector must observe that state
	// cycle by cycle, so never skip it. A non-empty event queue also
	// keeps EndCycle's machineActive true on every elided cycle.
	if e.hier.EQ.Len() == 0 {
		return
	}
	to, _ := e.hier.EQ.NextTime()
	// An instruction still traversing the front end becomes eligible for
	// dispatch at its readyAt with no event attached: close the window
	// there. (Heads already eligible are dispatch-blocked — replayed
	// below; later buffer entries cannot overtake the head.)
	for _, th := range e.ctxs {
		if at, ok := th.fe.HeadReadyAt(); ok && at > c && at < to {
			to = at
		}
	}
	if to <= c+1 {
		return
	}

	var feClsArr [4]int
	var lsqBlockedArr, lsqRejectedArr [4]int
	feCls := feClsArr[:0]
	lsqBlocked := lsqBlockedArr[:0]
	lsqRejected := lsqRejectedArr[:0]
	anyReadyHead := false
	for _, th := range e.ctxs {
		// The commit stage must stay blocked: completion times stamped in
		// the future always carry an event at that time, so only a head
		// already complete (or completing exactly at the window edge)
		// can retire inside the window.
		if h := th.rob.Head(); h != nil && h.Complete != uop.NotYet && h.Complete < to {
			return
		}
		fc := th.fe.SkipClass(c)
		if fc == pipeline.FetchSkipNo {
			return
		}
		ok, blocked, rejected := th.lsq.SkipClass(c)
		if !ok {
			return
		}
		feCls = append(feCls, fc)
		lsqBlocked = append(lsqBlocked, blocked)
		lsqRejected = append(lsqRejected, rejected)
		if th.fe.NextReady(c) != nil {
			anyReadyHead = true
		}
	}
	if !e.q.Quiescent(c) {
		return
	}

	span := to - c - 1
	if anyReadyHead {
		// A dispatch-blocked head retries every cycle; re-run the real
		// dispatch stage so its stall counters (ROB/LSQ/IQ) replay
		// exactly. The queue's own per-cycle replay must come first —
		// BeginCycle precedes dispatch within a cycle and the array
		// designs' ring rotation feeds the dispatch placement.
		for x := c + 1; x < to; x++ {
			e.q.SkipCycles(x, x+1)
			if e.dispatch(x) != 0 {
				panic("sim: dispatch progressed inside a skipped idle window")
			}
		}
	} else {
		e.q.SkipCycles(c+1, to)
	}
	for i, th := range e.ctxs {
		th.fe.SkipCycles(feCls[i], span)
		th.lsq.SkipCycles(span, lsqBlocked[i], lsqRejected[i])
	}
	e.stRobOcc.ObserveN(float64(robLen), span)
	e.skippedCycles += span
	e.skipWindows++
	e.cycle = to
}

// SkippedCycles returns the cycles elided by event-driven skipping.
func (e *Engine) SkippedCycles() int64 { return e.skippedCycles }

// SkipWindows returns the number of skip windows taken.
func (e *Engine) SkipWindows() int64 { return e.skipWindows }

func (e *Engine) issue(c int64) int {
	issued := e.q.Issue(c, e.cfg.IssueWidth, e.tryIssueFn)
	e.stIssued.Add(uint64(len(issued)))
	for _, u := range issued {
		lat := int64(u.Latency())
		e.inExec++
		switch {
		case u.IsLoad():
			// The EA calculation finishes after one cycle; the LSQ takes
			// over. A load waiting in the LSQ is *not* "in execution" —
			// it may be blocked on the IQ's own progress, and counting it
			// would mask the deadlocks §4.5 recovers from. Its memory
			// traffic keeps the machine active through the event queue.
			u.EADone = c + lat
			e.hier.EQ.ScheduleRef(u.EADone, mem.Ref{H: e, Op: engOpExecDone})
		case u.IsStore():
			// Retirement (Complete) is set by the LSQ once the data is
			// also ready; the chain writeback happens at EA completion
			// (stores produce no register value).
			u.EADone = c + lat
			e.hier.EQ.ScheduleRef(u.EADone, mem.Ref{H: e, Op: engOpWbDone, Arg: u})
		default:
			u.Complete = c + lat
			e.hier.EQ.ScheduleRef(u.Complete, mem.Ref{H: e, Op: engOpWbDone, Arg: u})
		}
	}
	return len(issued)
}

// dispatch shares the dispatch width round-robin: each context advances
// in order; a context that stalls yields the remaining slots. It returns
// the number of instructions dispatched.
func (e *Engine) dispatch(c int64) int {
	n := len(e.ctxs)
	width := e.cfg.DispatchWidth
	for i := 0; i < n && width > 0; i++ {
		th := e.ctxs[(int(c)+i)%n]
		for width > 0 {
			u := th.fe.NextReady(c)
			if u == nil {
				break
			}
			if th.rob.Full() {
				e.stDispStallROB.Inc()
				break
			}
			if u.Inst.Class.IsMem() && th.lsq.Full() {
				e.stDispStallLSQ.Inc()
				break
			}
			// Retag with a globally unique, age-ordered sequence number
			// and the owning context. (With one context the values the
			// front end assigned at fetch are reproduced exactly:
			// dispatch is in fetch order and both counters start at 0.)
			if !u.Renamed {
				u.Thread = th.id
				u.Seq = e.seq
				e.seq++
			}
			th.ren.Rename(u, c)
			if !e.q.Dispatch(c, u) {
				e.stDispStallIQ.Inc()
				break
			}
			th.rob.Push(u)
			if u.Inst.Class.IsMem() {
				th.lsq.Add(u)
			}
			th.fe.Pop()
			width--
		}
	}
	return e.cfg.DispatchWidth - width
}

// Warm fast-forwards every context by n instructions: cache lines are
// installed and the branch structures trained, without advancing
// simulated time. It stands in for the paper's 20-billion-instruction
// fast-forward to a checkpoint. The streams must be the same objects the
// engine was built over. With several contexts the streams are consumed
// round-robin — one instruction per context per turn, the same
// interleaving a live SMT fetch rotation produces — so the shared cache
// and predictor state a checkpoint captures matches what a cold SMT run
// warms into.
func (e *Engine) Warm(streams []trace.Stream, n int64) {
	budgets := make([]int64, len(streams))
	for i := range budgets {
		budgets[i] = n
	}
	e.warmContexts(streams, budgets)
}

// warmContexts is Warm with a per-context instruction budget. Contexts
// take turns in id order, one instruction each; a context whose budget is
// spent (or whose trace drains) drops out of the rotation and the rest
// continue.
func (e *Engine) warmContexts(streams []trace.Stream, budgets []int64) {
	n := len(streams)
	if len(e.ctxs) < n {
		n = len(e.ctxs)
	}
	rem := make([]int64, n)
	active := 0
	for i := 0; i < n; i++ {
		rem[i] = budgets[i]
		if rem[i] > 0 {
			active++
		}
	}
	for active > 0 {
		for i := 0; i < n; i++ {
			if rem[i] <= 0 {
				continue
			}
			in, ok := streams[i].Next()
			if !ok {
				rem[i] = 0
				active--
				continue
			}
			e.hier.WarmInst(in.PC)
			if in.Class.IsMem() {
				e.hier.WarmData(in.Addr, in.Class == isa.Store)
			}
			e.ctxs[i].fe.Train(in)
			if rem[i]--; rem[i] == 0 {
				active--
			}
		}
	}
}

// run simulates until the total committed instructions reach the budget
// (or every trace drains). A safety valve aborts pathologically stuck
// runs.
func (e *Engine) run(maxInstructions int64) error {
	return e.runHooked(maxInstructions, nil)
}

// runHooked is run with a per-iteration hook, called before each Step
// while the machine is still at a cycle boundary. The prefix-sharing
// ladder uses it to snapshot the reference machine mid-run.
func (e *Engine) runHooked(maxInstructions int64, hook func(*Engine)) error {
	if maxInstructions < 1 {
		return fmt.Errorf("sim: instruction budget %d", maxInstructions)
	}
	limit := maxInstructions*400 + 1_000_000
	for e.Committed() < maxInstructions {
		allDone := true
		for _, th := range e.ctxs {
			if !th.fe.Done() || th.rob.Len() > 0 {
				allDone = false
			}
		}
		if allDone {
			break // finite traces fully drained
		}
		if e.cycle > limit {
			if len(e.ctxs) == 1 {
				return fmt.Errorf("sim: no forward progress after %d cycles (%d/%d committed, %s on %s)",
					e.cycle, e.Committed(), maxInstructions, e.q.Name(), e.ctxs[0].workload)
			}
			return fmt.Errorf("sim: SMT run stuck after %d cycles (%d/%d committed)",
				e.cycle, e.Committed(), maxInstructions)
		}
		if hook != nil {
			hook(e)
		}
		e.Step()
	}
	return nil
}

// Debug prints internal machine state; used by diagnostic tools.
func (e *Engine) Debug() {
	for _, th := range e.ctxs {
		fmt.Printf("ctx%d: inExec=%d eqLen=%d lsqBusy=%v lsqLen=%d robLen=%d feBuf=%d feDone=%v\n",
			th.id, e.inExec, e.hier.EQ.Len(), th.lsq.Busy(), th.lsq.Len(), th.rob.Len(), th.fe.BufLen(), th.fe.Done())
		if h := th.rob.Head(); h != nil {
			fmt.Printf("rob head: %s EADone=%d memkind=%d\n", h.String(), h.EADone, h.MemKind)
			for j := 0; j < 2; j++ {
				if pr := h.Prod[j]; pr != nil {
					fmt.Printf("  prod%d: %s EADone=%d kind=%d\n", j, pr.String(), pr.EADone, pr.MemKind)
				}
			}
		}
	}
}

// ROBHead exposes the oldest in-flight instruction of the first context;
// diagnostic use only.
func (e *Engine) ROBHead() *uop.UOp { return e.ctxs[0].rob.Head() }
