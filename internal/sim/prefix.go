package sim

// Divergence-aware prefix sharing for sweep families.
//
// A sweep family is a set of configurations identical except for resource
// bounds: the queue design's own sweep dimension (conventional capacity,
// segmented chain wires) and the ROB/LSQ sizes. Running the family's most
// permissive member — the reference — records, through the demand
// watermarks (iq/demand.go), exactly when each tighter bound would first
// have changed the machine's behaviour: its divergence cycle. Up to that
// cycle the tighter sibling's run is cycle-for-cycle identical to the
// reference's, so instead of re-simulating it the sibling forks from an
// in-memory snapshot of the reference (a ladder rung) taken at or before
// the divergence cycle, refitted to the tighter bounds, and simulates only
// the suffix. Results are bit-identical to a cold run by construction;
// whenever a refit cannot be proven safe the sibling silently falls back
// to a cold checkpoint fork.

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/distiq"
	"repro/internal/iq"
	"repro/internal/presched"
)

// queueBound identifies the queue design's sweep dimension: the bound a
// family varies, the demand-curve dim that tracks it, and whether a
// warmer machine can be refitted to a tighter value of it (CloneBounded).
// The FIFO, distance and prescheduling designs bake their bound into the
// placement geometry, so they are never refittable — their families can
// still share prefixes across ROB/LSQ variation.
func queueBound(c Config) (bound int, dim string, refittable bool) {
	switch c.Queue {
	case QueueIdeal:
		return c.QueueSize, "iq", true
	case QueueSegmented:
		return c.Segmented.MaxChains, "chains", true
	}
	return 0, "", false
}

// effBound is the queue sweep bound as an ordering key: segmented
// MaxChains 0 means unlimited and must dominate every finite value.
// Non-refittable designs have no queue sweep dimension and report 0.
func effBound(c Config) int64 {
	b, _, refit := queueBound(c)
	if !refit {
		return 0
	}
	if c.Queue == QueueSegmented && b <= 0 {
		return math.MaxInt64
	}
	return int64(b)
}

// familyKey strips a configuration down to what must match exactly for
// two sweep points to be prefix-sharing siblings: everything except the
// swept bounds. The queue sweep dimension is neutralised (QueueSize for
// the conventional design; MaxChains for the segmented one, where -1 is
// the sentinel because 0 already means unlimited), as are ROBSize and
// LSQSize. Sub-configurations are canonicalised the way forContexts
// would build them and their Threads cleared, so a machine that has been
// through forContexts keys equal to the raw sweep-grid Config it came
// from.
func familyKey(c Config) Config {
	switch c.Queue {
	case QueueIdeal:
		c.QueueSize = 0
	case QueueSegmented:
		if c.Segmented.Segments == 0 {
			c.Segmented = core.DefaultConfig(c.QueueSize, c.Segmented.MaxChains)
		}
		c.Segmented.MaxChains = -1
		c.Segmented.Threads = 0
	case QueuePrescheduled:
		if c.Presched.Lines == 0 {
			c.Presched = presched.DefaultConfig(c.QueueSize)
		}
		c.Presched.Threads = 0
	case QueueDistance:
		if c.Distance.Lines == 0 {
			c.Distance = distiq.DefaultConfig(c.QueueSize)
		}
		c.Distance.Threads = 0
	}
	c.ROBSize = 0
	c.LSQSize = 0
	return c
}

// FamilyKey is the sweep-family grouping key: configurations with equal
// keys are prefix-sharing siblings — identical except for the swept
// resource bounds — and may be batched into one RunFamily call.
func FamilyKey(c Config) Config { return familyKey(c) }

// validateSibling checks that sib is a sweep sibling of ref that ref
// dominates: same family, every swept bound no looser than ref's. Only
// then do ref's demand curves bound sib's behaviour.
func validateSibling(ref, sib Config) error {
	if err := sib.Validate(); err != nil {
		return err
	}
	if familyKey(ref) != familyKey(sib) {
		return fmt.Errorf("sim: configs are not sweep siblings (family keys differ)")
	}
	if sb, rb := effBound(sib), effBound(ref); sb > rb {
		return fmt.Errorf("sim: sibling loosens the queue bound (%d > %d)", sb, rb)
	}
	if sib.ROBSize > ref.ROBSize {
		return fmt.Errorf("sim: sibling loosens the ROB (%d > %d)", sib.ROBSize, ref.ROBSize)
	}
	if sib.LSQSize > ref.LSQSize {
		return fmt.Errorf("sim: sibling loosens the LSQ (%d > %d)", sib.LSQSize, ref.LSQSize)
	}
	return nil
}

// divergenceCycle returns the first cycle at which a cold run of sib
// could have behaved differently from the reference run that produced
// demands, or -1 if the reference's recorded demand never reached sib's
// bounds. Forking sib from any snapshot taken at cycle <= the returned
// value is safe: snapshots record completed cycles only, and the first
// divergent action happens during the returned cycle.
//
// The queue dims ("iq", "chains") diverge strictly above the bound: the
// divergent action — the reference admitting an instruction or chain the
// sibling had no room for — itself pushes the watermark past the bound
// in that same cycle. The engine dims ("rob"/"lsq") must be treated as
// diverging at the bound itself: a sibling whose ROB or LSQ is exactly
// full stalls dispatch (and counts the stall) on an attempt the
// reference carries further, without the reference's watermark ever
// exceeding the sibling's capacity.
func divergenceCycle(demands []iq.DemandCurve, ref, sib Config, nctx int) int64 {
	rc, sc := ref, sib
	refRob, refLsq := rc.forContexts(nctx)
	sibRob, sibLsq := sc.forContexts(nctx)
	refQB, sibQB := effBound(ref), effBound(sib)
	div := int64(-1)
	take := func(first int64) {
		if first >= 0 && (div == -1 || first < div) {
			div = first
		}
	}
	for _, d := range demands {
		switch d.Dim {
		case "iq", "chains":
			// Informational curves (non-refittable designs) don't
			// constrain: their geometry is part of the family key.
			_, dim, refit := queueBound(sib)
			if !refit || dim != d.Dim || sibQB >= refQB {
				continue
			}
			take(d.FirstAbove(sibQB))
		case "rob":
			if sibRob >= refRob {
				continue
			}
			take(d.FirstAbove(int64(sibRob) - 1))
		case "lsq":
			if sibLsq >= refLsq {
				continue
			}
			take(d.FirstAbove(int64(sibLsq) - 1))
		default:
			// A dim this code does not understand: no cycle is provably
			// shared.
			return 0
		}
	}
	return div
}

const (
	// ladderInterval0 is the initial rung spacing in cycles; each time
	// the ladder fills, it thins to every other rung and doubles the
	// spacing, so a run of any length keeps at most ladderMaxRungs
	// snapshots roughly evenly spread over it.
	ladderInterval0 = 2 << 10
	ladderMaxRungs  = 6
	// minShareCycles is the economics floor: below this many shared
	// cycles a cold checkpoint fork is at least as cheap as snapshotting
	// plus refitting, so the sibling falls back.
	minShareCycles = 2 << 10
)

// ladder holds in-memory snapshots (rungs) of a reference machine
// mid-run, taken at in-execution-empty cycle boundaries. Rungs are full
// active clones: forking a sibling from one is CloneBounded, which the
// rung survives unmodified, so one rung serves any number of siblings.
type ladder struct {
	interval int64
	next     int64
	rungs    []*Engine
}

func newLadder() *ladder {
	return &ladder{interval: ladderInterval0, next: ladderInterval0}
}

// maybeTake snapshots e if it has reached the next rung mark and sits at
// a boundary CloneActive accepts. Boundaries with inExec != 0 are simply
// skipped; the next qualifying cycle takes the rung instead.
func (l *ladder) maybeTake(e *Engine) {
	if e.cycle < l.next || e.inExec != 0 {
		return
	}
	l.next = e.cycle + l.interval
	r, err := e.CloneActive()
	if err != nil {
		// A machine CloneActive cannot handle now won't become cloneable
		// later (e.g. closure-wrapped test events); stop trying.
		l.next = math.MaxInt64
		return
	}
	l.rungs = append(l.rungs, r)
	if len(l.rungs) >= ladderMaxRungs {
		l.thin()
	}
}

// thin drops every other rung and doubles the spacing. The first rung
// is always kept: coverage stays anchored near the start of the run,
// which is where tighter siblings diverge — dropping oldest-first would
// leave a long run with rungs only over its final stretch, useless to
// any sibling that diverges before them.
func (l *ladder) thin() {
	kept := l.rungs[:0]
	for i, r := range l.rungs {
		if i%2 == 0 {
			kept = append(kept, r)
		} else {
			r.Recycle()
		}
	}
	for i := len(kept); i < len(l.rungs); i++ {
		l.rungs[i] = nil
	}
	l.rungs = kept
	l.interval *= 2
	if l.next != math.MaxInt64 {
		l.next = l.rungs[len(l.rungs)-1].cycle + l.interval
	}
}

// best returns the latest rung whose cycles are all provably shared with
// a sibling diverging at div (-1: never), or nil if no rung qualifies.
func (l *ladder) best(div int64) *Engine {
	for i := len(l.rungs) - 1; i >= 0; i-- {
		if div == -1 || l.rungs[i].cycle <= div {
			return l.rungs[i]
		}
	}
	return nil
}

// release unpins every rung's stream cursors so live trace trimming can
// advance past them. The rungs must not be forked afterwards.
func (l *ladder) release() {
	for _, r := range l.rungs {
		r.Recycle()
	}
	l.rungs = nil
}

// releaseStreams unregisters a discarded machine's trace cursors from
// their fork sources (see trace.ForkCursor.Release).
func releaseStreams(e *Engine) {
	for _, th := range e.ctxs {
		if r, ok := th.stream.(interface{ Release() }); ok {
			r.Release()
		}
	}
}

// Recycle retires a machine that will never be used again: its trace
// cursors are released and its large clone buffers returned to the pool
// for the next fork. Sweep loops that fork, run and discard machines per
// grid point call this to keep their footprint near one machine's live
// set instead of growing with the grid.
func (e *Engine) Recycle() {
	releaseStreams(e)
	e.hier.Recycle()
}

// PrefixStats counts prefix-sharing outcomes across families; safe for
// concurrent use by parallel sweep workers.
type PrefixStats struct {
	// Families is the number of multi-member families that ran with a
	// ladder-carrying reference.
	Families atomic.Int64
	// Shared counts siblings forked from a ladder rung; Fallbacks counts
	// siblings that took a cold checkpoint fork instead (no safe rung,
	// refit refused, or below the economics floor).
	Shared    atomic.Int64
	Fallbacks atomic.Int64
	// SharedCycles is the total cycles not re-simulated (each forked
	// sibling's rung cycle); TotalCycles is the total cycles the family
	// members report, shared or not.
	SharedCycles atomic.Int64
	TotalCycles  atomic.Int64
}

// Values flattens the counters for reports.
func (ps *PrefixStats) Values() map[string]int64 {
	return map[string]int64{
		"families":      ps.Families.Load(),
		"shared":        ps.Shared.Load(),
		"fallbacks":     ps.Fallbacks.Load(),
		"shared_cycles": ps.SharedCycles.Load(),
		"total_cycles":  ps.TotalCycles.Load(),
	}
}

func (ps *PrefixStats) String() string {
	return fmt.Sprintf("%d/%d cycles shared, %d families, %d forked, %d cold",
		ps.SharedCycles.Load(), ps.TotalCycles.Load(),
		ps.Families.Load(), ps.Shared.Load(), ps.Fallbacks.Load())
}

// pickReference returns the index of the family member that dominates
// every other (the loosest bounds on every swept dimension), or -1 if no
// member does.
func pickReference(cfgs []Config) int {
	for i := range cfgs {
		ok := true
		for j := range cfgs {
			if i != j && validateSibling(cfgs[i], cfgs[j]) != nil {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// RunFamily runs every configuration of one sweep family over n
// instructions from ck, sharing the reference member's detailed prefix
// with each sibling up to that sibling's divergence cycle. Results come
// back in cfgs order and are bit-identical to cold ck.Fork runs: a
// sibling whose bounds the reference's demand never reached gets a copy
// of the reference's result outright (its whole run is provably
// identical); one that diverges mid-run is forked from a ladder rung
// only when the demand curves prove the rung's cycles identical under
// the sibling's bounds; and any doubt — no dominating reference, no safe
// rung, a refused refit — falls back to a cold fork. share=false forces
// the cold path for every member. ps, when non-nil, accumulates outcome
// counters.
func RunFamily(ck *Checkpoint, cfgs []Config, n int64, share bool, ps *PrefixStats) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	addTotal := func(r *Result) {
		if ps != nil {
			ps.TotalCycles.Add(r.Cycles)
		}
	}
	runCold := func(i int) error {
		p, err := ck.Fork(cfgs[i])
		if err != nil {
			return err
		}
		r, err := p.Run(n)
		if err != nil {
			return err
		}
		p.Engine.Recycle()
		results[i] = r
		addTotal(r)
		return nil
	}
	ref := -1
	if share && len(cfgs) > 1 {
		ref = pickReference(cfgs)
	}
	if ref < 0 {
		for i := range cfgs {
			if err := runCold(i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	if ps != nil {
		ps.Families.Add(1)
	}
	p, err := ck.Fork(cfgs[ref])
	if err != nil {
		return nil, err
	}
	lad := newLadder()
	defer lad.release()
	if err := p.Engine.runHooked(n, lad.maybeTake); err != nil {
		return nil, err
	}
	results[ref] = p.result()
	addTotal(results[ref])
	demands := p.Engine.Demands()
	nctx := len(p.Engine.ctxs)
	refCfg := p.Engine.cfg // post-forContexts, as every rung's is

	for i := range cfgs {
		if i == ref {
			continue
		}
		fallback := func() error {
			if ps != nil {
				ps.Fallbacks.Add(1)
			}
			return runCold(i)
		}
		div := divergenceCycle(demands, refCfg, cfgs[i], nctx)
		if div == -1 {
			// The reference's demand never reached this sibling's bounds,
			// so the sibling's entire run is cycle-for-cycle the
			// reference's run and its result is the reference's result.
			// Every reported statistic is behaviour-derived (counters,
			// occupancies, rates) — never a configured bound — so the copy
			// is exact and no simulation at all is needed.
			r := *results[ref]
			r.Stats = results[ref].Stats.Clone()
			results[i] = &r
			addTotal(&r)
			if ps != nil {
				ps.Shared.Add(1)
				ps.SharedCycles.Add(r.Cycles)
			}
			continue
		}
		rung := lad.best(div)
		if rung == nil || rung.cycle < minShareCycles {
			if err := fallback(); err != nil {
				return nil, err
			}
			continue
		}
		sib, err := rung.CloneBounded(cfgs[i])
		if err != nil {
			if err := fallback(); err != nil {
				return nil, err
			}
			continue
		}
		r, err := (&Processor{Engine: sib}).Run(n)
		if err != nil {
			return nil, err
		}
		sib.Recycle()
		results[i] = r
		addTotal(r)
		if ps != nil {
			ps.Shared.Add(1)
			ps.SharedCycles.Add(rung.cycle)
		}
	}
	p.Engine.Recycle()
	return results, nil
}
