package sim

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for the two HTTPStore failure-path bugs: the
// degraded latch that never un-latched (a store restart mid-sweep lost
// all later warmup sharing), and the backoff shift that overflowed
// time.Duration under a raised retry budget.

// TestHTTPStoreRecoversAfterCoolDown: a store that latched degraded
// must, after the cool-down, admit one half-open probe; while the
// outage lasts the probe fails and everyone else keeps failing fast,
// and once the server is back a single probe un-latches the store and
// counts a recovery.
func TestHTTPStoreRecoversAfterCoolDown(t *testing.T) {
	var down atomic.Bool
	var calls atomic.Int64
	down.Store(true)
	inner := NewStoreHandler(t.TempDir())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	now := time.Unix(1000, 0)
	hs := NewHTTPStore(srv.URL)
	hs.Retries = 1
	hs.Backoff = time.Millisecond
	hs.CoolDown = time.Second
	hs.now = func() time.Time { return now }
	stats := &StoreStats{}
	hs.Stats = stats

	const key = "ck_rec_s1_w1_g0000000000000000.ckpt"
	if err := hs.Put(key, []byte("blob")); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Put against a down server = %v, want ErrStoreUnavailable", err)
	}
	if !hs.Degraded() {
		t.Fatal("store did not latch degraded")
	}

	// Inside the cool-down every call fails fast, no requests sent.
	before := calls.Load()
	if _, err := hs.Get(key); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Get inside cool-down = %v, want ErrStoreUnavailable", err)
	}
	if calls.Load() != before {
		t.Fatal("latched store sent a request inside the cool-down")
	}

	// Past the cool-down with the server still down: exactly one probe
	// goes out, fails, and restarts the cool-down.
	now = now.Add(hs.CoolDown + time.Millisecond)
	if _, err := hs.Get(key); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("probe against a down server = %v, want ErrStoreUnavailable", err)
	}
	if got := calls.Load(); got != before+1 {
		t.Fatalf("failed probe sent %d requests, want 1", got-before)
	}
	if !hs.Degraded() {
		t.Fatal("failed probe un-latched the store")
	}
	before = calls.Load()
	if _, err := hs.Get(key); !errors.Is(err, ErrStoreUnavailable) || calls.Load() != before {
		t.Fatal("cool-down did not restart after the failed probe")
	}

	// Server restarts; the next probe (even one answered 404) proves it
	// reachable and resets the latch.
	down.Store(false)
	now = now.Add(hs.CoolDown + time.Millisecond)
	if _, err := hs.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("probe against the recovered server = %v, want ErrNotFound", err)
	}
	if hs.Degraded() {
		t.Fatal("successful probe left the store degraded")
	}
	if got := stats.Recoveries.Load(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	// Fully back in business: sharing works again for the rest of the
	// process.
	if err := hs.Put(key, []byte("blob")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if data, err := hs.Get(key); err != nil || string(data) != "blob" {
		t.Fatalf("Get after recovery = %q, %v", data, err)
	}
}

// TestHTTPStorePutProbeRecovers: a half-open Put whose request reaches
// the server — even if rejected 4xx — proves it back and un-latches.
func TestHTTPStorePutProbeRecovers(t *testing.T) {
	srv := httptest.NewServer(NewStoreHandler(t.TempDir()))
	defer srv.Close()

	now := time.Unix(1000, 0)
	hs := NewHTTPStore(srv.URL)
	hs.CoolDown = time.Second
	hs.now = func() time.Time { return now }
	stats := &StoreStats{}
	hs.Stats = stats
	hs.latch()

	now = now.Add(2 * time.Second)
	// An invalid key draws a 400: a protocol rejection, but proof the
	// server is alive.
	if err := hs.Put("not a valid key", []byte("x")); err == nil || errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("probe Put = %v, want the server's 4xx rejection", err)
	}
	if hs.Degraded() {
		t.Fatal("reachable server's rejection left the store degraded")
	}
	if got := stats.Recoveries.Load(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
}

// TestHTTPStoreBackoffCapped: a large retry budget must never produce
// a negative or unbounded sleep. The old `Backoff << try` overflowed
// into negative durations (collapsed to 1 ms — a hot retry loop) by
// try 38 for a 100 ms base.
func TestHTTPStoreBackoffCapped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	hs := NewHTTPStore(srv.URL)
	hs.Retries = 64 // enough to overflow any shift-based step
	hs.Backoff = time.Millisecond
	var slept []time.Duration
	hs.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, err := hs.Get("ck_x_s1_w1_g0000000000000000.ckpt"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Get = %v, want ErrStoreUnavailable", err)
	}
	if len(slept) != hs.Retries {
		t.Fatalf("recorded %d sleeps, want %d", len(slept), hs.Retries)
	}
	for i, d := range slept {
		if d <= 0 {
			t.Fatalf("sleep %d is %v — the shift overflowed", i, d)
		}
		if d > 2*maxBackoffStep { // step + up to 100% jitter
			t.Fatalf("sleep %d is %v, exceeds the %v cap (+jitter)", i, d, maxBackoffStep)
		}
	}
}

// TestBackoffStep pins the step function itself: doubling from the
// base, clamped to [1ms, maxBackoffStep] for any base and try.
func TestBackoffStep(t *testing.T) {
	cases := []struct {
		base time.Duration
		try  int
		want time.Duration
	}{
		{100 * time.Millisecond, 0, 100 * time.Millisecond},
		{100 * time.Millisecond, 3, 800 * time.Millisecond},
		{100 * time.Millisecond, 100, maxBackoffStep},
		{0, 0, time.Millisecond},
		{0, 4, 16 * time.Millisecond},
		{-time.Second, 2, 4 * time.Millisecond},
		{time.Hour, 5, maxBackoffStep},
		{maxBackoffStep, 1 << 40, maxBackoffStep},
	}
	for _, c := range cases {
		if got := backoffStep(c.base, c.try); got != c.want {
			t.Errorf("backoffStep(%v, %d) = %v, want %v", c.base, c.try, got, c.want)
		}
	}
}
