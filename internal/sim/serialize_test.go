package sim

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSaveLoadForkMatchesInMemoryFork: the serialization round trip must
// be invisible — a machine forked from a loaded checkpoint runs
// bit-identically to one forked from the in-memory checkpoint it was
// saved from, for every queue design.
func TestSaveLoadForkMatchesInMemoryFork(t *testing.T) {
	const n = 8000
	spec := ContextSpec{Workload: "swim", Seed: 1, Warm: 50_000}
	ck, err := NewCheckpoint(DefaultConfig(QueueIdeal, 256), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Specs(); !reflect.DeepEqual(got, []ContextSpec{spec}) {
		t.Fatalf("loaded context set %+v, saved %+v", got, spec)
	}
	for name, cfg := range forkTestConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pm, err := ck.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mem, err := pm.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := loaded.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			disk, err := pl.Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(disk, mem) {
				t.Fatalf("loaded fork differs from in-memory fork\nloaded: %+v\nmemory: %+v", disk.Stats, mem.Stats)
			}
		})
	}
}

// saveTestCheckpoint builds and serializes a small checkpoint once for the
// corruption tests.
func saveTestCheckpoint(t *testing.T) []byte {
	t.Helper()
	ck, err := NewCheckpoint(DefaultConfig(QueueIdeal, 128), ContextSpec{Workload: "gcc", Seed: 7, Warm: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadCheckpointRejectsDamage: every class of damaged file must fail
// with an error, never a panic or a silently wrong machine.
func TestLoadCheckpointRejectsDamage(t *testing.T) {
	good := saveTestCheckpoint(t)
	if _, err := LoadCheckpoint(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine file failed to load: %v", err)
	}

	damage := map[string]func([]byte) []byte{
		"empty": func(b []byte) []byte { return nil },
		"bad magic": func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		},
		"wrong version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], CheckpointVersion+1)
			return b
		},
		"geometry fingerprint mismatch": func(b []byte) []byte {
			b[12] ^= 0xff // header fingerprint no longer matches the config
			return b
		},
		"truncated header": func(b []byte) []byte { return b[:10] },
		"truncated body":   func(b []byte) []byte { return b[:len(b)/2] },
		"missing trailer":  func(b []byte) []byte { return b[:len(b)-2] },
		"corrupt trailer": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"trailing garbage": func(b []byte) []byte { return append(b, 0xaa) },
	}
	for name, f := range damage {
		f := f
		t.Run(name, func(t *testing.T) {
			b := f(append([]byte(nil), good...))
			if _, err := LoadCheckpoint(bytes.NewReader(b)); err == nil {
				t.Fatal("damaged checkpoint loaded without error")
			} else {
				t.Logf("rejected: %v", err)
			}
		})
	}
}

// TestLoadCheckpointRejectsCfgTamper: editing a geometry field inside the
// embedded config JSON must be caught by the fingerprint check even
// though the file still parses field by field.
func TestLoadCheckpointRejectsCfgTamper(t *testing.T) {
	good := saveTestCheckpoint(t)
	b := append([]byte(nil), good...)
	i := bytes.Index(b, []byte(`"BTBEntries":4096`))
	if i < 0 {
		t.Fatal("config JSON not found in file")
	}
	b[i+len(`"BTBEntries":`)] = '8' // 4096 -> 8096
	if _, err := LoadCheckpoint(bytes.NewReader(b)); err == nil {
		t.Fatal("tampered config loaded without error")
	} else {
		t.Logf("rejected: %v", err)
	}
}

// newDirClient builds a StoreClient over a fresh DirStore for tests.
func newDirClient(t *testing.T) (*StoreClient, *DirStore) {
	t.Helper()
	dir := &DirStore{Dir: t.TempDir()}
	return &StoreClient{Store: dir}, dir
}

// TestCheckpointStoreHit: the second LoadOrNew for the same key must be a
// hit, and forks from the loaded checkpoint must match forks from the one
// that was built and saved.
func TestCheckpointStoreHit(t *testing.T) {
	const n = 6000
	spec := ContextSpec{Workload: "swim", Seed: 2, Warm: 30_000}
	cfg := SegmentedConfig(256, 64, true, true)
	st, _ := newDirClient(t)

	ck1, hit, err := st.LoadOrNew(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first LoadOrNew reported a hit in an empty store")
	}
	ck2, hit, err := st.LoadOrNew(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second LoadOrNew missed")
	}

	p1, err := ck1.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ck2.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("store-hit fork differs from built fork\nhit:   %+v\nbuilt: %+v", r2.Stats, r1.Stats)
	}
}

// TestCheckpointStoreMissOnGeometryChange: a geometry change must miss
// (separate file), and a corrupt file under the right name must be
// rebuilt, not trusted.
func TestCheckpointStoreMissOnGeometryChange(t *testing.T) {
	spec := ContextSpec{Workload: "swim", Seed: 2, Warm: 20_000}
	st, dir := newDirClient(t)
	cfg := DefaultConfig(QueueIdeal, 128)
	if _, _, err := st.LoadOrNew(cfg, spec); err != nil {
		t.Fatal(err)
	}
	big := cfg
	big.BTBEntries *= 2
	if _, hit, err := st.LoadOrNew(big, spec); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("geometry change hit the old checkpoint")
	}
	if cfg.GeometryFingerprint() == big.GeometryFingerprint() {
		t.Fatal("geometry change did not move the fingerprint")
	}

	path := dir.Path(CheckpointKey(&cfg, []ContextSpec{spec}))
	if err := os.WriteFile(path, []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := st.LoadOrNew(cfg, spec); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("corrupt file counted as a hit")
	}
	// The rebuild must have replaced the garbage with a loadable file.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := LoadCheckpoint(f); err != nil {
		t.Fatalf("rebuilt store file unloadable: %v", err)
	}
}

// TestCheckpointStoreRejectsImpersonation: a valid checkpoint file moved
// to another key's name must be treated as a miss (contents win over the
// file name).
func TestCheckpointStoreRejectsImpersonation(t *testing.T) {
	spec := ContextSpec{Workload: "gcc", Seed: 5, Warm: 20_000}
	other := spec
	other.Seed++
	st, dir := newDirClient(t)
	cfg := DefaultConfig(QueueIdeal, 128)
	if _, _, err := st.LoadOrNew(cfg, spec); err != nil {
		t.Fatal(err)
	}
	src := dir.Path(CheckpointKey(&cfg, []ContextSpec{spec}))
	dst := dir.Path(CheckpointKey(&cfg, []ContextSpec{other}))
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := st.LoadOrNew(cfg, other); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatalf("file copied from %s impersonated %s", filepath.Base(src), filepath.Base(dst))
	}
}
