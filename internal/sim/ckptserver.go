package sim

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// The checkpoint server turns a DirStore into a shared object store:
// `iqbench -ckpt-serve addr -ckpt-dir d` on one host, `-ckpt-url
// http://host:port` on every shard. The wire protocol is deliberately
// dumb — plain keyed GET/PUT — so any HTTP cache or real object store
// can stand in later:
//
//	GET  /healthz       → 200 "ok" (readiness probe for CI and scripts)
//	GET  /ckpt/<key>    → 200 + blob, X-Ckpt-Digest/ETag headers
//	                      404 when absent, 400 on a malformed key
//	HEAD /ckpt/<key>    → headers only (cheap existence probe)
//	PUT  /ckpt/<key>    → 204; body is the blob, an X-Ckpt-Digest
//	                      header (if sent) is verified → 400 on mismatch
//
// Keys must satisfy ValidStoreKey; anything with path separators,
// "..", or bytes outside the key alphabet is rejected with 400 before
// the filesystem is consulted, so a hostile client cannot read or
// write outside the store directory. Writes inherit DirStore's
// temp+rename atomicity: a concurrent or crashed PUT never leaves a
// torn blob for a reader.

// maxCheckpointBytes bounds one PUT body (a checkpoint is a few MB; a
// gigabyte means a confused or malicious client).
const maxCheckpointBytes = 1 << 30

// NewStoreHandler serves the checkpoint-store wire protocol over the
// directory dir.
func NewStoreHandler(dir string) http.Handler {
	st := &DirStore{Dir: dir}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/ckpt/", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Path[len("/ckpt/"):]
		if !ValidStoreKey(key) {
			http.Error(w, fmt.Sprintf("invalid checkpoint key %q", key), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			serveGet(st, w, r, key)
		case http.MethodPut:
			servePut(st, w, r, key)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func serveGet(st *DirStore, w http.ResponseWriter, r *http.Request, key string) {
	data, err := st.Get(key)
	if errors.Is(err, ErrNotFound) {
		http.Error(w, "no such checkpoint", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	digest := blobDigest(data)
	w.Header().Set(digestHeader, digest)
	w.Header().Set("ETag", `"`+digest+`"`)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}

func servePut(st *DirStore, w http.ResponseWriter, r *http.Request, key string) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if want := r.Header.Get(digestHeader); want != "" && want != blobDigest(data) {
		http.Error(w, fmt.Sprintf("digest mismatch: body %s, header %s", blobDigest(data), want),
			http.StatusBadRequest)
		return
	}
	if err := st.Put(key, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(digestHeader, blobDigest(data))
	w.WriteHeader(http.StatusNoContent)
}
