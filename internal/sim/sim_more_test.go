package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uop"
)

// buildTrace makes an n-instruction independent-ALU trace with the given
// instruction interposed at position k.
func aluTrace(n int, interpose map[int]isa.Inst) []isa.Inst {
	var out []isa.Inst
	for i := 0; i < n; i++ {
		if in, ok := interpose[i]; ok {
			out = append(out, in)
			continue
		}
		out = append(out, isa.Inst{PC: 0x1000 + uint64(4*i), Class: isa.IntAlu,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%8})
	}
	return out
}

func runTrace(t *testing.T, cfg Config, ins []isa.Inst) (*Processor, *Result) {
	t.Helper()
	p := MustNew(cfg, trace.FromSlice("t", ins))
	// Pre-warm the instruction lines so cold I-cache misses to memory do
	// not dominate these short timing-focused traces. (Branch training is
	// also applied, which the misprediction test compensates for by using
	// a branch whose BTB entry cannot be correct... it trains the target,
	// so use data addresses only.)
	for _, in := range ins {
		p.hier.WarmInst(in.PC)
	}
	r, err := p.Run(int64(len(ins)))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

// TestMispredictPenalty: a single mispredicted branch (cold BTB, taken)
// costs roughly the branch's resolution latency plus the front-end refill.
func TestMispredictPenalty(t *testing.T) {
	straight := aluTrace(64, nil)
	br := isa.Inst{PC: 0x2000, Class: isa.Branch, Src1: 1, Src2: isa.RegNone,
		Taken: true, Target: 0x3000}
	withBranch := aluTrace(64, map[int]isa.Inst{32: br})

	cfg := DefaultConfig(QueueIdeal, 64)
	_, base := runTrace(t, cfg, straight)
	_, mis := runTrace(t, cfg, withBranch)

	penalty := mis.Cycles - base.Cycles
	if mis.Stats.MustGet("branch_mispredicts") != 1 {
		t.Fatalf("mispredicts = %v", mis.Stats.MustGet("branch_mispredicts"))
	}
	// Resolution (branch must traverse the front end and issue) plus
	// refill: at least the 15-cycle front-end depth, bounded by ~3x.
	if penalty < 15 || penalty > 60 {
		t.Fatalf("misprediction penalty = %d cycles, want ~15-60", penalty)
	}
}

// TestStructuralHazardDivider: unpipelined dividers occupy their units;
// nine back-to-back divides cannot overlap on eight units.
func TestStructuralHazardDivider(t *testing.T) {
	var ins []isa.Inst
	for i := 0; i < 9; i++ {
		ins = append(ins, isa.Inst{PC: 0x1000 + uint64(4*i), Class: isa.FpDiv,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.FpReg(i % 16)})
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	_, r := runTrace(t, cfg, ins)
	// Eight divides start as soon as dispatched; the ninth waits a full
	// 12-cycle occupancy.
	if r.Stats.MustGet("fu_structural_stalls") == 0 {
		t.Fatal("no structural stalls recorded")
	}
}

// TestStoreLoadForwardingEndToEnd: a load overlapping an older store
// completes by forwarding, far faster than a cache round trip would
// be... the line is cold, so a non-forwarded load would take >100 cycles.
func TestStoreLoadForwardingEndToEnd(t *testing.T) {
	ins := []isa.Inst{
		{PC: 0x1000, Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1},
		{PC: 0x1004, Class: isa.Store, Src1: 1, Src2: isa.RegNone, Size: 8, Addr: 0x5_0000},
		{PC: 0x1008, Class: isa.Load, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 2, Size: 8, Addr: 0x5_0000},
		{PC: 0x100c, Class: isa.IntAlu, Src1: 2, Src2: isa.RegNone, Dest: 3},
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	_, r := runTrace(t, cfg, ins)
	if r.Stats.MustGet("lsq_forwards") != 1 {
		t.Fatalf("forwards = %v", r.Stats.MustGet("lsq_forwards"))
	}
	// Total runtime stays far below a memory round trip.
	if r.Cycles > 60 {
		t.Fatalf("run took %d cycles; forwarding should avoid the memory latency", r.Cycles)
	}
}

// TestROBFullStall: a tiny ROB behind a long-latency load must stall
// dispatch and record it.
func TestROBFullStall(t *testing.T) {
	ld := isa.Inst{PC: 0x1000, Class: isa.Load, Src1: isa.RegNone, Src2: isa.RegNone,
		Dest: 1, Size: 8, Addr: 0x9_0000}
	ins := append([]isa.Inst{ld}, aluTrace(64, nil)...)
	cfg := DefaultConfig(QueueIdeal, 64)
	cfg.ROBSize = 8
	_, r := runTrace(t, cfg, ins)
	if r.Stats.MustGet("dispatch_stall_rob") == 0 {
		t.Fatal("ROB stalls not recorded")
	}
}

// TestLSQFullStall: memory instructions beyond the LSQ capacity stall
// dispatch.
func TestLSQFullStall(t *testing.T) {
	var ins []isa.Inst
	for i := 0; i < 24; i++ {
		ins = append(ins, isa.Inst{PC: 0x1000 + uint64(4*i), Class: isa.Load,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%8, Size: 8,
			Addr: 0x10_0000 + uint64(64*i)})
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	cfg.LSQSize = 4
	_, r := runTrace(t, cfg, ins)
	if r.Stats.MustGet("dispatch_stall_lsq") == 0 {
		t.Fatal("LSQ stalls not recorded")
	}
}

// TestFIFOQueueEndToEnd: the Palacharla FIFO design runs every workload.
func TestFIFOQueueEndToEnd(t *testing.T) {
	cfg := FIFOConfig(128)
	for _, w := range []string{"gcc", "swim"} {
		r, err := RunWorkloadWarm(cfg, w, 1, 3000, 30_000)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if r.IPC <= 0.05 {
			t.Errorf("%s IPC %.3f implausible", w, r.IPC)
		}
		if _, ok := r.Stats.Get("fifo_steered"); !ok {
			t.Error("fifo stats missing")
		}
	}
}

// TestSegmentGatingEndToEnd: gating the segmented queue to one segment
// must behave like a 32-entry queue (lower IPC on a window-hungry
// workload) while remaining correct.
func TestSegmentGatingEndToEnd(t *testing.T) {
	cfg := SegmentedConfig(256, 0, false, false)
	s, _ := trace.New("swim", 1)
	p := MustNew(cfg, s)
	p.Warm(s, 100_000)
	p.Queue().(*core.SegmentedIQ).SetActiveSegments(1)
	full, err := p.Run(8000)
	if err != nil {
		t.Fatal(err)
	}
	open, err := RunWorkloadWarm(cfg, "swim", 1, 8000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if full.IPC >= open.IPC {
		t.Fatalf("gated-to-1-segment IPC %.3f should trail ungated %.3f", full.IPC, open.IPC)
	}
	if got := full.Stats.MustGet("segments_active_avg"); got != 1 {
		t.Fatalf("active segments stat = %v", got)
	}
}

// TestWarmImprovesCacheResidentWorkload: the functional fast-forward must
// raise measured IPC on a reuse-heavy workload.
func TestWarmImprovesCacheResidentWorkload(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 128)
	cold, err := RunWorkload(cfg, "twolf", 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunWorkloadWarm(cfg, "twolf", 1, 5000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.IPC <= cold.IPC {
		t.Fatalf("warm IPC %.3f should beat cold %.3f", warm.IPC, cold.IPC)
	}
}

// TestBackToBackThroughFullMachine: a chain of dependent single-cycle
// ALU ops sustains one per cycle through the whole pipeline.
func TestBackToBackThroughFullMachine(t *testing.T) {
	var ins []isa.Inst
	const n = 64
	for i := 0; i < n; i++ {
		ins = append(ins, isa.Inst{PC: 0x1000 + uint64(4*i), Class: isa.IntAlu,
			Src1: 1, Src2: isa.RegNone, Dest: 1})
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	p, r := runTrace(t, cfg, ins)
	_ = p
	// Steady state: one instruction per cycle plus pipeline fill.
	fill := int64(20)
	if r.Cycles > int64(n)+fill+10 {
		t.Fatalf("serial chain took %d cycles for %d instructions; back-to-back broken", r.Cycles, n)
	}
	if r.Cycles < int64(n) {
		t.Fatalf("impossible: %d cycles for a %d-long serial chain", r.Cycles, n)
	}
}

// TestDelayedHitsObserved: swim's same-line loads must produce delayed
// hits in the L1D, the paper's §6.1 swim observation.
func TestDelayedHitsObserved(t *testing.T) {
	r, err := RunWorkloadWarm(DefaultConfig(QueueIdeal, 512), "swim", 1, 10_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.MustGet("l1d_delayed_hits") == 0 {
		t.Fatal("swim produced no delayed hits")
	}
}

// TestStoreRetiresOnlyWithData: a store whose data producer is a
// long-latency load cannot commit before the data exists.
func TestStoreRetiresOnlyWithData(t *testing.T) {
	ins := []isa.Inst{
		// Load from cold memory into r1 (data), address register free.
		{PC: 0x1000, Class: isa.Load, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1, Size: 8, Addr: 0x20_0000},
		// Store r1.
		{PC: 0x1004, Class: isa.Store, Src1: 1, Src2: isa.RegNone, Size: 8, Addr: 0x30_0000},
	}
	cfg := DefaultConfig(QueueIdeal, 64)
	_, r := runTrace(t, cfg, ins)
	// The run cannot finish before the load's ~122-cycle memory round
	// trip plus commit.
	if r.Cycles < 100 {
		t.Fatalf("store committed in %d cycles, before its data could exist", r.Cycles)
	}
}

// TestUopOvershootBound: Run never commits more than a commit-width
// beyond the budget.
func TestUopOvershootBound(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 64)
	r, err := RunWorkload(cfg, "gcc", 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 1000 || r.Instructions >= 1000+int64(cfg.CommitWidth) {
		t.Fatalf("committed %d", r.Instructions)
	}
	_ = uop.NotYet
}

// TestDistanceQueueEndToEnd: the Canal & González distance scheme runs
// every workload without wedging.
func TestDistanceQueueEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DistanceConfig(320)
	for _, w := range trace.Names() {
		r, err := RunWorkloadWarm(cfg, w, 1, 3000, 30_000)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if r.IPC <= 0.02 {
			t.Errorf("%s IPC %.3f implausible", w, r.IPC)
		}
		if _, ok := r.Stats.Get("dist_waited"); !ok {
			t.Error("distance stats missing")
		}
	}
}

// TestDiagnostics covers the diagnostic accessors used by cmd tooling.
func TestDiagnostics(t *testing.T) {
	ins := aluTrace(4, nil)
	p := MustNew(DefaultConfig(QueueIdeal, 32), trace.FromSlice("t", ins))
	p.Step()
	if p.ROBHead() != nil && p.ROBHead().Seq != 0 {
		t.Error("ROBHead wrong")
	}
	p.Debug() // must not panic with or without a ROB head
	if p.Cycle() != 1 {
		t.Error("cycle accessor")
	}
}
