package sim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// SMTProcessor implements the paper's §7 future-work direction: a
// simultaneous-multithreading machine sharing one instruction queue,
// function units and memory hierarchy among several hardware contexts.
// It is an Engine with one context per stream and the SMT result report;
// the pipeline itself lives entirely in Engine.
type SMTProcessor struct {
	*Engine
}

// NewSMT builds an SMT machine over the given workload streams (one per
// hardware context). With more than one context the ROB and LSQ
// capacities of cfg are divided evenly among the contexts; all other
// resources are shared. The queue design's per-register tables are
// replicated per context automatically.
func NewSMT(cfg Config, streams []trace.Stream) (*SMTProcessor, error) {
	e, err := NewEngine(cfg, streams)
	if err != nil {
		return nil, err
	}
	return &SMTProcessor{Engine: e}, nil
}

// MustNewSMT is NewSMT for known-good configurations.
func MustNewSMT(cfg Config, streams []trace.Stream) *SMTProcessor {
	p, err := NewSMT(cfg, streams)
	if err != nil {
		panic(err)
	}
	return p
}

// SMTResult reports an SMT run: aggregate throughput plus per-thread
// retirement counts.
type SMTResult struct {
	Cycles       int64
	Instructions int64
	IPC          float64
	PerThread    []int64
	Workloads    []string
	Stats        *stats.Set
}

// Run simulates until the total committed instructions reach the budget.
func (p *SMTProcessor) Run(maxInstructions int64) (*SMTResult, error) {
	if err := p.Engine.run(maxInstructions); err != nil {
		return nil, err
	}
	return p.smtResult(), nil
}

func (p *SMTProcessor) smtResult() *SMTResult {
	e := p.Engine
	s := stats.NewSet()
	total := e.Committed()
	cycles := e.cycle
	if cycles == 0 {
		cycles = 1
	}
	s.Put("cycles", float64(e.cycle))
	s.Put("instructions", float64(total))
	s.Put("ipc", float64(total)/float64(cycles))
	s.Put("issued", float64(e.stIssued.Value()))
	for _, th := range e.ctxs {
		s.Put(fmt.Sprintf("thread%d_committed", th.id), float64(th.committed))
		s.Put(fmt.Sprintf("thread%d_mispredicts", th.id), float64(th.fe.Mispredicts()))
	}
	e.q.CollectStats(s)
	res := &SMTResult{
		Cycles:       e.cycle,
		Instructions: total,
		IPC:          float64(total) / float64(cycles),
		Stats:        s,
	}
	for _, th := range e.ctxs {
		res.PerThread = append(res.PerThread, th.committed)
		res.Workloads = append(res.Workloads, th.workload)
	}
	return res
}

// RunSMT is the convenience entry point: build the named workloads,
// fast-forward each by warm instructions, and simulate n total committed
// instructions.
func RunSMT(cfg Config, workloads []string, seed uint64, n, warm int64) (*SMTResult, error) {
	var streams []trace.Stream
	for i, w := range workloads {
		s, err := trace.New(w, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		streams = append(streams, s)
	}
	p, err := NewSMT(cfg, streams)
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		p.Warm(streams, warm)
	}
	return p.Run(n)
}
