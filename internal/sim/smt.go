package sim

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/distiq"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/presched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uop"
)

// SMTProcessor implements the paper's §7 future-work direction: a
// simultaneous-multithreading machine sharing one instruction queue,
// function units and memory hierarchy among several hardware contexts.
// Each context has its own front end (with private branch predictor and
// BTB state), renamer, reorder buffer and load/store queue; fetch and
// dispatch bandwidth rotate round-robin among contexts; commit bandwidth
// is shared. Chains from independent threads interleave freely in the
// segmented queue — the property §7 argues lets it exploit thread-level
// parallelism where quasi-static schemes cannot.
type SMTProcessor struct {
	cfg Config
	q   iq.Queue

	hier *mem.Hierarchy
	fus  *pipeline.FUPool

	threads []*smtThread

	cycle  int64
	inExec int
	seq    int64

	// Bound once at construction: the issue loop's callbacks (see
	// Processor). tryIssueFn reads p.cycle, valid throughout Step.
	tryIssueFn func(*uop.UOp) bool
	execDoneFn func(now int64, arg any)
	wbDoneFn   func(now int64, arg any)

	stIssued stats.Counter
}

type smtThread struct {
	id  int
	fe  *pipeline.FrontEnd
	ren *pipeline.Renamer
	rob *pipeline.ROB
	lsq *pipeline.LSQ

	workload  string
	committed int64

	// commitFn is the ROB commit callback, bound once per thread.
	commitFn func(*uop.UOp)
}

// NewSMT builds an SMT machine over the given workload streams (one per
// hardware context). The ROB and LSQ capacities of cfg are divided evenly
// among the contexts; all other resources are shared. The queue design
// must be thread-aware (its per-register tables are replicated per
// context automatically).
func NewSMT(cfg Config, streams []trace.Stream) (*SMTProcessor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(streams)
	if n < 1 {
		return nil, fmt.Errorf("sim: SMT needs at least one stream")
	}
	// Replicate per-thread tables inside the queue designs.
	switch cfg.Queue {
	case QueueSegmented:
		if cfg.Segmented.Segments == 0 {
			cfg.Segmented = core.DefaultConfig(cfg.QueueSize, 0)
		}
		cfg.Segmented.Threads = n
	case QueuePrescheduled:
		if cfg.Presched.Lines == 0 {
			cfg.Presched = presched.DefaultConfig(cfg.QueueSize)
		}
		cfg.Presched.Threads = n
	case QueueDistance:
		if cfg.Distance.Lines == 0 {
			cfg.Distance = distiq.DefaultConfig(cfg.QueueSize)
		}
		cfg.Distance.Threads = n
	}
	q, err := cfg.buildQueue()
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	p := &SMTProcessor{
		cfg:  cfg,
		q:    q,
		hier: hier,
		fus:  pipeline.NewFUPool(cfg.FUPerClass),
	}
	robEach := cfg.ROBSize / n
	if robEach < 8 {
		robEach = 8
	}
	lsqEach := cfg.LSQSize / n
	if lsqEach < 4 {
		lsqEach = 4
	}
	for i, s := range streams {
		bp, err := bpred.NewPredictor(cfg.BranchPredictor)
		if err != nil {
			return nil, err
		}
		btb, err := bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays)
		if err != nil {
			return nil, err
		}
		feCfg := pipeline.FrontEndConfig{
			FetchWidth:       cfg.FetchWidth,
			MaxBranches:      cfg.MaxBranches,
			FetchToDecode:    cfg.FetchToDecode,
			DecodeToDispatch: cfg.DecodeToDispatch,
			ExtraDispatch:    q.ExtraDispatchStages(),
			BufferCap:        (cfg.FetchToDecode + cfg.DecodeToDispatch + 10) * cfg.FetchWidth,
		}
		th := &smtThread{
			id:       i,
			fe:       pipeline.NewFrontEnd(feCfg, s, bp, btb, hier.L1I),
			ren:      pipeline.NewRenamer(),
			rob:      pipeline.NewROB(robEach),
			workload: s.Name(),
		}
		th.lsq = pipeline.NewLSQ(lsqEach, hier.L1D, hier.EQ, q, cfg.CacheRdPorts, cfg.CacheWrPorts)
		th.commitFn = func(u *uop.UOp) {
			th.committed++
			switch {
			case u.IsStore():
				th.lsq.CommitStore(u)
			case u.IsLoad():
				th.lsq.Remove(u)
			}
		}
		p.threads = append(p.threads, th)
	}
	p.tryIssueFn = func(u *uop.UOp) bool { return p.fus.TryIssue(p.cycle, u) }
	p.execDoneFn = func(now int64, arg any) { p.inExec-- }
	p.wbDoneFn = func(now int64, arg any) {
		p.inExec--
		p.q.Writeback(now, arg.(*uop.UOp))
	}
	// Thread-tag every fetched instruction by wrapping... fetch assigns
	// sequence numbers per front end; retag at dispatch instead.
	return p, nil
}

// MustNewSMT is NewSMT for known-good configurations.
func MustNewSMT(cfg Config, streams []trace.Stream) *SMTProcessor {
	p, err := NewSMT(cfg, streams)
	if err != nil {
		panic(err)
	}
	return p
}

// Committed returns the total instructions retired across all contexts.
func (p *SMTProcessor) Committed() int64 {
	var sum int64
	for _, th := range p.threads {
		sum += th.committed
	}
	return sum
}

// Cycle returns the current cycle.
func (p *SMTProcessor) Cycle() int64 { return p.cycle }

// Queue exposes the shared scheduler.
func (p *SMTProcessor) Queue() iq.Queue { return p.q }

// Step advances the machine one cycle.
func (p *SMTProcessor) Step() {
	c := p.cycle
	n := len(p.threads)
	p.hier.Tick(c)

	// Commit: shared bandwidth, rotating priority.
	commits := 0
	width := p.cfg.CommitWidth
	for i := 0; i < n && width > 0; i++ {
		th := p.threads[(int(c)+i)%n]
		done := th.rob.Commit(c, width, th.commitFn)
		commits += done
		width -= done
	}

	p.q.BeginCycle(c)
	p.issue(c)
	for _, th := range p.threads {
		th.lsq.Tick(c)
	}
	p.dispatch(c)
	// Fetch: round-robin, one context per cycle at full width (RR.1.8).
	// A context stalled on a misprediction or I-cache miss yields the
	// port to the next one.
	for i := 0; i < n; i++ {
		th := p.threads[(int(c)+i)%n]
		before := th.fe.BufLen()
		th.fe.Fetch(c)
		if th.fe.BufLen() != before || th.fe.Done() {
			break
		}
	}

	active := p.inExec > 0 || p.hier.EQ.Len() > 0 || commits > 0
	for _, th := range p.threads {
		active = active || th.lsq.Busy()
	}
	p.q.EndCycle(c, active)
	p.cycle++
}

func (p *SMTProcessor) issue(c int64) {
	issued := p.q.Issue(c, p.cfg.IssueWidth, p.tryIssueFn)
	p.stIssued.Add(uint64(len(issued)))
	for _, u := range issued {
		lat := int64(u.Latency())
		p.inExec++
		switch {
		case u.IsLoad():
			u.EADone = c + lat
			p.hier.EQ.ScheduleArg(u.EADone, p.execDoneFn, nil)
		case u.IsStore():
			u.EADone = c + lat
			p.hier.EQ.ScheduleArg(u.EADone, p.wbDoneFn, u)
		default:
			u.Complete = c + lat
			p.hier.EQ.ScheduleArg(u.Complete, p.wbDoneFn, u)
		}
	}
}

// dispatch shares the dispatch width round-robin: each context advances
// in order; a context that stalls yields the remaining slots.
func (p *SMTProcessor) dispatch(c int64) {
	n := len(p.threads)
	width := p.cfg.DispatchWidth
	for i := 0; i < n && width > 0; i++ {
		th := p.threads[(int(c)+i)%n]
		for width > 0 {
			u := th.fe.NextReady(c)
			if u == nil {
				break
			}
			if th.rob.Full() {
				break
			}
			if u.Inst.Class.IsMem() && th.lsq.Full() {
				break
			}
			// Retag with a globally unique, age-ordered sequence number
			// and the owning context.
			if !u.Renamed {
				u.Thread = th.id
				u.Seq = p.seq
				p.seq++
			}
			th.ren.Rename(u, c)
			if !p.q.Dispatch(c, u) {
				break
			}
			th.rob.Push(u)
			if u.Inst.Class.IsMem() {
				th.lsq.Add(u)
			}
			th.fe.Pop()
			width--
		}
	}
}

// Warm fast-forwards every context over the given per-thread instruction
// counts (cache lines and branch training; see Processor.Warm). The
// streams must be the same objects passed to NewSMT.
func (p *SMTProcessor) Warm(streams []trace.Stream, n int64) {
	for ti, s := range streams {
		if ti >= len(p.threads) {
			break
		}
		th := p.threads[ti]
		for i := int64(0); i < n; i++ {
			in, ok := s.Next()
			if !ok {
				break
			}
			p.hier.WarmInst(in.PC)
			if in.Class.IsMem() {
				p.hier.WarmData(in.Addr, in.Class == isa.Store)
			}
			th.fe.Train(in)
		}
	}
}

// SMTResult reports an SMT run: aggregate throughput plus per-thread
// retirement counts.
type SMTResult struct {
	Cycles       int64
	Instructions int64
	IPC          float64
	PerThread    []int64
	Workloads    []string
	Stats        *stats.Set
}

// Run simulates until the total committed instructions reach the budget.
func (p *SMTProcessor) Run(maxInstructions int64) (*SMTResult, error) {
	if maxInstructions < 1 {
		return nil, fmt.Errorf("sim: instruction budget %d", maxInstructions)
	}
	limit := maxInstructions*400 + 1_000_000
	for p.Committed() < maxInstructions {
		allDone := true
		for _, th := range p.threads {
			if !th.fe.Done() || th.rob.Len() > 0 {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if p.cycle > limit {
			return nil, fmt.Errorf("sim: SMT run stuck after %d cycles (%d/%d committed)",
				p.cycle, p.Committed(), maxInstructions)
		}
		p.Step()
	}
	s := stats.NewSet()
	total := p.Committed()
	cycles := p.cycle
	if cycles == 0 {
		cycles = 1
	}
	s.Put("cycles", float64(p.cycle))
	s.Put("instructions", float64(total))
	s.Put("ipc", float64(total)/float64(cycles))
	s.Put("issued", float64(p.stIssued.Value()))
	for _, th := range p.threads {
		s.Put(fmt.Sprintf("thread%d_committed", th.id), float64(th.committed))
		s.Put(fmt.Sprintf("thread%d_mispredicts", th.id), float64(th.fe.Mispredicts()))
	}
	p.q.CollectStats(s)
	res := &SMTResult{
		Cycles:       p.cycle,
		Instructions: total,
		IPC:          float64(total) / float64(cycles),
		Stats:        s,
	}
	for _, th := range p.threads {
		res.PerThread = append(res.PerThread, th.committed)
		res.Workloads = append(res.Workloads, th.workload)
	}
	return res, nil
}

// RunSMT is the convenience entry point: build the named workloads,
// fast-forward each by warm instructions, and simulate n total committed
// instructions.
func RunSMT(cfg Config, workloads []string, seed uint64, n, warm int64) (*SMTResult, error) {
	var streams []trace.Stream
	for i, w := range workloads {
		s, err := trace.New(w, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		streams = append(streams, s)
	}
	p, err := NewSMT(cfg, streams)
	if err != nil {
		return nil, err
	}
	if warm > 0 {
		p.Warm(streams, warm)
	}
	return p.Run(n)
}
