package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// multiCtxSpecs builds the n-context set the SMT tests share: swim and
// twolf cycled to n contexts, distinct per-context seeds (the RunSMT
// convention: seed+i).
func multiCtxSpecs(n int, warm int64) []ContextSpec {
	pair := []string{"swim", "twolf"}
	specs := make([]ContextSpec, n)
	for i := range specs {
		specs[i] = ContextSpec{Workload: pair[i%len(pair)], Seed: uint64(1 + i), Warm: warm}
	}
	return specs
}

// TestMultiContextCheckpointConformance pins the acceptance bar of the
// multi-context refactor: for every queue design at 2 and 4 contexts, a
// machine forked from a warmed checkpoint, a machine forked from that
// checkpoint after a Save/Load round trip, and a cold machine warmed
// from scratch over the same specs must produce DeepEqual-identical
// results.
func TestMultiContextCheckpointConformance(t *testing.T) {
	const n, warm = 6000, 30_000
	for _, nctx := range []int{2, 4} {
		specs := multiCtxSpecs(nctx, warm)
		for name, cfg := range forkTestConfigs() {
			nctx, cfg := nctx, cfg
			t.Run(fmt.Sprintf("%s_%dctx", name, nctx), func(t *testing.T) {
				t.Parallel()
				cold, err := RunContexts(cfg, specs, n)
				if err != nil {
					t.Fatal(err)
				}
				ck, err := NewCheckpoint(cfg, specs...)
				if err != nil {
					t.Fatal(err)
				}
				p, err := ck.Fork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				forked, err := p.Run(n)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(forked, cold) {
					t.Fatalf("forked result differs from cold run\nforked: %+v\ncold:   %+v", forked.Stats, cold.Stats)
				}
				var buf bytes.Buffer
				if err := ck.Save(&buf); err != nil {
					t.Fatal(err)
				}
				loaded, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				pl, err := loaded.Fork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				disk, err := pl.Run(n)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(disk, forked) {
					t.Fatalf("loaded fork differs from in-memory fork\nloaded: %+v\nmemory: %+v", disk.Stats, forked.Stats)
				}
			})
		}
	}
}

// TestMultiContextResultStats: an n-context result must carry the
// aggregate keys plus a thread<i>_-prefixed copy of every per-context
// statistic, and the joined workload name.
func TestMultiContextResultStats(t *testing.T) {
	specs := multiCtxSpecs(2, 10_000)
	r, err := RunContexts(DefaultConfig(QueueIdeal, 128), specs, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "swim+twolf" {
		t.Errorf("workload = %q, want swim+twolf", r.Workload)
	}
	var total float64
	for i := 0; i < 2; i++ {
		pfx := fmt.Sprintf("thread%d_", i)
		for _, k := range []string{"committed", "fetched", "branches"} {
			v, ok := r.Stats.Get(pfx + k)
			if !ok {
				t.Fatalf("per-context key %s%s missing", pfx, k)
			}
			if k == "committed" {
				total += v
			}
		}
	}
	if total != float64(r.Instructions) {
		t.Errorf("per-context committed sums to %.0f, machine committed %d", total, r.Instructions)
	}
}

// TestCheckpointV1GoldenRejected: the committed v1 golden file (written
// by the single-context format of PR 4/5) must fail with a version
// error — not a panic, and never a silently misdecoded machine.
func TestCheckpointV1GoldenRejected(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "ckpt_v1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = LoadCheckpoint(f)
	if err == nil {
		t.Fatal("v1 checkpoint loaded without error")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("v1 checkpoint rejected with %q, want a format-version error", err)
	}
}

// TestCheckpointV2RoundTripBytes: saving a loaded checkpoint must
// reproduce the original file byte for byte, for both a single-context
// (PR-4-style) set and a multi-context one. This pins that Save is
// construction-path independent: frontiers and memo suffixes serialize
// identically whether the template was freshly warmed or rebuilt from
// disk.
func TestCheckpointV2RoundTripBytes(t *testing.T) {
	sets := map[string][]ContextSpec{
		"n1": {{Workload: "gcc", Seed: 7, Warm: 20_000}},
		"n2": multiCtxSpecs(2, 15_000),
	}
	for name, specs := range sets {
		specs := specs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ck, err := NewCheckpoint(DefaultConfig(QueueIdeal, 128), specs...)
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := ck.Save(&first); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadCheckpoint(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := loaded.Save(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("round trip changed the file: %d bytes -> %d bytes", first.Len(), second.Len())
			}
		})
	}
}

// TestMultiContextCheckpointStoreKey documents the multi-context store
// key shape: the sanitized join of the ordered context set. The n=1
// prefix is byte-compatible with the single-context keys of PR 5, so
// existing stores keep hitting.
func TestMultiContextCheckpointStoreKey(t *testing.T) {
	cfg := DefaultConfig(QueueIdeal, 128)
	specs := []ContextSpec{
		{Workload: "swim", Seed: 1, Warm: 300},
		{Workload: "twolf", Seed: 2, Warm: 400},
	}
	key := CheckpointKey(&cfg, specs)
	if want := "ck_swim_s1_w300_twolf_s2_w400_g"; !strings.HasPrefix(key, want) {
		t.Fatalf("key = %q, want prefix %q", key, want)
	}
	if !ValidStoreKey(key) {
		t.Fatalf("multi-context key invalid: %q", key)
	}
	// Order is part of the identity: swapped contexts are a different key.
	swapped := CheckpointKey(&cfg, []ContextSpec{specs[1], specs[0]})
	if swapped == key {
		t.Fatal("context order does not change the store key")
	}
}

// TestSMTCheckpointForkSkipConformance extends the skip-vs-no-skip suite
// to multi-context forks from checkpoints: two forks of one warmed
// 2- and 4-context checkpoint, one skipping and one stepping, must stay
// bit-identical — per-context statistics included.
func TestSMTCheckpointForkSkipConformance(t *testing.T) {
	for _, nctx := range []int{2, 4} {
		nctx := nctx
		t.Run(fmt.Sprintf("%dctx", nctx), func(t *testing.T) {
			t.Parallel()
			ck, err := NewCheckpoint(DistanceConfig(256), multiCtxSpecs(nctx, 30_000)...)
			if err != nil {
				t.Fatal(err)
			}
			run := func(noSkip bool) (*Result, *Engine) {
				cfg := DistanceConfig(256)
				cfg.NoSkip = noSkip
				p, err := ck.Fork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := p.Run(8000)
				if err != nil {
					t.Fatal(err)
				}
				return r, p.Engine
			}
			rSkip, eSkip := run(false)
			rStep, eStep := run(true)
			for i := 0; i < nctx; i++ {
				if _, ok := rSkip.Stats.Get(fmt.Sprintf("thread%d_committed", i)); !ok {
					t.Fatalf("per-context stats missing for context %d", i)
				}
			}
			requireSkipEquivalence(t, rSkip, rStep, eSkip, eStep)
		})
	}
}
