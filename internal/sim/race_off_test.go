//go:build !race

package sim

const raceDetector = false
