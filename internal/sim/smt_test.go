package sim

import (
	"testing"

	"repro/internal/trace"
)

func TestSMTValidation(t *testing.T) {
	if _, err := NewSMT(SegmentedConfig(128, 64, false, false), nil); err == nil {
		t.Fatal("zero streams accepted")
	}
	bad := SegmentedConfig(128, 64, false, false)
	bad.Queue = "nonsense"
	s, _ := trace.New("gcc", 1)
	if _, err := NewSMT(bad, []trace.Stream{s}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RunSMT(SegmentedConfig(64, 0, false, false), []string{"nope"}, 1, 10, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	p := MustNewSMT(SegmentedConfig(128, 64, false, false), []trace.Stream{s})
	if _, err := p.Run(0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestSMTSingleThreadMatchesShape(t *testing.T) {
	// A one-context SMT machine is just a processor with a halved... no:
	// full resources; its IPC should be in the same ballpark as the
	// single-threaded machine on the same workload.
	cfg := SegmentedConfig(128, 64, true, true)
	st, err := RunWorkloadWarm(cfg, "vortex", 1, 6000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	smt, err := RunSMT(cfg, []string{"vortex"}, 1, 6000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := smt.IPC / st.IPC
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("1-thread SMT IPC %.3f vs single-thread %.3f", smt.IPC, st.IPC)
	}
}

func TestSMTThroughputExceedsSingleThread(t *testing.T) {
	// §7: chains from independent threads share the queue; co-scheduling
	// a latency-bound workload with a compute workload must beat either
	// thread alone.
	cfg := SegmentedConfig(256, 128, true, true)
	const n, warm = 10_000, 100_000
	a, err := RunWorkloadWarm(cfg, "twolf", 1, n, warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkloadWarm(cfg, "gcc", 2, n, warm)
	if err != nil {
		t.Fatal(err)
	}
	smt, err := RunSMT(cfg, []string{"twolf", "gcc"}, 1, 2*n, warm)
	if err != nil {
		t.Fatal(err)
	}
	best := a.IPC
	if b.IPC > best {
		best = b.IPC
	}
	if smt.IPC <= best {
		t.Fatalf("SMT throughput %.3f should exceed the best single thread %.3f (a=%.3f b=%.3f)",
			smt.IPC, best, a.IPC, b.IPC)
	}
	// Both threads make progress.
	for i, c := range smt.PerThread {
		if c < int64(n)/4 {
			t.Fatalf("thread %d starved: %d committed (%v)", i, c, smt.PerThread)
		}
	}
}

func TestSMTPerThreadStats(t *testing.T) {
	cfg := SegmentedConfig(128, 64, false, false)
	r, err := RunSMT(cfg, []string{"gcc", "vortex"}, 1, 6000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Stats.Get("thread0_committed"); !ok {
		t.Error("per-thread stats missing")
	}
	if _, ok := r.Stats.Get("thread1_committed"); !ok {
		t.Error("per-thread stats missing")
	}
	if len(r.Workloads) != 2 || r.Workloads[0] != "gcc" {
		t.Errorf("workloads = %v", r.Workloads)
	}
	if v := r.Stats.MustGet("chains_peak"); v < 0 {
		t.Error("shared queue stats missing")
	}
}

func TestSMTRegisterNamespacesIsolated(t *testing.T) {
	// Two copies of the same workload share every architectural register
	// number; with per-thread register tables they must not corrupt each
	// other. A collision would show up as wrong chain assignments and, on
	// this chain-heavy workload, wedges or wild IPC swings.
	cfg := SegmentedConfig(256, 0, false, false)
	r, err := RunSMT(cfg, []string{"equake", "equake"}, 1, 12_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0.05 {
		t.Fatalf("IPC %.3f implausible", r.IPC)
	}
	// Neither context starves.
	if r.PerThread[0] < 2000 || r.PerThread[1] < 2000 {
		t.Fatalf("per-thread progress skewed: %v", r.PerThread)
	}
}

func TestSMTWithOtherQueues(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(QueueIdeal, 128),
		PrescheduledConfig(128),
		FIFOConfig(128),
	} {
		r, err := RunSMT(cfg, []string{"gcc", "vortex"}, 1, 4000, 40_000)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Queue, err)
		}
		if r.IPC <= 0.05 {
			t.Errorf("%s SMT IPC %.3f implausible", cfg.Queue, r.IPC)
		}
	}
}
