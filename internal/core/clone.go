package core

import (
	"repro/internal/iq"
	"repro/internal/stats"
	"repro/internal/uop"
)

// clone returns an independent copy of the chain pool, preserving the
// free list order and per-wire generations so a cloned machine allocates
// the same wires in the same order as the original.
func (p *chainPool) clone() *chainPool {
	n := new(chainPool)
	*n = *p
	n.free = append([]int(nil), p.free...)
	n.gens = append([]uint32(nil), p.gens...)
	return n
}

// clone returns an independent copy of the wire pipeline, including any
// signals currently in flight between segments.
func (w *wirePipe) clone() *wirePipe {
	n := &wirePipe{nSegs: w.nSegs, cur: make([][]signal, len(w.cur))}
	for i, s := range w.cur {
		if s == nil {
			continue
		}
		ns := make([]signal, len(s))
		copy(ns, s)
		n.cur[i] = ns
	}
	return n
}

// clone returns an independent copy of the register information table with
// producer pointers remapped through m.
func (t regTable) clone(m *uop.CloneMap) regTable {
	n := make(regTable, len(t))
	copy(n, t)
	for i := range n {
		n[i].producer = m.Get(n[i].producer)
	}
	return n
}

// CloneIQ implements uop.IQState: the entry rides along whenever its
// instruction is remapped through a clone map. This covers issued-but-
// not-written-back instructions too — their entries have already left
// the segments but still carry the chain memberships that writeback
// releases.
func (e *entry) CloneIQ(clone *uop.UOp) any {
	ne := new(entry)
	*ne = *e
	ne.u = clone
	return ne
}

// Clone implements iq.Queue: a deep copy of the segments, chain pool,
// wire pipeline, register table and predictors, with every held
// instruction remapped through m. Each resident entry's clone is the one
// CloneIQ attached to the remapped instruction, so segments and uops
// agree on entry identity. Scratch buffers and the entry freelist are not
// carried over.
func (q *SegmentedIQ) Clone(m *uop.CloneMap) iq.Queue {
	n := new(SegmentedIQ)
	*n = *q
	n.candScratch = nil
	n.outScratch = nil
	n.moveReady = nil
	n.moveStore = nil
	n.entryPool = nil
	n.segs = make([][]*entry, len(q.segs))
	// byID is rebuilt from the cloned segments: issued entries were
	// untracked at issue, so the scoreboard never dereferences their
	// (nil) slots.
	n.byID = make([]*entry, len(q.byID))
	for k, seg := range q.segs {
		if seg == nil {
			continue
		}
		ns := make([]*entry, len(seg))
		for i, e := range seg {
			ne := m.Get(e.u).IQ.(*entry)
			ns[i] = ne
			n.byID[ne.id] = ne
		}
		n.segs[k] = ns
	}
	n.readyW = make([][]uint64, len(q.readyW))
	n.storeW = make([][]uint64, len(q.storeW))
	for k := range q.readyW {
		n.readyW[k] = append([]uint64(nil), q.readyW[k]...)
		n.storeW[k] = append([]uint64(nil), q.storeW[k]...)
	}
	n.sb = q.sb.Clone(m)
	n.unresolved = make([]*uop.UOp, len(q.unresolved))
	for i, u := range q.unresolved {
		n.unresolved[i] = m.Get(u)
	}
	n.chains = q.chains.clone()
	n.wires = q.wires.clone()
	n.table = q.table.clone(m)
	n.hmp = q.hmp.Clone()
	n.lrp = q.lrp.Clone()
	n.prevFree = append([]int(nil), q.prevFree...)
	n.stSegOcc = append([]stats.Mean(nil), q.stSegOcc...)
	n.demChains.Steps = q.demChains.CloneSteps()
	return n
}
