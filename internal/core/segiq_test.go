package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

// testRenamer mimics the pipeline's renamer: it wires Prod edges from the
// most recent in-flight writer of each architectural register.
type testRenamer struct {
	last map[int]*uop.UOp
	seq  int64
}

func newTestRenamer() *testRenamer { return &testRenamer{last: make(map[int]*uop.UOp)} }

func (r *testRenamer) rename(in isa.Inst) *uop.UOp {
	u := uop.New(r.seq, in)
	r.seq++
	for j, src := range [...]int{in.Src1, in.Src2} {
		if src == isa.RegNone || src == isa.RegZero {
			continue
		}
		if p, ok := r.last[src]; ok && p.Complete == uop.NotYet {
			u.Prod[j] = p
		}
	}
	if in.HasDest() {
		r.last[in.Dest] = u
	}
	return u
}

func aluInst(s1, s2, d int) isa.Inst {
	return isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d}
}

func loadInst(addrReg, d int) isa.Inst {
	return isa.Inst{Class: isa.Load, Src1: addrReg, Src2: isa.RegNone, Dest: d, Size: 8, Addr: 0x1000}
}

func always(*uop.UOp) bool { return true }

// addRaw plants an entry with a frozen delay value directly into a
// segment — white-box scaffolding for promotion-machinery tests. The
// chainless, non-self-timed reference neither decays nor hears signals.
func addRaw(q *SegmentedIQ, seg int, seq int64, delay int, arrived int64) *entry {
	u := uop.New(seq, aluInst(isa.RegNone, isa.RegNone, 1))
	e := q.newEntry(u, seg, arrived)
	if delay > 0 {
		e.refs[0] = chainRef{ch: chainNone, delay: delay}
		e.nrefs = 1
	}
	u.IQ = e
	q.segInsert(seg, e, q.sb.Track(e.id, u, q.curCycle), u.IsStore())
	q.total++
	return e
}

func smallCfg(segments, segSize, iw int) Config {
	return Config{
		Segments: segments, SegSize: segSize, IssueWidth: iw,
		Pushdown: true, Bypass: true, DeadlockRecovery: true,
		PredictedLoadLatency: 4,
	}
}

func TestInterfaceBasics(t *testing.T) {
	q := MustNew(DefaultConfig(512, 128))
	if q.Name() != "segmented" {
		t.Error("name")
	}
	if q.Capacity() != 512 {
		t.Errorf("capacity = %d", q.Capacity())
	}
	if q.ExtraDispatchStages() != 1 {
		t.Error("segmented IQ costs one extra dispatch stage")
	}
	if q.Config().Segments != 16 {
		t.Error("config accessor")
	}
}

func TestDispatchBypassPlacement(t *testing.T) {
	q := MustNew(smallCfg(4, 2, 8))
	r := newTestRenamer()

	// Empty queue: bypass everything, land in segment 0.
	u0 := r.rename(aluInst(isa.RegNone, isa.RegNone, 1))
	if !q.Dispatch(0, u0) {
		t.Fatal("dispatch failed")
	}
	if e := u0.IQ.(*entry); e.seg != 0 {
		t.Fatalf("first instruction in segment %d, want 0 (full bypass)", e.seg)
	}
	// Highest non-empty segment has room: join it.
	u1 := r.rename(aluInst(isa.RegNone, isa.RegNone, 2))
	q.Dispatch(0, u1)
	if e := u1.IQ.(*entry); e.seg != 0 {
		t.Fatalf("second instruction in segment %d, want 0", e.seg)
	}
	// Segment 0 now full: overflow into the empty segment above.
	u2 := r.rename(aluInst(isa.RegNone, isa.RegNone, 3))
	q.Dispatch(0, u2)
	if e := u2.IQ.(*entry); e.seg != 1 {
		t.Fatalf("third instruction in segment %d, want 1", e.seg)
	}
	if q.Len() != 3 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestDispatchNoBypass(t *testing.T) {
	cfg := smallCfg(4, 2, 8)
	cfg.Bypass = false
	q := MustNew(cfg)
	u := uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))
	q.Dispatch(0, u)
	if e := u.IQ.(*entry); e.seg != 3 {
		t.Fatalf("without bypass instruction must enter the top segment, got %d", e.seg)
	}
}

func TestDispatchFullStall(t *testing.T) {
	cfg := smallCfg(2, 1, 8)
	cfg.Bypass = false
	q := MustNew(cfg)
	if !q.Dispatch(0, uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))) {
		t.Fatal("first dispatch failed")
	}
	if q.Dispatch(0, uop.New(1, aluInst(isa.RegNone, isa.RegNone, 2))) {
		t.Fatal("dispatch into full top segment accepted")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_stall_full") != 1 {
		t.Error("full stall not counted")
	}
}

func TestDelayValueInitFormula(t *testing.T) {
	// A load head dispatched into segment S gives consumers delay
	// 2*S + latency (§3.3).
	cfg := smallCfg(4, 8, 8)
	cfg.Bypass = false // force the load into segment 3
	q := MustNew(cfg)
	r := newTestRenamer()

	ld := r.rename(loadInst(isa.RegNone, 5))
	q.Dispatch(0, ld)
	if e := ld.IQ.(*entry); !e.isHead {
		t.Fatal("load must head a chain in the base design")
	}
	con := r.rename(aluInst(5, isa.RegNone, 6))
	q.Dispatch(0, con)
	e := con.IQ.(*entry)
	if e.nrefs != 1 {
		t.Fatalf("consumer memberships = %d", e.nrefs)
	}
	// S_H = 3, D_H = predicted load latency 4: delay = 2*3 + 4 = 10.
	if got := e.effDelay(); got != 10 {
		t.Fatalf("consumer delay = %d, want 10", got)
	}
	if e.refs[0].headLoc != 3 {
		t.Fatalf("headLoc = %d, want 3", e.refs[0].headLoc)
	}
	// A second-level consumer adds the producer's own latency.
	con2 := r.rename(aluInst(6, isa.RegNone, 7))
	q.Dispatch(0, con2)
	if got := con2.IQ.(*entry).effDelay(); got != 2*3+4+1 {
		t.Fatalf("transitive delay = %d, want 11", got)
	}
}

func TestPromotionRespectsThresholds(t *testing.T) {
	q := MustNew(smallCfg(3, 8, 8))
	// delay 5 entry: threshold(1)=4 refuses it; threshold... wait, it sits
	// in segment 2; promotion into 1 needs delay < 4.
	e5 := addRaw(q, 2, 0, 5, -1)
	e3 := addRaw(q, 2, 1, 3, -1) // < 4: promotes to segment 1, then stalls (>= 2)
	e1 := addRaw(q, 2, 2, 1, -1) // promotes all the way down

	q.BeginCycle(1)
	if e5.seg != 2 || e3.seg != 1 || e1.seg != 1 {
		t.Fatalf("after cycle 1: segs %d %d %d", e5.seg, e3.seg, e1.seg)
	}
	q.BeginCycle(2)
	if e3.seg != 1 {
		t.Fatalf("delay-3 entry entered segment 0 (threshold 2): seg %d", e3.seg)
	}
	if e1.seg != 0 {
		t.Fatalf("delay-1 entry should reach segment 0, at %d", e1.seg)
	}
}

func TestPromotionBandwidthAndPrevFree(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 3)) // issue width (= promotion bandwidth) 3
	for i := int64(0); i < 6; i++ {
		addRaw(q, 1, i, 0, -1)
	}
	q.BeginCycle(1)
	if got := q.SegmentLen(0); got != 3 {
		t.Fatalf("promoted %d, want bandwidth limit 3", got)
	}
	// Oldest first.
	for _, e := range q.segs[0] {
		if e.u.Seq >= 3 {
			t.Fatalf("younger instruction %d promoted before older", e.u.Seq)
		}
	}

	// prevFree: fill segment 0 to 6/8 during this cycle via dispatch;
	// next cycle only min(bw, prevFree, actual) promote.
	q2 := MustNew(smallCfg(2, 8, 8))
	for i := int64(0); i < 8; i++ {
		addRaw(q2, 1, i, 0, -1)
	}
	// Occupy 6 slots of segment 0, marked as arrived long ago.
	for i := int64(100); i < 106; i++ {
		e := addRaw(q2, 0, i, 0, -1)
		e.u.Prod[0] = uop.New(999, aluInst(isa.RegNone, isa.RegNone, 1)) // never ready
		q2.refresh(e)
	}
	q2.BeginCycle(1)
	if got := 8 - q2.SegmentLen(1); got != 2 {
		t.Fatalf("promoted %d, want 2 (segment 0 had 2 free)", got)
	}
}

func TestNoSameCyclePromotionOrIssue(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 8))
	e := addRaw(q, 1, 0, 0, 5) // arrived in cycle 5
	q.BeginCycle(5)            // same cycle: must not move
	if e.seg != 1 {
		t.Fatal("entry moved in its arrival cycle")
	}
	q.BeginCycle(6)
	if e.seg != 0 {
		t.Fatal("entry should move the next cycle")
	}
	// arrived set to 6: cannot issue at 6.
	if got := q.Issue(6, 8, always); len(got) != 0 {
		t.Fatal("issued in arrival cycle")
	}
	if got := q.Issue(7, 8, always); len(got) != 1 {
		t.Fatal("should issue the following cycle")
	}
}

func TestIssueOldestReadyFirstAndWidth(t *testing.T) {
	q := MustNew(smallCfg(1, 8, 8))
	blocked := uop.New(99, aluInst(isa.RegNone, isa.RegNone, 1))
	for i := int64(0); i < 5; i++ {
		e := addRaw(q, 0, 4-i, 0, -1) // inserted youngest-first
		_ = e
	}
	// Make seq 2 unready.
	for _, e := range q.segs[0] {
		if e.u.Seq == 2 {
			e.u.Prod[0] = blocked
			q.refresh(e)
			break
		}
	}
	got := q.Issue(0, 3, always)
	if len(got) != 3 {
		t.Fatalf("issued %d, want 3", len(got))
	}
	wantSeqs := []int64{0, 1, 3} // 2 is unready
	for i, u := range got {
		if u.Seq != wantSeqs[i] {
			t.Fatalf("issue order %v", got)
		}
	}
	// Function-unit rejection skips but does not block younger ops.
	got = q.Issue(1, 8, func(u *uop.UOp) bool { return u.Seq != 4 })
	if len(got) != 0 {
		t.Fatalf("only seq 4 remains ready; it was rejected, got %v", got)
	}
}

func TestChainStallAndRelease(t *testing.T) {
	cfg := smallCfg(2, 8, 8)
	cfg.MaxChains = 1
	q := MustNew(cfg)
	r := newTestRenamer()

	ld1 := r.rename(loadInst(isa.RegNone, 1))
	if !q.Dispatch(0, ld1) {
		t.Fatal("first load rejected")
	}
	ld2 := r.rename(loadInst(isa.RegNone, 2))
	if q.Dispatch(0, ld2) {
		t.Fatal("second chain allocation should stall dispatch")
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_stall_nochain") != 1 {
		t.Error("chain stall not counted")
	}
	if q.ChainsInUse() != 1 {
		t.Errorf("chains in use = %d", q.ChainsInUse())
	}

	// Issue the load, complete it, write it back: the chain frees and the
	// stalled load dispatches.
	got := q.Issue(1, 8, always)
	if len(got) != 1 {
		t.Fatal("load did not issue")
	}
	ld1.Complete = 5
	q.NotifyLoadComplete(5, ld1)
	q.Writeback(6, ld1)
	if q.ChainsInUse() != 0 {
		t.Error("chain not released at writeback")
	}
	if !q.Dispatch(7, ld2) {
		t.Fatal("dispatch still stalled after chain release")
	}
}

func TestTwoOutstandingOperandsHeadCreation(t *testing.T) {
	q := MustNew(smallCfg(4, 8, 8))
	r := newTestRenamer()

	ldA := r.rename(loadInst(isa.RegNone, 1))
	ldB := r.rename(loadInst(isa.RegNone, 2))
	q.Dispatch(0, ldA)
	q.Dispatch(0, ldB)
	join := r.rename(aluInst(1, 2, 3))
	q.Dispatch(0, join)
	e := join.IQ.(*entry)
	if e.nrefs != 2 {
		t.Fatalf("two-chain instruction memberships = %d, want 2", e.nrefs)
	}
	if !e.isHead {
		t.Fatal("base design: two-chain instruction must head a new chain (§3.4)")
	}
	if q.ChainsInUse() != 3 {
		t.Errorf("chains = %d, want 3", q.ChainsInUse())
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("two_outstanding_diff_chains") != 1 {
		t.Error("two-outstanding-diff-chains stat wrong")
	}
	if s.MustGet("chain_heads_twochain") != 1 {
		t.Error("two-chain head stat wrong")
	}
	// A consumer of the join follows only the join's new chain.
	con := r.rename(aluInst(3, isa.RegNone, 4))
	q.Dispatch(0, con)
	ce := con.IQ.(*entry)
	if ce.nrefs != 1 || ce.refs[0].ch != e.head {
		t.Fatal("consumer should follow the join's chain")
	}
}

func TestSameChainTwoOperandsMergesMembership(t *testing.T) {
	q := MustNew(smallCfg(4, 8, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld)
	a := r.rename(aluInst(1, isa.RegNone, 2)) // on ld's chain
	b := r.rename(aluInst(1, isa.RegNone, 3)) // on ld's chain
	q.Dispatch(0, a)
	q.Dispatch(0, b)
	join := r.rename(aluInst(2, 3, 4))
	q.Dispatch(0, join)
	e := join.IQ.(*entry)
	if e.nrefs != 1 {
		t.Fatalf("same-chain operands should merge to one membership, got %d", e.nrefs)
	}
	if e.isHead {
		t.Fatal("same-chain join must not create a chain")
	}
	if q.ChainsInUse() != 1 {
		t.Errorf("chains = %d, want 1", q.ChainsInUse())
	}
}

func TestLRPLimitsToOneChain(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.UseLRP = true
	q := MustNew(cfg)
	r := newTestRenamer()
	ldA := r.rename(loadInst(isa.RegNone, 1))
	ldB := r.rename(loadInst(isa.RegNone, 2))
	q.Dispatch(0, ldA)
	q.Dispatch(0, ldB)
	join := r.rename(aluInst(1, 2, 3))
	q.Dispatch(0, join)
	e := join.IQ.(*entry)
	if e.nrefs != 1 {
		t.Fatalf("LRP instruction memberships = %d, want 1", e.nrefs)
	}
	if e.isHead {
		t.Fatal("LRP: no chain creation for two-operand instructions (§4.3)")
	}
	if !e.lrpTracked {
		t.Fatal("prediction must be scored")
	}
	if q.ChainsInUse() != 2 {
		t.Errorf("chains = %d, want 2 (loads only)", q.ChainsInUse())
	}
}

func TestHMPSuppressesChainsForPredictedHits(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.UseHMP = true
	q := MustNew(cfg)
	r := newTestRenamer()

	// Train the HMP to confidence with 14 hitting loads at one PC.
	pc := uint64(0x4000)
	for i := 0; i < 14; i++ {
		ld := r.rename(loadInst(isa.RegNone, 1))
		ld.Inst.PC = pc
		if !q.Dispatch(int64(i), ld) {
			t.Fatal("dispatch failed")
		}
		e := ld.IQ.(*entry)
		if !e.isHead {
			t.Fatal("unconfident load should still head a chain")
		}
		// Simulate issue + hit completion + writeback.
		ld.IssueCycle = int64(i)
		ld.Complete = int64(i) + 4
		ld.MemKind = uop.MemHit
		q.NotifyLoadComplete(ld.Complete, ld)
		q.Writeback(ld.Complete+1, ld)
		q.removeEverywhere(e)
	}
	// Next load at this PC: predicted hit, no chain.
	ld := r.rename(loadInst(isa.RegNone, 1))
	ld.Inst.PC = pc
	q.Dispatch(100, ld)
	if ld.IQ.(*entry).isHead {
		t.Fatal("confidently hit-predicted load must not head a chain (§4.4)")
	}
	if q.ChainsInUse() != 0 {
		t.Errorf("chains = %d, want 0", q.ChainsInUse())
	}
	// Its consumer self-times from dispatch with the hit latency baked in.
	con := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(100, con)
	ce := con.IQ.(*entry)
	if ce.nrefs != 1 || !ce.refs[0].selfTimed {
		t.Fatalf("consumer of chainless load should be self-timed: %+v", ce.refs[0])
	}
}

// removeEverywhere is test scaffolding: extracts an entry from whichever
// segment holds it (simulating issue without the full protocol).
func (q *SegmentedIQ) removeEverywhere(e *entry) {
	for k := range q.segs {
		for _, x := range q.segs[k] {
			if x == e {
				q.removeFromSegment(k, e)
				q.total--
				return
			}
		}
	}
}

func TestChainWirePipelining(t *testing.T) {
	// Head in segment 0, members in segments 1 and 3. When the head
	// issues, the member in segment 1 must observe the assertion one
	// cycle later than segment 0 would, and the member in segment 3 two
	// cycles after that.
	q := MustNew(smallCfg(4, 8, 8))
	ch, _ := q.chains.alloc()

	head := addRaw(q, 0, 0, 0, -1)
	head.isHead = true
	head.head = ch

	m1 := addRaw(q, 1, 1, 0, 10) // arrived guard keeps them parked
	m1.refs[0] = chainRef{ch: ch, delay: 6, headLoc: 0}
	m1.nrefs = 1
	m3 := addRaw(q, 3, 2, 0, 10)
	m3.refs[0] = chainRef{ch: ch, delay: 10, headLoc: 0}
	m3.nrefs = 1

	// Cycle 1: head issues, asserting at segment 0.
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 1 {
		t.Fatal("head did not issue")
	}
	if m1.refs[0].selfTimed {
		t.Fatal("segment-1 member saw the signal in the assertion cycle")
	}
	// Cycle 2: signal reaches segment 1 (self-timed starts), and the
	// member ticks... observation precedes tick in BeginCycle, so delay
	// drops by one this cycle.
	m1.arrived = 10 // keep it from promoting for clean observation
	q.BeginCycle(2)
	if !m1.refs[0].selfTimed {
		t.Fatal("segment-1 member missed the pipelined signal")
	}
	if m3.refs[0].selfTimed {
		t.Fatal("segment-3 member saw the signal too early")
	}
	q.BeginCycle(3)
	if m3.refs[0].selfTimed {
		t.Fatal("signal should reach segment 3 at cycle 4")
	}
	q.BeginCycle(4)
	if !m3.refs[0].selfTimed {
		t.Fatal("segment-3 member missed the signal")
	}
}

func TestInstantWiresAblation(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.InstantWires = true
	q := MustNew(cfg)
	ch, _ := q.chains.alloc()
	head := addRaw(q, 0, 0, 0, -1)
	head.isHead = true
	head.head = ch
	m3 := addRaw(q, 3, 1, 0, 10)
	m3.refs[0] = chainRef{ch: ch, delay: 10, headLoc: 0}
	m3.nrefs = 1

	q.BeginCycle(1)
	q.Issue(1, 8, always)
	if !m3.refs[0].selfTimed {
		t.Fatal("instant wires must deliver in the assertion cycle")
	}
}

func TestSuspendResumeOnLoadMiss(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld)
	con := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(0, con)
	ce := con.IQ.(*entry)

	q.BeginCycle(1)
	issued := q.Issue(1, 8, always)
	if len(issued) != 1 || issued[0] != ld {
		t.Fatalf("load should issue first: %v", issued)
	}
	// Consumer (in segment 0, delay 4) sees the issue assertion in the
	// same cycle it was asserted (both in segment 0).
	if !ce.refs[0].selfTimed {
		t.Fatal("consumer did not enter self-timed mode on head issue")
	}
	d0 := ce.refs[0].delay

	// The load misses: suspend.
	q.NotifyLoadMiss(4, ld)
	if !ce.refs[0].suspended {
		t.Fatal("suspend signal not delivered")
	}
	q.BeginCycle(5)
	q.BeginCycle(6)
	if ce.refs[0].delay != d0 {
		t.Fatal("suspended member kept counting")
	}
	// Data returns: resume; countdown continues.
	ld.Complete = 50
	ld.MemKind = uop.MemMiss
	q.NotifyLoadComplete(50, ld)
	if ce.refs[0].suspended {
		t.Fatal("resume signal not delivered")
	}
	q.BeginCycle(51)
	if ce.refs[0].delay != d0-1 {
		t.Fatal("countdown did not resume")
	}
}

func TestPushdown(t *testing.T) {
	cfg := smallCfg(2, 4, 2) // IW=2: pushdown when freeK<2 and freeDest>3
	q := MustNew(cfg)
	// Segment 1 has 3 entries (free=1 < 2), all ineligible (delay 99).
	for i := int64(0); i < 3; i++ {
		addRaw(q, 1, i, 99, -1)
	}
	q.BeginCycle(1)
	if q.SegmentLen(0) != 2 {
		t.Fatalf("pushdown moved %d, want IW=2", q.SegmentLen(0))
	}
	for _, e := range q.segs[0] {
		if !e.pushedDown {
			t.Fatal("entries should be marked as pushed down")
		}
		if e.u.Seq > 1 {
			t.Fatal("pushdown must take the oldest ineligible instructions")
		}
	}
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("iq_pushdowns") != 2 {
		t.Error("pushdown stat wrong")
	}

	// With pushdown disabled nothing moves.
	cfg.Pushdown = false
	q2 := MustNew(cfg)
	for i := int64(0); i < 3; i++ {
		addRaw(q2, 1, i, 99, -1)
	}
	q2.BeginCycle(1)
	if q2.SegmentLen(0) != 0 {
		t.Fatal("pushdown ran while disabled")
	}
}

func TestPushdownRequiresEmptyDestination(t *testing.T) {
	cfg := smallCfg(2, 4, 2)
	q := MustNew(cfg)
	for i := int64(0); i < 3; i++ {
		addRaw(q, 1, i, 99, -1)
	}
	// Destination has only 3 free (need > 3): block pushdown.
	blocker := uop.New(50, aluInst(isa.RegNone, isa.RegNone, 1))
	blocker.Prod[0] = uop.New(99, aluInst(isa.RegNone, isa.RegNone, 2))
	e := &entry{u: blocker, seg: 0, arrived: -1}
	q.segs[0] = append(q.segs[0], e)
	q.total++
	q.BeginCycle(1)
	if q.SegmentLen(0) != 1 {
		t.Fatal("pushdown ran without >1.5*IW free entries below")
	}
}

func TestDeadlockDetectionAndRecovery(t *testing.T) {
	cfg := smallCfg(2, 1, 1)
	cfg.Bypass = false
	cfg.Pushdown = false
	q := MustNew(cfg)

	// A producer that never completes keeps both queued entries unready.
	ghost := uop.New(999, loadInst(isa.RegNone, 9))
	p := uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))
	p.Prod[0] = ghost
	c := uop.New(1, aluInst(isa.RegNone, isa.RegNone, 2))
	c.Prod[0] = ghost

	q.Dispatch(0, p) // top segment
	q.BeginCycle(1)  // p (delay 0) promotes to segment 0
	if p.IQ.(*entry).seg != 0 {
		t.Fatal("setup: producer should sink to segment 0")
	}
	q.Dispatch(1, c) // fills the top segment
	q.EndCycle(1, true)

	// Now: both segments full, nothing ready, nothing active.
	q.BeginCycle(2)
	if got := q.Issue(2, 8, always); len(got) != 0 {
		t.Fatal("nothing should be ready")
	}
	q.EndCycle(2, false)
	s := stats.NewSet()
	q.CollectStats(s)
	if s.MustGet("deadlock_cycles") != 1 {
		t.Fatal("deadlock not detected")
	}

	// Recovery runs next cycle: the bottom instruction is recycled to the
	// top and the upper instruction forced down.
	q.BeginCycle(3)
	if s2 := collect(q); s2.MustGet("deadlock_recoveries") != 1 {
		t.Fatal("recovery did not run")
	}
	if p.IQ.(*entry).seg != 1 || c.IQ.(*entry).seg != 0 {
		t.Fatalf("rotation failed: p in %d, c in %d", p.IQ.(*entry).seg, c.IQ.(*entry).seg)
	}

	// Once the ghost completes, both instructions drain. The writeback
	// call delivers the completion the way the pipeline would (the ghost
	// was never dispatched, so it only wakes its consumers).
	ghost.Complete = 3
	q.Writeback(3, ghost)
	q.BeginCycle(4)
	if got := q.Issue(4, 8, always); len(got) != 1 {
		t.Fatal("recovered instruction did not issue")
	}
	q.BeginCycle(5)
	q.BeginCycle(6)
	if got := q.Issue(6, 8, always); len(got) != 1 {
		t.Fatal("second instruction did not drain")
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}

func collect(q *SegmentedIQ) *stats.Set {
	s := stats.NewSet()
	q.CollectStats(s)
	return s
}

func TestNoDeadlockWhenMachineActive(t *testing.T) {
	cfg := smallCfg(2, 1, 1)
	cfg.Bypass = false
	q := MustNew(cfg)
	ghost := uop.New(999, loadInst(isa.RegNone, 9))
	p := uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))
	p.Prod[0] = ghost
	q.Dispatch(0, p)
	q.EndCycle(0, false) // dispatch counts as progress
	if collect(q).MustGet("deadlock_cycles") != 0 {
		t.Fatal("cycle with dispatch progress misdetected")
	}
	q.BeginCycle(1) // p promotes toward segment 0: progress
	q.EndCycle(1, false)
	if collect(q).MustGet("deadlock_cycles") != 0 {
		t.Fatal("cycle with promotion progress misdetected")
	}
	q.BeginCycle(2) // nothing can move, but the machine is busy elsewhere
	q.EndCycle(2, true)
	if collect(q).MustGet("deadlock_cycles") != 0 {
		t.Fatal("active machine misdetected as deadlock")
	}
	q.BeginCycle(3) // nothing moves and nothing is active: flagged
	q.EndCycle(3, false)
	if collect(q).MustGet("deadlock_cycles") != 1 {
		t.Fatal("idle cycle with stuck queue not flagged")
	}
}

func TestWritebackClearsRegTable(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld)
	if !q.table[1].valid {
		t.Fatal("table row not created")
	}
	// A younger writer replaces the row; the old producer's writeback
	// must not clear it.
	ld2 := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld2)
	q.Writeback(5, ld)
	if !q.table[1].valid || q.table[1].producer != ld2 {
		t.Fatal("younger producer's row clobbered by older writeback")
	}
	q.Writeback(6, ld2)
	if q.table[1].valid {
		t.Fatal("row not cleared at producer writeback")
	}
}

func TestSegmentOneDegeneratesToConventional(t *testing.T) {
	// One segment: dispatch straight into the issue buffer, no promotion
	// machinery, readiness-driven issue.
	q := MustNew(smallCfg(1, 32, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	con := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(0, ld)
	q.Dispatch(0, con)
	q.BeginCycle(1)
	got := q.Issue(1, 8, always)
	if len(got) != 1 || got[0] != ld {
		t.Fatalf("issue = %v", got)
	}
	// Load data at cycle 8.
	ld.Complete = 8
	q.BeginCycle(8)
	if got := q.Issue(8, 8, always); len(got) != 1 || got[0] != con {
		t.Fatalf("consumer issue = %v", got)
	}
}

func TestBackToBackDependentIssue(t *testing.T) {
	// Producer issues at t, 1-cycle latency: consumer must issue at t+1.
	q := MustNew(smallCfg(1, 32, 8))
	r := newTestRenamer()
	p := r.rename(aluInst(isa.RegNone, isa.RegNone, 1))
	c := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(0, p)
	q.Dispatch(0, c)
	q.BeginCycle(1)
	got := q.Issue(1, 8, always)
	if len(got) != 1 || got[0] != p {
		t.Fatalf("cycle 1 issue = %v", got)
	}
	p.Complete = 2 // 1-cycle ALU result, fully bypassed
	q.BeginCycle(2)
	if got := q.Issue(2, 8, always); len(got) != 1 || got[0] != c {
		t.Fatalf("back-to-back issue failed: %v", got)
	}
}

func TestCollectStatsComplete(t *testing.T) {
	cfg := smallCfg(2, 8, 8)
	cfg.UseHMP = true
	cfg.UseLRP = true
	q := MustNew(cfg)
	s := collect(q)
	for _, name := range []string{
		"iq_dispatched", "iq_issued", "iq_stall_full", "iq_stall_nochain",
		"iq_promotions", "iq_pushdowns", "iq_occupancy_avg",
		"iq_ready_seg0_avg", "iq_ready_total_avg", "chains_avg",
		"chains_peak", "chain_heads", "two_outstanding",
		"deadlock_cycles", "deadlock_recoveries",
		"hmp_hit_pred_accuracy", "hmp_hit_coverage", "lrp_accuracy",
	} {
		if _, ok := s.Get(name); !ok {
			t.Errorf("missing stat %q", name)
		}
	}
}

func TestSegmentGating(t *testing.T) {
	// §7 dynamic resizing: gate a 4-segment queue to its bottom 2
	// segments; dispatch must stop targeting the gated region while
	// in-flight instructions above it drain normally.
	cfg := smallCfg(4, 2, 8)
	cfg.Bypass = false
	q := MustNew(cfg)
	if q.ActiveSegments() != 4 {
		t.Fatal("queue should start fully powered")
	}
	// Park an instruction in segment 3 (the soon-to-be-gated region).
	parked := addRaw(q, 3, 0, 0, 0)
	q.SetActiveSegments(2)
	if q.ActiveSegments() != 2 {
		t.Fatal("gating not applied")
	}
	// Without bypass, dispatch now targets segment 1.
	u := uop.New(1, aluInst(isa.RegNone, isa.RegNone, 1))
	if !q.Dispatch(1, u) {
		t.Fatal("dispatch failed")
	}
	if got := u.IQ.(*entry).seg; got != 1 {
		t.Fatalf("dispatched into segment %d, want active top 1", got)
	}
	// The parked instruction still drains through the gated segments.
	for cycle := int64(2); cycle <= 6; cycle++ {
		q.BeginCycle(cycle)
	}
	if parked.seg != 0 {
		t.Fatalf("parked instruction at segment %d, want drained to 0", parked.seg)
	}
	// Clamping.
	q.SetActiveSegments(0)
	if q.ActiveSegments() != 1 {
		t.Fatal("lower clamp")
	}
	q.SetActiveSegments(99)
	if q.ActiveSegments() != 4 {
		t.Fatal("upper clamp")
	}
}

func TestSegmentGatingWithBypass(t *testing.T) {
	cfg := smallCfg(8, 2, 8)
	q := MustNew(cfg)
	q.SetActiveSegments(3)
	// Fill segments 0..2 completely: dispatch must stall rather than use
	// a gated segment.
	for i := int64(0); i < 6; i++ {
		u := uop.New(i, aluInst(isa.RegNone, isa.RegNone, 1))
		if !q.Dispatch(0, u) {
			t.Fatalf("dispatch %d failed", i)
		}
		if u.IQ.(*entry).seg > 2 {
			t.Fatalf("instruction placed in gated segment %d", u.IQ.(*entry).seg)
		}
	}
	if q.Dispatch(0, uop.New(9, aluInst(isa.RegNone, isa.RegNone, 1))) {
		t.Fatal("dispatch into gated region accepted")
	}
	s := collect(q)
	if s.MustGet("iq_stall_full") != 1 {
		t.Error("gated stall not counted")
	}
	q.BeginCycle(1)
	if _, ok := s.Get("segments_active_avg"); !ok {
		t.Error("gating stat missing")
	}
}
