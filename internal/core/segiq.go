package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

// SegmentedIQ is the paper's segmented, dependence-chain-scheduled
// instruction queue. It implements iq.Queue.
type SegmentedIQ struct {
	cfg    Config
	segs   [][]*entry // segs[0] is the bottom segment / issue buffer
	chains *chainPool
	wires  *wirePipe
	table  regTable

	hmp *bpred.HitMissPredictor
	lrp *bpred.LeftRightPredictor

	prevFree []int // per-segment free slots at the end of the previous cycle
	total    int   // occupied slots across all segments

	// Scratch buffers reused across cycles so the steady-state cycle loop
	// (BeginCycle → Issue) does not allocate. The slice Issue returns is
	// backed by outScratch and remains valid only until the next call.
	readyScratch []*entry
	candScratch  []*entry
	outScratch   []*uop.UOp
	// entryPool recycles queue entries between writeback and dispatch, so
	// steady-state dispatch allocates nothing either.
	entryPool []*entry
	// active is the number of powered segments (§7 dynamic resizing):
	// dispatch only targets segments below it; gated segments drain and
	// stay empty.
	active int

	curCycle            int64
	issuedThisCycle     int
	promotedThisCycle   int
	dispatchedThisCycle int
	recoverPending      bool

	stDispatched     stats.Counter
	stIssued         stats.Counter
	stStallFull      stats.Counter
	stStallNoChain   stats.Counter
	stPromotions     stats.Counter
	stPushdowns      stats.Counter
	stHeads          stats.Counter
	stHeadLoads      stats.Counter
	stHeadTwoChain   stats.Counter
	stTwoOutstanding stats.Counter
	stTwoDiffChains  stats.Counter
	stDeadlockCycles stats.Counter
	stRecoveries     stats.Counter
	stWireAsserts    stats.Counter
	stOccupancy      stats.Mean
	stActiveSegs     stats.Mean
	stSegOcc         []stats.Mean // per-segment occupancy
	stReadySeg0      stats.Mean
	stReadyTotal     stats.Mean
	stDispatchSeg    stats.Mean
}

// New builds a segmented IQ from cfg.
func New(cfg Config) (*SegmentedIQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &SegmentedIQ{
		cfg:      cfg,
		segs:     make([][]*entry, cfg.Segments),
		chains:   newChainPool(cfg.MaxChains),
		wires:    newWirePipe(cfg.Segments),
		table:    newRegTable(cfg.Threads),
		prevFree: make([]int, cfg.Segments),
		active:   cfg.Segments,
		stSegOcc: make([]stats.Mean, cfg.Segments),
	}
	for k := range q.prevFree {
		q.prevFree[k] = cfg.SegSize
	}
	if cfg.UseHMP {
		q.hmp = bpred.MustNewHMP()
	}
	if cfg.UseLRP {
		q.lrp = bpred.MustNewLRP()
	}
	return q, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *SegmentedIQ {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Name implements iq.Queue.
func (q *SegmentedIQ) Name() string { return "segmented" }

// Capacity implements iq.Queue.
func (q *SegmentedIQ) Capacity() int { return q.cfg.Segments * q.cfg.SegSize }

// Len implements iq.Queue.
func (q *SegmentedIQ) Len() int { return q.total }

// ExtraDispatchStages implements iq.Queue: the paper charges the segmented
// design one extra dispatch cycle for chain assignment.
func (q *SegmentedIQ) ExtraDispatchStages() int { return 1 }

// Config returns the queue's configuration.
func (q *SegmentedIQ) Config() Config { return q.cfg }

// deliverSeg applies a signal to every entry in segment k.
func (q *SegmentedIQ) deliverSeg(k int, s signal) {
	for _, e := range q.segs[k] {
		e.observe(s)
	}
}

// catchUp delivers the signals currently present at segment k to an entry
// that just arrived there. Signals propagate upward while instructions
// move downward; without this, an instruction moving into a segment in
// the same cycle a signal sits there would cross it in flight and miss it
// permanently (e.g. a chain resume, leaving the member suspended forever).
func (q *SegmentedIQ) catchUp(e *entry, k int) {
	if q.cfg.InstantWires {
		return
	}
	for _, s := range q.wires.at(k) {
		e.observe(s)
	}
}

// assertAt asserts a chain-wire signal at segment position k. In the
// pipelined model the signal is observed by segment k now and moves one
// segment up per cycle; with InstantWires it reaches everything above k
// immediately.
//
// The register information table observes every assertion in the
// asserting cycle, with no pipeline lag: the chain wires terminate at the
// dispatch stage. A lagged table would hand newly dispatched instructions
// stale (too-high) head locations; with segment bypass those instructions
// would then wait forever for advance assertions that had already passed
// below them.
func (q *SegmentedIQ) assertAt(k int, s signal) {
	q.stWireAsserts.Inc()
	q.table.observe(s)
	if q.cfg.InstantWires {
		for kk := k; kk < q.cfg.Segments; kk++ {
			q.deliverSeg(kk, s)
		}
		return
	}
	q.wires.assert(k, s)
	q.deliverSeg(k, s)
}

// BeginCycle implements iq.Queue: wire propagation, self-timed countdown,
// deadlock recovery, promotion and pushdown.
func (q *SegmentedIQ) BeginCycle(cycle int64) {
	q.curCycle = cycle
	q.issuedThisCycle = 0
	q.promotedThisCycle = 0
	q.dispatchedThisCycle = 0

	// Promotion this cycle may use only the slots that were free at the
	// end of the previous cycle (§3.1: availability cannot be computed and
	// propagated through the whole queue in one cycle).
	for k := range q.segs {
		q.prevFree[k] = q.cfg.SegSize - len(q.segs[k])
	}

	// Advance the pipelined chain wires one segment and deliver. (The
	// register table saw each assertion already, in its asserting cycle.)
	if !q.cfg.InstantWires {
		q.wires.shift()
		for k := 0; k < q.cfg.Segments; k++ {
			for _, s := range q.wires.at(k) {
				q.deliverSeg(k, s)
			}
		}
	}

	// Self-timed countdowns.
	for k := range q.segs {
		for _, e := range q.segs[k] {
			e.tick()
		}
	}
	q.table.tick()

	if q.recoverPending {
		q.recoverPending = false
		q.recover(cycle)
	}

	q.promote(cycle)

	// Statistics. The readiness scan walks every occupied slot, so it is
	// gated behind the sampling knob (Config.StatsEvery); it has no effect
	// on scheduling.
	if every := int64(q.cfg.StatsEvery); every <= 1 || cycle%every == 0 {
		q.stOccupancy.Observe(float64(q.total))
		q.stActiveSegs.Observe(float64(q.active))
		for k := range q.segs {
			q.stSegOcc[k].Observe(float64(len(q.segs[k])))
		}
		ready0, readyAll := 0, 0
		for k := range q.segs {
			for _, e := range q.segs[k] {
				if e.u.Ready(cycle) {
					readyAll++
					if k == 0 {
						ready0++
					}
				}
			}
		}
		q.stReadySeg0.Observe(float64(ready0))
		q.stReadyTotal.Observe(float64(readyAll))
		q.chains.sample()
	}
}

// sortEntriesBySeq orders entries by ascending sequence number (oldest
// first) with an in-place insertion sort: candidate lists are at most one
// segment long and nearly sorted, and unlike sort.Slice this allocates no
// closure.
func sortEntriesBySeq(es []*entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].u.Seq > e.u.Seq {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// promote moves eligible instructions one segment downward, oldest first,
// bounded by inter-segment bandwidth (= issue width) and the destination
// slots free at the end of the previous cycle; then applies pushdown
// (§4.1) with any remaining bandwidth.
func (q *SegmentedIQ) promote(cycle int64) {
	for k := 1; k < q.cfg.Segments; k++ {
		dest := k - 1
		budget := q.cfg.IssueWidth
		if q.prevFree[dest] < budget {
			budget = q.prevFree[dest]
		}
		if free := q.cfg.SegSize - len(q.segs[dest]); free < budget {
			budget = free
		}
		if budget <= 0 {
			continue
		}
		thr := threshold(dest)
		moved := q.moveSelected(k, dest, budget, cycle, false, func(e *entry) bool {
			return e.arrived < cycle && e.effDelay() < thr
		})
		budget -= moved

		if q.cfg.Pushdown && budget > 0 {
			freeK := q.cfg.SegSize - len(q.segs[k])
			freeDest := q.cfg.SegSize - len(q.segs[dest])
			// §4.1: the upper segment has fewer than IW free entries and
			// the one below has more than 1.5*IW free entries.
			if freeK < q.cfg.IssueWidth && 2*freeDest > 3*q.cfg.IssueWidth {
				n := budget
				if n > q.cfg.IssueWidth {
					n = q.cfg.IssueWidth
				}
				q.moveSelected(k, dest, n, cycle, true, func(e *entry) bool {
					return e.arrived < cycle && e.effDelay() >= thr
				})
			}
		}
	}
}

// moveSelected moves up to n entries matching pick from segment k to
// segment dest, oldest (lowest sequence number) first, asserting chain
// wires for promoted heads. It returns the number moved.
func (q *SegmentedIQ) moveSelected(k, dest, n int, cycle int64, pushdown bool, pick func(*entry) bool) int {
	cand := q.candScratch[:0]
	for _, e := range q.segs[k] {
		if pick(e) {
			cand = append(cand, e)
		}
	}
	q.candScratch = cand[:0]
	if len(cand) == 0 {
		return 0
	}
	sortEntriesBySeq(cand)
	if len(cand) > n {
		cand = cand[:n]
	}
	for _, e := range cand {
		q.removeFromSegment(k, e)
		e.seg = dest
		e.arrived = cycle
		e.pushedDown = pushdown
		q.segs[dest] = append(q.segs[dest], e)
		q.catchUp(e, dest)
		if e.isHead {
			q.assertAt(k, signal{ch: e.head, typ: sigAdvance})
		}
		q.promotedThisCycle++
		if pushdown {
			q.stPushdowns.Inc()
		} else {
			q.stPromotions.Inc()
		}
	}
	return len(cand)
}

func (q *SegmentedIQ) removeFromSegment(k int, e *entry) {
	seg := q.segs[k]
	for i, x := range seg {
		if x == e {
			copy(seg[i:], seg[i+1:])
			seg[len(seg)-1] = nil
			q.segs[k] = seg[:len(seg)-1]
			return
		}
	}
	panic("core: entry not found in its segment")
}

// Issue implements iq.Queue: conventional wakeup/select over the bottom
// segment only, oldest ready first. Issuing chain heads assert their wire
// at segment 0 (members with head location zero enter self-timed mode).
// The returned slice is owned by the queue and valid until the next call.
func (q *SegmentedIQ) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	ready := q.readyScratch[:0]
	for _, e := range q.segs[0] {
		if e.arrived < cycle && e.u.IssueReady(cycle) {
			ready = append(ready, e)
		}
	}
	q.readyScratch = ready[:0]
	sortEntriesBySeq(ready)
	out := q.outScratch[:0]
	for _, e := range ready {
		if len(out) >= max {
			break
		}
		if !tryIssue(e.u) {
			continue
		}
		e.u.IssueCycle = cycle
		q.removeFromSegment(0, e)
		q.total--
		out = append(out, e.u)
		if e.isHead {
			q.assertAt(0, signal{ch: e.head, typ: sigAdvance})
		}
		q.trainLRP(e)
	}
	q.outScratch = out
	q.issuedThisCycle += len(out)
	q.stIssued.Add(uint64(len(out)))
	return out
}

// trainLRP scores and trains the left/right predictor once both operand
// arrival times are known (they are, at issue).
func (q *SegmentedIQ) trainLRP(e *entry) {
	if !e.lrpTracked || q.lrp == nil {
		return
	}
	u := e.u
	if u.Prod[0] == nil || u.Prod[1] == nil {
		return
	}
	t0, t1 := u.OperandReadyTime(0), u.OperandReadyTime(1)
	if t0 == t1 {
		return // no information in a tie
	}
	q.lrp.Update(u.Inst.PC, t0 > t1)
}

// SetActiveSegments gates the queue to its bottom n segments (§7 dynamic
// resizing by clock/power gating at segment granularity). Dispatch stops
// targeting gated segments immediately; instructions already above the
// active region keep promoting downward until it drains. n is clamped to
// [1, Segments].
func (q *SegmentedIQ) SetActiveSegments(n int) {
	if n < 1 {
		n = 1
	}
	if n > q.cfg.Segments {
		n = q.cfg.Segments
	}
	q.active = n
}

// ActiveSegments returns the number of powered segments.
func (q *SegmentedIQ) ActiveSegments() int { return q.active }

// dispatchTarget picks the segment a new instruction enters: with bypass
// (§4.2), the highest non-empty segment (or the bottom if the queue is
// empty), overflowing into the empty segment above it when full; without
// bypass, always the top (active) segment.
func (q *SegmentedIQ) dispatchTarget() (int, bool) {
	top := q.active - 1
	if !q.cfg.Bypass {
		if len(q.segs[top]) >= q.cfg.SegSize {
			return 0, false
		}
		return top, true
	}
	hi := -1
	for k := top; k >= 0; k-- {
		if len(q.segs[k]) > 0 {
			hi = k
			break
		}
	}
	switch {
	case hi == -1:
		return 0, true
	case len(q.segs[hi]) < q.cfg.SegSize:
		return hi, true
	case hi < top:
		return hi + 1, true
	default:
		return 0, false
	}
}

// refFrom derives a chain membership from a register-table row.
func refFrom(re regEntry) chainRef {
	if re.selfTimed {
		return chainRef{ch: re.ch, delay: re.latency, selfTimed: true, suspended: re.suspended}
	}
	// §3.3: delay is initialised to 2*S_H + D_H.
	return chainRef{ch: re.ch, delay: 2*re.headLoc + re.latency, headLoc: re.headLoc}
}

// Dispatch implements iq.Queue: chain assignment via the register
// information table, delay-value initialisation, chain-head creation
// (loads, and two-outstanding-operand instructions in the base design),
// and placement with segment bypass. Returns false — with no state
// changed — when the target segment is full or no chain wire is free.
func (q *SegmentedIQ) Dispatch(cycle int64, u *uop.UOp) bool {
	// Collect the outstanding source operands and snapshot their rows
	// (the destination update below may overwrite a row aliased by a
	// source).
	type srcOut struct {
		j  int
		re regEntry
	}
	var outsArr [2]srcOut
	outs := outsArr[:0]
	for j := 0; j < 2; j++ {
		if j == 0 && u.IsStore() {
			// A store's delay value tracks only its address operand: the
			// EA calculation is what the IQ schedules; the data drains
			// through the LSQ.
			continue
		}
		r := u.Src(j)
		if r == isa.RegNone || r == isa.RegZero {
			continue
		}
		re := q.table.row(u.Thread, r)
		if re.outstanding() {
			outs = append(outs, srcOut{j: j, re: *re})
		}
	}

	isLoad := u.IsLoad()
	predHit := false
	if isLoad && q.hmp != nil {
		predHit = q.hmp.PredictHit(u.Inst.PC)
	}
	needHead := isLoad && !predHit
	headIsLoad := needHead

	twoDiff := len(outs) == 2 &&
		outs[0].re.ch.real() && outs[1].re.ch.real() && outs[0].re.ch != outs[1].re.ch
	if twoDiff && q.lrp == nil {
		// Base design (§3.4): an instruction following two chains must
		// itself head a new chain.
		needHead = true
	}

	target, ok := q.dispatchTarget()
	if !ok {
		q.stStallFull.Inc()
		return false
	}

	hd := chainNone
	if needHead {
		c, allocOK := q.chains.alloc()
		if !allocOK {
			q.stStallNoChain.Inc()
			return false
		}
		hd = c
	}

	// Commit point: no stalls past here.
	var e *entry
	if n := len(q.entryPool); n > 0 {
		e = q.entryPool[n-1]
		q.entryPool[n-1] = nil
		q.entryPool = q.entryPool[:n-1]
		*e = entry{u: u, seg: target, arrived: cycle, isHead: needHead, head: hd}
	} else {
		e = &entry{u: u, seg: target, arrived: cycle, isHead: needHead, head: hd}
	}
	if len(outs) == 2 {
		q.stTwoOutstanding.Inc()
		if twoDiff {
			q.stTwoDiffChains.Inc()
		}
	}

	switch {
	case len(outs) == 0:
		// Both operands available: delay 0, no chain membership.
	case len(outs) == 1:
		e.refs[0] = refFrom(outs[0].re)
		e.nrefs = 1
	case q.lrp != nil:
		// §4.3: with the LRP each instruction follows at most one chain —
		// the operand predicted to arrive later.
		left := q.lrp.PredictLeftLater(u.Inst.PC)
		e.lrpTracked = true
		pick := outs[1]
		if left {
			pick = outs[0]
		}
		e.refs[0] = refFrom(pick.re)
		e.nrefs = 1
	case outs[0].re.ch.real() && outs[0].re.ch == outs[1].re.ch:
		// Both operands on the same chain: one membership, larger delay.
		a, b := refFrom(outs[0].re), refFrom(outs[1].re)
		if b.delay > a.delay {
			a = b
		}
		e.refs[0] = a
		e.nrefs = 1
	default:
		// Two memberships (§3.2); the larger delay value controls.
		e.refs[0] = refFrom(outs[0].re)
		e.refs[1] = refFrom(outs[1].re)
		e.nrefs = 2
	}

	if u.Inst.HasDest() {
		predLat := u.Latency()
		if isLoad {
			predLat = q.cfg.PredictedLoadLatency
		}
		de := q.table.row(u.Thread, u.Inst.Dest)
		switch {
		case needHead:
			*de = regEntry{valid: true, producer: u, ch: hd, latency: predLat, headLoc: target}
		case e.nrefs > 0:
			cr := e.refs[0]
			if e.nrefs == 2 && e.refs[1].delay > cr.delay {
				cr = e.refs[1]
			}
			if cr.selfTimed {
				*de = regEntry{valid: true, producer: u, ch: cr.ch,
					latency: cr.delay + predLat, selfTimed: true, suspended: cr.suspended}
			} else {
				// Latency relative to head issue: the controlling
				// operand's latency-from-head plus this instruction's
				// own latency.
				*de = regEntry{valid: true, producer: u, ch: cr.ch,
					latency: cr.delay - 2*cr.headLoc + predLat, headLoc: cr.headLoc}
			}
		default:
			// Fully predictable: expected to issue after draining ~one
			// segment per cycle from its dispatch segment.
			*de = regEntry{valid: true, producer: u, ch: chainNone,
				latency: target + predLat, selfTimed: true}
		}
	}

	u.DispatchCycle = cycle
	u.IQ = e
	q.segs[target] = append(q.segs[target], e)
	q.catchUp(e, target)
	q.total++
	q.dispatchedThisCycle++
	q.stDispatched.Inc()
	q.stDispatchSeg.Observe(float64(target))
	if needHead {
		q.stHeads.Inc()
		if headIsLoad {
			q.stHeadLoads.Inc()
		} else {
			q.stHeadTwoChain.Inc()
		}
	}
	return true
}

// NotifyLoadMiss implements iq.Queue: the chain head discovered it will
// not complete within its predicted latency; members suspend self-timing
// (§3.4). The signal originates at the bottom of the queue and propagates
// up the chain wire.
func (q *SegmentedIQ) NotifyLoadMiss(cycle int64, u *uop.UOp) {
	e, ok := u.IQ.(*entry)
	if !ok || e == nil || !e.isHead {
		return
	}
	q.assertAt(0, signal{ch: e.head, typ: sigSuspend})
}

// NotifyLoadComplete implements iq.Queue: a final chain-wire signal
// resumes self-timed mode; the hit/miss predictor is trained.
func (q *SegmentedIQ) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	if q.hmp != nil && u.IsLoad() {
		q.hmp.Update(u.Inst.PC, u.MemKind == uop.MemHit)
	}
	e, ok := u.IQ.(*entry)
	if !ok || e == nil || !e.isHead {
		return
	}
	q.assertAt(0, signal{ch: e.head, typ: sigResume})
}

// Writeback implements iq.Queue: chains are deallocated when the head
// writes its result back to the register file; the register table row is
// released if this instruction is still its producer.
func (q *SegmentedIQ) Writeback(cycle int64, u *uop.UOp) {
	q.table.clearProducer(u)
	e, ok := u.IQ.(*entry)
	if !ok || e == nil {
		return
	}
	if e.isHead {
		q.chains.release(e.head)
		e.isHead = false
	}
	u.IQ = nil
	// The entry left the queue segments at issue and its last external
	// reference (u.IQ) is gone: recycle it.
	e.u = nil
	q.entryPool = append(q.entryPool, e)
}

// EndCycle implements iq.Queue: deadlock detection (§4.5). A deadlock is
// declared when the queue holds instructions but nothing issued, promoted
// or dispatched this cycle and nothing is executing elsewhere in the
// machine; recovery runs at the start of the next cycle.
func (q *SegmentedIQ) EndCycle(cycle int64, machineActive bool) {
	if q.total > 0 && q.issuedThisCycle == 0 && q.promotedThisCycle == 0 &&
		q.dispatchedThisCycle == 0 && !machineActive {
		q.stDeadlockCycles.Inc()
		if q.cfg.DeadlockRecovery {
			q.recoverPending = true
		}
	}
}

// recover implements §4.5: every full segment is forced to promote one
// instruction (eligible candidates preferred), and if the bottom segment
// is full of non-ready instructions, one is recycled to the top of the
// queue, guaranteeing the oldest ready instruction can eventually reach
// segment 0.
func (q *SegmentedIQ) recover(cycle int64) {
	q.stRecoveries.Inc()

	var recycled *entry
	if len(q.segs[0]) >= q.cfg.SegSize && !q.anyReady(0, cycle) {
		oldest := q.segs[0][0]
		for _, e := range q.segs[0] {
			if e.u.Seq < oldest.u.Seq {
				oldest = e
			}
		}
		q.removeFromSegment(0, oldest)
		recycled = oldest
	}

	// Force one promotion across every segment boundary with room below.
	// The paper forces promotions out of *full* segments; we extend the
	// forced pass to any non-empty segment so that recovery also clears
	// wedges where delay values have gone stale without filling the queue
	// (the queue is already known to be making no progress).
	for k := 1; k < q.cfg.Segments; k++ {
		if len(q.segs[k]) == 0 || len(q.segs[k-1]) >= q.cfg.SegSize {
			continue
		}
		thr := threshold(k - 1)
		// Prefer an eligible instruction; otherwise force the oldest.
		moved := q.moveSelected(k, k-1, 1, cycle, false, func(e *entry) bool {
			return e.effDelay() < thr
		})
		if moved == 0 {
			q.moveSelected(k, k-1, 1, cycle, true, func(e *entry) bool { return true })
		}
	}

	if recycled != nil {
		placed := false
		for k := q.cfg.Segments - 1; k >= 0; k-- {
			if len(q.segs[k]) < q.cfg.SegSize {
				recycled.seg = k
				recycled.arrived = cycle
				q.segs[k] = append(q.segs[k], recycled)
				q.catchUp(recycled, k)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen: removing the entry freed a slot that the
			// forced promotions can only have cascaded upward.
			recycled.seg = 0
			recycled.arrived = cycle // may not issue in its recycling cycle
			q.segs[0] = append(q.segs[0], recycled)
		}
	}
}

func (q *SegmentedIQ) anyReady(k int, cycle int64) bool {
	for _, e := range q.segs[k] {
		if e.u.IssueReady(cycle) {
			return true
		}
	}
	return false
}

// SegmentLen returns the occupancy of segment k (tests and occupancy
// reports).
func (q *SegmentedIQ) SegmentLen(k int) int { return len(q.segs[k]) }

// DelayOf returns the current effective delay value of a dispatched
// instruction, or -1 if it is not (or no longer) queued here. Diagnostic
// and walkthrough use.
func (q *SegmentedIQ) DelayOf(u *uop.UOp) int {
	if e, ok := u.IQ.(*entry); ok && e != nil {
		return e.effDelay()
	}
	return -1
}

// SegmentOf returns the segment index holding a dispatched instruction,
// or -1 if it is not queued here.
func (q *SegmentedIQ) SegmentOf(u *uop.UOp) int {
	e, ok := u.IQ.(*entry)
	if !ok || e == nil {
		return -1
	}
	for _, x := range q.segs[e.seg] {
		if x == e {
			return e.seg
		}
	}
	return -1
}

// ChainsInUse returns the number of currently allocated chains.
func (q *SegmentedIQ) ChainsInUse() int { return q.chains.inUse }

// CollectStats implements iq.Queue.
func (q *SegmentedIQ) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.stDispatched.Value()))
	s.Put("iq_issued", float64(q.stIssued.Value()))
	s.Put("iq_stall_full", float64(q.stStallFull.Value()))
	s.Put("iq_stall_nochain", float64(q.stStallNoChain.Value()))
	s.Put("iq_promotions", float64(q.stPromotions.Value()))
	s.Put("iq_pushdowns", float64(q.stPushdowns.Value()))
	s.Put("iq_occupancy_avg", q.stOccupancy.Value())
	s.Put("segments_active_avg", q.stActiveSegs.Value())
	for k := range q.stSegOcc {
		s.Put(fmt.Sprintf("seg%d_occupancy_avg", k), q.stSegOcc[k].Value())
	}
	s.Put("iq_ready_seg0_avg", q.stReadySeg0.Value())
	s.Put("iq_ready_total_avg", q.stReadyTotal.Value())
	s.Put("iq_dispatch_seg_avg", q.stDispatchSeg.Value())
	s.Put("chains_created", float64(q.chains.created.Value()))
	s.Put("chains_avg", q.chains.usage.Value())
	s.Put("chains_peak", float64(q.chains.peak.Value()))
	s.Put("chain_heads", float64(q.stHeads.Value()))
	s.Put("chain_heads_load", float64(q.stHeadLoads.Value()))
	s.Put("chain_heads_twochain", float64(q.stHeadTwoChain.Value()))
	s.Put("two_outstanding", float64(q.stTwoOutstanding.Value()))
	s.Put("two_outstanding_diff_chains", float64(q.stTwoDiffChains.Value()))
	s.Put("deadlock_cycles", float64(q.stDeadlockCycles.Value()))
	s.Put("deadlock_recoveries", float64(q.stRecoveries.Value()))
	s.Put("chain_wire_assertions", float64(q.stWireAsserts.Value()))
	if q.hmp != nil {
		s.Put("hmp_hit_pred_accuracy", q.hmp.HitPredictionAccuracy())
		s.Put("hmp_hit_coverage", q.hmp.HitCoverage())
		s.Put("hmp_actual_hit_rate", q.hmp.ActualHitRate())
	}
	if q.lrp != nil {
		s.Put("lrp_accuracy", q.lrp.Accuracy())
	}
}

var _ iq.Queue = (*SegmentedIQ)(nil)
