package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/bpred"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/uop"
)

// SegmentedIQ is the paper's segmented, dependence-chain-scheduled
// instruction queue. It implements iq.Queue.
type SegmentedIQ struct {
	cfg    Config
	segs   [][]*entry // segs[0] is the bottom segment / issue buffer
	chains *chainPool
	wires  *wirePipe
	table  regTable

	hmp *bpred.HitMissPredictor
	lrp *bpred.LeftRightPredictor

	prevFree []int // per-segment free slots at the end of the previous cycle
	total    int   // occupied slots across all segments

	// Per-segment readiness scoreboard. Segments are kept seq-sorted, so
	// readyW[k] bit i == "the i-th oldest instruction in segment k is
	// issue-ready": selecting the oldest ready instruction is a
	// TrailingZeros64 walk instead of a scan-and-sort. storeW marks store
	// slots (their ready bit gates on the address operand only; the
	// occupancy statistics correct for the data operand). Bits move with
	// their entries on every promotion, pushdown, recovery move, dispatch
	// and issue, and are set by the scoreboard's event-driven wakeup.
	readyW [][]uint64
	storeW [][]uint64
	sb     iq.Scoreboard
	byID   []*entry // scoreboard handle -> entry
	nextID int32
	// unresolved holds issued producers whose completion times the
	// pipeline has not yet stamped; they resolve at the next BeginCycle
	// (the engine sets Complete right after Issue returns).
	unresolved []*uop.UOp

	// Scratch buffers reused across cycles so the steady-state cycle loop
	// (BeginCycle → Issue) does not allocate. The slice Issue returns is
	// backed by outScratch and remains valid only until the next call.
	candScratch []*entry
	outScratch  []*uop.UOp
	// moveReady/moveStore carry the candidates' bits between the batch
	// removal and batch insertion halves of moveSelected.
	moveReady []bool
	moveStore []bool
	// entryPool recycles queue entries between writeback and dispatch, so
	// steady-state dispatch allocates nothing either.
	entryPool []*entry
	// active is the number of powered segments (§7 dynamic resizing):
	// dispatch only targets segments below it; gated segments drain and
	// stay empty.
	active int

	curCycle            int64
	issuedThisCycle     int
	promotedThisCycle   int
	dispatchedThisCycle int
	recoverPending      bool

	stDispatched     stats.Counter
	stIssued         stats.Counter
	stStallFull      stats.Counter
	stStallNoChain   stats.Counter
	stPromotions     stats.Counter
	stPushdowns      stats.Counter
	stHeads          stats.Counter
	stHeadLoads      stats.Counter
	stHeadTwoChain   stats.Counter
	stTwoOutstanding stats.Counter
	stTwoDiffChains  stats.Counter
	stDeadlockCycles stats.Counter
	stRecoveries     stats.Counter
	stWireAsserts    stats.Counter
	stOccupancy      stats.Mean
	stActiveSegs     stats.Mean
	stSegOcc         []stats.Mean // per-segment occupancy
	stReadySeg0      stats.Mean
	stReadyTotal     stats.Mean
	stDispatchSeg    stats.Mean

	demChains iq.Watermark // chains-in-use high-watermark, for prefix sharing
}

// New builds a segmented IQ from cfg.
func New(cfg Config) (*SegmentedIQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &SegmentedIQ{
		cfg:      cfg,
		segs:     make([][]*entry, cfg.Segments),
		chains:   newChainPool(cfg.MaxChains),
		wires:    newWirePipe(cfg.Segments),
		table:    newRegTable(cfg.Threads),
		prevFree: make([]int, cfg.Segments),
		active:   cfg.Segments,
		stSegOcc: make([]stats.Mean, cfg.Segments),
	}
	for k := range q.prevFree {
		q.prevFree[k] = cfg.SegSize
	}
	q.readyW = make([][]uint64, cfg.Segments)
	q.storeW = make([][]uint64, cfg.Segments)
	for k := range q.readyW {
		q.readyW[k] = bitvec.New(cfg.SegSize)
		q.storeW[k] = bitvec.New(cfg.SegSize)
	}
	if cfg.UseHMP {
		q.hmp = bpred.MustNewHMP()
	}
	if cfg.UseLRP {
		q.lrp = bpred.MustNewLRP()
	}
	return q, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *SegmentedIQ {
	q, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Name implements iq.Queue.
func (q *SegmentedIQ) Name() string { return "segmented" }

// Capacity implements iq.Queue.
func (q *SegmentedIQ) Capacity() int { return q.cfg.Segments * q.cfg.SegSize }

// Len implements iq.Queue.
func (q *SegmentedIQ) Len() int { return q.total }

// ExtraDispatchStages implements iq.Queue: the paper charges the segmented
// design one extra dispatch cycle for chain assignment.
func (q *SegmentedIQ) ExtraDispatchStages() int { return 1 }

// Config returns the queue's configuration.
func (q *SegmentedIQ) Config() Config { return q.cfg }

// deliverSeg applies a signal to every entry in segment k.
func (q *SegmentedIQ) deliverSeg(k int, s signal) {
	for _, e := range q.segs[k] {
		e.observe(s)
	}
}

// catchUp delivers the signals currently present at segment k to an entry
// that just arrived there. Signals propagate upward while instructions
// move downward; without this, an instruction moving into a segment in
// the same cycle a signal sits there would cross it in flight and miss it
// permanently (e.g. a chain resume, leaving the member suspended forever).
func (q *SegmentedIQ) catchUp(e *entry, k int) {
	if q.cfg.InstantWires {
		return
	}
	for _, s := range q.wires.at(k) {
		e.observe(s)
	}
}

// assertAt asserts a chain-wire signal at segment position k. In the
// pipelined model the signal is observed by segment k now and moves one
// segment up per cycle; with InstantWires it reaches everything above k
// immediately.
//
// The register information table observes every assertion in the
// asserting cycle, with no pipeline lag: the chain wires terminate at the
// dispatch stage. A lagged table would hand newly dispatched instructions
// stale (too-high) head locations; with segment bypass those instructions
// would then wait forever for advance assertions that had already passed
// below them.
func (q *SegmentedIQ) assertAt(k int, s signal) {
	q.stWireAsserts.Inc()
	q.table.observe(s)
	if q.cfg.InstantWires {
		for kk := k; kk < q.cfg.Segments; kk++ {
			q.deliverSeg(kk, s)
		}
		return
	}
	q.wires.assert(k, s)
	q.deliverSeg(k, s)
}

// newEntry takes an entry from the pool (or allocates one), keeps its
// stable scoreboard handle across the reset, and registers it in byID.
func (q *SegmentedIQ) newEntry(u *uop.UOp, seg int, arrived int64) *entry {
	var e *entry
	if n := len(q.entryPool); n > 0 {
		e = q.entryPool[n-1]
		q.entryPool[n-1] = nil
		q.entryPool = q.entryPool[:n-1]
		id := e.id
		*e = entry{u: u, seg: seg, arrived: arrived, id: id}
	} else {
		e = &entry{u: u, seg: seg, arrived: arrived, id: q.nextID}
		q.nextID++
		q.byID = append(q.byID, nil)
		q.sb.Grow(int(q.nextID))
	}
	q.byID[e.id] = e
	return e
}

// segRemove takes e out of segment k at its recorded position, shifting
// the tail and both bitmap words down. It returns e's ready/store bits so
// a caller moving the entry to another segment can carry them along.
func (q *SegmentedIQ) segRemove(k int, e *entry) (ready, store bool) {
	i := int(e.pos)
	seg := q.segs[k]
	if i >= len(seg) || seg[i] != e {
		panic("core: entry not found in its segment")
	}
	ready = bitvec.Test(q.readyW[k], i)
	store = bitvec.Test(q.storeW[k], i)
	bitvec.Remove(q.readyW[k], i)
	bitvec.Remove(q.storeW[k], i)
	copy(seg[i:], seg[i+1:])
	seg[len(seg)-1] = nil
	seg = seg[:len(seg)-1]
	q.segs[k] = seg
	for j := i; j < len(seg); j++ {
		seg[j].pos = int32(j)
	}
	return ready, store
}

// segInsert places e into segment k at its sequence-ordered position,
// shifting the tail and bitmap words up and carrying e's ready/store bits
// with it.
func (q *SegmentedIQ) segInsert(k int, e *entry, ready, store bool) {
	seg := q.segs[k]
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seg[mid].u.Seq < e.u.Seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	seg = append(seg, nil)
	copy(seg[lo+1:], seg[lo:])
	seg[lo] = e
	q.segs[k] = seg
	bitvec.Insert(q.readyW[k], lo, ready)
	bitvec.Insert(q.storeW[k], lo, store)
	e.seg = k
	for j := lo; j < len(seg); j++ {
		seg[j].pos = int32(j)
	}
}

// setReady flips the ready bit of the entry behind scoreboard handle h.
func (q *SegmentedIQ) setReady(h int32) {
	e := q.byID[h]
	bitvec.Set(q.readyW[e.seg], int(e.pos))
}

// wakeConsumers tells the scoreboard that p's completion time resolved
// and marks every consumer that became issue-ready.
func (q *SegmentedIQ) wakeConsumers(p *uop.UOp) {
	for _, h := range q.sb.Wake(p, q.curCycle) {
		q.setReady(h)
	}
}

// advance moves the queue's internal clock to cycle: producers issued
// earlier whose completion the pipeline stamped after Issue returned
// resolve now, and readiness scheduled for this cycle comes due.
func (q *SegmentedIQ) advance(cycle int64) {
	q.curCycle = cycle
	if len(q.unresolved) > 0 {
		kept := q.unresolved[:0]
		for _, u := range q.unresolved {
			if u.Complete == uop.NotYet {
				kept = append(kept, u)
				continue
			}
			q.wakeConsumers(u)
		}
		for i := len(kept); i < len(q.unresolved); i++ {
			q.unresolved[i] = nil
		}
		q.unresolved = kept
	}
	for _, h := range q.sb.Due(cycle) {
		q.setReady(h)
	}
}

// refresh re-derives e's readiness from its instruction's current
// producers (test hook for drivers that rewrite Prod after dispatch).
func (q *SegmentedIQ) refresh(e *entry) {
	q.sb.Untrack(e.id)
	ready := q.sb.Track(e.id, e.u, q.curCycle)
	bitvec.Assign(q.readyW[e.seg], int(e.pos), ready)
}

// BeginCycle implements iq.Queue: wire propagation, self-timed countdown,
// deadlock recovery, promotion and pushdown.
func (q *SegmentedIQ) BeginCycle(cycle int64) {
	q.advance(cycle)
	q.issuedThisCycle = 0
	q.promotedThisCycle = 0
	q.dispatchedThisCycle = 0

	// Promotion this cycle may use only the slots that were free at the
	// end of the previous cycle (§3.1: availability cannot be computed and
	// propagated through the whole queue in one cycle).
	for k := range q.segs {
		q.prevFree[k] = q.cfg.SegSize - len(q.segs[k])
	}

	// Advance the pipelined chain wires one segment and deliver. (The
	// register table saw each assertion already, in its asserting cycle.)
	if !q.cfg.InstantWires {
		q.wires.shift()
		for k := 0; k < q.cfg.Segments; k++ {
			for _, s := range q.wires.at(k) {
				q.deliverSeg(k, s)
			}
		}
	}

	// Self-timed countdowns.
	for k := range q.segs {
		for _, e := range q.segs[k] {
			e.tick()
		}
	}
	q.table.tick()

	if q.recoverPending {
		q.recoverPending = false
		q.recover(cycle)
	}

	q.promote(cycle)

	// Statistics. The readiness scan walks every occupied slot, so it is
	// gated behind the sampling knob (Config.StatsEvery); it has no effect
	// on scheduling.
	if every := int64(q.cfg.StatsEvery); every <= 1 || cycle%every == 0 {
		q.sampleStats(cycle)
	}
}

// sampleStats records the per-cycle sampled statistics. It is called from
// BeginCycle on sampled cycles and replayed by SkipCycles for elided idle
// cycles, so it must not mutate scheduling state.
func (q *SegmentedIQ) sampleStats(cycle int64) {
	q.stOccupancy.Observe(float64(q.total))
	q.stActiveSegs.Observe(float64(q.active))
	for k := range q.segs {
		q.stSegOcc[k].Observe(float64(len(q.segs[k])))
	}
	// Conventional-wakeup readiness (both operands): popcount of the
	// ready words, minus ready stores whose data operand is still
	// outstanding (their ready bit gates on the address alone).
	ready0, readyAll := 0, 0
	for k := range q.segs {
		c := 0
		for wi, w := range q.readyW[k] {
			c += bits.OnesCount64(w)
			sw := w & q.storeW[k][wi]
			for sw != 0 {
				b := bits.TrailingZeros64(sw)
				sw &= sw - 1
				if !q.segs[k][wi<<6+b].u.OperandReady(0, cycle) {
					c--
				}
			}
		}
		readyAll += c
		if k == 0 {
			ready0 = c
		}
	}
	q.stReadySeg0.Observe(float64(ready0))
	q.stReadyTotal.Observe(float64(readyAll))
	q.chains.sample()
}

// Quiescent implements iq.Queue. The segmented design is frozen at the end
// of a cycle when nothing moved this cycle, no deadlock recovery is armed,
// segment 0 holds no issueable instruction, every unresolved producer has no
// completion stamped yet, the pipelined chain wires carry no in-flight
// signal, no entry arrived this cycle (it would become promotion-eligible
// next cycle), and no self-timed countdown — in an entry's chain refs or in
// a register-table row — is still ticking. Under those conditions BeginCycle
// on the elided cycles would only shift empty wire positions and run an
// empty promotion pass.
func (q *SegmentedIQ) Quiescent(cycle int64) bool {
	if q.issuedThisCycle != 0 || q.promotedThisCycle != 0 ||
		q.dispatchedThisCycle != 0 || q.recoverPending {
		return false
	}
	if bitvec.Any(q.readyW[0]) {
		return false
	}
	for _, u := range q.unresolved {
		if u.Complete != uop.NotYet {
			return false
		}
	}
	for k := range q.wires.cur {
		if len(q.wires.cur[k]) != 0 {
			return false
		}
	}
	for k := range q.segs {
		for _, e := range q.segs[k] {
			if e.arrived >= q.curCycle {
				return false
			}
			for i := 0; i < e.nrefs; i++ {
				cr := &e.refs[i]
				if cr.selfTimed && !cr.suspended && cr.delay > 0 {
					return false
				}
			}
		}
	}
	for i := range q.table {
		re := &q.table[i]
		if re.valid && re.selfTimed && !re.suspended && re.latency > 0 {
			return false
		}
	}
	return true
}

// SkipCycles implements iq.Queue: replay the state evolution BeginCycle
// would have produced on the elided cycles [from, to). With the queue
// quiescent the only effects are the wire-pipe shift (a slice-header
// rotation that must be replayed exactly for state equivalence even though
// every position is empty) and the sampled statistics.
func (q *SegmentedIQ) SkipCycles(from, to int64) {
	every := int64(q.cfg.StatsEvery)
	for x := from; x < to; x++ {
		if !q.cfg.InstantWires {
			q.wires.shift()
		}
		if every <= 1 || x%every == 0 {
			q.sampleStats(x)
		}
	}
}

// promote moves eligible instructions one segment downward, oldest first,
// bounded by inter-segment bandwidth (= issue width) and the destination
// slots free at the end of the previous cycle; then applies pushdown
// (§4.1) with any remaining bandwidth.
func (q *SegmentedIQ) promote(cycle int64) {
	for k := 1; k < q.cfg.Segments; k++ {
		dest := k - 1
		budget := q.cfg.IssueWidth
		if q.prevFree[dest] < budget {
			budget = q.prevFree[dest]
		}
		if free := q.cfg.SegSize - len(q.segs[dest]); free < budget {
			budget = free
		}
		if budget <= 0 {
			continue
		}
		thr := threshold(dest)
		moved := q.moveSelected(k, dest, budget, cycle, false, func(e *entry) bool {
			return e.arrived < cycle && e.effDelay() < thr
		})
		budget -= moved

		if q.cfg.Pushdown && budget > 0 {
			freeK := q.cfg.SegSize - len(q.segs[k])
			freeDest := q.cfg.SegSize - len(q.segs[dest])
			// §4.1: the upper segment has fewer than IW free entries and
			// the one below has more than 1.5*IW free entries.
			if freeK < q.cfg.IssueWidth && 2*freeDest > 3*q.cfg.IssueWidth {
				n := budget
				if n > q.cfg.IssueWidth {
					n = q.cfg.IssueWidth
				}
				q.moveSelected(k, dest, n, cycle, true, func(e *entry) bool {
					return e.arrived < cycle && e.effDelay() >= thr
				})
			}
		}
	}
}

// moveSelected moves up to n entries matching pick from segment k to
// segment dest, oldest (lowest sequence number) first, asserting chain
// wires for promoted heads. It returns the number moved.
func (q *SegmentedIQ) moveSelected(k, dest, n int, cycle int64, pushdown bool, pick func(*entry) bool) int {
	// The segment is seq-sorted, so collecting in order with an early
	// break selects the n oldest matches.
	cand := q.candScratch[:0]
	for _, e := range q.segs[k] {
		if pick(e) {
			cand = append(cand, e)
			if len(cand) == n {
				break
			}
		}
	}
	if len(cand) == 0 {
		q.candScratch = cand
		return 0
	}
	q.removeBatch(k, cand)
	for idx, e := range cand {
		e.arrived = cycle
		e.pushedDown = pushdown
		q.catchUp(e, dest)
		if e.isHead {
			s := signal{ch: e.head, typ: sigAdvance}
			q.assertAt(k, s)
			// Later candidates were still resident in segment k when this
			// head's wire fired; the batch removal already took them out
			// of the segment list, so deliver to them by hand.
			for _, e2 := range cand[idx+1:] {
				e2.observe(s)
			}
		}
		q.promotedThisCycle++
		if pushdown {
			q.stPushdowns.Inc()
		} else {
			q.stPromotions.Inc()
		}
	}
	q.insertBatch(dest, cand)
	moved := len(cand)
	for i := range cand {
		cand[i] = nil
	}
	q.candScratch = cand[:0]
	return moved
}

// removeBatch takes the candidates — in ascending position order, as
// collected — out of segment k with a single compaction pass over the
// slice and bit words, stashing each candidate's ready/store bits in
// moveReady/moveStore for insertBatch.
func (q *SegmentedIQ) removeBatch(k int, cand []*entry) {
	q.moveReady = q.moveReady[:0]
	q.moveStore = q.moveStore[:0]
	seg := q.segs[k]
	rw, sw := q.readyW[k], q.storeW[k]
	n := len(cand)
	p := int(cand[0].pos)
	if int(cand[n-1].pos) == p+n-1 {
		// The candidates occupy a contiguous run (the usual promotion
		// pattern: the n oldest, all eligible): one bulk copy shifts the
		// tail, one pass fixes positions and bits.
		for j := 0; j < n; j++ {
			q.moveReady = append(q.moveReady, bitvec.Test(rw, p+j))
			q.moveStore = append(q.moveStore, bitvec.Test(sw, p+j))
		}
		copy(seg[p:], seg[p+n:])
		last := len(seg) - n
		for j := p; j < last; j++ {
			seg[j].pos = int32(j)
			bitvec.Assign(rw, j, bitvec.Test(rw, j+n))
			bitvec.Assign(sw, j, bitvec.Test(sw, j+n))
		}
		for j := last; j < len(seg); j++ {
			seg[j] = nil
			bitvec.Clear(rw, j)
			bitvec.Clear(sw, j)
		}
		q.segs[k] = seg[:last]
		return
	}
	ci := 0
	w := p
	for r := w; r < len(seg); r++ {
		e := seg[r]
		if ci < n && e == cand[ci] {
			q.moveReady = append(q.moveReady, bitvec.Test(rw, r))
			q.moveStore = append(q.moveStore, bitvec.Test(sw, r))
			ci++
			continue
		}
		seg[w] = e
		e.pos = int32(w)
		bitvec.Assign(rw, w, bitvec.Test(rw, r))
		bitvec.Assign(sw, w, bitvec.Test(sw, r))
		w++
	}
	for j := w; j < len(seg); j++ {
		seg[j] = nil
		bitvec.Clear(rw, j)
		bitvec.Clear(sw, j)
	}
	q.segs[k] = seg[:w]
}

// insertBatch merges the candidates (seq-sorted, with their bits in
// moveReady/moveStore) into segment dest with a single backward merge
// over the slice and bit words. In the common promotion pattern the
// incoming instructions are all younger than the destination's residents,
// so the merge degenerates to an append.
func (q *SegmentedIQ) insertBatch(dest int, cand []*entry) {
	seg := q.segs[dest]
	d := len(seg)
	for range cand {
		seg = append(seg, nil)
	}
	rw, sw := q.readyW[dest], q.storeW[dest]
	i, w := d-1, len(seg)-1
	for j := len(cand) - 1; j >= 0; w-- {
		if i >= 0 && seg[i].u.Seq > cand[j].u.Seq {
			e := seg[i]
			seg[w] = e
			e.pos = int32(w)
			bitvec.Assign(rw, w, bitvec.Test(rw, i))
			bitvec.Assign(sw, w, bitvec.Test(sw, i))
			i--
			continue
		}
		e := cand[j]
		seg[w] = e
		e.seg = dest
		e.pos = int32(w)
		bitvec.Assign(rw, w, q.moveReady[j])
		bitvec.Assign(sw, w, q.moveStore[j])
		j--
	}
	q.segs[dest] = seg
}

// removeFromSegment takes e out of segment k and stops tracking its
// readiness: the entry is leaving the queue segments for good.
func (q *SegmentedIQ) removeFromSegment(k int, e *entry) {
	q.segRemove(k, e)
	q.sb.Untrack(e.id)
}

// Issue implements iq.Queue: wakeup/select over the bottom segment only,
// oldest ready first — a TrailingZeros64 walk of the seq-ordered ready
// word. Issuing chain heads assert their wire at segment 0 (members with
// head location zero enter self-timed mode). The returned slice is owned
// by the queue and valid until the next call.
func (q *SegmentedIQ) Issue(cycle int64, max int, tryIssue func(*uop.UOp) bool) []*uop.UOp {
	if cycle != q.curCycle {
		// Drivers that skip BeginCycle (unit tests) still get wakes
		// evaluated at the issue cycle.
		q.advance(cycle)
	}
	cand := q.candScratch[:0]
	for wi, w := range q.readyW[0] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			e := q.segs[0][wi<<6+b]
			if e.arrived < cycle {
				cand = append(cand, e)
			}
		}
	}
	out := q.outScratch[:0]
	for _, e := range cand {
		if len(out) >= max {
			break
		}
		if !tryIssue(e.u) {
			continue
		}
		e.u.IssueCycle = cycle
		q.removeFromSegment(0, e)
		q.total--
		out = append(out, e.u)
		if e.u.Inst.HasDest() {
			// The pipeline stamps Complete after Issue returns; resolve
			// the completion for waiting consumers at the next advance.
			q.unresolved = append(q.unresolved, e.u)
		}
		if e.isHead {
			q.assertAt(0, signal{ch: e.head, typ: sigAdvance})
		}
		q.trainLRP(e)
	}
	for i := range cand {
		cand[i] = nil
	}
	q.candScratch = cand[:0]
	q.outScratch = out
	q.issuedThisCycle += len(out)
	q.stIssued.Add(uint64(len(out)))
	return out
}

// trainLRP scores and trains the left/right predictor once both operand
// arrival times are known (they are, at issue).
func (q *SegmentedIQ) trainLRP(e *entry) {
	if !e.lrpTracked || q.lrp == nil {
		return
	}
	u := e.u
	if u.Prod[0] == nil || u.Prod[1] == nil {
		return
	}
	t0, t1 := u.OperandReadyTime(0), u.OperandReadyTime(1)
	if t0 == t1 {
		return // no information in a tie
	}
	q.lrp.Update(u.Inst.PC, t0 > t1)
}

// SetActiveSegments gates the queue to its bottom n segments (§7 dynamic
// resizing by clock/power gating at segment granularity). Dispatch stops
// targeting gated segments immediately; instructions already above the
// active region keep promoting downward until it drains. n is clamped to
// [1, Segments].
func (q *SegmentedIQ) SetActiveSegments(n int) {
	if n < 1 {
		n = 1
	}
	if n > q.cfg.Segments {
		n = q.cfg.Segments
	}
	q.active = n
}

// ActiveSegments returns the number of powered segments.
func (q *SegmentedIQ) ActiveSegments() int { return q.active }

// dispatchTarget picks the segment a new instruction enters: with bypass
// (§4.2), the highest non-empty segment (or the bottom if the queue is
// empty), overflowing into the empty segment above it when full; without
// bypass, always the top (active) segment.
func (q *SegmentedIQ) dispatchTarget() (int, bool) {
	top := q.active - 1
	if !q.cfg.Bypass {
		if len(q.segs[top]) >= q.cfg.SegSize {
			return 0, false
		}
		return top, true
	}
	hi := -1
	for k := top; k >= 0; k-- {
		if len(q.segs[k]) > 0 {
			hi = k
			break
		}
	}
	switch {
	case hi == -1:
		return 0, true
	case len(q.segs[hi]) < q.cfg.SegSize:
		return hi, true
	case hi < top:
		return hi + 1, true
	default:
		return 0, false
	}
}

// refFrom derives a chain membership from a register-table row.
func refFrom(re regEntry) chainRef {
	if re.selfTimed {
		return chainRef{ch: re.ch, delay: re.latency, selfTimed: true, suspended: re.suspended}
	}
	// §3.3: delay is initialised to 2*S_H + D_H.
	return chainRef{ch: re.ch, delay: 2*re.headLoc + re.latency, headLoc: re.headLoc}
}

// Dispatch implements iq.Queue: chain assignment via the register
// information table, delay-value initialisation, chain-head creation
// (loads, and two-outstanding-operand instructions in the base design),
// and placement with segment bypass. Returns false — with no state
// changed — when the target segment is full or no chain wire is free.
func (q *SegmentedIQ) Dispatch(cycle int64, u *uop.UOp) bool {
	// Collect the outstanding source operands and snapshot their rows
	// (the destination update below may overwrite a row aliased by a
	// source).
	type srcOut struct {
		j  int
		re regEntry
	}
	var outsArr [2]srcOut
	outs := outsArr[:0]
	for j := 0; j < 2; j++ {
		if j == 0 && u.IsStore() {
			// A store's delay value tracks only its address operand: the
			// EA calculation is what the IQ schedules; the data drains
			// through the LSQ.
			continue
		}
		r := u.Src(j)
		if r == isa.RegNone || r == isa.RegZero {
			continue
		}
		re := q.table.row(u.Thread, r)
		if re.outstanding() {
			outs = append(outs, srcOut{j: j, re: *re})
		}
	}

	isLoad := u.IsLoad()
	predHit := false
	if isLoad && q.hmp != nil {
		predHit = q.hmp.PredictHit(u.Inst.PC)
	}
	needHead := isLoad && !predHit
	headIsLoad := needHead

	twoDiff := len(outs) == 2 &&
		outs[0].re.ch.real() && outs[1].re.ch.real() && outs[0].re.ch != outs[1].re.ch
	if twoDiff && q.lrp == nil {
		// Base design (§3.4): an instruction following two chains must
		// itself head a new chain.
		needHead = true
	}

	target, ok := q.dispatchTarget()
	if !ok {
		q.stStallFull.Inc()
		return false
	}

	hd := chainNone
	if needHead {
		c, allocOK := q.chains.alloc()
		if !allocOK {
			q.stStallNoChain.Inc()
			return false
		}
		hd = c
		q.demChains.Observe(cycle, int64(q.chains.inUse))
	}

	// Commit point: no stalls past here.
	e := q.newEntry(u, target, cycle)
	e.isHead = needHead
	e.head = hd
	if len(outs) == 2 {
		q.stTwoOutstanding.Inc()
		if twoDiff {
			q.stTwoDiffChains.Inc()
		}
	}

	switch {
	case len(outs) == 0:
		// Both operands available: delay 0, no chain membership.
	case len(outs) == 1:
		e.refs[0] = refFrom(outs[0].re)
		e.nrefs = 1
	case q.lrp != nil:
		// §4.3: with the LRP each instruction follows at most one chain —
		// the operand predicted to arrive later.
		left := q.lrp.PredictLeftLater(u.Inst.PC)
		e.lrpTracked = true
		pick := outs[1]
		if left {
			pick = outs[0]
		}
		e.refs[0] = refFrom(pick.re)
		e.nrefs = 1
	case outs[0].re.ch.real() && outs[0].re.ch == outs[1].re.ch:
		// Both operands on the same chain: one membership, larger delay.
		a, b := refFrom(outs[0].re), refFrom(outs[1].re)
		if b.delay > a.delay {
			a = b
		}
		e.refs[0] = a
		e.nrefs = 1
	default:
		// Two memberships (§3.2); the larger delay value controls.
		e.refs[0] = refFrom(outs[0].re)
		e.refs[1] = refFrom(outs[1].re)
		e.nrefs = 2
	}

	if u.Inst.HasDest() {
		predLat := u.Latency()
		if isLoad {
			predLat = q.cfg.PredictedLoadLatency
		}
		de := q.table.row(u.Thread, u.Inst.Dest)
		switch {
		case needHead:
			*de = regEntry{valid: true, producer: u, ch: hd, latency: predLat, headLoc: target}
		case e.nrefs > 0:
			cr := e.refs[0]
			if e.nrefs == 2 && e.refs[1].delay > cr.delay {
				cr = e.refs[1]
			}
			if cr.selfTimed {
				*de = regEntry{valid: true, producer: u, ch: cr.ch,
					latency: cr.delay + predLat, selfTimed: true, suspended: cr.suspended}
			} else {
				// Latency relative to head issue: the controlling
				// operand's latency-from-head plus this instruction's
				// own latency.
				*de = regEntry{valid: true, producer: u, ch: cr.ch,
					latency: cr.delay - 2*cr.headLoc + predLat, headLoc: cr.headLoc}
			}
		default:
			// Fully predictable: expected to issue after draining ~one
			// segment per cycle from its dispatch segment.
			*de = regEntry{valid: true, producer: u, ch: chainNone,
				latency: target + predLat, selfTimed: true}
		}
	}

	u.DispatchCycle = cycle
	u.IQ = e
	q.segInsert(target, e, q.sb.Track(e.id, u, cycle), u.IsStore())
	q.catchUp(e, target)
	q.total++
	q.dispatchedThisCycle++
	q.stDispatched.Inc()
	q.stDispatchSeg.Observe(float64(target))
	if needHead {
		q.stHeads.Inc()
		if headIsLoad {
			q.stHeadLoads.Inc()
		} else {
			q.stHeadTwoChain.Inc()
		}
	}
	return true
}

// NotifyLoadMiss implements iq.Queue: the chain head discovered it will
// not complete within its predicted latency; members suspend self-timing
// (§3.4). The signal originates at the bottom of the queue and propagates
// up the chain wire.
func (q *SegmentedIQ) NotifyLoadMiss(cycle int64, u *uop.UOp) {
	e, ok := u.IQ.(*entry)
	if !ok || e == nil || !e.isHead {
		return
	}
	q.assertAt(0, signal{ch: e.head, typ: sigSuspend})
}

// NotifyLoadComplete implements iq.Queue: a final chain-wire signal
// resumes self-timed mode; the hit/miss predictor is trained.
func (q *SegmentedIQ) NotifyLoadComplete(cycle int64, u *uop.UOp) {
	q.wakeConsumers(u)
	if q.hmp != nil && u.IsLoad() {
		q.hmp.Update(u.Inst.PC, u.MemKind == uop.MemHit)
	}
	e, ok := u.IQ.(*entry)
	if !ok || e == nil || !e.isHead {
		return
	}
	q.assertAt(0, signal{ch: e.head, typ: sigResume})
}

// Writeback implements iq.Queue: chains are deallocated when the head
// writes its result back to the register file; the register table row is
// released if this instruction is still its producer.
func (q *SegmentedIQ) Writeback(cycle int64, u *uop.UOp) {
	q.wakeConsumers(u)
	q.table.clearProducer(u)
	e, ok := u.IQ.(*entry)
	if !ok || e == nil {
		return
	}
	if e.isHead {
		q.chains.release(e.head)
		e.isHead = false
	}
	u.IQ = nil
	// The entry left the queue segments at issue and its last external
	// reference (u.IQ) is gone: recycle it.
	e.u = nil
	q.entryPool = append(q.entryPool, e)
}

// EndCycle implements iq.Queue: deadlock detection (§4.5). A deadlock is
// declared when the queue holds instructions but nothing issued, promoted
// or dispatched this cycle and nothing is executing elsewhere in the
// machine; recovery runs at the start of the next cycle.
func (q *SegmentedIQ) EndCycle(cycle int64, machineActive bool) {
	if q.total > 0 && q.issuedThisCycle == 0 && q.promotedThisCycle == 0 &&
		q.dispatchedThisCycle == 0 && !machineActive {
		q.stDeadlockCycles.Inc()
		if q.cfg.DeadlockRecovery {
			q.recoverPending = true
		}
	}
}

// recover implements §4.5: every full segment is forced to promote one
// instruction (eligible candidates preferred), and if the bottom segment
// is full of non-ready instructions, one is recycled to the top of the
// queue, guaranteeing the oldest ready instruction can eventually reach
// segment 0.
func (q *SegmentedIQ) recover(cycle int64) {
	q.stRecoveries.Inc()

	var recycled *entry
	var recycledReady, recycledStore bool
	if len(q.segs[0]) >= q.cfg.SegSize && !q.anyReady(0, cycle) {
		oldest := q.segs[0][0] // seq-sorted: slot 0 is the oldest
		recycledReady, recycledStore = q.segRemove(0, oldest)
		recycled = oldest
	}

	// Force one promotion across every segment boundary with room below.
	// The paper forces promotions out of *full* segments; we extend the
	// forced pass to any non-empty segment so that recovery also clears
	// wedges where delay values have gone stale without filling the queue
	// (the queue is already known to be making no progress).
	for k := 1; k < q.cfg.Segments; k++ {
		if len(q.segs[k]) == 0 || len(q.segs[k-1]) >= q.cfg.SegSize {
			continue
		}
		thr := threshold(k - 1)
		// Prefer an eligible instruction; otherwise force the oldest.
		moved := q.moveSelected(k, k-1, 1, cycle, false, func(e *entry) bool {
			return e.effDelay() < thr
		})
		if moved == 0 {
			q.moveSelected(k, k-1, 1, cycle, true, func(e *entry) bool { return true })
		}
	}

	if recycled != nil {
		placed := false
		for k := q.cfg.Segments - 1; k >= 0; k-- {
			if len(q.segs[k]) < q.cfg.SegSize {
				recycled.arrived = cycle
				q.segInsert(k, recycled, recycledReady, recycledStore)
				q.catchUp(recycled, k)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen: removing the entry freed a slot that the
			// forced promotions can only have cascaded upward.
			recycled.arrived = cycle // may not issue in its recycling cycle
			q.segInsert(0, recycled, recycledReady, recycledStore)
		}
	}
}

func (q *SegmentedIQ) anyReady(k int, cycle int64) bool {
	return bitvec.Any(q.readyW[k])
}

// SegmentLen returns the occupancy of segment k (tests and occupancy
// reports).
func (q *SegmentedIQ) SegmentLen(k int) int { return len(q.segs[k]) }

// DelayOf returns the current effective delay value of a dispatched
// instruction, or -1 if it is not (or no longer) queued here. Diagnostic
// and walkthrough use.
func (q *SegmentedIQ) DelayOf(u *uop.UOp) int {
	if e, ok := u.IQ.(*entry); ok && e != nil {
		return e.effDelay()
	}
	return -1
}

// SegmentOf returns the segment index holding a dispatched instruction,
// or -1 if it is not queued here.
func (q *SegmentedIQ) SegmentOf(u *uop.UOp) int {
	e, ok := u.IQ.(*entry)
	if !ok || e == nil {
		return -1
	}
	for _, x := range q.segs[e.seg] {
		if x == e {
			return e.seg
		}
	}
	return -1
}

// ChainsInUse returns the number of currently allocated chains.
func (q *SegmentedIQ) ChainsInUse() int { return q.chains.inUse }

// Demands implements iq.Queue: the chain-wire high-watermark, which is
// the dimension a MaxChains sweep tightens.
func (q *SegmentedIQ) Demands() []iq.DemandCurve {
	return []iq.DemandCurve{{Dim: "chains", Steps: q.demChains.Steps}}
}

// CloneBounded implements iq.Queue: the segmented design's sweep bound is
// MaxChains. Wire ids are drawn lowest-first and recycled LIFO, so the
// allocation sequence is bound-independent until the watermark crosses;
// cloneBounded rebuilds the free list a cold run under the tighter bound
// would hold and verifies the watermark never crossed it.
func (q *SegmentedIQ) CloneBounded(m *uop.CloneMap, bound int) (iq.Queue, bool) {
	if bound == q.cfg.MaxChains {
		return q.Clone(m), true
	}
	if bound <= 0 {
		// Unlimited (0) is a loosening, never a sweep sibling of a
		// bounded reference.
		return nil, false
	}
	chains, ok := q.chains.cloneBounded(bound)
	if !ok {
		return nil, false
	}
	n := q.Clone(m).(*SegmentedIQ)
	n.chains = chains
	n.cfg.MaxChains = bound
	return n, true
}

// CollectStats implements iq.Queue.
func (q *SegmentedIQ) CollectStats(s *stats.Set) {
	s.Put("iq_dispatched", float64(q.stDispatched.Value()))
	s.Put("iq_issued", float64(q.stIssued.Value()))
	s.Put("iq_stall_full", float64(q.stStallFull.Value()))
	s.Put("iq_stall_nochain", float64(q.stStallNoChain.Value()))
	s.Put("iq_promotions", float64(q.stPromotions.Value()))
	s.Put("iq_pushdowns", float64(q.stPushdowns.Value()))
	s.Put("iq_occupancy_avg", q.stOccupancy.Value())
	s.Put("segments_active_avg", q.stActiveSegs.Value())
	for k := range q.stSegOcc {
		s.Put(fmt.Sprintf("seg%d_occupancy_avg", k), q.stSegOcc[k].Value())
	}
	s.Put("iq_ready_seg0_avg", q.stReadySeg0.Value())
	s.Put("iq_ready_total_avg", q.stReadyTotal.Value())
	s.Put("iq_dispatch_seg_avg", q.stDispatchSeg.Value())
	s.Put("chains_created", float64(q.chains.created.Value()))
	s.Put("chains_avg", q.chains.usage.Value())
	s.Put("chains_peak", float64(q.chains.peak.Value()))
	s.Put("chain_heads", float64(q.stHeads.Value()))
	s.Put("chain_heads_load", float64(q.stHeadLoads.Value()))
	s.Put("chain_heads_twochain", float64(q.stHeadTwoChain.Value()))
	s.Put("two_outstanding", float64(q.stTwoOutstanding.Value()))
	s.Put("two_outstanding_diff_chains", float64(q.stTwoDiffChains.Value()))
	s.Put("deadlock_cycles", float64(q.stDeadlockCycles.Value()))
	s.Put("deadlock_recoveries", float64(q.stRecoveries.Value()))
	s.Put("chain_wire_assertions", float64(q.stWireAsserts.Value()))
	if q.hmp != nil {
		s.Put("hmp_hit_pred_accuracy", q.hmp.HitPredictionAccuracy())
		s.Put("hmp_hit_coverage", q.hmp.HitCoverage())
		s.Put("hmp_actual_hit_rate", q.hmp.ActualHitRate())
	}
	if q.lrp != nil {
		s.Put("lrp_accuracy", q.lrp.Accuracy())
	}
}

var _ iq.Queue = (*SegmentedIQ)(nil)
