package core

import (
	"repro/internal/stats"
)

// chain identifies an allocated chain wire. Wires are recycled, so a
// generation number distinguishes a wire's current use from signals still
// in flight from a previous use.
type chain struct {
	id  int
	gen uint32
}

// chainNone marks membership in no chain: a purely self-timed delay
// counter for instructions whose latency was fully predictable at
// dispatch.
var chainNone = chain{id: -1}

// real reports whether the chain refers to an actual chain wire.
func (c chain) real() bool { return c.id >= 0 }

// chainPool allocates and frees chain wires, tracking the usage statistics
// of Table 2 (average and peak chains in use).
type chainPool struct {
	max   int // 0 = unlimited
	free  []int
	gens  []uint32
	inUse int

	usage   stats.Mean // sampled once per cycle by the owner
	peak    stats.Peak
	created stats.Counter
}

func newChainPool(max int) *chainPool {
	p := &chainPool{max: max}
	if max > 0 {
		p.gens = make([]uint32, max)
		p.free = make([]int, max)
		for i := range p.free {
			p.free[i] = max - 1 - i // allocate low ids first
		}
	}
	return p
}

// alloc returns a fresh chain, or ok=false if every wire is busy.
func (p *chainPool) alloc() (chain, bool) {
	var id int
	if p.max > 0 {
		if len(p.free) == 0 {
			return chainNone, false
		}
		id = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	} else {
		if len(p.free) > 0 {
			id = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
		} else {
			id = len(p.gens)
			p.gens = append(p.gens, 0)
		}
	}
	p.inUse++
	p.peak.Set(int64(p.inUse))
	p.created.Inc()
	return chain{id: id, gen: p.gens[id]}, true
}

// cloneBounded clones the pool refitted to a tighter wire budget, as if
// it had run the same allocate/release history with max=bound. Ids are
// drawn lowest-first from a descending initial free list and recycled by
// appending, so after T = peak distinct ids were touched the free list is
// exactly [max-1 … T] followed by the released ids in historical order —
// only the untouched descending prefix depends on max. Valid only while
// the peak never exceeded bound (a cold run at bound would have behaved
// differently past that point); ok=false otherwise.
func (p *chainPool) cloneBounded(bound int) (*chainPool, bool) {
	t := int(p.peak.Value())
	if t > bound {
		return nil, false
	}
	n := new(chainPool)
	*n = *p
	n.max = bound
	untouched := 0
	if p.max > 0 {
		untouched = p.max - t
	}
	released := p.free[untouched:]
	n.free = make([]int, 0, bound-t+len(released))
	for id := bound - 1; id >= t; id-- {
		n.free = append(n.free, id)
	}
	n.free = append(n.free, released...)
	n.gens = make([]uint32, bound)
	if t <= len(p.gens) {
		copy(n.gens, p.gens[:t])
	} else {
		copy(n.gens, p.gens)
	}
	return n, true
}

// release returns a chain's wire to the pool and bumps its generation so
// in-flight signals from this use are ignored by later users.
func (p *chainPool) release(c chain) {
	if !c.real() {
		return
	}
	p.gens[c.id]++
	p.free = append(p.free, c.id)
	p.inUse--
}

// sample records the current usage level for the per-cycle average.
func (p *chainPool) sample() { p.usage.Observe(float64(p.inUse)) }

// sigType is the kind of event a chain head broadcasts on its wire.
type sigType uint8

const (
	// sigAdvance: the head was promoted one segment, or issued (observed
	// with head location zero). Members decrement their delay by two and
	// their head location by one, or enter self-timed mode.
	sigAdvance sigType = iota
	// sigSuspend: the head (a load) was discovered not to complete within
	// its predicted latency; members pause self-timing (§3.4).
	sigSuspend
	// sigResume: the head completed; members resume self-timing.
	sigResume
)

// signal is one chain-wire assertion.
type signal struct {
	ch  chain
	typ sigType
}

// wirePipe models the pipelined chain wires of §3.3: the signals asserted
// in segment k during a cycle are observed by segment k's entries that
// cycle and by segment k+1's entries the next cycle. Position Segments
// (one past the top segment) is the register information table in the
// dispatch stage.
type wirePipe struct {
	nSegs int
	// cur[k] holds the signals present in segment k this cycle; cur[nSegs]
	// is the table position.
	cur [][]signal
}

func newWirePipe(nSegs int) *wirePipe {
	return &wirePipe{nSegs: nSegs, cur: make([][]signal, nSegs+1)}
}

// shift advances every signal one position upward. Signals leaving the
// table position vanish; their slice's storage is recycled as the new
// (empty) bottom position, so steady-state shifting allocates nothing.
func (w *wirePipe) shift() {
	top := w.cur[w.nSegs]
	copy(w.cur[1:], w.cur[:w.nSegs])
	if top != nil {
		top = top[:0]
	}
	w.cur[0] = top
}

// assert adds a signal at segment position k for this cycle.
func (w *wirePipe) assert(k int, s signal) {
	w.cur[k] = append(w.cur[k], s)
}

// at returns the signals present at position k this cycle.
func (w *wirePipe) at(k int) []signal { return w.cur[k] }
