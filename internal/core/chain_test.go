package core

import (
	"testing"
	"testing/quick"
)

func TestChainPoolLimited(t *testing.T) {
	p := newChainPool(2)
	a, ok := p.alloc()
	if !ok || !a.real() {
		t.Fatal("first alloc failed")
	}
	b, ok := p.alloc()
	if !ok {
		t.Fatal("second alloc failed")
	}
	if _, ok := p.alloc(); ok {
		t.Fatal("alloc beyond limit succeeded")
	}
	if p.inUse != 2 {
		t.Fatalf("inUse = %d", p.inUse)
	}
	p.release(a)
	c, ok := p.alloc()
	if !ok {
		t.Fatal("alloc after release failed")
	}
	if c.id != a.id {
		t.Fatalf("expected wire reuse, got id %d want %d", c.id, a.id)
	}
	if c.gen == a.gen {
		t.Fatal("generation must change on reuse")
	}
	if c == a {
		t.Fatal("reused chain must not compare equal to its prior use")
	}
	p.release(b)
	p.release(c)
	if p.inUse != 0 {
		t.Fatalf("inUse after all releases = %d", p.inUse)
	}
	if p.peak.Value() != 2 {
		t.Fatalf("peak = %d", p.peak.Value())
	}
	if p.created.Value() != 3 {
		t.Fatalf("created = %d", p.created.Value())
	}
}

func TestChainPoolUnlimited(t *testing.T) {
	p := newChainPool(0)
	seen := map[int]bool{}
	var chains []chain
	for i := 0; i < 100; i++ {
		c, ok := p.alloc()
		if !ok {
			t.Fatal("unlimited pool refused allocation")
		}
		if seen[c.id] {
			t.Fatalf("duplicate live id %d", c.id)
		}
		seen[c.id] = true
		chains = append(chains, c)
	}
	for _, c := range chains {
		p.release(c)
	}
	if p.inUse != 0 {
		t.Fatal("inUse not zero after releases")
	}
	// Reuse after release works and bumps generation.
	c, _ := p.alloc()
	if !seen[c.id] {
		t.Fatal("unlimited pool should reuse freed ids")
	}
}

func TestChainNone(t *testing.T) {
	if chainNone.real() {
		t.Fatal("chainNone must not be real")
	}
	p := newChainPool(1)
	p.release(chainNone) // must be a no-op
	if _, ok := p.alloc(); !ok {
		t.Fatal("pool corrupted by releasing chainNone")
	}
}

// Property: pool usage accounting never goes negative and peak tracks max.
func TestChainPoolAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := newChainPool(8)
		var live []chain
		maxLive := 0
		for _, doAlloc := range ops {
			if doAlloc {
				if c, ok := p.alloc(); ok {
					live = append(live, c)
				}
			} else if len(live) > 0 {
				p.release(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if len(live) > maxLive {
				maxLive = len(live)
			}
			if p.inUse != len(live) || p.inUse < 0 {
				return false
			}
		}
		return p.peak.Value() == int64(maxLive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainRefObserve(t *testing.T) {
	ch := chain{id: 3, gen: 1}
	cr := chainRef{ch: ch, delay: 7, headLoc: 2}

	// Advance: delay -2, headLoc -1.
	cr.observe(signal{ch: ch, typ: sigAdvance})
	if cr.delay != 5 || cr.headLoc != 1 || cr.selfTimed {
		t.Fatalf("after advance: %+v", cr)
	}
	// Signals for other chains (or other generations) are ignored.
	cr.observe(signal{ch: chain{id: 3, gen: 2}, typ: sigAdvance})
	cr.observe(signal{ch: chain{id: 4, gen: 1}, typ: sigAdvance})
	if cr.delay != 5 || cr.headLoc != 1 {
		t.Fatalf("foreign signal applied: %+v", cr)
	}
	// Second advance reaches headLoc 0.
	cr.observe(signal{ch: ch, typ: sigAdvance})
	if cr.delay != 3 || cr.headLoc != 0 || cr.selfTimed {
		t.Fatalf("after second advance: %+v", cr)
	}
	// Advance with headLoc 0 is the issue assertion: self-timed mode.
	cr.observe(signal{ch: ch, typ: sigAdvance})
	if !cr.selfTimed || cr.delay != 3 {
		t.Fatalf("issue assertion mishandled: %+v", cr)
	}
	// Self-timed countdown.
	cr.tick()
	cr.tick()
	if cr.delay != 1 {
		t.Fatalf("after ticks: %+v", cr)
	}
	// Suspend pauses, resume continues.
	cr.observe(signal{ch: ch, typ: sigSuspend})
	cr.tick()
	if cr.delay != 1 {
		t.Fatal("tick while suspended changed delay")
	}
	cr.observe(signal{ch: ch, typ: sigResume})
	cr.tick()
	if cr.delay != 0 {
		t.Fatal("resume did not restart countdown")
	}
	// Delay floors at zero.
	cr.tick()
	if cr.delay != 0 {
		t.Fatal("delay went negative")
	}
	// Stale advance after self-timed is ignored.
	cr.observe(signal{ch: ch, typ: sigAdvance})
	if cr.delay != 0 || !cr.selfTimed {
		t.Fatal("stale advance applied")
	}
}

func TestChainRefDelayFloor(t *testing.T) {
	ch := chain{id: 1}
	cr := chainRef{ch: ch, delay: 1, headLoc: 3}
	cr.observe(signal{ch: ch, typ: sigAdvance})
	if cr.delay != 0 {
		t.Fatalf("delay = %d, want floor 0", cr.delay)
	}
	if cr.headLoc != 2 {
		t.Fatalf("headLoc = %d", cr.headLoc)
	}
}

func TestWirePipe(t *testing.T) {
	w := newWirePipe(3)
	ch := chain{id: 5}
	w.assert(0, signal{ch: ch, typ: sigAdvance})
	if len(w.at(0)) != 1 {
		t.Fatal("signal not present at origin")
	}
	w.shift()
	if len(w.at(0)) != 0 || len(w.at(1)) != 1 {
		t.Fatal("signal did not move to position 1")
	}
	w.shift()
	w.shift()
	// Now at position 3 = the register-table position.
	if len(w.at(3)) != 1 {
		t.Fatal("signal did not reach the table position")
	}
	w.shift()
	for k := 0; k <= 3; k++ {
		if len(w.at(k)) != 0 {
			t.Fatal("signal did not vanish past the table")
		}
	}
}

func TestRegEntry(t *testing.T) {
	ch := chain{id: 2}
	re := regEntry{valid: true, ch: ch, latency: 5, headLoc: 2}
	if !re.outstanding() {
		t.Fatal("pending value should be outstanding")
	}
	// Promotion signals decrement head location but leave latency alone
	// (it is relative to head issue).
	re.observe(signal{ch: ch, typ: sigAdvance})
	if re.headLoc != 1 || re.latency != 5 {
		t.Fatalf("after advance: %+v", re)
	}
	re.observe(signal{ch: ch, typ: sigAdvance})
	re.observe(signal{ch: ch, typ: sigAdvance}) // issue
	if !re.selfTimed {
		t.Fatal("issue assertion should start self-timing")
	}
	re.tick()
	if re.latency != 4 {
		t.Fatalf("latency = %d", re.latency)
	}
	re.observe(signal{ch: ch, typ: sigSuspend})
	re.tick()
	if re.latency != 4 {
		t.Fatal("suspended row ticked")
	}
	re.observe(signal{ch: ch, typ: sigResume})
	for i := 0; i < 10; i++ {
		re.tick()
	}
	if re.latency != 0 {
		t.Fatalf("latency floor: %d", re.latency)
	}
	if re.outstanding() {
		t.Fatal("self-timed zero-latency value is available for scheduling (§3.3)")
	}
	// Invalid rows ignore everything.
	var dead regEntry
	dead.observe(signal{ch: ch, typ: sigAdvance})
	dead.tick()
	if dead.valid || dead.outstanding() {
		t.Fatal("invalid row changed state")
	}
}

func TestThreshold(t *testing.T) {
	// §3.1: bottom segment threshold 2, then 4, 6, 8...
	for k, want := range []int{2, 4, 6, 8, 10} {
		if got := threshold(k); got != want {
			t.Errorf("threshold(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(512, 128)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if good.Segments != 16 || good.SegSize != 32 || good.MaxChains != 128 {
		t.Fatalf("default geometry wrong: %+v", good)
	}
	if DefaultConfig(16, 0).Segments != 1 {
		t.Error("tiny queue should clamp to one segment")
	}

	bad := []Config{
		{Segments: 0, SegSize: 32, IssueWidth: 8, PredictedLoadLatency: 4},
		{Segments: 1, SegSize: 0, IssueWidth: 8, PredictedLoadLatency: 4},
		{Segments: 1, SegSize: 32, IssueWidth: 0, PredictedLoadLatency: 4},
		{Segments: 1, SegSize: 32, IssueWidth: 8, MaxChains: -1, PredictedLoadLatency: 4},
		{Segments: 1, SegSize: 32, IssueWidth: 8, PredictedLoadLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New must validate")
	}
}

// Property: under any sequence of signals and ticks, a chainRef's delay
// and head location never go negative, and self-timed mode is absorbing
// for advance signals.
func TestChainRefInvariantProperty(t *testing.T) {
	f := func(ops []uint8, delay, headLoc uint8) bool {
		ch := chain{id: 1}
		cr := chainRef{ch: ch, delay: int(delay % 64), headLoc: int(headLoc % 16)}
		wasSelfTimed := false
		for _, op := range ops {
			switch op % 5 {
			case 0:
				cr.observe(signal{ch: ch, typ: sigAdvance})
			case 1:
				cr.observe(signal{ch: ch, typ: sigSuspend})
			case 2:
				cr.observe(signal{ch: ch, typ: sigResume})
			case 3:
				cr.tick()
			case 4:
				cr.observe(signal{ch: chain{id: 2}, typ: sigAdvance}) // foreign
			}
			if cr.delay < 0 || cr.headLoc < 0 {
				return false
			}
			if wasSelfTimed && !cr.selfTimed {
				return false // self-timed is absorbing
			}
			wasSelfTimed = cr.selfTimed
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a register-table row's latency never goes negative and a row
// that reaches self-timed zero latency reads as available forever.
func TestRegEntryInvariantProperty(t *testing.T) {
	f := func(ops []uint8, latency, headLoc uint8) bool {
		ch := chain{id: 3}
		re := regEntry{valid: true, ch: ch, latency: int(latency % 64), headLoc: int(headLoc % 16)}
		wasAvailable := false
		for _, op := range ops {
			switch op % 4 {
			case 0:
				re.observe(signal{ch: ch, typ: sigAdvance})
			case 1:
				re.observe(signal{ch: ch, typ: sigSuspend})
			case 2:
				re.observe(signal{ch: ch, typ: sigResume})
			case 3:
				re.tick()
			}
			if re.latency < 0 || re.headLoc < 0 {
				return false
			}
			avail := !re.outstanding()
			if wasAvailable && !avail {
				return false // availability is absorbing
			}
			wasAvailable = avail
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
