// Package core implements the paper's contribution: the segmented
// instruction queue scheduled by dependence chains.
//
// The queue is a vertical pipeline of small, identically sized segments.
// Instructions dispatch into the top (bypassing leading empty segments,
// §4.2), are promoted downward as their delay values fall below each
// segment's threshold (§3.1), and issue from segment 0 — the only segment
// with conventional wakeup/select, so cycle time is set by the segment
// size rather than the total window size.
//
// Delay values are maintained through chains (§3.2): subtrees of the
// dataflow graph rooted at variable-latency instructions. Chain heads
// broadcast promotion and issue events on one-hot chain wires, pipelined
// one segment per cycle (§3.3); members decrement their delay values on
// each observed assertion and switch to self-timed countdown when the head
// issues. A load that misses sends a suspend signal up its chain wire and
// a resume when it completes (§3.4). The register information table in the
// dispatch stage assigns chains and initial delay values.
//
// Enhancements: instruction pushdown (§4.1), dispatch bypass of empty
// segments (§4.2), a left/right operand predictor (§4.3), a load hit/miss
// predictor (§4.4), and deadlock detection/recovery (§4.5).
package core

import "fmt"

// Config parameterises the segmented IQ.
type Config struct {
	// Segments is the number of queue segments (bottom segment is the
	// issue buffer). Total capacity is Segments*SegSize.
	Segments int
	// SegSize is the number of instruction slots per segment (32 in the
	// paper's evaluation).
	SegSize int
	// IssueWidth is the machine issue width; it also bounds inter-segment
	// promotion bandwidth, as in the paper.
	IssueWidth int
	// MaxChains is the number of chain wires; 0 means unlimited (the
	// paper's "unlimited chains" model). Dispatch stalls when a new chain
	// head is needed and no wire is free.
	MaxChains int

	// UseHMP enables the load hit/miss predictor (§4.4): chains are
	// created only for loads not confidently predicted to hit.
	UseHMP bool
	// UseLRP enables the left/right operand predictor (§4.3): an
	// instruction with two outstanding operands follows only the chain of
	// the operand predicted to arrive later, and creates no chain.
	UseLRP bool

	// Pushdown enables §4.1: a nearly full segment pushes its oldest
	// ineligible instructions into an emptier segment below.
	Pushdown bool
	// Bypass enables §4.2: dispatch skips over leading empty segments.
	Bypass bool
	// DeadlockRecovery enables §4.5.
	DeadlockRecovery bool

	// InstantWires is an ablation switch: chain-wire signals reach every
	// segment and the register table in the asserting cycle instead of
	// propagating one segment per cycle.
	InstantWires bool

	// PredictedLoadLatency is the dispatch-stage latency assumption for a
	// load's value, measured from load issue: EA calculation (1) plus the
	// L1 hit latency (3).
	PredictedLoadLatency int

	// StatsEvery samples the per-cycle occupancy/readiness statistics
	// every StatsEvery cycles instead of every cycle. The readiness scan
	// walks every occupied slot, so on large queues it dominates the
	// cycle loop's cost; sampling trades statistical resolution for
	// simulation speed. 0 or 1 means every cycle (exact averages);
	// simulated behaviour (IPC, cycle counts) is unaffected by any value.
	StatsEvery int

	// Threads is the number of hardware contexts sharing the queue (§7:
	// SMT). The register information table is replicated per context;
	// chains from independent threads interleave freely. 0 means 1.
	Threads int
}

// DefaultConfig returns the paper's configuration for a queue of the given
// total size: 32-entry segments, 8-wide issue, both predictors off,
// pushdown, bypass and deadlock recovery on, and the requested number of
// chain wires (0 = unlimited).
func DefaultConfig(totalEntries, maxChains int) Config {
	segs := totalEntries / 32
	if segs < 1 {
		segs = 1
	}
	return Config{
		Segments:             segs,
		SegSize:              32,
		IssueWidth:           8,
		MaxChains:            maxChains,
		Pushdown:             true,
		Bypass:               true,
		DeadlockRecovery:     true,
		PredictedLoadLatency: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Segments < 1 {
		return fmt.Errorf("core: need at least one segment, got %d", c.Segments)
	}
	if c.SegSize < 1 {
		return fmt.Errorf("core: segment size %d < 1", c.SegSize)
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("core: issue width %d < 1", c.IssueWidth)
	}
	if c.MaxChains < 0 {
		return fmt.Errorf("core: negative chain count %d", c.MaxChains)
	}
	if c.PredictedLoadLatency < 1 {
		return fmt.Errorf("core: predicted load latency %d < 1", c.PredictedLoadLatency)
	}
	if c.StatsEvery < 0 {
		return fmt.Errorf("core: negative stats sampling interval %d", c.StatsEvery)
	}
	return nil
}

// threshold returns segment k's admission threshold: an instruction may be
// promoted into segment k only when its delay value is strictly below it.
// Per §3.1 the bottom segment's threshold is 2 (admitting delays 0 and 1,
// enabling back-to-back issue of single-cycle dependences) and thresholds
// grow by uniform increments of two.
func threshold(k int) int { return 2 * (k + 1) }
