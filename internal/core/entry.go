package core

import (
	"repro/internal/isa"
	"repro/internal/uop"
)

// chainRef is one chain membership of a queue entry: the per-IQ-entry
// per-chain fields of §3.3 (chain ID, delay value, chain-head location,
// self-timed flag), plus the suspend flag of §3.4.
type chainRef struct {
	ch        chain
	delay     int
	headLoc   int
	selfTimed bool
	suspended bool
}

// observe applies one chain-wire assertion to the reference.
func (cr *chainRef) observe(s signal) {
	if cr.ch != s.ch {
		return
	}
	switch s.typ {
	case sigAdvance:
		if cr.selfTimed {
			return // stale: the head already issued
		}
		if cr.headLoc > 0 {
			cr.headLoc--
			cr.delay -= 2
			if cr.delay < 0 {
				cr.delay = 0
			}
		} else {
			// Head-location zero: this assertion is the head's issue.
			cr.selfTimed = true
		}
	case sigSuspend:
		cr.suspended = true
	case sigResume:
		cr.suspended = false
	}
}

// tick advances self-timed countdown by one cycle.
func (cr *chainRef) tick() {
	if cr.selfTimed && !cr.suspended && cr.delay > 0 {
		cr.delay--
	}
}

// entry is the segmented IQ's per-instruction state. It lives from
// dispatch to writeback (chains are deallocated at head writeback, after
// the entry has left the queue segments).
type entry struct {
	u   *uop.UOp
	seg int
	// id is the entry's stable scoreboard handle, assigned once and kept
	// across pool recycling. pos is the entry's slot in its segment —
	// segments are kept seq-sorted, so pos doubles as the entry's bit
	// position in the segment's ready/store words.
	id  int32
	pos int32
	// arrived is the cycle the entry entered its current segment (or was
	// dispatched); it may not move again, or issue, in that same cycle.
	arrived int64

	refs  [2]chainRef
	nrefs int

	isHead bool
	head   chain

	// lrpTracked marks an instruction whose left/right prediction must be
	// scored and trained when both operand arrival times are known.
	lrpTracked bool
	// pushedDown marks an entry whose last promotion came from the
	// pushdown mechanism (stats only).
	pushedDown bool
}

// effDelay returns the entry's effective delay value: the maximum over its
// chain memberships (§3.2: an instruction on two chains dynamically uses
// the larger value, indicating the later-arriving operand).
func (e *entry) effDelay() int {
	d := 0
	for i := 0; i < e.nrefs; i++ {
		if e.refs[i].delay > d {
			d = e.refs[i].delay
		}
	}
	return d
}

// observe applies a chain-wire assertion to all memberships.
func (e *entry) observe(s signal) {
	for i := 0; i < e.nrefs; i++ {
		e.refs[i].observe(s)
	}
}

// tick advances self-timed countdowns.
func (e *entry) tick() {
	for i := 0; i < e.nrefs; i++ {
		e.refs[i].tick()
	}
}

// regEntry is one register's row in the register information table of
// §3.3: the chain that will produce the register, the value's expected
// latency relative to the chain head's issue, the head's current segment,
// and the self-timed flag (plus suspension, mirroring chain state).
type regEntry struct {
	valid     bool
	producer  *uop.UOp
	ch        chain
	latency   int
	headLoc   int
	selfTimed bool
	suspended bool
}

// outstanding reports whether the register's value is still to be
// produced for scheduling purposes. Per §3.3, once a self-timed entry's
// latency reaches zero the value is assumed available.
func (re *regEntry) outstanding() bool {
	return re.valid && !(re.selfTimed && re.latency == 0)
}

// observe applies a chain-wire assertion to the table row. The latency
// field is relative to head issue, so promotions adjust only the head
// location; the issue assertion starts the self-timed countdown.
func (re *regEntry) observe(s signal) {
	if !re.valid || re.ch != s.ch {
		return
	}
	switch s.typ {
	case sigAdvance:
		if re.selfTimed {
			return
		}
		if re.headLoc > 0 {
			re.headLoc--
		} else {
			re.selfTimed = true
		}
	case sigSuspend:
		re.suspended = true
	case sigResume:
		re.suspended = false
	}
}

// tick advances the self-timed latency countdown.
func (re *regEntry) tick() {
	if re.valid && re.selfTimed && !re.suspended && re.latency > 0 {
		re.latency--
	}
}

// regTable is the dispatch stage's register information table, replicated
// per hardware context under SMT.
type regTable []regEntry

func newRegTable(threads int) regTable {
	if threads < 1 {
		threads = 1
	}
	return make(regTable, threads*isa.NumRegs)
}

// row returns the entry for a thread's architectural register.
func (t regTable) row(thread, reg int) *regEntry {
	return &t[thread*isa.NumRegs+reg]
}

// observe applies a signal to every row.
func (t regTable) observe(s signal) {
	for i := range t {
		t[i].observe(s)
	}
}

// tick advances all self-timed rows.
func (t regTable) tick() {
	for i := range t {
		t[i].tick()
	}
}

// clearProducer invalidates the row for u's destination if u is still its
// recorded producer (a younger writer may have replaced it).
func (t regTable) clearProducer(u *uop.UOp) {
	if !u.Inst.HasDest() {
		return
	}
	re := t.row(u.Thread, u.Inst.Dest)
	if re.valid && re.producer == u {
		re.valid = false
		re.producer = nil
	}
}
