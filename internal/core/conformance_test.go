package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/iq"
	"repro/internal/iq/iqtest"
)

// The fuzz harness drives the segmented queue, in several configurations,
// through random dependence DAGs, checking conservation, readiness at
// issue and liveness (deadlock recovery included).
func TestConformanceFuzz(t *testing.T) {
	cfgs := map[string]core.Config{
		"default-unlimited": core.DefaultConfig(128, 0),
		"tight-chains": func() core.Config {
			c := core.DefaultConfig(128, 8)
			return c
		}(),
		"tiny-segments": {
			Segments: 8, SegSize: 4, IssueWidth: 4, MaxChains: 6,
			Pushdown: true, Bypass: true, DeadlockRecovery: true,
			PredictedLoadLatency: 4,
		},
		"no-bypass-no-pushdown": {
			Segments: 4, SegSize: 16, IssueWidth: 8, MaxChains: 16,
			DeadlockRecovery: true, PredictedLoadLatency: 4,
		},
		"predictors": func() core.Config {
			c := core.DefaultConfig(128, 32)
			c.UseHMP, c.UseLRP = true, true
			return c
		}(),
		"instant-wires": func() core.Config {
			c := core.DefaultConfig(128, 32)
			c.InstantWires = true
			return c
		}(),
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			iqtest.Fuzz(t, func() iq.Queue { return core.MustNew(cfg) }, iqtest.DefaultOptions())
		})
	}
}

// Mid-run clones of the segmented queue — resident entries, allocated
// chains, in-flight wire signals — must behave identically to the
// original from the clone point on.
func TestCloneFuzz(t *testing.T) {
	cfgs := map[string]core.Config{
		"default-unlimited": core.DefaultConfig(128, 0),
		"tight-chains":      core.DefaultConfig(128, 8),
		"predictors": func() core.Config {
			c := core.DefaultConfig(128, 32)
			c.UseHMP, c.UseLRP = true, true
			return c
		}(),
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			iqtest.CloneFuzz(t, func() iq.Queue { return core.MustNew(cfg) }, iqtest.DefaultOptions())
		})
	}
}
