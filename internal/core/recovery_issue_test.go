package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// TestRecoveryMovedEntryCannotIssueSameCycle audits the interaction
// between §4.5 deadlock recovery (which runs in BeginCycle) and Issue's
// `e.arrived < cycle` gate: an instruction that recovery forces into
// segment 0 must not issue in that same cycle, even if its operands are
// already available — movement between segments always costs the cycle.
func TestRecoveryMovedEntryCannotIssueSameCycle(t *testing.T) {
	cfg := smallCfg(2, 1, 1)
	cfg.Bypass = false
	cfg.Pushdown = false
	q := MustNew(cfg)

	// Two one-entry segments: p wedged in segment 0 on a producer that
	// never completes, c above it on a producer that completes mid-wedge.
	ghostP := uop.New(990, loadInst(isa.RegNone, 8))
	ghostC := uop.New(991, loadInst(isa.RegNone, 9))
	p := uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))
	p.Prod[0] = ghostP
	c := uop.New(1, aluInst(isa.RegNone, isa.RegNone, 2))
	c.Prod[0] = ghostC

	q.Dispatch(0, p)
	q.BeginCycle(1) // p promotes to segment 0
	q.Dispatch(1, c)
	q.EndCycle(1, true)

	q.BeginCycle(2)
	if got := q.Issue(2, 8, always); len(got) != 0 {
		t.Fatal("nothing should be ready yet")
	}
	q.EndCycle(2, false) // stuck and idle: deadlock flagged

	// c's producer completes just before the recovery cycle: after
	// recovery rotates c into segment 0 it is data-ready for cycle 3.
	// The writeback call delivers the completion the way the pipeline
	// would (the ghost was never dispatched, so it only wakes c).
	ghostC.Complete = 2
	q.Writeback(2, ghostC)

	q.BeginCycle(3) // recovery: p recycled upward, c forced into segment 0
	if collect(q).MustGet("deadlock_recoveries") != 1 {
		t.Fatal("recovery did not run")
	}
	if c.IQ.(*entry).seg != 0 || p.IQ.(*entry).seg != 1 {
		t.Fatalf("rotation failed: c in %d, p in %d", c.IQ.(*entry).seg, p.IQ.(*entry).seg)
	}
	if !c.IssueReady(3) {
		t.Fatal("setup: c should be data-ready in the recovery cycle")
	}
	if got := q.Issue(3, 8, always); len(got) != 0 {
		t.Fatalf("entry moved by recovery issued in the same cycle: %v", got)
	}

	// One cycle later it issues normally, and the queue drains without
	// tripping removeFromSegment's consistency panic.
	q.BeginCycle(4)
	got := q.Issue(4, 8, always)
	if len(got) != 1 || got[0] != c {
		t.Fatalf("expected c to issue in cycle 4, got %v", got)
	}
	q.Writeback(5, c)
	ghostP.Complete = 5
	q.Writeback(5, ghostP)
	for cyc := int64(5); q.Len() > 0 && cyc < 12; cyc++ {
		q.BeginCycle(cyc)
		for _, u := range q.Issue(cyc, 8, always) {
			u.Complete = cyc + 1
			q.Writeback(cyc+1, u)
		}
		q.EndCycle(cyc, true)
	}
	if q.Len() != 0 {
		t.Errorf("queue did not drain after recovery: len=%d", q.Len())
	}
}

// TestRepeatedRecoveryKeepsSegmentsConsistent stress-drives the recovery
// path: a queue wedged behind a never-completing producer is forced
// through a recovery every cycle, with issue attempts interleaved, while
// the test checks after every cycle that the segment lists and the
// occupancy count stay consistent — i.e. that recovery's entry recycling
// can never leave an entry in a state where removeFromSegment would panic
// ("entry not found in its segment").
func TestRepeatedRecoveryKeepsSegmentsConsistent(t *testing.T) {
	cfg := smallCfg(4, 4, 2)
	cfg.MaxChains = 8
	q := MustNew(cfg)

	ghost := uop.New(9999, loadInst(isa.RegNone, 31))
	var wedged []*uop.UOp
	seq := int64(0)
	for q.Len() < q.Capacity() {
		u := uop.New(seq, aluInst(isa.RegNone, isa.RegNone, 1+int(seq)%8))
		u.Prod[0] = ghost
		if !q.Dispatch(0, u) {
			break
		}
		wedged = append(wedged, u)
		seq++
	}
	if len(wedged) == 0 {
		t.Fatal("setup: nothing dispatched")
	}

	check := func(cycle int64) {
		t.Helper()
		sum := 0
		for k := 0; k < cfg.Segments; k++ {
			for _, e := range q.segs[k] {
				if e.seg != k {
					t.Fatalf("cycle %d: entry seq=%d thinks it is in segment %d but lives in %d",
						cycle, e.u.Seq, e.seg, k)
				}
			}
			sum += q.SegmentLen(k)
		}
		if sum != q.Len() {
			t.Fatalf("cycle %d: segment lists hold %d entries, queue reports %d", cycle, sum, q.Len())
		}
	}

	// 60 cycles of wedged machine. Recoveries run on alternating cycles:
	// a recovery's own forced promotions count as progress, so the cycle
	// after one is not flagged, and the one after that is again.
	for cyc := int64(1); cyc <= 60; cyc++ {
		q.BeginCycle(cyc)
		if got := q.Issue(cyc, 2, always); len(got) != 0 {
			t.Fatalf("cycle %d: wedged instruction issued: %v", cyc, got)
		}
		q.EndCycle(cyc, false)
		check(cyc)
	}
	if rec := collect(q).MustGet("deadlock_recoveries"); rec < 25 {
		t.Fatalf("stress loop only ran %v recoveries", rec)
	}

	// Release the wedge: everything must drain cleanly, still without any
	// segment-consistency panic.
	ghost.Complete = 60
	q.Writeback(60, ghost)
	issued := 0
	for cyc := int64(61); issued < len(wedged) && cyc < 200; cyc++ {
		q.BeginCycle(cyc)
		for _, u := range q.Issue(cyc, 2, always) {
			issued++
			u.Complete = cyc + 1
			q.Writeback(cyc+1, u)
		}
		q.EndCycle(cyc, issued > 0)
		check(cyc)
	}
	if issued != len(wedged) || q.Len() != 0 {
		t.Errorf("drained %d/%d, len=%d", issued, len(wedged), q.Len())
	}
}
