package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// figure1Program builds the exact code sequence of Figure 1(a):
//
//	i0: add *,*   -> r1    lat 1
//	i1: mul *,*   -> r2    lat 2
//	i2: add r2,*  -> r4    lat 1
//	i3: mul r4,*  -> r6    lat 2
//	i4: mul r6,*  -> r8    lat 2
//	i5: add r1,*  -> r3    lat 1
//	i6: add r3,*  -> r5    lat 1
//	i7: add r5,*  -> r7    lat 1
//	i8: add r6,r7 -> r9    lat 1
//
// Operands marked * are available. ADD latency 1 (IntAlu) and MUL latency
// 2 are exactly the paper's assumptions... IntMul in Table 1 is 3 cycles,
// so the figure's 2-cycle MUL is modelled with FpAdd (latency 2).
func figure1Program() []isa.Inst {
	none := isa.RegNone
	add := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d} }
	mul := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.FpAdd, Src1: s1, Src2: s2, Dest: d} } // 2-cycle op
	return []isa.Inst{
		add(none, none, 1), // i0
		mul(none, none, 2), // i1
		add(2, none, 4),    // i2
		mul(4, none, 6),    // i3
		mul(6, none, 8),    // i4
		add(1, none, 3),    // i5
		add(3, none, 5),    // i6
		add(5, none, 7),    // i7
		add(6, 7, 9),       // i8
	}
}

// TestFigure1DelayValues reproduces the delay-value column of Figure 1(a):
// dispatching the example sequence with all producers in the bottom
// segment yields delays 0,0,2,3,5,1,2,3,5.
func TestFigure1DelayValues(t *testing.T) {
	q := MustNew(smallCfg(3, 16, 8))
	r := newTestRenamer()

	want := []int{0, 0, 2, 3, 5, 1, 2, 3, 5}
	var uops []*uop.UOp
	for _, in := range figure1Program() {
		u := r.rename(in)
		if !q.Dispatch(0, u) {
			t.Fatalf("dispatch of %s failed", in.String())
		}
		uops = append(uops, u)
	}
	for i, u := range uops {
		if got := u.IQ.(*entry).effDelay(); got != want[i] {
			t.Errorf("i%d delay = %d, want %d", i, got, want[i])
		}
	}

	// i8 depends (transitively) on two distinct roots. In the base design
	// its operands arrive via different... here both producer subtrees are
	// chainless (no loads), so no chain is allocated anywhere.
	if q.ChainsInUse() != 0 {
		t.Errorf("pure-ALU example allocated %d chains", q.ChainsInUse())
	}
	// Its delay must be the max of the two operand paths (r6: 5, r7: 4).
	if got := uops[8].IQ.(*entry).effDelay(); got != 5 {
		t.Errorf("i8 delay = %d, want max(5,4) = 5", got)
	}
}

// TestFigure1SegmentPlacement checks the paper's threshold-based placement
// intent with the figure's delays: delays 0..1 belong in segment 0
// (threshold 2), 2..3 in segment 1 (threshold 4), and 4+ in segment 2.
func TestFigure1SegmentPlacement(t *testing.T) {
	q := MustNew(smallCfg(3, 16, 8))
	// Plant the figure's delay values as frozen entries in the top
	// segment and let promotion distribute them.
	delays := []int{0, 0, 2, 3, 5, 1, 2, 3, 5}
	entries := make([]*entry, len(delays))
	for i, d := range delays {
		entries[i] = addRaw(q, 2, int64(i), d, -1)
	}
	// Segment-0 entries must not issue during settling (they are ready
	// uops); run promotion-only cycles.
	for cycle := int64(1); cycle <= 3; cycle++ {
		q.BeginCycle(cycle)
	}
	wantSeg := []int{0, 0, 1, 1, 2, 0, 1, 1, 2}
	for i, e := range entries {
		if e.seg != wantSeg[i] {
			t.Errorf("i%d in segment %d, want %d (delay %d)", i, e.seg, wantSeg[i], delays[i])
		}
	}
}

// TestFigure1Drain runs the example to completion through the queue
// protocol: every instruction issues, respecting data dependences.
func TestFigure1Drain(t *testing.T) {
	q := MustNew(smallCfg(3, 16, 8))
	r := newTestRenamer()
	var uops []*uop.UOp
	for _, in := range figure1Program() {
		u := r.rename(in)
		q.Dispatch(0, u)
		uops = append(uops, u)
	}
	issueOf := map[*uop.UOp]int64{}
	for cycle := int64(1); cycle <= 40 && len(issueOf) < len(uops); cycle++ {
		q.BeginCycle(cycle)
		for _, u := range q.Issue(cycle, 8, always) {
			issueOf[u] = cycle
			u.Complete = cycle + int64(u.Latency())
			q.Writeback(u.Complete, u)
		}
		q.EndCycle(cycle, true)
	}
	if len(issueOf) != len(uops) {
		t.Fatalf("only %d/%d instructions issued", len(issueOf), len(uops))
	}
	// Dependences respected: consumer issue >= producer issue + latency.
	deps := [][2]int{{2, 1}, {3, 2}, {4, 3}, {5, 0}, {6, 5}, {7, 6}, {8, 3}, {8, 7}}
	for _, d := range deps {
		c, p := uops[d[0]], uops[d[1]]
		if issueOf[c] < issueOf[p]+int64(p.Latency()) {
			t.Errorf("i%d issued at %d before i%d's result (issue %d + lat %d)",
				d[0], issueOf[c], d[1], issueOf[p], p.Latency())
		}
	}
	// i0 and i1 are ready at dispatch: they issue in the first cycle.
	if issueOf[uops[0]] != 1 || issueOf[uops[1]] != 1 {
		t.Errorf("i0/i1 issued at %d/%d, want cycle 1", issueOf[uops[0]], issueOf[uops[1]])
	}
	// Back-to-back: i5 (1-cycle dependent of i0) issues at cycle 2.
	if issueOf[uops[5]] != 2 {
		t.Errorf("i5 issued at %d, want 2 (back-to-back after i0)", issueOf[uops[5]])
	}
}
