package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// TestChainGenerationIgnoresStaleSignals: a released chain wire is reused;
// signals asserted under the old generation must not affect the new use's
// members, and vice versa.
func TestChainGenerationIgnoresStaleSignals(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.MaxChains = 1
	q := MustNew(cfg)
	r := newTestRenamer()

	ld1 := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld1)
	oldChain := ld1.IQ.(*entry).head

	// Issue the head and assert a suspend that will still be in flight
	// when the wire is reused.
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 1 {
		t.Fatal("load did not issue")
	}
	q.NotifyLoadMiss(1, ld1)
	ld1.Complete = 2
	// Complete + writeback release the wire while the suspend signal is
	// still travelling up the pipe.
	q.NotifyLoadComplete(2, ld1)
	q.Writeback(2, ld1)

	// Reuse the wire for a second load; park a member of the NEW chain in
	// segment 2, where the OLD generation's suspend will arrive.
	ld2 := r.rename(loadInst(isa.RegNone, 2))
	if !q.Dispatch(2, ld2) {
		t.Fatal("wire not reusable")
	}
	newChain := ld2.IQ.(*entry).head
	if newChain.id != oldChain.id || newChain.gen == oldChain.gen {
		t.Fatalf("expected same wire, new generation: old %+v new %+v", oldChain, newChain)
	}
	member := addRaw(q, 2, 99, 0, 10)
	member.refs[0] = chainRef{ch: newChain, delay: 8, headLoc: 0, selfTimed: true}
	member.nrefs = 1

	// Step cycles so the old-generation signals pass segment 2.
	for cycle := int64(2); cycle <= 6; cycle++ {
		q.BeginCycle(cycle)
	}
	if member.refs[0].suspended {
		t.Fatal("stale suspend from the previous generation applied to new chain member")
	}
	// Five BeginCycles ticked the healthy self-timed countdown.
	if member.refs[0].delay != 8-5 {
		t.Fatalf("self-timed countdown disturbed: delay %d", member.refs[0].delay)
	}
}

// TestPushdownNeverDisplacesPromotion: §4.1 — pushdown augments
// promotion; eligible instructions take the bandwidth first.
func TestPushdownNeverDisplacesPromotion(t *testing.T) {
	cfg := smallCfg(2, 4, 2) // bandwidth 2; pushdown active when freeK<2, freeDest>3
	q := MustNew(cfg)
	// Segment 1: two eligible (delay 0) and two ineligible (delay 99):
	// full, so the pushdown condition (free < IW) holds, but the two
	// eligible instructions must consume the whole bandwidth.
	e0 := addRaw(q, 1, 0, 0, -1)
	e1 := addRaw(q, 1, 1, 0, -1)
	x0 := addRaw(q, 1, 2, 99, -1)
	x1 := addRaw(q, 1, 3, 99, -1)
	q.BeginCycle(1)
	if e0.seg != 0 || e1.seg != 0 {
		t.Fatal("eligible entries not promoted")
	}
	if x0.seg != 1 || x1.seg != 1 {
		t.Fatal("pushdown displaced a normal promotion")
	}
}

// TestHMPMispredictedHitFloodsSegmentZero: §4.4 — a load wrongly
// predicted to hit creates no chain; its dependents count down on the
// hit schedule and occupy segment 0 long before the data arrives.
func TestHMPMispredictedHitFloodsSegmentZero(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.UseHMP = true
	q := MustNew(cfg)
	r := newTestRenamer()

	// Train the HMP to confidence at one PC.
	pc := uint64(0x9000)
	for i := 0; i < 14; i++ {
		ld := r.rename(loadInst(isa.RegNone, 1))
		ld.Inst.PC = pc
		q.Dispatch(int64(i), ld)
		e := ld.IQ.(*entry)
		ld.Complete = int64(i)
		ld.MemKind = uop.MemHit
		q.NotifyLoadComplete(int64(i), ld)
		q.Writeback(int64(i), ld)
		q.removeEverywhere(e)
	}
	// The next load at this PC is predicted to hit (no chain) but will
	// actually miss. Its dependents flood downward on the hit schedule.
	ld := r.rename(loadInst(isa.RegNone, 1))
	ld.Inst.PC = pc
	q.Dispatch(100, ld)
	if ld.IQ.(*entry).isHead {
		t.Fatal("setup: load should be chainless")
	}
	var consumers []*uop.UOp
	for i := 0; i < 4; i++ {
		c := r.rename(aluInst(1, isa.RegNone, 2+i))
		q.Dispatch(100, c)
		consumers = append(consumers, c)
	}
	// The load issues but misses; the data never comes back in this test.
	q.BeginCycle(101)
	q.Issue(101, 8, func(u *uop.UOp) bool { return u == ld })
	for cycle := int64(102); cycle <= 112; cycle++ {
		q.BeginCycle(cycle)
	}
	// All consumers have drained into segment 0, unready — the paper's
	// described failure mode ("flood segment 0 well in advance of
	// becoming ready").
	inSeg0 := 0
	for _, c := range consumers {
		if q.SegmentOf(c) == 0 && !c.Ready(112) {
			inSeg0++
		}
	}
	if inSeg0 != len(consumers) {
		t.Fatalf("%d/%d unready consumers in segment 0; mispredicted hit should flood it",
			inSeg0, len(consumers))
	}
}

// TestSuspendedStateInheritedAtDispatch: a consumer dispatched while its
// producer's chain is suspended must start suspended and resume with it.
func TestSuspendedStateInheritedAtDispatch(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld)
	q.BeginCycle(1)
	q.Issue(1, 8, always)
	q.NotifyLoadMiss(4, ld) // table sees the suspend immediately

	con := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(5, con)
	ce := con.IQ.(*entry)
	if !ce.refs[0].selfTimed || !ce.refs[0].suspended {
		t.Fatalf("consumer should inherit self-timed+suspended: %+v", ce.refs[0])
	}
	d := ce.refs[0].delay
	q.BeginCycle(6)
	if ce.refs[0].delay != d {
		t.Fatal("suspended consumer counted down")
	}
	ld.Complete = 30
	q.NotifyLoadComplete(30, ld)
	if ce.refs[0].suspended {
		t.Fatal("resume not delivered to segment-0 consumer")
	}
}

// TestIssueAssertionReachesTableImmediately: a consumer dispatched in the
// same cycle its producer's head issued must see the self-timed state
// (the chain wires terminate at the dispatch stage).
func TestIssueAssertionReachesTableImmediately(t *testing.T) {
	q := MustNew(smallCfg(4, 8, 8))
	r := newTestRenamer()
	ld := r.rename(loadInst(isa.RegNone, 1))
	q.Dispatch(0, ld)
	q.BeginCycle(1)
	if got := q.Issue(1, 8, always); len(got) != 1 {
		t.Fatal("load did not issue")
	}
	con := r.rename(aluInst(1, isa.RegNone, 2))
	q.Dispatch(1, con)
	ce := con.IQ.(*entry)
	if !ce.refs[0].selfTimed {
		t.Fatal("table lagged the issue assertion")
	}
	// Delay = the load's remaining predicted latency.
	if ce.refs[0].delay != 4 {
		t.Fatalf("delay = %d, want predicted load latency 4", ce.refs[0].delay)
	}
}

// TestSignalCrossingCaughtUp: an entry promoted into a segment during the
// same cycle a signal occupies it must observe that signal rather than
// cross it in flight.
func TestSignalCrossingCaughtUp(t *testing.T) {
	q := MustNew(smallCfg(4, 8, 8))
	ch, _ := q.chains.alloc()
	head := addRaw(q, 0, 0, 0, -1)
	head.isHead = true
	head.head = ch
	// Member: eligible to promote (small delay), suspended self-timed
	// membership in the head's chain, parked at segment 3.
	m := addRaw(q, 3, 1, 0, -1)
	m.refs[0] = chainRef{ch: ch, delay: 1, selfTimed: true, suspended: true}
	m.nrefs = 1

	// Cycle 1: head issues; a resume is asserted at segment 0.
	q.BeginCycle(1)
	q.Issue(1, 8, func(u *uop.UOp) bool { return u == head.u })
	q.assertAt(0, signal{ch: ch, typ: sigResume})

	// Cycles 2..3: the resume climbs 0→1→2 while the member promotes
	// 3→2→1; they meet at segment 2 or cross between 2 and 1. With
	// catch-up the member must be resumed by cycle 3.
	q.BeginCycle(2)
	q.BeginCycle(3)
	if m.refs[0].suspended {
		t.Fatal("member crossed the resume signal and stayed suspended")
	}
}

// TestAccessors covers the diagnostic accessors.
func TestAccessors(t *testing.T) {
	q := MustNew(smallCfg(2, 8, 8))
	u := uop.New(0, aluInst(isa.RegNone, isa.RegNone, 1))
	if q.DelayOf(u) != -1 || q.SegmentOf(u) != -1 {
		t.Fatal("undispatched uop should report -1")
	}
	q.Dispatch(0, u)
	if q.DelayOf(u) != 0 {
		t.Fatal("delay accessor")
	}
	if q.SegmentOf(u) != 0 {
		t.Fatal("segment accessor")
	}
	q.BeginCycle(1)
	q.Issue(1, 8, always)
	if q.SegmentOf(u) != -1 {
		t.Fatal("issued uop should report -1 segment")
	}
}

// TestTwoChainMemberControlledByLaterOperand: §3.2 — a two-chain
// instruction promotes by the larger of its delay values.
func TestTwoChainMemberControlledByLaterOperand(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.Bypass = false
	q := MustNew(cfg)
	r := newTestRenamer()
	ldA := r.rename(loadInst(isa.RegNone, 1))
	ldB := r.rename(loadInst(isa.RegNone, 2))
	q.Dispatch(0, ldA)
	q.Dispatch(0, ldB)
	join := r.rename(aluInst(1, 2, 3))
	q.Dispatch(0, join)
	je := join.IQ.(*entry)
	if je.nrefs != 2 {
		t.Fatal("setup: expected two memberships")
	}
	// Manually decay one membership to zero: the other still controls.
	je.refs[0].delay = 0
	if got := je.effDelay(); got != je.refs[1].delay {
		t.Fatalf("effective delay %d should follow the later operand %d", got, je.refs[1].delay)
	}
}

// TestUnlimitedChainsNeverStall: MaxChains == 0 must never reject
// dispatch for chain reasons.
func TestUnlimitedChainsNeverStall(t *testing.T) {
	q := MustNew(smallCfg(16, 32, 8))
	r := newTestRenamer()
	for i := 0; i < 300; i++ {
		ld := r.rename(loadInst(isa.RegNone, 1+i%20))
		if !q.Dispatch(int64(i), ld) {
			t.Fatalf("dispatch %d stalled with unlimited chains", i)
		}
	}
	if got := collect(q).MustGet("iq_stall_nochain"); got != 0 {
		t.Fatalf("chain stalls = %v", got)
	}
}

// TestPerThreadRegisterTables: under SMT the register information table
// is replicated per context; two threads writing the same architectural
// register must not cross-link chains.
func TestPerThreadRegisterTables(t *testing.T) {
	cfg := smallCfg(4, 8, 8)
	cfg.Threads = 2
	q := MustNew(cfg)

	// Thread 0: a load producing r1.
	ld0 := uop.New(0, loadInst(isa.RegNone, 1))
	ld0.Thread = 0
	q.Dispatch(0, ld0)
	// Thread 1: an ALU producing the same architectural r1 (no chain).
	alu1 := uop.New(1, aluInst(isa.RegNone, isa.RegNone, 1))
	alu1.Thread = 1
	q.Dispatch(0, alu1)

	// Thread 1's consumer of r1 must NOT join thread 0's load chain.
	con1 := uop.New(2, aluInst(1, isa.RegNone, 2))
	con1.Thread = 1
	q.Dispatch(0, con1)
	e1 := con1.IQ.(*entry)
	if e1.nrefs == 1 && e1.refs[0].ch == ld0.IQ.(*entry).head {
		t.Fatal("thread 1 consumer joined thread 0's chain")
	}
	// Thread 0's consumer of r1 joins the load chain.
	con0 := uop.New(3, aluInst(1, isa.RegNone, 2))
	con0.Thread = 0
	q.Dispatch(0, con0)
	e0 := con0.IQ.(*entry)
	if e0.nrefs != 1 || e0.refs[0].ch != ld0.IQ.(*entry).head {
		t.Fatal("thread 0 consumer did not join its own chain")
	}
}
