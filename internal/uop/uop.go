// Package uop defines the dynamic instruction — a trace record plus the
// renamed dependence edges and timing state the pipeline and the
// instruction-queue designs share.
package uop

import (
	"fmt"

	"repro/internal/isa"
)

// NotYet marks a cycle field whose event has not happened.
const NotYet int64 = -1

// UOp is one in-flight dynamic instruction.
//
// Register renaming is represented directly as producer edges: Prod[j]
// points at the in-flight instruction that produces source operand j, or is
// nil if the value was already available at dispatch. This removes WAW/WAR
// hazards exactly as a physical register file would, without modelling
// value storage.
type UOp struct {
	// Seq is the dynamic program-order sequence number; smaller = older.
	// Under SMT the counter is shared, so Seq also provides a global age
	// order across threads.
	Seq int64
	// Thread is the hardware context the instruction belongs to (0 on a
	// single-threaded machine).
	Thread int
	// Inst is the static trace record.
	Inst isa.Inst

	// Prod holds the producing instruction for each source operand.
	Prod [2]*UOp

	// DispatchCycle is when the instruction entered the instruction queue.
	DispatchCycle int64
	// IssueCycle is when it left the IQ for a function unit (NotYet until
	// then). For memory operations this is the effective-address
	// calculation issue.
	IssueCycle int64
	// Complete is the cycle the result becomes available to consumers
	// (NotYet until known). For loads this is set when the data returns
	// from the memory system; for other classes at issue time
	// (issue + latency, fully bypassed).
	Complete int64
	// EADone is when the effective address is available to the LSQ
	// (memory operations only).
	EADone int64
	// MemKind records how the memory system serviced a load.
	MemKind int8
	// RejGen memoises an MSHR-file rejection: the cache's acceptance
	// generation (mem.Cache.AcceptGen) when this load's access was last
	// rejected. While the generation is unchanged the cache cannot
	// service the load any differently, so the LSQ repeats the rejection
	// without re-walking the tag array and MSHR file. Zero means no
	// memo; clones drop it (the cloned cache restarts its generations).
	RejGen uint64
	// FwdKey memoises a negative store-to-load forwarding check: the
	// LSQ's (coverage-epoch, stores-ahead) pair when this load last
	// searched the coverage index and found nothing. While the pair is
	// unchanged the index the load sees is unchanged, so the search is
	// not repeated. Zero means no memo; clones drop it.
	FwdKey uint64
	// Mispredicted marks a branch the front end predicted incorrectly
	// (direction or target).
	Mispredicted bool
	// Renamed guards against re-renaming when an in-order dispatch stall
	// retries the same instruction.
	Renamed bool

	// IQ is private scheduling state owned by the instruction-queue
	// implementation that dispatched this uop.
	IQ any
}

// Memory service kinds mirrored from the cache (kept as a plain int8 to
// avoid an import cycle); see internal/mem.Kind.
const (
	MemNone       int8 = -1
	MemHit        int8 = 0
	MemDelayedHit int8 = 1
	MemMiss       int8 = 2
)

// New builds a UOp with all timing fields unset.
func New(seq int64, in isa.Inst) *UOp {
	return &UOp{
		Seq:        seq,
		Inst:       in,
		IssueCycle: NotYet,
		Complete:   NotYet,
		EADone:     NotYet,
		MemKind:    MemNone,
	}
}

// NumSources returns how many register source operands the instruction
// actually has (RegNone and the zero register do not count).
func (u *UOp) NumSources() int {
	n := 0
	for _, s := range [...]int{u.Inst.Src1, u.Inst.Src2} {
		if s != isa.RegNone && s != isa.RegZero {
			n++
		}
	}
	return n
}

// Src returns the architectural register of source operand j (0 or 1), or
// RegNone.
func (u *UOp) Src(j int) int {
	if j == 0 {
		return u.Inst.Src1
	}
	return u.Inst.Src2
}

// OperandReady reports whether source operand j's value is available for
// an instruction issuing at the given cycle.
func (u *UOp) OperandReady(j int, cycle int64) bool {
	p := u.Prod[j]
	if p == nil {
		return true
	}
	return p.Complete != NotYet && p.Complete <= cycle
}

// Ready reports whether both operands are available at the given cycle —
// the conventional-wakeup readiness test.
func (u *UOp) Ready(cycle int64) bool {
	return u.OperandReady(0, cycle) && u.OperandReady(1, cycle)
}

// IssueReady reports whether the instruction may leave the IQ at the
// given cycle. For stores only the address operand (the second source)
// gates the effective-address calculation; the data may arrive later and
// gates retirement instead (§5: the access lives in the LSQ).
func (u *UOp) IssueReady(cycle int64) bool {
	if u.IsStore() {
		return u.OperandReady(1, cycle)
	}
	return u.Ready(cycle)
}

// OperandReadyTime returns the cycle operand j became (or will become)
// available, or NotYet if its producer has not yet determined it.
// A nil producer reads as 0 (available since dispatch).
func (u *UOp) OperandReadyTime(j int) int64 {
	p := u.Prod[j]
	if p == nil {
		return 0
	}
	return p.Complete
}

// IsLoad reports whether the instruction is a load.
func (u *UOp) IsLoad() bool { return u.Inst.Class == isa.Load }

// IsStore reports whether the instruction is a store.
func (u *UOp) IsStore() bool { return u.Inst.Class == isa.Store }

// IsBranch reports whether the instruction is a branch.
func (u *UOp) IsBranch() bool { return u.Inst.Class == isa.Branch }

// Latency returns the function-unit latency of the instruction (the EA
// calculation for memory operations).
func (u *UOp) Latency() int { return u.Inst.Class.Latency() }

// String renders the uop for debugging.
func (u *UOp) String() string {
	return fmt.Sprintf("#%d %s [disp %d iss %d cmpl %d]",
		u.Seq, u.Inst.String(), u.DispatchCycle, u.IssueCycle, u.Complete)
}
