package uop

// CloneMap is an identity-preserving deep-copy map for in-flight
// instructions. Machine layers share UOps by pointer (the queue, ROB, LSQ,
// renamer and front end all hold the same dynamic instruction), so cloning
// a machine must map each original to exactly one clone; CloneMap
// memoises that mapping and follows producer edges recursively.
type CloneMap struct {
	m map[*UOp]*UOp
}

// NewCloneMap returns an empty clone map.
func NewCloneMap() *CloneMap {
	return &CloneMap{m: make(map[*UOp]*UOp)}
}

// IQState is implemented by queue-private per-instruction state (the
// values a queue stores in UOp.IQ) that must survive a machine clone.
// An instruction's state can outlive its residence in the queue — the
// segmented design keeps its entry attached from dispatch to writeback,
// across issue — so the remapping happens here, where every live uop
// passes, rather than in the queue's own Clone, which only sees the
// instructions still resident.
type IQState interface {
	// CloneIQ returns the state's clone for the cloned instruction.
	CloneIQ(clone *UOp) any
}

// Get returns the clone of u, creating it — and the clones of its
// producers and queue-private state — on first sight. Get(nil) is nil.
// IQ values that do not implement IQState are dropped from the clone.
func (cm *CloneMap) Get(u *UOp) *UOp {
	if u == nil {
		return nil
	}
	if c, ok := cm.m[u]; ok {
		return c
	}
	c := new(UOp)
	*c = *u
	c.IQ = nil
	// The clone's cache and LSQ restart their memo generations, so a
	// carried memo could collide with an unrelated future generation.
	c.RejGen = 0
	c.FwdKey = 0
	cm.m[u] = c
	c.Prod[0] = cm.Get(u.Prod[0])
	c.Prod[1] = cm.Get(u.Prod[1])
	if st, ok := u.IQ.(IQState); ok {
		c.IQ = st.CloneIQ(c)
	}
	return c
}

// Len returns the number of instructions cloned so far.
func (cm *CloneMap) Len() int { return len(cm.m) }
