package uop

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestNewDefaults(t *testing.T) {
	u := New(7, isa.Inst{Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3})
	if u.Seq != 7 {
		t.Error("seq")
	}
	if u.IssueCycle != NotYet || u.Complete != NotYet || u.EADone != NotYet {
		t.Error("timing fields should start unset")
	}
	if u.MemKind != MemNone {
		t.Error("mem kind should start none")
	}
}

func TestNumSources(t *testing.T) {
	cases := []struct {
		src1, src2 int
		want       int
	}{
		{1, 2, 2},
		{1, isa.RegNone, 1},
		{isa.RegNone, isa.RegNone, 0},
		{isa.RegZero, 5, 1},
		{isa.RegZero, isa.RegZero, 0},
	}
	for _, c := range cases {
		u := New(0, isa.Inst{Class: isa.IntAlu, Src1: c.src1, Src2: c.src2})
		if got := u.NumSources(); got != c.want {
			t.Errorf("NumSources(%d,%d) = %d, want %d", c.src1, c.src2, got, c.want)
		}
	}
}

func TestSrc(t *testing.T) {
	u := New(0, isa.Inst{Class: isa.IntAlu, Src1: 3, Src2: 9})
	if u.Src(0) != 3 || u.Src(1) != 9 {
		t.Error("Src mapping wrong")
	}
}

func TestReadiness(t *testing.T) {
	prod := New(1, isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
	cons := New(2, isa.Inst{Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3})
	cons.Prod[0] = prod

	// Producer not complete: operand 0 unready, operand 1 (nil prod) ready.
	if cons.OperandReady(0, 100) {
		t.Error("operand with incomplete producer should not be ready")
	}
	if !cons.OperandReady(1, 0) {
		t.Error("nil-producer operand should always be ready")
	}
	if cons.Ready(100) {
		t.Error("Ready should require both operands")
	}
	if cons.OperandReadyTime(0) != NotYet {
		t.Error("unknown ready time should be NotYet")
	}
	if cons.OperandReadyTime(1) != 0 {
		t.Error("nil producer ready time should be 0")
	}

	prod.Complete = 10
	if cons.OperandReady(0, 9) {
		t.Error("ready before completion cycle")
	}
	if !cons.OperandReady(0, 10) || !cons.Ready(10) {
		t.Error("should be ready at completion cycle")
	}
	if cons.OperandReadyTime(0) != 10 {
		t.Error("ready time should be 10")
	}
}

func TestClassPredicatesAndLatency(t *testing.T) {
	ld := New(0, isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.RegNone, Dest: 2, Size: 8})
	st := New(0, isa.Inst{Class: isa.Store, Src1: 1, Src2: 2, Size: 8})
	br := New(0, isa.Inst{Class: isa.Branch, Src1: 1, Src2: isa.RegNone})
	mul := New(0, isa.Inst{Class: isa.IntMul, Src1: 1, Src2: 2, Dest: 3})
	if !ld.IsLoad() || ld.IsStore() || ld.IsBranch() {
		t.Error("load predicates")
	}
	if !st.IsStore() || !br.IsBranch() {
		t.Error("store/branch predicates")
	}
	if ld.Latency() != 1 {
		t.Error("load EA latency should be 1")
	}
	if mul.Latency() != 3 {
		t.Error("imul latency should be 3")
	}
}

func TestString(t *testing.T) {
	u := New(42, isa.Inst{PC: 0x40, Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3})
	if s := u.String(); !strings.Contains(s, "#42") {
		t.Errorf("String = %q", s)
	}
}
