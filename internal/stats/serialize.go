package stats

import "repro/internal/codec"

// The statistics primitives are part of the machine state a checkpoint
// carries, so they encode and decode themselves over the shared binary
// codec. A checkpoint template's counters are typically zero (warmup
// gathers no run statistics), but the format does not rely on that.

// EncodeTo writes the counter's state.
func (c *Counter) EncodeTo(w *codec.Writer) { w.U64(c.n) }

// DecodeFrom restores the counter's state.
func (c *Counter) DecodeFrom(r *codec.Reader) { c.n = r.U64() }

// EncodeTo writes the mean accumulator's state.
func (m *Mean) EncodeTo(w *codec.Writer) {
	w.F64(m.sum)
	w.U64(m.count)
	w.F64(m.max)
}

// DecodeFrom restores the mean accumulator's state.
func (m *Mean) DecodeFrom(r *codec.Reader) {
	m.sum = r.F64()
	m.count = r.U64()
	m.max = r.F64()
}

// EncodeTo writes the peak tracker's state.
func (p *Peak) EncodeTo(w *codec.Writer) {
	w.I64(p.cur)
	w.I64(p.peak)
}

// DecodeFrom restores the peak tracker's state.
func (p *Peak) DecodeFrom(r *codec.Reader) {
	p.cur = r.I64()
	p.peak = r.I64()
}

// Values returns a copy of the set's name→value map; the sweep shard
// files serialise results in this form.
func (s *Set) Values() map[string]float64 {
	out := make(map[string]float64, len(s.values))
	for k, v := range s.values {
		out[k] = v
	}
	return out
}

// SetFromValues rebuilds a set from a name→value map, inserting names in
// sorted order so the rebuilt set renders deterministically.
func SetFromValues(values map[string]float64) *Set {
	s := NewSet()
	for _, name := range SortedNames(values) {
		s.Put(name, values[name])
	}
	return s
}
