// Package stats provides the lightweight statistics primitives used
// throughout the simulator: counters, running averages, peak trackers,
// bucketed distributions and simple fixed-width table rendering for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Mean accumulates samples and reports their arithmetic mean, maximum and
// count. The zero value is ready to use.
type Mean struct {
	sum   float64
	count uint64
	max   float64
}

// Observe records one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.count++
	if m.count == 1 || v > m.max {
		m.max = v
	}
}

// ObserveN records the same sample n times, exactly as n sequential
// Observe calls would (the loop keeps the floating-point accumulation
// bit-identical to the unbatched form — callers replaying skipped idle
// cycles depend on that, so do not replace it with sum += v*n).
func (m *Mean) ObserveN(v float64, n int64) {
	for ; n > 0; n-- {
		m.Observe(v)
	}
}

// Value returns the arithmetic mean of all samples, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Max returns the largest sample observed, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.count }

// Sum returns the sum of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Reset discards all samples.
func (m *Mean) Reset() { *m = Mean{} }

// Peak tracks the maximum of a level that moves up and down, such as the
// number of allocated chains.
type Peak struct {
	cur  int64
	peak int64
}

// Add moves the current level by delta and updates the peak.
func (p *Peak) Add(delta int64) {
	p.cur += delta
	if p.cur > p.peak {
		p.peak = p.cur
	}
}

// Set assigns the current level directly and updates the peak.
func (p *Peak) Set(v int64) {
	p.cur = v
	if v > p.peak {
		p.peak = v
	}
}

// Current returns the present level.
func (p *Peak) Current() int64 { return p.cur }

// Value returns the highest level ever reached.
func (p *Peak) Value() int64 { return p.peak }

// Reset zeroes both the level and the peak.
func (p *Peak) Reset() { *p = Peak{} }

// Dist is a bucketed distribution over small non-negative integers
// (segment occupancies, issue widths, delay values). Samples at or above
// the bucket count fall into the final overflow bucket.
type Dist struct {
	buckets []uint64
	total   uint64
	sum     float64
}

// NewDist creates a distribution with n regular buckets plus an overflow
// bucket.
func NewDist(n int) *Dist {
	if n < 1 {
		n = 1
	}
	return &Dist{buckets: make([]uint64, n+1)}
}

// Observe records one integer sample. Negative samples are clamped to 0.
func (d *Dist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	i := v
	if i >= len(d.buckets)-1 {
		i = len(d.buckets) - 1
	}
	d.buckets[i]++
	d.total++
	d.sum += float64(v)
}

// Total returns the number of samples.
func (d *Dist) Total() uint64 { return d.total }

// Mean returns the arithmetic mean of all samples.
func (d *Dist) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	return d.sum / float64(d.total)
}

// Bucket returns the count in bucket i; i == NumBuckets()-1 is the overflow
// bucket.
func (d *Dist) Bucket(i int) uint64 {
	if i < 0 || i >= len(d.buckets) {
		return 0
	}
	return d.buckets[i]
}

// NumBuckets returns the bucket count including the overflow bucket.
func (d *Dist) NumBuckets() int { return len(d.buckets) }

// Fraction returns the fraction of samples in bucket i.
func (d *Dist) Fraction(i int) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.Bucket(i)) / float64(d.total)
}

// Clone returns an independent copy of the distribution.
func (d *Dist) Clone() *Dist {
	n := &Dist{buckets: make([]uint64, len(d.buckets)), total: d.total, sum: d.sum}
	copy(n.buckets, d.buckets)
	return n
}

// Ratio is a hits/total style rate with safe division.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Set is a named collection of scalar statistics gathered from a run,
// rendered by the experiment harness. Insertion order is preserved.
type Set struct {
	names    []string
	values   map[string]float64
	warnings []string
}

// NewSet creates an empty statistics set.
func NewSet() *Set {
	return &Set{values: make(map[string]float64)}
}

// Put stores a value under name, overwriting any previous value but
// preserving the original insertion position.
func (s *Set) Put(name string, v float64) {
	if _, ok := s.values[name]; !ok {
		s.names = append(s.names, name)
	}
	s.values[name] = v
}

// Get returns the value stored under name and whether it exists.
func (s *Set) Get(name string) (float64, bool) {
	v, ok := s.values[name]
	return v, ok
}

// MustGet returns the value under name. It is used by the harness for
// statistics that the simulator always produces; if the name is absent —
// typically a queue design that does not emit some design-specific
// counter — it returns zero and records a warning rather than panicking,
// so one missing counter cannot take down a whole experiment batch.
// Warnings() exposes what was missed.
func (s *Set) MustGet(name string) float64 {
	v, ok := s.values[name]
	if !ok {
		s.warnings = append(s.warnings, fmt.Sprintf("stats: missing %q (reported as 0)", name))
		return 0
	}
	return v
}

// Clone returns an independent copy of the set, including any recorded
// warnings.
func (s *Set) Clone() *Set {
	n := &Set{
		names:  append([]string(nil), s.names...),
		values: make(map[string]float64, len(s.values)),
	}
	for k, v := range s.values {
		n.values[k] = v
	}
	if len(s.warnings) > 0 {
		n.warnings = append([]string(nil), s.warnings...)
	}
	return n
}

// Warnings returns the messages recorded for statistics that were
// requested via MustGet but never stored.
func (s *Set) Warnings() []string {
	out := make([]string, len(s.warnings))
	copy(out, s.warnings)
	return out
}

// Names returns the stat names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// String renders the set one stat per line, aligned.
func (s *Set) String() string {
	w := 0
	for _, n := range s.names {
		if len(n) > w {
			w = len(n)
		}
	}
	var b strings.Builder
	for _, n := range s.names {
		fmt.Fprintf(&b, "%-*s %s\n", w, n, formatValue(s.values[n]))
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Table renders rows of labelled values as a fixed-width text table, the
// output format of cmd/iqbench. Columns are ordered as given; rows are
// rendered in insertion order.
type Table struct {
	cols []string
	rows []tableRow
}

type tableRow struct {
	label string
	cells map[string]string
}

// NewTable creates a table whose first column is labelled rowHead followed
// by the given value columns.
func NewTable(rowHead string, cols ...string) *Table {
	return &Table{cols: append([]string{rowHead}, cols...)}
}

// AddRow appends a row. Cells are matched to columns by name; missing cells
// render as "-".
func (t *Table) AddRow(label string, cells map[string]string) {
	cp := make(map[string]string, len(cells))
	for k, v := range cells {
		cp[k] = v
	}
	t.rows = append(t.rows, tableRow{label: label, cells: cp})
}

// AddRowValues appends a row with float cells formatted to the given number
// of decimal places, in column order.
func (t *Table) AddRowValues(label string, decimals int, vals ...float64) {
	cells := make(map[string]string, len(vals))
	for i, v := range vals {
		if i+1 >= len(t.cols) {
			break
		}
		cells[t.cols[i+1]] = fmt.Sprintf("%.*f", decimals, v)
	}
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, c := range t.cols[1:] {
			cell := r.cells[c]
			if cell == "" {
				cell = "-"
			}
			if len(cell) > widths[i+1] {
				widths[i+1] = len(cell)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.cols {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.label)
		for i, c := range t.cols[1:] {
			cell := r.cells[c]
			if cell == "" {
				cell = "-"
			}
			fmt.Fprintf(&b, "  %*s", widths[i+1], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of vs, ignoring non-positive entries.
// It is used for cross-benchmark performance summaries, matching the
// paper's use of relative-performance averages.
func GeoMean(vs []float64) float64 {
	logSum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of vs, or 0 for an empty slice.
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// SortedNames returns map keys in sorted order; a convenience for
// deterministic output.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
