package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Max() != 0 {
		t.Fatal("empty mean should be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Observe(v)
	}
	if m.Value() != 2.5 {
		t.Errorf("mean = %v, want 2.5", m.Value())
	}
	if m.Max() != 4 {
		t.Errorf("max = %v, want 4", m.Max())
	}
	if m.Count() != 4 {
		t.Errorf("count = %d, want 4", m.Count())
	}
	if m.Sum() != 10 {
		t.Errorf("sum = %v, want 10", m.Sum())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset failed")
	}
	// Max must track even when the first sample is the largest (and when
	// samples are negative).
	m.Observe(-3)
	m.Observe(-9)
	if m.Max() != -3 {
		t.Errorf("max = %v, want -3", m.Max())
	}
}

func TestPeak(t *testing.T) {
	var p Peak
	p.Add(3)
	p.Add(5)
	p.Add(-4)
	if p.Current() != 4 {
		t.Errorf("current = %d, want 4", p.Current())
	}
	if p.Value() != 8 {
		t.Errorf("peak = %d, want 8", p.Value())
	}
	p.Set(20)
	if p.Value() != 20 {
		t.Errorf("peak after Set = %d, want 20", p.Value())
	}
	p.Reset()
	if p.Value() != 0 || p.Current() != 0 {
		t.Error("reset failed")
	}
}

func TestDist(t *testing.T) {
	d := NewDist(4)
	for _, v := range []int{0, 1, 1, 2, 9, -5} {
		d.Observe(v)
	}
	if d.Total() != 6 {
		t.Fatalf("total = %d", d.Total())
	}
	if d.Bucket(0) != 2 { // 0 and clamped -5
		t.Errorf("bucket0 = %d, want 2", d.Bucket(0))
	}
	if d.Bucket(1) != 2 {
		t.Errorf("bucket1 = %d, want 2", d.Bucket(1))
	}
	if d.Bucket(d.NumBuckets()-1) != 1 { // overflow catches 9
		t.Errorf("overflow = %d, want 1", d.Bucket(d.NumBuckets()-1))
	}
	if d.Bucket(-1) != 0 || d.Bucket(99) != 0 {
		t.Error("out-of-range buckets should read 0")
	}
	wantMean := (0.0 + 1 + 1 + 2 + 9 + 0) / 6
	if math.Abs(d.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", d.Mean(), wantMean)
	}
	if f := d.Fraction(1); math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("fraction(1) = %v", f)
	}
	if NewDist(0).NumBuckets() != 2 {
		t.Error("degenerate dist should have at least one regular bucket")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("divide by zero should be 0")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("ratio wrong")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Put("ipc", 2.5)
	s.Put("cycles", 1000)
	s.Put("ipc", 3.0) // overwrite keeps position
	if got := s.Names(); len(got) != 2 || got[0] != "ipc" || got[1] != "cycles" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := s.Get("ipc"); !ok || v != 3.0 {
		t.Errorf("Get(ipc) = %v,%v", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get of missing stat should report absence")
	}
	if s.MustGet("cycles") != 1000 {
		t.Error("MustGet wrong")
	}
	out := s.String()
	if !strings.Contains(out, "ipc") || !strings.Contains(out, "1000") {
		t.Errorf("render: %q", out)
	}
	// MustGet of a missing stat returns zero and records a warning rather
	// than panicking: a design that lacks one counter must not abort a
	// whole experiment batch.
	if v := s.MustGet("nope"); v != 0 {
		t.Errorf("MustGet of missing stat = %v, want 0", v)
	}
	warns := s.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "nope") {
		t.Errorf("expected one warning naming the missing stat, got %v", warns)
	}
	// Present stats never warn.
	s.MustGet("cycles")
	if len(s.Warnings()) != 1 {
		t.Errorf("MustGet of present stat must not add warnings: %v", s.Warnings())
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("bench", "ideal", "seg")
	tb.AddRowValues("swim", 2, 3.1, 2.5)
	tb.AddRow("gcc", map[string]string{"ideal": "1.10"})
	out := tb.String()
	if !strings.Contains(out, "bench") || !strings.Contains(out, "3.10") {
		t.Errorf("table render missing data:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell should render as '-':\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("expected header+rule+2 rows, got %d lines", len(lines))
	}
	// Extra values beyond the declared columns are ignored.
	tb2 := NewTable("x", "a")
	tb2.AddRowValues("r", 0, 1, 2, 3)
	if strings.Contains(tb2.String(), "3") {
		t.Error("extra values should be dropped")
	}
}

func TestMeans(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean should skip non-positive, got %v", g)
	}
	if ArithMean(nil) != 0 {
		t.Error("empty arithmean should be 0")
	}
	if a := ArithMean([]float64{1, 3}); a != 2 {
		t.Errorf("arithmean = %v", a)
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedNames(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedNames = %v", got)
	}
}

// Property: a Dist never loses samples and its buckets always sum to Total.
func TestDistConservationProperty(t *testing.T) {
	f := func(samples []int16, nBuckets uint8) bool {
		d := NewDist(int(nBuckets%32) + 1)
		for _, s := range samples {
			d.Observe(int(s))
		}
		var sum uint64
		for i := 0; i < d.NumBuckets(); i++ {
			sum += d.Bucket(i)
		}
		return sum == d.Total() && d.Total() == uint64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Peak.Value is always >= Peak.Current and never decreases.
func TestPeakMonotoneProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		var p Peak
		prevPeak := int64(0)
		for _, d := range deltas {
			p.Add(int64(d))
			if p.Value() < prevPeak || p.Value() < p.Current() {
				return false
			}
			prevPeak = p.Value()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
