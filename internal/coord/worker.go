package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// Worker is the pull loop behind `iqbench -worker -coord-url`: fetch
// the coordinator's spec once, then lease → simulate → complete until
// the grid is done. A heartbeat goroutine renews the current lease
// while a batch simulates, so a slow batch is not mistaken for a dead
// worker; a worker that really dies simply stops renewing and its
// jobs re-queue at the coordinator after the lease TTL.
type Worker struct {
	// URL is the coordinator's base URL, e.g. "http://host:8377".
	URL string
	// Name identifies this worker in leases and /progress. Empty picks
	// "host:pid".
	Name string
	// BatchSize is how many jobs to lease at once; the coordinator caps
	// it. Zero means 1 — the finest-grained balancing, which is what
	// makes cost-ordered assignment shrink stragglers.
	BatchSize int
	// Parallel bounds concurrent simulations within a batch (0 =
	// GOMAXPROCS).
	Parallel int
	// ShareWarmups forces the warm-checkpoint cache through the
	// coordinator's /ckpt/ store even when the spec does not advertise
	// one; normally workers enable it automatically when the
	// coordinator reports SharedStore, so warmups are shared exactly
	// like -ckpt-url shards.
	ShareWarmups bool
	// Client performs the requests; nil uses a 5-minute-timeout client
	// (a fragment upload can be large).
	Client *http.Client
	// Poll is how long to wait when all remaining work is leased to
	// other workers; zero means 2 s.
	Poll time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	// Stats, when non-nil, counts this worker's checkpoint-store
	// activity (only used with ShareWarmups).
	Stats *sim.StoreStats
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 2 * time.Second
}

// Run executes the pull loop until the coordinator reports the grid
// complete. Simulation errors abort the worker (the lease TTL returns
// its jobs to the queue); transient coordinator unavailability is
// retried a few times before giving up.
func (w *Worker) Run() error {
	spec, err := w.fetchSpec()
	if err != nil {
		return err
	}
	o := experiments.Options{
		Instructions: spec.Instructions,
		Warmup:       spec.Warmup,
		Seed:         spec.Seed,
		Benchmarks:   spec.Benchmarks,
		Parallel:     w.Parallel,
	}
	if w.ShareWarmups || spec.SharedStore {
		o.CheckpointURL = strings.TrimRight(w.URL, "/")
		o.CkptStats = w.Stats
	}
	ttl := time.Duration(spec.LeaseTTLMs) * time.Millisecond
	name := w.name()
	w.logf("[worker %s: %s grid from %s (n=%d warm=%d lease %s)]",
		name, spec.Experiment, w.URL, spec.Instructions, spec.Warmup, ttl)
	batch := w.BatchSize
	if batch <= 0 {
		batch = 1
	}
	for {
		var lease LeaseResponse
		if err := w.postRetry("/jobs/lease", LeaseRequest{Worker: name, Max: batch}, &lease); err != nil {
			return err
		}
		if len(lease.Jobs) == 0 {
			if lease.Done {
				w.logf("[worker %s: grid complete, exiting]", name)
				return nil
			}
			// Everything left is leased elsewhere; poll for expiries.
			time.Sleep(w.poll())
			continue
		}
		if err := w.runBatch(o, spec.Experiment, name, lease.Jobs, ttl); err != nil {
			return err
		}
	}
}

// runBatch simulates one leased batch under a heartbeat and uploads
// the fragment.
func (w *Worker) runBatch(o experiments.Options, experiment, name string, jobs []string, ttl time.Duration) error {
	stop := make(chan struct{})
	defer close(stop)
	if ttl > 0 {
		go w.heartbeat(name, jobs, ttl, stop)
	}
	w.logf("[worker %s: simulating %d jobs: %s]", name, len(jobs), strings.Join(jobs, ", "))
	frag, err := experiments.RunJobs(o, experiment, jobs)
	if err != nil {
		return fmt.Errorf("coord worker: jobs %v: %w", jobs, err)
	}
	body, err := json.Marshal(frag)
	if err != nil {
		return err
	}
	var ack CompleteResponse
	if err := w.postBody("/jobs/complete?worker="+url.QueryEscape(name), body, &ack); err != nil {
		return err
	}
	w.logf("[worker %s: completed %d jobs (%d duplicate)]", name, ack.Accepted, ack.Duplicates)
	return nil
}

// heartbeat renews the lease at a third of its TTL until stopped. A
// renewal that reports every job lost means the coordinator restarted
// or expired us; the batch keeps running — completion is idempotent
// and the first uploaded result wins.
func (w *Worker) heartbeat(name string, jobs []string, ttl time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			var resp RenewResponse
			if err := w.post("/jobs/renew", RenewRequest{Worker: name, Jobs: jobs}, &resp); err != nil {
				w.logf("[worker %s: heartbeat failed: %v]", name, err)
				continue
			}
			if len(resp.Lost) > 0 {
				w.logf("[worker %s: lease lost on %v (completion will be idempotent)]", name, resp.Lost)
			}
		}
	}
}

func (w *Worker) fetchSpec() (*Spec, error) {
	var spec Spec
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(w.poll())
		}
		if lastErr = w.get("/spec", &spec); lastErr == nil {
			return &spec, nil
		}
	}
	return nil, fmt.Errorf("coord worker: cannot fetch spec from %s: %w", w.URL, lastErr)
}

func (w *Worker) get(path string, into any) error {
	resp, err := w.client().Get(strings.TrimRight(w.URL, "/") + path)
	if err != nil {
		return err
	}
	return decodeResponse(resp, into)
}

// postRetry retries a request through brief coordinator
// unavailability (a restart, a network blip) before giving up.
func (w *Worker) postRetry(path string, req, into any) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			w.logf("[worker: retrying %s after: %v]", path, lastErr)
			time.Sleep(w.poll())
		}
		if lastErr = w.post(path, req, into); lastErr == nil {
			return nil
		}
	}
	return lastErr
}

func (w *Worker) post(path string, req, into any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return w.postBody(path, body, into)
}

func (w *Worker) postBody(path string, body []byte, into any) error {
	resp, err := w.client().Post(strings.TrimRight(w.URL, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeResponse(resp, into)
}

func decodeResponse(resp *http.Response, into any) error {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("coord worker: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
