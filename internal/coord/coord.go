// Package coord turns the checkpoint-serving host into a distributed
// sweep coordinator: one server enumerates an experiment's grid once,
// workers pull job keys under time-bounded leases, simulate them, and
// upload result fragments the server accumulates into the exact file a
// single-process RunShard(0,1) run would have written.
//
// The design carries over the two contracts the PR 4/5 sharding stack
// established and adds a third:
//
//   - Reproducibility: simulations are deterministic and jobs
//     independent, so however the grid is partitioned, re-leased, or
//     raced, the merged output is byte-identical to the single-process
//     run (the final file is produced by the same ShardFile marshal).
//   - Durability: a completed fragment is spooled to disk (atomic
//     temp+rename, the DirStore discipline) before it is acknowledged,
//     and a restarting coordinator reloads the spool — a dead
//     coordinator never loses finished work, and zero completed jobs
//     are re-simulated after a restart.
//   - Liveness: leases expire. A worker that crashes (or loses its
//     network) simply stops renewing; the coordinator re-queues its
//     jobs for the next lease request, so abandoned work is never
//     stranded. Completions are idempotent — if a re-leased job is
//     finished twice, the first result wins (both are identical by
//     determinism anyway).
//
// Assignment is cost-weighted: jobs are handed out most-expensive
// first (longest-processing-time order), priced per workload from the
// newest BENCH_<n>.json baseline via perf's cost model, falling back
// to instruction-count heuristics. Compared with the static round-robin
// `-shard i/n` split, the straggler shard shrinks: the expensive points
// spread across workers first and the cheap tail load-balances itself.
package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

// DefaultLeaseTTL bounds how long a worker may sit on a leased job
// without renewing before the job is re-queued.
const DefaultLeaseTTL = 60 * time.Second

// maxFragmentBytes bounds one uploaded fragment (mirrors the
// checkpoint server's PUT bound).
const maxFragmentBytes = 1 << 30

// Config describes the sweep a coordinator serves.
type Config struct {
	// Experiment names the grid (one of experiments.Experiments).
	Experiment string
	// Options are the run options every worker must reproduce; the
	// coordinator publishes them on /spec.
	Options experiments.Options
	// SpoolDir durably holds completed fragments. Required: it is what
	// makes a coordinator crash lose nothing.
	SpoolDir string
	// LeaseTTL bounds a lease between renewals; zero means
	// DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxLease caps the jobs handed out per lease request (workers may
	// ask for fewer). Zero means 4.
	MaxLease int
	// Costs prices grid points for assignment order; nil falls back to
	// the instruction-count heuristic (perf's nil-model behaviour).
	Costs *perf.CostModel
	// CkptDir, when set, additionally serves the PR 5 checkpoint-store
	// protocol under /ckpt/ from this directory, so workers can share
	// warmups through the coordinator itself.
	CkptDir string
	// Now is the clock, swappable by tests; nil means time.Now.
	Now func() time.Time
	// Logf receives progress lines (leases, expiries, completions);
	// nil discards them.
	Logf func(format string, args ...any)
}

// Spec is what GET /spec returns: everything a worker needs to
// reproduce the coordinator's run options, plus the lease TTL its
// heartbeats must beat.
type Spec struct {
	Experiment   string
	Instructions int64
	Warmup       int64
	Seed         uint64
	Benchmarks   []string `json:",omitempty"`
	LeaseTTLMs   int64
	// SharedStore reports that the coordinator also serves a checkpoint
	// store under /ckpt/, so workers can share warmups through it.
	SharedStore bool `json:",omitempty"`
}

// LeaseRequest asks for up to Max jobs on behalf of Worker.
type LeaseRequest struct {
	Worker string
	Max    int
}

// LeaseResponse grants jobs (possibly none). Done reports that the
// whole grid is complete, so the worker can exit; an empty grant with
// Done=false means "all remaining work is leased elsewhere — poll
// again" (a lease may expire back into the queue).
type LeaseResponse struct {
	Jobs       []string `json:",omitempty"`
	LeaseTTLMs int64
	Done       bool
}

// RenewRequest extends Worker's leases on Jobs.
type RenewRequest struct {
	Worker string
	Jobs   []string
}

// RenewResponse lists which of the requested jobs were renewed and
// which were lost (expired and re-leased, or already completed).
type RenewResponse struct {
	Renewed []string `json:",omitempty"`
	Lost    []string `json:",omitempty"`
}

// CompleteResponse acknowledges an uploaded fragment.
type CompleteResponse struct {
	// Accepted counts newly recorded jobs; Duplicates counts jobs the
	// coordinator already had (idempotent re-completion, first wins).
	Accepted   int
	Duplicates int
	// Done reports grid completion after this fragment.
	Done bool
}

// Progress is the live /progress report.
type Progress struct {
	Experiment string
	Total      int
	Done       int
	Leased     int
	Pending    int
	Complete   bool
	// Workers maps worker name → its current lease/completion counts.
	Workers map[string]*WorkerProgress `json:",omitempty"`
}

// WorkerProgress is one worker's slice of the progress report.
type WorkerProgress struct {
	Leased    int
	Completed int
	// IdleMs is how long ago the worker was last heard from.
	IdleMs int64
}

type lease struct {
	worker  string
	expires time.Time
}

// Server is the coordinator. Create with NewServer, mount via Handler,
// wait on Done, read the result with Merged.
type Server struct {
	cfg  Config
	spec Spec

	mu       sync.Mutex
	merged   *experiments.ShardFile // accumulates completed results
	rank     map[string]int         // job key → cost order position
	workload map[string]string      // job key → "+"-joined context set
	pending  []string               // unleased, undone keys, cost order
	leases   map[string]*lease      // leased keys
	workers  map[string]*workerState
	fragSeq  int
	done     chan struct{}
	closed   bool
}

type workerState struct {
	lastSeen  time.Time
	completed int
}

// NewServer enumerates the experiment's grid, orders it by estimated
// cost, recovers any fragments already spooled in SpoolDir (a restart
// resumes exactly where the previous coordinator stopped), and returns
// a ready-to-serve coordinator.
func NewServer(cfg Config) (*Server, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("coord: SpoolDir is required (it is what makes completed work durable)")
	}
	skeleton, jobs, err := experiments.GridPlan(cfg.Options, cfg.Experiment)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = 4
	}
	s := &Server{
		cfg:    cfg,
		merged: skeleton,
		spec: Spec{
			Experiment:   cfg.Experiment,
			Instructions: cfg.Options.Instructions,
			Warmup:       cfg.Options.Warmup,
			Seed:         cfg.Options.Seed,
			Benchmarks:   cfg.Options.Benchmarks,
			LeaseTTLMs:   cfg.LeaseTTL.Milliseconds(),
			SharedStore:  cfg.CkptDir != "",
		},
		rank:     make(map[string]int, len(jobs)),
		workload: make(map[string]string, len(jobs)),
		leases:   make(map[string]*lease),
		workers:  make(map[string]*workerState),
		done:     make(chan struct{}),
	}
	// Most-expensive-first, key order breaking ties so every restart
	// derives the identical queue.
	order := make([]JobCost, len(jobs))
	for i, j := range jobs {
		order[i] = JobCost{Key: j.Key, Cost: cfg.Costs.Cost(j.Workload, cfg.Options.Instructions)}
		s.workload[j.Key] = j.Workload
	}
	sort.SliceStable(order, func(i, k int) bool {
		if order[i].Cost != order[k].Cost {
			return order[i].Cost > order[k].Cost
		}
		return order[i].Key < order[k].Key
	})
	s.pending = make([]string, len(order))
	for i, jc := range order {
		s.rank[jc.Key] = i
		s.pending[i] = jc.Key
	}
	if err := s.recoverSpool(); err != nil {
		return nil, err
	}
	return s, nil
}

// JobCost pairs a job key with its estimated cost; exported for tests
// and tooling that want to inspect assignment order.
type JobCost struct {
	Key  string
	Cost float64
}

// Queue returns the current pending queue in assignment order (a
// copy). Diagnostic; the authoritative state lives behind the mutex.
func (s *Server) Queue() []JobCost {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobCost, len(s.pending))
	for i, k := range s.pending {
		out[i] = JobCost{Key: k, Cost: s.cfg.Costs.Cost(s.workload[k], s.cfg.Options.Instructions)}
	}
	return out
}

func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// recoverSpool replays every fragment a previous coordinator process
// acknowledged. Fragments were written atomically, so each file is
// either complete and valid or absent; anything unreadable is renamed
// aside rather than trusted.
func (s *Server) recoverSpool() error {
	ents, err := os.ReadDir(s.cfg.SpoolDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if n := e.Name(); strings.HasPrefix(n, "frag_") && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.cfg.SpoolDir, name)
		b, err := os.ReadFile(path)
		var frag *experiments.ShardFile
		if err == nil {
			frag, err = s.parseFragment(b)
		}
		if err != nil {
			// Spooled by an earlier, incompatible build or damaged out of
			// band. Keep it for forensics but do not let it poison the run.
			s.logf("[coord: quarantining unreadable spool fragment %s: %v]", name, err)
			os.Rename(path, path+".bad")
			continue
		}
		acc, dup := s.accumulateLocked(frag)
		s.logf("[coord: recovered %s: %d jobs (%d duplicate)]", name, acc, dup)
		if seq := fragSeq(name); seq >= s.fragSeq {
			s.fragSeq = seq + 1
		}
	}
	if len(names) > 0 {
		s.logf("[coord: spool recovery: %d/%d jobs already complete]",
			len(s.merged.Results), s.merged.TotalJobs)
	}
	s.finishIfCompleteLocked()
	return nil
}

func fragSeq(name string) int {
	var seq int
	if _, err := fmt.Sscanf(name, "frag_%d.json", &seq); err != nil {
		return -1
	}
	return seq
}

// parseFragment decodes and validates one uploaded fragment: schema,
// header agreement with the coordinator's own grid plan, and every
// result key a member of the grid.
func (s *Server) parseFragment(body []byte) (*experiments.ShardFile, error) {
	frag := new(experiments.ShardFile)
	if err := json.Unmarshal(body, frag); err != nil {
		return nil, fmt.Errorf("coord: fragment does not parse: %v", err)
	}
	if frag.Schema != experiments.ShardSchema {
		return nil, fmt.Errorf("coord: fragment schema %d, this coordinator speaks %d",
			frag.Schema, experiments.ShardSchema)
	}
	if frag.Header() != s.merged.Header() {
		return nil, fmt.Errorf("coord: fragment header mismatch:\n  got  %s\n  want %s",
			frag.Header(), s.merged.Header())
	}
	for key := range frag.Results {
		if _, ok := s.rank[key]; !ok {
			return nil, fmt.Errorf("coord: fragment result %q is not in %s's grid", key, s.cfg.Experiment)
		}
	}
	return frag, nil
}

// accumulateLocked folds a validated fragment into the merged result
// set: new keys are recorded (and released from lease/pending), known
// keys count as duplicates and keep their first result. Caller holds
// (or, during construction, owns) the state.
func (s *Server) accumulateLocked(frag *experiments.ShardFile) (accepted, duplicates int) {
	for key, r := range frag.Results {
		if s.merged.Results[key] != nil {
			duplicates++
			continue
		}
		s.merged.Results[key] = r
		accepted++
		delete(s.leases, key)
		s.removePendingLocked(key)
	}
	return accepted, duplicates
}

func (s *Server) removePendingLocked(key string) {
	for i, k := range s.pending {
		if k == key {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// requeueLocked returns an expired job to the pending queue at its
// cost-order position.
func (s *Server) requeueLocked(key string) {
	pos := sort.Search(len(s.pending), func(i int) bool {
		return s.rank[s.pending[i]] >= s.rank[key]
	})
	s.pending = append(s.pending, "")
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = key
}

// expireLocked re-queues every lease whose deadline has passed. Called
// from every state-touching handler, so expiry needs no background
// goroutine and is deterministic under an injected clock.
func (s *Server) expireLocked(now time.Time) {
	for key, l := range s.leases {
		if now.After(l.expires) {
			delete(s.leases, key)
			s.requeueLocked(key)
			s.logf("[coord: re-leased %s (lease by %s expired)]", key, l.worker)
		}
	}
}

func (s *Server) finishIfCompleteLocked() {
	if !s.closed && len(s.merged.Results) == s.merged.TotalJobs {
		s.closed = true
		close(s.done)
		s.logf("[coord: grid complete: %d jobs]", s.merged.TotalJobs)
	}
}

// Done is closed once every grid job has a result.
func (s *Server) Done() <-chan struct{} { return s.done }

// Merged returns the accumulated shard file. Only complete and
// immutable after Done; callers before that get a snapshot reference
// they must not hold across handler activity.
func (s *Server) Merged() *experiments.ShardFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merged
}

// touchWorkerLocked records a sighting of the worker.
func (s *Server) touchWorkerLocked(name string, now time.Time) *workerState {
	if name == "" {
		name = "anonymous"
	}
	w := s.workers[name]
	if w == nil {
		w = &workerState{}
		s.workers[name] = w
	}
	w.lastSeen = now
	return w
}

// Handler returns the coordinator's HTTP mux. When Config.CkptDir is
// set, the checkpoint-store protocol is mounted under /ckpt/ as well,
// so one address serves both job leases and shared warmups.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/spec", s.handleSpec)
	mux.HandleFunc("/jobs/lease", s.handleLease)
	mux.HandleFunc("/jobs/renew", s.handleRenew)
	mux.HandleFunc("/jobs/complete", s.handleComplete)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/merged", s.handleMerged)
	if s.cfg.CkptDir != "" {
		mux.Handle("/ckpt/", sim.NewStoreHandler(s.cfg.CkptDir))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFragmentBytes)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.spec)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	max := req.Max
	if max <= 0 || max > s.cfg.MaxLease {
		max = s.cfg.MaxLease
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchWorkerLocked(req.Worker, now)
	resp := LeaseResponse{LeaseTTLMs: s.cfg.LeaseTTL.Milliseconds()}
	for len(resp.Jobs) < max && len(s.pending) > 0 {
		key := s.pending[0]
		s.pending = s.pending[1:]
		s.leases[key] = &lease{worker: req.Worker, expires: now.Add(s.cfg.LeaseTTL)}
		resp.Jobs = append(resp.Jobs, key)
	}
	resp.Done = len(s.merged.Results) == s.merged.TotalJobs
	if len(resp.Jobs) > 0 {
		s.logf("[coord: leased %d jobs to %s (%d pending, %d leased, %d/%d done)]",
			len(resp.Jobs), req.Worker, len(s.pending), len(s.leases),
			len(s.merged.Results), s.merged.TotalJobs)
	}
	writeJSON(w, resp)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchWorkerLocked(req.Worker, now)
	var resp RenewResponse
	for _, key := range req.Jobs {
		if l := s.leases[key]; l != nil && l.worker == req.Worker {
			l.expires = now.Add(s.cfg.LeaseTTL)
			resp.Renewed = append(resp.Renewed, key)
		} else {
			resp.Lost = append(resp.Lost, key)
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFragmentBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	frag, err := s.parseFragment(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Spool before acknowledging (and before mutating state): once the
	// worker sees 2xx, the results must survive any coordinator crash.
	if err := s.spoolLocked(body); err != nil {
		http.Error(w, fmt.Sprintf("spool: %v", err), http.StatusInternalServerError)
		return
	}
	s.expireLocked(now)
	worker := r.URL.Query().Get("worker")
	ws := s.touchWorkerLocked(worker, now)
	accepted, duplicates := s.accumulateLocked(frag)
	ws.completed += accepted
	s.finishIfCompleteLocked()
	s.logf("[coord: %s completed %d jobs (%d duplicate): %d/%d done]",
		worker, accepted, duplicates, len(s.merged.Results), s.merged.TotalJobs)
	writeJSON(w, CompleteResponse{
		Accepted:   accepted,
		Duplicates: duplicates,
		Done:       len(s.merged.Results) == s.merged.TotalJobs,
	})
}

// spoolLocked durably stores one fragment body under the next
// sequence number, temp+rename so a crash mid-write never leaves a
// torn file that recovery would have to guess about.
func (s *Server) spoolLocked(body []byte) error {
	if err := os.MkdirAll(s.cfg.SpoolDir, 0o777); err != nil {
		return err
	}
	name := fmt.Sprintf("frag_%06d.json", s.fragSeq)
	tmp, err := os.CreateTemp(s.cfg.SpoolDir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.cfg.SpoolDir, name)); err != nil {
		return err
	}
	s.fragSeq++
	return nil
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	p := Progress{
		Experiment: s.cfg.Experiment,
		Total:      s.merged.TotalJobs,
		Done:       len(s.merged.Results),
		Leased:     len(s.leases),
		Pending:    len(s.pending),
		Complete:   len(s.merged.Results) == s.merged.TotalJobs,
		Workers:    make(map[string]*WorkerProgress, len(s.workers)),
	}
	leasedBy := make(map[string]int)
	for _, l := range s.leases {
		leasedBy[l.worker]++
	}
	for name, ws := range s.workers {
		p.Workers[name] = &WorkerProgress{
			Leased:    leasedBy[name],
			Completed: ws.completed,
			IdleMs:    now.Sub(ws.lastSeen).Milliseconds(),
		}
	}
	writeJSON(w, p)
}

func (s *Server) handleMerged(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	complete := len(s.merged.Results) == s.merged.TotalJobs
	var b []byte
	var err error
	if complete {
		b, err = s.merged.MarshalPretty()
	}
	s.mu.Unlock()
	if !complete {
		http.Error(w, "grid not complete yet (see /progress)", http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
