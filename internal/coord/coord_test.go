package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
)

// coordTestOptions is the smallest interesting grid: table2 over swim
// alone is 4 single-context jobs (one per queue variant).
func coordTestOptions() experiments.Options {
	return experiments.Options{
		Instructions: 2000,
		Warmup:       10_000,
		Seed:         1,
		Benchmarks:   []string{"swim"},
	}
}

// singleProcessBytes is the reference every coordinator run must
// reproduce byte-for-byte: a plain RunShard(0,1) of the same grid.
func singleProcessBytes(t *testing.T, o experiments.Options, experiment string) []byte {
	t.Helper()
	sf, err := experiments.RunShard(o, experiment, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sf.MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fakeClock is a mutex-guarded manual clock for driving lease expiry
// deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// logBuffer collects coordinator log lines for assertions.
type logBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (lb *logBuffer) Logf(format string, args ...any) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.lines = append(lb.lines, fmt.Sprintf(format, args...))
}

func (lb *logBuffer) Contains(sub string) bool {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for _, l := range lb.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func postJSON(t *testing.T, url string, req, into any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
}

func leaseJobs(t *testing.T, base, worker string, max int) LeaseResponse {
	t.Helper()
	var resp LeaseResponse
	postJSON(t, base+"/jobs/lease", LeaseRequest{Worker: worker, Max: max}, &resp)
	return resp
}

// completeJobs simulates the named jobs like a worker would and posts
// the fragment, recording each simulated key in simCount.
func completeJobs(t *testing.T, base string, o experiments.Options, experiment, worker string, keys []string, simCount map[string]int) CompleteResponse {
	t.Helper()
	frag, err := experiments.RunJobs(o, experiment, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		simCount[k]++
	}
	body, err := json.Marshal(frag)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs/complete?worker="+worker, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("complete: %s", resp.Status)
	}
	var ack CompleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// TestCoordinatorEndToEnd is the acceptance scenario from the issue:
// two workers plus a crashed one, a lease expiry, and a coordinator
// restart must still produce a merged file byte-identical to a
// single-process RunShard(0,1) run, with zero completed jobs
// re-simulated after the restart.
func TestCoordinatorEndToEnd(t *testing.T) {
	o := coordTestOptions()
	const experiment = "table2"
	want := singleProcessBytes(t, o, experiment)

	clk := newFakeClock()
	spool := t.TempDir()
	logs := &logBuffer{}
	cfg := Config{
		Experiment: experiment,
		Options:    o,
		SpoolDir:   spool,
		LeaseTTL:   time.Minute,
		Now:        clk.Now,
		Logf:       logs.Logf,
	}
	s1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	simCount := make(map[string]int)

	// A worker leases one job and crashes: it never completes and never
	// renews.
	crashed := leaseJobs(t, ts1.URL, "crasher", 1)
	if len(crashed.Jobs) != 1 {
		t.Fatalf("crasher leased %v, want 1 job", crashed.Jobs)
	}

	// Two live workers drain the rest of the queue.
	w1 := leaseJobs(t, ts1.URL, "w1", 2)
	if len(w1.Jobs) != 2 {
		t.Fatalf("w1 leased %v, want 2 jobs", w1.Jobs)
	}
	completeJobs(t, ts1.URL, o, experiment, "w1", w1.Jobs, simCount)
	w2 := leaseJobs(t, ts1.URL, "w2", 4)
	if len(w2.Jobs) != 1 {
		t.Fatalf("w2 leased %v, want the 1 remaining job", w2.Jobs)
	}
	completeJobs(t, ts1.URL, o, experiment, "w2", w2.Jobs, simCount)

	// Everything is done except the crashed worker's job, which is still
	// leased: a lease request for more work comes back empty.
	if got := leaseJobs(t, ts1.URL, "w1", 4); len(got.Jobs) != 0 || got.Done {
		t.Fatalf("lease while crasher holds its job = %+v, want empty and not done", got)
	}

	// The lease expires; the job goes back into the queue.
	clk.Advance(cfg.LeaseTTL + time.Second)
	var prog Progress
	resp, err := http.Get(ts1.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if prog.Pending != 1 || prog.Leased != 0 || prog.Done != 3 {
		t.Fatalf("progress after expiry = %+v, want 1 pending, 0 leased, 3 done", prog)
	}
	if !logs.Contains("re-leased") {
		t.Fatal("expiry did not log a re-leased line")
	}

	// The coordinator dies before the last job completes. A new one over
	// the same spool directory recovers all three finished jobs.
	ts1.Close()
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if got := len(s2.Merged().Results); got != 3 {
		t.Fatalf("restarted coordinator recovered %d jobs, want 3", got)
	}

	// Only the crashed worker's job is handed out again; completed work
	// is never re-simulated.
	preRestart := make(map[string]int, len(simCount))
	for k, n := range simCount {
		preRestart[k] = n
	}
	last := leaseJobs(t, ts2.URL, "w2", 4)
	if len(last.Jobs) != 1 || last.Jobs[0] != crashed.Jobs[0] {
		t.Fatalf("restarted coordinator leased %v, want exactly the crashed job %v", last.Jobs, crashed.Jobs)
	}
	ack := completeJobs(t, ts2.URL, o, experiment, "w2", last.Jobs, simCount)
	if ack.Accepted != 1 || !ack.Done {
		t.Fatalf("final completion ack = %+v, want 1 accepted and done", ack)
	}
	for k, n := range preRestart {
		if simCount[k] != n {
			t.Fatalf("job %s re-simulated after restart", k)
		}
	}
	for _, n := range simCount {
		if n != 1 {
			t.Fatalf("simulation counts %v, want every job exactly once", simCount)
		}
	}

	select {
	case <-s2.Done():
	default:
		t.Fatal("grid complete but Done not closed")
	}

	// The assembled file is byte-identical to the single-process run,
	// both in memory and over GET /merged.
	got, err := s2.Merged().MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator merge differs from single-process RunShard(0,1):\ncoord:\n%s\nsingle:\n%s", got, want)
	}
	mresp, err := http.Get(ts2.URL + "/merged")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	served := new(bytes.Buffer)
	served.ReadFrom(mresp.Body)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /merged: %s", mresp.Status)
	}
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatal("GET /merged differs from single-process bytes")
	}
}

// TestCoordinatorDoubleCompletion: completing the same jobs twice is
// idempotent — the first result wins and the second upload counts only
// duplicates.
func TestCoordinatorDoubleCompletion(t *testing.T) {
	o := coordTestOptions()
	const experiment = "table2"
	s, err := NewServer(Config{Experiment: experiment, Options: o, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lease := leaseJobs(t, ts.URL, "w1", 4)
	if len(lease.Jobs) != 4 {
		t.Fatalf("leased %v, want all 4 jobs", lease.Jobs)
	}
	frag, err := experiments.RunJobs(o, experiment, lease.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(frag)
	if err != nil {
		t.Fatal(err)
	}
	post := func() CompleteResponse {
		resp, err := http.Post(ts.URL+"/jobs/complete?worker=w1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack CompleteResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		return ack
	}
	first := post()
	if first.Accepted != 4 || first.Duplicates != 0 || !first.Done {
		t.Fatalf("first completion = %+v, want 4 accepted, done", first)
	}
	before, err := s.Merged().MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	second := post()
	if second.Accepted != 0 || second.Duplicates != 4 || !second.Done {
		t.Fatalf("second completion = %+v, want 0 accepted, 4 duplicates", second)
	}
	after, err := s.Merged().MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("duplicate completion changed the merged file")
	}
	if want := singleProcessBytes(t, o, experiment); !bytes.Equal(after, want) {
		t.Fatal("merged file differs from single-process RunShard(0,1)")
	}
}

// TestWorkerLoop drives the real Worker pull loop: two concurrent
// workers drain the grid against a live coordinator and the result is
// byte-identical to the single-process run.
func TestWorkerLoop(t *testing.T) {
	o := coordTestOptions()
	const experiment = "table2"
	s, err := NewServer(Config{
		Experiment: experiment,
		Options:    o,
		SpoolDir:   t.TempDir(),
		LeaseTTL:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL:  ts.URL,
				Name: fmt.Sprintf("w%d", i),
				Poll: 10 * time.Millisecond,
				Logf: t.Logf,
			}
			errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("workers exited but the grid is not done")
	}
	got, err := s.Merged().MarshalPretty()
	if err != nil {
		t.Fatal(err)
	}
	if want := singleProcessBytes(t, o, experiment); !bytes.Equal(got, want) {
		t.Fatal("worker-driven merge differs from single-process RunShard(0,1)")
	}
}

// TestQueueCostOrder: with a measured baseline the queue is
// longest-processing-time ordered — every swim job (priced 3× gcc)
// precedes every gcc job, and costs are non-increasing.
func TestQueueCostOrder(t *testing.T) {
	o := coordTestOptions()
	o.Benchmarks = []string{"swim", "gcc"}
	costs := perf.NewCostModel(perf.Baseline{
		Schema: perf.Schema,
		Workloads: []perf.Metrics{
			{Name: "table1_segmented_swim", NsPerOp: 3e9, SimInstructions: 1e6},
			{Name: "table1_segmented_gcc", NsPerOp: 1e9, SimInstructions: 1e6},
		},
	})
	s, err := NewServer(Config{
		Experiment: "table2",
		Options:    o,
		SpoolDir:   t.TempDir(),
		Costs:      costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := s.Queue()
	if len(q) != 8 {
		t.Fatalf("queue has %d jobs, want 8", len(q))
	}
	for i, jc := range q {
		if i > 0 && jc.Cost > q[i-1].Cost {
			t.Fatalf("queue not cost-descending at %d: %v", i, q)
		}
		wantSwim := i < 4
		if strings.HasSuffix(jc.Key, "/swim") != wantSwim {
			t.Fatalf("queue position %d is %s; want all swim jobs first: %v", i, jc.Key, q)
		}
	}
}

// TestRecoverSpoolQuarantine: a damaged or incompatible spool file is
// renamed aside, not trusted and not fatal.
func TestRecoverSpoolQuarantine(t *testing.T) {
	o := coordTestOptions()
	spool := t.TempDir()
	bad := filepath.Join(spool, "frag_000000.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Experiment: "table2", Options: o, SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bad + ".bad"); err != nil {
		t.Fatalf("damaged fragment not quarantined: %v", err)
	}
	if got := len(s.Queue()); got != 4 {
		t.Fatalf("queue after quarantine has %d jobs, want the full 4", got)
	}
}

// TestServerRequiresSpoolDir: durability is not optional.
func TestServerRequiresSpoolDir(t *testing.T) {
	if _, err := NewServer(Config{Experiment: "table2", Options: coordTestOptions()}); err == nil {
		t.Fatal("NewServer accepted an empty SpoolDir")
	}
}
