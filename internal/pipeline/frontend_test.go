package pipeline

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uop"
)

func newTestFE(t *testing.T, ins []isa.Inst) (*FrontEnd, *mem.Hierarchy) {
	t.Helper()
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	bp := bpred.MustNewPredictor(bpred.DefaultConfig())
	btb := bpred.MustNewBTB(4096, 4)
	fe := NewFrontEnd(DefaultFrontEndConfig(), trace.FromSlice("t", ins), bp, btb, h.L1I)
	return fe, h
}

func seqAlu(n int, basePC uint64) []isa.Inst {
	ins := make([]isa.Inst, n)
	for i := range ins {
		ins[i] = isa.Inst{PC: basePC + uint64(4*i), Class: isa.IntAlu,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1}
	}
	return ins
}

func TestFrontEndDepthAndDelivery(t *testing.T) {
	fe, h := newTestFE(t, seqAlu(4, 0x1000))
	if fe.Depth() != 15 {
		t.Fatalf("depth = %d, want 10+5", fe.Depth())
	}
	// The first line misses the I-cache: fetch stalls until the fill.
	fe.Fetch(0)
	if fe.BufLen() != 1 {
		t.Fatalf("fetched %d, want 1 before the line stall", fe.BufLen())
	}
	for c := int64(0); c <= 300 && fe.BufLen() < 4; c++ {
		h.Tick(c)
		fe.Fetch(c)
	}
	if fe.BufLen() != 4 {
		t.Fatalf("buffered %d, want 4", fe.BufLen())
	}
	if fe.ICacheStallCycles() == 0 {
		t.Error("cold I-cache miss should have stalled fetch")
	}
	// Delivery honours the pipeline depth.
	first := fe.buf[0]
	if fe.NextReady(first.readyAt-1) != nil {
		t.Fatal("delivered before traversing the front end")
	}
	if fe.NextReady(first.readyAt) == nil {
		t.Fatal("not delivered at readyAt")
	}
	fe.Pop()
	if fe.BufLen() != 3 {
		t.Fatal("pop")
	}
}

func TestFrontEndExtraDispatchStage(t *testing.T) {
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	cfg := DefaultFrontEndConfig()
	cfg.ExtraDispatch = 1
	fe := NewFrontEnd(cfg, trace.FromSlice("t", seqAlu(1, 0x1000)),
		bpred.MustNewPredictor(bpred.DefaultConfig()), bpred.MustNewBTB(4096, 4), h.L1I)
	if fe.Depth() != 16 {
		t.Fatalf("depth = %d, want 16", fe.Depth())
	}
}

func TestFrontEndMispredictStall(t *testing.T) {
	ins := seqAlu(2, 0x1000)
	br := isa.Inst{PC: 0x1008, Class: isa.Branch, Src1: 1, Src2: isa.RegNone,
		Taken: true, Target: 0x2000}
	ins = append(ins, br)
	ins = append(ins, seqAlu(3, 0x2000)...)
	fe, h := newTestFE(t, ins)

	warm := func() {
		for c := int64(0); c <= 400; c++ {
			h.Tick(c)
			fe.Fetch(c)
			if fe.BufLen() >= 3 {
				return
			}
		}
	}
	warm()
	// A cold taken branch has no BTB entry: mispredicted, fetch stalls.
	if fe.Mispredicts() != 1 {
		t.Fatalf("mispredicts = %d, want 1 (cold BTB)", fe.Mispredicts())
	}
	brUop := fe.buf[fe.BufLen()-1].u
	if !brUop.Mispredicted || !brUop.IsBranch() {
		t.Fatal("branch uop not flagged")
	}
	before := fe.BufLen()
	fe.Fetch(500)
	if fe.BufLen() != before {
		t.Fatal("fetch continued past an unresolved misprediction")
	}
	if fe.BranchStallCycles() == 0 {
		t.Fatal("stall cycles not counted")
	}
	// Resolve the branch: fetch resumes.
	brUop.Complete = 501
	for c := int64(501); c <= 900 && fe.BufLen() < 6; c++ {
		h.Tick(c)
		fe.Fetch(c)
	}
	if fe.BufLen() != 6 {
		t.Fatalf("post-resolve fetch delivered %d, want 6", fe.BufLen())
	}
}

func TestFrontEndTakenBranchEndsGroup(t *testing.T) {
	// A predicted, BTB-known taken branch ends the fetch group but does
	// not stall.
	ins := []isa.Inst{
		{PC: 0x3000, Class: isa.Branch, Src1: 1, Src2: isa.RegNone, Taken: true, Target: 0x3000},
	}
	// Repeat the same branch so predictor and BTB warm up.
	var loop []isa.Inst
	for i := 0; i < 40; i++ {
		loop = append(loop, ins[0])
	}
	fe, h := newTestFE(t, loop)
	for c := int64(0); c <= 2000 && !fe.Done(); c++ {
		h.Tick(c)
		fe.Fetch(c)
		for fe.NextReady(c) != nil {
			u := fe.NextReady(c)
			if u.Mispredicted {
				u.Complete = c + 1 // resolve instantly
			}
			fe.Pop()
		}
	}
	if fe.Branches() != 40 {
		t.Fatalf("branches = %d", fe.Branches())
	}
	// After warm-up the loop branch predicts perfectly: few mispredicts.
	if fe.Mispredicts() > 5 {
		t.Fatalf("mispredicts = %d on a trivial loop", fe.Mispredicts())
	}
}

func TestFrontEndMaxBranchesPerCycle(t *testing.T) {
	// Five not-taken branches on one line: at most three fetched per
	// cycle.
	var ins []isa.Inst
	for i := 0; i < 5; i++ {
		ins = append(ins, isa.Inst{PC: 0x4000 + uint64(4*i), Class: isa.Branch,
			Src1: 1, Src2: isa.RegNone, Taken: false})
	}
	fe, h := newTestFE(t, ins)
	// Warm the I-cache line first.
	for c := int64(0); c <= 300 && fe.BufLen() == 0; c++ {
		h.Tick(c)
		fe.Fetch(c)
	}
	for c := int64(301); fe.BufLen() > 0; c++ {
		if fe.NextReady(c) != nil {
			fe.Pop()
		}
		if c > 1000 {
			t.Fatal("drain stuck")
		}
	}
	start := fe.Fetched()
	fe.Fetch(1001)
	got := fe.Fetched() - start
	if got > 3 {
		t.Fatalf("fetched %d branches in one cycle, max 3", got)
	}
}

func TestFrontEndDone(t *testing.T) {
	fe, h := newTestFE(t, seqAlu(2, 0x5000))
	for c := int64(0); c <= 400 && !fe.Done(); c++ {
		h.Tick(c)
		fe.Fetch(c)
		if u := fe.NextReady(c); u != nil {
			_ = u
			fe.Pop()
		}
	}
	if !fe.Done() {
		t.Fatal("front end never drained")
	}
	fe.Fetch(401) // no-op after done
	if fe.BufLen() != 0 {
		t.Fatal("fetch after done produced instructions")
	}
	_ = uop.NotYet
}
