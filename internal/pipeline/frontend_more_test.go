package pipeline

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestFrontEndTrain(t *testing.T) {
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	bp := bpred.MustNewPredictor(bpred.DefaultConfig())
	btb := bpred.MustNewBTB(4096, 4)
	fe := NewFrontEnd(DefaultFrontEndConfig(), trace.FromSlice("t", nil), bp, btb, h.L1I)

	br := isa.Inst{PC: 0x7000, Class: isa.Branch, Src1: 1, Src2: isa.RegNone,
		Taken: true, Target: 0x8000}
	for i := 0; i < 32; i++ {
		fe.Train(br)
	}
	if !bp.Predict(0x7000) {
		t.Error("training did not reach the direction predictor")
	}
	if tgt, ok := btb.Lookup(0x7000); !ok || tgt != 0x8000 {
		t.Error("training did not reach the BTB")
	}
	// Non-branches are ignored.
	fe.Train(isa.Inst{PC: 0x7004, Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3})
}

func TestFrontEndFourthBranchPushback(t *testing.T) {
	// Four not-taken branches in one line: the fourth must be deferred to
	// the next fetch group, not silently over-predicted.
	var ins []isa.Inst
	for i := 0; i < 4; i++ {
		ins = append(ins, isa.Inst{PC: 0x9000 + uint64(4*i), Class: isa.Branch,
			Src1: 1, Src2: isa.RegNone, Taken: false})
	}
	fe, h := newTestFE(t, ins)
	// Warm the line and train the predictor on the exact sequence so no
	// branch mispredicts (a mispredict would end the group on its own).
	h.WarmInst(0x9000)
	for round := 0; round < 50; round++ {
		for _, in := range ins {
			fe.Train(in)
		}
	}
	fe.Fetch(0)
	if fe.BufLen() != 3 {
		t.Fatalf("fetched %d in the first group, want 3 (mispredicts %d)",
			fe.BufLen(), fe.Mispredicts())
	}
	fe.Fetch(1)
	if fe.BufLen() != 4 {
		t.Fatalf("pushed-back branch lost: %d buffered", fe.BufLen())
	}
	if fe.Branches() != 4 {
		t.Fatalf("branches = %d", fe.Branches())
	}
}

func TestFrontEndBufferCap(t *testing.T) {
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	cfg := DefaultFrontEndConfig()
	cfg.BufferCap = 8
	var ins []isa.Inst
	for i := 0; i < 64; i++ {
		ins = append(ins, isa.Inst{PC: 0xa000 + uint64(4*i), Class: isa.IntAlu,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
	}
	h.WarmInst(0xa000)
	h.WarmInst(0xa040)
	h.WarmInst(0xa080)
	fe := NewFrontEnd(cfg, trace.FromSlice("t", ins),
		bpred.MustNewPredictor(bpred.DefaultConfig()), bpred.MustNewBTB(4096, 4), h.L1I)
	for c := int64(0); c < 10; c++ {
		fe.Fetch(c)
		if fe.BufLen() > 8 {
			t.Fatalf("buffer cap exceeded: %d", fe.BufLen())
		}
	}
	if fe.BufLen() != 8 {
		t.Fatalf("buffer should be capped full, got %d", fe.BufLen())
	}
}
