package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uop"
)

// FrontEndConfig describes the fetch/decode pipeline of Table 1.
type FrontEndConfig struct {
	FetchWidth       int // instructions per cycle (8)
	MaxBranches      int // branch predictions per cycle (3)
	FetchToDecode    int // cycles (10)
	DecodeToDispatch int // cycles (5)
	// ExtraDispatch is the additional dispatch latency charged to the
	// segmented and prescheduling IQ designs (§5).
	ExtraDispatch int
	// BufferCap bounds the decoupling queue between fetch and dispatch.
	BufferCap int
}

// DefaultFrontEndConfig returns Table 1's front end.
func DefaultFrontEndConfig() FrontEndConfig {
	return FrontEndConfig{
		FetchWidth:       8,
		MaxBranches:      3,
		FetchToDecode:    10,
		DecodeToDispatch: 5,
		BufferCap:        192,
	}
}

type fetched struct {
	u       *uop.UOp
	readyAt int64
}

// FrontEnd models instruction fetch through dispatch delivery: trace-driven
// fetch with branch prediction and BTB lookup, an instruction-cache port,
// and the 15-cycle front-end pipeline as a delay queue. On a branch
// misprediction, fetch stalls until the branch executes — the standard
// trace-driven redirect model (wrong-path instructions are not fetched);
// the refetched stream then pays the full front-end refill latency.
type FrontEnd struct {
	cfg    FrontEndConfig
	stream trace.Stream
	bp     *bpred.Predictor
	btb    *bpred.BTB
	icache *mem.Cache

	buf     []fetched
	pending *isa.Inst // pushed-back instruction (fetch-group boundary)
	seq     int64
	done    bool

	stalledOn   *uop.UOp // mispredicted branch being waited on
	icacheWait  bool
	currentLine uint64
	haveLine    bool

	fetchedCount   uint64
	branches       uint64
	mispredicts    uint64
	btbMisses      uint64
	icacheStallCyc uint64
	branchStallCyc uint64
}

// NewFrontEnd builds a front end over the given trace.
func NewFrontEnd(cfg FrontEndConfig, s trace.Stream, bp *bpred.Predictor, btb *bpred.BTB, icache *mem.Cache) *FrontEnd {
	return &FrontEnd{cfg: cfg, stream: s, bp: bp, btb: btb, icache: icache}
}

// feOpLineDone is the front end's only mem.Handler op: the awaited
// instruction line arrived.
const feOpLineDone uint8 = 0

// HandleEvent implements mem.Handler: clear the instruction-cache wait.
func (f *FrontEnd) HandleEvent(uint8, int64, mem.Kind, any) { f.icacheWait = false }

// Depth returns the total front-end latency in cycles.
func (f *FrontEnd) Depth() int {
	return f.cfg.FetchToDecode + f.cfg.DecodeToDispatch + f.cfg.ExtraDispatch
}

// Done reports whether the trace is exhausted and the buffer drained.
func (f *FrontEnd) Done() bool { return f.done && len(f.buf) == 0 }

// Fetch runs one fetch cycle: up to FetchWidth instructions, at most
// MaxBranches branches, ending at a taken branch, subject to the
// instruction cache and any unresolved misprediction.
func (f *FrontEnd) Fetch(cycle int64) {
	if f.done {
		return
	}
	if f.stalledOn != nil {
		if f.stalledOn.Complete == uop.NotYet || f.stalledOn.Complete > cycle {
			f.branchStallCyc++
			return
		}
		f.stalledOn = nil
	}
	if f.icacheWait {
		f.icacheStallCyc++
		return
	}
	branches := 0
	for n := 0; n < f.cfg.FetchWidth; n++ {
		if len(f.buf) >= f.cfg.BufferCap {
			return
		}
		var in isa.Inst
		if f.pending != nil {
			in = *f.pending
			f.pending = nil
		} else {
			var ok bool
			in, ok = f.stream.Next()
			if !ok {
				f.done = true
				return
			}
		}
		// Table 1: at most three branch predictions per cycle. A fourth
		// branch ends the group and is refetched next cycle.
		if in.Class == isa.Branch && branches >= f.cfg.MaxBranches {
			f.pending = &in
			return
		}

		// Instruction cache: moving to a new line costs a lookup; a miss
		// stalls fetch until the fill (fetch resumes with this
		// instruction already buffered — it was delivered by the fill).
		line := in.PC &^ 63
		newLine := !f.haveLine || line != f.currentLine
		stallForLine := false
		if newLine {
			kind := f.icache.Probe(in.PC)
			if f.icache.AccessRef(cycle, in.PC, false, mem.Ref{H: f, Op: feOpLineDone}) {
				f.currentLine = line
				f.haveLine = true
				if kind != mem.KindHit {
					f.icacheWait = true
					stallForLine = true
				}
			} else {
				// Instruction MSHRs full: end the group; the line lookup
				// retries next cycle.
				f.haveLine = false
				stallForLine = true
			}
		}

		u := uop.New(f.seq, in)
		f.seq++
		f.fetchedCount++

		endGroup := false
		if in.Class == isa.Branch {
			branches++
			f.branches++
			predTaken := f.bp.Predict(in.PC)
			target, btbHit := f.btb.Lookup(in.PC)
			mispred := predTaken != in.Taken
			if !mispred && in.Taken && (!btbHit || target != in.Target) {
				mispred = true
				f.btbMisses++
			}
			f.bp.Update(in.PC, in.Taken)
			if in.Taken {
				f.btb.Insert(in.PC, in.Target)
			}
			if mispred {
				u.Mispredicted = true
				f.mispredicts++
				f.stalledOn = u
				endGroup = true
			}
			if in.Taken {
				endGroup = true // one taken branch per fetch group
			}
		}

		f.buf = append(f.buf, fetched{u: u, readyAt: cycle + int64(f.Depth())})
		if endGroup || stallForLine || f.stalledOn != nil {
			return
		}
	}
}

// Fetch-cycle skip classes, returned by SkipClass: what one elided Fetch
// call would have done.
const (
	// FetchSkipNo: fetch would make progress (buffer instructions, retry an
	// instruction-line lookup, or resume after a resolved branch) — the
	// cycle cannot be elided.
	FetchSkipNo = iota
	// FetchSkipIdle: trace exhausted or buffer full; Fetch is a no-op.
	FetchSkipIdle
	// FetchSkipBranch: stalled on an unresolved misprediction;
	// branchStallCyc ticks once per cycle.
	FetchSkipBranch
	// FetchSkipICache: waiting on an instruction-line fill; icacheStallCyc
	// ticks once per cycle.
	FetchSkipICache
)

// SkipClass classifies what Fetch would do on an elided cycle, for
// idle-cycle skipping. The class holds for a whole skip window because the
// conditions are all released by events (branch writeback, line fill) or
// by dispatch draining the buffer, none of which happen inside one.
func (f *FrontEnd) SkipClass(cycle int64) int {
	if f.done {
		return FetchSkipIdle
	}
	if f.stalledOn != nil {
		if f.stalledOn.Complete == uop.NotYet || f.stalledOn.Complete > cycle {
			return FetchSkipBranch
		}
		return FetchSkipNo // resolved: fetch resumes next cycle
	}
	if f.icacheWait {
		return FetchSkipICache
	}
	if len(f.buf) >= f.cfg.BufferCap {
		return FetchSkipIdle
	}
	return FetchSkipNo
}

// SkipCycles replays the stall counter of the given class for n elided
// fetch cycles.
func (f *FrontEnd) SkipCycles(class int, n int64) {
	switch class {
	case FetchSkipBranch:
		f.branchStallCyc += uint64(n)
	case FetchSkipICache:
		f.icacheStallCyc += uint64(n)
	}
}

// HeadReadyAt returns the cycle the oldest buffered instruction becomes
// eligible for dispatch, or ok=false with an empty buffer.
func (f *FrontEnd) HeadReadyAt() (int64, bool) {
	if len(f.buf) == 0 {
		return 0, false
	}
	return f.buf[0].readyAt, true
}

// Train updates the branch predictor and BTB with an instruction without
// fetching it — workload warm-up.
func (f *FrontEnd) Train(in isa.Inst) {
	if in.Class != isa.Branch {
		return
	}
	f.bp.Update(in.PC, in.Taken)
	if in.Taken {
		f.btb.Insert(in.PC, in.Target)
	}
}

// NextReady returns the oldest instruction that has traversed the front
// end by the given cycle, or nil.
func (f *FrontEnd) NextReady(cycle int64) *uop.UOp {
	if len(f.buf) == 0 || f.buf[0].readyAt > cycle {
		return nil
	}
	return f.buf[0].u
}

// Pop consumes the instruction returned by NextReady.
func (f *FrontEnd) Pop() {
	f.buf[0] = fetched{}
	f.buf = f.buf[1:]
}

// BufLen returns the number of buffered instructions.
func (f *FrontEnd) BufLen() int { return len(f.buf) }

// Fetched returns the number of instructions fetched.
func (f *FrontEnd) Fetched() uint64 { return f.fetchedCount }

// Branches returns the number of branches fetched.
func (f *FrontEnd) Branches() uint64 { return f.branches }

// Mispredicts returns the number of mispredicted branches (direction or
// target).
func (f *FrontEnd) Mispredicts() uint64 { return f.mispredicts }

// BTBMisses returns right-direction taken branches whose target was
// unknown or wrong.
func (f *FrontEnd) BTBMisses() uint64 { return f.btbMisses }

// BranchStallCycles returns fetch cycles lost to unresolved
// mispredictions.
func (f *FrontEnd) BranchStallCycles() uint64 { return f.branchStallCyc }

// ICacheStallCycles returns fetch cycles lost to instruction-cache
// misses.
func (f *FrontEnd) ICacheStallCycles() uint64 { return f.icacheStallCyc }
