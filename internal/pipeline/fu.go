package pipeline

import (
	"repro/internal/isa"
	"repro/internal/uop"
)

// Function-unit pools per Table 1: eight each of integer ALU, integer
// multiplier, FP adder, and FP multiplier/divider/sqrt unit. Effective-
// address calculations and branches execute on the integer ALUs. All
// operations are fully pipelined except divide and square root, which
// occupy their unit for the full latency.
const (
	poolIntAlu = iota
	poolIntMul
	poolFpAdd
	poolFpMul
	numPools
)

func poolOf(c isa.Class) int {
	switch c {
	case isa.IntAlu, isa.Load, isa.Store, isa.Branch:
		return poolIntAlu
	case isa.IntMul, isa.IntDiv:
		return poolIntMul
	case isa.FpAdd:
		return poolFpAdd
	case isa.FpMul, isa.FpDiv, isa.FpSqrt:
		return poolFpMul
	}
	return poolIntAlu
}

// FUPool tracks per-unit occupancy across the four pools.
type FUPool struct {
	units [numPools][]int64 // busyUntil per unit (exclusive)

	issuedByPool [numPools]uint64
	structStalls uint64
}

// NewFUPool builds pools with n units each (Table 1: n = 8).
func NewFUPool(n int) *FUPool {
	f := &FUPool{}
	for p := range f.units {
		f.units[p] = make([]int64, n)
	}
	return f
}

// TryIssue reserves a unit for u starting at the given cycle, returning
// false when every unit in the class's pool is occupied. A pipelined
// operation occupies its unit for one cycle; divide and square root hold
// it for the full latency.
func (f *FUPool) TryIssue(cycle int64, u *uop.UOp) bool {
	p := poolOf(u.Inst.Class)
	for i := range f.units[p] {
		if f.units[p][i] <= cycle {
			occupy := int64(1)
			if !u.Inst.Class.Pipelined() {
				occupy = int64(u.Inst.Class.Latency())
			}
			f.units[p][i] = cycle + occupy
			f.issuedByPool[p]++
			return true
		}
	}
	f.structStalls++
	return false
}

// StructuralStalls returns how many issue attempts found no free unit.
func (f *FUPool) StructuralStalls() uint64 { return f.structStalls }

// Issued returns the per-pool issue counts (IntAlu, IntMul, FpAdd, FpMul).
func (f *FUPool) Issued() [4]uint64 { return f.issuedByPool }
