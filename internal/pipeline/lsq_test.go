package pipeline

import (
	"testing"

	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/uop"
)

func newTestLSQ(t *testing.T, capacity int) (*LSQ, *mem.Hierarchy, iq.Queue) {
	t.Helper()
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	q := iq.NewConventional(64)
	l := NewLSQ(capacity, h.L1D, h.EQ, q, 8, 8)
	return l, h, q
}

func loadAt(seq int64, addr uint64) *uop.UOp {
	u := uop.New(seq, isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.RegNone, Dest: 2, Size: 8, Addr: addr})
	return u
}

func storeAt(seq int64, addr uint64) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.Store, Src1: 3, Src2: 1, Size: 8, Addr: addr})
}

func runHier(h *mem.Hierarchy, from, to int64) {
	for c := from; c <= to; c++ {
		h.Tick(c)
	}
}

func TestLSQLoadAccess(t *testing.T) {
	l, h, _ := newTestLSQ(t, 8)
	ld := loadAt(0, 0x1000)
	l.Add(ld)
	// EA not ready: no access.
	l.Tick(0)
	if l.LoadsIssued() != 0 {
		t.Fatal("load accessed before its EA was ready")
	}
	ld.EADone = 1
	l.Tick(1)
	if l.LoadsIssued() != 1 {
		t.Fatal("load did not access")
	}
	done := false
	l.OnLoadDone = func(cycle int64, u *uop.UOp) { done = true }
	// Callback set after access... re-register before completion works
	// because finishLoad reads it late.
	runHier(h, 1, 200)
	if !done {
		t.Fatal("load completion callback missing")
	}
	if ld.Complete == uop.NotYet || ld.MemKind != uop.MemMiss {
		t.Fatalf("completion state: complete=%d kind=%d", ld.Complete, ld.MemKind)
	}
	if l.Full() {
		t.Fatal("capacity accounting wrong")
	}
	l.Remove(ld)
	if l.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestLSQConservativeStoreBlocking(t *testing.T) {
	l, _, _ := newTestLSQ(t, 8)
	st := storeAt(0, 0x2000)
	ld := loadAt(1, 0x3000) // disjoint address
	l.Add(st)
	l.Add(ld)
	ld.EADone = 1
	// The store's address is unknown: the younger load must wait.
	l.Tick(1)
	if l.LoadsIssued() != 0 {
		t.Fatal("load bypassed an unresolved older store")
	}
	if l.BlockedByStore() == 0 {
		t.Fatal("blocking not counted")
	}
	st.EADone = 2
	st.Complete = 2
	l.Tick(2)
	if l.LoadsIssued() != 1 {
		t.Fatal("load still blocked after store resolved")
	}
}

func TestLSQStoreToLoadForwarding(t *testing.T) {
	l, h, _ := newTestLSQ(t, 8)
	st := storeAt(0, 0x4000)
	ld := loadAt(1, 0x4004) // overlaps the 8-byte store
	l.Add(st)
	l.Add(ld)
	st.EADone, st.Complete = 1, 1
	ld.EADone = 1
	var doneAt int64 = -1
	l.OnLoadDone = func(cycle int64, u *uop.UOp) { doneAt = cycle }
	l.Tick(2)
	if l.Forwards() != 1 {
		t.Fatal("overlapping store did not forward")
	}
	if l.LoadsIssued() != 0 {
		t.Fatal("forwarded load also accessed the cache")
	}
	runHier(h, 2, 5)
	if doneAt != 3 || ld.Complete != 3 || ld.MemKind != uop.MemHit {
		t.Fatalf("forward completion: at %d, complete %d, kind %d", doneAt, ld.Complete, ld.MemKind)
	}
}

func TestLSQForwardFromRetiredStore(t *testing.T) {
	l, h, _ := newTestLSQ(t, 8)
	st := storeAt(0, 0x5000)
	st.EADone, st.Complete = 1, 1
	l.Add(st)
	l.CommitStore(st) // retired: moves to the write queue
	if !l.Busy() {
		t.Fatal("write queue should be busy")
	}
	ld := loadAt(1, 0x5000)
	ld.EADone = 2
	l.Add(ld)
	// Tick drains the write first and may forward in the same cycle...
	// the queue is drained at the top of Tick, so forward only works
	// while the write is still pending. Check either forwarding or a
	// normal access happened — but never a stale value path (untracked).
	l.Tick(2)
	runHier(h, 2, 300)
	if ld.Complete == uop.NotYet {
		t.Fatal("load never completed")
	}
	if l.StoreWrites() != 1 {
		t.Fatal("retired store never written")
	}
}

func TestLSQPortLimit(t *testing.T) {
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	q := iq.NewConventional(64)
	l := NewLSQ(32, h.L1D, h.EQ, q, 2, 8) // two read ports
	for i := int64(0); i < 5; i++ {
		ld := loadAt(i, uint64(0x6000+i*64))
		ld.EADone = 0
		l.Add(ld)
	}
	l.Tick(1)
	if l.LoadsIssued() != 2 {
		t.Fatalf("issued %d loads, want port limit 2", l.LoadsIssued())
	}
	l.Tick(2)
	if l.LoadsIssued() != 4 {
		t.Fatalf("issued %d after second cycle", l.LoadsIssued())
	}
}

func TestLSQMSHRRejectionRetries(t *testing.T) {
	cfg := mem.DefaultHierarchyConfig()
	cfg.L1D.MSHRs = 1
	h := mem.MustNewHierarchy(cfg)
	q := iq.NewConventional(64)
	l := NewLSQ(32, h.L1D, h.EQ, q, 8, 8)
	a := loadAt(0, 0x7000)
	b := loadAt(1, 0x8000) // different line: needs its own MSHR
	a.EADone, b.EADone = 0, 0
	l.Add(a)
	l.Add(b)
	l.Tick(1)
	if l.LoadsIssued() != 1 || l.MSHRRejects() != 1 {
		t.Fatalf("issued %d rejects %d, want 1/1", l.LoadsIssued(), l.MSHRRejects())
	}
	// Drain; the rejected load retries and completes.
	for c := int64(1); c <= 400; c++ {
		h.Tick(c)
		l.Tick(c)
	}
	if b.Complete == uop.NotYet {
		t.Fatal("rejected load never completed")
	}
}

func TestLSQFullPanicsAndCapacity(t *testing.T) {
	l, _, _ := newTestLSQ(t, 1)
	l.Add(loadAt(0, 0x100))
	if !l.Full() {
		t.Fatal("should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("add to full LSQ must panic")
		}
	}()
	l.Add(loadAt(1, 0x200))
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a1   uint64
		s1   uint8
		a2   uint64
		s2   uint8
		want bool
	}{
		{0x100, 8, 0x100, 8, true},
		{0x100, 8, 0x104, 8, true},
		{0x100, 8, 0x108, 8, false},
		{0x104, 4, 0x100, 8, true},
		{0x100, 4, 0x104, 4, false},
	}
	for _, c := range cases {
		if got := overlap(c.a1, c.s1, c.a2, c.s2); got != c.want {
			t.Errorf("overlap(%#x/%d, %#x/%d) = %v", c.a1, c.s1, c.a2, c.s2, got)
		}
	}
}
