package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/iq"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/uop"
)

// The pipeline structures hold in-flight instructions by pointer, so
// their clones remap every held uop through a shared uop.CloneMap —
// the cloned machine's layers then agree on the cloned identities, just
// as the originals share the original pointers. Collaborator structures
// (stream, predictors, caches, queue) are cloned by the engine first and
// passed in, since only it knows how they wire together.

// Clone returns a copy of the front end reading from stream and using the
// given already-cloned predictor, BTB and instruction cache. Buffered
// instructions are remapped through m.
func (f *FrontEnd) Clone(stream trace.Stream, bp *bpred.Predictor, btb *bpred.BTB, icache *mem.Cache, m *uop.CloneMap) *FrontEnd {
	n := NewFrontEnd(f.cfg, stream, bp, btb, icache)
	if len(f.buf) > 0 {
		n.buf = make([]fetched, len(f.buf))
		for i, fe := range f.buf {
			n.buf[i] = fetched{u: m.Get(fe.u), readyAt: fe.readyAt}
		}
	}
	if f.pending != nil {
		in := *f.pending
		n.pending = &in
	}
	n.seq = f.seq
	n.done = f.done
	n.stalledOn = m.Get(f.stalledOn)
	n.icacheWait = f.icacheWait
	n.currentLine = f.currentLine
	n.haveLine = f.haveLine
	n.fetchedCount = f.fetchedCount
	n.branches = f.branches
	n.mispredicts = f.mispredicts
	n.btbMisses = f.btbMisses
	n.icacheStallCyc = f.icacheStallCyc
	n.branchStallCyc = f.branchStallCyc
	return n
}

// Clone returns a copy of the load/store queue over the already-cloned
// data cache, event queue and scheduler. Queue contents are remapped
// through m; the OnLoadDone hook is not copied (the owning engine rebinds
// it).
func (l *LSQ) Clone(l1d *mem.Cache, eq *mem.EventQueue, q iq.Queue, m *uop.CloneMap) *LSQ {
	n, _ := l.CloneCap(l1d, eq, q, m, l.capacity)
	return n
}

// CloneCap clones the load/store queue into a different capacity — the
// prefix-sharing refit path, where a sibling sweep point runs the same
// prefix under a tighter bound. The occupancy must fit; ok is false
// otherwise and the caller falls back to a cold fork.
func (l *LSQ) CloneCap(l1d *mem.Cache, eq *mem.EventQueue, q iq.Queue, m *uop.CloneMap, capacity int) (*LSQ, bool) {
	if len(l.entries) > capacity {
		return nil, false
	}
	n := NewLSQ(capacity, l1d, eq, q, l.rdPorts, l.wrPorts)
	if len(l.entries) > 0 {
		n.entries = make([]*uop.UOp, len(l.entries))
		for i, u := range l.entries {
			n.entries[i] = m.Get(u)
		}
	}
	n.writeQ = append([]memWrite(nil), l.writeQ...)
	n.forwards = l.forwards
	n.mshrRejects = l.mshrRejects
	n.loadsIssued = l.loadsIssued
	n.storeWrites = l.storeWrites
	n.blockedByStore = l.blockedByStore
	return n, true
}

// Clone returns a copy of the reorder buffer with its contents remapped
// through m.
func (r *ROB) Clone(m *uop.CloneMap) *ROB {
	n := &ROB{ring: make([]*uop.UOp, len(r.ring)), head: r.head, n: r.n}
	for i, u := range r.ring {
		n.ring[i] = m.Get(u)
	}
	return n
}

// CloneCap clones the reorder buffer into a ring of a different capacity,
// re-laid with the oldest entry at slot zero. Ring position is invisible
// to the machine — only head/occupancy arithmetic matters — so the relaid
// copy commits identically. The occupancy must fit; ok is false otherwise.
func (r *ROB) CloneCap(m *uop.CloneMap, capacity int) (*ROB, bool) {
	if r.n > capacity {
		return nil, false
	}
	n := &ROB{ring: make([]*uop.UOp, capacity), head: 0, n: r.n}
	for i := 0; i < r.n; i++ {
		n.ring[i] = m.Get(r.ring[(r.head+i)%len(r.ring)])
	}
	return n, true
}

// Clone returns a copy of the rename table with its producer pointers
// remapped through m.
func (r *Renamer) Clone(m *uop.CloneMap) *Renamer {
	n := NewRenamer()
	for i, u := range r.last {
		n.last[i] = m.Get(u)
	}
	return n
}

// Clone returns an independent copy of the function-unit pools.
func (f *FUPool) Clone() *FUPool {
	n := new(FUPool)
	*n = *f
	for p := range f.units {
		n.units[p] = append([]int64(nil), f.units[p]...)
	}
	return n
}
