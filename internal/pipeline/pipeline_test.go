package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

func alu(seq int64, s1, s2, d int) *uop.UOp {
	return uop.New(seq, isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d})
}

func TestRenamerEdges(t *testing.T) {
	r := NewRenamer()
	p := alu(0, isa.RegNone, isa.RegNone, 1)
	r.Rename(p, 0)
	c := alu(1, 1, 2, 3)
	r.Rename(c, 0)
	if c.Prod[0] != p {
		t.Fatal("producer edge missing")
	}
	if c.Prod[1] != nil {
		t.Fatal("register with no in-flight producer must have no edge")
	}
	// A completed producer whose result is already available: no edge.
	p.Complete = 5
	c2 := alu(2, 1, isa.RegNone, 4)
	r.Rename(c2, 10)
	if c2.Prod[0] != nil {
		t.Fatal("edge to long-completed producer")
	}
	// Completed but in the future (data still arriving): edge retained.
	p2 := alu(3, isa.RegNone, isa.RegNone, 5)
	r.Rename(p2, 10)
	p2.Complete = 20
	c3 := alu(4, 5, isa.RegNone, 6)
	r.Rename(c3, 12)
	if c3.Prod[0] != p2 {
		t.Fatal("edge to future-completing producer missing")
	}
}

func TestRenamerZeroRegisterAndIdempotence(t *testing.T) {
	r := NewRenamer()
	w := alu(0, isa.RegNone, isa.RegNone, isa.RegZero) // write to r31: discarded
	r.Rename(w, 0)
	c := alu(1, isa.RegZero, isa.RegNone, 2)
	r.Rename(c, 0)
	if c.Prod[0] != nil {
		t.Fatal("zero register must always read ready")
	}
	// Self-referencing update (r1 = r1 + 1) renamed twice (dispatch retry)
	// must not create a self-edge.
	p := alu(2, isa.RegNone, isa.RegNone, 1)
	r.Rename(p, 0)
	u := alu(3, 1, isa.RegNone, 1)
	r.Rename(u, 0)
	r.Rename(u, 1) // retry
	if u.Prod[0] != p {
		t.Fatalf("retry broke renaming: %v", u.Prod[0])
	}
}

func TestROBOrdering(t *testing.T) {
	r := NewROB(4)
	if r.Head() != nil {
		t.Fatal("empty head")
	}
	var us []*uop.UOp
	for i := int64(0); i < 4; i++ {
		u := alu(i, isa.RegNone, isa.RegNone, 1)
		us = append(us, u)
		r.Push(u)
	}
	if !r.Full() || r.Len() != 4 || r.Capacity() != 4 {
		t.Fatal("fill state wrong")
	}
	// Only the head may retire, and only once complete.
	us[1].Complete = 1
	us[2].Complete = 1
	if n := r.Commit(5, 8, func(*uop.UOp) {}); n != 0 {
		t.Fatal("retired past incomplete head")
	}
	us[0].Complete = 3
	var committed []*uop.UOp
	if n := r.Commit(5, 2, func(u *uop.UOp) { committed = append(committed, u) }); n != 2 {
		t.Fatalf("committed %d, want width 2", n)
	}
	if committed[0] != us[0] || committed[1] != us[1] {
		t.Fatal("commit order wrong")
	}
	// Completion in the future does not retire yet.
	us[3].Complete = 100
	if n := r.Commit(5, 8, func(*uop.UOp) {}); n != 1 {
		t.Fatal("future-completing instruction retired early")
	}
	if r.Len() != 1 {
		t.Fatal("len")
	}
	// Ring wrap: push after pops.
	r.Push(alu(9, isa.RegNone, isa.RegNone, 1))
	if r.Len() != 2 {
		t.Fatal("wrap push failed")
	}
}

func TestROBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("push into full ROB must panic")
		}
	}()
	r := NewROB(1)
	r.Push(alu(0, isa.RegNone, isa.RegNone, 1))
	r.Push(alu(1, isa.RegNone, isa.RegNone, 1))
}

func TestFUPoolMapping(t *testing.T) {
	cases := map[isa.Class]int{
		isa.IntAlu: poolIntAlu, isa.Load: poolIntAlu, isa.Store: poolIntAlu,
		isa.Branch: poolIntAlu, isa.IntMul: poolIntMul, isa.IntDiv: poolIntMul,
		isa.FpAdd: poolFpAdd, isa.FpMul: poolFpMul, isa.FpDiv: poolFpMul,
		isa.FpSqrt: poolFpMul,
	}
	for c, want := range cases {
		if got := poolOf(c); got != want {
			t.Errorf("poolOf(%s) = %d, want %d", c, got, want)
		}
	}
}

func TestFUPoolPipelinedThroughput(t *testing.T) {
	f := NewFUPool(8)
	// Eight ALU ops per cycle fit; the ninth does not.
	for i := 0; i < 8; i++ {
		if !f.TryIssue(0, alu(int64(i), isa.RegNone, isa.RegNone, 1)) {
			t.Fatalf("ALU issue %d rejected", i)
		}
	}
	if f.TryIssue(0, alu(8, isa.RegNone, isa.RegNone, 1)) {
		t.Fatal("ninth ALU op accepted")
	}
	if f.StructuralStalls() != 1 {
		t.Fatal("structural stall not counted")
	}
	// Next cycle all units are free again (fully pipelined).
	if !f.TryIssue(1, alu(9, isa.RegNone, isa.RegNone, 1)) {
		t.Fatal("pipelined unit not free next cycle")
	}
}

func TestFUPoolUnpipelinedDivide(t *testing.T) {
	f := NewFUPool(2)
	div := func(seq int64) *uop.UOp {
		return uop.New(seq, isa.Inst{Class: isa.FpDiv, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
	}
	if !f.TryIssue(0, div(0)) || !f.TryIssue(0, div(1)) {
		t.Fatal("two dividers should accept")
	}
	// Both units busy for 12 cycles; an FpMul shares the pool and is
	// rejected meanwhile.
	mul := uop.New(2, isa.Inst{Class: isa.FpMul, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1})
	if f.TryIssue(5, mul) {
		t.Fatal("pool accepted work while occupied by divides")
	}
	if !f.TryIssue(12, mul) {
		t.Fatal("units should free at cycle 12")
	}
	if got := f.Issued(); got[poolFpMul] != 3 {
		t.Fatalf("pool counts = %v", got)
	}
}
