package pipeline

import (
	"fmt"

	"repro/internal/uop"
)

// ROB is the reorder buffer: a ring of in-flight instructions retired in
// program order. Per §5 the paper sizes it at three times the IQ.
type ROB struct {
	ring []*uop.UOp
	head int
	n    int
}

// NewROB builds a reorder buffer of the given capacity.
func NewROB(capacity int) *ROB {
	if capacity < 1 {
		panic(fmt.Sprintf("pipeline: ROB capacity %d", capacity))
	}
	return &ROB{ring: make([]*uop.UOp, capacity)}
}

// Full reports whether another instruction can be allocated.
func (r *ROB) Full() bool { return r.n == len(r.ring) }

// Len returns the number of in-flight instructions.
func (r *ROB) Len() int { return r.n }

// Capacity returns the buffer size.
func (r *ROB) Capacity() int { return len(r.ring) }

// Push allocates the next entry for u. The caller must have checked Full.
func (r *ROB) Push(u *uop.UOp) {
	if r.Full() {
		panic("pipeline: push into full ROB")
	}
	r.ring[(r.head+r.n)%len(r.ring)] = u
	r.n++
}

// Head returns the oldest in-flight instruction, or nil.
func (r *ROB) Head() *uop.UOp {
	if r.n == 0 {
		return nil
	}
	return r.ring[r.head]
}

// Commit retires up to width completed instructions in program order,
// invoking onCommit for each, and returns the number retired. An
// instruction is retirable once its completion cycle is known and has
// passed (for stores, once the effective address is known — the access
// itself drains from a post-retirement write queue).
func (r *ROB) Commit(cycle int64, width int, onCommit func(*uop.UOp)) int {
	done := 0
	for done < width && r.n > 0 {
		u := r.ring[r.head]
		if u.Complete == uop.NotYet || u.Complete > cycle {
			break
		}
		onCommit(u)
		r.ring[r.head] = nil
		r.head = (r.head + 1) % len(r.ring)
		r.n--
		done++
	}
	return done
}
