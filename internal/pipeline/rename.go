// Package pipeline provides the out-of-order core substrate around the
// instruction queue: register renaming, the reorder buffer, function-unit
// pools, the load/store queue, and the fetch/decode front end (Table 1's
// pipeline).
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/uop"
)

// Renamer maps architectural registers to their most recent in-flight
// producers, wiring Prod edges onto dispatched uops. Pointer-based
// renaming eliminates WAW and WAR hazards exactly as a large physical
// register file would (the paper gives the machine separate physical
// register resources and never makes them a bottleneck).
type Renamer struct {
	last [isa.NumRegs]*uop.UOp
}

// NewRenamer returns an empty rename table.
func NewRenamer() *Renamer { return &Renamer{} }

// Rename resolves u's source operands against the table and records u as
// the producer of its destination. It is idempotent per uop (dispatch
// stalls retry in order).
func (r *Renamer) Rename(u *uop.UOp, cycle int64) {
	if u.Renamed {
		return
	}
	u.Renamed = true
	for j := 0; j < 2; j++ {
		src := u.Src(j)
		if src == isa.RegNone || src == isa.RegZero {
			continue
		}
		if p := r.last[src]; p != nil && (p.Complete == uop.NotYet || p.Complete > cycle) {
			u.Prod[j] = p
		}
	}
	if u.Inst.HasDest() {
		r.last[u.Inst.Dest] = u
	}
}
