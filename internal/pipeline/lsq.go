package pipeline

import (
	"repro/internal/iq"
	"repro/internal/mem"
	"repro/internal/uop"
)

// LSQ is the load/store queue. As in the paper's simulator (§5), memory
// instructions split at dispatch: the effective-address calculation is
// scheduled by the IQ as an ordinary integer operation, and the access
// itself lives here. A load may access the cache once its address is
// known, every older store's address is known, and no older store
// overlaps; an overlapping older store forwards its data in one cycle.
// Store data is written to the cache after commit from a post-retirement
// write queue.
type LSQ struct {
	capacity int
	entries  []*uop.UOp // program order
	writeQ   []memWrite // retired stores awaiting cache write
	l1d      *mem.Cache
	eq       *mem.EventQueue
	q        iq.Queue

	rdPorts       int
	wrPorts       int
	missDetectLat int64

	// OnLoadDone, if set, runs when a load's data arrives (after the IQ
	// notifications).
	OnLoadDone func(cycle int64, u *uop.UOp)

	// cover indexes the bytes written by forwarding-eligible stores,
	// keyed by 16-byte block; rebuilt each Tick (see the walk).
	cover *coverTab
	// coverEpoch identifies the coverage index's sources: it advances
	// whenever the set of retired writes or resident stores changes, so a
	// load's negative forwarding check (uop.FwdKey) can be reused while
	// the epoch — and the count of stores contributing ahead of the load —
	// is unchanged. Starts at 1 so a zero FwdKey never matches.
	coverEpoch uint64
	// wqRejGen memoises the head retired write bouncing off a full MSHR
	// file, against the cache's acceptance generation (see uop.RejGen for
	// the same idea on loads). Zero when the head write was not rejected.
	wqRejGen uint64

	forwards       uint64
	mshrRejects    uint64
	loadsIssued    uint64
	storeWrites    uint64
	blockedByStore uint64
}

type memWrite struct {
	addr uint64
	size uint8
}

// NewLSQ builds a load/store queue of the given capacity over l1d.
func NewLSQ(capacity int, l1d *mem.Cache, eq *mem.EventQueue, q iq.Queue, rdPorts, wrPorts int) *LSQ {
	return &LSQ{
		capacity:      capacity,
		l1d:           l1d,
		eq:            eq,
		q:             q,
		rdPorts:       rdPorts,
		wrPorts:       wrPorts,
		missDetectLat: int64(l1d.Config().HitLatency),
		coverEpoch:    1,
	}
}

// LSQ event ops (mem.Handler dispatch codes). Tick schedules events
// carrying the load as the argument instead of building a closure per
// access, and the identifiable form lets an active clone remap them.
const (
	// lsqOpLoadDone (arg *uop.UOp): the load's data arrived; k is the
	// service kind.
	lsqOpLoadDone uint8 = iota
	// lsqOpFwdDone (arg *uop.UOp): a store-to-load forward completes.
	lsqOpFwdDone
	// lsqOpMissNotif (arg *uop.UOp): miss detected at tag-lookup time —
	// signal the IQ to suspend the load's chain (§3.4).
	lsqOpMissNotif
	// lsqOpStoreDrain (arg nil): a retired store's cache write finished;
	// nothing to record.
	lsqOpStoreDrain
)

// HandleEvent implements mem.Handler.
func (l *LSQ) HandleEvent(op uint8, t int64, k mem.Kind, arg any) {
	switch op {
	case lsqOpLoadDone:
		u := arg.(*uop.UOp)
		u.Complete = t
		u.MemKind = int8(k)
		l.finishLoad(t, u)
	case lsqOpFwdDone:
		l.finishLoad(t, arg.(*uop.UOp))
	case lsqOpMissNotif:
		l.q.NotifyLoadMiss(t, arg.(*uop.UOp))
	case lsqOpStoreDrain:
	}
}

// Full reports whether another memory instruction can be accepted.
func (l *LSQ) Full() bool { return len(l.entries) >= l.capacity }

// Len returns the number of in-flight memory instructions.
func (l *LSQ) Len() int { return len(l.entries) }

// Busy reports whether retired stores are still draining.
func (l *LSQ) Busy() bool { return len(l.writeQ) > 0 }

// Add enqueues a dispatched memory instruction (program order).
func (l *LSQ) Add(u *uop.UOp) {
	if l.Full() {
		panic("pipeline: add to full LSQ")
	}
	l.entries = append(l.entries, u)
}

// Remove deletes a committed memory instruction from the queue. Stores
// move their pending write to the post-retirement queue via CommitStore.
func (l *LSQ) Remove(u *uop.UOp) {
	if u.IsStore() {
		l.coverEpoch++ // a resident store leaving may shrink the coverage index
	}
	for i, e := range l.entries {
		if e == u {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return
		}
	}
}

// CommitStore retires a store: its write drains to the cache in the
// background.
func (l *LSQ) CommitStore(u *uop.UOp) {
	l.Remove(u)
	l.writeQ = append(l.writeQ, memWrite{addr: u.Inst.Addr, size: u.Inst.Size})
	l.coverEpoch++
}

func overlap(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

// coverEmpty marks a free slot in coverTab. A key is an address shifted
// right by four, so no real block can equal it.
const coverEmpty = ^uint64(0)

// coverTab maps 16-byte block numbers to byte-coverage bitmasks. The
// forwarding index is rebuilt from scratch every Tick, which makes a Go
// map's hashing the dominant cost when many loads queue behind a full
// MSHR file — so this is a flat open-addressed table instead: Fibonacci
// hashing, linear probing, no tombstones (entries only accumulate
// between resets). Slot layout is a pure function of the insertion
// sequence, so two runs that execute the same Ticks end bit-identical.
type coverTab struct {
	keys  []uint64
	vals  []uint16
	used  int
	shift uint // 64 - log2(len(keys)); the hash keeps the top bits
}

func newCoverTab() *coverTab {
	t := &coverTab{keys: make([]uint64, 64), vals: make([]uint16, 64), shift: 58}
	for i := range t.keys {
		t.keys[i] = coverEmpty
	}
	return t
}

func (t *coverTab) reset() {
	for i := range t.keys {
		t.keys[i] = coverEmpty
	}
	t.used = 0
}

func (t *coverTab) or(b uint64, bits uint16) {
	mask := uint64(len(t.keys) - 1)
	for i := (b * 0x9E3779B97F4A7C15) >> t.shift; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case b:
			t.vals[i] |= bits
			return
		case coverEmpty:
			t.keys[i] = b
			t.vals[i] = bits
			t.used++
			if t.used*4 > len(t.keys)*3 {
				t.grow()
			}
			return
		}
	}
}

func (t *coverTab) get(b uint64) uint16 {
	mask := uint64(len(t.keys) - 1)
	for i := (b * 0x9E3779B97F4A7C15) >> t.shift; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case b:
			return t.vals[i]
		case coverEmpty:
			return 0
		}
	}
}

func (t *coverTab) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, 2*len(oldKeys))
	t.vals = make([]uint16, 2*len(oldVals))
	t.shift--
	t.used = 0
	for i := range t.keys {
		t.keys[i] = coverEmpty
	}
	// Reinsertion cannot re-trigger grow: used is at most 3/8 of the
	// doubled capacity.
	for i, k := range oldKeys {
		if k != coverEmpty {
			t.or(k, oldVals[i])
		}
	}
}

// addCover marks the bytes [addr, addr+size) in the block coverage index.
func addCover(t *coverTab, addr uint64, size uint8) {
	end := addr + uint64(size) - 1
	for b := addr >> 4; b <= end>>4; b++ {
		lo, hi := uint64(0), uint64(15)
		if b == addr>>4 {
			lo = addr & 15
		}
		if b == end>>4 {
			hi = end & 15
		}
		t.or(b, uint16(1)<<(hi+1)-uint16(1)<<lo)
	}
}

// hitCover reports whether any byte of [addr, addr+size) is covered.
func hitCover(t *coverTab, addr uint64, size uint8) bool {
	end := addr + uint64(size) - 1
	for b := addr >> 4; b <= end>>4; b++ {
		w := t.get(b)
		if w == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(15)
		if b == addr>>4 {
			lo = addr & 15
		}
		if b == end>>4 {
			hi = end & 15
		}
		if w&(uint16(1)<<(hi+1)-uint16(1)<<lo) != 0 {
			return true
		}
	}
	return false
}

// Tick drains retired store writes and initiates eligible load accesses,
// bounded by the cache read/write ports.
func (l *LSQ) Tick(cycle int64) {
	// Post-retirement store writes.
	wr := 0
	for wr < l.wrPorts && len(l.writeQ) > 0 {
		w := l.writeQ[0]
		if l.wqRejGen != 0 && l.wqRejGen == l.l1d.AcceptGen() {
			// The head write bounced off a full MSHR file and the cache
			// has neither accepted nor released anything since: the retry
			// repeats verbatim, so only the cache-side reject counts.
			l.l1d.SkipMSHRRejects(1)
			break
		}
		if !l.l1d.AccessRef(cycle, w.addr, true, mem.Ref{H: l, Op: lsqOpStoreDrain}) {
			l.wqRejGen = l.l1d.AcceptGen()
			break // MSHRs full: retry next cycle
		}
		l.wqRejGen = 0
		l.writeQ = l.writeQ[1:]
		l.storeWrites++
		l.coverEpoch++ // the drained write leaves the coverage index
		wr++
	}

	// Loads, oldest first. An older store with an unknown address blocks
	// every younger load (conservative disambiguation, §5).
	//
	// Forwarding only needs "does any older store write a byte this load
	// reads", so instead of scanning the store list per load, the walk
	// maintains a byte-coverage index: retired writes seed it (they are
	// older than every in-flight load), and each known-address store adds
	// its bytes as the walk passes it, so a load's query sees exactly the
	// stores that precede it in program order.
	rd := 0
	unknownStore := false
	if l.cover == nil {
		l.cover = newCoverTab()
	}
	l.cover.reset()
	for _, w := range l.writeQ {
		addCover(l.cover, w.addr, w.size)
	}
	// contrib counts the stores added to the index so far: a load's view
	// of the index is fully identified by (coverEpoch, contrib), which is
	// the load's forwarding-memo key (uop.FwdKey).
	contrib := uint64(0)
	for _, u := range l.entries {
		if u.IsStore() {
			if u.EADone == uop.NotYet || u.EADone > cycle {
				unknownStore = true
			} else {
				addCover(l.cover, u.Inst.Addr, u.Inst.Size)
				contrib++
				// A store retires once both its address and its data are
				// known; the EA issued on the address alone.
				if u.Complete == uop.NotYet && u.OperandReady(0, cycle) {
					u.Complete = cycle
				}
			}
			continue
		}
		if !u.IsLoad() || u.Complete != uop.NotYet || u.MemKind != uop.MemNone {
			continue
		}
		if u.EADone == uop.NotYet || u.EADone > cycle {
			continue
		}
		if unknownStore {
			l.blockedByStore++
			continue
		}
		// The index the load sees changes only when the epoch advances (a
		// write or store entered or left) or a store ahead of it resolved
		// its address; a memoised negative check stays negative until then.
		fwdKey := l.coverEpoch<<16 | contrib
		if u.FwdKey != fwdKey {
			if hitCover(l.cover, u.Inst.Addr, u.Inst.Size) {
				l.forwards++
				u.MemKind = uop.MemHit
				u.Complete = cycle + 1
				l.eq.ScheduleRef(cycle+1, mem.Ref{H: l, Op: lsqOpFwdDone, Arg: u})
				continue
			}
			u.FwdKey = fwdKey
		}
		if rd >= l.rdPorts {
			continue
		}
		if u.RejGen != 0 && u.RejGen == l.l1d.AcceptGen() {
			// The cache has neither accepted nor released anything since
			// this load's last rejected attempt, so the attempt repeats
			// verbatim: count the rejection on both sides without
			// re-walking the tag array and MSHR file.
			l.mshrRejects++
			l.l1d.SkipMSHRRejects(1)
			continue
		}
		kind, ok := l.l1d.AccessRefKind(cycle, u.Inst.Addr, false, mem.Ref{H: l, Op: lsqOpLoadDone, Arg: u})
		if !ok {
			l.mshrRejects++
			u.RejGen = l.l1d.AcceptGen()
			continue
		}
		rd++
		l.loadsIssued++
		u.MemKind = int8(kind) // provisional; overwritten at completion
		if kind != mem.KindHit {
			// The miss is detected after the tag lookup: suspend the
			// load's chain (§3.4).
			l.eq.ScheduleRef(cycle+l.missDetectLat, mem.Ref{H: l, Op: lsqOpMissNotif, Arg: u})
		}
	}
}

// SkipClass classifies the queue for idle-cycle skipping. Called after
// Tick(cycle) has run, it decides whether every Tick on the elided cycles
// (cycle, cap) would be a pure counter replay, and if so which counters:
// blocked loads stuck behind an older store with an unknown address
// (blockedByStore ticks once per load per cycle) and loads whose access
// would bounce off a full MSHR file every cycle (mshrRejects, plus the
// cache-side reject counter). Any entry that could make real progress —
// a drainable retired write, a store completion about to be stamped, or a
// load whose access would actually be accepted — makes the queue
// unskippable and SkipClass returns ok=false.
//
// The classification is only valid while nothing else moves: callers must
// separately ensure no issue/dispatch/writeback happens in the window, so
// EADone/Complete fields (future values always carry an event at exactly
// that time, which bounds the window) and the store-coverage index are
// frozen across it.
func (l *LSQ) SkipClass(cycle int64) (ok bool, blocked, rejected int) {
	if len(l.writeQ) > 0 {
		return false, 0, 0 // retired writes could drain
	}
	full := l.l1d.OutstandingMisses() >= l.l1d.Config().MSHRs
	gen := l.l1d.AcceptGen()
	unknownStore := false
	for _, u := range l.entries {
		if u.IsStore() {
			if u.EADone == uop.NotYet || u.EADone > cycle {
				unknownStore = true
			} else if u.Complete == uop.NotYet && u.OperandReady(0, cycle) {
				// Tick would stamp the store's completion next cycle.
				return false, 0, 0
			}
			continue
		}
		if !u.IsLoad() || u.Complete != uop.NotYet || u.MemKind != uop.MemNone {
			continue // in flight or done: completion arrives by event
		}
		if u.EADone == uop.NotYet || u.EADone > cycle {
			continue // address arrives with a future event
		}
		if unknownStore {
			blocked++
			continue
		}
		// EA-ready, unblocked, and still pending after this cycle's Tick:
		// forwarding was already ruled out (the coverage index is frozen),
		// so the only frozen outcome is an MSHR-file rejection, and it must
		// stay one on every elided cycle. That requires a plain miss (a hit
		// or an outstanding MSHR for the line would accept the access) with
		// every MSHR busy; MSHRs cannot free mid-window (fills arrive by
		// event). A live rejection memo is that exact condition, already
		// established by this cycle's Tick.
		if u.RejGen == 0 || u.RejGen != gen {
			if !full || l.l1d.Probe(u.Inst.Addr) != mem.KindMiss {
				return false, 0, 0
			}
		}
		rejected++
	}
	return true, blocked, rejected
}

// SkipCycles replays the counter effects of n elided Ticks, using the
// classification from SkipClass. The real reject path (AccessArg with a
// full MSHR file) touches only the two reject counters, so the replay is
// exact.
func (l *LSQ) SkipCycles(n int64, blocked, rejected int) {
	l.blockedByStore += uint64(blocked) * uint64(n)
	if rejected > 0 {
		r := uint64(rejected) * uint64(n)
		l.mshrRejects += r
		l.l1d.SkipMSHRRejects(r)
	}
}

func (l *LSQ) finishLoad(t int64, u *uop.UOp) {
	l.q.NotifyLoadComplete(t, u)
	l.q.Writeback(t, u)
	if l.OnLoadDone != nil {
		l.OnLoadDone(t, u)
	}
}

// Forwards returns the number of store-to-load forwards.
func (l *LSQ) Forwards() uint64 { return l.forwards }

// MSHRRejects returns load issue attempts bounced by a full MSHR file.
func (l *LSQ) MSHRRejects() uint64 { return l.mshrRejects }

// LoadsIssued returns the number of cache load accesses initiated.
func (l *LSQ) LoadsIssued() uint64 { return l.loadsIssued }

// StoreWrites returns the number of retired store writes performed.
func (l *LSQ) StoreWrites() uint64 { return l.storeWrites }

// BlockedByStore returns load-cycles spent waiting on unresolved older
// store addresses.
func (l *LSQ) BlockedByStore() uint64 { return l.blockedByStore }
