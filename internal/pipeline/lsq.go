package pipeline

import (
	"repro/internal/iq"
	"repro/internal/mem"
	"repro/internal/uop"
)

// LSQ is the load/store queue. As in the paper's simulator (§5), memory
// instructions split at dispatch: the effective-address calculation is
// scheduled by the IQ as an ordinary integer operation, and the access
// itself lives here. A load may access the cache once its address is
// known, every older store's address is known, and no older store
// overlaps; an overlapping older store forwards its data in one cycle.
// Store data is written to the cache after commit from a post-retirement
// write queue.
type LSQ struct {
	capacity int
	entries  []*uop.UOp // program order
	writeQ   []memWrite // retired stores awaiting cache write
	l1d      *mem.Cache
	eq       *mem.EventQueue
	q        iq.Queue

	rdPorts       int
	wrPorts       int
	missDetectLat int64

	// OnLoadDone, if set, runs when a load's data arrives (after the IQ
	// notifications).
	OnLoadDone func(cycle int64, u *uop.UOp)

	// Per-load callbacks, bound once at construction; Tick passes them with
	// the load as the argument instead of building a closure per access.
	loadDoneFn  func(t int64, k mem.Kind, arg any)
	fwdDoneFn   func(t int64, arg any)
	missNotifFn func(t int64, arg any)

	// cover indexes the bytes written by forwarding-eligible stores,
	// keyed by 16-byte block; rebuilt each Tick (see the walk).
	cover map[uint64]uint16

	forwards       uint64
	mshrRejects    uint64
	loadsIssued    uint64
	storeWrites    uint64
	blockedByStore uint64
}

type memWrite struct {
	addr uint64
	size uint8
}

// NewLSQ builds a load/store queue of the given capacity over l1d.
func NewLSQ(capacity int, l1d *mem.Cache, eq *mem.EventQueue, q iq.Queue, rdPorts, wrPorts int) *LSQ {
	l := &LSQ{
		capacity:      capacity,
		l1d:           l1d,
		eq:            eq,
		q:             q,
		rdPorts:       rdPorts,
		wrPorts:       wrPorts,
		missDetectLat: int64(l1d.Config().HitLatency),
	}
	l.loadDoneFn = func(t int64, k mem.Kind, arg any) {
		u := arg.(*uop.UOp)
		u.Complete = t
		u.MemKind = int8(k)
		l.finishLoad(t, u)
	}
	l.fwdDoneFn = func(t int64, arg any) { l.finishLoad(t, arg.(*uop.UOp)) }
	l.missNotifFn = func(t int64, arg any) { l.q.NotifyLoadMiss(t, arg.(*uop.UOp)) }
	return l
}

// Full reports whether another memory instruction can be accepted.
func (l *LSQ) Full() bool { return len(l.entries) >= l.capacity }

// Len returns the number of in-flight memory instructions.
func (l *LSQ) Len() int { return len(l.entries) }

// Busy reports whether retired stores are still draining.
func (l *LSQ) Busy() bool { return len(l.writeQ) > 0 }

// Add enqueues a dispatched memory instruction (program order).
func (l *LSQ) Add(u *uop.UOp) {
	if l.Full() {
		panic("pipeline: add to full LSQ")
	}
	l.entries = append(l.entries, u)
}

// Remove deletes a committed memory instruction from the queue. Stores
// move their pending write to the post-retirement queue via CommitStore.
func (l *LSQ) Remove(u *uop.UOp) {
	for i, e := range l.entries {
		if e == u {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return
		}
	}
}

// CommitStore retires a store: its write drains to the cache in the
// background.
func (l *LSQ) CommitStore(u *uop.UOp) {
	l.Remove(u)
	l.writeQ = append(l.writeQ, memWrite{addr: u.Inst.Addr, size: u.Inst.Size})
}

func overlap(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

// addCover marks the bytes [addr, addr+size) in the block coverage index.
func addCover(m map[uint64]uint16, addr uint64, size uint8) {
	end := addr + uint64(size) - 1
	for b := addr >> 4; b <= end>>4; b++ {
		lo, hi := uint64(0), uint64(15)
		if b == addr>>4 {
			lo = addr & 15
		}
		if b == end>>4 {
			hi = end & 15
		}
		m[b] |= uint16(1)<<(hi+1) - uint16(1)<<lo
	}
}

// hitCover reports whether any byte of [addr, addr+size) is covered.
func hitCover(m map[uint64]uint16, addr uint64, size uint8) bool {
	end := addr + uint64(size) - 1
	for b := addr >> 4; b <= end>>4; b++ {
		w, ok := m[b]
		if !ok {
			continue
		}
		lo, hi := uint64(0), uint64(15)
		if b == addr>>4 {
			lo = addr & 15
		}
		if b == end>>4 {
			hi = end & 15
		}
		if w&(uint16(1)<<(hi+1)-uint16(1)<<lo) != 0 {
			return true
		}
	}
	return false
}

// Tick drains retired store writes and initiates eligible load accesses,
// bounded by the cache read/write ports.
func (l *LSQ) Tick(cycle int64) {
	// Post-retirement store writes.
	wr := 0
	for wr < l.wrPorts && len(l.writeQ) > 0 {
		w := l.writeQ[0]
		if !l.l1d.Access(cycle, w.addr, true, func(int64, mem.Kind) {}) {
			break // MSHRs full: retry next cycle
		}
		l.writeQ = l.writeQ[1:]
		l.storeWrites++
		wr++
	}

	// Loads, oldest first. An older store with an unknown address blocks
	// every younger load (conservative disambiguation, §5).
	//
	// Forwarding only needs "does any older store write a byte this load
	// reads", so instead of scanning the store list per load, the walk
	// maintains a byte-coverage index: retired writes seed it (they are
	// older than every in-flight load), and each known-address store adds
	// its bytes as the walk passes it, so a load's query sees exactly the
	// stores that precede it in program order.
	rd := 0
	unknownStore := false
	if l.cover == nil {
		l.cover = make(map[uint64]uint16, 64)
	}
	clear(l.cover)
	for _, w := range l.writeQ {
		addCover(l.cover, w.addr, w.size)
	}
	for _, u := range l.entries {
		if u.IsStore() {
			if u.EADone == uop.NotYet || u.EADone > cycle {
				unknownStore = true
			} else {
				addCover(l.cover, u.Inst.Addr, u.Inst.Size)
				// A store retires once both its address and its data are
				// known; the EA issued on the address alone.
				if u.Complete == uop.NotYet && u.OperandReady(0, cycle) {
					u.Complete = cycle
				}
			}
			continue
		}
		if !u.IsLoad() || u.Complete != uop.NotYet || u.MemKind != uop.MemNone {
			continue
		}
		if u.EADone == uop.NotYet || u.EADone > cycle {
			continue
		}
		if unknownStore {
			l.blockedByStore++
			continue
		}
		if hitCover(l.cover, u.Inst.Addr, u.Inst.Size) {
			l.forwards++
			u.MemKind = uop.MemHit
			u.Complete = cycle + 1
			l.eq.ScheduleArg(cycle+1, l.fwdDoneFn, u)
			continue
		}
		if rd >= l.rdPorts {
			continue
		}
		kind := l.l1d.Probe(u.Inst.Addr)
		if !l.l1d.AccessArg(cycle, u.Inst.Addr, false, l.loadDoneFn, u) {
			l.mshrRejects++
			continue
		}
		rd++
		l.loadsIssued++
		u.MemKind = int8(kind) // provisional; overwritten at completion
		if kind != mem.KindHit {
			// The miss is detected after the tag lookup: suspend the
			// load's chain (§3.4).
			l.eq.ScheduleArg(cycle+l.missDetectLat, l.missNotifFn, u)
		}
	}
}

func (l *LSQ) finishLoad(t int64, u *uop.UOp) {
	l.q.NotifyLoadComplete(t, u)
	l.q.Writeback(t, u)
	if l.OnLoadDone != nil {
		l.OnLoadDone(t, u)
	}
}

// Forwards returns the number of store-to-load forwards.
func (l *LSQ) Forwards() uint64 { return l.forwards }

// MSHRRejects returns load issue attempts bounced by a full MSHR file.
func (l *LSQ) MSHRRejects() uint64 { return l.mshrRejects }

// LoadsIssued returns the number of cache load accesses initiated.
func (l *LSQ) LoadsIssued() uint64 { return l.loadsIssued }

// StoreWrites returns the number of retired store writes performed.
func (l *LSQ) StoreWrites() uint64 { return l.storeWrites }

// BlockedByStore returns load-cycles spent waiting on unresolved older
// store addresses.
func (l *LSQ) BlockedByStore() uint64 { return l.blockedByStore }
