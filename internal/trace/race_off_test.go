//go:build !race

package trace

const raceDetector = false
