package trace

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Profile summarises the dynamic properties of a stream prefix; it backs
// cmd/tracedump and the workload-shape tests.
type Profile struct {
	Name         string
	Instructions int
	ClassCount   [isa.NumClasses]int
	Branches     int
	TakenBranch  int
	Loads        int
	Stores       int
	// UniqueLines counts distinct 64-byte data lines touched — a proxy for
	// working-set size.
	UniqueLines int
	// UniquePCs counts distinct static instructions.
	UniquePCs int
	// AvgDepDist is the mean distance, in dynamic instructions, between a
	// register consumer and its most recent producer (smaller = more
	// serial code).
	AvgDepDist float64
}

// Characterize drains up to n instructions from s and profiles them.
func Characterize(s Stream, n int) Profile {
	p := Profile{Name: s.Name()}
	lines := make(map[uint64]struct{})
	pcs := make(map[uint64]struct{})
	lastWrite := make(map[int]int) // arch reg -> instruction index
	depSum, depCount := 0.0, 0

	for i := 0; i < n; i++ {
		in, ok := s.Next()
		if !ok {
			break
		}
		p.Instructions++
		p.ClassCount[in.Class]++
		pcs[in.PC] = struct{}{}
		switch {
		case in.Class == isa.Branch:
			p.Branches++
			if in.Taken {
				p.TakenBranch++
			}
		case in.Class == isa.Load:
			p.Loads++
			lines[in.Addr>>6] = struct{}{}
		case in.Class == isa.Store:
			p.Stores++
			lines[in.Addr>>6] = struct{}{}
		}
		for _, src := range [...]int{in.Src1, in.Src2} {
			if src == isa.RegNone || src == isa.RegZero {
				continue
			}
			if w, ok := lastWrite[src]; ok {
				depSum += float64(i - w)
				depCount++
			}
		}
		if in.HasDest() {
			lastWrite[in.Dest] = i
		}
	}
	p.UniqueLines = len(lines)
	p.UniquePCs = len(pcs)
	if depCount > 0 {
		p.AvgDepDist = depSum / float64(depCount)
	}
	return p
}

// ClassFraction returns the fraction of profiled instructions in class c.
func (p Profile) ClassFraction(c isa.Class) float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.ClassCount[c]) / float64(p.Instructions)
}

// MemFraction returns the fraction of instructions that access memory.
func (p Profile) MemFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Loads+p.Stores) / float64(p.Instructions)
}

// BranchFraction returns the fraction of instructions that are branches.
func (p Profile) BranchFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Branches) / float64(p.Instructions)
}

// FpFraction returns the fraction of instructions in FP classes.
func (p Profile) FpFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	n := 0
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c.IsFP() {
			n += p.ClassCount[c]
		}
	}
	return float64(n) / float64(p.Instructions)
}

// String renders the profile as a multi-line report.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d instructions, %d static\n", p.Name, p.Instructions, p.UniquePCs)
	fmt.Fprintf(&b, "  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)  fp %.1f%%\n",
		100*float64(p.Loads)/max1(p.Instructions),
		100*float64(p.Stores)/max1(p.Instructions),
		100*p.BranchFraction(),
		100*float64(p.TakenBranch)/max1(p.Branches),
		100*p.FpFraction())
	fmt.Fprintf(&b, "  touched %d lines (~%d KB)  mean dep distance %.1f\n",
		p.UniqueLines, p.UniqueLines*64/1024, p.AvgDepDist)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if p.ClassCount[c] > 0 {
			fmt.Fprintf(&b, "  %-7s %6.2f%%\n", c, 100*p.ClassFraction(c))
		}
	}
	return b.String()
}

func max1(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n)
}
