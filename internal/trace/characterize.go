package trace

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/isa"
)

// Dependence-chain profiling granularity. Depths are computed within
// fixed windows of the dynamic stream — a proxy for what an instruction
// window of that size could see — with cross-window producers treated as
// ready. The sub-window gives a second, smaller measurement point so
// downstream models can extrapolate critical-path growth with window
// size instead of assuming it linear from one sample.
const (
	// ChainWindow is the instruction-window size dependence depths are
	// computed over.
	ChainWindow = 256
	// ChainSubWindow is the smaller second measurement window; it must
	// divide ChainWindow.
	ChainSubWindow = 64
	// ChainBuckets is the number of log2 buckets in the depth and width
	// histograms: bucket b counts values v with 2^b <= v < 2^(b+1), and
	// the last bucket absorbs everything larger.
	ChainBuckets = 9
)

// Profile summarises the dynamic properties of a stream prefix; it backs
// cmd/tracedump, the workload-shape tests, and the analytic IPC model
// (internal/model).
type Profile struct {
	Name         string
	Instructions int
	ClassCount   [isa.NumClasses]int
	Branches     int
	TakenBranch  int
	Loads        int
	Stores       int
	// UniqueLines counts distinct 64-byte data lines touched — a proxy for
	// working-set size.
	UniqueLines int
	// UniquePCs counts distinct static instructions.
	UniquePCs int
	// AvgDepDist is the mean distance, in dynamic instructions, between a
	// register consumer and its most recent producer (smaller = more
	// serial code).
	AvgDepDist float64

	// MixFrac is the per-class instruction mix: ClassCount normalised by
	// Instructions. Kept as an explicit field (not just the ClassFraction
	// accessor) so serialised profiles carry the mix directly.
	MixFrac [isa.NumClasses]float64

	// Dependence-chain structure, measured over ChainWindow-instruction
	// windows. An instruction's depth is 1 + the maximum depth of its
	// in-window register producers; a window's critical path is its
	// maximum depth. DepthHist counts instructions per log2 depth bucket;
	// WidthHist counts depth levels per log2 width bucket (a level's
	// width is how many of the window's instructions sit at that depth —
	// the ILP available at that rank of the dataflow graph).
	DepthHist [ChainBuckets]int
	WidthHist [ChainBuckets]int
	// MeanChainDepth is the mean per-instruction depth; MeanChainWidth is
	// instructions per occupied depth level (window ILP).
	MeanChainDepth float64
	MeanChainWidth float64
	// CritPathSub / CritPathWin are the mean critical-path lengths (in
	// nodes) of ChainSubWindow- and ChainWindow-instruction windows. Two
	// window sizes pin the growth rate: models extrapolate depth(W)
	// linearly through these two points.
	CritPathSub float64
	CritPathWin float64
	// CritClassFrac is the class mix of the instructions on window
	// critical paths (one longest path walked per window): what the
	// serial bottleneck is made of. A critical path dominated by loads
	// (pointer chasing) stalls on memory; one dominated by IntAlu is a
	// loop-carried counter.
	CritClassFrac [isa.NumClasses]float64

	// Branch-predictability proxies. BranchEntropy is the mean per-branch
	// outcome entropy in bits, weighting each static branch by its
	// dynamic frequency (0 = perfectly biased). BranchBiasMiss is the
	// mispredict rate of an oracle per-PC bias predictor (the floor any
	// history-less predictor can reach). BranchLocalMiss is the measured
	// mispredict rate of a small 2-level local-history predictor run over
	// the profiled stream — a realistic proxy for what a Table 1-class
	// predictor achieves.
	BranchEntropy   float64
	BranchBiasMiss  float64
	BranchLocalMiss float64

	// BranchSites counts distinct static branches (unique branch PCs) in
	// the profiled window — the branch working set a predictor's
	// PC-indexed tables must hold before aliasing sets in.
	BranchSites int

	// NewLinesPerLoad is the fraction of loads touching a 64-byte line
	// never seen before in the profile — a streaming/compulsory-miss
	// proxy (1 = pure streaming, 0 = fully resident).
	NewLinesPerLoad float64

	// SteadyLineRate is first-touch 64-byte lines (loads and stores)
	// per instruction over the second half of the profile. The whole-
	// profile rate overstates steady-state DRAM traffic for codes with
	// a bounded footprint: their cold lines are all touched early, so a
	// rate that includes the warm-up phase can run 2x the rate the
	// memory system actually sees once resident.
	SteadyLineRate float64
}

// chainBucket maps a positive value to its log2 histogram bucket.
func chainBucket(v int) int {
	b := 0
	for v > 1 && b < ChainBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// localPredictor is the profiling branch predictor behind
// BranchLocalMiss: a 2-level local-history scheme (512 history registers,
// 8-bit histories, shared 4K-entry 2-bit PHT). It is deliberately smaller
// than the Table 1 predictor — a proxy, not a duplicate — but it sees
// pattern-following branches the way any history predictor does.
type localPredictor struct {
	hist [512]uint8
	pht  [4096]int8
}

func (lp *localPredictor) predictAndTrain(pc uint64, taken bool) (hit bool) {
	h := &lp.hist[pc%uint64(len(lp.hist))]
	idx := (uint64(*h) ^ (pc << 3)) % uint64(len(lp.pht))
	ctr := &lp.pht[idx]
	hit = (*ctr >= 2) == taken
	if taken {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
	*h = *h << 1
	if taken {
		*h |= 1
	}
	return hit
}

// Characterize drains up to n instructions from s and profiles them.
// Profiling consumes the stream: callers that also want to simulate the
// same workload must characterize a fresh (or forked) source.
func Characterize(s Stream, n int) Profile {
	p := Profile{Name: s.Name()}
	lines := make(map[uint64]struct{})
	pcs := make(map[uint64]struct{})
	lastWrite := make(map[int]int) // arch reg -> instruction index
	depSum, depCount := 0.0, 0

	// Per-window dependence state. depth/producer/class are indexed by
	// the instruction's offset in the current ChainWindow; regDepth maps
	// arch reg -> (defining offset) within the window, and regDepthSub
	// the same within the current sub-window.
	var (
		depth     [ChainWindow]int32
		producer  [ChainWindow]int32
		classes   [ChainWindow]isa.Class
		widths    [ChainWindow + 1]int32
		regDef    = make(map[int]int32)
		regDefSub = make(map[int]int32)
		subDepth  [ChainSubWindow]int32

		depthSum     int64
		levels       int64
		critSubSum   int64
		critSubCount int64
		critWinSum   int64
		critWinCount int64
		// Trailing partial windows would dilute the critical-path means
		// (a 7-instruction tail cannot exhibit window-256 behaviour), so
		// their paths are accumulated separately and only used when the
		// stream is shorter than one full window.
		critSubPart  [2]int64
		critWinPart  [2]int64
		critClassCnt [isa.NumClasses]int64
		critClassTot int64
		branchCounts = make(map[uint64]*[2]int)
		lp           localPredictor
		localMisses  int
		newLines     int
		lateNewLines int
		predictedBr  int
	)

	// endWindow folds the finished window (of size w) into the
	// histograms and walks one critical path for the class mix.
	endWindow := func(w int) {
		if w == 0 {
			return
		}
		maxIdx := 0
		for i := 0; i < w; i++ {
			d := depth[i]
			p.DepthHist[chainBucket(int(d))]++
			depthSum += int64(d)
			widths[d]++
			if d > depth[maxIdx] {
				maxIdx = i
			}
		}
		if w == ChainWindow {
			critWinSum += int64(depth[maxIdx])
			critWinCount++
		} else {
			critWinPart[0] += int64(depth[maxIdx])
			critWinPart[1]++
		}
		for d := int32(1); d <= depth[maxIdx]; d++ {
			if widths[d] > 0 {
				p.WidthHist[chainBucket(int(widths[d]))]++
				levels++
				widths[d] = 0
			}
		}
		// Walk one longest path back through the producers that set each
		// node's depth.
		for i := int32(maxIdx); i >= 0; i = producer[i] {
			critClassCnt[classes[i]]++
			critClassTot++
			if producer[i] < 0 {
				break
			}
		}
		for k := range regDef {
			delete(regDef, k)
		}
	}
	endSubWindow := func(w int) {
		if w == 0 {
			return
		}
		var crit int32 = 0
		for i := 0; i < w; i++ {
			if subDepth[i] > crit {
				crit = subDepth[i]
			}
		}
		if w == ChainSubWindow {
			critSubSum += int64(crit)
			critSubCount++
		} else {
			critSubPart[0] += int64(crit)
			critSubPart[1]++
		}
		for k := range regDefSub {
			delete(regDefSub, k)
		}
	}

	i := 0
	for ; i < n; i++ {
		in, ok := s.Next()
		if !ok {
			break
		}
		wi := i % ChainWindow // offset in window
		si := i % ChainSubWindow
		if wi == 0 && i > 0 {
			endWindow(ChainWindow)
		}
		if si == 0 && i > 0 {
			endSubWindow(ChainSubWindow)
		}

		p.Instructions++
		p.ClassCount[in.Class]++
		pcs[in.PC] = struct{}{}
		switch {
		case in.Class == isa.Branch:
			p.Branches++
			if in.Taken {
				p.TakenBranch++
			}
			bc := branchCounts[in.PC]
			if bc == nil {
				bc = new([2]int)
				branchCounts[in.PC] = bc
			}
			if in.Taken {
				bc[1]++
			} else {
				bc[0]++
			}
			predictedBr++
			if !lp.predictAndTrain(in.PC, in.Taken) {
				localMisses++
			}
		case in.Class == isa.Load:
			p.Loads++
			if _, seen := lines[in.Addr>>6]; !seen {
				newLines++
				if i >= n/2 {
					lateNewLines++
				}
			}
			lines[in.Addr>>6] = struct{}{}
		case in.Class == isa.Store:
			p.Stores++
			if _, seen := lines[in.Addr>>6]; !seen && i >= n/2 {
				lateNewLines++
			}
			lines[in.Addr>>6] = struct{}{}
		}

		// Window dependence depth.
		var d, dSub int32 = 1, 1
		var prod int32 = -1
		for _, src := range [...]int{in.Src1, in.Src2} {
			if src == isa.RegNone || src == isa.RegZero {
				continue
			}
			if w, ok := lastWrite[src]; ok {
				depSum += float64(i - w)
				depCount++
			}
			if pi, ok := regDef[src]; ok && depth[pi]+1 > d {
				d = depth[pi] + 1
				prod = pi
			}
			if pi, ok := regDefSub[src]; ok && subDepth[pi]+1 > dSub {
				dSub = subDepth[pi] + 1
			}
		}
		depth[wi], producer[wi], classes[wi] = d, prod, in.Class
		subDepth[si] = dSub
		if in.HasDest() {
			lastWrite[in.Dest] = i
			regDef[in.Dest] = int32(wi)
			regDefSub[in.Dest] = int32(si)
		}
	}
	endWindow(i % ChainWindow)
	endSubWindow(i % ChainSubWindow)
	if r := i % ChainWindow; r == 0 && i > 0 {
		endWindow(ChainWindow)
	}
	if r := i % ChainSubWindow; r == 0 && i > 0 {
		endSubWindow(ChainSubWindow)
	}

	p.UniqueLines = len(lines)
	p.UniquePCs = len(pcs)
	if depCount > 0 {
		p.AvgDepDist = depSum / float64(depCount)
	}
	if p.Instructions > 0 {
		for c := range p.MixFrac {
			p.MixFrac[c] = float64(p.ClassCount[c]) / float64(p.Instructions)
		}
		p.MeanChainDepth = float64(depthSum) / float64(p.Instructions)
	}
	if levels > 0 {
		p.MeanChainWidth = float64(p.Instructions) / float64(levels)
	}
	if critSubCount == 0 {
		critSubSum, critSubCount = critSubPart[0], critSubPart[1]
	}
	if critWinCount == 0 {
		critWinSum, critWinCount = critWinPart[0], critWinPart[1]
	}
	if critSubCount > 0 {
		p.CritPathSub = float64(critSubSum) / float64(critSubCount)
	}
	if critWinCount > 0 {
		p.CritPathWin = float64(critWinSum) / float64(critWinCount)
	}
	if critClassTot > 0 {
		for c := range p.CritClassFrac {
			p.CritClassFrac[c] = float64(critClassCnt[c]) / float64(critClassTot)
		}
	}
	p.BranchSites = len(branchCounts)
	if p.Branches > 0 {
		var entSum float64
		biasMiss := 0
		for _, bc := range branchCounts {
			tot := bc[0] + bc[1]
			minority := bc[0]
			if bc[1] < minority {
				minority = bc[1]
			}
			biasMiss += minority
			entSum += float64(tot) * binaryEntropy(float64(bc[1])/float64(tot))
		}
		p.BranchEntropy = entSum / float64(p.Branches)
		p.BranchBiasMiss = float64(biasMiss) / float64(p.Branches)
	}
	if predictedBr > 0 {
		p.BranchLocalMiss = float64(localMisses) / float64(predictedBr)
	}
	if p.Loads > 0 {
		p.NewLinesPerLoad = float64(newLines) / float64(p.Loads)
	}
	if late := p.Instructions - n/2; late > 0 {
		p.SteadyLineRate = float64(lateNewLines) / float64(late)
	} else if p.Instructions > 0 {
		p.SteadyLineRate = float64(p.UniqueLines) / float64(p.Instructions)
	}
	return p
}

// binaryEntropy returns the entropy in bits of a Bernoulli(p) outcome.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ClassFraction returns the fraction of profiled instructions in class c.
func (p Profile) ClassFraction(c isa.Class) float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.ClassCount[c]) / float64(p.Instructions)
}

// MemFraction returns the fraction of instructions that access memory.
func (p Profile) MemFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Loads+p.Stores) / float64(p.Instructions)
}

// BranchFraction returns the fraction of instructions that are branches.
func (p Profile) BranchFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Branches) / float64(p.Instructions)
}

// FpFraction returns the fraction of instructions in FP classes.
func (p Profile) FpFraction() float64 {
	if p.Instructions == 0 {
		return 0
	}
	n := 0
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c.IsFP() {
			n += p.ClassCount[c]
		}
	}
	return float64(n) / float64(p.Instructions)
}

// String renders the profile as a multi-line report.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d instructions, %d static\n", p.Name, p.Instructions, p.UniquePCs)
	fmt.Fprintf(&b, "  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)  fp %.1f%%\n",
		100*float64(p.Loads)/max1(p.Instructions),
		100*float64(p.Stores)/max1(p.Instructions),
		100*p.BranchFraction(),
		100*float64(p.TakenBranch)/max1(p.Branches),
		100*p.FpFraction())
	fmt.Fprintf(&b, "  touched %d lines (~%d KB)  mean dep distance %.1f  new-line/load %.1f%%  steady-line/inst %.2f%%\n",
		p.UniqueLines, p.UniqueLines*64/1024, p.AvgDepDist, 100*p.NewLinesPerLoad, 100*p.SteadyLineRate)
	fmt.Fprintf(&b, "  chains: depth mean %.1f  width mean %.1f  crit path %.1f/%d %.1f/%d\n",
		p.MeanChainDepth, p.MeanChainWidth,
		p.CritPathSub, ChainSubWindow, p.CritPathWin, ChainWindow)
	fmt.Fprintf(&b, "  depth hist %s\n  width hist %s\n",
		histString(p.DepthHist), histString(p.WidthHist))
	fmt.Fprintf(&b, "  crit-path mix:%s\n", classMixString(p.CritClassFrac))
	fmt.Fprintf(&b, "  branches: entropy %.2fb  bias-miss %.1f%%  local-miss %.1f%%\n",
		p.BranchEntropy, 100*p.BranchBiasMiss, 100*p.BranchLocalMiss)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if p.ClassCount[c] > 0 {
			fmt.Fprintf(&b, "  %-7s %6.2f%%\n", c, 100*p.ClassFraction(c))
		}
	}
	return b.String()
}

// histString renders a log2-bucketed histogram as "1:n 2:n 4:n ...",
// omitting empty buckets.
func histString(h [ChainBuckets]int) string {
	var b strings.Builder
	for i, n := range h {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, " %d:%d", 1<<i, n)
	}
	if b.Len() == 0 {
		return " (empty)"
	}
	return b.String()
}

// classMixString renders a per-class fraction vector, omitting zeros.
func classMixString(m [isa.NumClasses]float64) string {
	var b strings.Builder
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if m[c] > 0 {
			fmt.Fprintf(&b, " %s %.0f%%", c, 100*m[c])
		}
	}
	if b.Len() == 0 {
		return " (empty)"
	}
	return b.String()
}

func max1(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n)
}
