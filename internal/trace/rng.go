package trace

// rng is a SplitMix64 pseudo-random generator. It is tiny, fast, and —
// unlike math/rand sources — guaranteed stable across Go releases, which
// keeps traces (and therefore every experiment in EXPERIMENTS.md)
// bit-reproducible.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	return &rng{state: seed + 0x9e3779b97f4a7c15}
}

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("trace: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// prob returns true with probability p (clamped to [0,1]).
func (r *rng) prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}
