//go:build race

package trace

// raceDetector reports whether the race detector is active. sync.Pool
// deliberately drops items at random under the detector to shake out
// lifetime bugs, so allocation-pinning tests are meaningless there and
// skip themselves.
const raceDetector = true
