package trace

import (
	"fmt"

	"repro/internal/isa"
)

// The kernel machinery expresses each synthetic workload as a loop nest of
// basic blocks of static instructions with fixed PCs. A kernelGen walks the
// blocks, evaluating per-instruction callbacks for memory addresses and
// branch outcomes, and emits the resulting dynamic instruction stream.

// maxFill bounds the instructions emitted while running one outer loop
// iteration; exceeding it indicates a template that never branches back to
// the top, which is a programming error in a benchmark constructor.
const maxFill = 1 << 20

type staticOp struct {
	class isa.Class
	src1  int
	src2  int
	dest  int
	size  uint8
	pc    uint64

	// addr computes the effective address of a memory op for this dynamic
	// instance.
	addr func() uint64
	// taken decides a branch's outcome for this dynamic instance. It is
	// invoked exactly once per emission, so it may advance counters.
	taken func() bool
	// target names the block this branch transfers to when taken.
	target string
}

type basicBlock struct {
	label string
	ops   []staticOp
}

// kernelBuilder assembles a workload template. Benchmark constructors use
// it, then call build to obtain a generator.
type kernelBuilder struct {
	name   string
	base   uint64
	blocks []*basicBlock
	cur    *basicBlock
	err    error
}

func newKernel(name string, pcBase uint64) *kernelBuilder {
	return &kernelBuilder{name: name, base: pcBase}
}

// block starts a new basic block with the given label.
func (b *kernelBuilder) block(label string) {
	for _, blk := range b.blocks {
		if blk.label == label {
			b.fail("duplicate block label %q", label)
			return
		}
	}
	b.cur = &basicBlock{label: label}
	b.blocks = append(b.blocks, b.cur)
}

func (b *kernelBuilder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("trace: kernel %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *kernelBuilder) add(op staticOp) {
	if b.cur == nil {
		b.fail("instruction added before any block")
		return
	}
	b.cur.ops = append(b.cur.ops, op)
}

// op adds a register-to-register operation.
func (b *kernelBuilder) op(class isa.Class, dest, src1, src2 int) {
	b.add(staticOp{class: class, dest: dest, src1: src1, src2: src2})
}

// load adds a load of size bytes whose address register dependence is
// addrReg and whose dynamic address comes from addr.
func (b *kernelBuilder) load(dest, addrReg int, size uint8, addr func() uint64) {
	b.add(staticOp{class: isa.Load, dest: dest, src1: addrReg, src2: isa.RegNone, size: size, addr: addr})
}

// load2 adds a load whose address depends on two registers (base + index).
func (b *kernelBuilder) load2(dest, addrReg1, addrReg2 int, size uint8, addr func() uint64) {
	b.add(staticOp{class: isa.Load, dest: dest, src1: addrReg1, src2: addrReg2, size: size, addr: addr})
}

// store adds a store of dataReg to the address formed from addrReg.
func (b *kernelBuilder) store(dataReg, addrReg int, size uint8, addr func() uint64) {
	b.add(staticOp{class: isa.Store, dest: isa.RegNone, src1: dataReg, src2: addrReg, size: size, addr: addr})
}

// branch adds a conditional branch on condReg to the named block.
func (b *kernelBuilder) branch(condReg int, target string, taken func() bool) {
	b.add(staticOp{class: isa.Branch, dest: isa.RegNone, src1: condReg, src2: isa.RegNone, taken: taken, target: target})
}

// jump adds an always-taken branch to the named block.
func (b *kernelBuilder) jump(target string) {
	b.branch(isa.RegZero, target, func() bool { return true })
}

// build assigns PCs, resolves branch targets and returns the generator.
func (b *kernelBuilder) build() (*kernelGen, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.blocks) == 0 {
		return nil, fmt.Errorf("trace: kernel %s: no blocks", b.name)
	}
	labels := make(map[string]int, len(b.blocks))
	pc := b.base
	for i, blk := range b.blocks {
		labels[blk.label] = i
		for j := range blk.ops {
			blk.ops[j].pc = pc
			pc += 4
		}
	}
	blockPC := make(map[string]uint64, len(b.blocks))
	for _, blk := range b.blocks {
		if len(blk.ops) == 0 {
			return nil, fmt.Errorf("trace: kernel %s: empty block %q", b.name, blk.label)
		}
		blockPC[blk.label] = blk.ops[0].pc
	}
	for _, blk := range b.blocks {
		for j := range blk.ops {
			op := &blk.ops[j]
			if op.class == isa.Branch {
				if _, ok := labels[op.target]; !ok {
					return nil, fmt.Errorf("trace: kernel %s: branch to unknown label %q", b.name, op.target)
				}
			}
			if op.class.IsMem() && op.addr == nil {
				return nil, fmt.Errorf("trace: kernel %s: memory op without address callback in %q", b.name, blk.label)
			}
		}
	}
	return &kernelGen{
		name:    b.name,
		blocks:  b.blocks,
		labels:  labels,
		blockPC: blockPC,
	}, nil
}

// mustBuild is build for the package's own benchmark constructors, whose
// templates are statically correct.
func (b *kernelBuilder) mustBuild() *kernelGen {
	g, err := b.build()
	if err != nil {
		panic(err)
	}
	return g
}

// kernelGen executes a kernel template, producing a Stream.
type kernelGen struct {
	name    string
	blocks  []*basicBlock
	labels  map[string]int
	blockPC map[string]uint64

	buf []isa.Inst
	pos int
}

// Name implements Stream.
func (g *kernelGen) Name() string { return g.name }

// Next implements Stream. Kernel streams never exhaust.
func (g *kernelGen) Next() (isa.Inst, bool) {
	if g.pos >= len(g.buf) {
		g.fill()
	}
	in := g.buf[g.pos]
	g.pos++
	return in, true
}

// fill runs the template from the first block until control transfers back
// to it (one outer-loop iteration), buffering the emitted instructions.
func (g *kernelGen) fill() {
	g.buf = g.buf[:0]
	g.pos = 0
	bi := 0
	for {
		blk := g.blocks[bi]
		next := bi + 1
		transferred := false
		for j := range blk.ops {
			op := &blk.ops[j]
			in := isa.Inst{
				PC:    op.pc,
				Class: op.class,
				Src1:  op.src1,
				Src2:  op.src2,
				Dest:  op.dest,
				Size:  op.size,
			}
			if op.addr != nil {
				in.Addr = op.addr()
			}
			if op.class == isa.Branch {
				in.Taken = op.taken()
				in.Target = g.blockPC[op.target]
				if in.Taken {
					next = g.labels[op.target]
					transferred = true
				}
			}
			g.buf = append(g.buf, in)
			if len(g.buf) > maxFill {
				panic(fmt.Sprintf("trace: kernel %s never returns to its top block", g.name))
			}
			if transferred {
				break
			}
		}
		if next == 0 && transferred {
			return // completed one outer iteration
		}
		if next >= len(g.blocks) {
			// Fell off the end without a back-branch: wrap to the top.
			return
		}
		bi = next
	}
}
