package trace

import (
	"sync"
	"testing"
)

// TestForkCursorsReplayIdentically: cursors forked at different times all
// see the same suffix, concurrently, matching a fresh reference stream.
func TestForkCursorsReplayIdentically(t *testing.T) {
	const n = 20_000
	ref := Take(Limit(NewGcc(7), n), n)

	src := NewForkSource(Limit(NewGcc(7), n))
	lead := src.Fork()
	// Advance the leading cursor partway, then fork trailers at its
	// position and at the origin.
	for i := 0; i < 5000; i++ {
		if _, ok := lead.Next(); !ok {
			t.Fatal("lead exhausted early")
		}
	}
	mid := lead.Fork()
	start := src.Fork()

	var wg sync.WaitGroup
	check := func(s Stream, from int) {
		defer wg.Done()
		for i := from; i < n; i++ {
			in, ok := s.Next()
			if !ok {
				t.Errorf("cursor from %d exhausted at %d", from, i)
				return
			}
			if in != ref[i] {
				t.Errorf("cursor from %d diverged at %d", from, i)
				return
			}
		}
		if _, ok := s.Next(); ok {
			t.Errorf("cursor from %d did not exhaust", from)
		}
	}
	wg.Add(3)
	go check(lead, 5000)
	go check(mid, 5000)
	go check(start, 0)
	wg.Wait()
}

// TestForkTrim: trimming the prefix below the fork point keeps later
// reads intact.
func TestForkTrim(t *testing.T) {
	const warm, n = 9000, 12_000
	ref := Take(Limit(NewSwim(3), n), n)
	src := NewForkSource(Limit(NewSwim(3), n))
	cur := src.Fork()
	for i := 0; i < warm; i++ {
		cur.Next()
	}
	src.TrimBefore(cur.Pos())
	f := cur.Fork()
	for i := warm; i < n; i++ {
		in, ok := f.Next()
		if !ok || in != ref[i] {
			t.Fatalf("post-trim read diverged at %d (ok=%v)", i, ok)
		}
	}
}

var _ Forkable = (*ForkCursor)(nil)
