package trace

import (
	"sync"
	"testing"
)

// TestForkCursorsReplayIdentically: cursors forked at different times all
// see the same suffix, concurrently, matching a fresh reference stream.
func TestForkCursorsReplayIdentically(t *testing.T) {
	const n = 20_000
	ref := Take(Limit(NewGcc(7), n), n)

	src := NewForkSource(Limit(NewGcc(7), n))
	lead := src.Fork()
	// Advance the leading cursor partway, then fork trailers at its
	// position and at the origin.
	for i := 0; i < 5000; i++ {
		if _, ok := lead.Next(); !ok {
			t.Fatal("lead exhausted early")
		}
	}
	mid := lead.Fork()
	start := src.Fork()

	var wg sync.WaitGroup
	check := func(s Stream, from int) {
		defer wg.Done()
		for i := from; i < n; i++ {
			in, ok := s.Next()
			if !ok {
				t.Errorf("cursor from %d exhausted at %d", from, i)
				return
			}
			if in != ref[i] {
				t.Errorf("cursor from %d diverged at %d", from, i)
				return
			}
		}
		if _, ok := s.Next(); ok {
			t.Errorf("cursor from %d did not exhaust", from)
		}
	}
	wg.Add(3)
	go check(lead, 5000)
	go check(mid, 5000)
	go check(start, 0)
	wg.Wait()
}

// TestForkTrim: trimming the prefix below the fork point keeps later
// reads intact.
func TestForkTrim(t *testing.T) {
	const warm, n = 9000, 12_000
	ref := Take(Limit(NewSwim(3), n), n)
	src := NewForkSource(Limit(NewSwim(3), n))
	cur := src.Fork()
	for i := 0; i < warm; i++ {
		cur.Next()
	}
	src.TrimBefore(cur.Pos())
	f := cur.Fork()
	for i := warm; i < n; i++ {
		in, ok := f.Next()
		if !ok || in != ref[i] {
			t.Fatalf("post-trim read diverged at %d (ok=%v)", i, ok)
		}
	}
}

// TestLiveTrimFollowsMinimumCursor: once TrimBefore arms live trimming,
// the source keeps freeing chunks behind the slowest live cursor as the
// memo grows, never frees anything a live cursor still needs, and
// replays the reference exactly throughout. Releasing a cursor (as a
// checkpoint does when its last grid point has forked) stops it pinning
// the window.
func TestLiveTrimFollowsMinimumCursor(t *testing.T) {
	const n = 10 * forkChunk
	ref := Take(Limit(NewGcc(5), n), n)
	src := NewForkSource(Limit(NewGcc(5), n))

	chunkAt := func(i int) bool {
		cs := *src.chunks.Load()
		return i < len(cs) && cs[i] != nil
	}
	advance := func(c *ForkCursor, k int64) {
		t.Helper()
		for i := int64(0); i < k; i++ {
			in, ok := c.Next()
			if !ok {
				t.Fatalf("cursor exhausted at %d", c.Pos())
			}
			if in != ref[c.Pos()-1] {
				t.Fatalf("cursor diverged at %d", c.Pos()-1)
			}
		}
	}

	cur := src.Fork()
	advance(cur, 2*forkChunk+7)
	src.TrimBefore(cur.Pos())
	if chunkAt(0) || chunkAt(1) {
		t.Fatal("TrimBefore left warmup chunks resident")
	}

	fast := cur.Fork().(*ForkCursor)
	slow := cur.Fork().(*ForkCursor)
	cur.Release() // the template cursor is done forking

	// The leading cursor races five chunks ahead: the memo growth keeps
	// trimming, but never past the slow cursor still parked at the fork
	// point.
	advance(fast, 5*forkChunk)
	if !chunkAt(2) {
		t.Fatal("live trim freed a chunk the slow cursor still needs")
	}
	advance(slow, 3*forkChunk)

	// Both cursors drain concurrently: the leader's remaining memo growth
	// trims behind the slow cursor's (moving) position while the slow
	// cursor reads — the race detector covers trim versus read.
	var wg sync.WaitGroup
	drain := func(c *ForkCursor) {
		defer wg.Done()
		pos := c.Pos()
		for {
			in, ok := c.Next()
			if !ok {
				break
			}
			if in != ref[pos] {
				t.Errorf("post-trim replay diverged at %d", pos)
				return
			}
			pos++
		}
		if pos != n {
			t.Errorf("cursor exhausted at %d, want %d", pos, n)
		}
	}
	wg.Add(2)
	go drain(fast)
	go drain(slow)
	wg.Wait()

	// The slow cursor started the drain at 5*forkChunk+7, so whichever
	// cursor led the remaining chunk allocations trimmed at least
	// everything below chunk 5, while the live tail survives.
	if chunkAt(2) || chunkAt(3) || chunkAt(4) {
		t.Error("memo prefix behind the minimum live cursor was not trimmed")
	}
	if !chunkAt(9) {
		t.Error("live trim freed the memo tail")
	}
}

var _ Forkable = (*ForkCursor)(nil)
