package trace

import "repro/internal/isa"

// This file defines the eight SPEC CPU2000-like synthetic workloads used by
// the paper's evaluation. Each reproduces the characteristics that drive
// the paper's results for that benchmark (see DESIGN.md §2):
//
//	swim    FP streaming over >L2 arrays; almost all loads miss L1, most as
//	        delayed hits; enormous memory-level parallelism for a big window.
//	mgrid   FP stencil resident in L2; high ILP, low L2 miss rate, heavy
//	        chain usage, near-perfect branches.
//	applu   FP solver streaming through L2 with a loop-carried recurrence
//	        and occasional divides.
//	equake  sparse FP: indirect loads into a large array; highest chain
//	        demand, memory bound.
//	ammp    FP pointer-chasing over an L2-resident pool with per-node
//	        computation and occasional square roots.
//	gcc     integer, branchy and unpredictable, tiny working set, low ILP;
//	        gains nothing from a large window.
//	twolf   integer pointer-chasing, moderately predictable branches,
//	        modest window benefit.
//	vortex  integer, highly predictable branches, small working set, low
//	        queue occupancy.
//
// All generators are deterministic functions of their seed.

const (
	kb = 1 << 10
	mb = 1 << 20
)

// streamCursor walks a region with a fixed stride, wrapping at the end.
type streamCursor struct {
	base   uint64
	size   uint64
	stride uint64
	off    uint64
	last   uint64
}

// next returns the current address and advances the cursor.
func (c *streamCursor) next() uint64 {
	c.last = c.base + c.off
	c.off += c.stride
	if c.off >= c.size {
		c.off = 0
	}
	return c.last
}

// rel returns an address at a byte offset from the last next() result.
func (c *streamCursor) rel(d int64) uint64 { return uint64(int64(c.last) + d) }

// randCursor jumps to a uniformly random aligned slot in a region; rel
// addresses fields within the most recent slot. It models pointer-chasing
// and indirect (gather) access.
type randCursor struct {
	r     *rng
	base  uint64
	slots int
	align uint64
	last  uint64
}

func newRandCursor(r *rng, base, size, align uint64) *randCursor {
	return &randCursor{r: r, base: base, slots: int(size / align), align: align}
}

func (c *randCursor) next() uint64 {
	c.last = c.base + uint64(c.r.intn(c.slots))*c.align
	return c.last
}

func (c *randCursor) rel(d int64) uint64 { return uint64(int64(c.last) + d) }

// loopTaken returns a branch outcome callback that is taken n-1 times and
// then not taken once, repeating — a counted inner loop.
func loopTaken(n int) func() bool {
	i := 0
	return func() bool {
		i++
		if i >= n {
			i = 0
			return false
		}
		return true
	}
}

// probTaken returns a branch outcome callback taken with probability p.
func probTaken(r *rng, p float64) func() bool {
	return func() bool { return r.prob(p) }
}

// mixSeed perturbs the user seed per benchmark so that two benchmarks with
// the same seed do not share random sequences.
func mixSeed(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ h
}

// Frequently used registers. r31 is the hardwired zero; r30/f30 act as
// never-written "constant" registers (always ready).
var (
	rInd   = isa.IntReg(1) // primary induction variable
	rInd2  = isa.IntReg(2) // secondary induction variable
	rIdx   = isa.IntReg(3) // loaded index (indirection)
	rPtr   = isa.IntReg(4) // pointer-chase register
	rPtr2  = isa.IntReg(5) // second pointer-chase register
	rT0    = isa.IntReg(6)
	rT1    = isa.IntReg(7)
	rT2    = isa.IntReg(8)
	rT3    = isa.IntReg(9)
	rCond  = isa.IntReg(10) // branch condition
	rConst = isa.IntReg(30) // never written: always-ready constant

)

func f(n int) int { return isa.FpReg(n) }

var fConst = f(30) // never written: always-ready FP constant

// NewSwim builds the swim-like workload: FP shallow-water stencil streaming
// through four 4 MB arrays. Nearly every load misses the L1; most are
// delayed hits on in-flight lines, and line leaders miss the L2 as well,
// so performance is bounded by how many memory accesses the window can
// overlap — the paper's prime example of a benchmark that scales to a
// 512-entry IQ.
func NewSwim(seed uint64) Stream {
	_ = newRNG(mixSeed(seed, "swim")) // swim is fully regular; rng unused
	u := &streamCursor{base: 0x1000_0000, size: 4 * mb, stride: 16}
	v := &streamCursor{base: 0x2000_0000, size: 4 * mb, stride: 16}
	p := &streamCursor{base: 0x3000_0000, size: 4 * mb, stride: 16}
	un := &streamCursor{base: 0x4000_0000, size: 4 * mb, stride: 16}

	b := newKernel("swim", 0x41_0000)
	b.block("top")
	b.op(isa.IntAlu, rInd, rInd, rConst) // i += stride
	b.load(f(0), rInd, 8, u.next)
	b.load(f(1), rInd, 8, func() uint64 { return u.rel(8) })
	b.load(f(2), rInd, 8, v.next)
	b.load(f(3), rInd, 8, func() uint64 { return v.rel(8) })
	b.load(f(4), rInd, 8, p.next)
	b.op(isa.FpAdd, f(5), f(0), f(1))
	b.op(isa.FpAdd, f(6), f(2), f(3))
	b.op(isa.FpMul, f(7), f(5), f(4))
	b.op(isa.FpAdd, f(8), f(7), f(6))
	b.op(isa.FpMul, f(9), f(8), fConst)
	b.store(f(9), rInd, 8, un.next)
	b.branch(rCond, "top", loopTaken(1000))
	return b.mustBuild()
}

// NewMgrid builds the mgrid-like workload: a multigrid relaxation stencil
// over an L2-resident 128 KB grid. Line-leader loads miss the L1 but hit
// the L2, branches are nearly perfect, and each iteration carries two
// independent FP reduction trees — very high ILP and the heaviest
// per-instruction chain usage.
func NewMgrid(seed uint64) Stream {
	_ = newRNG(mixSeed(seed, "mgrid"))
	a := &streamCursor{base: 0x1_1000_0000, size: 128 * kb, stride: 64}
	c := &streamCursor{base: 0x1_2000_0000, size: 128 * kb, stride: 64}

	b := newKernel("mgrid", 0x42_0000)
	b.block("top")
	b.op(isa.IntAlu, rInd, rInd, rConst)
	b.load(f(0), rInd, 8, a.next)
	b.load(f(1), rInd, 8, func() uint64 { return a.rel(8) })
	b.load(f(2), rInd, 8, func() uint64 { return a.rel(16) })
	b.load(f(3), rInd, 8, func() uint64 { return a.rel(8192) })
	b.load(f(4), rInd, 8, func() uint64 { return a.rel(-8192) })
	b.load(f(5), rInd, 8, func() uint64 { return a.rel(24) })
	b.op(isa.FpAdd, f(6), f(0), f(1))
	b.op(isa.FpAdd, f(7), f(2), f(3))
	b.op(isa.FpAdd, f(8), f(4), f(5))
	b.op(isa.FpMul, f(9), f(6), fConst)
	b.op(isa.FpMul, f(10), f(7), fConst)
	b.op(isa.FpAdd, f(11), f(9), f(10))
	b.op(isa.FpAdd, f(12), f(11), f(8))
	b.store(f(12), rInd, 8, c.next)
	b.branch(rCond, "top", loopTaken(2000))
	return b.mustBuild()
}

// NewApplu builds the applu-like workload: an SSOR-style FP solver
// sweeping three 256 KB planes that wrap within a measured sample (so the
// sweeps re-hit the L2 after warm-up) with a loop-carried recurrence and
// an occasional divide — the mixed-latency FP benchmark of the set.
func NewApplu(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "applu"))
	a := &streamCursor{base: 0x2_1000_0000, size: 256 * kb, stride: 40}
	c := &streamCursor{base: 0x2_2000_0000, size: 256 * kb, stride: 40}
	d := &streamCursor{base: 0x2_3000_0000, size: 256 * kb, stride: 40}

	b := newKernel("applu", 0x43_0000)
	b.block("top")
	b.op(isa.IntAlu, rInd, rInd, rConst)
	b.load(f(0), rInd, 8, a.next)
	b.load(f(1), rInd, 8, func() uint64 { return a.rel(8) })
	b.load(f(2), rInd, 8, c.next)
	b.load(f(3), rInd, 8, func() uint64 { return c.rel(16) })
	b.op(isa.FpMul, f(4), f(0), f(2))
	b.op(isa.FpMul, f(5), f(1), f(3))
	b.op(isa.FpAdd, f(6), f(4), f(5))
	// Loop-carried recurrence: f20 accumulates across iterations.
	b.op(isa.FpAdd, f(20), f(20), f(6))
	b.branch(rCond, "nodiv", probTaken(r, 31.0/32))
	b.block("div")
	b.op(isa.FpDiv, f(21), f(20), fConst)
	b.op(isa.FpAdd, f(20), f(21), fConst)
	b.block("nodiv")
	b.op(isa.FpMul, f(7), f(6), fConst)
	b.store(f(7), rInd, 8, d.next)
	b.branch(rCond, "top", loopTaken(500))
	return b.mustBuild()
}

// NewEquake builds the equake-like workload: sparse matrix-vector product.
// A small streaming index array feeds indirect loads scattered across an
// 8 MB value array and a 2 MB vector; most indirect loads miss the L2.
// Every element is an indirection (two outstanding operands), giving this
// benchmark the highest chain demand in the suite, as in the paper's
// Table 2.
func NewEquake(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "equake"))
	idx := &streamCursor{base: 0x3_1000_0000, size: 256 * kb, stride: 4}
	data := newRandCursor(r, 0x3_2000_0000, 8*mb, 8)
	x := newRandCursor(r, 0x3_3000_0000, 2*mb, 8)
	y := &streamCursor{base: 0x3_4000_0000, size: 1 * mb, stride: 8}

	b := newKernel("equake", 0x44_0000)
	b.block("row")
	b.op(isa.IntAlu, rInd2, rInd2, rConst) // row pointer update
	b.op(isa.FpMul, f(10), fConst, fConst) // reset accumulator (fresh value)
	b.block("top")
	b.op(isa.IntAlu, rInd, rInd, rConst) // column index++
	b.load(rIdx, rInd, 4, idx.next)      // col = colidx[i]   (streams, mostly hits)
	b.load2(f(0), rConst, rIdx, 8, data.next)
	b.load2(f(1), rConst, rIdx, 8, x.next)
	b.op(isa.FpMul, f(2), f(0), f(1))
	b.op(isa.FpAdd, f(10), f(10), f(2)) // serial accumulate within a row
	b.branch(rCond, "top", loopTaken(8))
	b.block("end")
	b.store(f(10), rInd2, 8, y.next) // y[row] = acc
	b.branch(rCond, "row", loopTaken(64))
	return b.mustBuild()
}

// NewAmmp builds the ammp-like workload: molecular-dynamics force
// computation. An outer serial pointer chase walks an L2-resident 512 KB
// atom pool; for each atom an inner loop evaluates six neighbours with
// independent FP loads (mutually independent across iterations — the
// neighbour-level parallelism a large window exposes), an FP tree, an
// occasional square root (distance), and a store back to the atom. Low
// L2 miss rate, high chain usage and queue occupancy, and a window
// benefit bounded by the serial chase — the paper's ammp profile.
func NewAmmp(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "ammp"))
	pool := newRandCursor(r, 0x4_1000_0000, 512*kb, 128)
	nbr := newRandCursor(r, 0x4_2000_0000, 512*kb, 64)

	b := newKernel("ammp", 0x45_0000)
	b.block("top")
	b.load(rPtr, rPtr, 8, pool.next) // atom = atom->next (serial chase)
	b.op(isa.IntAlu, rInd2, rPtr, rConst)
	b.op(isa.FpMul, f(20), fConst, fConst) // reset force accumulator
	b.block("nbr")
	b.load(f(0), rInd2, 8, nbr.next) // neighbour coordinates (independent)
	b.load(f(1), rInd2, 8, func() uint64 { return nbr.rel(8) })
	b.op(isa.FpMul, f(2), f(0), f(1))
	b.op(isa.FpMul, f(3), f(0), fConst)
	b.op(isa.FpAdd, f(4), f(2), f(3))
	b.op(isa.FpAdd, f(20), f(20), f(4)) // accumulate force
	b.branch(rCond, "nbr", loopTaken(6))
	b.block("dist")
	b.branch(rCond, "nosqrt", probTaken(r, 15.0/16))
	b.block("sqrt")
	b.op(isa.FpSqrt, f(6), f(20), isa.RegNone)
	b.op(isa.FpAdd, f(20), f(6), fConst)
	b.block("nosqrt")
	b.op(isa.FpMul, f(7), f(20), fConst)
	b.store(f(7), rPtr, 8, func() uint64 { return pool.rel(32) })
	b.op(isa.IntAlu, rCond, rPtr, rConst)
	b.branch(rCond, "top", loopTaken(64))
	return b.mustBuild()
}

// NewGcc builds the gcc-like workload: low-ILP integer code over a tiny
// (48 KB, L1-resident) working set with frequent, poorly predictable
// branches. As in the paper, its performance is misprediction-bound and
// a larger instruction window buys essentially nothing.
func NewGcc(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "gcc"))
	ws := newRandCursor(r, 0x5_1000_0000, 48*kb, 8)
	tbl := newRandCursor(r, 0x5_2000_0000, 16*kb, 8)

	b := newKernel("gcc", 0x46_0000)
	b.block("top")
	b.load(rT0, rInd, 8, ws.next)
	b.op(isa.IntAlu, rT1, rT0, rConst) // serial chain on loaded value
	b.op(isa.IntAlu, rT2, rT1, rT1)
	b.op(isa.IntAlu, rCond, rT2, rConst)
	b.branch(rCond, "else", probTaken(r, 0.7)) // data-dependent: poorly predictable
	b.block("then")
	b.load(rT3, rCond, 8, tbl.next)
	b.op(isa.IntAlu, rT0, rT3, rT2)
	b.store(rT0, rT3, 8, ws.next)
	b.block("else")
	b.op(isa.IntAlu, rInd, rInd, rConst)
	b.op(isa.IntAlu, rT1, rInd, rT0)
	b.branch(rT1, "skip", probTaken(r, 0.15)) // second data-dependent branch
	b.block("mul")
	b.op(isa.IntMul, rT2, rT1, rConst)
	b.op(isa.IntAlu, rT0, rT2, rT0)
	b.block("skip")
	b.op(isa.IntAlu, rCond, rInd, rConst)
	b.branch(rCond, "top", loopTaken(16))
	return b.mustBuild()
}

// NewTwolf builds the twolf-like workload: place-and-route style integer
// pointer chasing through a 256 KB pool (L1 misses, L2 hits) with
// moderately biased data-dependent branches. The serial chase bounds ILP,
// so window growth beyond a couple hundred entries stops paying, as the
// paper observes for twolf.
func NewTwolf(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "twolf"))
	pool := newRandCursor(r, 0x6_1000_0000, 256*kb, 64)
	pool2 := newRandCursor(r, 0x6_2000_0000, 256*kb, 64)

	b := newKernel("twolf", 0x47_0000)
	b.block("top")
	b.load(rPtr, rPtr, 8, pool.next)    // serial chase
	b.load(rPtr2, rPtr2, 8, pool2.next) // second independent chase (MLP=2)
	b.load(rT0, rPtr, 8, func() uint64 { return pool.rel(8) })
	b.op(isa.IntAlu, rT1, rT0, rPtr2)
	b.op(isa.IntAlu, rCond, rT1, rConst)
	b.branch(rCond, "noswap", probTaken(r, 0.82))
	b.block("swap")
	b.op(isa.IntAlu, rT2, rT1, rConst)
	b.store(rT2, rPtr, 8, func() uint64 { return pool.rel(16) })
	b.block("noswap")
	b.op(isa.IntAlu, rInd, rInd, rConst)
	b.branch(rInd, "top", loopTaken(48))
	return b.mustBuild()
}

// NewVortex builds the vortex-like workload: object-database lookups with
// a short serial hash computation, mostly-L1-resident tables, and highly
// predictable branches. Queue occupancy stays low (short dependence
// chains drain quickly), matching the paper's description of vortex.
func NewVortex(seed uint64) Stream {
	r := newRNG(mixSeed(seed, "vortex"))
	keys := &streamCursor{base: 0x7_1000_0000, size: 128 * kb, stride: 8}
	table := newRandCursor(r, 0x7_2000_0000, 192*kb, 64)
	heap := newRandCursor(r, 0x7_3000_0000, 1536*kb, 64)

	b := newKernel("vortex", 0x48_0000)
	b.block("top")
	b.op(isa.IntAlu, rInd, rInd, rConst)
	b.load(rT0, rInd, 8, keys.next) // key (streams, hits)
	b.op(isa.IntAlu, rT1, rT0, rConst)
	b.op(isa.IntAlu, rT2, rT1, rT0) // short serial hash
	b.load(rT3, rT2, 8, table.next) // bucket probe
	b.op(isa.IntAlu, rCond, rT3, rT0)
	b.branch(rCond, "found", probTaken(r, 0.95))
	b.block("miss")
	b.load(rPtr, rT3, 8, heap.next) // overflow chain (rare, may hit L2)
	b.op(isa.IntAlu, rCond, rPtr, rT0)
	b.block("found")
	b.op(isa.IntAlu, rT1, rCond, rConst)
	b.branch(rT1, "nostore", probTaken(r, 0.9))
	b.block("update")
	b.store(rT1, rT3, 8, func() uint64 { return table.rel(8) })
	b.block("nostore")
	b.branch(rInd, "top", loopTaken(32))
	return b.mustBuild()
}
