package trace

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/isa"
)

// Checkpoint serialization of the instruction stream. Synthetic
// generators hold closure state and cannot be snapshotted directly, so a
// checkpoint records the stream *position* instead: the workload name and
// seed rebuild the generator, and the consumer skips forward to the warm
// frontier. The memo suffix a checkpoint template has already pulled past
// its own cursor (forked runs that outpaced the template) is carried
// verbatim so a resumed source replays bit-identical instructions without
// re-pulling them from the rebuilt base.

// EncodeInst writes one instruction record.
func EncodeInst(w *codec.Writer, in *isa.Inst) {
	w.U64(in.PC)
	w.U8(uint8(in.Class))
	w.Int(in.Src1)
	w.Int(in.Src2)
	w.Int(in.Dest)
	w.U64(in.Addr)
	w.U8(in.Size)
	w.Bool(in.Taken)
	w.U64(in.Target)
}

// DecodeInst reads one instruction record and validates it.
func DecodeInst(r *codec.Reader) (isa.Inst, error) {
	in := isa.Inst{
		PC:    r.U64(),
		Class: isa.Class(r.U8()),
		Src1:  r.Int(),
		Src2:  r.Int(),
		Dest:  r.Int(),
		Addr:  r.U64(),
		Size:  r.U8(),
		Taken: r.Bool(),
	}
	in.Target = r.U64()
	if err := r.Err(); err != nil {
		return isa.Inst{}, err
	}
	if err := in.Validate(); err != nil {
		return isa.Inst{}, fmt.Errorf("trace: decoded instruction invalid: %w", err)
	}
	return in, nil
}

// Source returns the cursor's underlying fork source.
func (c *ForkCursor) Source() *ForkSource { return c.src }

// MemoSuffix returns a copy of the memoised instructions at positions
// [from, count): the suffix of the memo from the given position to the
// leading edge. The caller must know that no chunk at or above from has
// been trimmed; a checkpoint template calls this with its own cursor
// position, which live trimming never passes.
func (s *ForkSource) MemoSuffix(from int64) []isa.Inst {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.count.Load()
	if from >= n {
		return nil
	}
	if int(from/forkChunk) < s.lowChunk {
		panic(fmt.Sprintf("trace: memo suffix from %d reaches below trim point (chunk %d)",
			from, s.lowChunk))
	}
	chunks := *s.chunks.Load()
	out := make([]isa.Inst, n-from)
	for i := range out {
		p := from + int64(i)
		out[i] = chunks[p/forkChunk][p%forkChunk]
	}
	return out
}

// ResumeForkSource rebuilds a fork source at a serialized checkpoint's
// warm frontier. It discards skip instructions from base (the frontier's
// position in the original stream), seeds the memo with the carried
// suffix, and returns a source whose origin is the frontier — exactly the
// state NewForkSource + warmup left behind when the checkpoint was saved.
// It fails if base exhausts before the frontier is reached.
func ResumeForkSource(base Stream, skip int64, memo []isa.Inst) (*ForkSource, error) {
	for i := int64(0); i < skip; i++ {
		if _, ok := base.Next(); !ok {
			return nil, fmt.Errorf("trace: %s exhausted at %d/%d while seeking warm frontier",
				base.Name(), i, skip)
		}
	}
	s := NewForkSource(base)
	if len(memo) == 0 {
		return s, nil
	}
	// The carried suffix was already pulled from the original base beyond
	// the frontier; consume the same span from the rebuilt base so it stays
	// aligned, then publish the suffix as the memo prefix.
	for i := range memo {
		in, ok := base.Next()
		if !ok {
			return nil, fmt.Errorf("trace: %s exhausted %d instructions into carried memo suffix",
				base.Name(), i)
		}
		if in != memo[i] {
			return nil, fmt.Errorf("trace: %s diverges from carried memo at frontier offset %d",
				base.Name(), i)
		}
	}
	nchunks := (len(memo) + forkChunk - 1) / forkChunk
	chunks := make([]*[forkChunk]isa.Inst, nchunks)
	for i := range chunks {
		chunks[i] = new([forkChunk]isa.Inst)
	}
	for i, in := range memo {
		chunks[i/forkChunk][i%forkChunk] = in
	}
	s.chunks.Store(&chunks)
	s.count.Store(int64(len(memo)))
	return s, nil
}
